#!/usr/bin/env bash
# Results-warehouse smoke, run by CI's store-smoke job: boot a campaignd
# with -store, run a real campaign through it, query it back page by
# page (curl and the results CLI), check that a cache-warm re-run diffs
# empty against the original, then restart the daemon over the same
# warehouse with a tiny byte budget and a pin and check that GC reclaims
# cell bytes without losing the queryable stats. Everything runs on
# loopback with ephemeral state under mktemp.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR="127.0.0.1:18082"
WORK="$(mktemp -d)"
DAEMON_PID=""

cleanup() {
  [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== build"
go build -o "$WORK/campaignd" ./cmd/campaignd
go build -o "$WORK/results" ./cmd/results

wait_for() { # url, tries
  for _ in $(seq 1 "$2"); do
    curl -fsS -o /dev/null "$1" 2>/dev/null && return 0
    sleep 0.2
  done
  echo "timeout waiting for $1" >&2
  return 1
}

run_campaign() { # spec -> campaign id on stdout
  local id
  id=$(curl -fsS -d "$1" "http://$ADDR/campaigns" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
  [ -n "$id" ] || { echo "no campaign id in submit response" >&2; return 1; }
  local status=""
  for _ in $(seq 1 100); do
    status=$(curl -fsS "http://$ADDR/campaigns/$id" | sed -n 's/.*"status": "\([^"]*\)".*/\1/p' | head -1)
    [ "$status" = "done" ] && { echo "$id"; return 0; }
    [ "$status" = "failed" ] && { echo "campaign failed" >&2; return 1; }
    sleep 0.2
  done
  echo "campaign stuck in '$status'" >&2
  return 1
}

echo "== start daemon with a results warehouse (no budget: GC off)"
"$WORK/campaignd" -addr "$ADDR" -store "$WORK/warehouse" \
  >"$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!
wait_for "http://$ADDR/metrics" 50

echo "== run campaign"
SPEC='{"name":"store-smoke","adversaries":["random-tree","random-path"],"ns":[16,24],"trials":5,"seed":7}'
ID=$(run_campaign "$SPEC")
echo "   ingested as $ID"

echo "== paginated query-back (limit 2, walking cursors)"
ROWS=0
CURSOR=""
PAGES=0
while :; do
  URL="http://$ADDR/results?campaign=$ID&limit=2"
  [ -n "$CURSOR" ] && URL="$URL&cursor=$CURSOR"
  curl -fsS "$URL" >"$WORK/page.json"
  ROWS=$((ROWS + $(grep -c '"cell":' "$WORK/page.json" || true)))
  PAGES=$((PAGES + 1))
  CURSOR=$(sed -n 's/.*"next_cursor": *"\([^"]*\)".*/\1/p' "$WORK/page.json")
  [ -n "$CURSOR" ] || break
  [ "$PAGES" -gt 10 ] && { echo "cursor walk did not terminate" >&2; exit 1; }
done
[ "$ROWS" -eq 4 ] && [ "$PAGES" -eq 2 ] || {
  echo "paginated walk saw $ROWS rows in $PAGES pages, want 4 in 2" >&2
  exit 1
}

echo "== results CLI agrees"
"$WORK/results" -addr "http://$ADDR" -campaign "$ID" -format csv >"$WORK/rows.csv"
LINES=$(wc -l <"$WORK/rows.csv")
[ "$LINES" -eq 5 ] || { # header + 4 cells
  echo "results CLI emitted $LINES csv lines, want 5" >&2
  cat "$WORK/rows.csv" >&2
  exit 1
}

echo "== cache-warm re-run of the same spec: diff against the original is empty"
ID2=$(run_campaign "$SPEC")
curl -fsS "http://$ADDR/results/diff?a=$ID&b=$ID2" >"$WORK/diff.json"
grep -q '"identical": 4' "$WORK/diff.json" || {
  echo "warm re-run diff not identical:" >&2
  cat "$WORK/diff.json" >&2
  exit 1
}
grep -q '"entries": \[\]' "$WORK/diff.json" || {
  echo "warm re-run diff has entries:" >&2
  cat "$WORK/diff.json" >&2
  exit 1
}

echo "== run an unpinned campaign with its own cells (eviction fodder)"
# The warm re-run shares the pinned run's content addresses, so its
# cells are pin-protected too; GC needs a campaign with distinct cells
# to have something to reclaim.
SPEC3='{"name":"store-smoke-evict","adversaries":["random-tree"],"ns":[32],"trials":5,"seed":99}'
ID3=$(run_campaign "$SPEC3")
echo "   ingested as $ID3"

echo "== restart over the same warehouse: 1-byte budget, first run pinned"
kill "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
"$WORK/campaignd" -addr "$ADDR" -store "$WORK/warehouse" \
  -store-budget 1 -store-gc-interval 1s -store-pin "$ID" \
  >"$WORK/daemon2.log" 2>&1 &
DAEMON_PID=$!
wait_for "http://$ADDR/metrics" 50

echo "== GC under the tiny budget reclaimed cell bytes"
GC_OK=""
for _ in $(seq 1 50); do
  curl -fsS "http://$ADDR/metrics" >"$WORK/metrics.prom"
  if grep -Eq '^store_gc_runs_total [1-9]' "$WORK/metrics.prom" &&
     grep -Eq '^store_gc_reclaimed_bytes_total [1-9]' "$WORK/metrics.prom"; then
    GC_OK=1
    break
  fi
  sleep 0.2
done
[ -n "$GC_OK" ] || {
  echo "GC never reclaimed bytes under a 1-byte budget" >&2
  grep '^store_' "$WORK/metrics.prom" >&2 || true
  exit 1
}

echo "== stats outlive the evicted cell bytes; the pin is recorded"
curl -fsS "http://$ADDR/results?campaign=$ID" >"$WORK/after-gc.json"
AFTER=$(grep -c '"cell":' "$WORK/after-gc.json")
[ "$AFTER" -eq 4 ] || {
  echo "only $AFTER rows queryable after restart + GC, want 4" >&2
  exit 1
}
"$WORK/results" -addr "http://$ADDR" -campaigns >"$WORK/campaigns.txt"
grep -E "^$ID\s.*\strue\s" "$WORK/campaigns.txt" >/dev/null || {
  echo "restarted daemon does not show $ID pinned:" >&2
  cat "$WORK/campaigns.txt" >&2
  exit 1
}

echo "store smoke OK"
