#!/usr/bin/env bash
# Two-binary cluster smoke with observability checks, run by CI's
# cluster-smoke job: start a coordinator daemon and one remote worker,
# run a real campaign through them, then verify the fleet is observable —
# /metrics on both processes parses under scripts/promcheck, the
# coordinator's counters reflect the work, and /cluster/workers lists the
# worker. Everything runs on loopback with ephemeral state under mktemp.
set -euo pipefail

cd "$(dirname "$0")/.."

COORD_ADDR="127.0.0.1:18080"
WORKER_METRICS="127.0.0.1:19091"
WORK="$(mktemp -d)"
COORD_PID=""
WORKER_PID=""

cleanup() {
  [ -n "$WORKER_PID" ] && kill "$WORKER_PID" 2>/dev/null || true
  [ -n "$COORD_PID" ] && kill "$COORD_PID" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== build"
go build -o "$WORK/campaignd" ./cmd/campaignd
go build -o "$WORK/promcheck" ./scripts/promcheck

echo "== start coordinator on $COORD_ADDR"
"$WORK/campaignd" -addr "$COORD_ADDR" -cluster -cache "$WORK/cells" \
  >"$WORK/coord.log" 2>&1 &
COORD_PID=$!

echo "== start worker (metrics on $WORKER_METRICS)"
"$WORK/campaignd" -worker -join "http://$COORD_ADDR" -poll 50ms \
  -metrics "$WORKER_METRICS" >"$WORK/worker.log" 2>&1 &
WORKER_PID=$!

wait_for() { # url, tries
  for _ in $(seq 1 "$2"); do
    curl -fsS -o /dev/null "$1" 2>/dev/null && return 0
    sleep 0.2
  done
  echo "timeout waiting for $1" >&2
  return 1
}
wait_for "http://$COORD_ADDR/metrics" 50
wait_for "http://$WORKER_METRICS/metrics" 50

echo "== submit campaign"
SPEC='{"name":"smoke","adversaries":["random-tree","random-path"],"ns":[16,24],"trials":5,"seed":7}'
ID=$(curl -fsS -d "$SPEC" "http://$COORD_ADDR/campaigns" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[ -n "$ID" ] || { echo "no campaign id in submit response" >&2; exit 1; }

echo "== wait for campaign $ID"
for _ in $(seq 1 100); do
  STATUS=$(curl -fsS "http://$COORD_ADDR/campaigns/$ID" | sed -n 's/.*"status": "\([^"]*\)".*/\1/p' | head -1)
  [ "$STATUS" = "done" ] && break
  [ "$STATUS" = "failed" ] && { echo "campaign failed" >&2; exit 1; }
  sleep 0.2
done
[ "$STATUS" = "done" ] || { echo "campaign stuck in '$STATUS'" >&2; exit 1; }

echo "== scrape + validate exposition (coordinator and worker)"
curl -fsS "http://$COORD_ADDR/metrics" >"$WORK/coord.prom"
curl -fsS "http://$WORKER_METRICS/metrics" >"$WORK/worker.prom"
"$WORK/promcheck" "$WORK/coord.prom" "$WORK/worker.prom"

echo "== assert counters moved"
require() { # file, pattern, label
  grep -Eq "$2" "$1" || {
    echo "missing: $3 ($2) in $1" >&2
    exit 1
  }
}
require "$WORK/coord.prom" '^campaign_jobs_completed_total [1-9]' "coordinator completed jobs"
require "$WORK/coord.prom" '^server_http_requests_total\{route="POST /campaigns"' "request counter"
require "$WORK/coord.prom" '^campaign_cache_requests_total\{backend="dir"' "cache counters"

echo "== /cluster/workers lists the worker"
curl -fsS "http://$COORD_ADDR/cluster/workers" >"$WORK/workers.json"
grep -q '"worker"' "$WORK/workers.json" || {
  echo "no workers listed:" >&2
  cat "$WORK/workers.json" >&2
  exit 1
}

# If the worker executed any cell, its own scrape shows it. Not required
# for success: small grids can finish locally before the first lease.
if grep -Eq '^campaign_jobs_completed_total [1-9]' "$WORK/worker.prom"; then
  echo "   (worker executed leased cells)"
fi

echo "== dashboard responds"
curl -fsS "http://$COORD_ADDR/" >"$WORK/index.html"
grep -q "dyntreecast fleet" "$WORK/index.html" || {
  echo "dashboard did not render" >&2
  exit 1
}

echo "cluster smoke OK"
