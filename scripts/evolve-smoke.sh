#!/usr/bin/env bash
# Evolutionary meta-campaign smoke, run by CI's evolve-smoke job: a tiny
# two-generation cmd/evolve run twice against a shared cell cache must
# emit byte-identical reports and winners (the warm run serving cells
# from cache instead of re-searching), and the winning scenario must
# replay through cmd/campaign byte-identically across two invocations —
# the cross-process, end-to-end form of the determinism contract for the
# search-backed families. Everything runs under mktemp.
set -euo pipefail

cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "== build"
go build -o "$WORK/evolve" ./cmd/evolve
go build -o "$WORK/campaign" ./cmd/campaign

EVOLVE_ARGS=(-families beam-search,deepest-line,stale-ascending -ns 6
  -population 4 -generations 2 -trials 2 -elite 2 -seed 1
  -cache "$WORK/cells" -quiet)

echo "== evolve run 1 (cold cache)"
"$WORK/evolve" "${EVOLVE_ARGS[@]}" -out "$WORK/r1.json" -winner-out "$WORK/winner1.json"

echo "== evolve run 2 (warm cache)"
"$WORK/evolve" "${EVOLVE_ARGS[@]}" -out "$WORK/r2.json" -winner-out "$WORK/winner2.json"

echo "== reports and winners byte-identical"
diff "$WORK/r1.json" "$WORK/r2.json"
diff "$WORK/winner1.json" "$WORK/winner2.json"

echo "== witness reaches t*(T6) = 7 (the deepest-line generation-0 seed guarantees it)"
grep -q '"rounds": 7' "$WORK/r1.json" || {
  echo "report lacks the rounds=7 witness at n=6:" >&2
  cat "$WORK/r1.json" >&2
  exit 1
}

echo "== winner replays deterministically through cmd/campaign"
"$WORK/campaign" -scenario "$(cat "$WORK/winner1.json")" -ns 6 -trials 3 -seed 5 \
  -format json -quiet -out "$WORK/c1.json"
"$WORK/campaign" -scenario "$(cat "$WORK/winner1.json")" -ns 6 -trials 3 -seed 5 \
  -format json -quiet -out "$WORK/c2.json"
diff "$WORK/c1.json" "$WORK/c2.json"

echo "evolve smoke OK"
