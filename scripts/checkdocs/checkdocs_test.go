package main

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckFindsUndocumentedPackages(t *testing.T) {
	root := t.TempDir()
	write(t, filepath.Join(root, "good", "g.go"), "// Package good is documented.\npackage good\n")
	write(t, filepath.Join(root, "bad", "b.go"), "package bad\n")
	// A doc comment in any file of the package counts.
	write(t, filepath.Join(root, "split", "doc.go"), "// Package split keeps its docs in doc.go.\npackage split\n")
	write(t, filepath.Join(root, "split", "impl.go"), "package split\n")
	// Test files don't satisfy the requirement.
	write(t, filepath.Join(root, "testonly", "t.go"), "package testonly\n")
	write(t, filepath.Join(root, "testonly", "t_test.go"), "// Package testonly has only test docs.\npackage testonly\n")
	// Hidden and testdata dirs are skipped entirely.
	write(t, filepath.Join(root, ".hidden", "h.go"), "package hidden\n")
	write(t, filepath.Join(root, "good", "testdata", "fixture.go"), "package fixture\n")

	missing, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{filepath.Join(root, "bad"), filepath.Join(root, "testonly")}
	if len(missing) != len(want) || missing[0] != want[0] || missing[1] != want[1] {
		t.Errorf("missing = %v, want %v", missing, want)
	}
}

func TestCheckCleanTree(t *testing.T) {
	root := t.TempDir()
	write(t, filepath.Join(root, "a", "a.go"), "// Package a is fine.\npackage a\n")
	missing, err := check(root)
	if err != nil || len(missing) != 0 {
		t.Errorf("check = %v, %v; want clean", missing, err)
	}
}

// TestRepositoryIsFullyDocumented runs the checker against this
// repository itself — the CI docs job in executable-test form.
func TestRepositoryIsFullyDocumented(t *testing.T) {
	missing, err := check(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) > 0 {
		t.Errorf("packages without package comments: %v", missing)
	}
}

// TestCheckExported covers the root-API gate: exported identifiers need
// doc comments, with the standard allowances (group comments for
// const/var blocks, methods riding on their type, unexported free).
func TestCheckExported(t *testing.T) {
	root := t.TempDir()
	write(t, filepath.Join(root, "api.go"), `// Package api is the facade.
package api

// Documented is fine.
type Documented struct{}

type Undocumented struct{}

// DoDocumented is fine.
func DoDocumented() {}

func DoUndocumented() {}

func unexported() {}

// Method docs are not required on the method itself.
type Receiver struct{}

func (Receiver) Exported() {}

// Grouped constants may share a block comment.
const (
	GroupedA = 1
	GroupedB = 2
)

var LoneUndocumented = 3
`)
	// Subdirectories are not part of the root package and are not checked.
	write(t, filepath.Join(root, "sub", "sub.go"), "// Package sub is internal-ish.\npackage sub\n\nfunc Bare() {}\n")

	got, err := checkExported(root)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"api.go: DoUndocumented", "api.go: LoneUndocumented", "api.go: Undocumented"}
	if len(got) != len(want) {
		t.Fatalf("checkExported = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("checkExported[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestRootAPIIsFullyDocumented runs the exported-identifier gate against
// this repository's facade — the CI docs job in executable-test form.
func TestRootAPIIsFullyDocumented(t *testing.T) {
	undocumented, err := checkExported(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if len(undocumented) > 0 {
		t.Errorf("exported root identifiers without doc comments: %v", undocumented)
	}
}
