// Command checkdocs enforces the repository's documentation floor. Two
// gates, both run by CI's docs job (.github/workflows/ci.yml):
//
//   - every Go package — the root, everything under internal/ and cmd/,
//     the examples, and these scripts — must carry a package comment
//     saying what it models and why it exists;
//   - every exported identifier of the root package (the public facade
//     downstream users import) must carry a doc comment.
//
// It exits nonzero listing every violation.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	missing, err := check(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "checkdocs:", err)
		os.Exit(2)
	}
	undocumented, err := checkExported(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "checkdocs:", err)
		os.Exit(2)
	}
	bad := false
	if len(missing) > 0 {
		bad = true
		fmt.Fprintln(os.Stderr, "checkdocs: packages without a package comment:")
		for _, dir := range missing {
			fmt.Fprintf(os.Stderr, "  %s\n", dir)
		}
	}
	if len(undocumented) > 0 {
		bad = true
		fmt.Fprintln(os.Stderr, "checkdocs: exported root-package identifiers without doc comments:")
		for _, name := range undocumented {
			fmt.Fprintf(os.Stderr, "  %s\n", name)
		}
	}
	if bad {
		os.Exit(1)
	}
	fmt.Println("checkdocs: every package has a package comment and the root API is fully documented")
}

// check walks root and returns the directories holding a Go package with
// no package comment on any of its non-test files.
func check(root string) ([]string, error) {
	pkgFiles := map[string][]string{} // dir → non-test .go files
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			pkgFiles[dir] = append(pkgFiles[dir], path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	var missing []string
	for dir, files := range pkgFiles {
		documented := false
		fset := token.NewFileSet()
		for _, file := range files {
			f, err := parser.ParseFile(fset, file, nil, parser.PackageClauseOnly|parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %w", file, err)
			}
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				documented = true
				break
			}
		}
		if !documented {
			missing = append(missing, dir)
		}
	}
	sort.Strings(missing)
	return missing, nil
}

// checkExported parses the non-test Go files directly in root (the
// public facade package) and returns every exported top-level identifier
// that carries no doc comment — on its own spec or on its enclosing
// declaration group (the "// Goals." group-comment style counts for all
// of the group's specs).
func checkExported(root string) ([]string, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	var undocumented []string
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(root, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		for _, decl := range f.Decls {
			undocumented = append(undocumented, undocumentedInDecl(decl, name)...)
		}
	}
	sort.Strings(undocumented)
	return undocumented, nil
}

// undocumentedInDecl returns the exported, doc-less identifiers declared
// by one top-level declaration, tagged with their file.
func undocumentedInDecl(decl ast.Decl, file string) []string {
	var out []string
	flag := func(name string) { out = append(out, fmt.Sprintf("%s: %s", file, name)) }
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Recv != nil {
			return nil // methods document through their type
		}
		if d.Name.IsExported() && !hasDoc(d.Doc) {
			flag(d.Name.Name)
		}
	case *ast.GenDecl:
		groupDoc := hasDoc(d.Doc)
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && !hasDoc(s.Doc) && !(groupDoc && len(d.Specs) == 1) {
					flag(s.Name.Name)
				}
			case *ast.ValueSpec:
				documented := hasDoc(s.Doc) || groupDoc
				for _, n := range s.Names {
					if n.IsExported() && !documented {
						flag(n.Name)
					}
				}
			}
		}
	}
	return out
}

func hasDoc(c *ast.CommentGroup) bool {
	return c != nil && strings.TrimSpace(c.Text()) != ""
}
