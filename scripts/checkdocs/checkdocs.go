// Command checkdocs enforces the repository's documentation floor: every
// Go package — the root, everything under internal/ and cmd/, the
// examples, and these scripts — must carry a package comment saying what
// it models and why it exists. CI runs it as part of the docs job
// (.github/workflows/ci.yml); it exits nonzero listing every package
// that lacks one.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	missing, err := check(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "checkdocs:", err)
		os.Exit(2)
	}
	if len(missing) > 0 {
		fmt.Fprintln(os.Stderr, "checkdocs: packages without a package comment:")
		for _, dir := range missing {
			fmt.Fprintf(os.Stderr, "  %s\n", dir)
		}
		os.Exit(1)
	}
	fmt.Println("checkdocs: every package has a package comment")
}

// check walks root and returns the directories holding a Go package with
// no package comment on any of its non-test files.
func check(root string) ([]string, error) {
	pkgFiles := map[string][]string{} // dir → non-test .go files
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			pkgFiles[dir] = append(pkgFiles[dir], path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	var missing []string
	for dir, files := range pkgFiles {
		documented := false
		fset := token.NewFileSet()
		for _, file := range files {
			f, err := parser.ParseFile(fset, file, nil, parser.PackageClauseOnly|parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %w", file, err)
			}
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				documented = true
				break
			}
		}
		if !documented {
			missing = append(missing, dir)
		}
	}
	sort.Strings(missing)
	return missing, nil
}
