#!/usr/bin/env bash
# benchdiff.sh — guard the packed-engine speedups against regression.
#
# Runs the zero-alloc hot-path benchmarks (BenchmarkEngineStep,
# BenchmarkMatrixEngineStep, BenchmarkTrialHotPath/batched; n=64..1024)
# plus the exact-solver matrix (BenchmarkSolver/n5/{full,parallel};
# DESIGN.md §3i) and compares the best observed ns/op of each against
# the committed baseline in scripts/bench-baseline.txt. The check fails
# when
#
#   - a benchmark whose baseline records 0 allocs/op allocates — the
#     0 allocs/op contract of the batched pipeline (DESIGN.md §3d, §3g)
#     is absolute; benchmarks with a non-zero allocs baseline (the
#     solver builds its tables per run) are exempt, or
#   - any benchmark runs more than BENCHDIFF_TOLERANCE percent slower
#     than its baseline ns/op (default 10).
#
# Minimum-over-samples estimates the floor of a benchmark: scheduler and
# thermal noise only ever inflates a sample, so with enough samples both
# the baseline and the check converge on comparable numbers. A check
# pass that fails the tolerance is therefore retried with fresh samples
# merged in (up to BENCHDIFF_PASSES passes) and only a persistent
# slowdown fails — a genuinely regressed benchmark never gets faster
# with more samples, while a noisy spike does.
#
# Usage:
#
#   ./scripts/benchdiff.sh            # check against the baseline
#   ./scripts/benchdiff.sh -update    # re-measure and rewrite the baseline
#
# Knobs (environment):
#
#   BENCHDIFF_TOLERANCE   percent slowdown allowed vs. baseline (default 10;
#                         raise on noisy shared runners)
#   BENCHDIFF_COUNT       samples per benchmark per pass (default 5)
#   BENCHDIFF_PASSES      max sampling passes before a tolerance failure
#                         sticks (default 3; allocs always fail fast)
#   BENCHDIFF_BENCHTIME   go test -benchtime per sample (default 0.25s)
#
# The baseline records ns/op floors of the machine it was measured on;
# comparisons only mean something on comparable hardware, so re-run with
# -update when the reference machine changes. The allocs/op check is
# machine-independent and always enforced for baseline-zero entries.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=scripts/bench-baseline.txt
TOLERANCE=${BENCHDIFF_TOLERANCE:-10}
COUNT=${BENCHDIFF_COUNT:-5}
PASSES=${BENCHDIFF_PASSES:-3}
BENCHTIME=${BENCHDIFF_BENCHTIME:-0.25s}

update=false
case "${1:-}" in
-update | --update) update=true ;;
"") ;;
*)
	echo "usage: $0 [-update]" >&2
	exit 2
	;;
esac

raw=$(mktemp)
report=$(mktemp)
trap 'rm -f "$raw" "$report"' EXIT

# run_benches appends raw `go test -bench` lines for the guarded set.
run_benches() {
	go test -run='^$' -bench='^(BenchmarkEngineStep|BenchmarkMatrixEngineStep)$' \
		-benchmem -benchtime="$BENCHTIME" -count="$COUNT" ./internal/core
	go test -run='^$' -bench='^BenchmarkTrialHotPath$/^batched$' \
		-benchmem -benchtime="$BENCHTIME" -count="$COUNT" .
	go test -run='^$' -bench='^BenchmarkSolver$/^n5$/^(full|parallel)$' \
		-benchmem -benchtime="$BENCHTIME" -count="$COUNT" ./internal/gamesolver
}

# normalize reduces accumulated bench output to "name ns_per_op allocs"
# with the minimum ns/op (and maximum allocs/op) per name across all
# samples, the GOMAXPROCS suffix stripped so baselines survive
# core-count changes.
normalize() {
	awk '
		$1 ~ /^Benchmark/ {
			name = $1
			sub(/-[0-9]+$/, "", name)
			ns = ""; allocs = 0
			for (i = 2; i < NF; i++) {
				if ($(i + 1) == "ns/op") ns = $i
				if ($(i + 1) == "allocs/op") allocs = $i
			}
			if (ns == "") next
			if (!(name in best) || ns + 0 < best[name] + 0) best[name] = ns
			if (allocs + 0 > worstAllocs[name] + 0) worstAllocs[name] = allocs + 0
			if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
		}
		END {
			for (i = 1; i <= n; i++) {
				name = order[i]
				printf "%s %s %d\n", name, best[name], worstAllocs[name] + 0
			}
		}
	'
}

# compare prints a verdict table for "name ns allocs" lines on stdin and
# exits 1 on an alloc or tolerance failure, 2 on an alloc failure only.
compare() {
	awk -v tol="$TOLERANCE" -v baseline="$BASELINE" '
		BEGIN {
			while ((getline line <baseline) > 0) {
				if (line ~ /^#/ || line == "") continue
				split(line, f, " ")
				base[f[1]] = f[2] + 0
				baseAllocs[f[1]] = f[3] + 0
				nbase++
			}
			if (nbase == 0) {
				print "benchdiff: baseline " baseline " has no entries" >"/dev/stderr"
				exit 1
			}
		}
		{
			name = $1; ns = $2 + 0; allocs = $3 + 0
			# The zero-alloc contract binds exactly the benchmarks whose
			# baseline is allocation-free; allocating benchmarks (the
			# solver) are guarded by the ns/op tolerance alone.
			if (allocs > 0 && (name in base) && baseAllocs[name] == 0) {
				printf "FAIL %-45s %d allocs/op (hot path must be allocation-free)\n", name, allocs
				allocFail = 1
			}
			if (!(name in base)) {
				printf "NEW  %-45s %12.1f ns/op (no baseline entry; run -update)\n", name, ns
				failed = 1
				next
			}
			delta = (ns - base[name]) / base[name] * 100
			status = "ok  "
			if (delta > tol) { status = "FAIL"; failed = 1 }
			printf "%s %-45s %12.1f ns/op  baseline %12.1f  %+7.1f%% (tol %s%%)\n",
				status, name, ns, base[name], delta, tol
			covered[name] = 1
		}
		END {
			for (name in base)
				if (!(name in covered)) {
					printf "FAIL %-45s missing from current run (stale baseline entry?)\n", name
					failed = 1
				}
			if (allocFail) exit 2
			exit failed
		}
	'
}

if $update; then
	echo "benchdiff: measuring baseline (count=$COUNT x $PASSES passes, benchtime=$BENCHTIME)..." >&2
	for _ in $(seq "$PASSES"); do
		run_benches >>"$raw"
	done
	current=$(normalize <"$raw")
	if [ -z "$current" ]; then
		echo "benchdiff: no benchmark output — did the benchmarks move?" >&2
		exit 1
	fi
	{
		echo "# Benchmark floors for scripts/benchdiff.sh (best ns/op of $((COUNT * PASSES)) samples at $BENCHTIME)."
		echo "# Regenerate on the reference machine with: ./scripts/benchdiff.sh -update"
		echo "# Columns: name  ns/op  allocs/op"
		echo "$current"
	} >"$BASELINE"
	echo "benchdiff: baseline rewritten: $BASELINE" >&2
	exit 0
fi

if [ ! -f "$BASELINE" ]; then
	echo "benchdiff: no baseline at $BASELINE — run '$0 -update' on the reference machine first" >&2
	exit 1
fi

for pass in $(seq "$PASSES"); do
	echo "benchdiff: sampling pass $pass/$PASSES (count=$COUNT, benchtime=$BENCHTIME)..." >&2
	run_benches >>"$raw"
	current=$(normalize <"$raw")
	if [ -z "$current" ]; then
		echo "benchdiff: no benchmark output — did the benchmarks move?" >&2
		exit 1
	fi
	rc=0
	echo "$current" | compare >"$report" || rc=$?
	if [ "$rc" -eq 0 ]; then
		cat "$report"
		exit 0
	fi
	if [ "$rc" -eq 2 ]; then
		break # an allocation never goes away with more samples
	fi
done
cat "$report"
echo "benchdiff: regression persisted across $pass sampling pass(es)" >&2
exit 1
