// Command promcheck validates Prometheus text exposition
// (internal/metrics.Lint) read from stdin or from file arguments. CI's
// cluster-smoke job pipes live /metrics scrapes from a coordinator and a
// worker through it, so a malformed exposition — bad escaping, an
// undeclared family, a histogram without le labels — fails the build
// instead of failing the first real scraper pointed at a fleet.
//
//	curl -s http://localhost:8080/metrics | go run ./scripts/promcheck
//	go run ./scripts/promcheck scrape-a.txt scrape-b.txt
//
// Exits nonzero naming each invalid input.
package main

import (
	"fmt"
	"os"

	"dyntreecast/internal/metrics"
)

func main() {
	if len(os.Args) < 2 {
		if err := metrics.Lint(os.Stdin); err != nil {
			fmt.Fprintln(os.Stderr, "promcheck: stdin:", err)
			os.Exit(1)
		}
		return
	}
	failed := false
	for _, path := range os.Args[1:] {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "promcheck:", err)
			failed = true
			continue
		}
		err = metrics.Lint(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "promcheck: %s: %v\n", path, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
