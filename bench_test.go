// Package dyntreecast benchmarks: one benchmark per experiment in
// DESIGN.md §4 (the paper's Figure 1 plus the quantitative claims of §2,
// §3 and the related-work connections), plus engine ablations.
//
// Benchmarks report the measured scientific quantity via b.ReportMetric
// (rounds, ratios, state counts) in addition to the usual ns/op, so
// `go test -bench . -benchmem` regenerates every number in
// EXPERIMENTS.md.
package dyntreecast_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"dyntreecast"
	"dyntreecast/internal/adversary"
	"dyntreecast/internal/bounds"
	"dyntreecast/internal/campaign"
	"dyntreecast/internal/consensus"
	"dyntreecast/internal/core"
	"dyntreecast/internal/experiment"
	"dyntreecast/internal/gamesolver"
	"dyntreecast/internal/gossip"
	"dyntreecast/internal/graph"
	"dyntreecast/internal/nonsplit"
	"dyntreecast/internal/procs"
	"dyntreecast/internal/rng"
	"dyntreecast/internal/trace"
	"dyntreecast/internal/tree"
)

// BenchmarkFigure1 (E1) regenerates the Figure 1 comparison: best measured
// broadcast time per n across the adversary suite, against every bound
// curve. The reported metrics are the table's "measured" column.
func BenchmarkFigure1(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			var best int
			for i := 0; i < b.N; i++ {
				var err error
				best, _, err = experiment.BestMeasured(n, 1)
				if err != nil {
					b.Fatal(err)
				}
			}
			if err := bounds.CheckSandwich(n, best); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(best), "t*_measured")
			b.ReportMetric(float64(bounds.UpperLinear(n)), "upper")
			b.ReportMetric(float64(bounds.Lower(n)), "lower")
			b.ReportMetric(float64(bounds.NLogLogN(n)), "nloglogn")
			b.ReportMetric(float64(bounds.NLogN(n)), "nlogn")
		})
	}
}

// BenchmarkTheorem31 (E2) verifies the sandwich at every n in the sweep:
// no adversary may exceed ⌈(1+√2)n−1⌉.
func BenchmarkTheorem31(b *testing.B) {
	for _, n := range []int{2, 3, 4, 5, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			var best int
			for i := 0; i < b.N; i++ {
				var err error
				best, _, err = experiment.BestMeasured(n, 1)
				if err != nil {
					b.Fatal(err)
				}
				if best > bounds.UpperLinear(n) {
					b.Fatalf("Theorem 3.1 violated: t*=%d > %d at n=%d",
						best, bounds.UpperLinear(n), n)
				}
			}
			b.ReportMetric(float64(best)/float64(n), "t*/n")
		})
	}
}

// BenchmarkStaticPath (E3) reproduces §2's t*(static path) = n−1.
func BenchmarkStaticPath(b *testing.B) {
	for _, n := range []int{16, 64, 256, 1024} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			adv := adversary.Static{Tree: tree.IdentityPath(n)}
			var rounds int
			for i := 0; i < b.N; i++ {
				var err error
				rounds, err = core.BroadcastTime(n, adv)
				if err != nil {
					b.Fatal(err)
				}
			}
			if rounds != n-1 {
				b.Fatalf("static path t* = %d, want %d", rounds, n-1)
			}
			b.ReportMetric(float64(rounds), "t*")
		})
	}
}

// BenchmarkEdgeGrowth (E4) verifies the §2 growth lemma (≥1 new product
// edge per round before completion) on adversarial runs and reports the
// minimum per-round growth observed.
func BenchmarkEdgeGrowth(b *testing.B) {
	for _, n := range []int{16, 64} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			minGrowth := n * n
			for i := 0; i < b.N; i++ {
				var rec trace.Recorder
				_, err := core.Run(n, adversary.AscendingPath{}, core.Broadcast,
					core.WithObserver(rec.Observer()))
				if err != nil {
					b.Fatal(err)
				}
				if bad := trace.VerifyGrowth(rec.Records()); bad != nil {
					b.Fatalf("growth lemma violated at round %d", bad.Round)
				}
				for _, r := range rec.Records() {
					if r.NewEdges < minGrowth {
						minGrowth = r.NewEdges
					}
				}
			}
			b.ReportMetric(float64(minGrowth), "min_new_edges")
		})
	}
}

// BenchmarkRestricted (E5) measures the k-leaf and k-inner restricted
// regimes: t* stays linear in n for fixed k.
func BenchmarkRestricted(b *testing.B) {
	for _, k := range []int{2, 4} {
		for _, n := range []int{16, 64, 256} {
			b.Run(fmt.Sprintf("k%d/n%d", k, n), func(b *testing.B) {
				src := rng.New(uint64(n)*100 + uint64(k))
				total, runs := 0, 0
				for i := 0; i < b.N; i++ {
					rounds, err := core.BroadcastTime(n, adversary.KLeaves{K: k, Src: src})
					if err != nil {
						b.Fatal(err)
					}
					total += rounds
					runs++
				}
				b.ReportMetric(float64(total)/float64(runs), "t*_mean")
				b.ReportMetric(float64(total)/float64(runs)/float64(n), "t*/n")
			})
		}
	}
}

// BenchmarkNonsplit (E6) checks the [1] simulation lemma: products of n−1
// rooted trees are nonsplit.
func BenchmarkNonsplit(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			src := rng.New(uint64(n))
			trees := make([]*tree.Tree, n-1)
			for i := 0; i < b.N; i++ {
				for j := range trees {
					trees[j] = tree.Random(n, src)
				}
				if !graph.ProductOfTrees(trees).IsNonsplit() {
					b.Fatalf("n=%d: product of n-1 trees not nonsplit", n)
				}
			}
			b.ReportMetric(1, "nonsplit_fraction")
		})
	}
}

// BenchmarkExact (E7) times the exact game solver and reports t*(Tn) and
// the canonical state count.
func BenchmarkExact(b *testing.B) {
	want := map[int]int{2: 1, 3: 2, 4: 4, 5: 5}
	for n := 2; n <= 5; n++ {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			var v, states int
			for i := 0; i < b.N; i++ {
				s, err := gamesolver.New(n)
				if err != nil {
					b.Fatal(err)
				}
				v = s.Value()
				states = s.StatesExplored()
			}
			if v != want[n] {
				b.Fatalf("t*(T%d) = %d, want %d", n, v, want[n])
			}
			b.ReportMetric(float64(v), "t*")
			b.ReportMetric(float64(states), "states")
		})
	}
}

// BenchmarkMatrixEvolution (E8) runs the instrumented engine under the
// strongest deterministic heuristic and reports the matrix quantities the
// paper's proof tracks at completion time.
func BenchmarkMatrixEvolution(b *testing.B) {
	for _, n := range []int{32, 128} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			var final core.Result
			for i := 0; i < b.N; i++ {
				var err error
				final, err = core.Run(n, adversary.AscendingPath{}, core.Broadcast)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(final.Rounds), "t*")
			b.ReportMetric(float64(final.FinalStats.Edges), "final_edges")
			b.ReportMetric(float64(final.FinalStats.MinRow), "final_min_row")
		})
	}
}

// BenchmarkGossip (E9) measures the gossip/broadcast ratio under random
// adversaries.
func BenchmarkGossip(b *testing.B) {
	for _, n := range []int{16, 64} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			src := rng.New(uint64(n))
			var sumB, sumG int
			for i := 0; i < b.N; i++ {
				bt, gt, err := gossip.BothTimes(n, adversary.Random{Src: src.Split()})
				if err != nil {
					b.Fatal(err)
				}
				sumB += bt
				sumG += gt
			}
			b.ReportMetric(float64(sumG)/float64(sumB), "gossip/broadcast")
		})
	}
}

// BenchmarkEngines is the engine ablation: column-oriented (fast path),
// row-oriented matrix engine, and the goroutine message-passing system on
// identical workloads.
func BenchmarkEngines(b *testing.B) {
	const n = 256
	src := rng.New(1)
	trees := make([]*tree.Tree, 64)
	for i := range trees {
		trees[i] = tree.Random(n, src)
	}
	b.Run("column", func(b *testing.B) {
		e := core.NewEngine(n)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.Step(trees[i%len(trees)])
		}
	})
	b.Run("matrix", func(b *testing.B) {
		e := core.NewMatrixEngine(n)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.Step(trees[i%len(trees)])
		}
	})
	b.Run("goroutines", func(b *testing.B) {
		s := procs.New(n)
		defer s.Close()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Step(trees[i%len(trees)])
		}
	})
}

// BenchmarkSolverCanonicalization is the solver ablation: permutation
// canonicalization on vs off at n = 4 (both must agree on the value).
func BenchmarkSolverCanonicalization(b *testing.B) {
	b.Run("on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, _ := gamesolver.New(4)
			if s.Value() != 4 {
				b.Fatal("wrong value")
			}
		}
	})
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, _ := gamesolver.New(4, gamesolver.WithoutCanonicalization())
			if s.Value() != 4 {
				b.Fatal("wrong value")
			}
		}
	})
}

// BenchmarkPublicAPI exercises the facade end to end (the quickstart
// flow) so API overhead is visible.
func BenchmarkPublicAPI(b *testing.B) {
	r := dyntreecast.NewRand(1)
	for i := 0; i < b.N; i++ {
		if _, err := dyntreecast.BroadcastTime(64, dyntreecast.RandomAdversary(r)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNonsplitGame (E6b, the §5 extension) measures broadcast under
// nonsplit-restricted adversaries: the O(log log n) regime, versus the
// linear rooted-tree regime.
func BenchmarkNonsplitGame(b *testing.B) {
	for _, n := range []int{32, 128, 256} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			var rounds int
			for i := 0; i < b.N; i++ {
				var err error
				rounds, err = nonsplit.Time(n, nonsplit.LazyCover{}, 0)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rounds), "t*")
			b.ReportMetric(float64(bounds.Lower(n)), "tree_lower")
		})
	}
}

// BenchmarkTrialHotPath is the headline benchmark of the batched trial
// pipeline: one complete random-adversary broadcast trial per op, on the
// seed per-trial path (fresh engine + fresh allocating adversary each
// trial, the pre-batching pipeline) versus the batched path (one pooled
// core.Runner plus one reusable adversary, Reset per trial). Both paths
// compute identical round counts from identical streams; only the
// allocation profile differs. With -benchmem (or ReportAllocs, always
// on here) the batched variant must show amortized O(1) allocations per
// trial — and therefore per round — versus the per-trial path's
// O(n + rounds·n) (the acceptance bar is a 5× allocs/op reduction; the
// measured gap is ~3 orders of magnitude, recorded in EXPERIMENTS.md).
func BenchmarkTrialHotPath(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("per-trial/n%d", n), func(b *testing.B) {
			src := rng.New(1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.BroadcastTime(n, adversary.Random{Src: src}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("batched/n%d", n), func(b *testing.B) {
			src := rng.New(1)
			r := core.NewRunner()
			adv := adversary.NewReusableRandom()
			// Warm the arena so the steady state is measured; the one-time
			// buffer growth is amortized over the cell's trials in real runs.
			adv.Reset(src)
			if _, err := r.BroadcastTime(n, adv); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				adv.Reset(src)
				if _, err := r.BroadcastTime(n, adv); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCampaignParallel measures the campaign runner on a
// random-adversary grid: serial (workers=1) versus the GOMAXPROCS worker
// pool on the identical spec. Both sub-benchmarks report simulated
// rounds/sec; the parallel one additionally reports its speedup over the
// serial per-run time measured in the same process. (On a single-core
// host the speedup hovers around 1; the campaign's value there is
// cancellation and streaming aggregation, not throughput.)
func BenchmarkCampaignParallel(b *testing.B) {
	spec := campaign.Spec{
		Name:        "bench",
		Adversaries: []string{"random-tree"},
		Ns:          []int{64, 128},
		Trials:      32,
		Seed:        1,
	}
	totalRounds := func(o *campaign.Outcome) float64 {
		sum := 0.0
		for _, c := range o.Cells {
			sum += c.Mean * float64(c.Count)
		}
		return sum
	}
	runOnce := func(workers int) (float64, error) {
		o, err := campaign.RunSpec(context.Background(), spec, campaign.Config{Workers: workers})
		if err != nil {
			return 0, err
		}
		if err := errFromOutcome(o); err != nil {
			return 0, err
		}
		return totalRounds(o), nil
	}
	var serialPerOp time.Duration
	b.Run("serial", func(b *testing.B) {
		var rounds float64
		for i := 0; i < b.N; i++ {
			var err error
			if rounds, err = runOnce(1); err != nil {
				b.Fatal(err)
			}
		}
		serialPerOp = b.Elapsed() / time.Duration(b.N)
		b.ReportMetric(rounds*float64(b.N)/b.Elapsed().Seconds(), "rounds/sec")
	})
	b.Run("parallel", func(b *testing.B) {
		workers := runtime.GOMAXPROCS(0)
		var rounds float64
		for i := 0; i < b.N; i++ {
			var err error
			if rounds, err = runOnce(workers); err != nil {
				b.Fatal(err)
			}
		}
		perOp := b.Elapsed() / time.Duration(b.N)
		b.ReportMetric(rounds*float64(b.N)/b.Elapsed().Seconds(), "rounds/sec")
		b.ReportMetric(float64(workers), "workers")
		if serialPerOp > 0 && perOp > 0 {
			b.ReportMetric(float64(serialPerOp)/float64(perOp), "speedup")
		}
	})
}

func errFromOutcome(o *campaign.Outcome) error {
	if o.Failed > 0 {
		return fmt.Errorf("%d campaign jobs failed: %s", o.Failed, o.Errors[0])
	}
	return nil
}

// BenchmarkConsensus (E10 extension) measures FloodMin termination under
// random adversaries.
func BenchmarkConsensus(b *testing.B) {
	for _, n := range []int{16, 64} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			src := rng.New(uint64(n))
			proposals := make([]int, n)
			for i := range proposals {
				proposals[i] = i * 3 % n
			}
			var last int
			for i := 0; i < b.N; i++ {
				res, err := consensus.FloodMin(proposals, adversary.Random{Src: src.Split()})
				if err != nil {
					b.Fatal(err)
				}
				last = res.Rounds
			}
			b.ReportMetric(float64(last), "rounds")
		})
	}
}
