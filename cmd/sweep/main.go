// Command sweep regenerates any experiment of the reproduction as a text
// table or CSV. One subcommand flag per experiment in DESIGN.md §4, plus
// the generic scenario grid (-exp grid), which sweeps any registered
// adversary family — built-in or custom — through the campaign runner.
//
// Usage:
//
//	sweep -exp figure1
//	sweep -exp theorem31 -ns 2,4,8,16,32 -csv
//	sweep -exp restricted -ns 16,32 -ks 2,4,8 -trials 10
//	sweep -exp nonsplit -ns 4,8,16 -trials 50
//	sweep -exp exact
//	sweep -exp gossip -ns 8,16,32 -trials 20
//	sweep -exp static -ns 2,8,64
//	sweep -exp grid -scenario random-tree \
//	    -scenario '{"adversary":"k-leaves","params":{"k":[2,4]}}' -ns 16,32 -trials 10
//
// Randomized experiments fan their trials out over the campaign worker
// pool; -workers tunes the pool (0 = GOMAXPROCS, 1 = the old serial
// harness) without changing a single output digit.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"dyntreecast/internal/campaign"
	"dyntreecast/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var scenarios campaign.ScenarioFlag
	fs.Var(&scenarios, "scenario", "scenario for -exp grid: a family name or a JSON object (repeatable)")
	var (
		exp     = fs.String("exp", "figure1", "experiment: figure1, theorem31, static, restricted, nonsplit, exact, gossip, grid")
		nsFlag  = fs.String("ns", "2,4,8,16,32", "comma-separated n values")
		ksFlag  = fs.String("ks", "2,3,4", "comma-separated k values (restricted)")
		trials  = fs.Int("trials", 10, "trials per configuration (randomized experiments)")
		seed    = fs.Uint64("seed", 1, "random seed")
		maxN    = fs.Int("max-n", 5, "largest n for the exact experiment")
		asCSV   = fs.Bool("csv", false, "emit CSV instead of an aligned table")
		wrkrs   = fs.Int("workers", 0, "campaign worker-pool size (0 = GOMAXPROCS, 1 = serial)")
		batch   = fs.Int("batch", 0, "trials per scheduled cell batch (0 = whole cell); output is identical for every value")
		outPath = fs.String("out", "", "write output to this file instead of stdout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ns, err := parseInts(*nsFlag)
	if err != nil {
		return fmt.Errorf("-ns: %w", err)
	}
	ks, err := parseInts(*ksFlag)
	if err != nil {
		return fmt.Errorf("-ks: %w", err)
	}

	opts := []experiment.Option{experiment.WithWorkers(*wrkrs), experiment.WithBatch(*batch)}
	var table *experiment.Table
	switch *exp {
	case "figure1":
		table, err = experiment.Figure1(ns, *seed, opts...)
	case "theorem31":
		table, err = experiment.Theorem31(ns, *seed, opts...)
	case "static":
		table, err = experiment.StaticPath(ns)
	case "restricted":
		table, err = experiment.Restricted(ns, ks, *trials, *seed, opts...)
	case "nonsplit":
		table, err = experiment.Nonsplit(ns, *trials, *seed, opts...)
	case "exact":
		table, err = experiment.Exact(*maxN, *seed, opts...)
	case "gossip":
		table, err = experiment.GossipVsBroadcast(ns, *trials, *seed, opts...)
	case "grid":
		table, err = gridTable(scenarios, ns, *trials, *seed, *wrkrs, *batch)
	default:
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	if err != nil {
		return err
	}
	w := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return fmt.Errorf("creating -out: %w", err)
		}
		defer f.Close()
		w = f
	}
	if *asCSV {
		return table.WriteCSV(w)
	}
	return table.WriteText(w)
}

// gridTable runs an ad-hoc scenario grid through the campaign runner and
// renders its aggregates — the scenario-form sibling of cmd/campaign for
// quick sweeps over any registered family.
func gridTable(scenarios []campaign.Scenario, ns []int, trials int, seed uint64, workers, batch int) (*experiment.Table, error) {
	if len(scenarios) == 0 {
		return nil, fmt.Errorf("-exp grid needs at least one -scenario")
	}
	spec := campaign.Spec{
		Version:   campaign.SpecVersion,
		Name:      "grid",
		Scenarios: scenarios,
		Ns:        ns,
		Trials:    trials,
		Seed:      seed,
	}
	outcome, err := campaign.RunSpec(context.Background(), spec, campaign.Config{Workers: workers, Batch: batch})
	if err != nil {
		return nil, err
	}
	if outcome.Failed > 0 {
		return nil, fmt.Errorf("%d/%d jobs failed (first: %s)", outcome.Failed, outcome.Jobs, outcome.Errors[0])
	}
	return experiment.CampaignTable(outcome), nil
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
