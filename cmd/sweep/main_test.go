package main

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestRunStatic: the deterministic §2 experiment end to end, written to
// a file so the assertion is on real output bytes.
func TestRunStatic(t *testing.T) {
	out := filepath.Join(t.TempDir(), "static.csv")
	if err := run([]string{"-exp", "static", "-ns", "2,8", "-csv", "-out", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"n,measured,expected,ok", "2,1,1,true", "8,7,7,true"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("static CSV missing %q:\n%s", want, data)
		}
	}
}

// TestRunRestricted: the Zeiner et al. regimes at a tiny size.
func TestRunRestricted(t *testing.T) {
	out := filepath.Join(t.TempDir(), "restricted.csv")
	if err := run([]string{"-exp", "restricted", "-ns", "8", "-ks", "2", "-trials", "2",
		"-csv", "-out", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "8,2,") {
		t.Errorf("restricted CSV missing the n=8,k=2 row:\n%s", data)
	}
}

// TestRunGrid: the scenario-form generic sweep, mixing a bare name with
// a parameterized JSON scenario.
func TestRunGrid(t *testing.T) {
	out := filepath.Join(t.TempDir(), "grid.csv")
	if err := run([]string{"-exp", "grid",
		"-scenario", "static-path",
		"-scenario", `{"adversary":"k-leaves","params":{"k":2}}`,
		"-ns", "8", "-trials", "2", "-csv", "-out", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"static-path/n=8", "k-leaves/n=8/k=2"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("grid CSV missing cell %q:\n%s", want, data)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	cases := map[string][]string{
		"unknown flag":           {"-no-such-flag"},
		"unknown experiment":     {"-exp", "warp"},
		"bad ns":                 {"-ns", "eight"},
		"bad ks":                 {"-exp", "restricted", "-ks", "two"},
		"grid without scenarios": {"-exp", "grid"},
		"grid bad scenario":      {"-exp", "grid", "-scenario", `{"adversary":"omniscient"}`, "-ns", "8"},
		"grid bad scenario json": {"-exp", "grid", "-scenario", `{"bogus":`},
	}
	for name, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("%s: run(%v) succeeded", name, args)
		}
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts("2, 4 ,8")
	if err != nil || !reflect.DeepEqual(got, []int{2, 4, 8}) {
		t.Errorf("parseInts = %v, %v", got, err)
	}
	if _, err := parseInts("2,x"); err == nil {
		t.Error("parseInts accepted garbage")
	}
}
