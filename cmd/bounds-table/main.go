// Command bounds-table regenerates Figure 1 of the paper: the known and
// new upper-bound regimes for broadcast in dynamic rooted trees, evaluated
// over a sweep of n, with the best measured broadcast time of this
// repository's adversary suite alongside (experiment E1).
//
// Usage:
//
//	bounds-table
//	bounds-table -ns 4,8,16,32,64 -seed 2 -csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"dyntreecast/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bounds-table:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bounds-table", flag.ContinueOnError)
	var (
		nsFlag  = fs.String("ns", "2,3,4,5,8,12,16,24,32", "comma-separated n values")
		seed    = fs.Uint64("seed", 1, "random seed")
		asCSV   = fs.Bool("csv", false, "emit CSV instead of an aligned table")
		outPath = fs.String("out", "", "write output to this file instead of stdout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ns, err := parseInts(*nsFlag)
	if err != nil {
		return err
	}
	table, err := experiment.Figure1(ns, *seed)
	if err != nil {
		return err
	}
	w := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return fmt.Errorf("creating -out: %w", err)
		}
		defer f.Close()
		w = f
	}
	if *asCSV {
		return table.WriteCSV(w)
	}
	return table.WriteText(w)
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", p, err)
		}
		if v < 1 {
			return nil, fmt.Errorf("n must be >= 1, got %d", v)
		}
		out = append(out, v)
	}
	return out, nil
}
