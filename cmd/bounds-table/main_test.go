package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSmallNs regenerates Figure 1 at tiny sizes, where the exact
// solver pins the measured column: t*(T2) = 1 and t*(T3) = 2.
func TestRunSmallNs(t *testing.T) {
	out := filepath.Join(t.TempDir(), "fig1.csv")
	if err := run([]string{"-ns", "2,3", "-csv", "-out", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if !strings.HasPrefix(text, "n,") {
		t.Errorf("CSV missing header:\n%s", text)
	}
	for _, want := range []string{"2,4,2,0,4,1,1,", "3,9,5,4,7,2,2,"} {
		if !strings.Contains(text, want) {
			t.Errorf("CSV missing row %q:\n%s", want, text)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	cases := map[string][]string{
		"unknown flag": {"-no-such-flag"},
		"bad ns":       {"-ns", "three"},
		"n below one":  {"-ns", "0"},
	}
	for name, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("%s: run(%v) succeeded", name, args)
		}
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts("2,3")
	if err != nil || len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("parseInts = %v, %v", got, err)
	}
	if _, err := parseInts(""); err == nil {
		t.Error("parseInts accepted an empty list")
	}
}
