// Command evolve runs an evolutionary meta-campaign over the adversary
// registry: a population of scenarios competes on stalling broadcast,
// the fittest survive each generation, and their parameter mutations
// form the next — lower-bound witness hunting against the paper's
// (1+√2)n curve with ordinary campaigns doing all the measuring.
//
//	evolve -families beam-search,deepest-line,stale-ascending -ns 6,8 \
//	       -population 8 -generations 5 -trials 3 -cache ~/.dyntreecast-cells
//
// Every generation is a normal campaign spec sharing one seed, so the
// run inherits the campaign layer's guarantees wholesale: the report is
// byte-identical across reruns (any -workers), surviving candidates'
// cells are cache hits in every later generation, and an interrupted run
// resumes from the cell cache, recomputing only unfinished cells.
//
// -winner-out writes the fittest final-generation scenario as a JSON
// object consumable by cmd/campaign:
//
//	evolve ... -winner-out winner.json
//	campaign -scenario "$(cat winner.json)" -ns 6 -trials 5
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"dyntreecast/internal/campaign/cache"
	"dyntreecast/internal/evolve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "evolve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("evolve", flag.ContinueOnError)
	var (
		famFlag  = fs.String("families", "beam-search,deepest-line,stale-ascending", "comma-separated adversary families forming generation 0")
		nsFlag   = fs.String("ns", "6,8", "comma-separated n values every candidate is measured at")
		trials   = fs.Int("trials", 3, "trials per grid cell")
		pop      = fs.Int("population", 8, "candidates per generation")
		gens     = fs.Int("generations", 5, "generations to run")
		elite    = fs.Int("elite", 2, "top candidates surviving unchanged per generation")
		seed     = fs.Uint64("seed", 1, "seed of the mutation stream and of every generation's campaign")
		goal     = fs.String("goal", "broadcast", "goal: broadcast or gossip")
		maxR     = fs.Int("max-rounds", 0, "round budget per run (0 = engine default n^2+1)")
		workers  = fs.Int("workers", 0, "worker pool size per generation (0 = GOMAXPROCS)")
		cacheDir = fs.String("cache", "", "content-addressed cell cache directory shared across generations and reruns")
		format   = fs.String("format", "json", "output: json or table")
		outPath  = fs.String("out", "", "write the report to this file instead of stdout")
		winPath  = fs.String("winner-out", "", "write the winning scenario (cmd/campaign -scenario syntax) to this file")
		quiet    = fs.Bool("quiet", false, "suppress the per-generation progress lines on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ns, err := parseInts(*nsFlag)
	if err != nil {
		return fmt.Errorf("-ns: %w", err)
	}
	opts := evolve.Options{
		Families:    splitNames(*famFlag),
		Ns:          ns,
		Trials:      *trials,
		Population:  *pop,
		Generations: *gens,
		Elite:       *elite,
		Seed:        *seed,
		Goal:        *goal,
		MaxRounds:   *maxR,
		Workers:     *workers,
	}
	if opts.Goal == "broadcast" {
		opts.Goal = "" // the default; keep artifacts minimal
	}
	if *cacheDir != "" {
		c, err := cache.NewDir(*cacheDir)
		if err != nil {
			return err
		}
		opts.Cache = cache.Instrument("dir", c)
	}
	if !*quiet {
		opts.Log = os.Stderr
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	report, runErr := evolve.Run(ctx, opts)
	if report == nil {
		return runErr
	}
	if runErr != nil {
		// Cancelled: report it, but still write the partial artifact.
		fmt.Fprintln(os.Stderr, "evolve:", runErr)
	}

	w := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return fmt.Errorf("creating -out: %w", err)
		}
		defer f.Close()
		w = f
	}
	if err := write(w, report, *format); err != nil {
		return err
	}
	if *winPath != "" {
		data, err := json.Marshal(report.Winner)
		if err != nil {
			return fmt.Errorf("encoding winner: %w", err)
		}
		if err := os.WriteFile(*winPath, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing -winner-out: %w", err)
		}
	}
	return runErr
}

func write(w io.Writer, report *evolve.Report, format string) error {
	switch format {
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	case "table":
		return writeTable(w, report)
	}
	return fmt.Errorf("unknown format %q (want json or table)", format)
}

// writeTable renders the final witnesses and the winner as a compact
// text summary — the human-facing face of the JSON artifact.
func writeTable(w io.Writer, r *evolve.Report) error {
	fmt.Fprintf(w, "evolve: %d generations × %d candidates over %v (trials=%d seed=%d)\n",
		r.Generations, r.Population, r.Families, r.Trials, r.Seed)
	fmt.Fprintf(w, "%6s %8s %10s %12s %8s  %s\n", "n", "rounds", "zss-lower", "paper-upper", "ratio", "witness")
	for _, wit := range r.Best {
		fmt.Fprintf(w, "%6d %8d %10d %12d %8.3f  %s\n",
			wit.N, wit.Rounds, wit.ZSSLower, wit.PaperUpper, wit.RatioToN, wit.Scenario)
	}
	fmt.Fprintf(w, "winner: %s\n", r.Winner)
	return nil
}

func splitNames(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
