// Command campaignd serves experiment campaigns over HTTP: submit a
// declarative spec, watch per-cell results stream in, and fetch the
// aggregated artifact — the service layer over the parallel campaign
// runner (see internal/server for the endpoint contract and README.md
// "Serving campaigns" for curl examples).
//
//	campaignd -addr :8080 -checkpoint-dir ./ckpt -cache ./cellcache
//
// Campaign results are pure functions of their specs, so the daemon is
// free to cache cells across submissions (-cache) and to checkpoint
// in-flight campaigns (-checkpoint-dir). On SIGINT/SIGTERM it stops
// accepting work, drains open requests, cancels running campaigns after
// flushing their checkpoints, and exits; resubmitting an interrupted
// spec — to this daemon or a later one sharing the checkpoint directory —
// resumes where it stopped and produces the same artifact an
// uninterrupted run would have.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dyntreecast/internal/campaign/cache"
	"dyntreecast/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "campaignd:", err)
		os.Exit(1)
	}
}

// options is the parsed flag set, split out so tests can cover parsing
// without binding sockets.
type options struct {
	addr          string
	workers       int
	batch         int
	checkpointDir string
	cacheDir      string
	drainTimeout  time.Duration
}

func parseFlags(args []string) (options, error) {
	fs := flag.NewFlagSet("campaignd", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.addr, "addr", ":8080", "listen address")
	fs.IntVar(&o.workers, "workers", 0, "worker pool size per campaign (0 = GOMAXPROCS)")
	fs.IntVar(&o.batch, "batch", 0, "trials per scheduled cell batch (0 = whole cell); artifacts are identical for every value")
	fs.StringVar(&o.checkpointDir, "checkpoint-dir", "", "checkpoint campaigns to this directory (enables resume)")
	fs.StringVar(&o.cacheDir, "cache", "", "content-addressed cell cache directory shared across campaigns")
	fs.DurationVar(&o.drainTimeout, "drain-timeout", 30*time.Second, "graceful shutdown budget")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	if fs.NArg() > 0 {
		return options{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	return o, nil
}

// build turns parsed options into a campaign server (creating cache and
// checkpoint directories as needed).
func build(o options, logf func(string, ...any)) (*server.Server, error) {
	opts := server.Options{Workers: o.workers, Batch: o.batch, CheckpointDir: o.checkpointDir, Logf: logf}
	if o.checkpointDir != "" {
		if err := os.MkdirAll(o.checkpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("creating -checkpoint-dir: %w", err)
		}
	}
	if o.cacheDir != "" {
		c, err := cache.NewDir(o.cacheDir)
		if err != nil {
			return nil, err
		}
		opts.Cache = c
	}
	return server.New(opts), nil
}

func run(args []string) error {
	o, err := parseFlags(args)
	if err != nil {
		return err
	}
	logger := log.New(os.Stderr, "campaignd: ", log.LstdFlags)
	srv, err := build(o, logger.Printf)
	if err != nil {
		return err
	}

	httpSrv := &http.Server{Addr: o.addr, Handler: srv}
	errCh := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", o.addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop()
	logger.Printf("shutting down (budget %s)", o.drainTimeout)

	drainCtx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	// Stop the campaign engine first: cancelling campaigns flushes their
	// checkpoints and terminates open /stream responses, which lets the
	// HTTP drain below complete instead of waiting on live streams.
	if err := srv.Shutdown(drainCtx); err != nil {
		return err
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("http shutdown: %v", err)
	}
	logger.Printf("bye")
	return nil
}
