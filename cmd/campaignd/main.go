// Command campaignd serves experiment campaigns over HTTP: submit a
// declarative spec, watch per-cell results stream in, and fetch the
// aggregated artifact — the service layer over the parallel campaign
// runner (see internal/server for the endpoint contract and README.md
// "Serving campaigns" for curl examples).
//
//	campaignd -addr :8080 -checkpoint-dir ./ckpt -cache ./cellcache
//
// Campaign results are pure functions of their specs, so the daemon is
// free to cache cells across submissions (-cache) and to checkpoint
// in-flight campaigns (-checkpoint-dir). On SIGINT/SIGTERM it stops
// accepting work, drains open requests, cancels running campaigns after
// flushing their checkpoints, and exits; resubmitting an interrupted
// spec — to this daemon or a later one sharing the checkpoint directory —
// resumes where it stopped and produces the same artifact an
// uninterrupted run would have.
//
// With -cluster the daemon becomes a cluster coordinator: the
// /cluster/lease and /cluster/results endpoints come up and every
// campaign's grid cells can be leased by remote workers, started as
//
//	campaignd -worker -join http://coordinator:8080
//
// A worker pulls cell leases, executes them on the arena pipeline, and
// pushes per-trial measurements keyed by each cell's content address.
// Workers joining, dying, or timing out never change artifact bytes —
// unleased and abandoned cells fall back to the coordinator's local pool
// (see DESIGN.md §3e).
//
// With -store the daemon keeps a results warehouse (DESIGN.md §3h):
// campaigns cache their cells into it, finished runs are auto-ingested
// under their run ids, and the /results endpoints serve paginated
// queries, content-address diffs, and bound curves across every campaign
// ever ingested — including earlier daemon lifetimes. -store-budget
// bounds the warehouse's cell bytes with an LRU GC (-store-gc-interval
// paced), and -store-pin exempts named campaigns from eviction:
//
//	campaignd -store ./warehouse -store-budget 1073741824 -store-pin baseline
//
// Observability (README.md "Monitoring a fleet"): the daemon serves a
// Prometheus text scrape on GET /metrics and an embedded live dashboard
// on GET /. A worker has no server of its own, so -metrics ADDR brings
// up a scrape-only listener:
//
//	campaignd -worker -join http://coordinator:8080 -metrics :9091
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dyntreecast/internal/campaign/cache"
	"dyntreecast/internal/cluster"
	"dyntreecast/internal/metrics"
	"dyntreecast/internal/server"
	"dyntreecast/internal/store"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "campaignd:", err)
		os.Exit(1)
	}
}

// options is the parsed flag set, split out so tests can cover parsing
// without binding sockets.
type options struct {
	addr          string
	workers       int
	batch         int
	checkpointDir string
	cacheDir      string
	storeDir      string
	storeBudget   int64
	storeGCEvery  time.Duration
	storePin      string
	drainTimeout  time.Duration
	cluster       bool
	leaseTTL      time.Duration
	shardTrials   int
	worker        bool
	join          string
	poll          time.Duration
	metricsAddr   string
}

func parseFlags(args []string) (options, error) {
	fs := flag.NewFlagSet("campaignd", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.addr, "addr", ":8080", "listen address")
	fs.IntVar(&o.workers, "workers", 0, "worker pool size per campaign (0 = GOMAXPROCS)")
	fs.IntVar(&o.batch, "batch", 0, "trials per scheduled cell batch (0 = whole cell); artifacts are identical for every value")
	fs.StringVar(&o.checkpointDir, "checkpoint-dir", "", "checkpoint campaigns to this directory (enables resume)")
	fs.StringVar(&o.cacheDir, "cache", "", "content-addressed cell cache directory shared across campaigns")
	fs.StringVar(&o.storeDir, "store", "", "results warehouse directory: campaigns cache cells into it, finished runs are ingested, and the /results query endpoints come up (subsumes -cache)")
	fs.Int64Var(&o.storeBudget, "store-budget", 0, "cell-byte retention budget for -store; the LRU GC keeps the warehouse under this many bytes (0 = unlimited, no GC)")
	fs.DurationVar(&o.storeGCEvery, "store-gc-interval", 5*time.Minute, "how often the -store-budget GC runs (with -store-budget)")
	fs.StringVar(&o.storePin, "store-pin", "", "comma-separated campaign ids to pin: their cells are exempt from -store-budget eviction (with -store)")
	fs.DurationVar(&o.drainTimeout, "drain-timeout", 30*time.Second, "graceful shutdown budget")
	fs.BoolVar(&o.cluster, "cluster", false, "serve /cluster endpoints and let remote workers lease campaign cells")
	fs.DurationVar(&o.leaseTTL, "lease-ttl", cluster.DefaultLeaseTTL, "cell lease lifetime before re-issue (with -cluster)")
	fs.IntVar(&o.shardTrials, "shard-trials", 0, "lease cells in shards of at most this many trials, so one big cell spreads across workers (with -cluster; 0 = whole cells; artifacts are identical for every value)")
	fs.BoolVar(&o.worker, "worker", false, "run as a cluster worker instead of serving (requires -join)")
	fs.StringVar(&o.join, "join", "", "coordinator base URL a -worker pulls cell leases from")
	fs.DurationVar(&o.poll, "poll", 500*time.Millisecond, "worker idle poll interval (with -worker)")
	fs.StringVar(&o.metricsAddr, "metrics", "", "serve GET /metrics on this extra address (the daemon already serves /metrics on -addr; this is how a -worker, which has no server, exposes its scrape)")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	if fs.NArg() > 0 {
		return options{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if o.worker && o.join == "" {
		return options{}, fmt.Errorf("-worker requires -join <coordinator-url>")
	}
	if !o.cluster {
		var set []string
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "lease-ttl" || f.Name == "shard-trials" {
				set = append(set, "-"+f.Name)
			}
		})
		if len(set) > 0 {
			return options{}, fmt.Errorf("%s is only meaningful with -cluster", strings.Join(set, ", "))
		}
	}
	if o.shardTrials < 0 {
		return options{}, fmt.Errorf("-shard-trials must be >= 0")
	}
	if o.storeDir != "" && o.cacheDir != "" {
		return options{}, fmt.Errorf("-store subsumes -cache (the warehouse IS the cell cache); pass one or the other")
	}
	if o.storeDir == "" {
		var set []string
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "store-budget" || f.Name == "store-gc-interval" || f.Name == "store-pin" {
				set = append(set, "-"+f.Name)
			}
		})
		if len(set) > 0 {
			return options{}, fmt.Errorf("%s is only meaningful with -store", strings.Join(set, ", "))
		}
	}
	if o.storeBudget < 0 {
		return options{}, fmt.Errorf("-store-budget must be >= 0")
	}
	if !o.worker && o.join != "" {
		return options{}, fmt.Errorf("-join is only meaningful with -worker")
	}
	if o.worker {
		// A worker is only a lease executor: silently dropping daemon
		// flags (cache, checkpoints, serving) would let a user believe
		// they are active.
		workerFlags := map[string]bool{"worker": true, "join": true, "poll": true, "metrics": true}
		var stray []string
		fs.Visit(func(f *flag.Flag) {
			if !workerFlags[f.Name] {
				stray = append(stray, "-"+f.Name)
			}
		})
		if len(stray) > 0 {
			return options{}, fmt.Errorf("%s: daemon flags are not meaningful with -worker (a worker only executes leased cells)", strings.Join(stray, ", "))
		}
	}
	return o, nil
}

// build turns parsed options into a campaign server (creating cache,
// checkpoint, and warehouse directories as needed). The returned store
// is non-nil exactly when -store is set; run starts its retention GC.
func build(o options, logf func(string, ...any)) (*server.Server, *store.Store, error) {
	opts := server.Options{Workers: o.workers, Batch: o.batch, CheckpointDir: o.checkpointDir, Logf: logf}
	if o.cluster {
		opts.Cluster = cluster.New(cluster.Options{LeaseTTL: o.leaseTTL, ShardTrials: o.shardTrials, Logf: logf})
	}
	if o.checkpointDir != "" {
		if err := os.MkdirAll(o.checkpointDir, 0o755); err != nil {
			return nil, nil, fmt.Errorf("creating -checkpoint-dir: %w", err)
		}
	}
	if o.cacheDir != "" {
		c, err := cache.NewDir(o.cacheDir)
		if err != nil {
			return nil, nil, err
		}
		opts.Cache = cache.Instrument("dir", c)
	}
	var st *store.Store
	if o.storeDir != "" {
		var err error
		st, err = store.Open(o.storeDir)
		if err != nil {
			return nil, nil, err
		}
		for _, id := range strings.Split(o.storePin, ",") {
			if id = strings.TrimSpace(id); id != "" {
				if err := st.Pin(id, true); err != nil {
					return nil, nil, fmt.Errorf("-store-pin: %w", err)
				}
			}
		}
		opts.Store = st
		// The warehouse doubles as the campaign cell cache: every run's
		// cells land in the GC'd area, and ingested rows point at the
		// exact bytes the run produced.
		opts.Cache = cache.Instrument("store", st.Cache())
	}
	return server.New(opts), st, nil
}

// serveMetrics starts the auxiliary /metrics listener (-metrics). The
// daemon already exposes /metrics on its main mux; this extra listener
// exists for worker mode — a worker runs no HTTP server, and its local
// counters (jobs executed, batch sizes) are invisible without one — and
// for fleets that firewall the scrape port away from the service port.
func serveMetrics(addr string, logf func(string, ...any)) (shutdown func(context.Context), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("-metrics: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", metrics.Default.Handler())
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	logf("metrics on http://%s/metrics", ln.Addr())
	return func(ctx context.Context) { srv.Shutdown(ctx) }, nil
}

func run(args []string) error {
	o, err := parseFlags(args)
	if err != nil {
		return err
	}
	logger := log.New(os.Stderr, "campaignd: ", log.LstdFlags)
	if o.metricsAddr != "" {
		stopMetrics, err := serveMetrics(o.metricsAddr, logger.Printf)
		if err != nil {
			return err
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			stopMetrics(ctx)
		}()
	}
	if o.worker {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		logger.Printf("worker joining %s", o.join)
		err := cluster.RunWorker(ctx, o.join, cluster.WorkerOptions{Poll: o.poll, Logf: logger.Printf})
		if err == nil {
			logger.Printf("worker stopped")
		}
		return err
	}
	srv, st, err := build(o, logger.Printf)
	if err != nil {
		return err
	}
	stopGC := func() {}
	if st != nil && o.storeBudget > 0 {
		stopGC = st.StartGC(o.storeGCEvery, o.storeBudget, logger.Printf)
		logger.Printf("results store %s: %d-byte budget, gc every %s", o.storeDir, o.storeBudget, o.storeGCEvery)
	}

	httpSrv := &http.Server{Addr: o.addr, Handler: srv}
	errCh := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", o.addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop()
	logger.Printf("shutting down (budget %s)", o.drainTimeout)

	drainCtx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	// Stop the campaign engine first: cancelling campaigns flushes their
	// checkpoints and terminates open /stream responses, which lets the
	// HTTP drain below complete instead of waiting on live streams.
	if err := srv.Shutdown(drainCtx); err != nil {
		return err
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("http shutdown: %v", err)
	}
	// After the engine and listener are quiet: stop the retention ticker
	// last so a final pass can reclaim what the drain produced. StartGC's
	// stop blocks until the goroutine is gone — nothing leaks past here.
	stopGC()
	logger.Printf("bye")
	return nil
}
