package main

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParseFlags(t *testing.T) {
	o, err := parseFlags([]string{"-addr", "127.0.0.1:0", "-workers", "3",
		"-checkpoint-dir", "ck", "-cache", "cc", "-drain-timeout", "5s"})
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != "127.0.0.1:0" || o.workers != 3 || o.checkpointDir != "ck" ||
		o.cacheDir != "cc" || o.drainTimeout != 5*time.Second {
		t.Errorf("parsed options wrong: %+v", o)
	}
}

func TestParseFlagsDefaults(t *testing.T) {
	o, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != ":8080" || o.workers != 0 || o.checkpointDir != "" || o.cacheDir != "" {
		t.Errorf("defaults wrong: %+v", o)
	}
}

func TestParseFlagsRejects(t *testing.T) {
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"-workers", "many"},
		{"stray-positional"},
	} {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("parseFlags(%v) succeeded", args)
		}
	}
}

func TestBuildCreatesDirs(t *testing.T) {
	dir := t.TempDir()
	o := options{
		checkpointDir: filepath.Join(dir, "ckpt"),
		cacheDir:      filepath.Join(dir, "cells"),
	}
	srv, st, err := build(o, nil)
	if err != nil {
		t.Fatal(err)
	}
	if srv == nil {
		t.Fatal("nil server")
	}
	if st != nil {
		t.Fatal("store built without -store")
	}
	for _, d := range []string{o.checkpointDir, o.cacheDir} {
		if st, err := os.Stat(d); err != nil || !st.IsDir() {
			t.Errorf("%s not created: %v", d, err)
		}
	}
}

func TestParseFlagsClusterAndWorker(t *testing.T) {
	o, err := parseFlags([]string{"-cluster", "-lease-ttl", "10s"})
	if err != nil {
		t.Fatal(err)
	}
	if !o.cluster || o.leaseTTL != 10*time.Second {
		t.Errorf("cluster options wrong: %+v", o)
	}
	o, err = parseFlags([]string{"-worker", "-join", "http://coord:8080", "-poll", "50ms"})
	if err != nil {
		t.Fatal(err)
	}
	if !o.worker || o.join != "http://coord:8080" || o.poll != 50*time.Millisecond {
		t.Errorf("worker options wrong: %+v", o)
	}
	// A worker without a coordinator, and a join without worker mode, are
	// both configuration errors.
	if _, err := parseFlags([]string{"-worker"}); err == nil {
		t.Error("parseFlags(-worker) succeeded without -join")
	}
	if _, err := parseFlags([]string{"-join", "http://coord:8080"}); err == nil {
		t.Error("parseFlags(-join) succeeded without -worker")
	}
}

func TestBuildClusterMountsEndpoints(t *testing.T) {
	srv, _, err := build(options{cluster: true, leaseTTL: time.Minute}, nil)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/cluster/lease", strings.NewReader(`{"worker":"w","engine":"bogus"}`))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusConflict {
		t.Errorf("bogus-engine lease on -cluster daemon: status %d, want 409", rec.Code)
	}
}

func TestParseFlagsWorkerRejectsDaemonFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-worker", "-join", "http://c:8080", "-cache", "cells"},
		{"-worker", "-join", "http://c:8080", "-cluster"},
		{"-worker", "-join", "http://c:8080", "-addr", ":9"},
		{"-worker", "-join", "http://c:8080", "-checkpoint-dir", "ck"},
	} {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("parseFlags(%v) succeeded; daemon flags must be rejected in worker mode", args)
		}
	}
}

func TestLeaseTTLRequiresCluster(t *testing.T) {
	if _, err := parseFlags([]string{"-lease-ttl", "5s"}); err == nil {
		t.Error("parseFlags(-lease-ttl) succeeded without -cluster")
	}
	if _, err := parseFlags([]string{"-cluster", "-lease-ttl", "5s"}); err != nil {
		t.Errorf("parseFlags(-cluster -lease-ttl): %v", err)
	}
}

func TestShardTrialsRequiresCluster(t *testing.T) {
	if _, err := parseFlags([]string{"-shard-trials", "4"}); err == nil {
		t.Error("parseFlags(-shard-trials) succeeded without -cluster")
	}
	if _, err := parseFlags([]string{"-cluster", "-shard-trials", "-1"}); err == nil {
		t.Error("parseFlags(-shard-trials -1) succeeded")
	}
	o, err := parseFlags([]string{"-cluster", "-shard-trials", "4"})
	if err != nil {
		t.Fatalf("parseFlags(-cluster -shard-trials 4): %v", err)
	}
	if o.shardTrials != 4 {
		t.Errorf("shardTrials = %d, want 4", o.shardTrials)
	}
}

func TestParseFlagsStore(t *testing.T) {
	o, err := parseFlags([]string{"-store", "wh", "-store-budget", "4096", "-store-gc-interval", "10s", "-store-pin", "base, other"})
	if err != nil {
		t.Fatal(err)
	}
	if o.storeDir != "wh" || o.storeBudget != 4096 || o.storeGCEvery != 10*time.Second || o.storePin != "base, other" {
		t.Errorf("store options wrong: %+v", o)
	}
	// The warehouse IS the cell cache: both at once is a configuration
	// error, and budget/pins without a store are dead flags.
	for _, args := range [][]string{
		{"-store", "wh", "-cache", "cc"},
		{"-store-budget", "4096"},
		{"-store-gc-interval", "10s"},
		{"-store-pin", "base"},
		{"-store", "wh", "-store-budget", "-1"},
		{"-worker", "-join", "http://c:8080", "-store", "wh"},
	} {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("parseFlags(%v) succeeded", args)
		}
	}
}

func TestBuildStoreMountsResultsAndPins(t *testing.T) {
	dir := t.TempDir()
	srv, st, err := build(options{storeDir: filepath.Join(dir, "wh"), storePin: "baseline, nightly"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st == nil {
		t.Fatal("nil store with -store set")
	}
	if got := st.Pins(); len(got) != 2 || got[0] != "baseline" || got[1] != "nightly" {
		t.Errorf("pins = %v", got)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/results", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("GET /results on a -store daemon: %d", rec.Code)
	}
	// A bad pin id surfaces at build time.
	if _, _, err := build(options{storeDir: filepath.Join(dir, "wh2"), storePin: "../evil"}, nil); err == nil {
		t.Error("build accepted a traversal pin id")
	}
}
