package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestParseFlags(t *testing.T) {
	o, err := parseFlags([]string{"-addr", "127.0.0.1:0", "-workers", "3",
		"-checkpoint-dir", "ck", "-cache", "cc", "-drain-timeout", "5s"})
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != "127.0.0.1:0" || o.workers != 3 || o.checkpointDir != "ck" ||
		o.cacheDir != "cc" || o.drainTimeout != 5*time.Second {
		t.Errorf("parsed options wrong: %+v", o)
	}
}

func TestParseFlagsDefaults(t *testing.T) {
	o, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != ":8080" || o.workers != 0 || o.checkpointDir != "" || o.cacheDir != "" {
		t.Errorf("defaults wrong: %+v", o)
	}
}

func TestParseFlagsRejects(t *testing.T) {
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"-workers", "many"},
		{"stray-positional"},
	} {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("parseFlags(%v) succeeded", args)
		}
	}
}

func TestBuildCreatesDirs(t *testing.T) {
	dir := t.TempDir()
	o := options{
		checkpointDir: filepath.Join(dir, "ckpt"),
		cacheDir:      filepath.Join(dir, "cells"),
	}
	srv, err := build(o, nil)
	if err != nil {
		t.Fatal(err)
	}
	if srv == nil {
		t.Fatal("nil server")
	}
	for _, d := range []string{o.checkpointDir, o.cacheDir} {
		if st, err := os.Stat(d); err != nil || !st.IsDir() {
			t.Errorf("%s not created: %v", d, err)
		}
	}
}
