package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

// captureStdout runs fn with os.Stdout redirected and returns what it
// printed (the binary writes results straight to stdout).
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := fn()
	w.Close()
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), runErr
}

// TestRunSingleTrace: one deterministic run with the static schedule
// family's strongest sibling; ascending-path at n=8 completes in exactly
// 7 rounds, pinned by the §2 analysis.
func TestRunSingleTrace(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-n", "8", "-adversary", "ascending-path", "-trace"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "completed in 7 rounds") {
		t.Errorf("missing expected completion line:\n%s", out)
	}
	if !strings.Contains(out, "round") || !strings.Contains(out, "broadcasters") {
		t.Errorf("trace output incomplete:\n%s", out)
	}
}

// TestRunTrialsSummary: the mini-campaign path aggregates over the
// worker pool and is identical for every -workers value.
func TestRunTrialsSummary(t *testing.T) {
	var outs []string
	for _, workers := range []string{"1", "3"} {
		out, err := captureStdout(t, func() error {
			return run([]string{"-n", "12", "-adversary", "random-tree", "-seed", "5",
				"-trials", "6", "-workers", workers})
		})
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, "trials=6") || !strings.Contains(out, "rounds: mean=") {
			t.Errorf("workers=%s: summary incomplete:\n%s", workers, out)
		}
		outs = append(outs, out)
	}
	if outs[0] != outs[1] {
		t.Errorf("summary depends on -workers:\n%s\nvs\n%s", outs[0], outs[1])
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	cases := map[string][]string{
		"unknown flag":       {"-no-such-flag"},
		"bad n":              {"-n", "0"},
		"bad trials":         {"-trials", "0"},
		"unknown adversary":  {"-adversary", "omniscient"},
		"unknown goal":       {"-goal", "multicast"},
		"trace with trials":  {"-trials", "3", "-trace"},
		"search with trials": {"-adversary", "beam-search", "-trials", "3"},
	}
	for name, args := range cases {
		if _, err := captureStdout(t, func() error { return run(args) }); err == nil {
			t.Errorf("%s: run(%v) succeeded", name, args)
		}
	}
}
