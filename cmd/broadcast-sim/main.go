// Command broadcast-sim runs one broadcast (or gossip) simulation under a
// chosen adversary and prints the per-round matrix-evolution trace — the
// quantities the paper's analysis tracks (experiment E8).
//
// Usage:
//
//	broadcast-sim -n 32 -adversary ascending-path -trace
//	broadcast-sim -n 16 -adversary random-tree -seed 7 -goal gossip -json
//	broadcast-sim -n 64 -adversary random-tree -trials 100 -workers 4
//
// With -trials > 1 the run becomes a mini-campaign: the trials execute on
// the campaign worker pool (each with a deterministically pre-split
// source, so the summary is identical for every -workers value) and a
// count/mean/min/max/p50/p99 summary replaces the single-run trace.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"dyntreecast/internal/adversary"
	"dyntreecast/internal/bounds"
	"dyntreecast/internal/campaign"
	"dyntreecast/internal/core"
	"dyntreecast/internal/experiment"
	"dyntreecast/internal/gamesolver"
	"dyntreecast/internal/rng"
	"dyntreecast/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "broadcast-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("broadcast-sim", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 16, "number of processes")
		advName  = fs.String("adversary", "ascending-path", "adversary: "+strings.Join(advNames(), ", "))
		seed     = fs.Uint64("seed", 1, "random seed")
		goalName = fs.String("goal", "broadcast", "goal: broadcast or gossip")
		showTr   = fs.Bool("trace", false, "print the per-round trace table")
		asJSON   = fs.Bool("json", false, "print the trace as JSON instead of text")
		maxR     = fs.Int("max-rounds", 0, "round budget (0 = n^2+1)")
		trials   = fs.Int("trials", 1, "trials; > 1 aggregates a parallel mini-campaign instead of tracing one run")
		workers  = fs.Int("workers", 0, "worker pool for -trials > 1 (0 = GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 1 {
		return fmt.Errorf("n must be >= 1, got %d", *n)
	}
	if *trials < 1 {
		return fmt.Errorf("trials must be >= 1, got %d", *trials)
	}
	if *trials > 1 {
		if *showTr || *asJSON {
			return fmt.Errorf("-trace/-json need a single run; drop them or use -trials 1")
		}
		// The search strata are deterministic functions of -seed and ignore
		// per-trial sources: N trials would just repeat one expensive search.
		if *advName == "beam-search" || *advName == "exact-optimal" {
			return fmt.Errorf("adversary %q is deterministic given -seed; -trials > 1 would repeat the identical search", *advName)
		}
	}

	goal := core.Broadcast
	switch *goalName {
	case "broadcast":
	case "gossip":
		goal = core.Gossip
	default:
		return fmt.Errorf("unknown goal %q", *goalName)
	}
	if *trials > 1 {
		return runTrials(*advName, *n, *seed, *trials, *workers, goal, *maxR)
	}

	adv, err := buildAdversary(*advName, *n, *seed)
	if err != nil {
		return err
	}

	var rec trace.Recorder
	opts := []core.Option{core.WithObserver(rec.Observer())}
	if *maxR > 0 {
		opts = append(opts, core.WithMaxRounds(*maxR))
	}
	res, err := core.Run(*n, adv, goal, opts...)
	if err != nil {
		return err
	}

	fmt.Printf("n=%d adversary=%s goal=%s: completed in %d rounds\n",
		*n, *advName, goal, res.Rounds)
	fmt.Printf("bounds: lower=%d upper=%d (measured/n = %.3f)\n",
		bounds.Lower(*n), bounds.UpperLinear(*n), float64(res.Rounds)/float64(*n))
	if goal == core.Broadcast {
		fmt.Printf("broadcasters: %v\n", res.Broadcasters)
		if err := bounds.CheckSandwich(*n, res.Rounds); err != nil {
			return err
		}
	}
	if *showTr || *asJSON {
		if *asJSON {
			return rec.WriteJSON(os.Stdout)
		}
		return rec.WriteTable(os.Stdout)
	}
	return nil
}

// runTrials runs the adversary trials times on the campaign pool and
// prints the aggregate. Each trial's source is pre-split from the seed in
// trial order, so the summary is the same for every worker count.
func runTrials(advName string, n int, seed uint64, trials, workers int, goal core.Goal, maxR int) error {
	var opts []core.Option
	if maxR > 0 {
		opts = append(opts, core.WithMaxRounds(maxR))
	}
	root := rng.New(seed)
	jobs := make([]campaign.Job, trials)
	for i := range jobs {
		jobs[i] = campaign.Job{
			Index: i,
			Src:   root.Split(),
			Run: func(_ context.Context, src *rng.Source) ([]campaign.Measurement, error) {
				adv, err := buildAdversaryFrom(advName, n, src, seed)
				if err != nil {
					return nil, err
				}
				res, err := core.Run(n, adv, goal, opts...)
				if err != nil {
					return nil, err
				}
				return []campaign.Measurement{{Cell: "rounds", Value: float64(res.Rounds)}}, nil
			},
		}
	}
	results, err := campaign.Run(context.Background(), jobs, campaign.Config{Workers: workers})
	if err != nil {
		return err
	}
	if err := campaign.JoinErrors(results); err != nil {
		return err
	}
	cell, _ := campaign.CellByKey(campaign.Aggregate(results), "rounds")
	fmt.Printf("n=%d adversary=%s goal=%s trials=%d\n", n, advName, goal, trials)
	fmt.Printf("rounds: mean=%.2f sd=%.2f min=%g p50=%g p99=%g max=%g\n",
		cell.Mean, cell.StdDev, cell.Min, cell.P50, cell.P99, cell.Max)
	fmt.Printf("bounds: lower=%d upper=%d (mean/n = %.3f)\n",
		bounds.Lower(n), bounds.UpperLinear(n), cell.Mean/float64(n))
	if goal == core.Broadcast {
		if err := bounds.CheckSandwich(n, int(cell.Max)); err != nil {
			return err
		}
	}
	return nil
}

func advNames() []string {
	names := make([]string, 0, 8)
	for _, na := range experiment.Portfolio() {
		names = append(names, na.Name)
	}
	return append(names, "beam-search", "exact-optimal")
}

func buildAdversary(name string, n int, seed uint64) (core.Adversary, error) {
	return buildAdversaryFrom(name, n, rng.New(seed), seed)
}

// buildAdversaryFrom builds the named adversary from an explicit source
// (for per-trial splitting). The search strata are deterministic given
// seed and ignore src.
func buildAdversaryFrom(name string, n int, src *rng.Source, seed uint64) (core.Adversary, error) {
	for _, na := range experiment.Portfolio() {
		if na.Name == name {
			return na.New(n, src), nil
		}
	}
	switch name {
	case "beam-search":
		rep, _ := adversary.BeamSearch(n, adversary.BeamConfig{Width: 16, Seed: seed})
		return rep, nil
	case "exact-optimal":
		s, err := gamesolver.New(n)
		if err != nil {
			return nil, err
		}
		return gamesolver.Optimal{S: s}, nil
	}
	return nil, fmt.Errorf("unknown adversary %q (known: %s)",
		name, strings.Join(advNames(), ", "))
}
