// Command broadcast-sim runs one broadcast (or gossip) simulation under a
// chosen adversary and prints the per-round matrix-evolution trace — the
// quantities the paper's analysis tracks (experiment E8).
//
// Usage:
//
//	broadcast-sim -n 32 -adversary ascending-path -trace
//	broadcast-sim -n 16 -adversary random-tree -seed 7 -goal gossip -json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dyntreecast/internal/adversary"
	"dyntreecast/internal/bounds"
	"dyntreecast/internal/core"
	"dyntreecast/internal/experiment"
	"dyntreecast/internal/gamesolver"
	"dyntreecast/internal/rng"
	"dyntreecast/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "broadcast-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("broadcast-sim", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 16, "number of processes")
		advName  = fs.String("adversary", "ascending-path", "adversary: "+strings.Join(advNames(), ", "))
		seed     = fs.Uint64("seed", 1, "random seed")
		goalName = fs.String("goal", "broadcast", "goal: broadcast or gossip")
		showTr   = fs.Bool("trace", false, "print the per-round trace table")
		asJSON   = fs.Bool("json", false, "print the trace as JSON instead of text")
		maxR     = fs.Int("max-rounds", 0, "round budget (0 = n^2+1)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 1 {
		return fmt.Errorf("n must be >= 1, got %d", *n)
	}

	adv, err := buildAdversary(*advName, *n, *seed)
	if err != nil {
		return err
	}
	goal := core.Broadcast
	switch *goalName {
	case "broadcast":
	case "gossip":
		goal = core.Gossip
	default:
		return fmt.Errorf("unknown goal %q", *goalName)
	}

	var rec trace.Recorder
	opts := []core.Option{core.WithObserver(rec.Observer())}
	if *maxR > 0 {
		opts = append(opts, core.WithMaxRounds(*maxR))
	}
	res, err := core.Run(*n, adv, goal, opts...)
	if err != nil {
		return err
	}

	fmt.Printf("n=%d adversary=%s goal=%s: completed in %d rounds\n",
		*n, *advName, goal, res.Rounds)
	fmt.Printf("bounds: lower=%d upper=%d (measured/n = %.3f)\n",
		bounds.Lower(*n), bounds.UpperLinear(*n), float64(res.Rounds)/float64(*n))
	if goal == core.Broadcast {
		fmt.Printf("broadcasters: %v\n", res.Broadcasters)
		if err := bounds.CheckSandwich(*n, res.Rounds); err != nil {
			return err
		}
	}
	if *showTr || *asJSON {
		if *asJSON {
			return rec.WriteJSON(os.Stdout)
		}
		return rec.WriteTable(os.Stdout)
	}
	return nil
}

func advNames() []string {
	names := make([]string, 0, 8)
	for _, na := range experiment.Portfolio() {
		names = append(names, na.Name)
	}
	return append(names, "beam-search", "exact-optimal")
}

func buildAdversary(name string, n int, seed uint64) (core.Adversary, error) {
	for _, na := range experiment.Portfolio() {
		if na.Name == name {
			return na.New(n, rng.New(seed)), nil
		}
	}
	switch name {
	case "beam-search":
		rep, _ := adversary.BeamSearch(n, adversary.BeamConfig{Width: 16, Seed: seed})
		return rep, nil
	case "exact-optimal":
		s, err := gamesolver.New(n)
		if err != nil {
			return nil, err
		}
		return gamesolver.Optimal{S: s}, nil
	}
	return nil, fmt.Errorf("unknown adversary %q (known: %s)",
		name, strings.Join(advNames(), ", "))
}
