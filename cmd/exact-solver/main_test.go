package main

import (
	"bytes"
	"io"
	"os"
	"strings"
	"testing"
)

// captureStdout runs fn with os.Stdout redirected and returns what it
// printed.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := fn()
	w.Close()
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), runErr
}

// TestRunSmallNs solves the game exactly for n <= 4: t*(T2) = 1,
// t*(T3) = 2, t*(T4) = 4 (the E7 values of EXPERIMENTS.md).
func TestRunSmallNs(t *testing.T) {
	out, err := captureStdout(t, func() error { return run([]string{"-max-n", "4"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"n=2  t*=1", "n=3  t*=2", "n=4  t*=4"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunSchedule prints an optimal schedule alongside the values.
func TestRunSchedule(t *testing.T) {
	out, err := captureStdout(t, func() error { return run([]string{"-max-n", "3", "-schedule"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "optimal schedule for n=3") || !strings.Contains(out, "round 1:") {
		t.Errorf("schedule output incomplete:\n%s", out)
	}
}

// TestRunDeep exercises the anytime deep-line witness search at the
// smallest interesting n; it must certify at least the exact value 2.
func TestRunDeep(t *testing.T) {
	out, err := captureStdout(t, func() error { return run([]string{"-deep", "3", "-budget", "200"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "n=3 budget=200: certified t*(Tn) >= 2") {
		t.Errorf("deep-line output unexpected:\n%s", out)
	}
}

// TestRunParallel pins that worker count never changes printed values.
func TestRunParallel(t *testing.T) {
	serial, err := captureStdout(t, func() error { return run([]string{"-max-n", "4", "-parallel", "1"}) })
	if err != nil {
		t.Fatal(err)
	}
	par, err := captureStdout(t, func() error { return run([]string{"-max-n", "4", "-parallel", "4"}) })
	if err != nil {
		t.Fatal(err)
	}
	if serial != par {
		t.Errorf("parallel output differs from serial:\n--- serial ---\n%s--- parallel ---\n%s", serial, par)
	}
}

// TestRunTable persists solve tables across runs: the first run saves,
// the second loads and answers without re-exploring.
func TestRunTable(t *testing.T) {
	dir := t.TempDir()
	first, err := captureStdout(t, func() error { return run([]string{"-max-n", "4", "-table", dir}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(first, "saved") || !strings.Contains(first, "n4.solvetable") {
		t.Fatalf("first run did not save tables:\n%s", first)
	}
	second, err := captureStdout(t, func() error { return run([]string{"-max-n", "4", "-table", dir}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"loaded", "n=4  t*=4"} {
		if !strings.Contains(second, want) {
			t.Errorf("second run missing %q:\n%s", want, second)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	cases := map[string][]string{
		"unknown flag":           {"-no-such-flag"},
		"max-n beyond safe zone": {"-max-n", "7"}, // needs -force
	}
	for name, args := range cases {
		if _, err := captureStdout(t, func() error { return run(args) }); err == nil {
			t.Errorf("%s: run(%v) succeeded", name, args)
		}
	}
}
