// Command exact-solver computes the exact broadcast time t*(Tn) for small
// n by solving the full adversary game (experiment E7), and optionally
// prints an optimal schedule.
//
// Usage:
//
//	exact-solver -max-n 5
//	exact-solver -max-n 5 -schedule
//	exact-solver -max-n 6 -force       # n=6 takes a long time
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dyntreecast/internal/bounds"
	"dyntreecast/internal/core"
	"dyntreecast/internal/gamesolver"
	"dyntreecast/internal/tree"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "exact-solver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("exact-solver", flag.ContinueOnError)
	var (
		maxN     = fs.Int("max-n", gamesolver.MaxN, "solve for n = 2..max-n")
		schedule = fs.Bool("schedule", false, "print an optimal tree schedule per n")
		force    = fs.Bool("force", false, "allow n above the default safety limit (slow)")
		deepN    = fs.Int("deep", 0, "run the anytime deep-line witness search at this n (6 or 7 are practical) instead of exact solving")
		budget   = fs.Int("budget", 30000, "state-expansion budget for -deep")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *deepN > 0 {
		return runDeep(*deepN, *budget)
	}

	for n := 2; n <= *maxN; n++ {
		var opts []gamesolver.Option
		if *force {
			opts = append(opts, gamesolver.WithMaxN(*maxN))
		}
		s, err := gamesolver.New(n, opts...)
		if err != nil {
			return err
		}
		start := time.Now()
		v := s.Value()
		status := "matches lower bound"
		if v != bounds.Lower(n) {
			status = fmt.Sprintf("DIFFERS from lower bound %d", bounds.Lower(n))
		}
		fmt.Printf("n=%d  t*=%d  lower=%d  upper=%d  states=%d  %v  (%s)\n",
			n, v, bounds.Lower(n), bounds.UpperLinear(n),
			s.StatesExplored(), time.Since(start).Round(time.Millisecond), status)
		if v > bounds.UpperLinear(n) {
			return fmt.Errorf("n=%d: exact value %d exceeds the paper's upper bound %d",
				n, v, bounds.UpperLinear(n))
		}
		if *schedule {
			if err := printSchedule(n, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func runDeep(n, budget int) error {
	start := time.Now()
	line, depth, err := gamesolver.DeepestLine(n, budget, 4)
	if err != nil {
		return err
	}
	replayed, err := core.BroadcastTime(n, replayAdv{line})
	if err != nil {
		return err
	}
	fmt.Printf("n=%d budget=%d: certified t*(Tn) >= %d (search depth %d, replay %d, lower-bound formula %d) in %s\n",
		n, budget, replayed, depth, replayed, bounds.Lower(n), time.Since(start).Round(time.Millisecond))
	return nil
}

// replayAdv repeats the last tree once the schedule is exhausted.
type replayAdv struct{ trees []*tree.Tree }

func (r replayAdv) Next(v core.View) *tree.Tree {
	if len(r.trees) == 0 {
		return nil
	}
	if i := v.Round(); i < len(r.trees) {
		return r.trees[i]
	}
	return r.trees[len(r.trees)-1]
}

func printSchedule(n int, s *gamesolver.Solver) error {
	fmt.Printf("  optimal schedule for n=%d:\n", n)
	_, err := core.Run(n, gamesolver.Optimal{S: s}, core.Broadcast,
		core.WithObserver(func(round int, t *tree.Tree, e *core.Engine) {
			fmt.Printf("    round %d: %v (leaves=%d, path=%v)\n",
				round, t, t.NumLeaves(), t.IsPath())
		}))
	return err
}
