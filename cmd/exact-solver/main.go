// Command exact-solver computes the exact broadcast time t*(Tn) for small
// n by solving the full adversary game (experiment E7), and optionally
// prints an optimal schedule.
//
// Usage:
//
//	exact-solver -max-n 5
//	exact-solver -max-n 5 -schedule
//	exact-solver -max-n 6 -force -parallel 0            # all cores
//	exact-solver -max-n 6 -force -table results/tables  # resume + persist
//
// With -table DIR, the solver loads DIR/n<k>.solvetable before solving
// (a previous run's table — even a partial autosave from an interrupted
// solve — pre-warms the search) and saves the full table back after.
// While solving, a live progress line goes to stderr when it is a
// terminal (suppress with -quiet), and the table is autosaved every 30
// seconds so long n=6+ runs can be killed and resumed.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"dyntreecast/internal/bounds"
	"dyntreecast/internal/core"
	"dyntreecast/internal/gamesolver"
	"dyntreecast/internal/tree"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "exact-solver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("exact-solver", flag.ContinueOnError)
	var (
		maxN     = fs.Int("max-n", gamesolver.MaxN, "solve for n = 2..max-n")
		schedule = fs.Bool("schedule", false, "print an optimal tree schedule per n")
		force    = fs.Bool("force", false, "allow n above the default safety limit (slow)")
		parallel = fs.Int("parallel", 0, "solver worker goroutines (0 = all cores, 1 = serial)")
		tableDir = fs.String("table", "", "solve-table directory: load n<k>.solvetable before solving, save after")
		quiet    = fs.Bool("quiet", false, "suppress the live progress line")
		deepN    = fs.Int("deep", 0, "run the anytime deep-line witness search at this n (6 or 7 are practical) instead of exact solving")
		budget   = fs.Int("budget", 30000, "state-expansion budget for -deep")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *deepN > 0 {
		return runDeep(*deepN, *budget)
	}

	for n := 2; n <= *maxN; n++ {
		opts := []gamesolver.Option{gamesolver.Parallel(*parallel)}
		if *force {
			opts = append(opts, gamesolver.WithMaxN(*maxN))
		}
		// The progress callback carries both the live line and the table
		// autosave, so it is registered whenever either is wanted — an
		// unattended redirected run still autosaves.
		prog := &progressLine{start: time.Now(), n: n, draw: !*quiet && stderrIsTerminal()}
		if prog.draw || *tableDir != "" {
			opts = append(opts, gamesolver.WithProgress(0, prog.update))
		}
		s, err := gamesolver.New(n, opts...)
		if err != nil {
			return err
		}
		var tablePath string
		if *tableDir != "" {
			tablePath = filepath.Join(*tableDir, fmt.Sprintf("n%d.solvetable", n))
			if loaded, err := s.LoadTable(tablePath); err == nil {
				fmt.Printf("# n=%d: loaded %d states from %s\n", n, loaded, tablePath)
			} else if !os.IsNotExist(err) {
				fmt.Fprintf(os.Stderr, "exact-solver: ignoring table %s: %v\n", tablePath, err)
			}
			prog.solver, prog.table = s, tablePath
			prog.lastSave = time.Now()
		}
		start := time.Now()
		v := s.Value()
		prog.clear()
		status := "matches lower bound"
		if v != bounds.Lower(n) {
			status = fmt.Sprintf("DIFFERS from lower bound %d", bounds.Lower(n))
		}
		fmt.Printf("n=%d  t*=%d  lower=%d  upper=%d  states=%d  %v  (%s)\n",
			n, v, bounds.Lower(n), bounds.UpperLinear(n),
			s.StatesExplored(), time.Since(start).Round(time.Millisecond), status)
		if v > bounds.UpperLinear(n) {
			return fmt.Errorf("n=%d: exact value %d exceeds the paper's upper bound %d",
				n, v, bounds.UpperLinear(n))
		}
		if tablePath != "" {
			if err := s.SaveTable(tablePath); err != nil {
				return err
			}
			fmt.Printf("# n=%d: saved %d states to %s\n", n, s.StatesExplored(), tablePath)
		}
		if *schedule {
			if err := printSchedule(n, s); err != nil {
				return err
			}
		}
	}
	return nil
}

// progressLine renders a throttled single-line status to stderr and
// autosaves the solve table every 30 seconds. The solver invokes update
// from at most one goroutine at a time (its progress lock), so no
// further synchronization is needed here.
type progressLine struct {
	start    time.Time
	n        int
	draw     bool // render the live line (stderr is a terminal, not -quiet)
	solver   *gamesolver.Solver
	table    string
	lastTick time.Time
	lastSave time.Time
	active   bool
}

func (p *progressLine) update(st gamesolver.Stats) {
	now := time.Now()
	if p.draw && now.Sub(p.lastTick) >= 300*time.Millisecond {
		p.lastTick = now
		p.active = true
		fmt.Fprintf(os.Stderr, "\r\033[Kn=%d solving: states=%d applies=%d pruned=%d (%.0fs)",
			p.n, st.States, st.Applies, st.Deduped+st.Dominated,
			now.Sub(p.start).Seconds())
	}
	if p.table != "" && now.Sub(p.lastSave) >= 30*time.Second {
		p.lastSave = now
		if err := p.solver.SaveTable(p.table); err != nil {
			fmt.Fprintf(os.Stderr, "\nexact-solver: autosave failed: %v\n", err)
		}
	}
}

func (p *progressLine) clear() {
	if p.active {
		fmt.Fprint(os.Stderr, "\r\033[K")
		p.active = false
	}
}

// stderrIsTerminal reports whether stderr is attached to a terminal, so
// the live progress line never pollutes redirected logs.
func stderrIsTerminal() bool {
	fi, err := os.Stderr.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

func runDeep(n, budget int) error {
	start := time.Now()
	line, depth, err := gamesolver.DeepestLine(n, budget, 4)
	if err != nil {
		return err
	}
	replayed, err := core.BroadcastTime(n, replayAdv{line})
	if err != nil {
		return err
	}
	fmt.Printf("n=%d budget=%d: certified t*(Tn) >= %d (search depth %d, replay %d, lower-bound formula %d) in %s\n",
		n, budget, replayed, depth, replayed, bounds.Lower(n), time.Since(start).Round(time.Millisecond))
	return nil
}

// replayAdv repeats the last tree once the schedule is exhausted.
type replayAdv struct{ trees []*tree.Tree }

func (r replayAdv) Next(v core.View) *tree.Tree {
	if len(r.trees) == 0 {
		return nil
	}
	if i := v.Round(); i < len(r.trees) {
		return r.trees[i]
	}
	return r.trees[len(r.trees)-1]
}

func printSchedule(n int, s *gamesolver.Solver) error {
	fmt.Printf("  optimal schedule for n=%d:\n", n)
	_, err := core.Run(n, gamesolver.Optimal{S: s}, core.Broadcast,
		core.WithObserver(func(round int, t *tree.Tree, e *core.Engine) {
			fmt.Printf("    round %d: %v (leaves=%d, path=%v)\n",
				round, t, t.NumLeaves(), t.IsPath())
		}))
	return err
}
