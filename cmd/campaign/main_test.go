package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dyntreecast/internal/campaign"
)

func TestRunSpecFileJSON(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	outPath := filepath.Join(dir, "artifact.json")
	specJSON := `{"name":"smoke","adversaries":["static-path"],"ns":[8,16],"trials":2,"seed":1}`
	if err := os.WriteFile(specPath, []byte(specJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-spec", specPath, "-format", "json", "-out", outPath}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var o campaign.Outcome
	if err := json.Unmarshal(data, &o); err != nil {
		t.Fatal(err)
	}
	if o.Spec.Name != "smoke" || o.Jobs != 4 || o.Completed != 4 || o.Failed != 0 {
		t.Errorf("artifact wrong: %+v", o)
	}
	// Deterministic cells: the static path takes exactly n−1 rounds.
	if len(o.Cells) != 2 || o.Cells[0].Mean != 7 || o.Cells[1].Mean != 15 {
		t.Errorf("cells wrong: %+v", o.Cells)
	}
}

func TestRunGridFlags(t *testing.T) {
	out := filepath.Join(t.TempDir(), "grid.csv")
	err := run([]string{"-adversaries", "static-path,ascending-path", "-ns", "8",
		"-trials", "2", "-seed", "3", "-format", "csv", "-out", out})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"static-path/n=8", "ascending-path/n=8"} {
		if !bytes.Contains(data, []byte(want)) {
			t.Errorf("CSV missing cell %q:\n%s", want, data)
		}
	}
}

// TestRunScenarioFlags: repeatable -scenario flags drive the v2 schema —
// a bare name plus a parameterized JSON scenario with a k axis.
func TestRunScenarioFlags(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "scen.json")
	err := run([]string{
		"-scenario", "static-path",
		"-scenario", `{"adversary":"k-inner","params":{"k":[2,3]}}`,
		"-ns", "8", "-trials", "2", "-seed", "4", "-format", "json", "-out", out})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var o campaign.Outcome
	if err := json.Unmarshal(data, &o); err != nil {
		t.Fatal(err)
	}
	if o.Spec.Version != campaign.SpecVersion || len(o.Spec.Scenarios) != 3 {
		t.Errorf("artifact spec not canonical: %+v", o.Spec)
	}
	for _, cell := range []string{"static-path/n=8", "k-inner/n=8/k=2", "k-inner/n=8/k=3"} {
		if !bytes.Contains(data, []byte(`"`+cell+`"`)) {
			t.Errorf("artifact missing cell %q", cell)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	cases := map[string][]string{
		"unknown flag":       {"-no-such-flag"},
		"unknown adversary":  {"-adversaries", "omniscient"},
		"bad ns":             {"-ns", "eight"},
		"bad ks":             {"-adversaries", "k-leaves", "-ns", "8", "-ks", "two"},
		"unknown format":     {"-format", "yaml"},
		"unknown goal":       {"-goal", "multicast"},
		"missing spec file":  {"-spec", filepath.Join(t.TempDir(), "nope.json")},
		"bad scenario":       {"-scenario", `{"adversary":"omniscient"}`},
		"bad scenario json":  {"-scenario", `{"adversary":`},
		"scenario bad param": {"-scenario", `{"adversary":"k-leaves","params":{"k":"two"}}`},
	}
	for name, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("%s: run(%v) succeeded", name, args)
		}
	}
}

func TestRunBadSpecFile(t *testing.T) {
	specPath := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(specPath, []byte(`{"adversaries":["random-tree"],"workerz":3}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-spec", specPath})
	if err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Errorf("unknown spec field accepted: %v", err)
	}
}

// TestCheckpointFlag: a completed checkpointed run leaves a full
// checkpoint, and a rerun against it reuses every job and writes a
// byte-identical artifact.
func TestCheckpointFlag(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "run.ckpt")
	out1 := filepath.Join(dir, "a1.json")
	out2 := filepath.Join(dir, "a2.json")
	args := []string{"-adversaries", "random-tree", "-ns", "8,16", "-trials", "3",
		"-seed", "5", "-format", "json", "-checkpoint", ckpt}

	if err := run(append(args, "-out", out1)); err != nil {
		t.Fatal(err)
	}
	cp, err := campaign.LoadCheckpointFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Results) != 6 {
		t.Errorf("checkpoint holds %d jobs, want 6", len(cp.Results))
	}

	if err := run(append(args, "-out", out2)); err != nil {
		t.Fatal(err)
	}
	a1, err := os.ReadFile(out1)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a1, a2) {
		t.Error("resumed artifact differs from original")
	}
}

// TestCheckpointFlagRejectsForeignSpec: pointing -checkpoint at another
// spec's file must fail loudly instead of corrupting it.
func TestCheckpointFlagRejectsForeignSpec(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "run.ckpt")
	if err := run([]string{"-adversaries", "random-tree", "-ns", "8", "-trials", "2",
		"-checkpoint", ckpt, "-out", filepath.Join(dir, "a.json"), "-format", "json"}); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-adversaries", "random-tree", "-ns", "8", "-trials", "2",
		"-seed", "99", "-checkpoint", ckpt, "-out", filepath.Join(dir, "b.json"), "-format", "json"})
	if err == nil || !strings.Contains(err.Error(), "different spec") {
		t.Errorf("foreign checkpoint accepted: %v", err)
	}
}

// TestCacheFlag: a cache-assisted run of a grown grid produces the same
// artifact as a cache-free run.
func TestCacheFlag(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cells")
	small := []string{"-adversaries", "random-tree", "-ns", "8", "-trials", "3",
		"-seed", "7", "-format", "json", "-cache", cacheDir}
	if err := run(append(small, "-out", filepath.Join(dir, "small.json"))); err != nil {
		t.Fatal(err)
	}

	grown := []string{"-adversaries", "random-tree", "-ns", "8,16", "-trials", "3",
		"-seed", "7", "-format", "json"}
	warmOut := filepath.Join(dir, "warm.json")
	coldOut := filepath.Join(dir, "cold.json")
	if err := run(append(grown, "-cache", cacheDir, "-out", warmOut)); err != nil {
		t.Fatal(err)
	}
	if err := run(append(grown, "-out", coldOut)); err != nil {
		t.Fatal(err)
	}
	warm, err := os.ReadFile(warmOut)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := os.ReadFile(coldOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(warm, cold) {
		t.Error("cache-assisted artifact differs from cache-free artifact")
	}
}

func TestParseHelpers(t *testing.T) {
	got, err := parseInts(" 8, 16 ,32")
	if err != nil || !reflect.DeepEqual(got, []int{8, 16, 32}) {
		t.Errorf("parseInts = %v, %v", got, err)
	}
	if _, err := parseInts("8,x"); err == nil {
		t.Error("parseInts accepted garbage")
	}
	if got := splitNames(" a ,, b "); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("splitNames = %v", got)
	}
}

// TestJoinFlag runs the CLI as a one-shot cluster coordinator on an
// ephemeral port: the artifact must be byte-identical to a plain local
// run of the same spec, with or without a worker actually joining.
func TestJoinFlag(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	specJSON := `{"name":"joinsmoke","adversaries":["static-path","random-tree"],"ns":[8,16],"trials":3,"seed":7}`
	if err := os.WriteFile(specPath, []byte(specJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	localOut := filepath.Join(dir, "local.json")
	if err := run([]string{"-spec", specPath, "-format", "json", "-out", localOut}); err != nil {
		t.Fatal(err)
	}
	joinOut := filepath.Join(dir, "join.json")
	if err := run([]string{"-spec", specPath, "-format", "json", "-out", joinOut, "-join", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	local, err := os.ReadFile(localOut)
	if err != nil {
		t.Fatal(err)
	}
	joined, err := os.ReadFile(joinOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(local, joined) {
		t.Errorf("-join artifact differs from local run:\n%s\nvs\n%s", joined, local)
	}
	// A busy or invalid address is a startup error, not a hang.
	if err := run([]string{"-spec", specPath, "-join", "256.256.256.256:1"}); err == nil {
		t.Error("run with bogus -join address succeeded")
	}
}

func TestLeaseTTLRequiresJoin(t *testing.T) {
	if err := run([]string{"-adversaries", "static-path", "-ns", "8", "-trials", "1", "-lease-ttl", "5s"}); err == nil {
		t.Error("run with -lease-ttl but no -join succeeded")
	}
}
