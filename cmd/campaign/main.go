// Command campaign runs a sharded, multi-core experiment campaign: a
// declarative adversary × n × k × trials grid compiled into jobs with
// deterministically pre-split random sources and executed on a worker
// pool. Output is bit-identical for a given spec and seed regardless of
// -workers, so campaign artifacts are machine-diffable across runs,
// machines, and PRs.
//
// The grid comes from a JSON spec file, from scenario flags, or from the
// legacy adversary/ks flags:
//
//	campaign -spec sweep.json -format json -out sweep.json.out
//	campaign -scenario random-tree -scenario '{"adversary":"k-leaves","params":{"k":[2,4]}}' -ns 32,64 -trials 20
//	campaign -adversaries random-tree,random-path -ns 16,32,64 -trials 50
//	campaign -adversaries k-leaves,k-inner -ns 32,64 -ks 2,4,8 -trials 20 -format csv
//	campaign -adversaries random-tree -ns 64 -trials 100 -goal gossip -workers 4 -progress
//
// A spec file is the JSON form of the same grid (schema v2; the legacy
// adversaries/ks form is still accepted and canonicalized):
//
//	{"version": 2, "name": "restricted",
//	 "scenarios": [{"adversary": "k-leaves", "params": {"k": [2, 4]}}],
//	 "ns": [32, 64], "trials": 20, "seed": 1}
//
// Jobs are scheduled as cell batches: a cell's trials run sequentially on
// one worker against a pooled engine arena, which is what keeps large
// grids allocation-free (see DESIGN.md §3d). -batch caps the batch size
// (default 0 = whole cell; 1 recovers one-trial-per-job scheduling, which
// can help few-cell grids spread across more cores). The artifact is
// byte-identical for every -batch and -workers combination.
//
// When stderr is a terminal a live progress line repaints after every
// completed job — done/total cells and trials, observed trials/sec, and
// the ETA they imply. -quiet suppresses it; -progress forces it even
// when stderr is redirected. The line is stderr-only decoration:
// artifacts are byte-identical with or without it.
//
// Interrupting the run (SIGINT/SIGTERM) cancels the pool promptly; the
// aggregate of the jobs that did finish is still written.
//
// Two flags wire in the campaign service layer (DESIGN.md §3b):
// -checkpoint FILE records completed jobs as they land, and a rerun with
// the same spec and checkpoint resumes where the interrupted run stopped
// — the final artifact is byte-identical to an uninterrupted run.
// -cache DIR keeps a content-addressed store of finished grid cells, so
// re-running overlapping grids recomputes only the new cells:
//
//	campaign -spec sweep.json -checkpoint sweep.ckpt -cache ~/.dyntreecast-cells -format json
//
// -join ADDR turns the run into a one-shot cluster coordinator: the
// /cluster/lease and /cluster/results endpoints come up on ADDR and
// remote workers (campaignd -worker -join http://ADDR) can lease grid
// cells for the duration of the run, while the local pool keeps working.
// Workers can join and die freely: unleased and abandoned cells fall back
// to local execution, and the artifact is byte-identical to a purely
// local run (see DESIGN.md §3e). -shard-trials N additionally splits each
// cell into leases of at most N trials, so a grid dominated by one big
// cell still spreads across the fleet — again without changing a single
// artifact byte (DESIGN.md §3g):
//
//	campaign -spec sweep.json -join :9090 -shard-trials 8 -format json
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"dyntreecast/internal/campaign"
	"dyntreecast/internal/campaign/cache"
	"dyntreecast/internal/cluster"
	"dyntreecast/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("campaign", flag.ContinueOnError)
	var scenarios campaign.ScenarioFlag
	fs.Var(&scenarios, "scenario", "scenario: a family name or a JSON object "+
		`{"adversary":NAME,"params":{...}} (repeatable; overrides -adversaries/-ks)`)
	var (
		specPath = fs.String("spec", "", "JSON spec file ('-' = stdin); overrides the grid flags")
		advsFlag = fs.String("adversaries", "random-tree", "comma-separated adversaries: "+strings.Join(campaign.Adversaries(), ", "))
		nsFlag   = fs.String("ns", "16,32,64", "comma-separated n values")
		ksFlag   = fs.String("ks", "", "comma-separated k values (k-leaves / k-inner)")
		trials   = fs.Int("trials", 20, "trials per grid point")
		seed     = fs.Uint64("seed", 1, "campaign seed")
		goal     = fs.String("goal", "broadcast", "goal: broadcast or gossip")
		maxR     = fs.Int("max-rounds", 0, "round budget per run (0 = engine default n^2+1)")
		name     = fs.String("name", "", "campaign name (recorded in artifacts)")
		workers  = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
		batch    = fs.Int("batch", 0, "trials per scheduled cell batch (0 = whole cell, 1 = per-trial); output is identical for every value")
		format   = fs.String("format", "table", "output: table, csv, json, jsonl")
		outPath  = fs.String("out", "", "write output to this file instead of stdout")
		progress = fs.Bool("progress", false, "force the live progress line even when stderr is not a terminal")
		quiet    = fs.Bool("quiet", false, "suppress the live progress line on stderr")
		ckptPath = fs.String("checkpoint", "", "checkpoint completed jobs to this file; an existing matching checkpoint is resumed")
		cacheDir = fs.String("cache", "", "content-addressed cell cache directory; overlapping grids reuse finished cells")
		joinAddr = fs.String("join", "", "accept cluster workers on this address for the run (campaignd -worker -join)")
		leaseTTL = fs.Duration("lease-ttl", cluster.DefaultLeaseTTL, "cell lease lifetime before re-issue (with -join)")
		shardTr  = fs.Int("shard-trials", 0, "lease cells in shards of at most this many trials, so one big cell spreads across workers (with -join; 0 = whole cells; artifacts are identical for every value)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *joinAddr == "" {
		var set []string
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "lease-ttl" || f.Name == "shard-trials" {
				set = append(set, "-"+f.Name)
			}
		})
		if len(set) > 0 {
			return fmt.Errorf("%s is only meaningful with -join", strings.Join(set, ", "))
		}
	}
	if *shardTr < 0 {
		return fmt.Errorf("-shard-trials must be >= 0")
	}

	var spec campaign.Spec
	if *specPath != "" {
		var err error
		spec, err = campaign.LoadSpecFile(*specPath)
		if err != nil {
			return err
		}
	} else {
		ns, err := parseInts(*nsFlag)
		if err != nil {
			return fmt.Errorf("-ns: %w", err)
		}
		spec = campaign.Spec{
			Name:      *name,
			Ns:        ns,
			Trials:    *trials,
			Seed:      *seed,
			Goal:      *goal,
			MaxRounds: *maxR,
		}
		if len(scenarios) > 0 {
			spec.Scenarios = scenarios
		} else {
			spec.Adversaries = splitNames(*advsFlag)
			if *ksFlag != "" {
				if spec.Ks, err = parseInts(*ksFlag); err != nil {
					return fmt.Errorf("-ks: %w", err)
				}
			}
		}
		if spec.Goal == "broadcast" {
			spec.Goal = "" // the default; keep artifacts minimal
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := campaign.Config{Workers: *workers, Batch: *batch}
	if !*quiet && (*progress || stderrIsTerminal()) {
		cfg.Progress = progressLine(spec.Trials, time.Now())
	}
	if *cacheDir != "" {
		c, err := cache.NewDir(*cacheDir)
		if err != nil {
			return err
		}
		cfg.Cache = cache.Instrument("dir", c)
	}
	if *joinAddr != "" {
		coord := cluster.New(cluster.Options{LeaseTTL: *leaseTTL, ShardTrials: *shardTr})
		ln, err := net.Listen("tcp", *joinAddr)
		if err != nil {
			return fmt.Errorf("-join: %w", err)
		}
		srv := &http.Server{Handler: coord.Handler()}
		go srv.Serve(ln)
		defer func() {
			shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			srv.Shutdown(shutCtx)
		}()
		cfg.Remote = coord
		fmt.Fprintf(os.Stderr, "campaign: accepting cluster workers on %s\n", ln.Addr())
	}
	if *ckptPath != "" {
		cf, err := campaign.OpenCheckpointFile(*ckptPath, spec)
		if err != nil {
			return err
		}
		if n := len(cf.Completed); n > 0 {
			fmt.Fprintf(os.Stderr, "campaign: resuming %d completed jobs from %s\n", n, *ckptPath)
		}
		cfg = cf.Wire(cfg)
		defer func() {
			if err := cf.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "campaign:", err)
			}
		}()
	}
	outcome, runErr := campaign.RunSpec(ctx, spec, cfg)
	if outcome == nil {
		return runErr
	}
	if runErr != nil {
		// Cancelled: report, but still write the partial aggregate.
		fmt.Fprintln(os.Stderr, "campaign:", runErr)
	}
	if *cacheDir != "" || *ckptPath != "" {
		fmt.Fprintf(os.Stderr, "campaign: %d jobs executed, %d from cache, %d from checkpoint\n",
			outcome.Executed, outcome.CacheHits, outcome.Reused)
	}

	w := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return fmt.Errorf("creating -out: %w", err)
		}
		defer f.Close()
		w = f
	}
	if err := write(w, outcome, *format); err != nil {
		return err
	}
	if outcome.Failed > 0 {
		return fmt.Errorf("%d/%d jobs failed (first: %s)", outcome.Failed, outcome.Jobs, outcome.Errors[0])
	}
	return runErr
}

// stderrIsTerminal reports whether stderr is a character device; the
// live progress line defaults on for humans at a terminal and off when
// stderr is redirected (a log capture should not fill with \r frames).
func stderrIsTerminal() bool {
	fi, err := os.Stderr.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

// progressLine returns a Config.Progress callback that repaints one
// stderr status line per completed job: done/total cells and trials,
// observed trials/sec, and the ETA those imply. Progress callbacks are
// serialized by the runner, so no locking is needed, and the line is
// pure stderr decoration — artifacts are identical with or without it.
func progressLine(trialsPerCell int, start time.Time) func(done, total int) {
	if trialsPerCell <= 0 {
		trialsPerCell = 1
	}
	return func(done, total int) {
		elapsed := time.Since(start).Seconds()
		var rate float64
		if elapsed > 0 {
			rate = float64(done) / elapsed
		}
		eta := "--"
		if rate > 0 && done < total {
			eta = (time.Duration(float64(total-done)/rate*1e9) * time.Nanosecond).Round(time.Second).String()
		}
		fmt.Fprintf(os.Stderr, "\rcampaign: %d/%d cells, %d/%d trials, %.0f trials/sec, ETA %s    ",
			done/trialsPerCell, (total+trialsPerCell-1)/trialsPerCell, done, total, rate, eta)
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
	}
}

func write(w io.Writer, outcome *campaign.Outcome, format string) error {
	switch format {
	case "table":
		return experiment.CampaignTable(outcome).WriteText(w)
	case "csv":
		return experiment.CampaignTable(outcome).WriteCSV(w)
	case "json":
		return outcome.WriteJSON(w)
	case "jsonl":
		return outcome.WriteJSONL(w)
	}
	return fmt.Errorf("unknown format %q (want table, csv, json, jsonl)", format)
}

func splitNames(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
