// Command results queries the results warehouse of a running campaignd
// (started with -store) over its GET /results endpoints and renders the
// answer as a table, CSV, or raw JSON. It is the command-line companion
// to the dashboard's results tab: the same filters, the same paginated
// walk, scriptable.
//
// The default mode lists warehouse rows, following pagination cursors
// until the result set is exhausted:
//
//	results -addr http://localhost:8080
//	results -campaign c0001-ab12cd34 -format csv
//	results -adversary k-leaves -nmin 32 -nmax 128 -goal broadcast
//
// Three flag-selected modes answer the cross-campaign questions:
//
//	results -campaigns                    # ingested campaigns with cell counts and pins
//	results -diff c0001-ab12cd34,c0002-ab12cd34   # content-address diff; identical cells elide
//	results -curves -adversary random-tree        # measured bound curves + exact gamesolver values
//
// -format json emits the server's response verbatim (rows mode emits the
// concatenation of all pages' rows as one array), so the CLI composes
// with jq without any schema of its own.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"

	"dyntreecast/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "results:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("results", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "http://localhost:8080", "campaignd base URL (daemon must run with -store)")
		campaign  = fs.String("campaign", "", "filter: exact campaign id")
		adversary = fs.String("adversary", "", "filter: scenario family name")
		goal      = fs.String("goal", "", "filter: broadcast or gossip")
		n         = fs.Int("n", 0, "filter: exact n (0 = any)")
		nmin      = fs.Int("nmin", 0, "filter: inclusive lower bound on n")
		nmax      = fs.Int("nmax", 0, "filter: inclusive upper bound on n")
		limit     = fs.Int("limit", 0, "page size per request (0 = server default; the walk still fetches every page)")
		format    = fs.String("format", "table", "output: table, csv, json")
		campaigns = fs.Bool("campaigns", false, "list ingested campaigns instead of rows")
		diff      = fs.String("diff", "", "diff two campaigns: comma-separated pair of ids")
		curves    = fs.Bool("curves", false, "emit bound curves (measured vs exact) instead of rows")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	switch *format {
	case "table", "csv", "json":
	default:
		return fmt.Errorf("unknown format %q (want table, csv, json)", *format)
	}
	modes := 0
	for _, on := range []bool{*campaigns, *diff != "", *curves} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		return fmt.Errorf("-campaigns, -diff and -curves are mutually exclusive")
	}
	c := client{base: strings.TrimRight(*addr, "/")}

	switch {
	case *campaigns:
		return c.campaigns(stdout, *format)
	case *diff != "":
		a, b, ok := strings.Cut(*diff, ",")
		a, b = strings.TrimSpace(a), strings.TrimSpace(b)
		if !ok || a == "" || b == "" {
			return fmt.Errorf("-diff wants two comma-separated campaign ids")
		}
		return c.diff(stdout, *format, a, b)
	case *curves:
		return c.curves(stdout, *format, *adversary, *goal, *campaign)
	}

	q := url.Values{}
	for _, p := range []struct{ k, v string }{
		{"campaign", *campaign}, {"adversary", *adversary}, {"goal", *goal},
	} {
		if p.v != "" {
			q.Set(p.k, p.v)
		}
	}
	for _, p := range []struct {
		k string
		v int
	}{{"n", *n}, {"nmin", *nmin}, {"nmax", *nmax}, {"limit", *limit}} {
		if p.v != 0 {
			q.Set(p.k, strconv.Itoa(p.v))
		}
	}
	return c.rows(stdout, *format, q)
}

// client is a thin JSON client over the warehouse endpoints.
type client struct{ base string }

// get decodes one endpoint response into v, turning the daemon's error
// envelope into a CLI error.
func (c client) get(path string, q url.Values, v any) error {
	u := c.base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	resp, err := http.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		var envelope struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &envelope) == nil && envelope.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, envelope.Error)
		}
		return fmt.Errorf("GET %s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// rows walks every page of GET /results matching q and renders the
// concatenated rows.
func (c client) rows(w io.Writer, format string, q url.Values) error {
	var rows []store.Row
	for {
		var page store.Page
		if err := c.get("/results", q, &page); err != nil {
			return err
		}
		rows = append(rows, page.Rows...)
		if page.NextCursor == "" {
			break
		}
		q.Set("cursor", page.NextCursor)
	}
	if format == "json" {
		return writeJSON(w, rows)
	}
	header := []string{"campaign", "cell", "n", "goal", "trials", "mean", "stddev", "min", "max", "p50", "p99"}
	records := make([][]string, 0, len(rows))
	for _, r := range rows {
		records = append(records, []string{
			r.Campaign, r.Cell, strconv.Itoa(r.N), r.Goal, strconv.Itoa(r.Trials),
			f1(r.Mean), f1(r.StdDev), f1(r.Min), f1(r.Max), f1(r.P50), f1(r.P99),
		})
	}
	return writeRecords(w, format, header, records)
}

func (c client) campaigns(w io.Writer, format string) error {
	var infos []store.CampaignInfo
	if err := c.get("/results/campaigns", nil, &infos); err != nil {
		return err
	}
	if format == "json" {
		return writeJSON(w, infos)
	}
	header := []string{"id", "source", "goal", "cells", "trials", "pinned", "engine"}
	records := make([][]string, 0, len(infos))
	for _, ci := range infos {
		records = append(records, []string{
			ci.ID, ci.Source, ci.Goal, strconv.Itoa(ci.Cells), strconv.Itoa(ci.Trials),
			strconv.FormatBool(ci.Pinned), ci.Engine,
		})
	}
	return writeRecords(w, format, header, records)
}

func (c client) diff(w io.Writer, format, a, b string) error {
	var d store.DiffResult
	if err := c.get("/results/diff", url.Values{"a": {a}, "b": {b}}, &d); err != nil {
		return err
	}
	if format == "json" {
		return writeJSON(w, d)
	}
	header := []string{"status", "cell", "mean_a", "mean_b", "trials_a", "trials_b"}
	records := make([][]string, 0, len(d.Entries))
	side := func(r *store.Row, f func(store.Row) string) string {
		if r == nil {
			return "-"
		}
		return f(*r)
	}
	for _, e := range d.Entries {
		records = append(records, []string{
			e.Status, e.Cell,
			side(e.A, func(r store.Row) string { return f1(r.Mean) }),
			side(e.B, func(r store.Row) string { return f1(r.Mean) }),
			side(e.A, func(r store.Row) string { return strconv.Itoa(r.Trials) }),
			side(e.B, func(r store.Row) string { return strconv.Itoa(r.Trials) }),
		})
	}
	if err := writeRecords(w, format, header, records); err != nil {
		return err
	}
	if format == "table" {
		fmt.Fprintf(w, "%d differing, %d identical (%s vs %s)\n", len(d.Entries), d.Identical, d.A, d.B)
	}
	return nil
}

func (c client) curves(w io.Writer, format, adversary, goal, campaign string) error {
	q := url.Values{}
	for _, p := range []struct{ k, v string }{
		{"adversary", adversary}, {"goal", goal}, {"campaign", campaign},
	} {
		if p.v != "" {
			q.Set(p.k, p.v)
		}
	}
	var curves []store.Curve
	if err := c.get("/results/curves", q, &curves); err != nil {
		return err
	}
	if format == "json" {
		return writeJSON(w, curves)
	}
	// One record per (curve point, campaign): flat enough for CSV and for
	// reading a single curve top to bottom in the table.
	header := []string{"scenario", "goal", "n", "campaign", "mean", "max", "trials", "exact"}
	var records [][]string
	for _, cu := range curves {
		for _, p := range cu.Points {
			exact := "-"
			if p.Exact != nil {
				exact = strconv.Itoa(*p.Exact)
			}
			ids := make([]string, 0, len(p.Measured))
			for id := range p.Measured {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			for _, id := range ids {
				m := p.Measured[id]
				records = append(records, []string{
					cu.Scenario, cu.Goal, strconv.Itoa(p.N), id,
					f1(m.Mean), f1(m.Max), strconv.Itoa(m.Trials), exact,
				})
			}
		}
	}
	return writeRecords(w, format, header, records)
}

// writeRecords renders a header + records either as an aligned text
// table or as CSV.
func writeRecords(w io.Writer, format string, header []string, records [][]string) error {
	if format == "csv" {
		cw := csv.NewWriter(w)
		if err := cw.Write(header); err != nil {
			return err
		}
		if err := cw.WriteAll(records); err != nil {
			return err
		}
		cw.Flush()
		return cw.Error()
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.ToUpper(strings.Join(header, "\t")))
	for _, rec := range records {
		fmt.Fprintln(tw, strings.Join(rec, "\t"))
	}
	return tw.Flush()
}

func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// f1 renders a stat with one decimal, the same precision the campaign
// table uses.
func f1(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) }
