package main

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"dyntreecast/internal/campaign"
	"dyntreecast/internal/server"
	"dyntreecast/internal/store"
)

// warehouseServer runs a small campaign into a fresh warehouse under two
// run ids and serves it the way campaignd -store would.
func warehouseServer(t *testing.T) *httptest.Server {
	t.Helper()
	st, err := store.Open(filepath.Join(t.TempDir(), "warehouse"))
	if err != nil {
		t.Fatal(err)
	}
	spec := campaign.Spec{
		Name:        "cli-test",
		Adversaries: []string{"random-path", "random-tree"},
		Ns:          []int{4, 8},
		Trials:      3,
		Seed:        7,
	}
	out, err := campaign.RunSpec(context.Background(), spec, campaign.Config{Cache: st.Cache()})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"run-a", "run-b"} {
		if _, err := st.IngestOutcome(id, out); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(server.New(server.Options{Store: st, Cache: st.Cache()}))
	t.Cleanup(ts.Close)
	return ts
}

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("results %s: %v", strings.Join(args, " "), err)
	}
	return buf.String()
}

func TestRowsTableWalksAllPages(t *testing.T) {
	ts := warehouseServer(t)
	// Page size 3 over 8 rows forces the cursor walk.
	out := runCLI(t, "-addr", ts.URL, "-limit", "3")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 9 { // header + 2 campaigns × 4 cells
		t.Fatalf("table has %d lines, want 9:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "CAMPAIGN") {
		t.Errorf("missing header: %q", lines[0])
	}
}

func TestRowsFiltersAndCSV(t *testing.T) {
	ts := warehouseServer(t)
	out := runCLI(t, "-addr", ts.URL, "-campaign", "run-a", "-adversary", "random-tree", "-n", "8", "-format", "csv")
	records, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 { // header + 1 matching cell
		t.Fatalf("csv has %d records, want 2:\n%s", len(records), out)
	}
	if records[1][0] != "run-a" || records[1][2] != "8" {
		t.Errorf("filtered record = %v", records[1])
	}
}

func TestRowsJSON(t *testing.T) {
	ts := warehouseServer(t)
	out := runCLI(t, "-addr", ts.URL, "-campaign", "run-a", "-format", "json")
	var rows []store.Row
	if err := json.Unmarshal([]byte(out), &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Errorf("json mode returned %d rows, want 4", len(rows))
	}
}

func TestCampaignsMode(t *testing.T) {
	ts := warehouseServer(t)
	out := runCLI(t, "-addr", ts.URL, "-campaigns")
	if !strings.Contains(out, "run-a") || !strings.Contains(out, "run-b") {
		t.Errorf("campaign listing missing runs:\n%s", out)
	}
}

func TestDiffModeIdenticalRuns(t *testing.T) {
	ts := warehouseServer(t)
	out := runCLI(t, "-addr", ts.URL, "-diff", "run-a, run-b")
	if !strings.Contains(out, "0 differing, 4 identical") {
		t.Errorf("re-ingested run should diff empty:\n%s", out)
	}
}

func TestCurvesMode(t *testing.T) {
	ts := warehouseServer(t)
	out := runCLI(t, "-addr", ts.URL, "-curves", "-adversary", "random-path", "-format", "csv")
	records, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// 2 ns × 2 campaigns measuring each, plus the header.
	if len(records) != 5 {
		t.Fatalf("curves csv has %d records, want 5:\n%s", len(records), out)
	}
	// n=4 is within gamesolver range: the exact column is a number.
	if records[1][2] != "4" || records[1][7] == "-" {
		t.Errorf("n=4 curve point lacks exact value: %v", records[1])
	}
}

func TestCLIErrors(t *testing.T) {
	ts := warehouseServer(t)
	var buf bytes.Buffer
	for _, args := range [][]string{
		{"-addr", ts.URL, "-format", "yaml"},
		{"-addr", ts.URL, "-campaigns", "-curves"},
		{"-addr", ts.URL, "-diff", "only-one-id"},
		{"-addr", ts.URL, "-campaign", "no-such-campaign"},
		{"-addr", ts.URL, "stray"},
		{"-addr", "http://127.0.0.1:1", "-campaigns"},
	} {
		if err := run(args, &buf); err == nil {
			t.Errorf("results %v succeeded", args)
		}
	}
}
