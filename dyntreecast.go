// Package dyntreecast simulates and analyzes the broadcast problem on
// dynamic rooted trees, reproducing "Brief Announcement: Broadcasting Time
// in Dynamic Rooted Trees is Linear" (El-Hayek, Henzinger, Schmid; PODC
// 2022).
//
// # Model
//
// n processes communicate in synchronous rounds. Each round an adversary
// chooses an arbitrary rooted tree on the processes; information flows one
// hop along every parent → child edge (each node also keeps its own
// knowledge — the model's self-loops). Knowledge composes as the product
// graph G(t) = G1 ∘ … ∘ Gt, and the broadcast time t* is the first round
// at which some process's value has reached every process. The paper
// proves
//
//	⌈(3n−1)/2⌉ − 2  ≤  t*(Tn)  ≤  ⌈(1+√2)·n − 1⌉
//
// # Quick start
//
//	rounds, err := dyntreecast.BroadcastTime(64,
//	    dyntreecast.RandomAdversary(dyntreecast.NewRand(1)))
//
// The package offers three strata of adversaries (oblivious schedules,
// adaptive heuristics, and search), two exact-equivalence-tested engines,
// the paper's bound formulas, and an exact game solver for small n. See
// the examples/ directory and DESIGN.md for the full tour.
package dyntreecast

import (
	"context"
	"fmt"
	"os"

	"dyntreecast/internal/adversary"
	"dyntreecast/internal/bounds"
	"dyntreecast/internal/campaign"
	"dyntreecast/internal/campaign/cache"
	"dyntreecast/internal/cluster"
	"dyntreecast/internal/consensus"
	"dyntreecast/internal/core"
	"dyntreecast/internal/gamesolver"
	"dyntreecast/internal/gossip"
	"dyntreecast/internal/graph"
	"dyntreecast/internal/nonsplit"
	"dyntreecast/internal/rng"
	"dyntreecast/internal/tree"
)

// Core model types, aliased from the implementation packages so that the
// root package is the only import a downstream user needs.
type (
	// Tree is a rooted labeled tree on {0,…,n−1}, the round graph of the
	// model (self-loops implicit).
	Tree = tree.Tree
	// Adversary chooses the tree for each round.
	Adversary = core.Adversary
	// View is the read-only knowledge state an Adversary observes.
	View = core.View
	// Engine is the column-oriented simulation engine, for callers that
	// want to drive rounds manually.
	Engine = core.Engine
	// Result reports a completed (or budget-capped) run.
	Result = core.Result
	// Goal selects broadcast or gossip termination.
	Goal = core.Goal
	// Option configures Run.
	Option = core.Option
	// Rand is the deterministic random source used everywhere.
	Rand = rng.Source
	// ExactSolver computes exact t*(Tn) for small n.
	ExactSolver = gamesolver.Solver
	// Runner is the allocation-free trial driver: it owns one reusable
	// Engine and runs trial after trial on it (Reset instead of
	// reallocation), returning round counts identical to Run's. One
	// Runner per goroutine; see BenchmarkTrialHotPath for the effect.
	Runner = core.Runner
	// ReusableAdversary is an adversary whose per-n scratch persists
	// across trials: Reset rebinds it to a fresh trial's random source.
	// An AdversaryFamily may construct one via its NewReusable hook to
	// opt into cross-trial reuse in the batched campaign pipeline.
	ReusableAdversary = campaign.ReusableAdversary
)

// NewRunner returns an empty Runner; its engine is built at the first
// run and resized on demand.
func NewRunner() *Runner { return core.NewRunner() }

// Goals.
const (
	// Broadcast stops when some value has reached every process (t*).
	Broadcast = core.Broadcast
	// Gossip stops when every process has heard every value. Unbounded
	// under adaptive adversaries; see internal/gossip's documentation.
	Gossip = core.Gossip
)

// Sentinel errors.
var (
	// ErrMaxRounds reports an exhausted round budget.
	ErrMaxRounds = core.ErrMaxRounds
	// ErrBadTree reports an adversary returning nil or a wrong-size tree.
	ErrBadTree = core.ErrBadTree
	// ErrInvalidTree wraps all tree-construction failures.
	ErrInvalidTree = tree.ErrInvalidTree
)

// NewRand returns a deterministic random source. Equal seeds give
// bit-identical streams on every platform and Go release.
func NewRand(seed uint64) *Rand { return rng.New(seed) }

// NewTree builds a rooted tree from a parent array (the root is its own
// parent).
func NewTree(parents []int) (*Tree, error) { return tree.New(parents) }

// PathTree returns the directed path visiting order[0] → order[1] → …;
// order must be a permutation of [0,n).
func PathTree(order []int) (*Tree, error) { return tree.Path(order) }

// IdentityPathTree returns the path 0 → 1 → … → n−1, the static schedule
// with t* = n−1.
func IdentityPathTree(n int) *Tree { return tree.IdentityPath(n) }

// StarTree returns the star rooted at root: broadcast completes in one
// round.
func StarTree(n, root int) (*Tree, error) { return tree.Star(n, root) }

// RandomTree returns a uniformly random rooted labeled tree on n vertices
// (all n^(n−1) trees equally likely).
func RandomTree(n int, r *Rand) *Tree { return tree.Random(n, r) }

// NewEngine returns a fresh simulation engine on n processes for manual
// stepping; most callers use Run or BroadcastTime instead.
func NewEngine(n int) *Engine { return core.NewEngine(n) }

// Run drives adv from the initial state until the goal holds.
func Run(n int, adv Adversary, goal Goal, opts ...Option) (Result, error) {
	return core.Run(n, adv, goal, opts...)
}

// BroadcastTime runs adv to broadcast completion and returns the paper's
// quantity t*.
func BroadcastTime(n int, adv Adversary, opts ...Option) (int, error) {
	return core.BroadcastTime(n, adv, opts...)
}

// WithMaxRounds caps a run's rounds (default n²+1, which §2 of the paper
// guarantees suffices for broadcast).
func WithMaxRounds(m int) Option { return core.WithMaxRounds(m) }

// WithObserver installs a per-round callback.
func WithObserver(fn func(round int, t *Tree, e *Engine)) Option {
	return core.WithObserver(fn)
}

// StaticAdversary plays the same tree every round.
func StaticAdversary(t *Tree) Adversary { return adversary.Static{Tree: t} }

// ScheduleAdversary plays the given trees in order, then repeats the last
// one forever.
func ScheduleAdversary(trees []*Tree) Adversary { return adversary.Replay{Trees: trees} }

// RandomAdversary plays an independent uniformly random rooted tree each
// round.
func RandomAdversary(r *Rand) Adversary { return adversary.Random{Src: r} }

// RandomPathAdversary plays an independent uniformly random path each
// round.
func RandomPathAdversary(r *Rand) Adversary { return adversary.RandomPath{Src: r} }

// KLeavesAdversary plays random trees with exactly k leaves — the
// restricted class with O(k·n) broadcast time (Zeiner et al.).
func KLeavesAdversary(k int, r *Rand) Adversary { return adversary.KLeaves{K: k, Src: r} }

// KInnerAdversary plays random trees with exactly k inner nodes — the
// other restricted O(k·n) class.
func KInnerAdversary(k int, r *Rand) Adversary { return adversary.KInner{K: k, Src: r} }

// AscendingPathAdversary plays the path ordered by ascending heard-set
// size: a strong deterministic stalling heuristic (≈ n−1 rounds).
func AscendingPathAdversary() Adversary { return adversary.AscendingPath{} }

// BlockLeaderAdversary freezes the most-spread value each round.
func BlockLeaderAdversary() Adversary { return adversary.BlockLeader{} }

// MinGainAdversary plays a minimum-total-knowledge-gain arborescence each
// round (Chu-Liu/Edmonds). Deliberately measurable as a *failed* heuristic:
// ignoring concentration, it ties into a star and loses immediately — see
// EXPERIMENTS.md E8.
func MinGainAdversary() Adversary { return adversary.MinGain{} }

// SearchSchedule runs an offline beam search for a long-surviving tree
// schedule and returns it with the broadcast time it certifies.
func SearchSchedule(n int, width int, seed uint64) (Adversary, int) {
	rep, rounds := adversary.BeamSearch(n, adversary.BeamConfig{Width: width, Seed: seed})
	return rep, rounds
}

// NewExactSolver returns the exact game solver for n ≤ 5 (see the
// gamesolver package for the complexity discussion).
func NewExactSolver(n int) (*ExactSolver, error) { return gamesolver.New(n) }

// DeepSearchSchedule runs the anytime deep-line game search (n ≤ 8;
// practical for n ≤ 7) and returns the longest surviving schedule found as
// an adversary, together with the broadcast time it certifies. Unlike
// NewExactSolver it gives a lower-bound witness rather than the exact
// value; with modest budgets it certifies the ⌈(3n−1)/2⌉−2 values at
// n = 6 and 7, beyond exact-solver reach.
func DeepSearchSchedule(n, budget, width int) (Adversary, int, error) {
	line, _, err := gamesolver.DeepestLine(n, budget, width)
	if err != nil {
		return nil, 0, err
	}
	adv := adversary.Replay{Trees: line}
	rounds, err := core.BroadcastTime(n, adv)
	if err != nil {
		return nil, 0, err
	}
	return adv, rounds, nil
}

// OptimalAdversary is perfect play for small n, backed by an ExactSolver.
func OptimalAdversary(s *ExactSolver) Adversary { return gamesolver.Optimal{S: s} }

// LowerBound returns ⌈(3n−1)/2⌉ − 2, the known lower bound on t*(Tn).
func LowerBound(n int) int { return bounds.Lower(n) }

// UpperBound returns ⌈(1+√2)·n − 1⌉, the paper's linear upper bound.
func UpperBound(n int) int { return bounds.UpperLinear(n) }

// TrivialBound returns n² (§2).
func TrivialBound(n int) int { return bounds.Trivial(n) }

// NLogNBound returns the ⌈n·log₂ n⌉ bound curve of [2]+[1].
func NLogNBound(n int) int { return bounds.NLogN(n) }

// NLogLogNBound returns the ⌈2n·log₂log₂ n⌉ curve of [9].
func NLogLogNBound(n int) int { return bounds.NLogLogN(n) }

// CheckSandwich errors if a measured broadcast time violates the paper's
// upper bound (which would falsify Theorem 3.1 or reveal a bug).
func CheckSandwich(n, tstar int) error { return bounds.CheckSandwich(n, tstar) }

// GossipTime runs adv until every process has heard every value. Unlike
// broadcast, adversarial gossip need not terminate (see StallerAdversary);
// set WithMaxRounds and handle ErrMaxRounds.
func GossipTime(n int, adv Adversary, opts ...Option) (int, error) {
	return gossip.Time(n, adv, opts...)
}

// BroadcastAndGossipTimes reports, for one run of adv, the round at which
// broadcast completed and the round at which gossip completed.
func BroadcastAndGossipTimes(n int, adv Adversary, opts ...Option) (broadcast, gossipRounds int, err error) {
	return gossip.BothTimes(n, adv, opts...)
}

// StallerAdversary stalls gossip forever on any n ≥ 2 (while completing
// broadcast in a single round): it always plays the star rooted at the
// last process, whose own heard set therefore never grows.
func StallerAdversary() Adversary { return gossip.Staller{} }

// ProductOfTreesIsNonsplit reports whether the product graph of the given
// round graphs has a common in-neighbor for every pair of vertices. The
// simulation lemma behind the previous O(n log log n) bound states this
// always holds for any n−1 rooted trees on n vertices.
func ProductOfTreesIsNonsplit(trees []*Tree) bool {
	return graph.ProductOfTrees(trees).IsNonsplit()
}

// ProductOfTreesRadius returns the minimum eccentricity over vertices that
// reach everyone in the product graph of the given round graphs, or −1 if
// no vertex reaches all others.
func ProductOfTreesRadius(trees []*Tree) int {
	return graph.ProductOfTrees(trees).Radius()
}

// ConsensusResult reports a FloodMin consensus run.
type ConsensusResult = consensus.Result

// FloodMin runs flooding consensus on top of the broadcast engine: every
// process decides min(proposals) once it has heard from everyone.
// Termination equals gossip completion, so adaptive adversaries can stall
// it forever (use WithMaxRounds); agreement and validity always hold.
func FloodMin(proposals []int, adv Adversary, opts ...Option) (ConsensusResult, error) {
	return consensus.FloodMin(proposals, adv, opts...)
}

// NonsplitAdversary chooses a nonsplit round graph each round — the §5
// extension setting (Függer–Nowak–Winkler's O(log log n) regime).
type NonsplitAdversary = nonsplit.Adversary

// NonsplitBroadcastTime runs the broadcast game restricted to nonsplit
// round graphs. maxRounds ≤ 0 selects a budget a few times the
// O(log log n) bound.
func NonsplitBroadcastTime(n int, adv NonsplitAdversary, maxRounds int) (int, error) {
	return nonsplit.Time(n, adv, maxRounds)
}

// Campaign declaratively describes a parallel experiment sweep: the cross
// product scenarios × ns × trials, run toward a goal from one seed. A
// scenario names a registered adversary family with a JSON-serializable
// parameter assignment; the legacy adversaries/ks fields are still
// accepted and canonicalized into scenarios. See the campaign package for
// the determinism contract and Canonical for the schema rules.
type Campaign = campaign.Spec

// Scenario selects one registered adversary family, with a parameter
// assignment, for a Campaign grid. Array-valued params are axes: they
// expand into one grid scenario per element (the cross product when
// several params carry arrays), and omitted params take the family's
// declared defaults.
type Scenario = campaign.Scenario

// AdversaryFamily is one self-describing entry of the open adversary
// registry: a name, declared parameters (with kinds and defaults), an
// optional validity/feasibility contract, and a constructor. Register
// one with RegisterAdversary to make it addressable from Campaign specs,
// cmd/campaign and cmd/sweep, and campaignd — including the cell cache,
// checkpoint/resume, and streaming paths.
type AdversaryFamily = campaign.Family

// AdversaryParam declares one parameter of an AdversaryFamily: JSON key,
// kind (IntParam, FloatParam, StringParam, BoolParam), and an optional
// default (nil makes the parameter required).
type AdversaryParam = campaign.Param

// AdversaryParams is the concrete parameter assignment an
// AdversaryFamily's constructor receives: canonicalized JSON scalars
// keyed by parameter name, with Int/Float/String/Bool accessors.
type AdversaryParams = campaign.Params

// Parameter kinds an AdversaryParam may declare.
const (
	// IntParam accepts JSON integers.
	IntParam = campaign.IntParam
	// FloatParam accepts any JSON number.
	FloatParam = campaign.FloatParam
	// StringParam accepts JSON strings.
	StringParam = campaign.StringParam
	// BoolParam accepts JSON booleans.
	BoolParam = campaign.BoolParam
)

// RegisterAdversary adds a custom parameterized adversary family to the
// open registry, plugging it into campaigns, caching, checkpointing, and
// campaignd without forking internals:
//
//	err := dyntreecast.RegisterAdversary(dyntreecast.AdversaryFamily{
//	    Name:   "my-adversary",
//	    Params: []dyntreecast.AdversaryParam{{Name: "depth", Kind: dyntreecast.IntParam, Default: 2}},
//	    New: func(n int, p dyntreecast.AdversaryParams, r *dyntreecast.Rand) (dyntreecast.Adversary, error) {
//	        return myAdversary(n, p.Int("depth"), r), nil
//	    },
//	})
//
// Family names are unique; re-registering one is an error. Safe for
// concurrent use.
func RegisterAdversary(f AdversaryFamily) error { return campaign.Register(f) }

// AdversaryFamilies returns every registered adversary family in
// canonical order: built-ins first, then registrations in order.
func AdversaryFamilies() []AdversaryFamily { return campaign.Families() }

// CampaignOutcome is the aggregated, machine-diffable result of a
// campaign: per-cell count/mean/stddev/min/max/p50/p99 plus error
// accounting. Its WriteJSON and WriteJSONL methods emit artifacts that
// are byte-identical for identical specs regardless of worker count.
type CampaignOutcome = campaign.Outcome

// CampaignCell is one aggregated grid point of a campaign.
type CampaignCell = campaign.CellStats

// CampaignCacheStore is a content-addressed store of finished campaign
// cells (adversary × n × k grid points). Results are keyed by everything
// that determines them — the spec seed, cell coordinates, goal, round
// budget, trial count, and engine version — so a hit is always
// byte-identical to a recomputation.
type CampaignCacheStore = cache.Cache

// NewMemoryCampaignCache returns an in-process cell cache, useful for
// repeated overlapping campaigns inside one program (and for tests).
func NewMemoryCampaignCache() CampaignCacheStore { return cache.NewMemory() }

// NewDirCampaignCache returns a filesystem cell cache rooted at dir
// (created if needed). It persists across processes and is safe for
// concurrent use, including by several campaigns at once.
func NewDirCampaignCache(dir string) (CampaignCacheStore, error) { return cache.NewDir(dir) }

// CampaignOption tunes RunCampaign and ResumeCampaign.
type CampaignOption func(*campaignSettings)

type campaignSettings struct {
	cfg            campaign.Config
	checkpointPath string
}

// CampaignWithCache serves cells already present in store instead of
// recomputing them, and stores freshly computed cells. Overlapping grids
// recompute only their new cells; artifacts are unchanged either way.
func CampaignWithCache(store CampaignCacheStore) CampaignOption {
	return func(s *campaignSettings) { s.cfg.Cache = store }
}

// CampaignWithCheckpoint records completed jobs to the JSONL file at path
// as they finish. If path already holds a checkpoint of the same spec,
// the run resumes it: completed jobs are reused and only the remainder is
// executed, with the final artifact byte-identical to an uninterrupted
// run. A checkpoint of a different spec is an error.
func CampaignWithCheckpoint(path string) CampaignOption {
	return func(s *campaignSettings) { s.checkpointPath = path }
}

// CampaignWithProgress reports (done, total) after every completed job;
// calls are serialized.
func CampaignWithProgress(fn func(done, total int)) CampaignOption {
	return func(s *campaignSettings) { s.cfg.Progress = fn }
}

// ClusterCoordinator shards running campaigns' grid cells to remote
// workers over HTTP — the distributed campaign fabric. Mount its Handler
// (or serve it through campaignd -cluster) so workers started with
// campaignd -worker -join can lease cells; install it into a run with
// CampaignWithCluster. Because every cell is a pure function of its
// content address, remote workers — including ones that die mid-cell,
// time out, or speak the wrong engine version — can never change
// artifact bytes, only wall-clock time.
type ClusterCoordinator = cluster.Coordinator

// NewClusterCoordinator returns a coordinator with the default lease
// lifetime that leases whole cells. One coordinator serves any number of
// concurrent campaigns.
func NewClusterCoordinator() *ClusterCoordinator { return cluster.New(cluster.Options{}) }

// NewShardedClusterCoordinator returns a coordinator that leases each
// grid cell in shards of at most shardTrials trials, so a grid dominated
// by one big cell still spreads across the fleet. Because every trial's
// random stream is pre-split from the cell's content address, sharding
// never changes artifact bytes — any shardTrials value (including 0,
// whole cells) produces the identical outcome. See DESIGN.md §3g.
func NewShardedClusterCoordinator(shardTrials int) *ClusterCoordinator {
	return cluster.New(cluster.Options{ShardTrials: shardTrials})
}

// CampaignWithCluster distributes the campaign's grid cells through c:
// remote workers lease cells — or trial shards of cells, with
// NewShardedClusterCoordinator — over HTTP while the local pool keeps
// executing, and whichever side finishes a unit first supplies its
// (byte-identical) results. Unleased and abandoned units always fall
// back to local workers, so the campaign completes even if every worker
// dies. Composes unchanged with CampaignWithCache and
// CampaignWithCheckpoint — only cells they don't already cover are
// distributed.
func CampaignWithCluster(c *ClusterCoordinator) CampaignOption {
	return func(s *campaignSettings) { s.cfg.Remote = c }
}

// RunClusterWorker joins the cluster coordinator at url (e.g.
// "http://host:8080") and executes leased cells until ctx is cancelled:
// the in-process form of campaignd -worker -join. Returns nil on
// cancellation; a version-handshake rejection or an unreachable
// coordinator is an error.
func RunClusterWorker(ctx context.Context, url string) error {
	return cluster.RunWorker(ctx, url, cluster.WorkerOptions{})
}

// CampaignWithBatch caps how many trials of one grid cell are scheduled
// as a single unit on one worker. The default (0) batches whole cells —
// a cell's trials run sequentially against a pooled engine arena, the
// fastest configuration for large grids; 1 recovers one-trial-per-job
// scheduling, which can spread a few-cell grid across more cores. The
// outcome is byte-identical for every value.
func CampaignWithBatch(batch int) CampaignOption {
	return func(s *campaignSettings) { s.cfg.Batch = batch }
}

func runCampaign(ctx context.Context, spec Campaign, workers int, opts []CampaignOption) (*CampaignOutcome, error) {
	s := campaignSettings{cfg: campaign.Config{Workers: workers}}
	for _, opt := range opts {
		opt(&s)
	}
	if s.checkpointPath == "" {
		return campaign.RunSpec(ctx, spec, s.cfg)
	}
	cf, err := campaign.OpenCheckpointFile(s.checkpointPath, spec)
	if err != nil {
		return nil, err
	}
	outcome, runErr := campaign.RunSpec(ctx, spec, cf.Wire(s.cfg))
	if err := cf.Close(); err != nil && runErr == nil {
		runErr = err
	}
	return outcome, runErr
}

// RunCampaign compiles spec into per-trial jobs with deterministically
// pre-split random sources and executes them on a worker pool (workers
// <= 0 selects GOMAXPROCS). The outcome is bit-identical for any worker
// count — and, because each grid cell's random streams are derived from
// the seed and the cell's own coordinates alone, identical cells of
// different campaigns agree too, which is what makes the cell cache and
// checkpoint options sound. Cancel ctx to stop early; the partial
// outcome is still returned.
func RunCampaign(ctx context.Context, spec Campaign, workers int, opts ...CampaignOption) (*CampaignOutcome, error) {
	return runCampaign(ctx, spec, workers, opts)
}

// ResumeCampaign continues an interrupted campaign from the checkpoint
// file at path (written by CampaignWithCheckpoint, cmd/campaign
// -checkpoint, or campaignd's graceful shutdown). The checkpoint must
// belong to spec; completed jobs are reused, the rest are executed, new
// results are appended to the checkpoint, and the outcome — including
// its JSON artifact — is byte-identical to an uninterrupted run.
// Outcome.Reused reports how many jobs the checkpoint supplied.
func ResumeCampaign(ctx context.Context, spec Campaign, path string, workers int, opts ...CampaignOption) (*CampaignOutcome, error) {
	// Resuming requires an existing checkpoint; the open below parses and
	// validates it exactly once.
	if st, err := os.Stat(path); err != nil {
		return nil, fmt.Errorf("dyntreecast: no checkpoint to resume: %w", err)
	} else if st.Size() == 0 {
		return nil, fmt.Errorf("dyntreecast: checkpoint %s is empty", path)
	}
	opts = append(opts, CampaignWithCheckpoint(path))
	return runCampaign(ctx, spec, workers, opts)
}

// CampaignAdversaries lists the adversary family names a Campaign may
// reference, in canonical registry order.
//
// Deprecated: it survives as a shim over the open registry; use
// AdversaryFamilies, which also exposes each family's parameters.
func CampaignAdversaries() []string { return campaign.Adversaries() }

// RandomCoverAdversary plays nonsplit graphs that cover each vertex pair
// with a random witness — the non-degenerate random family of the
// nonsplit game.
func RandomCoverAdversary(r *Rand) NonsplitAdversary { return nonsplit.RandomCover{Src: r} }

// LazyCoverAdversary is the adaptive stalling heuristic of the nonsplit
// game.
func LazyCoverAdversary() NonsplitAdversary { return nonsplit.LazyCover{} }
