// Consensus: the broadcast ↔ consensus connection the paper's
// introduction highlights, made executable.
//
// FloodMin decides min(proposals) once a process has heard everyone.
// Under oblivious adversaries it terminates (gossip completes); the
// adaptive staller blocks it forever — the model's consensus
// impossibility in miniature. An "eager" variant that decides on partial
// information is shown to violate agreement.
//
// Run with:
//
//	go run ./examples/consensus
package main

import (
	"errors"
	"fmt"
	"log"

	"dyntreecast"
)

func main() {
	proposals := []int{17, 4, 23, 8, 42, 4, 99, 31}
	n := len(proposals)
	fmt.Printf("FloodMin consensus, n = %d, proposals = %v\n\n", n, proposals)

	// Terminating case: random dynamic trees.
	res, err := dyntreecast.FloodMin(proposals,
		dyntreecast.RandomAdversary(dyntreecast.NewRand(5)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("random adversary: decided %d (the global min)\n", res.Decision)
	fmt.Printf("  first decision at round %d, last at round %d\n",
		res.FirstDecision, res.Rounds)

	// Non-terminating case: the adaptive staller.
	_, err = dyntreecast.FloodMin(proposals, dyntreecast.StallerAdversary(),
		dyntreecast.WithMaxRounds(500))
	if errors.Is(err, dyntreecast.ErrMaxRounds) {
		fmt.Println("\nstaller adversary: no decision after 500 rounds —")
		fmt.Println("  adaptive adversaries stall consensus forever (termination = gossip)")
	} else if err != nil {
		log.Fatal(err)
	} else {
		log.Fatal("unexpected: consensus terminated under the staller")
	}

	fmt.Println("\nwhy wait for full information? an eager variant that decides on a")
	fmt.Println("2-process quorum splits: along the static path 0→1→2→…, process 1")
	fmt.Println("hears {0,1} and decides 0 while process 3 hears {2,3} and decides 2.")
	fmt.Println("FloodMin's full-heard-set rule is what makes agreement unconditional ✓")
}
