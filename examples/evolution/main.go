// Evolution: watch the adjacency matrix evolve — the paper's §3 analytic
// perspective ("a detailed analysis of the evolution of the adjacency
// matrix of the network over time").
//
// We run the strongest deterministic stalling heuristic and print, per
// round, the quantities the proof tracks: total edges, the forced ≥1
// per-round growth (§2), and the row/column extremes whose race decides
// the broadcast time. We also contrast with the nonsplit-restricted game,
// where the same matrix completes in a handful of rounds.
//
// Run with:
//
//	go run ./examples/evolution
package main

import (
	"fmt"
	"log"

	"dyntreecast"
)

func main() {
	const n = 12
	fmt.Printf("matrix evolution under the ascending-path adversary, n = %d\n\n", n)
	fmt.Println("round  edges  +edges  maxrow  done")

	prevEdges := n // identity matrix
	rounds, err := dyntreecast.BroadcastTime(n, dyntreecast.AscendingPathAdversary(),
		dyntreecast.WithObserver(func(round int, t *dyntreecast.Tree, e *dyntreecast.Engine) {
			s := e.Stats()
			fmt.Printf("%5d  %5d  %6d  %6d  %v\n",
				round, s.Edges, s.Edges-prevEdges, s.MaxRow, e.BroadcastDone())
			prevEdges = s.Edges
		}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbroadcast at t* = %d (n−1 = %d, paper upper bound = %d)\n",
		rounds, n-1, dyntreecast.UpperBound(n))
	fmt.Println("note the +edges column: at least one new product edge per round,")
	fmt.Println("the §2 lemma that gives the trivial n² bound — the paper's analysis")
	fmt.Println("sharpens exactly this growth accounting to (1+√2)n.")

	fmt.Printf("\nsame game restricted to nonsplit rounds (the §5 extension):\n")
	for _, m := range []int{12, 64, 256} {
		r, err := dyntreecast.NonsplitBroadcastTime(m, dyntreecast.LazyCoverAdversary(), 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  n=%3d: t* = %d rounds (vs linear ~%d for rooted trees)\n",
			m, r, dyntreecast.LowerBound(m))
	}
	fmt.Println("\nnonsplit rounds collapse broadcast to O(log log n) — the regime the")
	fmt.Println("previous best O(n log log n) bound passed through ✓")
}
