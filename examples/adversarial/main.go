// Adversarial: compare the adversary strata of the repository — oblivious
// schedules, adaptive heuristics, offline search, and (for small n)
// provably optimal play — and show how close each gets to the true
// worst-case broadcast time.
//
// The headline: for n ≤ 5 the exact game value equals the paper's lower
// bound ⌈(3n−1)/2⌉ − 2 exactly, and no adversary ever exceeds the paper's
// new upper bound ⌈(1+√2)n − 1⌉.
//
// Run with:
//
//	go run ./examples/adversarial
package main

import (
	"fmt"
	"log"

	"dyntreecast"
)

func main() {
	// Part 1: exact worst case for small n.
	fmt.Println("exact worst-case broadcast time (perfect adversary play):")
	fmt.Println("   n   t*(Tn)   lower   upper")
	for n := 2; n <= 5; n++ {
		solver, err := dyntreecast.NewExactSolver(n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2d   %5d   %5d   %5d\n",
			n, solver.Value(), dyntreecast.LowerBound(n), dyntreecast.UpperBound(n))
	}
	fmt.Println("  -> the ZSS lower bound is tight for n <= 5")

	// Part 2: adversary strata at a moderate n.
	const n = 24
	fmt.Printf("\nadversary comparison at n = %d (lower=%d, upper=%d):\n",
		n, dyntreecast.LowerBound(n), dyntreecast.UpperBound(n))

	measure := func(name string, adv dyntreecast.Adversary) {
		rounds, err := dyntreecast.BroadcastTime(n, adv)
		if err != nil {
			log.Fatal(err)
		}
		if err := dyntreecast.CheckSandwich(n, rounds); err != nil {
			log.Fatal(err) // would falsify Theorem 3.1
		}
		fmt.Printf("  %-16s t* = %3d  (%.2f n)\n", name, rounds, float64(rounds)/n)
	}

	measure("static path", dyntreecast.StaticAdversary(dyntreecast.IdentityPathTree(n)))
	measure("random trees", dyntreecast.RandomAdversary(dyntreecast.NewRand(1)))
	measure("ascending path", dyntreecast.AscendingPathAdversary())
	measure("block leader", dyntreecast.BlockLeaderAdversary())
	measure("min gain", dyntreecast.MinGainAdversary())

	sched, rounds := dyntreecast.SearchSchedule(n, 16, 1)
	fmt.Printf("  %-16s t* = %3d  (%.2f n)\n", "beam search", rounds, float64(rounds)/n)
	// The searched schedule is replayable: running it again certifies the
	// value.
	again, err := dyntreecast.BroadcastTime(n, sched)
	if err != nil {
		log.Fatal(err)
	}
	if again != rounds {
		log.Fatalf("schedule replay mismatch: %d vs %d", again, rounds)
	}
	fmt.Println("\nevery measured value is a certified lower-bound witness for t*(Tn);")
	fmt.Println("none exceeds the paper's 2.414n upper bound ✓")
}
