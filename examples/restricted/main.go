// Restricted: the Zeiner–Schwarz–Schmid restricted adversary classes.
//
// When the adversary may only play trees with a fixed number k of leaves
// (or of inner nodes), broadcast time is O(k·n) — linear in n for fixed k.
// This example sweeps n for a few k and shows the linear growth, with the
// unrestricted upper bound for scale.
//
// Run with:
//
//	go run ./examples/restricted
package main

import (
	"fmt"
	"log"

	"dyntreecast"
)

func main() {
	const trials = 5
	ns := []int{8, 16, 32, 64}
	ks := []int{2, 4}

	fmt.Println("k-leaf restricted adversaries: mean t* over", trials, "trials")
	fmt.Println("    n    k   mean-t*   t*/n   bound(kn)   unrestricted-upper")
	rand := dyntreecast.NewRand(7)
	for _, k := range ks {
		for _, n := range ns {
			total := 0
			for trial := 0; trial < trials; trial++ {
				rounds, err := dyntreecast.BroadcastTime(n, dyntreecast.KLeavesAdversary(k, rand))
				if err != nil {
					log.Fatal(err)
				}
				if err := dyntreecast.CheckSandwich(n, rounds); err != nil {
					log.Fatal(err)
				}
				total += rounds
			}
			mean := float64(total) / trials
			fmt.Printf("  %4d  %3d   %7.1f   %4.2f   %9d   %18d\n",
				n, k, mean, mean/float64(n), k*n, dyntreecast.UpperBound(n))
		}
		fmt.Println()
	}

	fmt.Println("k-inner restricted adversaries behave symmetrically:")
	for _, n := range []int{16, 32} {
		rounds, err := dyntreecast.BroadcastTime(n, dyntreecast.KInnerAdversary(3, rand))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  n=%2d k-inner=3: t* = %d\n", n, rounds)
	}
	fmt.Println("\nt*/n stays bounded for fixed k: the O(kn) regime of Figure 1 ✓")
}
