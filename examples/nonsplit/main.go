// Nonsplit: the structural fact behind the previous best bound.
//
// The O(n log log n) upper bound that this paper improves on ([9]+[1])
// rests on a simulation lemma: the product of ANY n−1 rooted trees (with
// self-loops) on n vertices is a nonsplit graph — every pair of vertices
// gains a common in-neighbor. This example checks the lemma empirically
// over random tree sequences and reports the radius of the resulting
// product graphs.
//
// Run with:
//
//	go run ./examples/nonsplit
package main

import (
	"fmt"

	"dyntreecast"
)

func main() {
	rand := dyntreecast.NewRand(23)
	const trials = 50

	fmt.Println("product of n-1 random rooted trees: nonsplit? (lemma of [1])")
	fmt.Println("    n   trials   nonsplit   max-radius")
	for _, n := range []int{3, 5, 8, 12, 20} {
		nonsplit, maxRadius := 0, 0
		for trial := 0; trial < trials; trial++ {
			trees := make([]*dyntreecast.Tree, n-1)
			for i := range trees {
				trees[i] = dyntreecast.RandomTree(n, rand)
			}
			if dyntreecast.ProductOfTreesIsNonsplit(trees) {
				nonsplit++
			}
			if r := dyntreecast.ProductOfTreesRadius(trees); r > maxRadius {
				maxRadius = r
			}
		}
		fmt.Printf("  %4d   %6d   %4d/%d   %10d\n", n, trials, nonsplit, trials, maxRadius)
	}

	fmt.Println("\nshorter products need not be nonsplit: a single path is not —")
	n := 6
	path := []*dyntreecast.Tree{dyntreecast.IdentityPathTree(n)}
	fmt.Printf("  single path on n=%d nonsplit: %v\n",
		n, dyntreecast.ProductOfTreesIsNonsplit(path))
	fmt.Println("\nevery (n-1)-product was nonsplit: the simulation lemma holds ✓")
}
