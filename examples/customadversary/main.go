// Customadversary: plugging your own parameterized adversary family into
// the campaign engine.
//
// The campaign layer's adversary registry is open: RegisterAdversary adds
// a family — name, declared parameters with kinds and defaults, an
// optional feasibility contract, and a constructor — and from that moment
// scenarios naming it work everywhere a built-in would: campaign specs,
// the cell cache, checkpoints, cmd/campaign -scenario flags, and
// campaignd submissions. This example registers a "strided-path" family
// (the drifting path that visits every step-th process) and sweeps its
// stride parameter as a scenario axis.
//
// Run with:
//
//	go run ./examples/customadversary
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"dyntreecast"
)

// stridedPath plays, in round t, the path visiting (i·step + t) mod n in
// order i = 0…n−1 — a drifting path whose consecutive hops jump step
// processes apart. It is a permutation (and hence a valid path) exactly
// when gcd(step, n) = 1, which the family's Feasible contract below
// encodes so infeasible grid points are skipped instead of failing.
type stridedPath struct{ step int }

// Next implements dyntreecast.Adversary.
func (a stridedPath) Next(v dyntreecast.View) *dyntreecast.Tree {
	n := v.N()
	order := make([]int, n)
	for i := range order {
		order[i] = (i*a.step + v.Round()) % n
	}
	t, err := dyntreecast.PathTree(order)
	if err != nil {
		return nil
	}
	return t
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func main() {
	err := dyntreecast.RegisterAdversary(dyntreecast.AdversaryFamily{
		Name: "strided-path",
		Doc:  "drifting path with hops step processes apart",
		Params: []dyntreecast.AdversaryParam{
			{Name: "step", Kind: dyntreecast.IntParam, Default: 1, Doc: "hop stride (must be coprime with n)"},
		},
		Check: func(p dyntreecast.AdversaryParams) error {
			if p.Int("step") < 1 {
				return fmt.Errorf("step must be >= 1, got %d", p.Int("step"))
			}
			return nil
		},
		Feasible: func(n int, p dyntreecast.AdversaryParams) bool {
			return gcd(p.Int("step"), n) == 1 // otherwise the stride is no permutation
		},
		New: func(_ int, p dyntreecast.AdversaryParams, _ *dyntreecast.Rand) (dyntreecast.Adversary, error) {
			return stridedPath{step: p.Int("step")}, nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The step param as a scenario axis: one grid cell per feasible
	// (step, n) pair — step 2 is skipped at the even n below.
	outcome, err := dyntreecast.RunCampaign(context.Background(), dyntreecast.Campaign{
		Name: "strided-path sweep",
		Scenarios: []dyntreecast.Scenario{
			{Adversary: "strided-path", Params: map[string]any{"step": []any{1, 2, 3, 5, 7}}},
		},
		Ns:     []int{16, 32},
		Trials: 1, // the schedule is deterministic; one trial per cell suffices
		Seed:   1,
	}, 0)
	if err != nil {
		log.Fatal(err)
	}
	if outcome.Failed > 0 {
		log.Fatalf("%d cells failed: %v", outcome.Failed, outcome.Errors)
	}

	fmt.Println("strided-path broadcast times (cells are scenario × n):")
	for _, cell := range outcome.Cells {
		fmt.Printf("  %-28s t* = %.0f\n", cell.Cell, cell.Mean)
	}
	fmt.Println("\nEvery coprime stride stalls broadcast to the static-path value t* = n-1,")
	fmt.Println("and step=2 was skipped at these even n by the family's Feasible contract.")
	fmt.Println("The same family now also works via:")
	fmt.Println(`  campaign -scenario '{"adversary":"strided-path","params":{"step":[1,3,5]}}' -ns 32 -trials 1`)
	os.Exit(0)
}
