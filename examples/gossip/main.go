// Gossip: the all-to-all variant the paper's future-work section points
// at, and why broadcast — not gossip — is the right worst-case object.
//
// Two observations:
//
//  1. Under random adversaries, gossip completes within a small factor of
//     broadcast.
//  2. Under an ADAPTIVE adversary, gossip time is unbounded: a star whose
//     root never changes broadcasts in one round, but the root itself
//     never hears anyone, so gossip never completes.
//
// Run with:
//
//	go run ./examples/gossip
package main

import (
	"errors"
	"fmt"
	"log"

	"dyntreecast"
)

func main() {
	rand := dyntreecast.NewRand(11)

	fmt.Println("gossip vs broadcast under random trees:")
	fmt.Println("    n   broadcast   gossip   ratio")
	for _, n := range []int{8, 16, 32, 64} {
		b, g, err := dyntreecast.BroadcastAndGossipTimes(n, dyntreecast.RandomAdversary(rand))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %4d   %9d   %6d   %.2f\n", n, b, g, float64(g)/float64(b))
	}

	fmt.Println("\nadversarial gossip is unbounded (the staller):")
	const n = 10
	b, err := dyntreecast.BroadcastTime(n, dyntreecast.StallerAdversary())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  staller broadcast on n=%d: %d round (the star root reaches everyone)\n", n, b)

	_, err = dyntreecast.GossipTime(n, dyntreecast.StallerAdversary(),
		dyntreecast.WithMaxRounds(1000))
	switch {
	case errors.Is(err, dyntreecast.ErrMaxRounds):
		fmt.Println("  staller gossip on n=10: still incomplete after 1000 rounds —")
		fmt.Println("  the star root never hears anyone, so gossip never finishes ✓")
	case err != nil:
		log.Fatal(err)
	default:
		log.Fatal("unexpected: staller gossip completed")
	}
}
