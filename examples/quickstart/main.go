// Quickstart: simulate the broadcast problem on dynamic rooted trees.
//
// An adversary picks a random rooted tree each round; we measure how many
// rounds pass before some process's value has reached everyone (the
// paper's t*), and place the measurement inside Theorem 3.1's sandwich.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dyntreecast"
)

func main() {
	const n = 64
	rand := dyntreecast.NewRand(42)

	fmt.Printf("broadcast on dynamic rooted trees, n = %d processes\n\n", n)

	// A random-tree adversary: a fresh uniformly random rooted tree each
	// round.
	rounds, err := dyntreecast.BroadcastTime(n, dyntreecast.RandomAdversary(rand))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("random trees:    t* = %3d rounds\n", rounds)

	// The static path of §2: exactly n−1 rounds.
	rounds, err = dyntreecast.BroadcastTime(n,
		dyntreecast.StaticAdversary(dyntreecast.IdentityPathTree(n)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static path:     t* = %3d rounds (= n-1)\n", rounds)

	// An adaptive stalling heuristic: feed every process from a process
	// that knows at most as much.
	rounds, err = dyntreecast.BroadcastTime(n, dyntreecast.AscendingPathAdversary())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ascending path:  t* = %3d rounds\n", rounds)

	// Every measurement must respect the paper's Theorem 3.1.
	fmt.Printf("\nTheorem 3.1 sandwich for n = %d:\n", n)
	fmt.Printf("  lower bound  %d <= t*(Tn) <= %d  upper bound (~2.414n)\n",
		dyntreecast.LowerBound(n), dyntreecast.UpperBound(n))
	if err := dyntreecast.CheckSandwich(n, rounds); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  all measured values within bounds ✓")
}
