package dyntreecast_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"dyntreecast"
)

// The static path of §2: broadcast takes exactly n−1 rounds.
func ExampleBroadcastTime() {
	const n = 8
	rounds, err := dyntreecast.BroadcastTime(n,
		dyntreecast.StaticAdversary(dyntreecast.IdentityPathTree(n)))
	if err != nil {
		panic(err)
	}
	fmt.Println(rounds)
	// Output: 7
}

// Theorem 3.1's sandwich at n = 100.
func ExampleUpperBound() {
	fmt.Println(dyntreecast.LowerBound(100), dyntreecast.UpperBound(100))
	// Output: 148 241
}

// Exact worst-case broadcast time for five processes, by solving the full
// adversary game: it equals the lower bound ⌈(3·5−1)/2⌉−2 = 5.
func ExampleNewExactSolver() {
	s, err := dyntreecast.NewExactSolver(5)
	if err != nil {
		panic(err)
	}
	fmt.Println(s.Value())
	// Output: 5
}

// Driving the engine manually: a star completes broadcast in one round.
func ExampleEngine() {
	e := dyntreecast.NewEngine(6)
	star, _ := dyntreecast.StarTree(6, 0)
	e.Step(star)
	fmt.Println(e.BroadcastDone(), e.Broadcasters().Slice())
	// Output: true [0]
}

// A parallel campaign: the static-path cells complete in exactly n−1
// rounds, and the aggregates are identical for every worker count.
func ExampleRunCampaign() {
	outcome, err := dyntreecast.RunCampaign(context.Background(), dyntreecast.Campaign{
		Adversaries: []string{"static-path"},
		Ns:          []int{8, 16},
		Trials:      3,
		Seed:        1,
	}, 0 /* workers: 0 = GOMAXPROCS */)
	if err != nil {
		panic(err)
	}
	for _, cell := range outcome.Cells {
		fmt.Printf("%s mean=%.0f\n", cell.Cell, cell.Mean)
	}
	// Output:
	// static-path/n=8 mean=7
	// static-path/n=16 mean=15
}

// Checkpoint a campaign, then resume it: the checkpointed jobs are
// reused, not recomputed, and the artifact is byte-identical to the
// original run's.
func ExampleResumeCampaign() {
	dir, err := os.MkdirTemp("", "dyntreecast-example")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	checkpoint := filepath.Join(dir, "sweep.ckpt")

	spec := dyntreecast.Campaign{
		Adversaries: []string{"static-path"},
		Ns:          []int{8},
		Trials:      4,
		Seed:        1,
	}
	// First run, recording every completed job. (A killed run would leave
	// a partial checkpoint; resuming completes the remainder.)
	first, err := dyntreecast.RunCampaign(context.Background(), spec, 2,
		dyntreecast.CampaignWithCheckpoint(checkpoint))
	if err != nil {
		panic(err)
	}
	resumed, err := dyntreecast.ResumeCampaign(context.Background(), spec, checkpoint, 2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("first run executed %d jobs; resume executed %d, reused %d\n",
		first.Executed, resumed.Executed, resumed.Reused)
	fmt.Printf("means agree: %v\n", first.Cells[0].Mean == resumed.Cells[0].Mean)
	// Output:
	// first run executed 4 jobs; resume executed 0, reused 4
	// means agree: true
}

// FloodMin consensus decides the global minimum once gossip completes.
func ExampleFloodMin() {
	res, err := dyntreecast.FloodMin([]int{7, 3, 9, 5},
		dyntreecast.RandomAdversary(dyntreecast.NewRand(1)))
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Decision)
	// Output: 3
}

// Register a custom parameterized adversary family and sweep its
// parameter as a scenario axis. The family becomes addressable from
// campaign specs, cmd/campaign -scenario, and campaignd exactly like the
// built-ins — cache, checkpoint, and resume included.
func ExampleRegisterAdversary() {
	err := dyntreecast.RegisterAdversary(dyntreecast.AdversaryFamily{
		Name: "example-star",
		Doc:  "the star rooted at a fixed process",
		Params: []dyntreecast.AdversaryParam{
			{Name: "root", Kind: dyntreecast.IntParam, Default: 0, Doc: "the star's root"},
		},
		Feasible: func(n int, p dyntreecast.AdversaryParams) bool {
			return p.Int("root") < n
		},
		New: func(n int, p dyntreecast.AdversaryParams, _ *dyntreecast.Rand) (dyntreecast.Adversary, error) {
			star, err := dyntreecast.StarTree(n, p.Int("root"))
			if err != nil {
				return nil, err
			}
			return dyntreecast.StaticAdversary(star), nil
		},
	})
	if err != nil {
		panic(err)
	}
	outcome, err := dyntreecast.RunCampaign(context.Background(), dyntreecast.Campaign{
		Scenarios: []dyntreecast.Scenario{
			{Adversary: "example-star", Params: map[string]any{"root": []any{0, 5}}},
		},
		Ns:     []int{4, 8}, // root=5 is infeasible at n=4 and skipped
		Trials: 2,
		Seed:   1,
	}, 0)
	if err != nil {
		panic(err)
	}
	for _, cell := range outcome.Cells {
		fmt.Printf("%s mean=%.0f\n", cell.Cell, cell.Mean)
	}
	// Output:
	// example-star/n=4/root=0 mean=1
	// example-star/n=8/root=0 mean=1
	// example-star/n=8/root=5 mean=1
}
