package dyntreecast_test

import (
	"fmt"

	"dyntreecast"
)

// The static path of §2: broadcast takes exactly n−1 rounds.
func ExampleBroadcastTime() {
	const n = 8
	rounds, err := dyntreecast.BroadcastTime(n,
		dyntreecast.StaticAdversary(dyntreecast.IdentityPathTree(n)))
	if err != nil {
		panic(err)
	}
	fmt.Println(rounds)
	// Output: 7
}

// Theorem 3.1's sandwich at n = 100.
func ExampleUpperBound() {
	fmt.Println(dyntreecast.LowerBound(100), dyntreecast.UpperBound(100))
	// Output: 148 241
}

// Exact worst-case broadcast time for five processes, by solving the full
// adversary game: it equals the lower bound ⌈(3·5−1)/2⌉−2 = 5.
func ExampleNewExactSolver() {
	s, err := dyntreecast.NewExactSolver(5)
	if err != nil {
		panic(err)
	}
	fmt.Println(s.Value())
	// Output: 5
}

// Driving the engine manually: a star completes broadcast in one round.
func ExampleEngine() {
	e := dyntreecast.NewEngine(6)
	star, _ := dyntreecast.StarTree(6, 0)
	e.Step(star)
	fmt.Println(e.BroadcastDone(), e.Broadcasters().Slice())
	// Output: true [0]
}

// FloodMin consensus decides the global minimum once gossip completes.
func ExampleFloodMin() {
	res, err := dyntreecast.FloodMin([]int{7, 3, 9, 5},
		dyntreecast.RandomAdversary(dyntreecast.NewRand(1)))
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Decision)
	// Output: 3
}
