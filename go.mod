module dyntreecast

go 1.24
