// Package metrics is the fleet-observability substrate (DESIGN.md §3f):
// typed Counter/Gauge/Histogram instruments behind a registry that writes
// Prometheus text exposition (version 0.0.4), with zero dependencies
// beyond the standard library — matching the repo's no-external-deps
// go.mod.
//
// Instruments are lock-free atomics, so the campaign trial hot path can
// be counted without ever taking a lock or allocating: an increment is
// one atomic add (BenchmarkTrialHotPath stays 0 allocs/op with
// instrumentation live). The registry lock is touched only when an
// instrument is created or the registry is scraped — never on the
// increment path — and metrics never feed back into results: artifacts
// remain byte-identical with or without observation (the campaign
// determinism contract is untouched).
//
// The package-level Default registry is what the instrumented layers
// (internal/campaign, internal/campaign/cache, internal/cluster,
// internal/server) register into and what campaignd exposes on
// GET /metrics. Lint (lint.go) validates exposition output and backs the
// format-validator test plus scripts/promcheck.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count. All methods are safe for
// concurrent use and never allocate.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta (which must be non-negative; counters only go up).
func (c *Counter) Add(delta uint64) { c.n.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Gauge is a value that can go up and down. All methods are safe for
// concurrent use and never allocate.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta to the gauge (negative deltas subtract).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into cumulative buckets plus a sum, the
// Prometheus histogram shape. Observe is lock-free: a binary search over
// the immutable bounds, two atomic adds, and a CAS loop for the sum.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf bucket is implicit
	counts []atomic.Uint64
	sum    Gauge // reused for its atomic float add
	total  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound contains v; len(bounds) is +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// ExpBuckets returns n upper bounds growing geometrically from start by
// factor — the usual shape for durations and sizes.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// kind is the exposition TYPE of a family.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// child is one labeled instrument of a family.
type child struct {
	labels []string // values, parallel to family.labelNames
	c      *Counter
	g      *Gauge
	fn     atomic.Pointer[func() float64] // scrape-time gauge; atomic so GaugeFunc re-registration never races a scrape
	h      *Histogram
}

// family is one named metric with its help text and labeled children.
type family struct {
	name       string
	help       string
	kind       kind
	labelNames []string
	buckets    []float64 // histograms only

	mu       sync.Mutex
	children []*child          // insertion order, for stable exposition
	byKey    map[string]*child // joined label values → child
}

// Registry holds metric families and writes them as Prometheus text
// exposition. Instrument lookups are get-or-create and idempotent, so
// layers can declare their instruments at init (or lazily) without
// coordination; a name reused with a different kind or label set panics —
// that is a programming error, not runtime input.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// Default is the process-wide registry: the instrumented layers register
// into it and campaignd serves it on GET /metrics.
var Default = NewRegistry()

func init() {
	// Process-level basics, cheap and scrape-time only.
	Default.GaugeFunc("go_goroutines", "Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
}

func (r *Registry) family(name, help string, k kind, labelNames []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != k || len(f.labelNames) != len(labelNames) {
			panic(fmt.Sprintf("metrics: %s redeclared as %s with labels %v (was %s %v)",
				name, k, labelNames, f.kind, f.labelNames))
		}
		for i := range labelNames {
			if f.labelNames[i] != labelNames[i] {
				panic(fmt.Sprintf("metrics: %s redeclared with labels %v (was %v)", name, labelNames, f.labelNames))
			}
		}
		return f
	}
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labelNames {
		if !validName(l) || strings.HasPrefix(l, "__") || strings.Contains(l, ":") {
			panic(fmt.Sprintf("metrics: invalid label name %q", l))
		}
	}
	f := &family{name: name, help: help, kind: k, labelNames: labelNames, buckets: buckets,
		byKey: make(map[string]*child)}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// get returns the family's child for the given label values, creating it
// on first use.
func (f *family) get(values []string) *child {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", f.name, len(f.labelNames), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if ch, ok := f.byKey[key]; ok {
		return ch
	}
	ch := &child{labels: append([]string(nil), values...)}
	switch f.kind {
	case kindCounter:
		ch.c = &Counter{}
	case kindGauge:
		ch.g = &Gauge{}
	case kindHistogram:
		ch.h = &Histogram{bounds: f.buckets, counts: make([]atomic.Uint64, len(f.buckets)+1)}
	}
	f.children = append(f.children, ch)
	f.byKey[key] = ch
	return ch
}

// delete removes the family's child for the given label values,
// reporting whether it existed. It lets per-entity series (one per
// cluster worker, say) be retired when the entity goes away, so
// externally-chosen identities can never grow the scrape without bound.
func (f *family) delete(values []string) bool {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", f.name, len(f.labelNames), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	ch, ok := f.byKey[key]
	if !ok {
		return false
	}
	delete(f.byKey, key)
	for i, c := range f.children {
		if c == ch {
			f.children = append(f.children[:i], f.children[i+1:]...)
			break
		}
	}
	return true
}

// Counter returns the registry's unlabeled counter with this name,
// creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, kindCounter, nil, nil).get(nil).c
}

// Gauge returns the registry's unlabeled gauge with this name, creating
// it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, kindGauge, nil, nil).get(nil).g
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
// Re-registering a name replaces its function, so tests and restarted
// servers stay idempotent.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	ch := r.family(name, help, kindGauge, nil, nil).get(nil)
	ch.fn.Store(&fn)
}

// Histogram returns the registry's unlabeled histogram with this name,
// creating it on first use with the given bucket upper bounds (ascending;
// the +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.family(name, help, kindHistogram, nil, buckets).get(nil).h
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// CounterVec returns the labeled counter family with this name, creating
// it on first use.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.family(name, help, kindCounter, labelNames, nil)}
}

// With returns the counter for one label-value assignment, creating it on
// first use. Hot paths should hold the returned *Counter instead of
// calling With per event (With takes the family lock).
func (v *CounterVec) With(labelValues ...string) *Counter { return v.f.get(labelValues).c }

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// GaugeVec returns the labeled gauge family with this name, creating it
// on first use.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, kindGauge, labelNames, nil)}
}

// With returns the gauge for one label-value assignment, creating it on
// first use.
func (v *GaugeVec) With(labelValues ...string) *Gauge { return v.f.get(labelValues).g }

// Delete retires the series for one label-value assignment, reporting
// whether it existed. A later With recreates it from zero.
func (v *GaugeVec) Delete(labelValues ...string) bool { return v.f.delete(labelValues) }

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// HistogramVec returns the labeled histogram family with this name,
// creating it on first use with the given buckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{r.family(name, help, kindHistogram, labelNames, buckets)}
}

// With returns the histogram for one label-value assignment, creating it
// on first use.
func (v *HistogramVec) With(labelValues ...string) *Histogram { return v.f.get(labelValues).h }

// WritePrometheus writes every family as Prometheus text exposition
// (content type "text/plain; version=0.0.4"). Families appear in
// registration order and children in creation order, so consecutive
// scrapes of a quiet process are byte-identical.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) write(w io.Writer) error {
	f.mu.Lock()
	children := append([]*child(nil), f.children...)
	f.mu.Unlock()
	if len(children) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
		f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
		return err
	}
	var b strings.Builder
	for _, ch := range children {
		b.Reset()
		switch f.kind {
		case kindCounter:
			b.WriteString(f.name)
			writeLabels(&b, f.labelNames, ch.labels, "")
			fmt.Fprintf(&b, " %d\n", ch.c.Value())
		case kindGauge:
			v := 0.0
			if p := ch.fn.Load(); p != nil {
				v = (*p)()
			} else {
				v = ch.g.Value()
			}
			b.WriteString(f.name)
			writeLabels(&b, f.labelNames, ch.labels, "")
			fmt.Fprintf(&b, " %s\n", formatFloat(v))
		case kindHistogram:
			cum := uint64(0)
			for i, bound := range f.buckets {
				cum += ch.h.counts[i].Load()
				b.WriteString(f.name + "_bucket")
				writeLabels(&b, f.labelNames, ch.labels, formatFloat(bound))
				fmt.Fprintf(&b, " %d\n", cum)
			}
			// The +Inf bucket and _count render the same cumulative sum
			// rather than the separately-maintained total: Observe bumps
			// counts[i] before total, so a scrape racing it could otherwise
			// print a finite bucket above +Inf.
			cum += ch.h.counts[len(f.buckets)].Load()
			b.WriteString(f.name + "_bucket")
			writeLabels(&b, f.labelNames, ch.labels, "+Inf")
			fmt.Fprintf(&b, " %d\n", cum)
			b.WriteString(f.name + "_sum")
			writeLabels(&b, f.labelNames, ch.labels, "")
			fmt.Fprintf(&b, " %s\n", formatFloat(ch.h.Sum()))
			b.WriteString(f.name + "_count")
			writeLabels(&b, f.labelNames, ch.labels, "")
			fmt.Fprintf(&b, " %d\n", cum)
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// writeLabels appends a {name="value",...} block; le, when non-empty, is
// appended as the histogram bucket bound label.
func writeLabels(b *strings.Builder, names, values []string, le string) {
	if len(names) == 0 && le == "" {
		return
	}
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if le != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// Handler returns an http.Handler serving the registry as text
// exposition — the body behind GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// formatFloat renders a sample value: integral floats without an
// exponent, everything else in Go's shortest round-trip form.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP text per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// validName reports whether s is a legal metric or label name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}
