package metrics

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Lint validates a Prometheus text-exposition stream (format 0.0.4) and
// returns the first violation found, or nil. It is the referee behind the
// exposition-format tests and scripts/promcheck (which CI's cluster smoke
// runs against live /metrics output): metric and label names must be
// legal, label values must be properly quoted and escaped, sample values
// must parse, every sample must belong to a # TYPE-declared family of a
// known kind, histogram families must expose _bucket/_sum/_count series
// with an le label on the buckets, and HELP/TYPE lines must not repeat.
//
// Lint checks the format, not the semantics: it does not verify that
// counters are monotone across scrapes or that bucket counts are
// cumulative — those are properties of a sequence of scrapes, not of one
// body.
func Lint(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	typed := map[string]string{} // family name → kind
	helped := map[string]bool{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("metrics: line %d: %s: %q", lineNo, fmt.Sprintf(format, args...), line)
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			if !validName(name) {
				return fail("invalid metric name in %s", fields[1])
			}
			switch fields[1] {
			case "HELP":
				if helped[name] {
					return fail("repeated HELP for %s", name)
				}
				helped[name] = true
			case "TYPE":
				if len(fields) != 4 {
					return fail("TYPE line needs a kind")
				}
				k := fields[3]
				switch k {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fail("unknown TYPE %q", k)
				}
				if _, dup := typed[name]; dup {
					return fail("repeated TYPE for %s", name)
				}
				typed[name] = k
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("metrics: line %d: %w: %q", lineNo, err, line)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil && value != "+Inf" && value != "-Inf" && value != "NaN" {
			return fail("unparsable sample value %q", value)
		}
		fam, k := sampleFamily(name, typed)
		if k == "" {
			return fail("sample for undeclared family %s (no preceding # TYPE)", name)
		}
		if k == "histogram" && name == fam+"_bucket" {
			if _, ok := labels["le"]; !ok {
				return fail("histogram bucket without le label")
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("metrics: reading exposition: %w", err)
	}
	return nil
}

// sampleFamily resolves which declared family a sample line belongs to,
// honoring the histogram/summary suffixed series.
func sampleFamily(name string, typed map[string]string) (string, string) {
	if k, ok := typed[name]; ok {
		return name, k
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suffix)
		if !ok {
			continue
		}
		if k, ok := typed[base]; ok && (k == "histogram" || k == "summary") {
			return base, k
		}
	}
	return "", ""
}

// parseSample splits one sample line into name, labels, and value,
// validating name/label syntax and escaping.
func parseSample(line string) (name string, labels map[string]string, value string, err error) {
	labels = map[string]string{}
	i := 0
	for i < len(line) && isNameRune(line[i], i == 0) {
		i++
	}
	name = line[:i]
	if !validName(name) {
		return "", nil, "", fmt.Errorf("invalid metric name")
	}
	if i < len(line) && line[i] == '{' {
		i++
		for {
			for i < len(line) && line[i] == ',' {
				i++
			}
			if i < len(line) && line[i] == '}' {
				i++
				break
			}
			j := i
			for j < len(line) && line[j] != '=' {
				j++
			}
			if j == len(line) {
				return "", nil, "", fmt.Errorf("unterminated label")
			}
			lname := line[i:j]
			if !validName(lname) || strings.Contains(lname, ":") {
				return "", nil, "", fmt.Errorf("invalid label name %q", lname)
			}
			if j+1 >= len(line) || line[j+1] != '"' {
				return "", nil, "", fmt.Errorf("label value not quoted")
			}
			j += 2
			var val strings.Builder
			closed := false
			for j < len(line) {
				c := line[j]
				if c == '\\' {
					if j+1 >= len(line) {
						return "", nil, "", fmt.Errorf("dangling escape in label value")
					}
					switch line[j+1] {
					case '\\', '"':
						val.WriteByte(line[j+1])
					case 'n':
						val.WriteByte('\n')
					default:
						return "", nil, "", fmt.Errorf("invalid escape \\%c in label value", line[j+1])
					}
					j += 2
					continue
				}
				if c == '"' {
					closed = true
					j++
					break
				}
				val.WriteByte(c)
				j++
			}
			if !closed {
				return "", nil, "", fmt.Errorf("unterminated label value")
			}
			if _, dup := labels[lname]; dup {
				return "", nil, "", fmt.Errorf("duplicate label %q", lname)
			}
			labels[lname] = val.String()
			i = j
		}
	}
	rest := strings.TrimSpace(line[i:])
	if rest == "" {
		return "", nil, "", fmt.Errorf("missing sample value")
	}
	// A timestamp may follow the value; both are space-separated.
	value = strings.Fields(rest)[0]
	return name, labels, value, nil
}

// isNameRune reports whether c may appear in a metric name at the given
// position.
func isNameRune(c byte, first bool) bool {
	return c == '_' || c == ':' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
		(!first && c >= '0' && c <= '9')
}
