package metrics

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs.")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("depth", "Depth.")
	g.Set(3)
	g.Add(-1.5)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	// Get-or-create is idempotent: same instrument back.
	if r.Counter("jobs_total", "Jobs.") != c {
		t.Fatal("second Counter call returned a different instrument")
	}
}

func TestVecChildren(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("cache_requests_total", "Cache requests.", "backend", "result")
	v.With("dir", "hit").Add(3)
	v.With("dir", "miss").Inc()
	v.With("dir", "hit").Inc()
	if got := v.With("dir", "hit").Value(); got != 4 {
		t.Fatalf("hit counter = %d, want 4", got)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP cache_requests_total Cache requests.",
		"# TYPE cache_requests_total counter",
		`cache_requests_total{backend="dir",result="hit"} 4`,
		`cache_requests_total{backend="dir",result="miss"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-56.05) > 1e-9 {
		t.Fatalf("sum = %v, want 56.05", h.Sum())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="10"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		"latency_seconds_sum 56.05",
		"latency_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := Lint(strings.NewReader(out)); err != nil {
		t.Fatalf("lint rejected histogram exposition: %v", err)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("weird", "Help with \\ backslash\nand newline.", "path")
	v.With("a\"b\\c\nd").Set(1)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `# HELP weird Help with \\ backslash\nand newline.`) {
		t.Errorf("HELP not escaped:\n%s", out)
	}
	if !strings.Contains(out, `weird{path="a\"b\\c\nd"} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
	if err := Lint(strings.NewReader(out)); err != nil {
		t.Fatalf("lint rejected escaped exposition: %v", err)
	}
}

func TestGaugeVecDelete(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("worker_up", "Up.", "worker")
	v.With("a").Set(1)
	v.With("b").Set(1)
	if !v.Delete("a") {
		t.Fatal("Delete(a) = false, want true")
	}
	if v.Delete("a") {
		t.Fatal("second Delete(a) = true, want false")
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Contains(out, `worker_up{worker="a"}`) {
		t.Errorf("deleted series still exposed:\n%s", out)
	}
	if !strings.Contains(out, `worker_up{worker="b"} 1`) {
		t.Errorf("surviving series missing:\n%s", out)
	}
	// A later With recreates the series from zero.
	if got := v.With("a").Value(); got != 0 {
		t.Fatalf("recreated series = %v, want 0", got)
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	n := 41.0
	r.GaugeFunc("live", "Live.", func() float64 { n++; return n })
	var b strings.Builder
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), "live 42") {
		t.Fatalf("gauge func not evaluated at scrape:\n%s", b.String())
	}
}

func TestRedeclarePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "X.")
	defer func() {
		if recover() == nil {
			t.Fatal("redeclaring x_total as gauge did not panic")
		}
	}()
	r.Gauge("x_total", "X.")
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

func TestLintRejects(t *testing.T) {
	cases := map[string]string{
		"bad name":        "9lives 1\n",
		"bad value":       "# TYPE a gauge\na one\n",
		"undeclared":      "a_total 1\n",
		"bad escape":      "# TYPE a gauge\na{l=\"\\q\"} 1\n",
		"unquoted label":  "# TYPE a gauge\na{l=v} 1\n",
		"unclosed label":  "# TYPE a gauge\na{l=\"v} 1\n",
		"dup TYPE":        "# TYPE a gauge\n# TYPE a counter\na 1\n",
		"bucket sans le":  "# TYPE h histogram\nh_bucket 1\n",
		"duplicate label": "# TYPE a gauge\na{l=\"1\",l=\"2\"} 1\n",
	}
	for name, body := range cases {
		if err := Lint(strings.NewReader(body)); err == nil {
			t.Errorf("%s: lint accepted %q", name, body)
		}
	}
	if err := Lint(strings.NewReader("# TYPE a gauge\na{l=\"v\"} 1 1700000000\n")); err != nil {
		t.Errorf("lint rejected sample with timestamp: %v", err)
	}
}

// TestConcurrentScrapeRace hammers every instrument kind from N
// goroutines while other goroutines scrape, under -race in CI: the
// increment paths are atomics and the scrape path copies under the
// registry and family locks, so no write is ever observed torn. Each
// mid-run scrape body must also be internally consistent: histogram
// buckets cumulative and non-decreasing with the +Inf bucket equal to
// _count, even while Observe races the scrape.
func TestConcurrentScrapeRace(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "C.")
	g := r.Gauge("g", "G.")
	h := r.Histogram("h", "H.", ExpBuckets(1, 2, 8))
	v := r.CounterVec("v_total", "V.", "who")
	var writers, scrapers sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for j := 0; j < 5000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j % 300))
				v.With([]string{"a", "b", "c"}[j%3]).Inc()
			}
		}()
	}
	// GaugeFunc re-registration is documented as idempotent; racing it
	// against the scrapers proves the function swap is synchronized.
	writers.Add(1)
	go func() {
		defer writers.Done()
		for j := 0; j < 5000; j++ {
			r.GaugeFunc("live", "Live.", func() float64 { return float64(j) })
		}
	}()
	for i := 0; i < 4; i++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var b strings.Builder
				if err := r.WritePrometheus(&b); err != nil {
					t.Error(err)
					return
				}
				if err := Lint(strings.NewReader(b.String())); err != nil {
					t.Errorf("mid-run scrape failed lint: %v", err)
					return
				}
				if err := histogramConsistent(b.String(), "h"); err != nil {
					t.Errorf("mid-run scrape inconsistent: %v", err)
					return
				}
			}
		}()
	}
	writers.Wait()
	close(stop)
	scrapers.Wait()
	var final strings.Builder
	if err := r.WritePrometheus(&final); err != nil {
		t.Fatal(err)
	}
	if err := histogramConsistent(final.String(), "h"); err != nil {
		t.Fatal(err)
	}
	if got := c.Value(); got != 40000 {
		t.Fatalf("counter = %d, want 40000", got)
	}
	if got := h.Count(); got != 40000 {
		t.Fatalf("histogram count = %d, want 40000", got)
	}
	if got := g.Value(); got != 40000 {
		t.Fatalf("gauge = %v, want 40000", got)
	}
}

// histogramConsistent checks one scrape body's histogram invariants for
// the named family: bucket samples non-decreasing in exposition order and
// the +Inf bucket equal to _count.
func histogramConsistent(body, fam string) error {
	sample := func(line string) (uint64, error) {
		return strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
	}
	var prev, inf, count uint64
	for _, line := range strings.Split(body, "\n") {
		switch {
		case strings.HasPrefix(line, fam+"_bucket"):
			v, err := sample(line)
			if err != nil {
				return err
			}
			if v < prev {
				return fmt.Errorf("bucket not cumulative: %q after %d", line, prev)
			}
			prev = v
			if strings.Contains(line, `le="+Inf"`) {
				inf = v
			}
		case strings.HasPrefix(line, fam+"_count"):
			v, err := sample(line)
			if err != nil {
				return err
			}
			count = v
		}
	}
	if inf != count {
		return fmt.Errorf("+Inf bucket = %d but _count = %d", inf, count)
	}
	return nil
}
