package metrics

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestHandlerServesExposition: the registry's http.Handler answers with
// the exposition content type and a body that passes the package's own
// linter.
func TestHandlerServesExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("handler_test_total", "A counter.").Add(3)
	r.HistogramVec("handler_test_seconds", "A histogram.",
		ExpBuckets(0.01, 10, 3), "op").With("read").Observe(0.05)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("content type = %q", ct)
	}
	if err := Lint(resp.Body); err != nil {
		t.Errorf("handler body failed lint: %v", err)
	}
}

// TestHistogramVecChildren: each label assignment gets its own buckets,
// sum, and count, and the le="+Inf" bucket equals the child's count.
func TestHistogramVecChildren(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("hv_test_seconds", "Latency.", []float64{1, 10}, "op")
	v.With("read").Observe(0.5)
	v.With("read").Observe(5)
	v.With("write").Observe(50)

	if got := v.With("read").Count(); got != 2 {
		t.Errorf("read count = %d, want 2", got)
	}
	if got := v.With("read").Sum(); got != 5.5 {
		t.Errorf("read sum = %v, want 5.5", got)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`hv_test_seconds_bucket{op="read",le="1"} 1`,
		`hv_test_seconds_bucket{op="read",le="10"} 2`,
		`hv_test_seconds_bucket{op="read",le="+Inf"} 2`,
		`hv_test_seconds_bucket{op="write",le="10"} 0`,
		`hv_test_seconds_bucket{op="write",le="+Inf"} 1`,
		`hv_test_seconds_count{op="write"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := Lint(strings.NewReader(out)); err != nil {
		t.Errorf("lint: %v", err)
	}
}

// TestFormatFloat pins the special-value spellings the exposition format
// requires; everything else is Go's shortest round-trip form.
func TestFormatFloat(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want string
	}{
		{math.Inf(1), "+Inf"},
		{math.Inf(-1), "-Inf"},
		{math.NaN(), "NaN"},
		{0, "0"},
		{42, "42"},
		{0.25, "0.25"},
		{1e21, "1e+21"},
	} {
		if got := formatFloat(tc.v); got != tc.want {
			t.Errorf("formatFloat(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

// TestDefaultRegistryProcessGauges: the process-global registry carries
// the go_goroutines gauge from init, live at scrape time.
func TestDefaultRegistryProcessGauges(t *testing.T) {
	var b strings.Builder
	if err := Default.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# TYPE go_goroutines gauge") {
		t.Fatalf("Default registry missing go_goroutines:\n%.400s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(line, "go_goroutines "); ok {
			if rest == "0" {
				t.Errorf("go_goroutines = 0, want > 0")
			}
			return
		}
	}
	t.Error("no go_goroutines sample line")
}
