// Package procs simulates the broadcast model with real message passing:
// one goroutine per process, one channel per process inbox, and synchronous
// rounds driven by a coordinator.
//
// Each round, every process snapshots the set of values it has heard and
// sends it to its children in the round's tree; every non-root process then
// receives its parent's snapshot and merges it. Because processes send
// snapshots taken before receiving, the round is exactly the single-hop
// product-graph step of the model — the same operation the matrix engines
// in package core perform with bitset unions. This engine exists to check
// that the algebraic model and an operational message-passing system agree
// (differential testing), and to ground the simulation in the distributed
// system the paper abstracts.
//
// A Simulator owns its goroutines: Close releases them and must be called
// when done (it is safe to call multiple times).
package procs

import (
	"fmt"
	"sync"

	"dyntreecast/internal/bitset"
	"dyntreecast/internal/boolmat"
	"dyntreecast/internal/tree"
)

// roundCmd instructs a process to execute one synchronous round.
type roundCmd struct {
	// children are the inboxes of this process's children this round.
	children []chan *bitset.Set
	// recv is true when the process must receive from its inbox (it is
	// not the round's root).
	recv bool
	// done is signalled once the process has finished the round.
	done *sync.WaitGroup
}

// process is the per-goroutine state.
type process struct {
	id    int
	heard *bitset.Set
	inbox chan *bitset.Set
	cmd   chan roundCmd
}

func (p *process) loop(wg *sync.WaitGroup) {
	defer wg.Done()
	for cmd := range p.cmd {
		if len(cmd.children) > 0 {
			// One snapshot is safe to share among children: receivers
			// only read it, and it is never mutated after this point.
			snapshot := p.heard.Clone()
			for _, ch := range cmd.children {
				ch <- snapshot
			}
		}
		if cmd.recv {
			msg := <-p.inbox
			p.heard.Union(msg)
		}
		cmd.done.Done()
	}
}

// Simulator drives n process goroutines through synchronous rounds.
type Simulator struct {
	n     int
	round int
	procs []*process

	wg        sync.WaitGroup // process lifecycle
	closeOnce sync.Once
}

// New starts a simulator with n process goroutines, each knowing only its
// own value. Callers must Close it. n must be >= 1.
func New(n int) *Simulator {
	if n < 1 {
		panic(fmt.Sprintf("procs: New needs n >= 1, got %d", n))
	}
	s := &Simulator{n: n, procs: make([]*process, n)}
	for i := 0; i < n; i++ {
		p := &process{
			id:    i,
			heard: bitset.New(n),
			// Capacity 1: each inbox receives exactly one message per
			// round (from the parent), so sends never block and the
			// send-then-receive order in loop cannot deadlock.
			inbox: make(chan *bitset.Set, 1),
			cmd:   make(chan roundCmd),
		}
		p.heard.Set(i)
		s.procs[i] = p
	}
	s.wg.Add(n)
	for _, p := range s.procs {
		go p.loop(&s.wg)
	}
	return s
}

// N returns the number of processes.
func (s *Simulator) N() int { return s.n }

// Round returns the number of rounds executed.
func (s *Simulator) Round() int { return s.round }

// Step runs one synchronous round along t, blocking until every process
// has finished the round.
func (s *Simulator) Step(t *tree.Tree) {
	if t.N() != s.n {
		panic(fmt.Sprintf("procs: tree on %d vertices for %d processes", t.N(), s.n))
	}
	children := t.Children()
	var done sync.WaitGroup
	done.Add(s.n)
	root := t.Root()
	for i, p := range s.procs {
		chs := make([]chan *bitset.Set, len(children[i]))
		for j, c := range children[i] {
			chs[j] = s.procs[c].inbox
		}
		p.cmd <- roundCmd{children: chs, recv: i != root, done: &done}
	}
	done.Wait()
	s.round++
}

// Heard returns a snapshot copy of the set of values process y has heard.
// Safe to call between rounds only (the coordinator's Step provides the
// necessary happens-before edge).
func (s *Simulator) Heard(y int) *bitset.Set { return s.procs[y].heard.Clone() }

// Matrix materializes the adjacency matrix of the current product graph:
// entry (x, y) iff y has heard x's value.
func (s *Simulator) Matrix() *boolmat.Matrix {
	m := boolmat.Zero(s.n)
	for y, p := range s.procs {
		p.heard.ForEach(func(x int) bool {
			m.Set(x, y)
			return true
		})
	}
	return m
}

// BroadcastDone reports whether some value has reached every process.
func (s *Simulator) BroadcastDone() bool {
	inter := s.procs[0].heard.Clone()
	for _, p := range s.procs[1:] {
		inter.Intersect(p.heard)
		if inter.Empty() {
			return false
		}
	}
	return !inter.Empty()
}

// GossipDone reports whether every process has heard every value.
func (s *Simulator) GossipDone() bool {
	for _, p := range s.procs {
		if !p.heard.Full() {
			return false
		}
	}
	return true
}

// Close shuts down the process goroutines and waits for them to exit.
// Safe to call multiple times; the simulator must not be stepped after.
func (s *Simulator) Close() {
	s.closeOnce.Do(func() {
		for _, p := range s.procs {
			close(p.cmd)
		}
		s.wg.Wait()
	})
}
