package procs

import (
	"testing"

	"dyntreecast/internal/core"
	"dyntreecast/internal/rng"
	"dyntreecast/internal/tree"
)

func TestInitialState(t *testing.T) {
	s := New(5)
	defer s.Close()
	for y := 0; y < 5; y++ {
		k := s.Heard(y)
		if k.Count() != 1 || !k.Test(y) {
			t.Errorf("K_%d = %v, want {%d}", y, k, y)
		}
	}
	if s.Round() != 0 {
		t.Errorf("Round() = %d, want 0", s.Round())
	}
	if s.BroadcastDone() {
		t.Error("broadcast done at round 0 for n=5")
	}
}

func TestNewPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(0)
}

func TestN1(t *testing.T) {
	s := New(1)
	defer s.Close()
	if !s.BroadcastDone() || !s.GossipDone() {
		t.Error("n=1 should be complete at round 0")
	}
	s.Step(tree.MustNew([]int{0}))
	if s.Round() != 1 {
		t.Error("Step did not advance round")
	}
}

func TestSingleHopPerRound(t *testing.T) {
	s := New(4)
	defer s.Close()
	s.Step(tree.IdentityPath(4))
	if got := s.Heard(3).Slice(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("K_3 after one round = %v, want [2 3]", got)
	}
	if got := s.Heard(1).Slice(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("K_1 after one round = %v, want [0 1]", got)
	}
}

func TestStepSizeMismatchPanics(t *testing.T) {
	s := New(3)
	defer s.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s.Step(tree.IdentityPath(4))
}

func TestStaticPathBroadcast(t *testing.T) {
	const n = 8
	s := New(n)
	defer s.Close()
	p := tree.IdentityPath(n)
	rounds := 0
	for !s.BroadcastDone() {
		s.Step(p)
		rounds++
		if rounds > n {
			t.Fatal("static path exceeded n rounds")
		}
	}
	if rounds != n-1 {
		t.Errorf("t* = %d, want %d", rounds, n-1)
	}
}

func TestAgreesWithCoreEngine(t *testing.T) {
	// The message-passing system and the algebraic engine must produce
	// identical knowledge states on identical tree sequences.
	src := rng.New(33)
	for _, n := range []int{2, 3, 7, 20} {
		s := New(n)
		e := core.NewEngine(n)
		for r := 0; r < 2*n; r++ {
			tr := tree.Random(n, src)
			s.Step(tr)
			e.Step(tr)
			if !s.Matrix().Equal(e.Matrix()) {
				s.Close()
				t.Fatalf("n=%d round %d: procs and core diverged", n, r+1)
			}
			if s.BroadcastDone() != e.BroadcastDone() {
				s.Close()
				t.Fatalf("n=%d round %d: broadcast predicates diverged", n, r+1)
			}
			if s.GossipDone() != e.GossipDone() {
				s.Close()
				t.Fatalf("n=%d round %d: gossip predicates diverged", n, r+1)
			}
		}
		s.Close()
	}
}

func TestHeardReturnsSnapshot(t *testing.T) {
	s := New(3)
	defer s.Close()
	k := s.Heard(0)
	k.Set(2) // mutate the snapshot
	if s.Heard(0).Test(2) {
		t.Error("mutating Heard snapshot affected simulator state")
	}
}

func TestCloseIdempotent(t *testing.T) {
	s := New(4)
	s.Close()
	s.Close() // must not panic or deadlock
}

func TestManyRoundsNoLeak(t *testing.T) {
	// Exercise the channel protocol hard; run with -race to check for
	// coordinator/process data races.
	src := rng.New(44)
	s := New(16)
	defer s.Close()
	for r := 0; r < 200; r++ {
		s.Step(tree.Random(16, src))
	}
	if s.Round() != 200 {
		t.Errorf("Round() = %d, want 200", s.Round())
	}
	if !s.GossipDone() {
		t.Error("gossip not complete after 200 random rounds on n=16")
	}
}

func BenchmarkProcsStep(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		name := map[int]string{16: "n16", 64: "n64", 256: "n256"}[n]
		b.Run(name, func(b *testing.B) {
			src := rng.New(1)
			s := New(n)
			defer s.Close()
			trees := make([]*tree.Tree, 32)
			for i := range trees {
				trees[i] = tree.Random(n, src)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step(trees[i%len(trees)])
			}
		})
	}
}
