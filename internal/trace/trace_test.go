package trace

import (
	"bytes"
	"strings"
	"testing"

	"dyntreecast/internal/adversary"
	"dyntreecast/internal/core"
	"dyntreecast/internal/rng"
	"dyntreecast/internal/tree"
)

func runWithRecorder(t *testing.T, n int, adv core.Adversary) *Recorder {
	t.Helper()
	var rec Recorder
	if _, err := core.Run(n, adv, core.Broadcast, core.WithObserver(rec.Observer())); err != nil {
		t.Fatal(err)
	}
	return &rec
}

func TestRecorderCapturesRounds(t *testing.T) {
	rec := runWithRecorder(t, 5, adversary.Static{Tree: tree.IdentityPath(5)})
	recs := rec.Records()
	if len(recs) != 4 {
		t.Fatalf("recorded %d rounds, want 4", len(recs))
	}
	for i, r := range recs {
		if r.Round != i+1 {
			t.Errorf("record %d has round %d", i, r.Round)
		}
		if r.Root != 0 || !r.IsPath || r.Leaves != 1 {
			t.Errorf("record %d misdescribes the identity path: %+v", i, r)
		}
		// Identity path adds exactly n−1−i new edges in round i+1? No:
		// each round every informed frontier advances; for the static
		// path the product gains a diagonal band. Just check positivity.
		if r.NewEdges < 1 {
			t.Errorf("record %d: NewEdges = %d", i, r.NewEdges)
		}
	}
	last := recs[len(recs)-1]
	if last.Broadcasters != 1 || last.MaxRow != 5 {
		t.Errorf("final record: %+v", last)
	}
}

func TestVerifyGrowthHoldsOnRealRuns(t *testing.T) {
	src := rng.New(5)
	for trial := 0; trial < 10; trial++ {
		rec := runWithRecorder(t, 9, adversary.Random{Src: src})
		if bad := VerifyGrowth(rec.Records()); bad != nil {
			t.Fatalf("growth lemma violated at %+v", *bad)
		}
	}
}

func TestVerifyGrowthDetectsViolation(t *testing.T) {
	recs := []Record{{Round: 1, NewEdges: 1}, {Round: 2, NewEdges: 0}}
	if bad := VerifyGrowth(recs); bad == nil || bad.Round != 2 {
		t.Errorf("violation not detected: %+v", bad)
	}
	recs[1].Broadcasters = 1 // completing round may add no edge
	if bad := VerifyGrowth(recs); bad != nil {
		t.Errorf("false positive: %+v", *bad)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rec := runWithRecorder(t, 4, adversary.Static{Tree: tree.IdentityPath(4)})
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(rec.Records()) {
		t.Fatalf("round trip lost records: %d vs %d", len(back), len(rec.Records()))
	}
	for i := range back {
		if back[i].Round != rec.Records()[i].Round || back[i].Edges != rec.Records()[i].Edges {
			t.Errorf("record %d differs after round trip", i)
		}
	}
}

func TestReadJSONError(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Error("invalid JSON accepted")
	}
}

func TestWriteTable(t *testing.T) {
	rec := runWithRecorder(t, 4, adversary.Static{Tree: tree.IdentityPath(4)})
	var buf bytes.Buffer
	if err := rec.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "round") || !strings.Contains(out, "+edges") {
		t.Errorf("table missing header: %q", out)
	}
	// n=4 static path: 3 rounds plus one header line.
	if lines := strings.Count(out, "\n"); lines != 3+1 {
		t.Errorf("table has %d lines, want 4", lines)
	}
}

func TestMatrixOfReplaysRun(t *testing.T) {
	// Replaying the recorded trees must reproduce the final engine state.
	src := rng.New(11)
	var rec Recorder
	e := core.NewEngine(6)
	for r := 0; r < 8; r++ {
		tr := tree.Random(6, src)
		e.Step(tr)
		rec.Observer()(e.Round(), tr, e)
	}
	m, err := MatrixOf(6, rec.Records())
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(e.Matrix()) {
		t.Error("replayed matrix differs from live engine state")
	}
}

func TestMatrixOfRejectsBadParents(t *testing.T) {
	recs := []Record{{Round: 1, Parents: []int{1, 0}}} // no root
	if _, err := MatrixOf(2, recs); err == nil {
		t.Error("invalid parent array accepted")
	}
}

func TestRecorderReset(t *testing.T) {
	rec := runWithRecorder(t, 4, adversary.Static{Tree: tree.IdentityPath(4)})
	rec.Reset()
	if len(rec.Records()) != 0 {
		t.Error("Reset did not clear records")
	}
}
