// Package trace records the round-by-round evolution of a simulation —
// the matrix statistics the paper's proof tracks (experiment E8) — and
// renders it as text or JSON.
//
// A Recorder plugs into core.Run as an observer; each round it captures
// the applied tree and the knowledge-state statistics.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"dyntreecast/internal/boolmat"
	"dyntreecast/internal/core"
	"dyntreecast/internal/tree"
)

// Record is one round of a simulation.
type Record struct {
	Round int `json:"round"`
	// Parents is the parent array of the round's tree.
	Parents []int `json:"parents"`
	Root    int   `json:"root"`
	Leaves  int   `json:"leaves"`
	IsPath  bool  `json:"is_path"`
	// Matrix statistics after the round.
	Edges        int `json:"edges"`
	NewEdges     int `json:"new_edges"`
	MinRow       int `json:"min_row"`
	MaxRow       int `json:"max_row"`
	MinCol       int `json:"min_col"`
	MaxCol       int `json:"max_col"`
	Broadcasters int `json:"broadcasters"`
}

// Recorder accumulates Records. The zero value is ready to use.
type Recorder struct {
	records   []Record
	prevEdges int
}

// Observer returns the callback to pass to core.WithObserver.
func (r *Recorder) Observer() func(round int, t *tree.Tree, e *core.Engine) {
	return func(round int, t *tree.Tree, e *core.Engine) {
		s := e.Stats()
		if r.prevEdges == 0 {
			r.prevEdges = e.N() // identity state
		}
		rec := Record{
			Round:        round,
			Parents:      append([]int(nil), t.Parents()...),
			Root:         t.Root(),
			Leaves:       t.NumLeaves(),
			IsPath:       t.IsPath(),
			Edges:        s.Edges,
			NewEdges:     s.Edges - r.prevEdges,
			MinRow:       s.MinRow,
			MaxRow:       s.MaxRow,
			MinCol:       s.MinCol,
			MaxCol:       s.MaxCol,
			Broadcasters: e.Broadcasters().Count(),
		}
		r.prevEdges = s.Edges
		r.records = append(r.records, rec)
	}
}

// Records returns the accumulated rounds.
func (r *Recorder) Records() []Record { return r.records }

// Reset clears the recorder for reuse.
func (r *Recorder) Reset() {
	r.records = nil
	r.prevEdges = 0
}

// WriteJSON writes the records as a JSON array.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.records); err != nil {
		return fmt.Errorf("trace: encoding records: %w", err)
	}
	return nil
}

// ReadJSON parses records written by WriteJSON.
func ReadJSON(rd io.Reader) ([]Record, error) {
	var recs []Record
	if err := json.NewDecoder(rd).Decode(&recs); err != nil {
		return nil, fmt.Errorf("trace: decoding records: %w", err)
	}
	return recs, nil
}

// WriteTable renders the records as an aligned text table: the per-round
// quantities (edge growth, row/column extremes) the paper's analysis is
// about.
func (r *Recorder) WriteTable(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%5s %6s %5s %5s %7s %7s %7s %7s %6s %5s\n",
		"round", "root", "leaf", "path", "edges", "+edges", "minrow", "maxrow", "mincol", "bcast")
	for _, rec := range r.records {
		fmt.Fprintf(&b, "%5d %6d %5d %5v %7d %7d %7d %7d %6d %5d\n",
			rec.Round, rec.Root, rec.Leaves, rec.IsPath,
			rec.Edges, rec.NewEdges, rec.MinRow, rec.MaxRow, rec.MinCol, rec.Broadcasters)
	}
	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("trace: writing table: %w", err)
	}
	return nil
}

// VerifyGrowth checks the §2 edge-growth lemma over the trace: every
// round before broadcast completion must add at least one edge, and edge
// counts must be non-decreasing throughout. It returns the first
// violating record, or nil.
func VerifyGrowth(recs []Record) *Record {
	for i := range recs {
		rec := &recs[i]
		if rec.NewEdges < 0 {
			return rec
		}
		if rec.NewEdges == 0 && rec.Broadcasters == 0 {
			return rec
		}
	}
	return nil
}

// MatrixOf reconstructs the knowledge matrix at the end of a record
// sequence by replaying the recorded trees from the identity state. It
// errors if a recorded parent array is not a valid tree.
func MatrixOf(n int, recs []Record) (*boolmat.Matrix, error) {
	m := boolmat.Identity(n)
	for _, rec := range recs {
		t, err := tree.New(rec.Parents)
		if err != nil {
			return nil, fmt.Errorf("trace: round %d: %w", rec.Round, err)
		}
		m.ApplyTree(t)
	}
	return m, nil
}
