package evolve

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"dyntreecast/internal/adversary"
	"dyntreecast/internal/bounds"
	"dyntreecast/internal/campaign"
	"dyntreecast/internal/campaign/cache"
	"dyntreecast/internal/core"
	"dyntreecast/internal/rng"
	"dyntreecast/internal/tree"
)

func baseOptions() Options {
	return Options{
		Families:    []string{"beam-search", "deepest-line", "stale-ascending"},
		Ns:          []int{5, 6},
		Trials:      2,
		Population:  4,
		Generations: 3,
		Elite:       2,
		Seed:        1,
	}
}

func TestRunValidation(t *testing.T) {
	cases := []func(*Options){
		func(o *Options) { o.Families = nil },
		func(o *Options) { o.Families = []string{"no-such-family"} },
		func(o *Options) { o.Ns = nil },
		func(o *Options) { o.Trials = 0 },
		func(o *Options) { o.Population = 0 },
		func(o *Options) { o.Generations = 0 },
		func(o *Options) { o.Elite = 0 },
		func(o *Options) { o.Elite = 99 },
		// deepest-line cannot run anywhere past the solver's packing limit.
		func(o *Options) { o.Families = []string{"deepest-line"}; o.Ns = []int{9} },
	}
	for i, breakIt := range cases {
		opts := baseOptions()
		breakIt(&opts)
		if _, err := Run(context.Background(), opts); err == nil {
			t.Errorf("case %d: bad options accepted", i)
		}
	}
}

// TestRunDeterministicAndCacheable: equal options give byte-identical
// reports, cold or against a cache warmed by a previous run — the
// meta-campaign inherits the campaign layer's byte-identity contract.
func TestRunDeterministicAndCacheable(t *testing.T) {
	opts := baseOptions()
	c := cache.NewMemory()
	opts.Cache = c
	cold, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	coldJSON, _ := json.MarshalIndent(cold, "", " ")
	warm, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	warmJSON, _ := json.MarshalIndent(warm, "", " ")
	if !bytes.Equal(coldJSON, warmJSON) {
		t.Errorf("warm rerun differs from cold run:\ncold: %s\nwarm: %s", coldJSON, warmJSON)
	}
	if c.Len() == 0 {
		t.Error("no cells were cached")
	}
}

// TestWitnessBeatsBaselineWithinExact: a 3-generation run at n = 6 must
// find a lower-bound witness at least as good as the deepest-line
// family's default configuration measured alone (generation 0 contains
// that candidate and elitism never loses it) — and no witness can exceed
// t*(T6) = 7, the exact game value, because every measurement is an
// achieved schedule.
func TestWitnessBeatsBaselineWithinExact(t *testing.T) {
	const exactT6 = 7
	baseSpec := campaign.Spec{
		Scenarios: []Scenario{{Adversary: "deepest-line"}},
		Ns:        []int{6}, Trials: 2, Seed: 1,
	}
	baseOut, err := campaign.RunSpec(context.Background(), baseSpec, campaign.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(baseOut.Cells) != 1 {
		t.Fatalf("baseline cells = %d, want 1", len(baseOut.Cells))
	}
	baseline := int(baseOut.Cells[0].Max)

	opts := baseOptions()
	opts.Ns = []int{6}
	report, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Best) != 1 || report.Best[0].N != 6 {
		t.Fatalf("best witnesses = %+v, want exactly one at n=6", report.Best)
	}
	w := report.Best[0]
	if w.Rounds < baseline {
		t.Errorf("witness %d rounds, below the deepest-line baseline %d", w.Rounds, baseline)
	}
	if w.Rounds > exactT6 {
		t.Errorf("witness %d rounds exceeds the exact optimum %d", w.Rounds, exactT6)
	}
	if w.ZSSLower != bounds.Lower(6) || w.PaperUpper != bounds.UpperLinear(6) {
		t.Errorf("witness bound annotations = (%d, %d), want (%d, %d)",
			w.ZSSLower, w.PaperUpper, bounds.Lower(6), bounds.UpperLinear(6))
	}
	if report.Winner.Adversary == "" {
		t.Error("no winner reported")
	}
}

// TestReportShape: every generation's candidates are valid ground
// scenarios, ranked by nonincreasing fitness, and the per-n best witness
// is monotone across generations (elitism).
func TestReportShape(t *testing.T) {
	report, err := Run(context.Background(), baseOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Results) != 3 {
		t.Fatalf("generations recorded = %d, want 3", len(report.Results))
	}
	prevBest := map[int]int{}
	for _, g := range report.Results {
		for i, c := range g.Candidates {
			if _, err := campaign.CellName(c.Scenario, 6); err != nil {
				t.Errorf("gen %d candidate %s is not a valid ground scenario: %v", g.Index, c.Scenario, err)
			}
			if i > 0 && c.Fitness > g.Candidates[i-1].Fitness {
				t.Errorf("gen %d: candidates not ranked: %v after %v", g.Index, c.Fitness, g.Candidates[i-1].Fitness)
			}
			if c.Fitness < 0 || c.Fitness > 1+1.5 { // 1+√2 ≈ 2.414 is the theoretical ceiling
				t.Errorf("gen %d: fitness %v outside the plausible range", g.Index, c.Fitness)
			}
		}
		for _, w := range g.Best {
			if w.Rounds < prevBest[w.N] {
				t.Errorf("gen %d: best witness at n=%d regressed from %d to %d", g.Index, w.N, prevBest[w.N], w.Rounds)
			}
			prevBest[w.N] = w.Rounds
		}
	}
}

// Scenario aliases campaign.Scenario for test brevity.
type Scenario = campaign.Scenario

// registerKnobs registers (once) a fast custom family with a float, a
// bool, and a required int param — the kinds no built-in family carries —
// so the mutation operator's float/bool arms and the required-numeric
// seeding rule are reachable.
func registerKnobs(t *testing.T) {
	t.Helper()
	if _, ok := familyRegistered("t-evolve-knobs"); ok {
		return
	}
	err := campaign.Register(campaign.Family{
		Name: "t-evolve-knobs",
		Params: []campaign.Param{
			{Name: "rate", Kind: campaign.FloatParam, Default: 1.0, Doc: "float knob"},
			{Name: "flip", Kind: campaign.BoolParam, Default: false, Doc: "bool knob"},
			{Name: "k", Kind: campaign.IntParam, Doc: "required int knob"},
		},
		New: func(n int, p campaign.Params, _ *rng.Source) (core.Adversary, error) {
			return adversary.Func(func(v core.View) *tree.Tree {
				s, err := tree.Star(v.N(), 0)
				if err != nil {
					return nil
				}
				return s
			}), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func familyRegistered(name string) (campaign.Family, bool) {
	for _, f := range campaign.Families() {
		if f.Name == name {
			return f, true
		}
	}
	return campaign.Family{}, false
}

// TestRunCustomFamilyMutationsAndLog: a family with float/bool/required
// params seeds (required numerics default to 2), mutates across all
// three kinds, and the progress log reports every generation.
func TestRunCustomFamilyMutationsAndLog(t *testing.T) {
	registerKnobs(t)
	var log bytes.Buffer
	opts := Options{
		Families: []string{"t-evolve-knobs"}, Ns: []int{4, 5}, Trials: 2,
		Population: 5, Generations: 2, Elite: 1, Seed: 3, Log: &log,
	}
	report, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	seed := report.Results[0].Candidates
	var found bool
	for _, c := range seed {
		if k, ok := c.Scenario.Params["k"].(float64); ok && k == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("no candidate carries the required-param seed k=2: %v", seed)
	}
	if !bytes.Contains(log.Bytes(), []byte("gen 1/2")) || !bytes.Contains(log.Bytes(), []byte("gen 2/2")) {
		t.Errorf("progress log missing generation lines:\n%s", log.String())
	}
}

// TestRunRequiredStringParamUnseedable: a family whose required param has
// no numeric seed cannot enter generation 0 — a clear error, not a panic.
func TestRunRequiredStringParamUnseedable(t *testing.T) {
	err := campaign.Register(campaign.Family{
		Name:   "t-evolve-reqstr",
		Params: []campaign.Param{{Name: "mode", Kind: campaign.StringParam, Doc: "required string"}},
		New: func(n int, p campaign.Params, _ *rng.Source) (core.Adversary, error) {
			return adversary.Func(func(v core.View) *tree.Tree { return nil }), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := baseOptions()
	opts.Families = []string{"t-evolve-reqstr"}
	if _, err := Run(context.Background(), opts); err == nil {
		t.Error("unseedable family accepted")
	}
}

// TestRunCancelledReturnsPartialReport: cancellation surfaces the error
// together with whatever generations completed (here none), so cmd/evolve
// can write a partial artifact.
func TestRunCancelledReturnsPartialReport(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	report, err := Run(ctx, baseOptions())
	if err == nil {
		t.Fatal("cancelled run reported success")
	}
	if report == nil {
		t.Fatal("cancelled run returned no partial report")
	}
	if len(report.Best) != 0 && report.Winner.Adversary != "" {
		t.Errorf("cancelled-before-start run claims a winner: %+v", report)
	}
}
