// Package evolve runs evolutionary meta-campaigns over the adversary
// registry: a population of ground scenarios competes on how long its
// adversaries stall broadcast, the fittest survive, and their parameter
// mutations form the next generation. The point is lower-bound witness
// hunting against the paper's (1+√2)n upper-bound curve — every measured
// round count is an achieved schedule, hence a certified lower-bound
// witness for t*(Tn) — with the campaign layer doing all the running.
//
// Each generation is an ordinary campaign spec (the population's
// scenarios × the configured ns × trials) executed through
// campaign.RunSpec, so every determinism and caching property of
// campaigns carries over wholesale: the same options produce a
// byte-identical Report, surviving candidates' cells are content-
// addressed cache hits in every later generation (the spec seed never
// changes, so a cell's identity never does), and an interrupted
// generation resumes from the cache, recomputing only its unfinished
// cells. Mutation randomness comes from a dedicated stream seeded by
// Options.Seed — never from the campaign's trial streams — so the
// population trajectory is a pure function of the options.
package evolve

import (
	"context"
	"fmt"
	"io"
	"sort"

	"dyntreecast/internal/bounds"
	"dyntreecast/internal/campaign"
	"dyntreecast/internal/campaign/cache"
	"dyntreecast/internal/rng"
)

// Options configures an evolutionary meta-campaign.
type Options struct {
	// Families are the registered adversary families the population draws
	// from. Generation 0 contains each family's default assignment
	// (required numeric params are seeded with 2), so no family starts
	// unexplored.
	Families []string
	// Ns are the grid sizes every candidate is measured at.
	Ns []int
	// Trials per grid cell.
	Trials int
	// Population is the number of candidates per generation.
	Population int
	// Generations is how many generations to run.
	Generations int
	// Elite is how many top candidates survive unchanged into the next
	// generation (the rest are their mutations). At least 1: elitism is
	// what makes the best witness monotone across generations.
	Elite int
	// Seed drives both the mutation stream and every generation's
	// campaign seed. The whole run is a pure function of Options.
	Seed uint64
	// Goal is "broadcast" (default) or "gossip".
	Goal string
	// MaxRounds caps each run (0 = the engine default n²+1).
	MaxRounds int
	// Workers sizes each generation's worker pool (0 = GOMAXPROCS).
	Workers int
	// Cache, when non-nil, is the content-addressed cell store shared by
	// every generation — surviving candidates re-measure for free, and an
	// interrupted run resumes past every finished cell.
	Cache cache.Cache
	// Log, when non-nil, receives one human-readable progress line per
	// generation. Decoration only: the Report is identical without it.
	Log io.Writer
}

func (o *Options) validate() error {
	switch {
	case len(o.Families) == 0:
		return fmt.Errorf("evolve: at least one family required")
	case len(o.Ns) == 0:
		return fmt.Errorf("evolve: at least one n required")
	case o.Trials < 1:
		return fmt.Errorf("evolve: trials must be >= 1, got %d", o.Trials)
	case o.Population < 1:
		return fmt.Errorf("evolve: population must be >= 1, got %d", o.Population)
	case o.Generations < 1:
		return fmt.Errorf("evolve: generations must be >= 1, got %d", o.Generations)
	case o.Elite < 1 || o.Elite > o.Population:
		return fmt.Errorf("evolve: elite must be in [1, population], got %d", o.Elite)
	}
	return nil
}

// CellScore is one candidate's measurement at one n: the longest run
// observed in its cell (an achieved schedule, hence a witness).
type CellScore struct {
	N      int    `json:"n"`
	Cell   string `json:"cell"`
	Rounds int    `json:"rounds"`
}

// Candidate is one population member with its generation's measurements.
type Candidate struct {
	Scenario campaign.Scenario `json:"scenario"`
	// Fitness is the mean of rounds/n over the ns the candidate is
	// feasible at — the normalized stalling factor, comparable across
	// grid sizes (the paper's curves put it between 1 and 1+√2).
	Fitness float64     `json:"fitness"`
	Cells   []CellScore `json:"cells"`
}

// Witness is the best lower-bound witness found for one n, reported
// against the paper's bound curve.
type Witness struct {
	N          int               `json:"n"`
	Rounds     int               `json:"rounds"`
	Cell       string            `json:"cell"`
	Scenario   campaign.Scenario `json:"scenario"`
	ZSSLower   int               `json:"zss_lower"`   // ⌈(3n−1)/2⌉−2, the known lower bound
	PaperUpper int               `json:"paper_upper"` // ⌈(1+√2)n−1⌉, Theorem 3.1
	RatioToN   float64           `json:"ratio_to_n"`  // rounds/n; 1+√2 ≈ 2.414 is the ceiling
}

// Generation is one generation's outcome: its candidates ranked fittest
// first, and the best witness per n observed so far (monotone across
// generations, thanks to elitism).
type Generation struct {
	Index      int         `json:"index"`
	Candidates []Candidate `json:"candidates"`
	Best       []Witness   `json:"best"`
}

// Report is the machine-diffable artifact of a run. Like campaign
// outcomes it carries no timestamps, host details, or cache-provenance
// counts, so two runs with equal Options emit identical bytes — warm
// cache or cold.
type Report struct {
	Families    []string          `json:"families"`
	Ns          []int             `json:"ns"`
	Trials      int               `json:"trials"`
	Population  int               `json:"population"`
	Generations int               `json:"generations"`
	Elite       int               `json:"elite"`
	Seed        uint64            `json:"seed"`
	Goal        string            `json:"goal,omitempty"`
	MaxRounds   int               `json:"max_rounds,omitempty"`
	Results     []Generation      `json:"results"`
	Best        []Witness         `json:"best"`   // final best witness per n
	Winner      campaign.Scenario `json:"winner"` // fittest candidate of the last generation
}

// Run executes the meta-campaign. On context cancellation the partial
// Report (every completed generation) is returned alongside the error.
func Run(ctx context.Context, opts Options) (*Report, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	families := make(map[string]campaign.Family, len(opts.Families))
	for _, f := range campaign.Families() {
		families[f.Name] = f
	}
	for _, name := range opts.Families {
		if _, ok := families[name]; !ok {
			return nil, fmt.Errorf("evolve: unknown adversary family %q (known: %v)", name, campaign.Adversaries())
		}
	}

	src := rng.New(opts.Seed)
	pop, err := seedPopulation(src, families, opts)
	if err != nil {
		return nil, err
	}

	report := &Report{
		Families: opts.Families, Ns: opts.Ns, Trials: opts.Trials,
		Population: opts.Population, Generations: opts.Generations,
		Elite: opts.Elite, Seed: opts.Seed, Goal: opts.Goal, MaxRounds: opts.MaxRounds,
	}
	best := map[int]Witness{} // per n, best so far
	for gen := 0; gen < opts.Generations; gen++ {
		spec := campaign.Spec{
			Name:      fmt.Sprintf("evolve-gen%d", gen),
			Scenarios: pop,
			Ns:        opts.Ns,
			Trials:    opts.Trials,
			Seed:      opts.Seed, // constant across generations: survivors' cells stay cache hits
			Goal:      opts.Goal,
			MaxRounds: opts.MaxRounds,
		}
		out, runErr := campaign.RunSpec(ctx, spec, campaign.Config{Workers: opts.Workers, Cache: opts.Cache})
		if out == nil {
			return report, runErr
		}
		scored := scorePopulation(pop, families, opts.Ns, out.Cells)
		for _, c := range scored {
			for _, cs := range c.Cells {
				if w, ok := best[cs.N]; !ok || cs.Rounds > w.Rounds {
					best[cs.N] = Witness{
						N: cs.N, Rounds: cs.Rounds, Cell: cs.Cell, Scenario: c.Scenario,
						ZSSLower: bounds.Lower(cs.N), PaperUpper: bounds.UpperLinear(cs.N),
						RatioToN: float64(cs.Rounds) / float64(cs.N),
					}
				}
			}
		}
		g := Generation{Index: gen, Candidates: scored, Best: witnessList(best, opts.Ns)}
		report.Results = append(report.Results, g)
		if opts.Log != nil {
			top := "none"
			if len(scored) > 0 {
				top = fmt.Sprintf("%s fitness=%.4f", scored[0].Scenario, scored[0].Fitness)
			}
			fmt.Fprintf(opts.Log, "evolve: gen %d/%d: %d candidates, %d jobs (%d executed, %d cached), best %s\n",
				gen+1, opts.Generations, len(scored), out.Jobs, out.Executed, out.CacheHits, top)
		}
		if runErr != nil {
			report.Best = witnessList(best, opts.Ns)
			return report, runErr
		}
		if gen < opts.Generations-1 {
			pop = nextPopulation(src, families, scored, opts)
		}
	}
	report.Best = witnessList(best, opts.Ns)
	if len(report.Results) > 0 && len(report.Results[len(report.Results)-1].Candidates) > 0 {
		report.Winner = report.Results[len(report.Results)-1].Candidates[0].Scenario
	}
	return report, nil
}

// witnessList renders the running-best map as a slice in Ns order, so
// the JSON artifact has a fixed field order.
func witnessList(best map[int]Witness, ns []int) []Witness {
	out := make([]Witness, 0, len(best))
	for _, n := range ns {
		if w, ok := best[n]; ok {
			out = append(out, w)
		}
	}
	return out
}

// candidateKey is the dedup identity of a candidate: Scenario.String
// marshals params with sorted keys, so equal assignments collide.
func candidateKey(sc campaign.Scenario) string { return sc.String() }

// feasibleSomewhere reports whether the family can run the assignment at
// at least one of the configured ns — a candidate that cannot be
// measured anywhere would pollute the population with fitness 0.
func feasibleSomewhere(f campaign.Family, sc campaign.Scenario, ns []int) bool {
	if f.Feasible == nil {
		return true
	}
	for _, n := range ns {
		if f.Feasible(n, campaign.Params(sc.Params)) {
			return true
		}
	}
	return false
}

// seedPopulation builds generation 0: each family's default assignment
// first (required numeric params seeded with 2), then mutations of those
// seeds round-robin until the population is full.
func seedPopulation(src *rng.Source, families map[string]campaign.Family, opts Options) ([]campaign.Scenario, error) {
	var pop []campaign.Scenario
	seen := map[string]bool{}
	for _, name := range opts.Families {
		f := families[name]
		params := map[string]any{}
		for _, p := range f.Params {
			if p.Default != nil {
				continue
			}
			switch p.Kind {
			case campaign.IntParam, campaign.FloatParam:
				params[p.Name] = float64(2)
			default:
				return nil, fmt.Errorf("evolve: family %q requires non-numeric param %q with no default; cannot seed it", name, p.Name)
			}
		}
		if len(params) == 0 {
			params = nil
		}
		grounds, err := campaign.GroundScenarios(campaign.Scenario{Adversary: name, Params: params})
		if err != nil {
			return nil, fmt.Errorf("evolve: seeding family %q: %w", name, err)
		}
		sc := grounds[0]
		if !feasibleSomewhere(f, sc, opts.Ns) {
			return nil, fmt.Errorf("evolve: family %q is infeasible at every configured n", name)
		}
		if len(pop) < opts.Population && !seen[candidateKey(sc)] {
			seen[candidateKey(sc)] = true
			pop = append(pop, sc)
		}
	}
	if len(pop) == 0 {
		return nil, fmt.Errorf("evolve: population %d cannot hold the %d family seeds", opts.Population, len(opts.Families))
	}
	fill(src, families, &pop, seen, opts)
	return pop, nil
}

// nextPopulation keeps the Elite fittest candidates and refills the rest
// with their mutations, round-robin over the elites.
func nextPopulation(src *rng.Source, families map[string]campaign.Family, ranked []Candidate, opts Options) []campaign.Scenario {
	var pop []campaign.Scenario
	seen := map[string]bool{}
	for i := 0; i < len(ranked) && len(pop) < opts.Elite; i++ {
		sc := ranked[i].Scenario
		if !seen[candidateKey(sc)] {
			seen[candidateKey(sc)] = true
			pop = append(pop, sc)
		}
	}
	fill(src, families, &pop, seen, opts)
	return pop
}

// fill mutates the current members round-robin until the population is
// full or the mutation budget is spent (tiny search spaces may saturate;
// a short generation is fine and still deterministic).
func fill(src *rng.Source, families map[string]campaign.Family, pop *[]campaign.Scenario, seen map[string]bool, opts Options) {
	base := append([]campaign.Scenario(nil), *pop...)
	for attempts := 0; len(*pop) < opts.Population && attempts < 64*opts.Population; attempts++ {
		parent := base[attempts%len(base)]
		child, ok := mutate(src, families[parent.Adversary], parent, opts.Ns)
		if !ok || seen[candidateKey(child)] {
			continue
		}
		seen[candidateKey(child)] = true
		*pop = append(*pop, child)
	}
}

// mutate perturbs one randomly chosen parameter of the candidate,
// re-validating the result through the registry (kind check, the
// family's Check, feasibility at some configured n). Returns ok=false
// when the family has no mutable params or no valid mutation was found
// within the attempt budget.
func mutate(src *rng.Source, f campaign.Family, cand campaign.Scenario, ns []int) (campaign.Scenario, bool) {
	var mutable []campaign.Param
	for _, p := range f.Params {
		if p.Kind != campaign.StringParam { // no alphabet to explore
			mutable = append(mutable, p)
		}
	}
	if len(mutable) == 0 {
		return campaign.Scenario{}, false
	}
	for attempt := 0; attempt < 8; attempt++ {
		p := mutable[src.Intn(len(mutable))]
		params := make(map[string]any, len(cand.Params))
		for k, v := range cand.Params {
			params[k] = v
		}
		switch p.Kind {
		case campaign.IntParam:
			old := int(params[p.Name].(float64))
			nv := old
			switch src.Intn(4) {
			case 0:
				nv = old + 1 + src.Intn(3)
			case 1:
				nv = old - 1 - src.Intn(3)
			case 2:
				nv = old * 2
			case 3:
				nv = old / 2
			}
			if nv == old {
				nv = old + 1
			}
			if nv < 0 {
				nv = 0
			}
			params[p.Name] = float64(nv)
		case campaign.FloatParam:
			params[p.Name] = params[p.Name].(float64) * (0.5 + 1.5*src.Float64())
		case campaign.BoolParam:
			params[p.Name] = !params[p.Name].(bool)
		}
		grounds, err := campaign.GroundScenarios(campaign.Scenario{Adversary: cand.Adversary, Params: params})
		if err != nil {
			continue // the family's Check rejected the perturbation
		}
		child := grounds[0]
		if !feasibleSomewhere(f, child, ns) {
			continue
		}
		return child, true
	}
	return campaign.Scenario{}, false
}

// scorePopulation attaches each candidate's cell measurements and
// fitness, then ranks fittest first (ties broken by the candidate's
// canonical string, so the order — and the Report — is deterministic).
func scorePopulation(pop []campaign.Scenario, families map[string]campaign.Family, ns []int, cells []campaign.CellStats) []Candidate {
	out := make([]Candidate, 0, len(pop))
	for _, sc := range pop {
		c := Candidate{Scenario: sc}
		sum := 0.0
		for _, n := range ns {
			name, err := campaign.CellName(sc, n)
			if err != nil {
				continue // cannot happen for a ground candidate
			}
			stats, ok := campaign.CellByKey(cells, name)
			if !ok {
				continue // infeasible at this n, or every trial failed
			}
			rounds := int(stats.Max)
			c.Cells = append(c.Cells, CellScore{N: n, Cell: name, Rounds: rounds})
			sum += float64(rounds) / float64(n)
		}
		if len(c.Cells) > 0 {
			c.Fitness = sum / float64(len(c.Cells))
		}
		out = append(out, c)
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Fitness != out[b].Fitness {
			return out[a].Fitness > out[b].Fitness
		}
		return candidateKey(out[a].Scenario) < candidateKey(out[b].Scenario)
	})
	return out
}
