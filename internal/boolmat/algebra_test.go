package boolmat

import (
	"testing"
	"testing/quick"

	"dyntreecast/internal/rng"
	"dyntreecast/internal/tree"
)

// randPerm draws a uniform permutation as a slice.
func randPerm(src *rng.Source, n int) []int { return src.Perm(n) }

func TestPropertyPermuteRespectsProduct(t *testing.T) {
	// Relabeling is a ring homomorphism: P(A) ∘ P(B) = P(A ∘ B).
	// This is the algebraic fact the game solver's canonicalization
	// depends on.
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 2 + src.Intn(10)
		a := randomMatrix(src, n)
		b := randomMatrix(src, n)
		p := randPerm(src, n)
		lhs := a.Permute(p).Product(b.Permute(p))
		rhs := a.Product(b).Permute(p)
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyPermutePreservesCompletion(t *testing.T) {
	// Relabeling preserves the broadcast predicate and edge counts.
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 2 + src.Intn(10)
		m := randomMatrix(src, n)
		p := randPerm(src, n)
		pm := m.Permute(p)
		return pm.HasFullRow() == m.HasFullRow() &&
			pm.EdgeCount() == m.EdgeCount() &&
			pm.IsReflexive() == m.IsReflexive()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyTreeRelabelingCommutes(t *testing.T) {
	// Applying a relabeled tree to a relabeled state equals relabeling
	// the result: the tree set is closed under relabeling, which is what
	// justifies canonical memoization in the solver.
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 2 + src.Intn(8)
		m := randomMatrix(src, n)
		tr := tree.Random(n, src)
		p := randPerm(src, n)

		// Relabel the tree with the same convention as Matrix.Permute:
		// new label i corresponds to old label p[i].
		inv := make([]int, n)
		for i, v := range p {
			inv[v] = i
		}
		parents := make([]int, n)
		for v, q := range tr.Parents() {
			parents[inv[v]] = inv[q]
		}
		ptr, err := tree.New(parents)
		if err != nil {
			return false
		}

		lhs := m.Permute(p)
		lhs.ApplyTree(ptr)
		rhs := m.Clone()
		rhs.ApplyTree(tr)
		return lhs.Equal(rhs.Permute(p))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyProductEdgeCountMonotone(t *testing.T) {
	// With reflexive factors, products only add edges.
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 2 + src.Intn(10)
		a := randomMatrix(src, n)
		b := randomMatrix(src, n)
		p := a.Product(b)
		return p.EdgeCount() >= a.EdgeCount() && a.SubsetOf(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyApplyTreeIdempotentOnComplete(t *testing.T) {
	// A full matrix is a fixed point of every round.
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 2 + src.Intn(10)
		m := Zero(n)
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				m.Set(x, y)
			}
		}
		c := m.Clone()
		c.ApplyTree(tree.Random(n, src))
		return c.Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
