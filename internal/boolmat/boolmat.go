// Package boolmat implements square boolean matrices, the paper's analytic
// object.
//
// The adjacency matrix of the product graph G(t) = G1 ∘ … ∘ Gt is a boolean
// n×n matrix M where M[x][y] means "x's initial value has reached y by
// round t". The paper's entire upper-bound analysis is phrased as the
// evolution of this matrix, so this package exposes exactly the operations
// that analysis needs: boolean matrix product, the specialized product with
// a rooted tree round graph, reflexivity/monotonicity predicates, and the
// row/column statistics (reach and heard counts) the proof tracks.
//
// Rows are stored as bitsets: row x is the reach set R_x of process x.
package boolmat

import (
	"fmt"
	"strings"

	"dyntreecast/internal/bitset"
	"dyntreecast/internal/tree"
)

// Matrix is a dense n×n boolean matrix with bitset rows.
//
// All rows live in one contiguous bitset.Block (DESIGN.md §3g); the rows
// slice holds per-row Set views aliasing the block, so the Row API is
// unchanged while ApplyTree can run word-blocked kernels over the flat
// storage.
//
// Construct with Zero, Identity, FromTree, or FromRows. Methods that combine
// matrices require equal dimension and panic otherwise (programmer error).
type Matrix struct {
	n     int
	block *bitset.Block
	rows  []*bitset.Set // rows[x] aliases block row x (reach set R_x)
	// ord and cols are ApplyTree scratch (the child-before-parent edge
	// order and the transposed word-columns of one 64-row band). Reused
	// across calls; makes ApplyTree non-reentrant, which is fine: a Matrix
	// is never shared across goroutines.
	ord  tree.DepthOrder
	cols []uint64
}

// Zero returns the n×n all-false matrix.
func Zero(n int) *Matrix {
	if n < 0 {
		panic(fmt.Sprintf("boolmat: negative dimension %d", n))
	}
	block := bitset.NewBlock(n, n)
	rows := make([]*bitset.Set, n)
	for i := range rows {
		rows[i] = block.RowSet(i)
	}
	return &Matrix{n: n, block: block, rows: rows}
}

// Identity returns the n×n identity matrix — the knowledge state at round
// 0, where every process has heard only itself.
func Identity(n int) *Matrix {
	m := Zero(n)
	m.block.SetDiagonal()
	return m
}

// SetIdentity resets m to the identity matrix in place, reusing its rows.
// It returns the knowledge state to round 0 without allocating, which is
// what lets MatrixEngine participate in the pooled-runner lifecycle.
func (m *Matrix) SetIdentity() {
	m.block.Zero()
	m.block.SetDiagonal()
}

// FromTree returns the adjacency matrix of the round graph of t: one edge
// parent → child for every non-root vertex, plus a self-loop on every
// vertex.
func FromTree(t *tree.Tree) *Matrix {
	n := t.N()
	m := Identity(n)
	for v, p := range t.Parents() {
		if v != p {
			m.rows[p].Set(v)
		}
	}
	return m
}

// FromRows builds a matrix from explicit row contents (slices of column
// indices). Mainly for tests.
func FromRows(n int, rows [][]int) *Matrix {
	if len(rows) != n {
		panic(fmt.Sprintf("boolmat: %d rows for dimension %d", len(rows), n))
	}
	m := Zero(n)
	for i, r := range rows {
		for _, j := range r {
			m.rows[i].Set(j)
		}
	}
	return m
}

// N returns the dimension.
func (m *Matrix) N() int { return m.n }

// Test reports entry (x, y).
func (m *Matrix) Test(x, y int) bool { return m.rows[x].Test(y) }

// Set sets entry (x, y) to true.
func (m *Matrix) Set(x, y int) { m.rows[x].Set(y) }

// Row returns row x (the reach set of x). The returned set is the live row;
// callers that need to mutate must Clone.
func (m *Matrix) Row(x int) *bitset.Set { return m.rows[x] }

// Column materializes column y (the heard set of y) as a fresh bitset.
func (m *Matrix) Column(y int) *bitset.Set {
	col := bitset.New(m.n)
	for x := 0; x < m.n; x++ {
		if m.rows[x].Test(y) {
			col.Set(x)
		}
	}
	return col
}

// Clone returns an independent deep copy.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{n: m.n, block: m.block.Clone(), rows: make([]*bitset.Set, m.n)}
	for i := range c.rows {
		c.rows[i] = c.block.RowSet(i)
	}
	return c
}

// Equal reports whether m and o have identical entries.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.n != o.n {
		return false
	}
	for i, r := range m.rows {
		if !r.Equal(o.rows[i]) {
			return false
		}
	}
	return true
}

func (m *Matrix) same(o *Matrix) {
	if m.n != o.n {
		panic(fmt.Sprintf("boolmat: dimension mismatch %d != %d", m.n, o.n))
	}
}

// Product returns m ∘ o: (x,y) set iff ∃z with m(x,z) and o(z,y).
// Row-oriented: row_result(x) = ⋃ { row_o(z) : z ∈ row_m(x) }, which costs
// O(n²·n/64) words in the worst case.
func (m *Matrix) Product(o *Matrix) *Matrix {
	m.same(o)
	out := Zero(m.n)
	for x := 0; x < m.n; x++ {
		dst := out.rows[x]
		m.rows[x].ForEach(func(z int) bool {
			dst.Union(o.rows[z])
			return true
		})
	}
	return out
}

// ApplyTree right-multiplies m in place by the round graph of t (tree edges
// plus all self-loops): after the call, (x,y) holds iff it held before or
// (x, parent(y)) held before. This is one synchronous round of the model.
//
// The update is word-blocked: each band of 64 rows is bit-transposed into
// per-column words (bitset.Transpose64), every tree edge then becomes a
// single word OR cols[y] |= cols[parent(y)] advancing all 64 band rows at
// once, and the band is transposed back. Applying edges child-before-parent
// (tree.DepthOrder) guarantees each parent column read is the pre-round
// value, so a bit set during the round cannot cascade to grandchildren —
// the same one-hop-per-round invariant the scalar update kept by buffering
// additions. O(n²/64 + n²/32) word operations instead of O(n²) bit tests.
func (m *Matrix) ApplyTree(t *tree.Tree) {
	if t.N() != m.n {
		panic(fmt.Sprintf("boolmat: tree on %d vertices, matrix dimension %d", t.N(), m.n))
	}
	if m.n == 0 {
		return
	}
	parents := t.Parents()
	order := m.ord.Fill(parents)
	stride := m.block.Stride()
	words := m.block.Words()
	if len(m.cols) < stride*64 {
		m.cols = make([]uint64, stride*64)
	}
	cols := m.cols
	var tile [64]uint64
	for band := 0; band < m.n; band += 64 {
		bandRows := m.n - band
		if bandRows > 64 {
			bandRows = 64
		}
		// Gather: transpose each 64×64 tile of the band so cols[y] holds
		// column y of the band's rows (bit r = entry (band+r, y)).
		for wi := 0; wi < stride; wi++ {
			base := (band)*stride + wi
			for r := 0; r < bandRows; r++ {
				tile[r] = words[base+r*stride]
			}
			for r := bandRows; r < 64; r++ {
				tile[r] = 0
			}
			bitset.Transpose64(&tile)
			copy(cols[wi*64:(wi+1)*64], tile[:])
		}
		// Apply every edge as one word OR, children before parents.
		for _, y := range order {
			if p := parents[y]; p != y {
				cols[y] |= cols[p]
			}
		}
		// Scatter: transpose back into the rows.
		for wi := 0; wi < stride; wi++ {
			copy(tile[:], cols[wi*64:(wi+1)*64])
			bitset.Transpose64(&tile)
			base := (band)*stride + wi
			for r := 0; r < bandRows; r++ {
				words[base+r*stride] = tile[r]
			}
		}
	}
}

// IsReflexive reports whether every diagonal entry is set. All knowledge
// states G(t) are reflexive because round graphs carry self-loops.
func (m *Matrix) IsReflexive() bool {
	for i, r := range m.rows {
		if !r.Test(i) {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every entry of m is also set in o (G(t) ⊆
// G(t+1) monotonicity).
func (m *Matrix) SubsetOf(o *Matrix) bool {
	m.same(o)
	for i, r := range m.rows {
		if !r.SubsetOf(o.rows[i]) {
			return false
		}
	}
	return true
}

// EdgeCount returns the number of true entries.
func (m *Matrix) EdgeCount() int {
	c := 0
	for _, r := range m.rows {
		c += r.Count()
	}
	return c
}

// HasFullRow reports whether some row is all-true — i.e. some process has
// broadcast to everyone. This is the broadcast termination predicate.
func (m *Matrix) HasFullRow() bool {
	for _, r := range m.rows {
		if r.Full() {
			return true
		}
	}
	return false
}

// FullRows returns the indices of all-true rows (the processes that have
// completed broadcast), in increasing order.
func (m *Matrix) FullRows() []int {
	var out []int
	for i, r := range m.rows {
		if r.Full() {
			out = append(out, i)
		}
	}
	return out
}

// AllRowsFull reports whether every row is all-true — gossip completion.
func (m *Matrix) AllRowsFull() bool {
	for _, r := range m.rows {
		if !r.Full() {
			return false
		}
	}
	return true
}

// RowCounts returns |R_x| for every x: how many processes each value has
// reached.
func (m *Matrix) RowCounts() []int {
	out := make([]int, m.n)
	for i, r := range m.rows {
		out[i] = r.Count()
	}
	return out
}

// ColCounts returns |K_y| for every y: how many values each process has
// heard.
func (m *Matrix) ColCounts() []int {
	out := make([]int, m.n)
	for _, r := range m.rows {
		r.ForEach(func(y int) bool {
			out[y]++
			return true
		})
	}
	return out
}

// Stats summarizes the matrix quantities the paper's analysis tracks.
type Stats struct {
	Edges      int // number of true entries
	MinRow     int // min reach-set size
	MaxRow     int // max reach-set size
	MinCol     int // min heard-set size
	MaxCol     int // max heard-set size
	FullRows   int // processes that completed broadcast
	Complement int // n² − Edges: entries still missing
}

// Stats computes summary statistics in one pass over rows plus one over
// column counts.
func (m *Matrix) Stats() Stats {
	if m.n == 0 {
		return Stats{}
	}
	s := Stats{MinRow: m.n + 1, MinCol: m.n + 1}
	cols := m.ColCounts()
	for _, r := range m.rows {
		c := r.Count()
		s.Edges += c
		if c < s.MinRow {
			s.MinRow = c
		}
		if c > s.MaxRow {
			s.MaxRow = c
		}
		if c == m.n {
			s.FullRows++
		}
	}
	for _, c := range cols {
		if c < s.MinCol {
			s.MinCol = c
		}
		if c > s.MaxCol {
			s.MaxCol = c
		}
	}
	s.Complement = m.n*m.n - s.Edges
	return s
}

// Transpose returns the transposed matrix (reach ↔ heard perspective).
func (m *Matrix) Transpose() *Matrix {
	out := Zero(m.n)
	for x := 0; x < m.n; x++ {
		m.rows[x].ForEach(func(y int) bool {
			out.rows[y].Set(x)
			return true
		})
	}
	return out
}

// Permute returns the matrix re-labeled by perm: entry (x,y) of the result
// equals entry (perm[x], perm[y]) of m. Used by the game solver to
// canonicalize states under process renaming.
func (m *Matrix) Permute(perm []int) *Matrix {
	if len(perm) != m.n {
		panic(fmt.Sprintf("boolmat: permutation of length %d for dimension %d", len(perm), m.n))
	}
	out := Zero(m.n)
	for x := 0; x < m.n; x++ {
		src := m.rows[perm[x]]
		dst := out.rows[x]
		for y := 0; y < m.n; y++ {
			if src.Test(perm[y]) {
				dst.Set(y)
			}
		}
	}
	return out
}

// Key returns a compact string key identifying the matrix contents, for
// memoization. Equal matrices have equal keys.
func (m *Matrix) Key() string {
	var b strings.Builder
	b.Grow(m.n * ((m.n + 63) / 64) * 8)
	for _, r := range m.rows {
		for _, w := range r.Words() {
			var buf [8]byte
			for i := 0; i < 8; i++ {
				buf[i] = byte(w >> (8 * i))
			}
			b.Write(buf[:])
		}
	}
	return b.String()
}

// String renders the matrix as rows of 0/1 characters.
func (m *Matrix) String() string {
	var b strings.Builder
	for x := 0; x < m.n; x++ {
		for y := 0; y < m.n; y++ {
			if m.rows[x].Test(y) {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		if x < m.n-1 {
			b.WriteByte('\n')
		}
	}
	return b.String()
}
