package boolmat

import (
	"testing"
	"testing/quick"

	"dyntreecast/internal/rng"
	"dyntreecast/internal/tree"
)

func TestZeroIdentity(t *testing.T) {
	z := Zero(4)
	if got := z.EdgeCount(); got != 0 {
		t.Errorf("Zero edge count = %d", got)
	}
	id := Identity(4)
	if got := id.EdgeCount(); got != 4 {
		t.Errorf("Identity edge count = %d", got)
	}
	if !id.IsReflexive() {
		t.Error("Identity not reflexive")
	}
	if z.IsReflexive() {
		t.Error("Zero reported reflexive")
	}
}

func TestZeroNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Zero(-1)
}

func TestFromTree(t *testing.T) {
	// Tree 0 -> 1 -> 2 plus self-loops.
	tr := tree.IdentityPath(3)
	m := FromTree(tr)
	wantEdges := [][2]int{{0, 0}, {1, 1}, {2, 2}, {0, 1}, {1, 2}}
	for _, e := range wantEdges {
		if !m.Test(e[0], e[1]) {
			t.Errorf("edge (%d,%d) missing", e[0], e[1])
		}
	}
	if got := m.EdgeCount(); got != 5 {
		t.Errorf("EdgeCount = %d, want 5", got)
	}
	if m.Test(0, 2) {
		t.Error("transitive edge (0,2) present in single round graph")
	}
}

func TestSetTestRowColumn(t *testing.T) {
	m := Zero(3)
	m.Set(0, 2)
	m.Set(1, 2)
	if !m.Test(0, 2) || !m.Test(1, 2) {
		t.Fatal("Set/Test broken")
	}
	col := m.Column(2)
	if got := col.Slice(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("Column(2) = %v, want [0 1]", got)
	}
	if got := m.Row(0).Slice(); len(got) != 1 || got[0] != 2 {
		t.Errorf("Row(0) = %v, want [2]", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := Identity(3)
	c := m.Clone()
	c.Set(0, 1)
	if m.Test(0, 1) {
		t.Error("mutating clone affected original")
	}
}

func TestEqual(t *testing.T) {
	a, b := Identity(3), Identity(3)
	if !a.Equal(b) {
		t.Error("equal matrices reported unequal")
	}
	b.Set(0, 1)
	if a.Equal(b) {
		t.Error("unequal matrices reported equal")
	}
	if a.Equal(Identity(4)) {
		t.Error("different dimensions reported equal")
	}
}

func TestProductDefinition(t *testing.T) {
	// Product per Definition 2.1: (x,y) ∈ A∘B iff ∃z: (x,z) ∈ A, (z,y) ∈ B.
	a := FromRows(3, [][]int{{1}, {2}, {}})
	b := FromRows(3, [][]int{{}, {2}, {0}})
	p := a.Product(b)
	want := FromRows(3, [][]int{{2}, {0}, {}})
	if !p.Equal(want) {
		t.Errorf("Product =\n%v\nwant\n%v", p, want)
	}
}

func TestProductIdentity(t *testing.T) {
	src := rng.New(3)
	m := randomMatrix(src, 17)
	id := Identity(17)
	if !m.Product(id).Equal(m) {
		t.Error("M ∘ I != M")
	}
	if !id.Product(m).Equal(m) {
		t.Error("I ∘ M != M")
	}
}

func TestProductDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Identity(3).Product(Identity(4))
}

func TestApplyTreeMatchesProduct(t *testing.T) {
	// ApplyTree must equal Product with FromTree — exhaustively over all
	// trees for n = 4 on a random reflexive state.
	const n = 4
	m := Identity(n)
	// Seed with a couple of extra edges.
	m.Set(0, 2)
	m.Set(3, 1)
	tree.Enumerate(n, func(tr *tree.Tree) bool {
		want := m.Product(FromTree(tr))
		got := m.Clone()
		got.ApplyTree(tr)
		if !got.Equal(want) {
			t.Fatalf("ApplyTree(%v) =\n%v\nwant\n%v", tr, got, want)
		}
		return true
	})
}

func TestApplyTreeNoIntraRoundCascade(t *testing.T) {
	// With path 0→1→2→3 and only (x=0) knowledge {0}, one round must
	// inform only vertex 1, not cascade down the whole path.
	m := Identity(4)
	m.ApplyTree(tree.IdentityPath(4))
	if !m.Test(0, 1) {
		t.Error("child of root not informed")
	}
	if m.Test(0, 2) || m.Test(0, 3) {
		t.Error("information cascaded multiple hops in one round")
	}
}

func TestApplyTreeDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Identity(3).ApplyTree(tree.IdentityPath(4))
}

func TestMonotonicityUnderApplyTree(t *testing.T) {
	src := rng.New(11)
	m := Identity(12)
	for round := 0; round < 30; round++ {
		before := m.Clone()
		m.ApplyTree(tree.Random(12, src))
		if !before.SubsetOf(m) {
			t.Fatalf("round %d: G(t) not subset of G(t+1)", round)
		}
		if !m.IsReflexive() {
			t.Fatalf("round %d: state lost reflexivity", round)
		}
	}
}

func TestEdgeGrowthUntilFullRow(t *testing.T) {
	// §2 of the paper: while no row is full, each round adds >= 1 edge.
	src := rng.New(13)
	m := Identity(10)
	for round := 0; !m.HasFullRow(); round++ {
		if round > 100 {
			t.Fatal("no broadcast after 100 random rounds")
		}
		before := m.EdgeCount()
		m.ApplyTree(tree.Random(10, src))
		if after := m.EdgeCount(); after <= before && !m.HasFullRow() {
			// The growth lemma holds as long as broadcast hasn't
			// completed; the final round may add edges and complete.
			t.Fatalf("round %d: edges %d -> %d with no full row", round, before, after)
		}
	}
}

func TestFullRows(t *testing.T) {
	m := Identity(3)
	if m.HasFullRow() {
		t.Error("identity has a full row for n=3")
	}
	m.Set(1, 0)
	m.Set(1, 2)
	if !m.HasFullRow() {
		t.Error("full row not detected")
	}
	if got := m.FullRows(); len(got) != 1 || got[0] != 1 {
		t.Errorf("FullRows = %v, want [1]", got)
	}
	if m.AllRowsFull() {
		t.Error("AllRowsFull true with one full row")
	}
	for x := 0; x < 3; x++ {
		for y := 0; y < 3; y++ {
			m.Set(x, y)
		}
	}
	if !m.AllRowsFull() {
		t.Error("AllRowsFull false on full matrix")
	}
}

func TestHasFullRowN1(t *testing.T) {
	if !Identity(1).HasFullRow() {
		t.Error("n=1: identity should already be broadcast-complete")
	}
}

func TestRowColCounts(t *testing.T) {
	m := FromRows(3, [][]int{{0, 1, 2}, {1}, {1, 2}})
	if got := m.RowCounts(); got[0] != 3 || got[1] != 1 || got[2] != 2 {
		t.Errorf("RowCounts = %v", got)
	}
	if got := m.ColCounts(); got[0] != 1 || got[1] != 3 || got[2] != 2 {
		t.Errorf("ColCounts = %v", got)
	}
}

func TestStats(t *testing.T) {
	m := FromRows(3, [][]int{{0, 1, 2}, {1}, {1, 2}})
	s := m.Stats()
	if s.Edges != 6 {
		t.Errorf("Edges = %d, want 6", s.Edges)
	}
	if s.MinRow != 1 || s.MaxRow != 3 {
		t.Errorf("row stats = %d/%d, want 1/3", s.MinRow, s.MaxRow)
	}
	if s.MinCol != 1 || s.MaxCol != 3 {
		t.Errorf("col stats = %d/%d, want 1/3", s.MinCol, s.MaxCol)
	}
	if s.FullRows != 1 {
		t.Errorf("FullRows = %d, want 1", s.FullRows)
	}
	if s.Complement != 3 {
		t.Errorf("Complement = %d, want 3", s.Complement)
	}
	if got := Zero(0).Stats(); got != (Stats{}) {
		t.Errorf("Stats of empty matrix = %+v", got)
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows(3, [][]int{{1}, {2}, {}})
	tt := m.Transpose()
	if !tt.Test(1, 0) || !tt.Test(2, 1) {
		t.Error("Transpose misplaced entries")
	}
	if !m.Transpose().Transpose().Equal(m) {
		t.Error("double transpose != original")
	}
}

func TestPermute(t *testing.T) {
	m := FromRows(3, [][]int{{1}, {}, {}})
	// perm maps new label -> old label. With perm = [1,2,0]:
	// entry(new x, new y) = entry(perm[x], perm[y]).
	p := m.Permute([]int{1, 2, 0})
	// old edge (0,1) appears where perm[x]=0, perm[y]=1: x=2, y=0.
	if !p.Test(2, 0) {
		t.Errorf("permuted edge missing:\n%v", p)
	}
	if got := p.EdgeCount(); got != 1 {
		t.Errorf("EdgeCount after permute = %d, want 1", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad permutation length did not panic")
		}
	}()
	m.Permute([]int{0, 1})
}

func TestKeyDistinguishesMatrices(t *testing.T) {
	a := Identity(9)
	b := Identity(9)
	if a.Key() != b.Key() {
		t.Error("equal matrices have different keys")
	}
	b.Set(3, 5)
	if a.Key() == b.Key() {
		t.Error("different matrices share a key")
	}
}

func TestString(t *testing.T) {
	m := FromRows(2, [][]int{{0}, {0, 1}})
	if got, want := m.String(), "10\n11"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func randomMatrix(src *rng.Source, n int) *Matrix {
	m := Identity(n)
	for i := 0; i < n*2; i++ {
		m.Set(src.Intn(n), src.Intn(n))
	}
	return m
}

func TestPropertyProductAssociative(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 2 + src.Intn(12)
		a, b, c := randomMatrix(src, n), randomMatrix(src, n), randomMatrix(src, n)
		return a.Product(b).Product(c).Equal(a.Product(b.Product(c)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyProductMonotoneWithSelfLoops(t *testing.T) {
	// If B is reflexive then A ⊆ A∘B.
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 2 + src.Intn(12)
		a := randomMatrix(src, n)
		b := randomMatrix(src, n) // reflexive by construction
		return a.SubsetOf(a.Product(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyTransposeSwapsRowColCounts(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 2 + src.Intn(15)
		m := randomMatrix(src, n)
		rt := m.Transpose().RowCounts()
		ct := m.ColCounts()
		for i := range rt {
			if rt[i] != ct[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkProductGeneral(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(benchSize(n), func(b *testing.B) {
			src := rng.New(1)
			m := randomMatrix(src, n)
			o := FromTree(tree.Random(n, src))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = m.Product(o)
			}
		})
	}
}

func BenchmarkApplyTree(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		b.Run(benchSize(n), func(b *testing.B) {
			src := rng.New(1)
			m := randomMatrix(src, n)
			tr := tree.Random(n, src)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.ApplyTree(tr)
			}
		})
	}
}

func benchSize(n int) string {
	switch n {
	case 64:
		return "n64"
	case 256:
		return "n256"
	default:
		return "n1024"
	}
}
