package cluster

import (
	"encoding/json"
	"net/http"
	"sort"
	"time"

	"dyntreecast/internal/metrics"
)

// Cluster-fabric instruments (DESIGN.md §3f). Lease lifecycle counters
// mirror the Stats struct; the per-worker series are what make a fleet
// diagnosable from one scrape — which worker stopped pushing, which one
// speaks a stale engine — and back both the /metrics exposition and the
// GET /cluster/workers debug endpoint.
var (
	cmLeasesGranted = metrics.Default.Counter("cluster_leases_granted_total",
		"Cell leases handed to remote workers.")
	cmLeasesRejected = metrics.Default.Counter("cluster_leases_rejected_total",
		"Lease requests rejected by the engine-version handshake (HTTP 409).")
	cmRequeued = metrics.Default.CounterVec("cluster_leases_requeued_total",
		"Leases whose cell went back to the pool, by reason: expired (re-issued to another worker), steal (local pool took an expired lease), error (worker-reported failure), invalid (push failed validation).",
		"reason")
	cmPushes = metrics.Default.CounterVec("cluster_result_pushes_total",
		"Result pushes by acceptance (accepted=\"true\" completed the cell; =\"false\" was stale, duplicate, or re-queued).",
		"accepted")
	cmRemoteCells = metrics.Default.Counter("cluster_remote_cells_total",
		"Cells completed by remote workers.")
	cmSessions = metrics.Default.Gauge("cluster_sessions_active",
		"Campaigns currently open for cell leasing.")
	cmWorkerLastPush = metrics.Default.GaugeVec("cluster_worker_last_push_seconds",
		"Unix time of each worker's last result push.", "worker")
	cmWorkerInfo = metrics.Default.GaugeVec("cluster_worker_info",
		"Constant 1 per known worker, carrying its engine version as a label.",
		"worker", "engine")
)

// Worker-book bounds. The cluster protocol is unauthenticated, so worker
// identities are externally-chosen input: without bounds, a peer cycling
// names would grow coordinator memory and scrape size forever. Entries
// idle for workerExpiry lease TTLs are forgotten (their metric series
// retired with them), and past maxWorkers the stalest leaseless entry is
// evicted to make room.
const (
	maxWorkers   = 512
	workerExpiry = 10 // idle lifetime, in lease TTLs
)

// workerState is the coordinator's book on one worker identity, fed by
// every lease request and result push and served by HandleWorkers.
type workerState struct {
	engine         string
	lastSeen       time.Time
	lastPush       time.Time
	leasesGranted  int
	pushesAccepted int
	pushesRejected int
	rejected       bool // failed the engine-version handshake
}

// WorkerInfo is one row of GET /cluster/workers: everything the
// coordinator knows about a worker identity, for dead-worker diagnosis
// without log archaeology.
type WorkerInfo struct {
	Worker          string    `json:"worker"`
	Engine          string    `json:"engine"`
	LastSeen        time.Time `json:"last_seen"`
	LastPush        time.Time `json:"last_push,omitzero"`
	LeasesGranted   int       `json:"leases_granted"`
	LeasesActive    int       `json:"leases_active"`
	PushesAccepted  int       `json:"pushes_accepted"`
	PushesRejected  int       `json:"pushes_rejected"`
	VersionRejected bool      `json:"version_rejected,omitempty"`
}

// workerName normalizes a self-chosen worker identity for bookkeeping:
// an empty name still gets a row.
func workerName(worker string) string {
	if worker == "" {
		return "(anonymous)"
	}
	return worker
}

// seen updates the worker book for one contact. Must be called with
// c.mu held.
func (c *Coordinator) seen(worker, engine string) *workerState {
	worker = workerName(worker)
	ws := c.workers[worker]
	if ws == nil {
		c.sweepWorkers()
		ws = &workerState{}
		c.workers[worker] = ws
	}
	ws.lastSeen = c.now()
	if engine != "" && engine != ws.engine {
		if ws.engine != "" {
			// The worker restarted onto a different engine build: retire
			// the old info series so the scrape shows one engine per worker.
			cmWorkerInfo.Delete(worker, ws.engine)
		}
		ws.engine = engine
		cmWorkerInfo.With(worker, engine).Set(1)
	}
	return ws
}

// activeLeases counts each worker's live leases. Must be called with
// c.mu held.
func (c *Coordinator) activeLeases() map[string]int {
	active := make(map[string]int, len(c.leases))
	for _, l := range c.leases {
		active[workerName(l.worker)]++
	}
	return active
}

// sweepWorkers bounds the worker book; called with c.mu held whenever a
// new identity is about to be inserted. Entries idle past the expiry
// cutoff and holding no live lease are forgotten; if the book still sits
// at maxWorkers, the stalest leaseless entries are evicted until the new
// identity fits.
func (c *Coordinator) sweepWorkers() {
	active := c.activeLeases()
	cutoff := c.now().Add(-time.Duration(workerExpiry) * c.ttl)
	for name, ws := range c.workers {
		if active[name] == 0 && ws.lastSeen.Before(cutoff) {
			c.forget(name, ws)
		}
	}
	for len(c.workers) >= maxWorkers {
		stalest := ""
		var stalestWS *workerState
		for name, ws := range c.workers {
			if active[name] > 0 {
				continue
			}
			if stalestWS == nil || ws.lastSeen.Before(stalestWS.lastSeen) {
				stalest, stalestWS = name, ws
			}
		}
		if stalestWS == nil {
			return // every entry holds a live lease; leases bound the book
		}
		c.forget(stalest, stalestWS)
	}
}

// forget drops one worker from the book and retires its metric series.
// Must be called with c.mu held.
func (c *Coordinator) forget(name string, ws *workerState) {
	delete(c.workers, name)
	cmWorkerLastPush.Delete(name)
	if ws.engine != "" {
		cmWorkerInfo.Delete(name, ws.engine)
	}
}

// Workers returns a snapshot of every worker identity the coordinator has
// heard from, sorted by name.
func (c *Coordinator) Workers() []WorkerInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	active := c.activeLeases()
	out := make([]WorkerInfo, 0, len(c.workers))
	for name, ws := range c.workers {
		out = append(out, WorkerInfo{
			Worker:          name,
			Engine:          ws.engine,
			LastSeen:        ws.lastSeen,
			LastPush:        ws.lastPush,
			LeasesGranted:   ws.leasesGranted,
			LeasesActive:    active[name],
			PushesAccepted:  ws.pushesAccepted,
			PushesRejected:  ws.pushesRejected,
			VersionRejected: ws.rejected,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Worker < out[j].Worker })
	return out
}

// HandleWorkers serves GET /cluster/workers: the per-worker lease and
// health book as JSON. Like the rest of the cluster protocol it carries
// no authentication — it exposes worker identities and timing, nothing
// else.
func (c *Coordinator) HandleWorkers(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(c.Workers())
}
