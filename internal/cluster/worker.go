package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"dyntreecast/internal/campaign"
)

// WorkerOptions configures RunWorker.
type WorkerOptions struct {
	// ID names the worker in coordinator logs and lease bookkeeping;
	// empty selects host-pid.
	ID string
	// Poll is how long the worker sleeps after an empty lease response;
	// <= 0 selects 500ms.
	Poll time.Duration
	// Client is the HTTP client used for the coordinator; nil selects a
	// client with a 30s timeout (covering the request round-trips, not
	// cell execution, which happens between requests).
	Client *http.Client
	// ReconnectWindow is how long the worker keeps retrying a
	// coordinator that answered before and stopped (riding out a daemon
	// restart) before treating it as gone for good and stopping cleanly;
	// <= 0 selects 30s.
	ReconnectWindow time.Duration
	// Logf, when non-nil, receives one line per leased cell.
	Logf func(format string, args ...any)
}

// maxTransportFailures is how many consecutive transport errors a worker
// that never reached its coordinator tolerates before erroring out — a
// wrong URL fails fast. Once the coordinator has answered at all,
// failure handling switches to WorkerOptions.ReconnectWindow: brief
// outages (a restarting daemon) are ridden out, and a coordinator gone
// past the window (a one-shot cmd/campaign -join run finishing) is a
// clean stop, not an error.
const maxTransportFailures = 5

// RunWorker joins the coordinator at base (e.g. "http://host:8080") and
// executes leased shards until ctx is done: lease, execute on the arena
// pipeline, push the per-trial measurements keyed by the cell's content
// address and trial range, repeat. A shard whose execution fails is
// reported so the coordinator re-queues it — workers never push partial
// shards, which is one half of the byte-identity argument (the other
// half is the engine-version handshake, which makes a mismatched worker
// exit with an error here). Returns nil on cancellation.
func RunWorker(ctx context.Context, base string, opts WorkerOptions) error {
	base = strings.TrimRight(base, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	id := opts.ID
	if id == "" {
		host, _ := os.Hostname()
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	poll := opts.Poll
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	window := opts.ReconnectWindow
	if window <= 0 {
		window = 30 * time.Second
	}
	failures := 0
	contacted := false
	var downSince time.Time
	for {
		if ctx.Err() != nil {
			return nil
		}
		lease, status, err := requestLease(ctx, client, base, id)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			failures++
			switch {
			case !contacted && failures >= maxTransportFailures:
				return fmt.Errorf("cluster: worker %s: coordinator unreachable: %w", id, err)
			case contacted && downSince.IsZero():
				downSince = time.Now()
			case contacted && time.Since(downSince) >= window:
				// The coordinator answered us before and has been gone for
				// the whole reconnect window: its run is over (one-shot
				// coordinators shut down when the campaign completes).
				// That is a clean stop.
				logf("cluster: worker %s: coordinator gone for %s; stopping", id, window)
				return nil
			}
			logf("cluster: worker %s: lease request failed: %v", id, err)
			if !sleep(ctx, poll) {
				return nil
			}
			continue
		}
		failures = 0
		contacted = true
		downSince = time.Time{}
		switch status {
		case http.StatusNoContent:
			if !sleep(ctx, poll) {
				return nil
			}
			continue
		case http.StatusConflict:
			return fmt.Errorf("cluster: worker %s rejected by coordinator: %s", id, lease.reject)
		case http.StatusOK:
		default:
			return fmt.Errorf("cluster: worker %s: unexpected lease status %d", id, status)
		}

		job := lease.resp.Job
		lo, hi := job.ShardBounds()
		logf("cluster: worker %s executing %s (trials [%d:%d) of %d)", id, job.Cell, lo, hi, job.Trials)
		trials, execErr := campaign.ExecuteCellJob(ctx, job)
		if execErr != nil && ctx.Err() != nil {
			// Cancelled mid-shard: stop without pushing; the lease expires
			// and the shard is re-issued or stolen locally.
			return nil
		}
		// Echo the lease's raw bounds: the coordinator normalizes the
		// (0, 0) whole-cell encoding on its side, so a whole-cell push
		// stays byte-compatible with pre-sharding coordinators.
		push := ResultPush{LeaseID: lease.resp.LeaseID, Worker: id, Key: job.Key,
			TrialLo: job.TrialLo, TrialHi: job.TrialHi}
		if execErr != nil {
			push.Error = execErr.Error()
		} else {
			push.Trials = trials
		}
		ack, err := pushResult(ctx, client, base, push)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			logf("cluster: worker %s: pushing %s failed: %v", id, job.Cell, err)
			continue // the lease will expire and the cell be re-issued
		}
		if !ack.Accepted {
			logf("cluster: worker %s: %s not accepted: %s", id, job.Cell, ack.Reason)
		}
		if execErr != nil || !ack.Accepted {
			// A failing cell would otherwise ping-pong lease → fast error
			// → re-lease in a hot loop while the local pool is busy; one
			// poll interval per attempt bounds it.
			if !sleep(ctx, poll) {
				return nil
			}
		}
	}
}

// leaseResult carries the decoded lease response (or the rejection body).
type leaseResult struct {
	resp   LeaseResponse
	reject string
}

func requestLease(ctx context.Context, client *http.Client, base, id string) (leaseResult, int, error) {
	body, err := json.Marshal(LeaseRequest{Worker: id, Engine: campaign.EngineVersion})
	if err != nil {
		return leaseResult{}, 0, err
	}
	resp, err := post(ctx, client, base+"/cluster/lease", body)
	if err != nil {
		return leaseResult{}, 0, err
	}
	defer drain(resp)
	if resp.StatusCode >= 500 {
		// A proxy or restarting daemon answering 5xx is the same outage
		// as a refused connection: feed the caller's retry/reconnect
		// path instead of the fatal unexpected-status path.
		return leaseResult{}, resp.StatusCode, fmt.Errorf("coordinator answered status %d", resp.StatusCode)
	}
	switch resp.StatusCode {
	case http.StatusNoContent:
		return leaseResult{}, resp.StatusCode, nil
	case http.StatusOK:
		var lr LeaseResponse
		if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
			return leaseResult{}, 0, fmt.Errorf("decoding lease: %w", err)
		}
		return leaseResult{resp: lr}, resp.StatusCode, nil
	case http.StatusConflict:
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		if e.Error == "" {
			e.Error = "engine version mismatch"
		}
		return leaseResult{reject: e.Error}, resp.StatusCode, nil
	default:
		return leaseResult{}, resp.StatusCode, nil
	}
}

func pushResult(ctx context.Context, client *http.Client, base string, push ResultPush) (ResultAck, error) {
	body, err := json.Marshal(push)
	if err != nil {
		return ResultAck{}, err
	}
	resp, err := post(ctx, client, base+"/cluster/results", body)
	if err != nil {
		return ResultAck{}, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return ResultAck{}, fmt.Errorf("result push: status %d", resp.StatusCode)
	}
	var ack ResultAck
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		return ResultAck{}, fmt.Errorf("decoding ack: %w", err)
	}
	return ack, nil
}

func post(ctx context.Context, client *http.Client, url string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return client.Do(req)
}

// drain discards the rest of the body and closes it, keeping the
// connection reusable.
func drain(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// sleep waits d or until ctx is done, reporting whether the full wait
// elapsed.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
