// Package cluster implements the distributed campaign fabric (DESIGN.md
// §3e, §3g): a Coordinator that shards running campaigns' grid cells to
// remote workers over HTTP — whole cells by default, or sub-cell trial
// ranges with Options.ShardTrials — and the worker loop (RunWorker) that
// leases shards, executes them on the arena pipeline, and pushes
// per-trial measurements back keyed by each cell's content address and
// trial range.
//
// The protocol is two endpoints, mounted by internal/server (and by
// cmd/campaign -join) under /cluster:
//
//	POST /cluster/lease    {worker, engine} → 200 {lease_id, ttl_ms, job}
//	                       | 204 (no pending work) | 409 (engine version
//	                       mismatch — the handshake that keeps a stale
//	                       worker from ever computing a cell)
//	POST /cluster/results  {lease_id, worker, key, trial_lo?, trial_hi?,
//	                       trials | error} → 200 {accepted, reason?}
//
// Correctness leans entirely on the campaign determinism contract: a
// shard is a pure function of its content address and trial range (every
// trial's random stream is pre-split at compile time), so the
// coordinator is free to re-issue expired leases, let the local pool
// steal abandoned shards, and drop duplicate or stale results —
// whichever source completes a shard first supplies bytes identical to
// every other source. A dead, slow, stale-versioned, or truncating
// worker can therefore change only wall-clock time, never an artifact.
// See DESIGN.md §3e for the lease lifecycle and byte-identity argument,
// §3g for sub-cell sharding.
//
// Trust note: workers are trusted to compute honestly. The protocol
// validates lease currency, the content-address echo, the trial count,
// and measurement cell labels, but it does not recompute or
// cryptographically verify measurement values — a worker that fabricates
// plausible values for a cell it legitimately holds can corrupt that
// cell. Run workers inside your trust boundary (the endpoints carry no
// authentication), exactly as you would the machine the campaign runs
// on.
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"dyntreecast/internal/campaign"
)

// DefaultLeaseTTL is the lease lifetime when Options.LeaseTTL is unset:
// long enough for any realistic cell, short enough that a dead worker
// delays its cell by at most a minute before re-issue.
const DefaultLeaseTTL = time.Minute

// Options configures a Coordinator.
type Options struct {
	// LeaseTTL is how long a worker holds an unacknowledged shard lease
	// before the coordinator re-issues it (to another worker or the local
	// pool); <= 0 selects DefaultLeaseTTL.
	LeaseTTL time.Duration
	// ShardTrials, when > 0, splits every cell's trial range into shards
	// of at most this many trials and leases them independently, so one
	// huge cell saturates the fleet instead of one worker. 0 (the
	// default) keeps the whole cell as the lease unit. Any value
	// produces byte-identical artifacts — each trial's random stream is
	// pre-split at compile time, so the shard size is pure scheduling.
	ShardTrials int
	// Logf, when non-nil, receives one line per lease lifecycle event.
	Logf func(format string, args ...any)
}

// LeaseRequest is the body of POST /cluster/lease.
type LeaseRequest struct {
	Worker string `json:"worker"` // self-chosen worker identity, for logs
	Engine string `json:"engine"` // the worker's campaign.EngineVersion
}

// LeaseResponse is the 200 body of POST /cluster/lease: one leased cell.
type LeaseResponse struct {
	LeaseID  string           `json:"lease_id"`
	TTLMilli int64            `json:"ttl_ms"` // lease lifetime granted
	Job      campaign.CellJob `json:"job"`
}

// ResultPush is the body of POST /cluster/results: a completed shard's
// per-trial measurements (or, with Error set, a failed lease the
// coordinator should re-queue). TrialLo/TrialHi echo the leased job's
// sub-range; both zero means the whole cell, which is what pre-sharding
// workers push — against a sharded lease that normalizes to a range
// mismatch and a harmless re-queue, never a corrupt splice.
type ResultPush struct {
	LeaseID string                   `json:"lease_id"`
	Worker  string                   `json:"worker"`
	Key     string                   `json:"key"` // echo of the cell's content address
	TrialLo int                      `json:"trial_lo,omitempty"`
	TrialHi int                      `json:"trial_hi,omitempty"`
	Trials  [][]campaign.Measurement `json:"trials,omitempty"`
	Error   string                   `json:"error,omitempty"`
}

// ResultAck is the 200 body of POST /cluster/results. Accepted is false
// for stale, duplicate, or re-queued pushes — all harmless: the cell's
// bytes are the same wherever it runs, so the coordinator just reports
// which source won.
type ResultAck struct {
	Accepted bool   `json:"accepted"`
	Reason   string `json:"reason,omitempty"`
}

// Stats counts coordinator lifecycle events since construction. The unit
// of the lease lifecycle is the shard; with Options.ShardTrials unset
// every cell is one shard, so the counts match pre-sharding semantics.
type Stats struct {
	LeasesGranted  int // shards handed to remote workers
	LeasesRejected int // version-handshake rejections
	RemoteCells    int // shards completed by remote workers
	Requeued       int // leases expired, failed, or invalid → shard re-pooled
}

// Coordinator shards the cells of running campaigns to HTTP workers. It
// implements campaign.Remote: install it as campaign.Config.Remote (or
// through server.Options.Cluster / dyntreecast.CampaignWithCluster) and
// every campaign run with that config becomes lease-able by workers. Safe
// for concurrent use; one Coordinator serves any number of concurrent
// campaigns.
type Coordinator struct {
	ttl   time.Duration
	shard int // Options.ShardTrials; 0 = whole-cell leases
	logf  func(string, ...any)
	now   func() time.Time // test hook; time.Now outside tests

	mu        sync.Mutex
	sessions  []*session        // open campaigns, in Open order
	leases    map[string]*lease // active lease id → lease
	workers   map[string]*workerState
	nextSess  int
	nextLease int
	stats     Stats
}

// lease is one outstanding shard grant. A lease id is present in
// Coordinator.leases exactly while it is the shard's current, unexpired,
// un-superseded grant — re-issue and local steal both delete it. A push
// under a deleted lease is not lost, though: while the shard is still
// incomplete, HandleResults accepts the result by (content address,
// trial range) — determinism makes a late result exactly as good as a
// fresh one — so workers that outlive their leases still contribute.
type lease struct {
	sess   *session
	key    string
	shard  int // index into the cell's shards
	worker string
}

// session is the coordinator side of one campaign's RemoteSession.
type session struct {
	c       *Coordinator
	id      int
	deliver func(key string, lo, hi int, trials [][]campaign.Measurement)
	order   []string // claim order (campaign compile order)
	cells   map[string]*cellState
	pending int // shards not yet complete
	closed  bool
	notify  chan struct{} // closed and replaced on every state change
}

// cellState tracks one cell's shards through the lease lifecycle. Shard
// boundaries are fixed at Open from Options.ShardTrials, so every lease,
// push, and local claim for a shard names the same [lo, hi) — which is
// what makes the (key, lo, hi) match of late pushes unambiguous.
type cellState struct {
	job    campaign.CellJob
	shards []shardState
}

// shardState tracks one trial sub-range of a cell.
type shardState struct {
	lo, hi   int
	done     bool
	local    bool // claimed by the campaign's local pool
	leaseID  string
	leaseExp time.Time
}

// shardJob is the leased view of one shard: the cell's job with the
// shard's bounds, keeping the (0, 0) whole-cell encoding when the cell
// is its own single shard (byte-compatible with pre-sharding workers).
func (cs *cellState) shardJob(i int) campaign.CellJob {
	job := cs.job
	if sh := cs.shards[i]; sh.lo != 0 || sh.hi != job.Trials {
		job.TrialLo, job.TrialHi = sh.lo, sh.hi
	}
	return job
}

// shardName renders a shard for logs: the bare cell when the shard is
// the whole cell, otherwise the cell with its trial range.
func (cs *cellState) shardName(sh *shardState) string {
	if sh.lo == 0 && sh.hi == cs.job.Trials {
		return cs.job.Cell
	}
	return fmt.Sprintf("%s[%d:%d)", cs.job.Cell, sh.lo, sh.hi)
}

// shardSpans cuts a trial count into the coordinator's shard boundaries.
func (c *Coordinator) shardSpans(trials int) []shardState {
	if c.shard <= 0 || c.shard >= trials {
		return []shardState{{lo: 0, hi: trials}}
	}
	out := make([]shardState, 0, (trials+c.shard-1)/c.shard)
	for lo := 0; lo < trials; lo += c.shard {
		hi := lo + c.shard
		if hi > trials {
			hi = trials
		}
		out = append(out, shardState{lo: lo, hi: hi})
	}
	return out
}

// New returns a Coordinator ready to accept campaigns and workers.
func New(opts Options) *Coordinator {
	ttl := opts.LeaseTTL
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Coordinator{ttl: ttl, shard: opts.ShardTrials, logf: logf, now: time.Now,
		leases: make(map[string]*lease), workers: make(map[string]*workerState)}
}

// Stats returns a snapshot of the coordinator's lifecycle counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Handler returns an http.Handler serving the cluster protocol, for
// mounting the coordinator outside internal/server (cmd/campaign -join,
// tests).
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/lease", c.HandleLease)
	mux.HandleFunc("POST /cluster/results", c.HandleResults)
	mux.HandleFunc("GET /cluster/workers", c.HandleWorkers)
	return mux
}

// Open implements campaign.Remote: it registers a campaign's pending
// cells for leasing and returns the session its local pool coordinates
// through.
func (c *Coordinator) Open(jobs []campaign.CellJob, deliver func(key string, lo, hi int, trials [][]campaign.Measurement)) campaign.RemoteSession {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextSess++
	s := &session{
		c:       c,
		id:      c.nextSess,
		deliver: deliver,
		cells:   make(map[string]*cellState, len(jobs)),
		notify:  make(chan struct{}),
	}
	shards := 0
	for _, j := range jobs {
		if _, dup := s.cells[j.Key]; dup {
			// Defensive: a scheduler must see each content address once
			// (campaign's runRemote groups duplicate grid cells before
			// opening a session); counting a key twice would leave
			// pending above zero forever.
			continue
		}
		cs := &cellState{job: j, shards: c.shardSpans(j.Trials)}
		s.order = append(s.order, j.Key)
		s.cells[j.Key] = cs
		shards += len(cs.shards)
	}
	s.pending = shards
	c.sessions = append(c.sessions, s)
	cmSessions.Inc()
	c.logf("cluster: session %d opened: %d cells, %d leasable shards", s.id, len(s.order), shards)
	return s
}

// wake must be called with c.mu held.
func (s *session) wake() {
	close(s.notify)
	s.notify = make(chan struct{})
}

// dropLease must be called with c.mu held: it invalidates the shard's
// current lease, if any, so a later push from its holder misses.
func (c *Coordinator) dropLease(sh *shardState) {
	if sh.leaseID != "" {
		delete(c.leases, sh.leaseID)
		sh.leaseID = ""
	}
}

// ClaimLocal implements campaign.RemoteSession. Local workers get shards
// that are unleased — or whose lease has expired (the local steal that
// makes a dead worker cost only wall-clock) — in campaign compile order,
// and block while every pending shard is under an active lease.
func (s *session) ClaimLocal(ctx context.Context) (campaign.CellJob, bool) {
	c := s.c
	for {
		c.mu.Lock()
		if s.closed || s.pending == 0 {
			c.mu.Unlock()
			return campaign.CellJob{}, false
		}
		now := c.now()
		var nearest time.Time
		for _, key := range s.order {
			cs := s.cells[key]
			for i := range cs.shards {
				sh := &cs.shards[i]
				if sh.done || sh.local {
					continue
				}
				if sh.leaseID != "" && now.Before(sh.leaseExp) {
					if nearest.IsZero() || sh.leaseExp.Before(nearest) {
						nearest = sh.leaseExp
					}
					continue
				}
				if sh.leaseID != "" {
					c.stats.Requeued++
					cmRequeued.With("steal").Inc()
					c.logf("cluster: session %d: lease on %s expired; local steal", s.id, cs.shardName(sh))
					c.dropLease(sh)
				}
				sh.local = true
				job := cs.shardJob(i)
				c.mu.Unlock()
				return job, true
			}
		}
		notify := s.notify
		c.mu.Unlock()

		// Nothing claimable: wait for a state change, the nearest lease
		// expiry, or cancellation.
		var expiry <-chan time.Time
		var timer *time.Timer
		if !nearest.IsZero() {
			timer = time.NewTimer(nearest.Sub(now))
			expiry = timer.C
		}
		select {
		case <-ctx.Done():
			if timer != nil {
				timer.Stop()
			}
			return campaign.CellJob{}, false
		case <-notify:
		case <-expiry:
		}
		if timer != nil {
			timer.Stop()
		}
	}
}

// CompleteLocal implements campaign.RemoteSession: it resolves the shard
// by its exact (key, lo, hi) boundaries, which the claimed job's
// ShardBounds carry.
func (s *session) CompleteLocal(key string, lo, hi int) bool {
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	cs, ok := s.cells[key]
	if !ok {
		return false
	}
	sh := cs.shardByRange(lo, hi)
	if sh == nil || sh.done {
		return false
	}
	sh.done = true
	c.dropLease(sh)
	s.pending--
	s.wake()
	return true
}

// shardByRange finds the cell's shard with exactly the bounds [lo, hi),
// or nil — boundaries are fixed at Open, so exact match is the contract.
func (cs *cellState) shardByRange(lo, hi int) *shardState {
	for i := range cs.shards {
		if sh := &cs.shards[i]; sh.lo == lo && sh.hi == hi {
			return sh
		}
	}
	return nil
}

// Close implements campaign.RemoteSession: the campaign is done (or
// cancelled); withdraw its cells and invalidate its leases so late
// remote pushes are dropped.
func (s *session) Close() {
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for _, cs := range s.cells {
		for i := range cs.shards {
			c.dropLease(&cs.shards[i])
		}
	}
	for i, open := range c.sessions {
		if open == s {
			c.sessions = append(c.sessions[:i], c.sessions[i+1:]...)
			cmSessions.Dec()
			break
		}
	}
	s.wake()
	c.logf("cluster: session %d closed (%d shards still pending)", s.id, s.pending)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// HandleLease serves POST /cluster/lease: the engine-version handshake,
// then the oldest claimable shard across open sessions.
func (c *Coordinator) HandleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("decoding lease request: %v", err)})
		return
	}
	if req.Engine != campaign.EngineVersion {
		c.mu.Lock()
		c.stats.LeasesRejected++
		c.seen(req.Worker, req.Engine).rejected = true
		c.mu.Unlock()
		cmLeasesRejected.Inc()
		c.logf("cluster: rejected worker %q: engine %q, coordinator speaks %q", req.Worker, req.Engine, campaign.EngineVersion)
		writeJSON(w, http.StatusConflict, map[string]string{
			"error": fmt.Sprintf("engine version mismatch: worker %q speaks %q, coordinator %q — results would not be byte-identical",
				req.Worker, req.Engine, campaign.EngineVersion),
		})
		return
	}

	c.mu.Lock()
	ws := c.seen(req.Worker, req.Engine)
	now := c.now()
	for _, s := range c.sessions {
		for _, key := range s.order {
			cs := s.cells[key]
			for i := range cs.shards {
				sh := &cs.shards[i]
				if sh.done || sh.local {
					continue
				}
				if sh.leaseID != "" && now.Before(sh.leaseExp) {
					continue
				}
				if sh.leaseID != "" {
					c.stats.Requeued++
					cmRequeued.With("expired").Inc()
					c.dropLease(sh)
				}
				c.nextLease++
				id := fmt.Sprintf("lease-%d", c.nextLease)
				sh.leaseID, sh.leaseExp = id, now.Add(c.ttl)
				c.leases[id] = &lease{sess: s, key: key, shard: i, worker: req.Worker}
				c.stats.LeasesGranted++
				ws.leasesGranted++
				job := cs.shardJob(i)
				name := cs.shardName(sh)
				c.mu.Unlock()
				cmLeasesGranted.Inc()
				c.logf("cluster: leased %s to worker %q (%s, ttl %s)", name, req.Worker, id, c.ttl)
				writeJSON(w, http.StatusOK, LeaseResponse{LeaseID: id, TTLMilli: c.ttl.Milliseconds(), Job: job})
				return
			}
		}
	}
	c.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// HandleResults serves POST /cluster/results. A push under the shard's
// current lease must echo the leased content address and trial range; a
// push whose lease expired or was superseded is still accepted — matched
// by (content address, trial range) — as long as the shard is
// incomplete, because a late result of a pure function equals a fresh
// one (pushes for completed shards are acknowledged and dropped, equally
// losslessly). Either way the payload must carry exactly the shard's
// trial count with uniformly labeled measurements; a worker-reported
// error or an invalid payload re-queues the shard for the local pool or
// another worker.
func (c *Coordinator) HandleResults(w http.ResponseWriter, r *http.Request) {
	var push ResultPush
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&push); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("decoding result push: %v", err)})
		return
	}
	// The per-measurement label scan runs before taking the coordinator
	// lock (payloads reach 64MB; the lock serializes every lease grant
	// and local claim): verify the labels are uniform here, compare the
	// single label against the leased cell under the lock.
	label, uniform := measurementLabel(push.Trials)
	c.mu.Lock()
	ws := c.seen(push.Worker, "")
	var s *session
	var cs *cellState
	var sh *shardState
	if l, ok := c.leases[push.LeaseID]; ok {
		delete(c.leases, push.LeaseID)
		s, cs = l.sess, l.sess.cells[l.key]
		sh = &cs.shards[l.shard]
		sh.leaseID = ""
		if push.Key != l.key {
			c.stats.Requeued++
			ws.pushesRejected++
			s.wake()
			c.mu.Unlock()
			cmRequeued.With("invalid").Inc()
			cmPushes.With("false").Inc()
			c.logf("cluster: re-queued %s from worker %q: content address mismatch (pushed %.12s)", cs.shardName(sh), push.Worker, push.Key)
			writeJSON(w, http.StatusOK, ResultAck{Accepted: false, Reason: "content address mismatch"})
			return
		}
	} else {
		// The lease expired or was superseded — but a shard is a pure
		// function of its content address and trial range, so a late
		// result for a shard nobody has finished yet is exactly as good
		// as a fresh one. Accepting it means a worker that outlives its
		// lease (no renewal protocol) still contributes, and the
		// concurrently stealing local pool just discards its own
		// duplicate at CompleteLocal.
		var csSess *session
		csSess, cs = c.cellByKey(push.Key)
		if cs != nil {
			pLo, pHi := pushBounds(push, cs.job.Trials)
			sh = cs.shardByRange(pLo, pHi)
		}
		if sh == nil || sh.done {
			ws.pushesRejected++
			c.mu.Unlock()
			cmPushes.With("false").Inc()
			writeJSON(w, http.StatusOK, ResultAck{Accepted: false, Reason: "unknown lease and no pending shard with that address"})
			return
		}
		s = csSess
	}
	name := cs.shardName(sh)
	requeue := func(metricReason, reason string) {
		c.stats.Requeued++
		ws.pushesRejected++
		s.wake()
		c.mu.Unlock()
		cmRequeued.With(metricReason).Inc()
		cmPushes.With("false").Inc()
		c.logf("cluster: re-queued %s from worker %q: %s", name, push.Worker, reason)
		writeJSON(w, http.StatusOK, ResultAck{Accepted: false, Reason: reason})
	}
	pLo, pHi := pushBounds(push, cs.job.Trials)
	switch {
	case push.Error != "":
		requeue("error", fmt.Sprintf("worker error: %s", push.Error))
		return
	case pLo != sh.lo || pHi != sh.hi:
		// A pre-sharding worker answering a sharded lease pushes the
		// whole cell (no bounds echo); normalization turns that into a
		// range mismatch here — a harmless re-queue, never a splice of
		// the wrong trials.
		requeue("invalid", fmt.Sprintf("trial range mismatch: pushed [%d,%d), leased [%d,%d)", pLo, pHi, sh.lo, sh.hi))
		return
	case len(push.Trials) != sh.hi-sh.lo:
		requeue("invalid", fmt.Sprintf("trial count mismatch: pushed %d, want %d", len(push.Trials), sh.hi-sh.lo))
		return
	case !uniform || (label != "" && label != cs.job.Cell):
		requeue("invalid", fmt.Sprintf("measurement cell mismatch: trials not labeled %q", cs.job.Cell))
		return
	}
	sh.done = true
	c.dropLease(sh) // a late push may complete a shard re-leased to someone else
	c.stats.RemoteCells++
	ws.pushesAccepted++
	ws.lastPush = c.now()
	deliver := s.deliver
	lo, hi := sh.lo, sh.hi
	c.mu.Unlock()
	cmPushes.With("true").Inc()
	cmRemoteCells.Inc()
	cmWorkerLastPush.With(workerName(push.Worker)).Set(float64(c.now().UnixMilli()) / 1000)

	// Deliver outside the coordinator lock: the campaign splices under
	// its own mutex and never calls back into the coordinator. At-most-
	// once is guaranteed by the done flip above; pending is decremented
	// only after delivery, so the campaign cannot observe "all shards
	// complete" while this shard's results are still in flight.
	deliver(push.Key, lo, hi, push.Trials)
	c.mu.Lock()
	s.pending--
	s.wake()
	c.mu.Unlock()
	c.logf("cluster: %s completed by worker %q", name, push.Worker)
	writeJSON(w, http.StatusOK, ResultAck{Accepted: true})
}

// pushBounds normalizes a push's echoed trial range: both zero is the
// whole-cell encoding (what pre-sharding workers send).
func pushBounds(push ResultPush, trials int) (lo, hi int) {
	if push.TrialLo == 0 && push.TrialHi == 0 {
		return 0, trials
	}
	return push.TrialLo, push.TrialHi
}

// cellByKey finds a still-open session's cell by content address. Must
// be called with c.mu held.
func (c *Coordinator) cellByKey(key string) (*session, *cellState) {
	for _, s := range c.sessions {
		if cs, ok := s.cells[key]; ok {
			return s, cs
		}
	}
	return nil, nil
}

// measurementLabel scans a pushed payload and returns its single cell
// label (or "" when the payload carries no measurements) and whether
// every measurement agrees on it — a sanity check against sloppy or
// foreign payloads, not a proof of honest computation (see the trust
// note in the package comment). Runs lock-free; the caller compares the
// label against the leased cell under the coordinator lock.
func measurementLabel(trials [][]campaign.Measurement) (label string, uniform bool) {
	for _, ms := range trials {
		for _, m := range ms {
			if label == "" {
				label = m.Cell
			} else if m.Cell != label {
				return "", false
			}
		}
	}
	return label, true
}
