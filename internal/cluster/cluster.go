// Package cluster implements the distributed campaign fabric (DESIGN.md
// §3e): a Coordinator that shards running campaigns' grid cells to remote
// workers over HTTP, and the worker loop (RunWorker) that leases cells,
// executes them on the arena pipeline, and pushes per-trial measurements
// back keyed by each cell's content address.
//
// The protocol is two endpoints, mounted by internal/server (and by
// cmd/campaign -join) under /cluster:
//
//	POST /cluster/lease    {worker, engine} → 200 {lease_id, ttl_ms, job}
//	                       | 204 (no pending work) | 409 (engine version
//	                       mismatch — the handshake that keeps a stale
//	                       worker from ever computing a cell)
//	POST /cluster/results  {lease_id, worker, key, trials | error}
//	                       → 200 {accepted, reason?}
//
// Correctness leans entirely on the campaign determinism contract: a cell
// is a pure function of its content address, so the coordinator is free
// to re-issue expired leases, let the local pool steal abandoned cells,
// and drop duplicate or stale results — whichever source completes a cell
// first supplies bytes identical to every other source. A dead, slow,
// stale-versioned, or truncating worker can therefore change only
// wall-clock time, never an artifact. See DESIGN.md §3e for the lease
// lifecycle and the byte-identity argument.
//
// Trust note: workers are trusted to compute honestly. The protocol
// validates lease currency, the content-address echo, the trial count,
// and measurement cell labels, but it does not recompute or
// cryptographically verify measurement values — a worker that fabricates
// plausible values for a cell it legitimately holds can corrupt that
// cell. Run workers inside your trust boundary (the endpoints carry no
// authentication), exactly as you would the machine the campaign runs
// on.
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"dyntreecast/internal/campaign"
)

// DefaultLeaseTTL is the lease lifetime when Options.LeaseTTL is unset:
// long enough for any realistic cell, short enough that a dead worker
// delays its cell by at most a minute before re-issue.
const DefaultLeaseTTL = time.Minute

// Options configures a Coordinator.
type Options struct {
	// LeaseTTL is how long a worker holds an unacknowledged cell lease
	// before the coordinator re-issues it (to another worker or the local
	// pool); <= 0 selects DefaultLeaseTTL.
	LeaseTTL time.Duration
	// Logf, when non-nil, receives one line per lease lifecycle event.
	Logf func(format string, args ...any)
}

// LeaseRequest is the body of POST /cluster/lease.
type LeaseRequest struct {
	Worker string `json:"worker"` // self-chosen worker identity, for logs
	Engine string `json:"engine"` // the worker's campaign.EngineVersion
}

// LeaseResponse is the 200 body of POST /cluster/lease: one leased cell.
type LeaseResponse struct {
	LeaseID  string           `json:"lease_id"`
	TTLMilli int64            `json:"ttl_ms"` // lease lifetime granted
	Job      campaign.CellJob `json:"job"`
}

// ResultPush is the body of POST /cluster/results: a completed cell's
// per-trial measurements (or, with Error set, a failed lease the
// coordinator should re-queue).
type ResultPush struct {
	LeaseID string                   `json:"lease_id"`
	Worker  string                   `json:"worker"`
	Key     string                   `json:"key"` // echo of the cell's content address
	Trials  [][]campaign.Measurement `json:"trials,omitempty"`
	Error   string                   `json:"error,omitempty"`
}

// ResultAck is the 200 body of POST /cluster/results. Accepted is false
// for stale, duplicate, or re-queued pushes — all harmless: the cell's
// bytes are the same wherever it runs, so the coordinator just reports
// which source won.
type ResultAck struct {
	Accepted bool   `json:"accepted"`
	Reason   string `json:"reason,omitempty"`
}

// Stats counts coordinator lifecycle events since construction.
type Stats struct {
	LeasesGranted  int // cells handed to remote workers
	LeasesRejected int // version-handshake rejections
	RemoteCells    int // cells completed by remote workers
	Requeued       int // leases expired, failed, or invalid → cell re-pooled
}

// Coordinator shards the cells of running campaigns to HTTP workers. It
// implements campaign.Remote: install it as campaign.Config.Remote (or
// through server.Options.Cluster / dyntreecast.CampaignWithCluster) and
// every campaign run with that config becomes lease-able by workers. Safe
// for concurrent use; one Coordinator serves any number of concurrent
// campaigns.
type Coordinator struct {
	ttl  time.Duration
	logf func(string, ...any)
	now  func() time.Time // test hook; time.Now outside tests

	mu        sync.Mutex
	sessions  []*session        // open campaigns, in Open order
	leases    map[string]*lease // active lease id → lease
	workers   map[string]*workerState
	nextSess  int
	nextLease int
	stats     Stats
}

// lease is one outstanding cell grant. A lease id is present in
// Coordinator.leases exactly while it is the cell's current, unexpired,
// un-superseded grant — re-issue and local steal both delete it. A push
// under a deleted lease is not lost, though: while the cell is still
// incomplete, HandleResults accepts the result by content address
// (determinism makes a late result exactly as good as a fresh one), so
// workers that outlive their leases still contribute.
type lease struct {
	sess   *session
	key    string
	worker string
}

// session is the coordinator side of one campaign's RemoteSession.
type session struct {
	c       *Coordinator
	id      int
	deliver func(key string, trials [][]campaign.Measurement)
	order   []string // claim order (campaign compile order)
	cells   map[string]*cellState
	pending int
	closed  bool
	notify  chan struct{} // closed and replaced on every state change
}

// cellState tracks one cell through the lease lifecycle.
type cellState struct {
	job      campaign.CellJob
	done     bool
	local    bool // claimed by the campaign's local pool
	leaseID  string
	leaseExp time.Time
}

// New returns a Coordinator ready to accept campaigns and workers.
func New(opts Options) *Coordinator {
	ttl := opts.LeaseTTL
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Coordinator{ttl: ttl, logf: logf, now: time.Now,
		leases: make(map[string]*lease), workers: make(map[string]*workerState)}
}

// Stats returns a snapshot of the coordinator's lifecycle counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Handler returns an http.Handler serving the cluster protocol, for
// mounting the coordinator outside internal/server (cmd/campaign -join,
// tests).
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/lease", c.HandleLease)
	mux.HandleFunc("POST /cluster/results", c.HandleResults)
	mux.HandleFunc("GET /cluster/workers", c.HandleWorkers)
	return mux
}

// Open implements campaign.Remote: it registers a campaign's pending
// cells for leasing and returns the session its local pool coordinates
// through.
func (c *Coordinator) Open(jobs []campaign.CellJob, deliver func(key string, trials [][]campaign.Measurement)) campaign.RemoteSession {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextSess++
	s := &session{
		c:       c,
		id:      c.nextSess,
		deliver: deliver,
		cells:   make(map[string]*cellState, len(jobs)),
		pending: len(jobs),
		notify:  make(chan struct{}),
	}
	for _, j := range jobs {
		if _, dup := s.cells[j.Key]; dup {
			// Defensive: a scheduler must see each content address once
			// (campaign's runRemote groups duplicate grid cells before
			// opening a session); counting a key twice would leave
			// pending above zero forever.
			s.pending--
			continue
		}
		s.order = append(s.order, j.Key)
		s.cells[j.Key] = &cellState{job: j}
	}
	c.sessions = append(c.sessions, s)
	cmSessions.Inc()
	c.logf("cluster: session %d opened: %d cells", s.id, len(jobs))
	return s
}

// wake must be called with c.mu held.
func (s *session) wake() {
	close(s.notify)
	s.notify = make(chan struct{})
}

// dropLease must be called with c.mu held: it invalidates the cell's
// current lease, if any, so a later push from its holder misses.
func (c *Coordinator) dropLease(cs *cellState) {
	if cs.leaseID != "" {
		delete(c.leases, cs.leaseID)
		cs.leaseID = ""
	}
}

// ClaimLocal implements campaign.RemoteSession. Local workers get cells
// that are unleased — or whose lease has expired (the local steal that
// makes a dead worker cost only wall-clock) — in campaign compile order,
// and block while every pending cell is under an active lease.
func (s *session) ClaimLocal(ctx context.Context) (campaign.CellJob, bool) {
	c := s.c
	for {
		c.mu.Lock()
		if s.closed || s.pending == 0 {
			c.mu.Unlock()
			return campaign.CellJob{}, false
		}
		now := c.now()
		var nearest time.Time
		for _, key := range s.order {
			cs := s.cells[key]
			if cs.done || cs.local {
				continue
			}
			if cs.leaseID != "" && now.Before(cs.leaseExp) {
				if nearest.IsZero() || cs.leaseExp.Before(nearest) {
					nearest = cs.leaseExp
				}
				continue
			}
			if cs.leaseID != "" {
				c.stats.Requeued++
				cmRequeued.With("steal").Inc()
				c.logf("cluster: session %d: lease on %s expired; local steal", s.id, cs.job.Cell)
				c.dropLease(cs)
			}
			cs.local = true
			job := cs.job
			c.mu.Unlock()
			return job, true
		}
		notify := s.notify
		c.mu.Unlock()

		// Nothing claimable: wait for a state change, the nearest lease
		// expiry, or cancellation.
		var expiry <-chan time.Time
		var timer *time.Timer
		if !nearest.IsZero() {
			timer = time.NewTimer(nearest.Sub(now))
			expiry = timer.C
		}
		select {
		case <-ctx.Done():
			if timer != nil {
				timer.Stop()
			}
			return campaign.CellJob{}, false
		case <-notify:
		case <-expiry:
		}
		if timer != nil {
			timer.Stop()
		}
	}
}

// CompleteLocal implements campaign.RemoteSession.
func (s *session) CompleteLocal(key string) bool {
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	cs, ok := s.cells[key]
	if !ok || cs.done {
		return false
	}
	cs.done = true
	c.dropLease(cs)
	s.pending--
	s.wake()
	return true
}

// Close implements campaign.RemoteSession: the campaign is done (or
// cancelled); withdraw its cells and invalidate its leases so late
// remote pushes are dropped.
func (s *session) Close() {
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for _, cs := range s.cells {
		c.dropLease(cs)
	}
	for i, open := range c.sessions {
		if open == s {
			c.sessions = append(c.sessions[:i], c.sessions[i+1:]...)
			cmSessions.Dec()
			break
		}
	}
	s.wake()
	c.logf("cluster: session %d closed (%d cells still pending)", s.id, s.pending)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// HandleLease serves POST /cluster/lease: the engine-version handshake,
// then the oldest claimable cell across open sessions.
func (c *Coordinator) HandleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("decoding lease request: %v", err)})
		return
	}
	if req.Engine != campaign.EngineVersion {
		c.mu.Lock()
		c.stats.LeasesRejected++
		c.seen(req.Worker, req.Engine).rejected = true
		c.mu.Unlock()
		cmLeasesRejected.Inc()
		c.logf("cluster: rejected worker %q: engine %q, coordinator speaks %q", req.Worker, req.Engine, campaign.EngineVersion)
		writeJSON(w, http.StatusConflict, map[string]string{
			"error": fmt.Sprintf("engine version mismatch: worker %q speaks %q, coordinator %q — results would not be byte-identical",
				req.Worker, req.Engine, campaign.EngineVersion),
		})
		return
	}

	c.mu.Lock()
	ws := c.seen(req.Worker, req.Engine)
	now := c.now()
	for _, s := range c.sessions {
		for _, key := range s.order {
			cs := s.cells[key]
			if cs.done || cs.local {
				continue
			}
			if cs.leaseID != "" && now.Before(cs.leaseExp) {
				continue
			}
			if cs.leaseID != "" {
				c.stats.Requeued++
				cmRequeued.With("expired").Inc()
				c.dropLease(cs)
			}
			c.nextLease++
			id := fmt.Sprintf("lease-%d", c.nextLease)
			cs.leaseID, cs.leaseExp = id, now.Add(c.ttl)
			c.leases[id] = &lease{sess: s, key: key, worker: req.Worker}
			c.stats.LeasesGranted++
			ws.leasesGranted++
			job := cs.job
			c.mu.Unlock()
			cmLeasesGranted.Inc()
			c.logf("cluster: leased %s to worker %q (%s, ttl %s)", job.Cell, req.Worker, id, c.ttl)
			writeJSON(w, http.StatusOK, LeaseResponse{LeaseID: id, TTLMilli: c.ttl.Milliseconds(), Job: job})
			return
		}
	}
	c.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// HandleResults serves POST /cluster/results. A push under the cell's
// current lease must echo the leased content address; a push whose lease
// expired or was superseded is still accepted — matched by content
// address — as long as the cell is incomplete, because a late result of
// a pure function equals a fresh one (pushes for completed cells are
// acknowledged and dropped, equally losslessly). Either way the payload
// must carry exactly the cell's trial count with uniformly labeled
// measurements; a worker-reported error or an invalid payload re-queues
// the cell for the local pool or another worker.
func (c *Coordinator) HandleResults(w http.ResponseWriter, r *http.Request) {
	var push ResultPush
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&push); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("decoding result push: %v", err)})
		return
	}
	// The per-measurement label scan runs before taking the coordinator
	// lock (payloads reach 64MB; the lock serializes every lease grant
	// and local claim): verify the labels are uniform here, compare the
	// single label against the leased cell under the lock.
	label, uniform := measurementLabel(push.Trials)
	c.mu.Lock()
	ws := c.seen(push.Worker, "")
	var s *session
	var cs *cellState
	if l, ok := c.leases[push.LeaseID]; ok {
		delete(c.leases, push.LeaseID)
		s, cs = l.sess, l.sess.cells[l.key]
		cs.leaseID = ""
		if push.Key != l.key {
			c.stats.Requeued++
			ws.pushesRejected++
			s.wake()
			c.mu.Unlock()
			cmRequeued.With("invalid").Inc()
			cmPushes.With("false").Inc()
			c.logf("cluster: re-queued %s from worker %q: content address mismatch (pushed %.12s)", cs.job.Cell, push.Worker, push.Key)
			writeJSON(w, http.StatusOK, ResultAck{Accepted: false, Reason: "content address mismatch"})
			return
		}
	} else {
		// The lease expired or was superseded — but a cell is a pure
		// function of its content address, so a late result for a cell
		// nobody has finished yet is exactly as good as a fresh one.
		// Accepting it means a worker that outlives its lease (no renewal
		// protocol) still contributes, and the concurrently stealing
		// local pool just discards its own duplicate at CompleteLocal.
		s, cs = c.cellByKey(push.Key)
		if cs == nil || cs.done {
			ws.pushesRejected++
			c.mu.Unlock()
			cmPushes.With("false").Inc()
			writeJSON(w, http.StatusOK, ResultAck{Accepted: false, Reason: "unknown lease and no pending cell with that address"})
			return
		}
	}
	requeue := func(metricReason, reason string) {
		c.stats.Requeued++
		ws.pushesRejected++
		s.wake()
		c.mu.Unlock()
		cmRequeued.With(metricReason).Inc()
		cmPushes.With("false").Inc()
		c.logf("cluster: re-queued %s from worker %q: %s", cs.job.Cell, push.Worker, reason)
		writeJSON(w, http.StatusOK, ResultAck{Accepted: false, Reason: reason})
	}
	switch {
	case push.Error != "":
		requeue("error", fmt.Sprintf("worker error: %s", push.Error))
		return
	case len(push.Trials) != cs.job.Trials:
		requeue("invalid", fmt.Sprintf("trial count mismatch: pushed %d, want %d", len(push.Trials), cs.job.Trials))
		return
	case !uniform || (label != "" && label != cs.job.Cell):
		requeue("invalid", fmt.Sprintf("measurement cell mismatch: trials not labeled %q", cs.job.Cell))
		return
	}
	cs.done = true
	c.dropLease(cs) // a late push may complete a cell re-leased to someone else
	c.stats.RemoteCells++
	ws.pushesAccepted++
	ws.lastPush = c.now()
	deliver := s.deliver
	c.mu.Unlock()
	cmPushes.With("true").Inc()
	cmRemoteCells.Inc()
	cmWorkerLastPush.With(workerName(push.Worker)).Set(float64(c.now().UnixMilli()) / 1000)

	// Deliver outside the coordinator lock: the campaign splices under
	// its own mutex and never calls back into the coordinator. At-most-
	// once is guaranteed by the done flip above; pending is decremented
	// only after delivery, so the campaign cannot observe "all cells
	// complete" while this cell's results are still in flight.
	deliver(push.Key, push.Trials)
	c.mu.Lock()
	s.pending--
	s.wake()
	c.mu.Unlock()
	c.logf("cluster: %s completed by worker %q", cs.job.Cell, push.Worker)
	writeJSON(w, http.StatusOK, ResultAck{Accepted: true})
}

// cellByKey finds a still-open session's cell by content address. Must
// be called with c.mu held.
func (c *Coordinator) cellByKey(key string) (*session, *cellState) {
	for _, s := range c.sessions {
		if cs, ok := s.cells[key]; ok {
			return s, cs
		}
	}
	return nil, nil
}

// measurementLabel scans a pushed payload and returns its single cell
// label (or "" when the payload carries no measurements) and whether
// every measurement agrees on it — a sanity check against sloppy or
// foreign payloads, not a proof of honest computation (see the trust
// note in the package comment). Runs lock-free; the caller compares the
// label against the leased cell under the coordinator lock.
func measurementLabel(trials [][]campaign.Measurement) (label string, uniform bool) {
	for _, ms := range trials {
		for _, m := range ms {
			if label == "" {
				label = m.Cell
			} else if m.Cell != label {
				return "", false
			}
		}
	}
	return label, true
}
