package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dyntreecast/internal/campaign"
	"dyntreecast/internal/metrics"
)

// TestWorkerBookBounds: worker identities arrive over the unauthenticated
// cluster protocol, so the coordinator's book must stay bounded — an
// identity idle for workerExpiry lease TTLs is forgotten (its metric
// series retired with it), and a peer cycling fresh names can never push
// the book past maxWorkers.
func TestWorkerBookBounds(t *testing.T) {
	c := New(Options{LeaseTTL: time.Minute})
	now := time.Now()
	c.now = func() time.Time { return now }

	c.mu.Lock()
	c.seen("idle-worker", "dyntreecast-engine/0")
	c.mu.Unlock()

	// Advance past the idle cutoff: the next new identity sweeps it out.
	now = now.Add(workerExpiry*time.Minute + time.Second)
	c.mu.Lock()
	c.seen("fresh", "")
	c.mu.Unlock()
	if ws := c.Workers(); len(ws) != 1 || ws[0].Worker != "fresh" {
		t.Fatalf("workers after expiry = %+v, want only fresh", ws)
	}
	var b strings.Builder
	if err := metrics.Default.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), `worker="idle-worker"`) {
		t.Errorf("expired worker's metric series still exposed:\n%s", b.String())
	}

	// Name cycling: the book caps at maxWorkers no matter how many
	// identities one peer invents.
	c.mu.Lock()
	for i := 0; i < maxWorkers+100; i++ {
		c.seen(fmt.Sprintf("cycler-%d", i), "")
	}
	n := len(c.workers)
	c.mu.Unlock()
	if n > maxWorkers {
		t.Fatalf("worker book = %d entries, want <= %d", n, maxWorkers)
	}
}

// TestWorkersEndpoint: the coordinator's per-worker book is served on
// GET /cluster/workers — a version-rejected worker shows up flagged, a
// leasing worker shows its grant and active-lease counts, and after its
// push lands the book records the acceptance and the push time.
func TestWorkersEndpoint(t *testing.T) {
	c := New(Options{})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	getWorkers := func() []WorkerInfo {
		t.Helper()
		resp, err := http.Get(srv.URL + "/cluster/workers")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/cluster/workers: status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("content type = %q", ct)
		}
		var out []WorkerInfo
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	if ws := getWorkers(); len(ws) != 0 {
		t.Fatalf("fresh coordinator lists %d workers, want 0", len(ws))
	}

	// A stale-engine worker is rejected but still lands in the book,
	// flagged, so a fleet operator can see who needs redeploying.
	postJSON(t, srv.URL+"/cluster/lease", LeaseRequest{Worker: "stale", Engine: "dyntreecast-engine/0"}, nil)

	sess, _, got, mu := openSession(t, c, testSpec())
	defer sess.Close()

	var lease LeaseResponse
	if status := postJSON(t, srv.URL+"/cluster/lease", LeaseRequest{Worker: "w1", Engine: campaign.EngineVersion}, &lease); status != http.StatusOK {
		t.Fatalf("lease: status %d", status)
	}

	ws := getWorkers()
	if len(ws) != 2 {
		t.Fatalf("workers = %d, want 2 (stale + w1)", len(ws))
	}
	// Sorted by name: "stale" < "w1".
	if ws[0].Worker != "stale" || !ws[0].VersionRejected {
		t.Errorf("row 0 = %+v, want version-rejected %q", ws[0], "stale")
	}
	if ws[0].LastSeen.IsZero() {
		t.Errorf("rejected worker has no last_seen")
	}
	w1 := ws[1]
	if w1.Worker != "w1" || w1.LeasesGranted != 1 || w1.LeasesActive != 1 {
		t.Errorf("row 1 = %+v, want w1 with 1 granted / 1 active", w1)
	}
	if w1.PushesAccepted != 0 || !w1.LastPush.IsZero() {
		t.Errorf("w1 shows pushes before any: %+v", w1)
	}

	// Execute the leased cell for real and push: the book must record
	// the acceptance, release the active lease, and stamp last_push.
	res, err := campaign.ExecuteCellJob(context.Background(), lease.Job)
	if err != nil {
		t.Fatalf("ExecuteCellJob: %v", err)
	}
	status := postJSON(t, srv.URL+"/cluster/results", ResultPush{
		LeaseID: lease.LeaseID, Worker: "w1", Key: lease.Job.Key, Trials: res,
	}, nil)
	if status != http.StatusOK {
		t.Fatalf("push: status %d", status)
	}
	mu.Lock()
	deliveries := len(*got)
	mu.Unlock()
	if deliveries != 1 {
		t.Fatalf("deliveries = %d, want 1", deliveries)
	}

	ws = getWorkers()
	w1 = ws[1]
	if w1.PushesAccepted != 1 || w1.LeasesActive != 0 || w1.LastPush.IsZero() {
		t.Errorf("after push: %+v, want 1 accepted, 0 active, last_push set", w1)
	}
}
