package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dyntreecast/internal/campaign"
	"dyntreecast/internal/campaign/cache"
)

// testSpec is the grid every byte-identity test runs: several cells,
// mixed families, small enough to finish in milliseconds locally.
func testSpec() campaign.Spec {
	return campaign.Spec{
		Name: "cluster-e2e",
		Scenarios: []campaign.Scenario{
			{Adversary: "random-tree"},
			{Adversary: "k-leaves", Params: map[string]any{"k": []any{2, 3}}},
		},
		Ns:     []int{6, 8},
		Trials: 5,
		Seed:   42,
	}
}

// artifacts renders the outcome's JSON and JSONL artifacts.
func artifacts(t *testing.T, out *campaign.Outcome) (string, string) {
	t.Helper()
	var js, jl bytes.Buffer
	if err := out.WriteJSON(&js); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := out.WriteJSONL(&jl); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	return js.String(), jl.String()
}

// localArtifacts runs the spec purely locally and returns its artifacts,
// the reference bytes every cluster configuration must reproduce.
func localArtifacts(t *testing.T, spec campaign.Spec) (string, string) {
	t.Helper()
	out, err := campaign.RunSpec(context.Background(), spec, campaign.Config{Workers: 2})
	if err != nil {
		t.Fatalf("local RunSpec: %v", err)
	}
	return artifacts(t, out)
}

// postJSON posts v and decodes the response body into out (when non-nil),
// returning the status code.
func postJSON(t *testing.T, url string, v any, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp.StatusCode
}

func TestLeaseVersionHandshake(t *testing.T) {
	c := New(Options{})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	status := postJSON(t, srv.URL+"/cluster/lease", LeaseRequest{Worker: "stale", Engine: "dyntreecast-engine/1"}, nil)
	if status != http.StatusConflict {
		t.Fatalf("stale engine lease: status %d, want %d", status, http.StatusConflict)
	}
	if got := c.Stats().LeasesRejected; got != 1 {
		t.Fatalf("LeasesRejected = %d, want 1", got)
	}
	// A version-matched worker with no open campaigns gets no content.
	status = postJSON(t, srv.URL+"/cluster/lease", LeaseRequest{Worker: "ok", Engine: campaign.EngineVersion}, nil)
	if status != http.StatusNoContent {
		t.Fatalf("idle lease: status %d, want %d", status, http.StatusNoContent)
	}
}

// openSession registers the spec's cells on the coordinator and records
// remote deliveries.
type delivery struct {
	key    string
	lo, hi int
	trials [][]campaign.Measurement
}

func openSession(t *testing.T, c *Coordinator, spec campaign.Spec) (campaign.RemoteSession, []campaign.CellJob, *[]delivery, *sync.Mutex) {
	t.Helper()
	jobs, err := spec.CellJobs()
	if err != nil {
		t.Fatalf("CellJobs: %v", err)
	}
	var mu sync.Mutex
	var got []delivery
	sess := c.Open(jobs, func(key string, lo, hi int, trials [][]campaign.Measurement) {
		mu.Lock()
		defer mu.Unlock()
		got = append(got, delivery{key, lo, hi, trials})
	})
	return sess, jobs, &got, &mu
}

func TestLeaseExpiryReissueAndStaleDrop(t *testing.T) {
	c := New(Options{LeaseTTL: 40 * time.Millisecond})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	spec := testSpec()
	spec.Ns, spec.Scenarios = []int{6}, spec.Scenarios[:1] // one cell
	sess, jobs, got, mu := openSession(t, c, spec)
	defer sess.Close()

	var leaseA LeaseResponse
	if status := postJSON(t, srv.URL+"/cluster/lease", LeaseRequest{Worker: "a", Engine: campaign.EngineVersion}, &leaseA); status != http.StatusOK {
		t.Fatalf("lease A: status %d", status)
	}
	// Worker a dies silently. After the TTL the same cell is re-issued.
	time.Sleep(60 * time.Millisecond)
	var leaseB LeaseResponse
	if status := postJSON(t, srv.URL+"/cluster/lease", LeaseRequest{Worker: "b", Engine: campaign.EngineVersion}, &leaseB); status != http.StatusOK {
		t.Fatalf("lease B after expiry: status %d", status)
	}
	if leaseB.Job.Key != leaseA.Job.Key {
		t.Fatalf("re-issued lease is for %s, want %s", leaseB.Job.Cell, leaseA.Job.Cell)
	}
	if leaseB.LeaseID == leaseA.LeaseID {
		t.Fatalf("re-issue reused lease id %s", leaseA.LeaseID)
	}

	trials, err := campaign.ExecuteCellJob(context.Background(), leaseB.Job)
	if err != nil {
		t.Fatalf("ExecuteCellJob: %v", err)
	}
	var ack ResultAck
	postJSON(t, srv.URL+"/cluster/results", ResultPush{LeaseID: leaseB.LeaseID, Worker: "b", Key: leaseB.Job.Key, Trials: trials}, &ack)
	if !ack.Accepted {
		t.Fatalf("fresh push rejected: %s", ack.Reason)
	}
	// Worker a resurrects and pushes the same (byte-identical) cell under
	// its superseded lease: acknowledged, dropped, harmless.
	postJSON(t, srv.URL+"/cluster/results", ResultPush{LeaseID: leaseA.LeaseID, Worker: "a", Key: leaseA.Job.Key, Trials: trials}, &ack)
	if ack.Accepted {
		t.Fatalf("stale push was accepted")
	}

	mu.Lock()
	defer mu.Unlock()
	if len(*got) != 1 || (*got)[0].key != jobs[0].Key || len((*got)[0].trials) != jobs[0].Trials {
		t.Fatalf("deliveries = %+v, want exactly one full delivery of %s", *got, jobs[0].Cell)
	}
	if s := c.Stats(); s.RemoteCells != 1 || s.Requeued != 1 {
		t.Fatalf("stats = %+v, want 1 remote cell and 1 requeue", s)
	}
}

func TestWorkerKillMidCellLocalSteal(t *testing.T) {
	c := New(Options{LeaseTTL: 40 * time.Millisecond})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	spec := testSpec()
	spec.Ns, spec.Scenarios = []int{6}, spec.Scenarios[:1] // one cell
	sess, jobs, got, mu := openSession(t, c, spec)
	defer sess.Close()

	var lease LeaseResponse
	if status := postJSON(t, srv.URL+"/cluster/lease", LeaseRequest{Worker: "doomed", Engine: campaign.EngineVersion}, &lease); status != http.StatusOK {
		t.Fatalf("lease: status %d", status)
	}
	// The worker dies mid-cell: no push ever arrives. The local pool
	// blocks on the active lease, then steals the cell at expiry.
	start := time.Now()
	job, ok := sess.ClaimLocal(context.Background())
	if !ok {
		t.Fatalf("ClaimLocal returned false")
	}
	if job.Key != jobs[0].Key {
		t.Fatalf("stole %s, want %s", job.Cell, jobs[0].Cell)
	}
	if waited := time.Since(start); waited < 20*time.Millisecond {
		t.Fatalf("local steal after %s, want to block until near lease expiry", waited)
	}
	lo, hi := job.ShardBounds()
	if !sess.CompleteLocal(job.Key, lo, hi) {
		t.Fatalf("CompleteLocal lost a cell nobody else completed")
	}
	// A locally completed cell is never remote-delivered, and the dead
	// worker's lease is gone: a late push misses.
	var ack ResultAck
	postJSON(t, srv.URL+"/cluster/results", ResultPush{LeaseID: lease.LeaseID, Worker: "doomed", Key: lease.Job.Key, Trials: nil}, &ack)
	if ack.Accepted {
		t.Fatalf("push under stolen lease was accepted")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(*got) != 0 {
		t.Fatalf("deliveries = %+v, want none for a locally completed cell", *got)
	}
}

func TestResultValidationRequeues(t *testing.T) {
	c := New(Options{LeaseTTL: time.Minute}) // long TTL: only validation can requeue
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	spec := testSpec()
	spec.Ns, spec.Scenarios = []int{6}, spec.Scenarios[:1] // one cell
	sess, jobs, got, mu := openSession(t, c, spec)
	defer sess.Close()

	lease := func(worker string) LeaseResponse {
		var lr LeaseResponse
		if status := postJSON(t, srv.URL+"/cluster/lease", LeaseRequest{Worker: worker, Engine: campaign.EngineVersion}, &lr); status != http.StatusOK {
			t.Fatalf("lease for %s: status %d", worker, status)
		}
		return lr
	}
	push := func(lr LeaseResponse, p ResultPush) ResultAck {
		var ack ResultAck
		p.LeaseID = lr.LeaseID
		postJSON(t, srv.URL+"/cluster/results", p, &ack)
		return ack
	}

	trials, err := campaign.ExecuteCellJob(context.Background(), jobs[0])
	if err != nil {
		t.Fatalf("ExecuteCellJob: %v", err)
	}

	// Worker-reported error: the cell goes back in the pool immediately.
	if ack := push(lease("erroring"), ResultPush{Key: jobs[0].Key, Error: "simulated crash"}); ack.Accepted {
		t.Fatalf("error push was accepted")
	}
	// Content-address mismatch: rejected and re-queued.
	if ack := push(lease("confused"), ResultPush{Key: "deadbeef", Trials: trials}); ack.Accepted {
		t.Fatalf("mismatched-key push was accepted")
	}
	// Trial-count mismatch: rejected and re-queued.
	if ack := push(lease("truncating"), ResultPush{Key: jobs[0].Key, Trials: trials[:2]}); ack.Accepted {
		t.Fatalf("short push was accepted")
	}
	// Measurements labeled with a foreign cell: rejected and re-queued.
	relabeled := make([][]campaign.Measurement, len(trials))
	for i, ms := range trials {
		relabeled[i] = append([]campaign.Measurement(nil), ms...)
		for j := range relabeled[i] {
			relabeled[i][j].Cell = "someone-else/n=99"
		}
	}
	if ack := push(lease("mislabeling"), ResultPush{Key: jobs[0].Key, Trials: relabeled}); ack.Accepted {
		t.Fatalf("mislabeled push was accepted")
	}
	// After four bad pushes the cell is still leasable, and a valid push
	// completes it.
	if ack := push(lease("honest"), ResultPush{Key: jobs[0].Key, Trials: trials}); !ack.Accepted {
		t.Fatalf("valid push rejected: %s", ack.Reason)
	}
	mu.Lock()
	deliveries := len(*got)
	mu.Unlock()
	if deliveries != 1 {
		t.Fatalf("deliveries = %d, want 1", deliveries)
	}
	if s := c.Stats(); s.Requeued != 4 || s.RemoteCells != 1 {
		t.Fatalf("stats = %+v, want 4 requeues and 1 remote cell", s)
	}
}

// startWorkers runs n in-process cluster workers against url until the
// returned stop function is called.
func startWorkers(t *testing.T, url string, n int) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			err := RunWorker(ctx, url, WorkerOptions{
				ID:   fmt.Sprintf("test-worker-%d", id),
				Poll: 5 * time.Millisecond,
			})
			if err != nil {
				t.Errorf("worker %d: %v", id, err)
			}
		}(i)
	}
	return func() {
		cancel()
		wg.Wait()
	}
}

// killerWorker leases up to max cells and abandons every one of them —
// the pathological worker the lease lifecycle must absorb. It reports
// nothing and tolerates a coordinator that has already gone away, since
// it races the test body.
func killerWorker(url string, max int) {
	body, _ := json.Marshal(LeaseRequest{Worker: "killer", Engine: campaign.EngineVersion})
	for i := 0; i < max; i++ {
		resp, err := http.Post(url+"/cluster/lease", "application/json", bytes.NewReader(body))
		if err != nil {
			return
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// TestClusterEndToEndByteIdentity is the acceptance test of the fabric:
// one coordinator plus two in-process workers (and one lease-abandoning
// killer) produce JSON and JSONL artifacts byte-identical to a purely
// local run — with the dir cache and a checkpoint enabled, and again
// when the first clustered run is killed partway and resumed.
func TestClusterEndToEndByteIdentity(t *testing.T) {
	clusterEndToEnd(t, Options{LeaseTTL: 80 * time.Millisecond})
}

// TestShardedClusterEndToEndByteIdentity reruns the full e2e — two
// workers, a killer that leases shards and dies mid-shard, kill-and-
// resume with checkpoint and cache — with every cell split into 2-trial
// shards. The artifacts must still match the purely local run byte for
// byte: the shard size is pure scheduling.
func TestShardedClusterEndToEndByteIdentity(t *testing.T) {
	clusterEndToEnd(t, Options{LeaseTTL: 80 * time.Millisecond, ShardTrials: 2})
}

func clusterEndToEnd(t *testing.T, opts Options) {
	spec := testSpec()
	wantJSON, wantJSONL := localArtifacts(t, spec)

	c := New(opts)
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	stop := startWorkers(t, srv.URL, 2)
	defer stop()
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		killerWorker(srv.URL, 3)
	}()
	defer func() { <-killed }()

	dir := t.TempDir()
	store, err := cache.NewDir(filepath.Join(dir, "cells"))
	if err != nil {
		t.Fatalf("cache.NewDir: %v", err)
	}

	// Phase 1: clustered run with checkpoint + cache, killed after a few
	// results land.
	ckpt := filepath.Join(dir, "run.ckpt")
	cf, err := campaign.OpenCheckpointFile(ckpt, spec)
	if err != nil {
		t.Fatalf("OpenCheckpointFile: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cfg := campaign.Config{Workers: 2, Remote: c, Cache: store}
	cfg.Progress = func(done, total int) {
		if done >= total/3 {
			cancel()
		}
	}
	_, runErr := campaign.RunSpec(ctx, spec, cf.Wire(cfg))
	cancel()
	if err := cf.Close(); err != nil {
		t.Fatalf("checkpoint close: %v", err)
	}
	if runErr == nil {
		// The whole grid may legitimately finish before the kill lands on
		// a fast machine; the resume below then just replays everything.
		t.Logf("phase 1 finished before cancellation")
	}

	// Phase 2: resume the checkpoint under the same cluster; the final
	// artifact must be byte-identical to the uninterrupted local run.
	cf, err = campaign.OpenCheckpointFile(ckpt, spec)
	if err != nil {
		t.Fatalf("reopening checkpoint: %v", err)
	}
	out, err := campaign.RunSpec(context.Background(), spec, cf.Wire(campaign.Config{Workers: 2, Remote: c, Cache: store}))
	if err != nil {
		t.Fatalf("resumed clustered RunSpec: %v", err)
	}
	if err := cf.Close(); err != nil {
		t.Fatalf("checkpoint close: %v", err)
	}
	gotJSON, gotJSONL := artifacts(t, out)
	if gotJSON != wantJSON {
		t.Fatalf("clustered JSON artifact differs from local run:\n--- local ---\n%s\n--- cluster ---\n%s", wantJSON, gotJSON)
	}
	if gotJSONL != wantJSONL {
		t.Fatalf("clustered JSONL artifact differs from local run:\n--- local ---\n%s\n--- cluster ---\n%s", wantJSONL, gotJSONL)
	}

	// Phase 3: a cache-backed clustered rerun without the checkpoint.
	// Cells the checkpoint fully covered in phase 2 were deliberately
	// never written to the cache, so this run recomputes only those —
	// and tops the cache up.
	out, err = campaign.RunSpec(context.Background(), spec, campaign.Config{Workers: 2, Remote: c, Cache: store})
	if err != nil {
		t.Fatalf("cache-backed clustered RunSpec: %v", err)
	}
	gotJSON, gotJSONL = artifacts(t, out)
	if gotJSON != wantJSON || gotJSONL != wantJSONL {
		t.Fatalf("cache-backed clustered artifacts differ from local run")
	}

	// Phase 4: now fully warm — nothing executes, bytes still identical.
	out, err = campaign.RunSpec(context.Background(), spec, campaign.Config{Workers: 2, Remote: c, Cache: store})
	if err != nil {
		t.Fatalf("warm clustered RunSpec: %v", err)
	}
	if out.Executed != 0 {
		t.Fatalf("warm rerun executed %d jobs, want 0", out.Executed)
	}
	gotJSON, gotJSONL = artifacts(t, out)
	if gotJSON != wantJSON || gotJSONL != wantJSONL {
		t.Fatalf("warm clustered artifacts differ from local run")
	}
}

// TestClusterVersionMismatchDoesNotChangeBytes runs a campaign on a
// coordinator whose only would-be worker speaks a different engine
// version: the worker is rejected at the handshake and the local pool
// produces the artifact alone, byte-identical to a plain local run.
func TestClusterVersionMismatchDoesNotChangeBytes(t *testing.T) {
	spec := testSpec()
	wantJSON, _ := localArtifacts(t, spec)

	c := New(Options{LeaseTTL: 50 * time.Millisecond})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	stop := make(chan struct{})
	go func() {
		defer close(stop)
		for i := 0; i < 10; i++ {
			status := postJSON(t, srv.URL+"/cluster/lease", LeaseRequest{Worker: "stale", Engine: "dyntreecast-engine/2"}, nil)
			if status != http.StatusConflict {
				t.Errorf("stale worker lease: status %d, want %d", status, http.StatusConflict)
				return
			}
		}
	}()

	out, err := campaign.RunSpec(context.Background(), spec, campaign.Config{Workers: 2, Remote: c})
	if err != nil {
		t.Fatalf("RunSpec: %v", err)
	}
	<-stop
	gotJSON, _ := artifacts(t, out)
	if gotJSON != wantJSON {
		t.Fatalf("artifact differs after version-mismatch rejections")
	}
	if s := c.Stats(); s.LeasesRejected == 0 || s.RemoteCells != 0 {
		t.Fatalf("stats = %+v, want rejections and zero remote cells", s)
	}
}

// TestClusterWorkersActuallyExecute pins that the protocol does real
// work: with slow local claiming disabled (zero local workers is not a
// mode, so we use one) and fast-polling workers, at least one cell goes
// through the remote path on any but the most pathological scheduling.
// The assertion is on the sum of both paths — every cell exactly once —
// plus byte identity, which holds regardless of the split.
func TestClusterWorkersActuallyExecute(t *testing.T) {
	spec := testSpec()
	spec.Trials = 40 // enough work per cell that workers get a look-in
	wantJSON, _ := localArtifacts(t, spec)

	c := New(Options{LeaseTTL: time.Minute})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	stop := startWorkers(t, srv.URL, 2)
	defer stop()

	out, err := campaign.RunSpec(context.Background(), spec, campaign.Config{Workers: 1, Remote: c})
	if err != nil {
		t.Fatalf("clustered RunSpec: %v", err)
	}
	gotJSON, _ := artifacts(t, out)
	if gotJSON != wantJSON {
		t.Fatalf("clustered artifact differs from local run")
	}
	if out.Completed != out.Jobs {
		t.Fatalf("completed %d of %d jobs", out.Completed, out.Jobs)
	}
	t.Logf("cluster stats: %+v", c.Stats())
}

// TestRunWorkerExecutesLeasedCell is the deterministic worker-side unit:
// with no local pool claiming anything, only the worker can complete the
// session's single cell — lease, execute, push, deliver.
func TestRunWorkerExecutesLeasedCell(t *testing.T) {
	c := New(Options{LeaseTTL: time.Minute})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	spec := testSpec()
	spec.Ns, spec.Scenarios = []int{6}, spec.Scenarios[:1] // one cell
	sess, jobs, got, mu := openSession(t, c, spec)
	defer sess.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- RunWorker(ctx, srv.URL, WorkerOptions{ID: "solo", Poll: 5 * time.Millisecond})
	}()

	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		n := len(*got)
		mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never delivered the cell")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("RunWorker: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if (*got)[0].key != jobs[0].Key || len((*got)[0].trials) != jobs[0].Trials {
		t.Fatalf("delivery = %+v, want full %s", (*got)[0], jobs[0].Cell)
	}
	if s := c.Stats(); s.RemoteCells != 1 || s.LeasesGranted != 1 {
		t.Fatalf("stats = %+v, want exactly one granted lease and one remote cell", s)
	}
}

// TestRunWorkerVersionRejection: a coordinator that speaks a different
// engine version turns the handshake into a prompt worker error, not a
// retry loop.
func TestRunWorkerVersionRejection(t *testing.T) {
	reject := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusConflict)
		json.NewEncoder(w).Encode(map[string]string{"error": "engine version mismatch: simulated"})
	}))
	defer reject.Close()
	err := RunWorker(context.Background(), reject.URL, WorkerOptions{Poll: time.Millisecond})
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("rejected")) {
		t.Fatalf("err = %v, want handshake rejection", err)
	}
}

// TestRunWorkerUnreachableCoordinator: a dead coordinator address errors
// out after bounded retries instead of spinning forever.
func TestRunWorkerUnreachableCoordinator(t *testing.T) {
	err := RunWorker(context.Background(), "127.0.0.1:1", WorkerOptions{Poll: time.Millisecond})
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("unreachable")) {
		t.Fatalf("err = %v, want unreachable-coordinator error", err)
	}
}

// TestRunWorkerStopsCleanlyWhenCoordinatorGoes: a worker that reached
// its coordinator treats the coordinator later vanishing (a one-shot
// cmd/campaign -join run finishing) as a clean stop, not an error.
func TestRunWorkerStopsCleanlyWhenCoordinatorGoes(t *testing.T) {
	c := New(Options{})
	srv := httptest.NewServer(c.Handler())
	done := make(chan error, 1)
	go func() {
		done <- RunWorker(context.Background(), srv.URL, WorkerOptions{
			ID: "orphan", Poll: time.Millisecond, ReconnectWindow: 50 * time.Millisecond,
		})
	}()
	time.Sleep(50 * time.Millisecond) // let the worker poll (204s) a few times
	srv.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("RunWorker after coordinator shutdown: %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not stop after coordinator went away")
	}
}

// TestDuplicateCellsInGrid is the regression test for grids listing the
// same cell twice (ns: [6, 6]): the duplicate plans share one content
// address, must be offered to the scheduler exactly once, executed once,
// and spliced into both plans' jobs — never deadlocking the session.
func TestDuplicateCellsInGrid(t *testing.T) {
	spec := testSpec()
	spec.Ns = []int{6, 6, 8}
	wantJSON, _ := localArtifacts(t, spec)

	c := New(Options{LeaseTTL: time.Minute})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	stop := startWorkers(t, srv.URL, 1)
	defer stop()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	out, err := campaign.RunSpec(ctx, spec, campaign.Config{Workers: 2, Remote: c})
	if err != nil {
		t.Fatalf("clustered RunSpec with duplicate cells: %v", err)
	}
	if out.Completed != out.Jobs {
		t.Fatalf("completed %d of %d jobs", out.Completed, out.Jobs)
	}
	gotJSON, _ := artifacts(t, out)
	if gotJSON != wantJSON {
		t.Fatalf("duplicate-cell clustered artifact differs from local run:\n%s\nvs\n%s", gotJSON, wantJSON)
	}
}

// TestLatePushAfterExpiryStillCounts: a worker that outlives its lease
// (no renewal protocol) still contributes — while the cell is
// incomplete, its push is accepted by content address.
func TestLatePushAfterExpiryStillCounts(t *testing.T) {
	c := New(Options{LeaseTTL: 30 * time.Millisecond})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	spec := testSpec()
	spec.Ns, spec.Scenarios = []int{6}, spec.Scenarios[:1] // one cell
	sess, jobs, got, mu := openSession(t, c, spec)
	defer sess.Close()

	var lease LeaseResponse
	if status := postJSON(t, srv.URL+"/cluster/lease", LeaseRequest{Worker: "slow", Engine: campaign.EngineVersion}, &lease); status != http.StatusOK {
		t.Fatalf("lease: status %d", status)
	}
	trials, err := campaign.ExecuteCellJob(context.Background(), lease.Job)
	if err != nil {
		t.Fatalf("ExecuteCellJob: %v", err)
	}
	time.Sleep(60 * time.Millisecond) // outlive the lease; nobody else claims
	var ack ResultAck
	postJSON(t, srv.URL+"/cluster/results", ResultPush{LeaseID: lease.LeaseID, Worker: "slow", Key: lease.Job.Key, Trials: trials}, &ack)
	if !ack.Accepted {
		t.Fatalf("late push for an incomplete cell rejected: %s", ack.Reason)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(*got) != 1 || (*got)[0].key != jobs[0].Key {
		t.Fatalf("deliveries = %+v, want the late cell", *got)
	}
	// And a second (duplicate) late push is dropped: the cell is done.
	postJSON(t, srv.URL+"/cluster/results", ResultPush{LeaseID: lease.LeaseID, Worker: "slow", Key: lease.Job.Key, Trials: trials}, &ack)
	if ack.Accepted {
		t.Fatalf("duplicate late push was accepted")
	}
}

// TestShardedLeasesCoverCell: with ShardTrials=2 a 5-trial cell is
// leased as [0,2), [2,4), [4,5) — three distinct leases whose jobs carry
// the bounds — and each out-of-order push delivers exactly its range.
func TestShardedLeasesCoverCell(t *testing.T) {
	c := New(Options{LeaseTTL: time.Minute, ShardTrials: 2})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	spec := testSpec()
	spec.Ns, spec.Scenarios = []int{6}, spec.Scenarios[:1] // one cell, 5 trials
	sess, jobs, got, mu := openSession(t, c, spec)
	defer sess.Close()

	wantRanges := [][2]int{{0, 2}, {2, 4}, {4, 5}}
	leases := make([]LeaseResponse, 0, len(wantRanges))
	for i, want := range wantRanges {
		var lr LeaseResponse
		if status := postJSON(t, srv.URL+"/cluster/lease", LeaseRequest{Worker: fmt.Sprintf("w%d", i), Engine: campaign.EngineVersion}, &lr); status != http.StatusOK {
			t.Fatalf("lease %d: status %d", i, status)
		}
		if lo, hi := lr.Job.ShardBounds(); lo != want[0] || hi != want[1] {
			t.Fatalf("lease %d covers [%d,%d), want [%d,%d)", i, lo, hi, want[0], want[1])
		}
		leases = append(leases, lr)
	}
	// Every shard is under an active lease: the next request gets 204.
	if status := postJSON(t, srv.URL+"/cluster/lease", LeaseRequest{Worker: "idle", Engine: campaign.EngineVersion}, nil); status != http.StatusNoContent {
		t.Fatalf("fourth lease: status %d, want 204", status)
	}
	// Push the shards out of order; each delivery carries its own range.
	for _, i := range []int{2, 0, 1} {
		lr := leases[i]
		trials, err := campaign.ExecuteCellJob(context.Background(), lr.Job)
		if err != nil {
			t.Fatalf("ExecuteCellJob shard %d: %v", i, err)
		}
		var ack ResultAck
		postJSON(t, srv.URL+"/cluster/results", ResultPush{LeaseID: lr.LeaseID, Worker: "w", Key: lr.Job.Key,
			TrialLo: lr.Job.TrialLo, TrialHi: lr.Job.TrialHi, Trials: trials}, &ack)
		if !ack.Accepted {
			t.Fatalf("shard %d push rejected: %s", i, ack.Reason)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	seen := map[[2]int]int{}
	for _, d := range *got {
		if d.key != jobs[0].Key || len(d.trials) != d.hi-d.lo {
			t.Fatalf("delivery %+v malformed for %s", d, jobs[0].Cell)
		}
		seen[[2]int{d.lo, d.hi}]++
	}
	for _, want := range wantRanges {
		if seen[want] != 1 {
			t.Fatalf("range %v delivered %d times, want once (deliveries %+v)", want, seen[want], *got)
		}
	}
	if s := c.Stats(); s.LeasesGranted != 3 || s.RemoteCells != 3 || s.Requeued != 0 {
		t.Fatalf("stats = %+v, want 3 granted and 3 completed shard leases", s)
	}
}

// TestShardedWholeCellPushRequeued: a pre-sharding worker answering a
// sharded lease pushes the whole cell with no bounds echo — the
// coordinator re-queues the shard instead of splicing the wrong trials,
// and a bounds-echoing push then completes it with exactly the bytes the
// whole-cell run produces for that range.
func TestShardedWholeCellPushRequeued(t *testing.T) {
	c := New(Options{LeaseTTL: time.Minute, ShardTrials: 3})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	spec := testSpec()
	spec.Ns, spec.Scenarios = []int{6}, spec.Scenarios[:1] // one cell: shards [0,3), [3,5)
	sess, jobs, got, mu := openSession(t, c, spec)
	defer sess.Close()

	var lr LeaseResponse
	if status := postJSON(t, srv.URL+"/cluster/lease", LeaseRequest{Worker: "old", Engine: campaign.EngineVersion}, &lr); status != http.StatusOK {
		t.Fatalf("lease: status %d", status)
	}
	if lo, hi := lr.Job.ShardBounds(); lo != 0 || hi != 3 {
		t.Fatalf("lease covers [%d,%d), want [0,3)", lo, hi)
	}
	whole, err := campaign.ExecuteCellJob(context.Background(), jobs[0])
	if err != nil {
		t.Fatalf("ExecuteCellJob whole cell: %v", err)
	}
	var ack ResultAck
	postJSON(t, srv.URL+"/cluster/results", ResultPush{LeaseID: lr.LeaseID, Worker: "old", Key: lr.Job.Key, Trials: whole}, &ack)
	if ack.Accepted || !strings.Contains(ack.Reason, "trial range mismatch") {
		t.Fatalf("whole-cell push against a shard lease: ack %+v, want range-mismatch requeue", ack)
	}

	// The shard went back in the pool: re-lease and push with bounds.
	if status := postJSON(t, srv.URL+"/cluster/lease", LeaseRequest{Worker: "new", Engine: campaign.EngineVersion}, &lr); status != http.StatusOK {
		t.Fatalf("re-lease: status %d", status)
	}
	if lo, hi := lr.Job.ShardBounds(); lo != 0 || hi != 3 {
		t.Fatalf("re-lease covers [%d,%d), want the re-queued [0,3)", lo, hi)
	}
	part, err := campaign.ExecuteCellJob(context.Background(), lr.Job)
	if err != nil {
		t.Fatalf("ExecuteCellJob shard: %v", err)
	}
	postJSON(t, srv.URL+"/cluster/results", ResultPush{LeaseID: lr.LeaseID, Worker: "new", Key: lr.Job.Key,
		TrialLo: lr.Job.TrialLo, TrialHi: lr.Job.TrialHi, Trials: part}, &ack)
	if !ack.Accepted {
		t.Fatalf("shard push rejected: %s", ack.Reason)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(*got) != 1 || (*got)[0].lo != 0 || (*got)[0].hi != 3 {
		t.Fatalf("deliveries = %+v, want exactly [0,3)", *got)
	}
	// Shard bytes ≡ the whole-cell run's bytes for the same trials.
	for i, ms := range (*got)[0].trials {
		if len(ms) != len(whole[i]) {
			t.Fatalf("shard trial %d carries %d measurements, whole-cell %d", i, len(ms), len(whole[i]))
		}
		for j := range ms {
			if ms[j] != whole[i][j] {
				t.Fatalf("shard trial %d measurement %d = %+v, whole-cell %+v", i, j, ms[j], whole[i][j])
			}
		}
	}
	if s := c.Stats(); s.Requeued != 1 || s.RemoteCells != 1 {
		t.Fatalf("stats = %+v, want 1 requeue and 1 completed shard", s)
	}
}
