// Package graph implements general directed graphs on [n], used for the
// structural facts the paper's related-work section builds on.
//
// The previous best upper bound for dynamic-tree broadcast (Függer–Nowak–
// Winkler 2020, combined with Charron-Bost–Függer–Nowak 2015) goes through
// nonsplit graphs: directed graphs in which every pair of vertices has a
// common in-neighbor. The key simulation lemma states that the product of
// any n−1 rooted trees (with self-loops) is nonsplit. This package provides
// the digraph type, products, the nonsplit predicate, rootedness, and
// distance/eccentricity queries so the repository can check those facts
// empirically (experiment E6).
//
// A Digraph stores, for every vertex, its in-neighbor set as a bitset; the
// product operation is then a plain union of in-sets.
package graph

import (
	"fmt"

	"dyntreecast/internal/bitset"
	"dyntreecast/internal/boolmat"
	"dyntreecast/internal/rng"
	"dyntreecast/internal/tree"
)

// Digraph is a directed graph on vertices 0…n−1, stored column-wise:
// in(y) is the set of x with an edge x → y.
type Digraph struct {
	n  int
	in []*bitset.Set
}

// New returns an edgeless digraph on n vertices.
func New(n int) *Digraph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative size %d", n))
	}
	in := make([]*bitset.Set, n)
	for i := range in {
		in[i] = bitset.New(n)
	}
	return &Digraph{n: n, in: in}
}

// FromTree returns the round graph of t: parent → child edges plus a
// self-loop on every vertex.
func FromTree(t *tree.Tree) *Digraph {
	g := New(t.N())
	for v, p := range t.Parents() {
		g.in[v].Set(v)
		if v != p {
			g.in[v].Set(p)
		}
	}
	return g
}

// FromMatrix converts an adjacency matrix (row x = out-neighbors of x)
// into a Digraph.
func FromMatrix(m *boolmat.Matrix) *Digraph {
	g := New(m.N())
	for x := 0; x < m.N(); x++ {
		m.Row(x).ForEach(func(y int) bool {
			g.in[y].Set(x)
			return true
		})
	}
	return g
}

// Matrix converts the digraph to an adjacency matrix.
func (g *Digraph) Matrix() *boolmat.Matrix {
	m := boolmat.Zero(g.n)
	for y := 0; y < g.n; y++ {
		g.in[y].ForEach(func(x int) bool {
			m.Set(x, y)
			return true
		})
	}
	return m
}

// N returns the number of vertices.
func (g *Digraph) N() int { return g.n }

// AddEdge inserts the edge x → y.
func (g *Digraph) AddEdge(x, y int) { g.in[y].Set(x) }

// HasEdge reports whether the edge x → y is present.
func (g *Digraph) HasEdge(x, y int) bool { return g.in[y].Test(x) }

// InNeighbors returns the live in-neighbor set of y; callers must not
// mutate it.
func (g *Digraph) InNeighbors(y int) *bitset.Set { return g.in[y] }

// EdgeCount returns the number of edges (self-loops included).
func (g *Digraph) EdgeCount() int {
	c := 0
	for _, s := range g.in {
		c += s.Count()
	}
	return c
}

// Product returns g ∘ h per Definition 2.1: (x,y) present iff ∃z with
// (x,z) ∈ g and (z,y) ∈ h. Column-wise: in_result(y) = ⋃ in_g(z) over
// z ∈ in_h(y).
func (g *Digraph) Product(h *Digraph) *Digraph {
	if g.n != h.n {
		panic(fmt.Sprintf("graph: size mismatch %d != %d", g.n, h.n))
	}
	out := New(g.n)
	for y := 0; y < g.n; y++ {
		dst := out.in[y]
		h.in[y].ForEach(func(z int) bool {
			dst.Union(g.in[z])
			return true
		})
	}
	return out
}

// IsNonsplit reports whether every pair of vertices has a common
// in-neighbor (Charron-Bost–Schiper). Pairs include (v, v), which requires
// in(v) to be non-empty.
func (g *Digraph) IsNonsplit() bool {
	for u := 0; u < g.n; u++ {
		if g.in[u].Empty() {
			return false
		}
		for v := u + 1; v < g.n; v++ {
			if !g.in[u].Intersects(g.in[v]) {
				return false
			}
		}
	}
	return true
}

// HasSelfLoops reports whether every vertex carries a self-loop.
func (g *Digraph) HasSelfLoops() bool {
	for v := 0; v < g.n; v++ {
		if !g.in[v].Test(v) {
			return false
		}
	}
	return true
}

// outAdj materializes out-adjacency lists for BFS.
func (g *Digraph) outAdj() [][]int {
	adj := make([][]int, g.n)
	for y := 0; y < g.n; y++ {
		g.in[y].ForEach(func(x int) bool {
			adj[x] = append(adj[x], y)
			return true
		})
	}
	return adj
}

// Distances returns BFS hop distances from src along directed edges;
// unreachable vertices get −1.
func (g *Digraph) Distances(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	adj := g.outAdj()
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Eccentricity returns the maximum distance from src to any vertex, or −1
// if some vertex is unreachable from src.
func (g *Digraph) Eccentricity(src int) int {
	ecc := 0
	for _, d := range g.Distances(src) {
		if d < 0 {
			return -1
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Radius returns the minimum eccentricity over vertices that reach every
// vertex, or −1 if no vertex reaches all others. For nonsplit graphs this
// is the quantity bounded by O(log log n) in Függer–Nowak–Winkler.
func (g *Digraph) Radius() int {
	radius := -1
	for v := 0; v < g.n; v++ {
		if e := g.Eccentricity(v); e >= 0 && (radius < 0 || e < radius) {
			radius = e
		}
	}
	return radius
}

// Roots returns the vertices that reach every vertex, in increasing order.
func (g *Digraph) Roots() []int {
	var roots []int
	for v := 0; v < g.n; v++ {
		if g.Eccentricity(v) >= 0 {
			roots = append(roots, v)
		}
	}
	return roots
}

// IsRooted reports whether some vertex reaches every vertex.
func (g *Digraph) IsRooted() bool {
	for v := 0; v < g.n; v++ {
		if g.Eccentricity(v) >= 0 {
			return true
		}
	}
	return false
}

// RandomNonsplit returns a random nonsplit graph on n vertices with
// self-loops: a random "kernel" vertex k receives an out-edge to every
// vertex (making k a common in-neighbor of every pair), and every other
// ordered pair receives an edge independently with probability p. The
// kernel construction guarantees nonsplitness for any p, including 0.
func RandomNonsplit(n int, p float64, src *rng.Source) *Digraph {
	if n <= 0 {
		panic("graph: RandomNonsplit needs n >= 1")
	}
	g := New(n)
	k := src.Intn(n)
	for v := 0; v < n; v++ {
		g.in[v].Set(v)
		g.in[v].Set(k)
	}
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			if x != y && src.Float64() < p {
				g.in[y].Set(x)
			}
		}
	}
	return g
}

// ProductOfTrees returns the product of the given round graphs (trees with
// self-loops), left to right. It panics if the trees disagree on n or the
// list is empty.
func ProductOfTrees(trees []*tree.Tree) *Digraph {
	if len(trees) == 0 {
		panic("graph: ProductOfTrees of empty list")
	}
	g := FromTree(trees[0])
	for _, t := range trees[1:] {
		g = g.Product(FromTree(t))
	}
	return g
}
