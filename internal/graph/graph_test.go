package graph

import (
	"testing"
	"testing/quick"

	"dyntreecast/internal/boolmat"
	"dyntreecast/internal/rng"
	"dyntreecast/internal/tree"
)

func TestFromTree(t *testing.T) {
	g := FromTree(tree.IdentityPath(3))
	if !g.HasSelfLoops() {
		t.Error("round graph missing self-loops")
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Error("tree edges missing")
	}
	if g.HasEdge(0, 2) {
		t.Error("unexpected transitive edge")
	}
	if got := g.EdgeCount(); got != 5 {
		t.Errorf("EdgeCount = %d, want 5", got)
	}
}

func TestMatrixRoundTrip(t *testing.T) {
	src := rng.New(1)
	tr := tree.Random(9, src)
	g := FromTree(tr)
	if !FromMatrix(g.Matrix()).Matrix().Equal(g.Matrix()) {
		t.Error("Digraph <-> Matrix round trip failed")
	}
	if !g.Matrix().Equal(boolmat.FromTree(tr)) {
		t.Error("graph.FromTree disagrees with boolmat.FromTree")
	}
}

func TestProductMatchesMatrixProduct(t *testing.T) {
	src := rng.New(2)
	for i := 0; i < 20; i++ {
		a := FromTree(tree.Random(8, src))
		b := FromTree(tree.Random(8, src))
		got := a.Product(b).Matrix()
		want := a.Matrix().Product(b.Matrix())
		if !got.Equal(want) {
			t.Fatalf("product mismatch:\n%v\nvs\n%v", got, want)
		}
	}
}

func TestProductSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(3).Product(New(4))
}

func TestIsNonsplit(t *testing.T) {
	// A star with self-loops is nonsplit: the root is a common in-neighbor
	// of every pair.
	star, _ := tree.Star(5, 0)
	if !FromTree(star).IsNonsplit() {
		t.Error("star round graph should be nonsplit")
	}
	// A path on >= 4 vertices is not: two deep vertices in different
	// "generations" lack a common in-neighbor.
	if FromTree(tree.IdentityPath(4)).IsNonsplit() {
		t.Error("path round graph should not be nonsplit")
	}
	// Graph with an isolated (no in-edge) vertex is not nonsplit.
	g := New(2)
	g.AddEdge(0, 0)
	if g.IsNonsplit() {
		t.Error("vertex with empty in-set should break nonsplitness")
	}
}

func TestProductOfTreesNonsplit(t *testing.T) {
	// Simulation lemma of Charron-Bost–Függer–Nowak: the product of any
	// n−1 rooted trees (with self-loops) is nonsplit. Empirical check over
	// random sequences for several n (experiment E6).
	src := rng.New(3)
	for _, n := range []int{2, 3, 5, 8, 12} {
		for trial := 0; trial < 25; trial++ {
			trees := make([]*tree.Tree, n-1)
			for i := range trees {
				trees[i] = tree.Random(n, src)
			}
			if !ProductOfTrees(trees).IsNonsplit() {
				t.Fatalf("n=%d trial %d: product of %d trees not nonsplit", n, trial, n-1)
			}
		}
	}
}

func TestProductOfTreesPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	ProductOfTrees(nil)
}

func TestDistances(t *testing.T) {
	g := FromTree(tree.IdentityPath(4))
	d := g.Distances(0)
	for v, want := range []int{0, 1, 2, 3} {
		if d[v] != want {
			t.Errorf("dist(0,%d) = %d, want %d", v, d[v], want)
		}
	}
	d = g.Distances(2)
	if d[0] != -1 || d[1] != -1 {
		t.Error("upstream vertices should be unreachable")
	}
	if d[3] != 1 {
		t.Errorf("dist(2,3) = %d, want 1", d[3])
	}
}

func TestEccentricityRadiusRoots(t *testing.T) {
	g := FromTree(tree.IdentityPath(4))
	if got := g.Eccentricity(0); got != 3 {
		t.Errorf("Eccentricity(0) = %d, want 3", got)
	}
	if got := g.Eccentricity(1); got != -1 {
		t.Errorf("Eccentricity(1) = %d, want -1", got)
	}
	if got := g.Radius(); got != 3 {
		t.Errorf("Radius = %d, want 3", got)
	}
	if got := g.Roots(); len(got) != 1 || got[0] != 0 {
		t.Errorf("Roots = %v, want [0]", got)
	}
	if !g.IsRooted() {
		t.Error("path should be rooted")
	}

	// Two disjoint self-loops: nobody reaches everyone.
	h := New(2)
	h.AddEdge(0, 0)
	h.AddEdge(1, 1)
	if h.IsRooted() {
		t.Error("disconnected graph reported rooted")
	}
	if got := h.Radius(); got != -1 {
		t.Errorf("Radius of disconnected graph = %d, want -1", got)
	}
}

func TestRandomNonsplit(t *testing.T) {
	src := rng.New(5)
	for _, n := range []int{1, 2, 5, 20} {
		for _, p := range []float64{0, 0.1, 0.5} {
			g := RandomNonsplit(n, p, src)
			if !g.IsNonsplit() {
				t.Errorf("RandomNonsplit(%d, %v) not nonsplit", n, p)
			}
			if !g.HasSelfLoops() {
				t.Errorf("RandomNonsplit(%d, %v) missing self-loops", n, p)
			}
		}
	}
}

func TestNonsplitRadiusSmall(t *testing.T) {
	// Függer–Nowak–Winkler: nonsplit graphs have small rooted radius —
	// O(log log n) for the kernel-style family. Check the radius is tiny
	// compared to n for our generator.
	src := rng.New(6)
	for _, n := range []int{10, 50, 200} {
		g := RandomNonsplit(n, 0.05, src)
		r := g.Radius()
		if r < 0 {
			t.Fatalf("n=%d: nonsplit graph has no root", n)
		}
		if r > 3 {
			t.Errorf("n=%d: kernel nonsplit radius = %d, expected <= 3", n, r)
		}
	}
}

func TestPropertyProductAssociative(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 2 + src.Intn(10)
		a := FromTree(tree.Random(n, src))
		b := FromTree(tree.Random(n, src))
		c := FromTree(tree.Random(n, src))
		return a.Product(b).Product(c).Matrix().Equal(a.Product(b.Product(c)).Matrix())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyTreeRoundGraphIsRooted(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 1 + src.Intn(20)
		tr := tree.Random(n, src)
		g := FromTree(tr)
		roots := g.Roots()
		return len(roots) == 1 && roots[0] == tr.Root()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkIsNonsplit(b *testing.B) {
	src := rng.New(1)
	g := RandomNonsplit(256, 0.05, src)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.IsNonsplit()
	}
}

func BenchmarkProduct(b *testing.B) {
	src := rng.New(1)
	g := FromTree(tree.Random(256, src))
	h := FromTree(tree.Random(256, src))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.Product(h)
	}
}
