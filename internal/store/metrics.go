package store

import "dyntreecast/internal/metrics"

// Warehouse instruments (DESIGN.md §3h): footprint and index gauges kept
// current by Open/ingest/GC, counters for the two write paths, and the
// query-latency histogram the /results endpoints feed.
var (
	gBytes = metrics.Default.Gauge("store_cell_bytes",
		"Bytes held in the warehouse cell store (the GC'd area).")
	gRows = metrics.Default.Gauge("store_rows",
		"Queryable cell rows in the warehouse index.")
	gCampaigns = metrics.Default.Gauge("store_campaigns",
		"Campaign manifests in the warehouse index.")
	mIngests = metrics.Default.Counter("store_ingests_total",
		"Campaign manifests written (ingests and backfills, including re-ingests).")
	mGCRuns = metrics.Default.Counter("store_gc_runs_total",
		"Retention passes that evicted at least one cell.")
	mGCReclaimed = metrics.Default.Counter("store_gc_reclaimed_bytes_total",
		"Cell bytes reclaimed by retention GC.")
	hQuery = metrics.Default.Histogram("store_query_seconds",
		"Warehouse query latency.", metrics.ExpBuckets(0.0001, 4, 8))
)
