package store

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"dyntreecast/internal/campaign"
)

// ageCells backdates every cell of the campaign's spec by d so GC order
// is deterministic in tests.
func ageCells(t *testing.T, s *Store, spec campaign.Spec, d time.Duration) {
	t.Helper()
	jobs, err := spec.CellJobs()
	if err != nil {
		t.Fatal(err)
	}
	when := time.Now().Add(-d)
	for _, j := range jobs {
		p := filepath.Join(s.Root(), "cells", j.Key[:2], j.Key)
		if err := os.Chtimes(p, when, when); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGCEvictsLRUFirst: under a budget that forces eviction, the colder
// campaign's cells go first and the warmer one's bytes survive.
func TestGCEvictsLRUFirst(t *testing.T) {
	s := openStore(t)
	cold := testSpec()
	warm := testSpec()
	warm.Seed++ // distinct content addresses
	runInto(t, s, "cold", cold)
	runInto(t, s, "warm", warm)
	ageCells(t, s, cold, time.Hour)

	size, err := s.Size()
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.GC(size / 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evicted == 0 || res.After > size/2 || res.Before != size {
		t.Fatalf("GC = %+v (size %d)", res, size)
	}
	coldJobs, _ := cold.CellJobs()
	for _, j := range coldJobs {
		if _, ok, _ := s.Cache().Get(j.Key); ok {
			t.Errorf("cold cell %s survived while warmer cells existed", j.Cell)
		}
	}
	warmJobs, _ := warm.CellJobs()
	for _, j := range warmJobs {
		if _, ok, _ := s.Cache().Get(j.Key); !ok {
			t.Errorf("warm cell %s evicted before colder cells", j.Cell)
		}
	}
	// Evicted results stay queryable: stats live in the manifest.
	if rows := allRows(t, s, Filter{Campaign: "cold"}); len(rows) != 4 {
		t.Errorf("evicted campaign has %d rows, want 4", len(rows))
	}
}

// TestGCNeverEvictsPinned is the retention acceptance criterion: a
// pinned campaign's cells survive even a zero budget.
func TestGCNeverEvictsPinned(t *testing.T) {
	s := openStore(t)
	pinned := testSpec()
	loose := testSpec()
	loose.Seed++
	runInto(t, s, "pinned", pinned)
	runInto(t, s, "loose", loose)
	if err := s.Pin("pinned", true); err != nil {
		t.Fatal(err)
	}

	res, err := s.GC(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pinned != 4 || res.Evicted != 4 {
		t.Fatalf("GC = %+v, want 4 pinned / 4 evicted", res)
	}
	jobs, _ := pinned.CellJobs()
	for _, j := range jobs {
		if _, ok, _ := s.Cache().Get(j.Key); !ok {
			t.Errorf("pinned cell %s evicted", j.Cell)
		}
	}
	jobs, _ = loose.CellJobs()
	for _, j := range jobs {
		if _, ok, _ := s.Cache().Get(j.Key); ok {
			t.Errorf("unpinned cell %s survived a zero budget", j.Cell)
		}
	}
	// Under budget: nothing to do, nothing evicted.
	size, _ := s.Size()
	if res, _ := s.GC(size + 1); res.Evicted != 0 {
		t.Errorf("under-budget GC evicted %d", res.Evicted)
	}
}

// TestGCReadHitKeepsCellWarm: Store.Cache bumps recency on Get, so a
// freshly read cell outlives an untouched contemporary.
func TestGCReadHitKeepsCellWarm(t *testing.T) {
	s := openStore(t)
	spec := testSpec()
	runInto(t, s, "run", spec)
	ageCells(t, s, spec, time.Hour)

	jobs, _ := spec.CellJobs()
	hot := jobs[0]
	if _, ok, err := s.Cache().Get(hot.Key); !ok || err != nil {
		t.Fatalf("Get(%s): ok=%v err=%v", hot.Cell, ok, err)
	}
	// Budget just big enough for one cell: only the touched one fits.
	data, _, _ := s.Cache().Get(hot.Key)
	if _, err := s.GC(int64(len(data))); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Cache().Get(hot.Key); !ok {
		t.Error("recently read cell was evicted")
	}
	for _, j := range jobs[1:] {
		if _, ok, _ := s.Cache().Get(j.Key); ok {
			t.Errorf("stale cell %s survived", j.Cell)
		}
	}
}

// TestEvictedCellRecomputesByteIdentically closes the retention loop: an
// evicted cell re-runs to the exact bytes GC removed.
func TestEvictedCellRecomputesByteIdentically(t *testing.T) {
	s := openStore(t)
	spec := testSpec()
	runInto(t, s, "run", spec)
	jobs, _ := spec.CellJobs()
	before := make(map[string][]byte)
	for _, j := range jobs {
		data, _, _ := s.Cache().Get(j.Key)
		before[j.Key] = data
	}
	if _, err := s.GC(0); err != nil {
		t.Fatal(err)
	}
	out, err := campaign.RunSpec(context.Background(), spec, campaign.Config{Cache: s.Cache()})
	if err != nil {
		t.Fatal(err)
	}
	if out.CacheHits != 0 {
		t.Fatalf("post-GC run hit cache %d times, want 0", out.CacheHits)
	}
	for _, j := range jobs {
		data, ok, _ := s.Cache().Get(j.Key)
		if !ok || string(data) != string(before[j.Key]) {
			t.Errorf("cell %s did not recompute byte-identically", j.Cell)
		}
	}
}

// TestStartGCStopsCleanly is the graceful-shutdown satellite's core: the
// stop function blocks until the ticker goroutine has exited, leaving no
// goroutine behind.
func TestStartGCStopsCleanly(t *testing.T) {
	s := openStore(t)
	runInto(t, s, "run", testSpec())
	before := runtime.NumGoroutine()

	var mu sync.Mutex
	var logs []string
	logf := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		logs = append(logs, fmt.Sprintf(format, args...))
	}
	stop := s.StartGC(time.Millisecond, 0, logf)
	time.Sleep(20 * time.Millisecond) // let at least one tick fire
	stop()

	// The first pass evicts everything unpinned and must have logged it.
	mu.Lock()
	logged := len(logs)
	mu.Unlock()
	if logged == 0 {
		t.Error("eviction pass produced no log line")
	}
	// After stop returns, the ticker goroutine is gone. Allow scheduler
	// noise from unrelated runtime goroutines with a settle loop.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Errorf("goroutines after stop = %d, want <= %d", now, before)
	}
	// Stopping twice-started GCs independently is fine; a second stop of
	// a fresh loop returns promptly even when no tick ever fired.
	stop2 := s.StartGC(time.Hour, 0, nil)
	done := make(chan struct{})
	go func() { stop2(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("stop did not return")
	}
}

// TestSizeAndScanSkipTempFiles: an in-flight temp file is neither
// counted nor evicted.
func TestSizeAndScanTempFiles(t *testing.T) {
	s := openStore(t)
	runInto(t, s, "run", testSpec())
	size, err := s.Size()
	if err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(s.Root(), "cells", ".inflight.tmp1")
	if err := os.WriteFile(tmp, []byte(strings.Repeat("x", 4096)), 0o644); err != nil {
		t.Fatal(err)
	}
	size2, err := s.Size()
	if err != nil {
		t.Fatal(err)
	}
	if size2 != size {
		t.Errorf("temp file counted: %d != %d", size2, size)
	}
	if _, err := s.GC(0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); err != nil {
		t.Errorf("temp file evicted: %v", err)
	}
}
