// Package store is the results warehouse behind campaignd (DESIGN.md
// §3h): an indexed, garbage-collected, queryable store over completed
// campaigns, the piece that turns one-shot CLI artifact dumps into a
// long-lived multi-tenant result service.
//
// A Store owns one directory with three areas:
//
//	cells/      the cell byte store — the exact content-addressed layout
//	            of internal/campaign/cache's Dir backend, holding each
//	            grid cell's per-trial measurements under its content
//	            address. Store.Cache() exposes it as the campaign cell
//	            cache, so a daemon running with -store caches INTO the
//	            warehouse: one directory, one retention budget, and
//	            ingested cells round-trip bit-identically because the
//	            stored bytes ARE the cache entries.
//	campaigns/  one JSON manifest per ingested campaign: its canonical
//	            spec identity plus every cell's coordinates (adversary
//	            family, params, n, goal, engine version), content
//	            address, and aggregated stats.
//	pins.json   the campaign ids exempt from retention GC.
//
// Open rebuilds the in-memory index from the manifests alone, so a
// kill-and-restart loses nothing. Queries (query.go) page through the
// index with stable cursors; retention (gc.go) evicts cell bytes
// least-recently-used-first under a byte budget, never touching pinned
// campaigns or manifests — stats survive eviction, and an evicted cell
// is simply recomputed on the next cache miss, byte-identically, by the
// campaign determinism contract.
package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"dyntreecast/internal/campaign"
	"dyntreecast/internal/campaign/cache"
	"dyntreecast/internal/stats"
)

// manifestFormat tags manifest files so foreign JSON in campaigns/ is
// rejected instead of misread.
const manifestFormat = "dyntreecast-store/1"

// Ingestion sources recorded in manifests.
const (
	sourceCampaign = "campaign" // ingested from a finished run with cell bytes
	sourceJSONL    = "jsonl"    // backfilled from a JSONL artifact (stats only)
)

// rowStats is the aggregated summary of one cell, the same numbers the
// campaign artifact carries.
type rowStats struct {
	Count  int     `json:"count"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	P50    float64 `json:"p50"`
	P99    float64 `json:"p99"`
}

// manifestCell is one cell of a manifest: coordinates, content address,
// and stats.
type manifestCell struct {
	Cell      string         `json:"cell"`
	Key       string         `json:"key,omitempty"` // content address; "" for stats-only rows
	Adversary string         `json:"adversary"`
	Params    map[string]any `json:"params,omitempty"`
	N         int            `json:"n"`
	Trials    int            `json:"trials"`
	Stats     rowStats       `json:"stats"`
}

// manifest is the on-disk record of one ingested campaign.
type manifest struct {
	Format   string         `json:"format"`
	ID       string         `json:"id"`
	Source   string         `json:"source"`
	Engine   string         `json:"engine,omitempty"`
	SpecHash string         `json:"spec_hash,omitempty"`
	Goal     string         `json:"goal"`
	Seed     uint64         `json:"seed,omitempty"`
	Cells    []manifestCell `json:"cells"`
}

// Store is the warehouse handle. Safe for concurrent use: queries take a
// read lock over the index, ingests and pin changes a write lock, and GC
// reads the index but touches only the filesystem.
type Store struct {
	root  string
	cells *cache.Dir

	mu        sync.RWMutex
	manifests map[string]*manifest
	rows      []Row // sorted by (Campaign, Cell) — the cursor order
	pins      map[string]bool

	// exactMu guards the per-store memo of exact gamesolver values
	// served by Curves (query.go). Values for n beyond the implicit
	// solve ceiling come from solve tables under solvetables/.
	exactMu   sync.Mutex
	exactVals map[int]int
}

// Open opens (creating if needed) the warehouse rooted at dir and
// rebuilds the index from its manifests. Unreadable or foreign manifest
// files are an error — a warehouse with half an index would silently
// misanswer queries.
func Open(dir string) (*Store, error) {
	cells, err := cache.NewDir(filepath.Join(dir, "cells"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "campaigns"), 0o755); err != nil {
		return nil, fmt.Errorf("store: creating campaigns dir: %w", err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "solvetables"), 0o755); err != nil {
		return nil, fmt.Errorf("store: creating solvetables dir: %w", err)
	}
	s := &Store{
		root:      dir,
		cells:     cells,
		manifests: make(map[string]*manifest),
		pins:      make(map[string]bool),
		exactVals: make(map[int]int),
	}
	if err := s.loadPins(); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(filepath.Join(dir, "campaigns"))
	if err != nil {
		return nil, fmt.Errorf("store: reading campaigns dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		m, err := loadManifest(filepath.Join(dir, "campaigns", e.Name()))
		if err != nil {
			return nil, err
		}
		s.manifests[m.ID] = m
	}
	s.reindex()
	if _, err := s.Size(); err != nil {
		return nil, err
	}
	return s, nil
}

// Root returns the warehouse directory.
func (s *Store) Root() string { return s.root }

// SolveTableDir is where the warehouse keeps persisted exact-solver
// tables (gamesolver.SaveTable format), one per n.
func (s *Store) SolveTableDir() string { return filepath.Join(s.root, "solvetables") }

// SolveTablePath names the solve table for one n, matching the layout
// cmd/exact-solver -table writes.
func (s *Store) SolveTablePath(n int) string {
	return filepath.Join(s.SolveTableDir(), fmt.Sprintf("n%d.solvetable", n))
}

func loadManifest(path string) (*manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: reading manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	if m.Format != manifestFormat || m.ID == "" {
		return nil, fmt.Errorf("store: %s is not a %s manifest", path, manifestFormat)
	}
	return &m, nil
}

// saveManifest writes m atomically (temp + rename, like cell entries) so
// a killed writer never leaves a torn manifest for the next Open.
func (s *Store) saveManifest(m *manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encoding manifest %s: %w", m.ID, err)
	}
	dir := filepath.Join(s.root, "campaigns")
	tmp, err := os.CreateTemp(dir, "."+m.ID+".tmp*")
	if err != nil {
		return fmt.Errorf("store: manifest temp file: %w", err)
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: writing manifest %s: %w", m.ID, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: closing manifest %s: %w", m.ID, err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, m.ID+".json")); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: publishing manifest %s: %w", m.ID, err)
	}
	return nil
}

// checkID vets a campaign id for use as a manifest filename: it must not
// traverse paths or collide with the hidden temp files.
func checkID(id string) error {
	if id == "" || len(id) > 120 {
		return fmt.Errorf("store: invalid campaign id %q", id)
	}
	for i, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case (r == '.' || r == '_' || r == '-') && i > 0:
		default:
			return fmt.Errorf("store: invalid campaign id %q (want [a-zA-Z0-9._-], not starting with punctuation)", id)
		}
	}
	return nil
}

// install registers m in the index (replacing any previous manifest with
// the same id) after persisting it.
func (s *Store) install(m *manifest) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.saveManifest(m); err != nil {
		return err
	}
	s.manifests[m.ID] = m
	s.reindex()
	mIngests.Inc()
	return nil
}

// reindex rebuilds the sorted row slice from the manifests. Must be
// called with mu held.
func (s *Store) reindex() {
	rows := make([]Row, 0, len(s.rows))
	for _, m := range s.manifests {
		for _, c := range m.Cells {
			rows = append(rows, Row{
				Campaign:  m.ID,
				Cell:      c.Cell,
				Adversary: c.Adversary,
				Params:    c.Params,
				N:         c.N,
				Goal:      m.Goal,
				Engine:    m.Engine,
				Key:       c.Key,
				Trials:    c.Trials,
				Count:     c.Stats.Count,
				Mean:      c.Stats.Mean,
				StdDev:    c.Stats.StdDev,
				Min:       c.Stats.Min,
				Max:       c.Stats.Max,
				P50:       c.Stats.P50,
				P99:       c.Stats.P99,
			})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].sortKey() < rows[j].sortKey() })
	s.rows = rows
	gRows.Set(float64(len(rows)))
	gCampaigns.Set(float64(len(s.manifests)))
}

// Cache returns the warehouse's cell area as a campaign cell cache:
// wiring it into campaign.Config.Cache (or server.Options.Cache) makes
// every campaign cache into the warehouse. Hits additionally bump the
// entry's recency so retention GC evicts truly cold cells first; the
// bytes themselves are exactly what an unwrapped cache.Dir would serve.
func (s *Store) Cache() cache.Cache { return touching{s.cells} }

// touching decorates the cell dir with LRU recency on read hits.
type touching struct{ dir *cache.Dir }

func (t touching) Get(key string) ([]byte, bool, error) {
	data, ok, err := t.dir.Get(key)
	if ok && err == nil {
		// Best-effort: a failed touch only ages the entry's LRU position.
		t.dir.Touch(key)
	}
	return data, ok, err
}

func (t touching) Put(key string, data []byte) error { return t.dir.Put(key, data) }

// Delete forwards eviction, keeping the campaign layer's corruption heal
// working against a store-backed cache.
func (t touching) Delete(key string) error { return t.dir.Delete(key) }

// cellEntry mirrors the campaign cache entry format: the per-trial
// measurement lists of one cell, in trial order.
type cellEntry struct {
	Cell   string `json:"cell"`
	Trials [][]struct {
		Cell  string  `json:"cell"`
		Value float64 `json:"value"`
	} `json:"trials"`
}

// statsOf aggregates a cell entry exactly the way campaign.Aggregate
// summarizes the live run — values pooled in trial order — so warehouse
// stats match the artifact's numbers bit for bit.
func statsOf(ent cellEntry, cell string) rowStats {
	var xs []float64
	for _, trial := range ent.Trials {
		for _, m := range trial {
			if m.Cell == cell {
				xs = append(xs, m.Value)
			}
		}
	}
	sum := stats.Summarize(xs)
	return rowStats{
		Count:  sum.Count,
		Mean:   sum.Mean,
		StdDev: sum.StdDev,
		Min:    sum.Min,
		Max:    sum.Max,
		P50:    stats.Percentile(xs, 50),
		P99:    stats.Percentile(xs, 99),
	}
}

// IngestOutcome ingests a finished campaign run under id: every grid
// cell of its spec whose bytes are present in the warehouse's cell area
// (they are, when the run cached through Store.Cache) becomes a queryable
// row. Shorthand for IngestSpec on the outcome's canonical spec.
func (s *Store) IngestOutcome(id string, out *campaign.Outcome) (int, error) {
	return s.IngestSpec(id, out.Spec)
}

// IngestSpec indexes the spec's grid cells under campaign id. Cells are
// read back from the cell byte store by content address: per-trial data
// is aggregated into the row's stats, and cells with no stored bytes
// (failed, cancelled, or never cached) are skipped. Returns the number
// of cells ingested; ingesting a spec none of whose cells have bytes is
// an error, not an empty campaign. Re-ingesting an id replaces it.
func (s *Store) IngestSpec(id string, spec campaign.Spec) (int, error) {
	if err := checkID(id); err != nil {
		return 0, err
	}
	canon, err := spec.Canonical()
	if err != nil {
		return 0, err
	}
	jobs, err := canon.CellJobs()
	if err != nil {
		return 0, err
	}
	goal := canon.Goal
	if goal == "" {
		goal = "broadcast"
	}
	m := &manifest{
		Format:   manifestFormat,
		ID:       id,
		Source:   sourceCampaign,
		Engine:   campaign.EngineVersion,
		SpecHash: campaign.SpecHash(canon),
		Goal:     goal,
		Seed:     canon.Seed,
	}
	for _, j := range jobs {
		data, ok, err := s.cells.Get(j.Key)
		if err != nil {
			return 0, fmt.Errorf("store: reading cell %s: %w", j.Cell, err)
		}
		if !ok {
			continue
		}
		var ent cellEntry
		if err := json.Unmarshal(data, &ent); err != nil || len(ent.Trials) != j.Trials {
			// Corrupt bytes under the content address: heal like the
			// campaign layer does and skip the cell.
			s.cells.Delete(j.Key)
			continue
		}
		sc := j.Spec.Scenarios[0]
		m.Cells = append(m.Cells, manifestCell{
			Cell:      j.Cell,
			Key:       j.Key,
			Adversary: sc.Adversary,
			Params:    sc.Params,
			N:         j.Spec.Ns[0],
			Trials:    j.Trials,
			Stats:     statsOf(ent, j.Cell),
		})
	}
	if len(m.Cells) == 0 {
		return 0, fmt.Errorf("store: campaign %s has no cell bytes to ingest (was it run with the store as its cache?)", id)
	}
	if err := s.install(m); err != nil {
		return 0, err
	}
	return len(m.Cells), nil
}

// BackfillArtifact ingests a pre-warehouse campaign from its JSON
// artifact (the cmd/campaign -format json output): the artifact supplies
// the canonical spec, and the cell bytes are copied — verbatim, so they
// round-trip bit-identically — from an existing cell cache (typically a
// cache.Dir the campaign ran against; nil skips the copy and indexes
// whatever bytes the warehouse already holds). An empty id defaults to
// the artifact's campaign name, falling back to a spec-hash-derived id.
func (s *Store) BackfillArtifact(id string, r io.Reader, from cache.Cache) (string, int, error) {
	var art struct {
		Spec campaign.Spec `json:"spec"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&art); err != nil {
		return "", 0, fmt.Errorf("store: decoding artifact: %w", err)
	}
	if id == "" {
		id = art.Spec.Name
	}
	if id == "" {
		id = "art-" + campaign.SpecHash(art.Spec)[:12]
	}
	if err := checkID(id); err != nil {
		return "", 0, err
	}
	if from != nil {
		jobs, err := art.Spec.CellJobs()
		if err != nil {
			return "", 0, err
		}
		for _, j := range jobs {
			data, ok, err := from.Get(j.Key)
			if err != nil {
				return "", 0, fmt.Errorf("store: backfill read %s: %w", j.Cell, err)
			}
			if !ok {
				continue
			}
			if err := s.cells.Put(j.Key, data); err != nil {
				return "", 0, fmt.Errorf("store: backfill copy %s: %w", j.Cell, err)
			}
		}
	}
	n, err := s.IngestSpec(id, art.Spec)
	return id, n, err
}

// jsonlRecord mirrors the campaign JSONL artifact line format.
type jsonlRecord struct {
	Campaign string  `json:"campaign"`
	Seed     uint64  `json:"seed"`
	Goal     string  `json:"goal"`
	Cell     string  `json:"cell"`
	Count    int     `json:"count"`
	Mean     float64 `json:"mean"`
	StdDev   float64 `json:"stddev"`
	Min      float64 `json:"min"`
	Max      float64 `json:"max"`
	P50      float64 `json:"p50"`
	P99      float64 `json:"p99"`
}

// BackfillJSONL ingests rows from a JSONL artifact stream. JSONL lines
// carry per-cell stats but no per-trial bytes, so the resulting rows are
// stats-only (empty content address): queryable and curve-able, but
// invisible to content-address diffing and exempt from cell GC. With a
// non-empty id every line lands in that campaign; with an empty id lines
// are grouped by their own campaign field (lines without one are an
// error). Returns the number of rows ingested.
func (s *Store) BackfillJSONL(id string, r io.Reader) (int, error) {
	if id != "" {
		if err := checkID(id); err != nil {
			return 0, err
		}
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	byID := make(map[string]*manifest)
	var order []string
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec jsonlRecord
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return 0, fmt.Errorf("store: jsonl line %d: %w", line, err)
		}
		mid := id
		if mid == "" {
			mid = rec.Campaign
		}
		if mid == "" {
			return 0, fmt.Errorf("store: jsonl line %d names no campaign (pass an id)", line)
		}
		if err := checkID(mid); err != nil {
			return 0, fmt.Errorf("store: jsonl line %d: %w", line, err)
		}
		m := byID[mid]
		if m == nil {
			goal := rec.Goal
			if goal == "" {
				goal = "broadcast"
			}
			m = &manifest{Format: manifestFormat, ID: mid, Source: sourceJSONL, Goal: goal, Seed: rec.Seed}
			byID[mid] = m
			order = append(order, mid)
		}
		adv, n, params := parseCellName(rec.Cell)
		m.Cells = append(m.Cells, manifestCell{
			Cell:      rec.Cell,
			Adversary: adv,
			Params:    params,
			N:         n,
			Trials:    rec.Count,
			Stats: rowStats{
				Count: rec.Count, Mean: rec.Mean, StdDev: rec.StdDev,
				Min: rec.Min, Max: rec.Max, P50: rec.P50, P99: rec.P99,
			},
		})
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("store: reading jsonl: %w", err)
	}
	total := 0
	for _, mid := range order {
		if err := s.install(byID[mid]); err != nil {
			return total, err
		}
		total += len(byID[mid].Cells)
	}
	if total == 0 {
		return 0, fmt.Errorf("store: jsonl stream holds no rows")
	}
	return total, nil
}

// parseCellName recovers grid coordinates from a cell display key
// ("k-leaves/n=16/k=2"): the family name, the n axis, and the remaining
// params (numbers and bools typed, anything else a string).
func parseCellName(cell string) (adversary string, n int, params map[string]any) {
	parts := strings.Split(cell, "/")
	adversary = parts[0]
	for _, p := range parts[1:] {
		name, value, ok := strings.Cut(p, "=")
		if !ok {
			continue
		}
		if name == "n" {
			n, _ = strconv.Atoi(value)
			continue
		}
		if params == nil {
			params = make(map[string]any)
		}
		switch {
		case value == "true" || value == "false":
			params[name] = value == "true"
		default:
			if f, err := strconv.ParseFloat(value, 64); err == nil {
				params[name] = f
			} else {
				params[name] = value
			}
		}
	}
	return adversary, n, params
}

// CampaignInfo summarizes one ingested campaign for listings.
type CampaignInfo struct {
	ID       string `json:"id"`
	Source   string `json:"source"`
	Engine   string `json:"engine,omitempty"`
	SpecHash string `json:"spec_hash,omitempty"`
	Goal     string `json:"goal"`
	Seed     uint64 `json:"seed,omitempty"`
	Cells    int    `json:"cells"`
	Trials   int    `json:"trials"`
	Pinned   bool   `json:"pinned"`
}

// Campaigns lists the ingested campaigns in id order.
func (s *Store) Campaigns() []CampaignInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]CampaignInfo, 0, len(s.manifests))
	for id, m := range s.manifests {
		info := CampaignInfo{
			ID: id, Source: m.Source, Engine: m.Engine, SpecHash: m.SpecHash,
			Goal: m.Goal, Seed: m.Seed, Cells: len(m.Cells), Pinned: s.pins[id],
		}
		for _, c := range m.Cells {
			info.Trials += c.Trials
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// pinsFile is the persisted pin set.
type pinsFile struct {
	Pins []string `json:"pins"`
}

func (s *Store) loadPins() error {
	data, err := os.ReadFile(filepath.Join(s.root, "pins.json"))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: reading pins: %w", err)
	}
	var pf pinsFile
	if err := json.Unmarshal(data, &pf); err != nil {
		return fmt.Errorf("store: pins.json: %w", err)
	}
	for _, id := range pf.Pins {
		s.pins[id] = true
	}
	return nil
}

// Pin marks (or, with on == false, unmarks) a campaign as exempt from
// retention GC and persists the pin set. Pinning an id that has not been
// ingested yet is allowed — the pin takes effect when it is.
func (s *Store) Pin(id string, on bool) error {
	if err := checkID(id); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if on {
		s.pins[id] = true
	} else {
		delete(s.pins, id)
	}
	pf := pinsFile{Pins: make([]string, 0, len(s.pins))}
	for p := range s.pins {
		pf.Pins = append(pf.Pins, p)
	}
	sort.Strings(pf.Pins)
	data, err := json.MarshalIndent(pf, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encoding pins: %w", err)
	}
	tmp := filepath.Join(s.root, ".pins.json.tmp")
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("store: writing pins: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.root, "pins.json")); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: publishing pins: %w", err)
	}
	return nil
}

// Pins returns the pinned campaign ids, sorted.
func (s *Store) Pins() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.pins))
	for id := range s.pins {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
