package store

import (
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// GCResult reports one retention pass.
type GCResult struct {
	Before    int64 `json:"before_bytes"`    // cell bytes before the pass
	After     int64 `json:"after_bytes"`     // cell bytes after the pass
	Scanned   int   `json:"scanned"`         // cell files seen
	Evicted   int   `json:"evicted"`         // cell files removed
	Reclaimed int64 `json:"reclaimed_bytes"` // bytes freed
	Pinned    int   `json:"pinned_cells"`    // cells exempt via pinned campaigns
}

// cellFile is one stored cell's GC view.
type cellFile struct {
	key   string
	size  int64
	mtime time.Time
}

// scanCells walks the cell byte store, skipping temp files mid-write.
func (s *Store) scanCells() ([]cellFile, error) {
	var files []cellFile
	root := s.cells.Root()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || strings.HasPrefix(d.Name(), ".") {
			return err
		}
		info, err := d.Info()
		if err != nil {
			// Raced with an eviction or a rename; the file is gone.
			return nil
		}
		files = append(files, cellFile{key: d.Name(), size: info.Size(), mtime: info.ModTime()})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: scanning cells: %w", err)
	}
	return files, nil
}

// Size returns the warehouse's current cell-byte footprint and refreshes
// the size gauge.
func (s *Store) Size() (int64, error) {
	files, err := s.scanCells()
	if err != nil {
		return 0, err
	}
	var total int64
	for _, f := range files {
		total += f.size
	}
	gBytes.Set(float64(total))
	return total, nil
}

// pinnedKeys returns the content addresses protected by pinned
// campaigns.
func (s *Store) pinnedKeys() map[string]bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make(map[string]bool)
	for id := range s.pins {
		m := s.manifests[id]
		if m == nil {
			continue
		}
		for _, c := range m.Cells {
			if c.Key != "" {
				keys[c.Key] = true
			}
		}
	}
	return keys
}

// GC enforces the byte budget on the cell store: while the footprint
// exceeds budget, the least recently used unpinned cell file is evicted
// (mtime is the recency signal — Store.Cache bumps it on every read
// hit). Manifests and their stats are never touched, so evicted results
// stay queryable; only re-runs pay a recompute, and by the determinism
// contract they repay it byte-identically. A budget of 0 or less means
// "evict everything unpinned" — useful for tests and explicit purges; to
// skip GC entirely, don't call it.
func (s *Store) GC(budget int64) (GCResult, error) {
	files, err := s.scanCells()
	if err != nil {
		return GCResult{}, err
	}
	res := GCResult{Scanned: len(files)}
	for _, f := range files {
		res.Before += f.size
	}
	res.After = res.Before
	pinned := s.pinnedKeys()

	// Oldest first; key breaks mtime ties so the order is deterministic.
	sort.Slice(files, func(i, j int) bool {
		if !files[i].mtime.Equal(files[j].mtime) {
			return files[i].mtime.Before(files[j].mtime)
		}
		return files[i].key < files[j].key
	})
	for _, f := range files {
		if res.After <= budget {
			break
		}
		if pinned[f.key] {
			res.Pinned++
			continue
		}
		if err := s.cells.Delete(f.key); err != nil {
			return res, err
		}
		res.Evicted++
		res.Reclaimed += f.size
		res.After -= f.size
	}
	if res.Evicted > 0 {
		mGCRuns.Inc()
		mGCReclaimed.Add(uint64(res.Reclaimed))
	}
	gBytes.Set(float64(res.After))
	return res, nil
}

// StartGC runs GC under the budget now and then every interval until the
// returned stop function is called. Stop blocks until the ticker
// goroutine has fully exited — no goroutine survives it, which is what
// lets a daemon's graceful shutdown assert leak-freedom. Pass a logf
// (e.g. log.Printf) for eviction reports; nil silences them.
func (s *Store) StartGC(interval time.Duration, budget int64, logf func(format string, args ...any)) (stop func()) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	run := func() {
		res, err := s.GC(budget)
		switch {
		case err != nil:
			logf("store: gc: %v", err)
		case res.Evicted > 0:
			logf("store: gc evicted %d cells (%d bytes), %d -> %d bytes", res.Evicted, res.Reclaimed, res.Before, res.After)
		}
	}
	done := make(chan struct{})
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		run()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				run()
			}
		}
	}()
	return func() {
		close(done)
		<-stopped
	}
}
