package store

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"os"
	"strings"
	"testing"

	"dyntreecast/internal/campaign"
	"dyntreecast/internal/gamesolver"
)

// TestQueryFilters exercises every Filter axis.
func TestQueryFilters(t *testing.T) {
	s := openStore(t)
	runInto(t, s, "run1", testSpec())
	gossip := testSpec()
	gossip.Goal = "gossip"
	runInto(t, s, "run2", gossip)

	cases := []struct {
		name string
		f    Filter
		want int
	}{
		{"all", Filter{}, 8},
		{"campaign", Filter{Campaign: "run1"}, 4},
		{"adversary", Filter{Adversary: "random-path"}, 4},
		{"goal", Filter{Goal: "gossip"}, 4},
		{"exact n", Filter{N: 8}, 4},
		{"n range", Filter{NMin: 5, NMax: 8}, 4},
		{"nmin excludes all", Filter{NMin: 100}, 0},
		{"compose", Filter{Campaign: "run2", Adversary: "random-tree", N: 4}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := allRows(t, s, tc.f); len(got) != tc.want {
				t.Errorf("rows = %d, want %d", len(got), tc.want)
			}
		})
	}

	if _, err := s.Query(Filter{Campaign: "missing"}); err == nil {
		t.Error("query of an unknown campaign succeeded")
	}
	if _, err := s.Query(Filter{Cursor: "not!base64!"}); err == nil {
		t.Error("malformed cursor accepted")
	}
}

// TestPaginationWalk: a small page size walks every row exactly once, in
// (campaign, cell) order, and the last page has no cursor.
func TestPaginationWalk(t *testing.T) {
	s := openStore(t)
	runInto(t, s, "run1", testSpec())
	runInto(t, s, "run2", testSpec())

	seen := make(map[string]int)
	f := Filter{Limit: 3}
	var prev string
	pages := 0
	for {
		page, err := s.Query(f)
		if err != nil {
			t.Fatal(err)
		}
		pages++
		for _, r := range page.Rows {
			k := r.sortKey()
			seen[k]++
			if k <= prev {
				t.Errorf("row %q out of order (after %q)", k, prev)
			}
			prev = k
		}
		if page.NextCursor == "" {
			break
		}
		f.Cursor = page.NextCursor
	}
	if len(seen) != 8 || pages != 3 {
		t.Errorf("walked %d distinct rows in %d pages, want 8 in 3", len(seen), pages)
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("row %q delivered %d times", k, n)
		}
	}
}

// TestCursorStableUnderConcurrentIngest is the pagination satellite: a
// page walk started before an ingest neither duplicates nor skips any
// row that existed when it started, no matter where the new campaign
// sorts.
func TestCursorStableUnderConcurrentIngest(t *testing.T) {
	s := openStore(t)
	runInto(t, s, "mid", testSpec())
	preexisting := allRows(t, s, Filter{})

	// First page, then ingests landing before and after "mid" in cursor
	// order, then the rest of the walk.
	page, err := s.Query(Filter{Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	rows := page.Rows
	runInto(t, s, "aaa-before", testSpec())
	runInto(t, s, "zzz-after", testSpec())
	f := Filter{Limit: 1, Cursor: page.NextCursor}
	for f.Cursor != "" {
		page, err := s.Query(f)
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, page.Rows...)
		f.Cursor = page.NextCursor
	}

	got := make(map[string]int)
	for _, r := range rows {
		got[r.sortKey()]++
	}
	for _, r := range preexisting {
		if got[r.sortKey()] != 1 {
			t.Errorf("pre-existing row %q delivered %d times, want exactly once", r.sortKey(), got[r.sortKey()])
		}
	}
	// Rows sorting after the walker's position may appear; rows sorting
	// before it must not be double-counted — every delivered row is
	// delivered once.
	for k, n := range got {
		if n != 1 {
			t.Errorf("row %q delivered %d times", k, n)
		}
	}
}

// TestDiffWarmRerunIsEmpty is the acceptance criterion: a campaign
// diffed against its cache-warm re-run elides every cell.
func TestDiffWarmRerunIsEmpty(t *testing.T) {
	s := openStore(t)
	spec := testSpec()
	out := runInto(t, s, "cold", spec)
	warm, err := campaign.RunSpec(context.Background(), spec, campaign.Config{Cache: s.Cache()})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Executed != 0 {
		t.Fatalf("re-run executed %d jobs, want 0 (all from warehouse)", warm.Executed)
	}
	if _, err := s.IngestOutcome("warm", warm); err != nil {
		t.Fatal(err)
	}
	d, err := s.Diff("cold", "warm")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Entries) != 0 || d.Identical != len(out.Cells) {
		t.Errorf("warm diff: %d entries, %d identical; want 0, %d", len(d.Entries), d.Identical, len(out.Cells))
	}
	// Self-diff is empty too.
	if d, _ := s.Diff("cold", "cold"); len(d.Entries) != 0 {
		t.Errorf("self-diff has %d entries", len(d.Entries))
	}
}

// TestDiffDetectsChangesAndAsymmetry: a different seed changes every
// shared cell's content address; grid asymmetry shows up as only_a /
// only_b.
func TestDiffDetectsChangesAndAsymmetry(t *testing.T) {
	s := openStore(t)
	spec := testSpec()
	runInto(t, s, "a", spec)

	other := spec
	other.Seed++
	other.Ns = []int{4, 16} // shares n=4, drops n=8, adds n=16
	runInto(t, s, "b", other)

	d, err := s.Diff("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if d.Identical != 0 {
		t.Errorf("identical = %d, want 0 (seed changed)", d.Identical)
	}
	counts := map[string]int{}
	for _, e := range d.Entries {
		counts[e.Status]++
		switch e.Status {
		case "changed":
			if e.A == nil || e.B == nil || e.A.Key == e.B.Key {
				t.Errorf("changed entry %s malformed", e.Cell)
			}
		case "only_a":
			if e.A == nil || e.B != nil {
				t.Errorf("only_a entry %s malformed", e.Cell)
			}
		case "only_b":
			if e.B == nil || e.A != nil {
				t.Errorf("only_b entry %s malformed", e.Cell)
			}
		}
	}
	if counts["changed"] != 2 || counts["only_a"] != 2 || counts["only_b"] != 2 {
		t.Errorf("diff statuses = %v, want 2 of each", counts)
	}
	if _, err := s.Diff("a", "missing"); err == nil {
		t.Error("diff against an unknown campaign succeeded")
	}
}

// TestDiffStatsOnlyRows: campaigns without content addresses fall back
// to stats equality.
func TestDiffStatsOnlyRows(t *testing.T) {
	s := openStore(t)
	line := `{"campaign":"%s","cell":"fam/n=4","count":2,"mean":%s}` + "\n"
	mustJSONL := func(data string) {
		t.Helper()
		if _, err := s.BackfillJSONL("", strings.NewReader(data)); err != nil {
			t.Fatal(err)
		}
	}
	mustJSONL(fmt.Sprintf(line, "ja", "3"))
	mustJSONL(fmt.Sprintf(line, "jb", "3"))
	mustJSONL(fmt.Sprintf(line, "jc", "4"))
	if d, _ := s.Diff("ja", "jb"); len(d.Entries) != 0 || d.Identical != 1 {
		t.Errorf("equal stats-only diff = %+v", d)
	}
	if d, _ := s.Diff("ja", "jc"); len(d.Entries) != 1 {
		t.Errorf("unequal stats-only diff = %+v", d)
	}
}

// TestCurves: measured values group into per-scenario curves, joined
// against exact gamesolver values where the solver reaches (broadcast,
// 2 ≤ n ≤ MaxN).
func TestCurves(t *testing.T) {
	s := openStore(t)
	spec := campaign.Spec{
		Adversaries: []string{"random-path"},
		Ns:          []int{4, 16},
		Trials:      3,
		Seed:        7,
	}
	runInto(t, s, "c1", spec)
	runInto(t, s, "c2", spec)

	curves := s.Curves(CurveFilter{Adversary: "random-path", Goal: "broadcast"})
	if len(curves) != 1 {
		t.Fatalf("curves = %d, want 1", len(curves))
	}
	c := curves[0]
	if c.Scenario != "random-path" || len(c.Points) != 2 {
		t.Fatalf("curve = %+v", c)
	}
	for _, p := range c.Points {
		if len(p.Measured) != 2 {
			t.Errorf("n=%d measured by %d campaigns, want 2", p.N, len(p.Measured))
		}
		if p.N <= gamesolver.MaxN {
			if p.Exact == nil || *p.Exact <= 0 {
				t.Errorf("n=%d missing its exact value (got %v)", p.N, p.Exact)
			}
		} else if p.Exact != nil {
			t.Errorf("n=%d has an exact value beyond the solver's range", p.N)
		}
	}
	// Restricting to one campaign narrows the measured map.
	curves = s.Curves(CurveFilter{Campaign: "c1"})
	for _, c := range curves {
		for _, p := range c.Points {
			if len(p.Measured) != 1 {
				t.Errorf("campaign-filtered point measured by %d", len(p.Measured))
			}
		}
	}
	// Gossip has no solver: never an exact value.
	g := testSpec()
	g.Goal = "gossip"
	runInto(t, s, "cg", g)
	for _, c := range s.Curves(CurveFilter{Goal: "gossip"}) {
		for _, p := range c.Points {
			if p.Exact != nil {
				t.Errorf("gossip point n=%d has an exact value", p.N)
			}
		}
	}
}

// TestCurvesSolveTables: exact values for n beyond the implicit solve
// ceiling are served from warehoused solve tables — absent table means
// no value (never an hours-long solve inside a query), present table
// answers instantly; and solving a small n persists its table into the
// warehouse for the next process.
func TestCurvesSolveTables(t *testing.T) {
	s := openStore(t)
	spec := campaign.Spec{
		Adversaries: []string{"random-path"},
		Ns:          []int{4, 6},
		Trials:      2,
		Seed:        7,
	}
	runInto(t, s, "c1", spec)

	exactAt := func(n int) *int {
		t.Helper()
		curves := s.Curves(CurveFilter{Adversary: "random-path", Goal: "broadcast"})
		if len(curves) != 1 {
			t.Fatalf("curves = %d, want 1", len(curves))
		}
		for _, p := range curves[0].Points {
			if p.N == n {
				return p.Exact
			}
		}
		t.Fatalf("no curve point at n=%d", n)
		return nil
	}

	// No table yet: n=6 has no exact value, and the query returns fast.
	if v := exactAt(6); v != nil {
		t.Fatalf("n=6 exact = %d with no solve table", *v)
	}
	// The n=4 point was solved implicitly AND persisted to the warehouse.
	if v := exactAt(4); v == nil || *v != 4 {
		t.Fatalf("n=4 exact = %v, want 4", v)
	}
	if _, err := os.Stat(s.SolveTablePath(4)); err != nil {
		t.Fatalf("implicit solve did not persist its table: %v", err)
	}

	// Install a (minimal) n=6 table holding just the root state: the
	// canonical form of the identity matrix is the identity matrix, so a
	// single-record table already answers the root query. Value 7 is
	// t*(T6) — what cmd/exact-solver -max-n 6 -force -table writes.
	var root uint64
	for y := 0; y < 6; y++ {
		root |= 1 << (y * 7) // bit y*n+y with n=6
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "dyntreecast-solvetable/1\nn=6 canon=cells/1 states=1\n")
	var rec [9]byte
	binary.LittleEndian.PutUint64(rec[:8], root)
	rec[8] = 7
	buf.Write(rec[:])
	if err := os.WriteFile(s.SolveTablePath(6), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if v := exactAt(6); v == nil || *v != 7 {
		t.Fatalf("n=6 exact = %v with a solve table installed, want 7", v)
	}
}

// TestScenarioLabel: params render sorted and typed.
func TestScenarioLabel(t *testing.T) {
	r := Row{Adversary: "fam", Params: map[string]any{"k": 2.0, "b": true}}
	if got := scenarioLabel(r); got != "fam b=true k=2" {
		t.Errorf("scenarioLabel = %q", got)
	}
	if got := scenarioLabel(Row{Adversary: "plain"}); got != "plain" {
		t.Errorf("scenarioLabel = %q", got)
	}
}
