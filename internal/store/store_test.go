package store

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dyntreecast/internal/campaign"
	"dyntreecast/internal/campaign/cache"
)

// testSpec is the small deterministic grid the store tests run: 2
// families × 2 ns = 4 cells, 3 trials each.
func testSpec() campaign.Spec {
	return campaign.Spec{
		Name:        "store-test",
		Adversaries: []string{"random-path", "random-tree"},
		Ns:          []int{4, 8},
		Trials:      3,
		Seed:        7,
	}
}

// openStore opens a fresh warehouse under a temp dir.
func openStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(filepath.Join(t.TempDir(), "warehouse"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// runInto runs spec with the warehouse as its cell cache and ingests it
// under id.
func runInto(t *testing.T, s *Store, id string, spec campaign.Spec) *campaign.Outcome {
	t.Helper()
	out, err := campaign.RunSpec(context.Background(), spec, campaign.Config{Cache: s.Cache()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.IngestOutcome(id, out); err != nil {
		t.Fatal(err)
	}
	return out
}

// allRows drains every page of a query.
func allRows(t *testing.T, s *Store, f Filter) []Row {
	t.Helper()
	var rows []Row
	for {
		page, err := s.Query(f)
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, page.Rows...)
		if page.NextCursor == "" {
			return rows
		}
		f.Cursor = page.NextCursor
	}
}

// TestIngestRoundTrip: a campaign run through the warehouse cache
// ingests into rows whose stats match the campaign's own aggregation
// exactly, and whose stored cell bytes are bit-identical to what a plain
// dir cache would hold for the same spec.
func TestIngestRoundTrip(t *testing.T) {
	s := openStore(t)
	spec := testSpec()
	out := runInto(t, s, "run1", spec)

	rows := allRows(t, s, Filter{Campaign: "run1"})
	if len(rows) != len(out.Cells) {
		t.Fatalf("rows = %d, want %d", len(rows), len(out.Cells))
	}
	byCell := make(map[string]Row)
	for _, r := range rows {
		byCell[r.Cell] = r
	}
	for _, c := range out.Cells {
		r, ok := byCell[c.Cell]
		if !ok {
			t.Fatalf("cell %s missing from warehouse", c.Cell)
		}
		got := campaign.CellStats{Cell: r.Cell, Count: r.Count, Mean: r.Mean, StdDev: r.StdDev, Min: r.Min, Max: r.Max, P50: r.P50, P99: r.P99}
		if got != c {
			t.Errorf("cell %s stats drifted:\nstore    %+v\ncampaign %+v", c.Cell, got, c)
		}
		if r.Key == "" {
			t.Errorf("cell %s ingested without a content address", c.Cell)
		}
		if r.Goal != "broadcast" || r.Engine != campaign.EngineVersion {
			t.Errorf("cell %s coordinates: goal=%q engine=%q", c.Cell, r.Goal, r.Engine)
		}
	}

	// Byte round-trip: the warehouse's cell bytes must equal an
	// independent dir-cache run's bytes, address by address.
	plain, err := cache.NewDir(filepath.Join(t.TempDir(), "plain"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.RunSpec(context.Background(), spec, campaign.Config{Cache: plain}); err != nil {
		t.Fatal(err)
	}
	jobs, err := spec.CellJobs()
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		want, ok, err := plain.Get(j.Key)
		if err != nil || !ok {
			t.Fatalf("plain cache missing %s: ok=%v err=%v", j.Cell, ok, err)
		}
		got, ok, err := s.Cache().Get(j.Key)
		if err != nil || !ok {
			t.Fatalf("warehouse missing %s: ok=%v err=%v", j.Cell, ok, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("cell %s bytes differ between warehouse and plain cache", j.Cell)
		}
	}
}

// TestIngestRequiresCellBytes: indexing a spec the warehouse holds no
// bytes for is an error, not a silent empty campaign.
func TestIngestRequiresCellBytes(t *testing.T) {
	s := openStore(t)
	if _, err := s.IngestSpec("empty", testSpec()); err == nil {
		t.Fatal("ingest of a byte-less spec succeeded")
	}
}

// TestIngestSkipsAndHealsCorruptCells: a corrupted cell file at ingest
// time is skipped (not indexed) and deleted.
func TestIngestSkipsAndHealsCorruptCells(t *testing.T) {
	s := openStore(t)
	spec := testSpec()
	if _, err := campaign.RunSpec(context.Background(), spec, campaign.Config{Cache: s.Cache()}); err != nil {
		t.Fatal(err)
	}
	jobs, err := spec.CellJobs()
	if err != nil {
		t.Fatal(err)
	}
	bad := jobs[0]
	if err := s.Cache().Put(bad.Key, []byte("{torn")); err != nil {
		t.Fatal(err)
	}
	n, err := s.IngestSpec("run1", spec)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(jobs)-1 {
		t.Errorf("ingested %d cells, want %d (corrupt one skipped)", n, len(jobs)-1)
	}
	if _, ok, _ := s.Cache().Get(bad.Key); ok {
		t.Error("corrupt cell survived ingest")
	}
	for _, r := range allRows(t, s, Filter{}) {
		if r.Cell == bad.Cell {
			t.Errorf("corrupt cell %s was indexed", bad.Cell)
		}
	}
}

// TestReopenRebuildsIndex is the kill-and-restart guarantee: a reopened
// warehouse serves the same campaigns, rows, and pins from disk alone.
func TestReopenRebuildsIndex(t *testing.T) {
	root := filepath.Join(t.TempDir(), "warehouse")
	s1, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	runInto(t, s1, "run1", testSpec())
	if err := s1.Pin("run1", true); err != nil {
		t.Fatal(err)
	}
	before := allRows(t, s1, Filter{})

	s2, err := Open(root)
	if err != nil {
		t.Fatal(err)
	}
	after := allRows(t, s2, Filter{})
	if !reflect.DeepEqual(before, after) {
		t.Errorf("reopened index differs:\nbefore %+v\nafter  %+v", before, after)
	}
	if got := s2.Pins(); len(got) != 1 || got[0] != "run1" {
		t.Errorf("pins after reopen = %v, want [run1]", got)
	}
	infos := s2.Campaigns()
	if len(infos) != 1 || infos[0].ID != "run1" || !infos[0].Pinned || infos[0].Cells != len(before) {
		t.Errorf("campaign listing after reopen = %+v", infos)
	}
}

// TestReingestReplaces: re-ingesting an id replaces its rows instead of
// accumulating duplicates.
func TestReingestReplaces(t *testing.T) {
	s := openStore(t)
	runInto(t, s, "run1", testSpec())
	small := testSpec()
	small.Ns = []int{4}
	runInto(t, s, "run1", small)
	rows := allRows(t, s, Filter{Campaign: "run1"})
	if len(rows) != 2 {
		t.Errorf("rows after re-ingest = %d, want 2", len(rows))
	}
}

// TestInvalidIDsRejected: ids that could escape the campaigns dir or
// collide with temp files never reach the filesystem.
func TestInvalidIDsRejected(t *testing.T) {
	s := openStore(t)
	for _, id := range []string{"", ".hidden", "../escape", "a/b", "has space", "-flag", string(make([]byte, 200))} {
		if _, err := s.IngestSpec(id, testSpec()); err == nil {
			t.Errorf("IngestSpec(%q) accepted", id)
		}
		if err := s.Pin(id, true); err == nil {
			t.Errorf("Pin(%q) accepted", id)
		}
	}
}

// TestOpenRejectsForeignManifests: garbage or foreign JSON in campaigns/
// fails Open loudly instead of silently skewing the index.
func TestOpenRejectsForeignManifests(t *testing.T) {
	root := filepath.Join(t.TempDir(), "warehouse")
	if _, err := Open(root); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(root, "campaigns", "alien.json")
	for _, data := range []string{"{torn", `{"format":"other/1","id":"x"}`} {
		if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(root); err == nil {
			t.Errorf("Open accepted manifest %q", data)
		}
	}
}

// TestBackfillArtifact: a pre-warehouse campaign (JSON artifact + dir
// cache) backfills into the store with bit-identical cell bytes and the
// artifact's campaign name as its id.
func TestBackfillArtifact(t *testing.T) {
	spec := testSpec()
	dir, err := cache.NewDir(filepath.Join(t.TempDir(), "legacy"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := campaign.RunSpec(context.Background(), spec, campaign.Config{Cache: dir})
	if err != nil {
		t.Fatal(err)
	}
	var art bytes.Buffer
	if err := out.WriteJSON(&art); err != nil {
		t.Fatal(err)
	}

	s := openStore(t)
	id, n, err := s.BackfillArtifact("", &art, dir)
	if err != nil {
		t.Fatal(err)
	}
	if id != "store-test" || n != len(out.Cells) {
		t.Fatalf("backfill = (%q, %d), want (store-test, %d)", id, n, len(out.Cells))
	}
	jobs, err := spec.CellJobs()
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		want, _, _ := dir.Get(j.Key)
		got, ok, err := s.Cache().Get(j.Key)
		if err != nil || !ok || !bytes.Equal(got, want) {
			t.Errorf("cell %s did not round-trip: ok=%v err=%v", j.Cell, ok, err)
		}
	}
	// A torn artifact is an error.
	if _, _, err := s.BackfillArtifact("x", bytes.NewReader([]byte("{torn")), nil); err == nil {
		t.Error("torn artifact accepted")
	}
}

// TestBackfillJSONL: stats-only rows from a JSONL artifact are queryable
// with parsed coordinates and no content address.
func TestBackfillJSONL(t *testing.T) {
	spec := campaign.Spec{
		Name:        "jl",
		Adversaries: []string{"k-leaves"},
		Ks:          []int{2},
		Ns:          []int{8},
		Trials:      3,
		Seed:        1,
	}
	out, err := campaign.RunSpec(context.Background(), spec, campaign.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := out.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	s := openStore(t)
	n, err := s.BackfillJSONL("", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(out.Cells) {
		t.Fatalf("backfilled %d rows, want %d", n, len(out.Cells))
	}
	rows := allRows(t, s, Filter{Campaign: "jl"})
	if len(rows) != len(out.Cells) {
		t.Fatalf("rows = %d, want %d", len(rows), len(out.Cells))
	}
	for _, r := range rows {
		if r.Key != "" {
			t.Errorf("jsonl row %s carries a content address", r.Cell)
		}
		if r.Adversary != "k-leaves" || r.N != 8 {
			t.Errorf("row %s coordinates not recovered: adversary=%q n=%d", r.Cell, r.Adversary, r.N)
		}
		if _, ok := r.Params["k"]; !ok {
			t.Errorf("row %s lost its k param", r.Cell)
		}
	}
	// Lines naming no campaign need an explicit id.
	if _, err := s.BackfillJSONL("", bytes.NewReader([]byte(`{"cell":"x/n=2","count":1}`+"\n"))); err == nil {
		t.Error("campaign-less jsonl accepted without an id")
	}
	// And an empty stream is an error, not a no-op.
	if _, err := s.BackfillJSONL("empty", bytes.NewReader(nil)); err == nil {
		t.Error("empty jsonl stream accepted")
	}
}

// TestParseCellName covers the coordinate recovery used by JSONL
// backfill.
func TestParseCellName(t *testing.T) {
	adv, n, params := parseCellName("k-leaves/n=16/k=2")
	if adv != "k-leaves" || n != 16 || params["k"] != 2.0 {
		t.Errorf("parseCellName = %q, %d, %v", adv, n, params)
	}
	adv, n, params = parseCellName("random-tree/n=8")
	if adv != "random-tree" || n != 8 || params != nil {
		t.Errorf("parseCellName = %q, %d, %v", adv, n, params)
	}
	_, _, params = parseCellName("fam/n=4/flip=true/name=x/odd")
	if params["flip"] != true || params["name"] != "x" {
		t.Errorf("typed params = %v", params)
	}
}

// TestPinUnpin: unpinning persists too.
func TestPinUnpin(t *testing.T) {
	s := openStore(t)
	if err := s.Pin("a", true); err != nil {
		t.Fatal(err)
	}
	if err := s.Pin("b", true); err != nil {
		t.Fatal(err)
	}
	if err := s.Pin("a", false); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(s.Root())
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Pins(); len(got) != 1 || got[0] != "b" {
		t.Errorf("pins = %v, want [b]", got)
	}
}

// TestCacheDeleteForwards: the warehouse cache exposes eviction so the
// campaign layer's corruption heal works against a store-backed cache.
func TestCacheDeleteForwards(t *testing.T) {
	s := openStore(t)
	spec := testSpec()
	runInto(t, s, "run", spec)
	jobs, _ := spec.CellJobs()
	d, ok := s.Cache().(cache.Deleter)
	if !ok {
		t.Fatal("warehouse cache is not a Deleter")
	}
	if err := d.Delete(jobs[0].Key); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Cache().Get(jobs[0].Key); ok {
		t.Error("delete did not reach the cell store")
	}
}

// TestOpenFailsOnBrokenLayout: a root whose areas are occupied by plain
// files cannot open.
func TestOpenFailsOnBrokenLayout(t *testing.T) {
	// cells is a file.
	root := filepath.Join(t.TempDir(), "w1")
	if err := os.MkdirAll(root, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "cells"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(root); err == nil {
		t.Error("Open accepted a root whose cells area is a file")
	}
	// campaigns is a file.
	root2 := filepath.Join(t.TempDir(), "w2")
	if err := os.MkdirAll(root2, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root2, "campaigns"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(root2); err == nil {
		t.Error("Open accepted a root whose campaigns area is a file")
	}
	// pins.json is torn.
	root3 := filepath.Join(t.TempDir(), "w3")
	if _, err := Open(root3); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root3, "pins.json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(root3); err == nil {
		t.Error("Open accepted a torn pins.json")
	}
}

// TestIngestRejectsInvalidSpec: a spec that does not compile cannot be
// ingested or backfilled.
func TestIngestRejectsInvalidSpec(t *testing.T) {
	s := openStore(t)
	if _, err := s.IngestSpec("bad", campaign.Spec{}); err == nil {
		t.Error("empty spec ingested")
	}
	art := `{"spec":{"adversaries":["no-such-family"],"ns":[4],"trials":1}}`
	if _, _, err := s.BackfillArtifact("bad", strings.NewReader(art), cache.NewMemory()); err == nil {
		t.Error("artifact with an unknown family backfilled")
	}
	if _, _, err := s.BackfillArtifact("../bad", strings.NewReader(`{"spec":{}}`), nil); err == nil {
		t.Error("traversal id accepted by backfill")
	}
}

// TestBackfillJSONLRejectsBadIDs: per-line campaign ids are vetted like
// every other id.
func TestBackfillJSONLRejectsBadIDs(t *testing.T) {
	s := openStore(t)
	if _, err := s.BackfillJSONL("", strings.NewReader(`{"campaign":"../x","cell":"f/n=2","count":1}`+"\n")); err == nil {
		t.Error("traversal campaign id accepted from jsonl")
	}
	if _, err := s.BackfillJSONL("../x", strings.NewReader(`{"cell":"f/n=2","count":1}`+"\n")); err == nil {
		t.Error("traversal explicit id accepted")
	}
	if _, err := s.BackfillJSONL("ok", strings.NewReader("{torn\n")); err == nil {
		t.Error("torn jsonl line accepted")
	}
}

// TestSizeErrorsWhenCellAreaVanishes: a destroyed cell area is a loud
// error for Size, GC, and ingest alike.
func TestSizeErrorsWhenCellAreaVanishes(t *testing.T) {
	s := openStore(t)
	if err := os.RemoveAll(filepath.Join(s.Root(), "cells")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Size(); err == nil {
		t.Error("Size on a vanished cell area succeeded")
	}
	if _, err := s.GC(0); err == nil {
		t.Error("GC on a vanished cell area succeeded")
	}
}
