package store

import (
	"encoding/base64"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"dyntreecast/internal/gamesolver"
)

// ErrNotFound reports a query naming a campaign the warehouse has not
// ingested.
var ErrNotFound = errors.New("store: campaign not found")

// Row is one queryable warehouse cell: a campaign's measurement of one
// grid point, with its coordinates, content address, and stats.
type Row struct {
	Campaign  string         `json:"campaign"`
	Cell      string         `json:"cell"`
	Adversary string         `json:"adversary"`
	Params    map[string]any `json:"params,omitempty"`
	N         int            `json:"n"`
	Goal      string         `json:"goal"`
	Engine    string         `json:"engine,omitempty"`
	Key       string         `json:"key,omitempty"` // content address; "" = stats-only backfill
	Trials    int            `json:"trials"`
	Count     int            `json:"count"`
	Mean      float64        `json:"mean"`
	StdDev    float64        `json:"stddev"`
	Min       float64        `json:"min"`
	Max       float64        `json:"max"`
	P50       float64        `json:"p50"`
	P99       float64        `json:"p99"`
}

// sortKey is the row's position in cursor order. Campaign ids cannot
// contain NUL (checkID), so the pair ordering is exactly the string
// ordering of the joined key.
func (r Row) sortKey() string { return r.Campaign + "\x00" + r.Cell }

// Filter selects warehouse rows. Zero fields do not constrain; N, NMin
// and NMax compose (an exact N wins).
type Filter struct {
	Campaign  string // exact campaign id
	Adversary string // exact scenario family name
	Goal      string // "broadcast" or "gossip"
	N         int    // exact n (0 = any)
	NMin      int    // inclusive lower bound on n (0 = none)
	NMax      int    // inclusive upper bound on n (0 = none)
	Limit     int    // page size; 0 = DefaultLimit, capped at MaxLimit
	Cursor    string // opaque resume token from a previous Page
}

// Pagination bounds.
const (
	DefaultLimit = 100
	MaxLimit     = 1000
)

func (f Filter) match(r Row) bool {
	if f.Campaign != "" && r.Campaign != f.Campaign {
		return false
	}
	if f.Adversary != "" && r.Adversary != f.Adversary {
		return false
	}
	if f.Goal != "" && r.Goal != f.Goal {
		return false
	}
	if f.N != 0 && r.N != f.N {
		return false
	}
	if f.NMin != 0 && r.N < f.NMin {
		return false
	}
	if f.NMax != 0 && r.N > f.NMax {
		return false
	}
	return true
}

// Page is one page of query results. NextCursor is non-empty exactly
// when more rows match beyond this page; feeding it back into
// Filter.Cursor resumes after the page's last row.
type Page struct {
	Rows       []Row  `json:"rows"`
	NextCursor string `json:"next_cursor,omitempty"`
}

// encodeCursor and decodeCursor wrap the resume position (the sort key
// of the last delivered row) in URL-safe base64, keeping it opaque and
// query-string clean.
func encodeCursor(sortKey string) string {
	return base64.RawURLEncoding.EncodeToString([]byte(sortKey))
}

func decodeCursor(c string) (string, error) {
	raw, err := base64.RawURLEncoding.DecodeString(c)
	if err != nil {
		return "", fmt.Errorf("store: bad cursor: %w", err)
	}
	return string(raw), nil
}

// Query returns one page of rows matching f, in (campaign, cell) order.
// Cursors are stable under concurrent ingest: the index is ordered by an
// ingest-independent sort key, so a page walk started before an ingest
// neither duplicates nor skips any row that existed when it started —
// newly ingested rows simply appear (or not) depending on whether they
// sort after the walker's position.
func (s *Store) Query(f Filter) (Page, error) {
	start := time.Now()
	defer func() { hQuery.Observe(time.Since(start).Seconds()) }()

	after := ""
	if f.Cursor != "" {
		var err error
		after, err = decodeCursor(f.Cursor)
		if err != nil {
			return Page{}, err
		}
	}
	limit := f.Limit
	if limit <= 0 {
		limit = DefaultLimit
	}
	if limit > MaxLimit {
		limit = MaxLimit
	}

	s.mu.RLock()
	defer s.mu.RUnlock()
	if f.Campaign != "" {
		if _, ok := s.manifests[f.Campaign]; !ok {
			return Page{}, fmt.Errorf("%w: %s", ErrNotFound, f.Campaign)
		}
	}
	// Binary-search past the cursor, then scan.
	i := sort.Search(len(s.rows), func(i int) bool { return s.rows[i].sortKey() > after })
	page := Page{Rows: []Row{}}
	for ; i < len(s.rows); i++ {
		if !f.match(s.rows[i]) {
			continue
		}
		if len(page.Rows) == limit {
			page.NextCursor = encodeCursor(page.Rows[limit-1].sortKey())
			break
		}
		page.Rows = append(page.Rows, s.rows[i])
	}
	return page, nil
}

// DiffEntry is one differing cell of a campaign diff.
type DiffEntry struct {
	Cell string `json:"cell"`
	// Status: "changed" (both campaigns have the cell, different
	// content), "only_a", or "only_b".
	Status string `json:"status"`
	A      *Row   `json:"a,omitempty"`
	B      *Row   `json:"b,omitempty"`
}

// DiffResult is the content-address diff of two campaigns.
type DiffResult struct {
	A         string      `json:"a"`
	B         string      `json:"b"`
	Identical int         `json:"identical"` // cells elided as same-content
	Entries   []DiffEntry `json:"entries"`
}

// Diff compares two ingested campaigns cell by cell. Cells present in
// both with the same content address are elided (counted in Identical) —
// the determinism contract makes equal addresses equal bytes, so there
// is nothing to show. Stats-only rows (no address) fall back to stats
// equality. A campaign diffed against itself, or against a cache-warm
// re-run of the same spec, is therefore empty.
func (s *Store) Diff(a, b string) (DiffResult, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ma, ok := s.manifests[a]
	if !ok {
		return DiffResult{}, fmt.Errorf("%w: %s", ErrNotFound, a)
	}
	mb, ok := s.manifests[b]
	if !ok {
		return DiffResult{}, fmt.Errorf("%w: %s", ErrNotFound, b)
	}
	rowOf := func(m *manifest, c manifestCell) *Row {
		r := Row{
			Campaign: m.ID, Cell: c.Cell, Adversary: c.Adversary, Params: c.Params,
			N: c.N, Goal: m.Goal, Engine: m.Engine, Key: c.Key, Trials: c.Trials,
			Count: c.Stats.Count, Mean: c.Stats.Mean, StdDev: c.Stats.StdDev,
			Min: c.Stats.Min, Max: c.Stats.Max, P50: c.Stats.P50, P99: c.Stats.P99,
		}
		return &r
	}
	cellsB := make(map[string]manifestCell, len(mb.Cells))
	for _, c := range mb.Cells {
		cellsB[c.Cell] = c
	}
	res := DiffResult{A: a, B: b, Entries: []DiffEntry{}}
	for _, ca := range ma.Cells {
		cb, ok := cellsB[ca.Cell]
		if !ok {
			res.Entries = append(res.Entries, DiffEntry{Cell: ca.Cell, Status: "only_a", A: rowOf(ma, ca)})
			continue
		}
		delete(cellsB, ca.Cell)
		same := ca.Key != "" && ca.Key == cb.Key
		if ca.Key == "" || cb.Key == "" {
			// Stats-only side(s): compare the numbers instead.
			same = ca.Stats == cb.Stats && ca.Trials == cb.Trials
		}
		if same {
			res.Identical++
			continue
		}
		res.Entries = append(res.Entries, DiffEntry{Cell: ca.Cell, Status: "changed", A: rowOf(ma, ca), B: rowOf(mb, cb)})
	}
	// Remaining B cells have no A counterpart; report in a stable order.
	var onlyB []string
	for cell := range cellsB {
		onlyB = append(onlyB, cell)
	}
	sort.Strings(onlyB)
	for _, cell := range onlyB {
		cb := cellsB[cell]
		res.Entries = append(res.Entries, DiffEntry{Cell: cell, Status: "only_b", B: rowOf(mb, cb)})
	}
	return res, nil
}

// CurveFilter selects bound curves. Zero fields do not constrain.
type CurveFilter struct {
	Adversary string // exact scenario family
	Goal      string // "broadcast" or "gossip"
	Campaign  string // restrict the measured series to one campaign
}

// CurvePoint is one n of a bound curve: every campaign's measured value
// at that n joined against the exact game value where the solver has it.
type CurvePoint struct {
	N        int                     `json:"n"`
	Measured map[string]CurveMeasure `json:"measured"` // by campaign id
	Exact    *int                    `json:"exact,omitempty"`
}

// CurveMeasure is one campaign's measurement at one curve point.
type CurveMeasure struct {
	Mean   float64 `json:"mean"`
	Max    float64 `json:"max"`
	Trials int     `json:"trials"`
}

// Curve is one scenario's bound curve across n, possibly spanning
// campaigns.
type Curve struct {
	Scenario string       `json:"scenario"` // family plus params ("k-leaves k=2")
	Goal     string       `json:"goal"`
	Points   []CurvePoint `json:"points"`
}

// exactValue returns the exact adversarial broadcast value for n, or
// nil where no value is available without unbounded work. Values are
// memoized per store. Three tiers:
//
//   - n ≤ gamesolver.MaxN: solved implicitly (milliseconds); the result
//     is also persisted to the warehouse's solvetables/ dir best-effort,
//     so the next process start skips even that.
//   - gamesolver.MaxN < n ≤ gamesolver.HardMaxN: served only when a
//     solve table for this n (written by cmd/exact-solver -table, or a
//     previous tier-1 persist) already holds the root value — a curves
//     query never triggers an hours-long solve. Partial tables (an
//     interrupted solve's autosave) are loaded but do not answer until
//     the root state is present.
//   - otherwise: nil. Only the broadcast goal has a solver.
func (s *Store) exactValue(goal string, n int) *int {
	if goal != "broadcast" || n < 2 || n > gamesolver.HardMaxN {
		return nil
	}
	s.exactMu.Lock()
	defer s.exactMu.Unlock()
	if v, ok := s.exactVals[n]; ok {
		return &v
	}
	path := s.SolveTablePath(n)
	if n <= gamesolver.MaxN {
		solver, err := gamesolver.New(n)
		if err != nil {
			return nil
		}
		_, _ = solver.LoadTable(path) // pre-warm if a table is already there
		v := solver.Value()
		s.exactVals[n] = v
		if _, err := os.Stat(path); err != nil {
			_ = solver.SaveTable(path) // best-effort persist for next open
		}
		return &v
	}
	// Big n: probe the header first — it is a cheap read and rules out
	// missing or incompatible tables before the solver's eager
	// permutation tables are built.
	if _, err := gamesolver.ReadTableInfo(path); err != nil {
		return nil
	}
	solver, err := gamesolver.New(n, gamesolver.WithMaxN(n))
	if err != nil {
		return nil
	}
	if _, err := solver.LoadTable(path); err != nil {
		return nil
	}
	v, ok := solver.CachedValue()
	if !ok {
		return nil
	}
	s.exactVals[n] = v
	return &v
}

// Curves joins the warehouse's measured values against exact gamesolver
// values: one curve per (scenario, goal), one point per n, each point
// carrying every matching campaign's measurement plus the exact value
// where the solver covers that n — implicitly for broadcast with
// 2 ≤ n ≤ gamesolver.MaxN, and via warehoused solve tables up to
// gamesolver.HardMaxN (see exactValue). This is the cross-campaign
// "how tight are the measured bounds" view.
func (s *Store) Curves(f CurveFilter) []Curve {
	s.mu.RLock()
	type pointKey struct {
		scenario, goal string
		n              int
	}
	points := make(map[pointKey]map[string]CurveMeasure)
	for _, r := range s.rows {
		if f.Adversary != "" && r.Adversary != f.Adversary {
			continue
		}
		if f.Goal != "" && r.Goal != f.Goal {
			continue
		}
		if f.Campaign != "" && r.Campaign != f.Campaign {
			continue
		}
		k := pointKey{scenarioLabel(r), r.Goal, r.N}
		if points[k] == nil {
			points[k] = make(map[string]CurveMeasure)
		}
		points[k][r.Campaign] = CurveMeasure{Mean: r.Mean, Max: r.Max, Trials: r.Trials}
	}
	s.mu.RUnlock()

	byCurve := make(map[string]*Curve)
	var order []string
	for k, measured := range points {
		ck := k.scenario + "\x00" + k.goal
		c := byCurve[ck]
		if c == nil {
			c = &Curve{Scenario: k.scenario, Goal: k.goal}
			byCurve[ck] = c
			order = append(order, ck)
		}
		c.Points = append(c.Points, CurvePoint{N: k.n, Measured: measured, Exact: s.exactValue(k.goal, k.n)})
	}
	sort.Strings(order)
	out := make([]Curve, 0, len(byCurve))
	for _, ck := range order {
		c := byCurve[ck]
		sort.Slice(c.Points, func(i, j int) bool { return c.Points[i].N < c.Points[j].N })
		out = append(out, *c)
	}
	return out
}

// scenarioLabel renders a row's scenario coordinates ("k-leaves k=2") for
// curve grouping, params in sorted key order.
func scenarioLabel(r Row) string {
	if len(r.Params) == 0 {
		return r.Adversary
	}
	keys := make([]string, 0, len(r.Params))
	for k := range r.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := []string{r.Adversary}
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%v", k, r.Params[k]))
	}
	return strings.Join(parts, " ")
}
