package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d: %d != %d from same seed", i, x, y)
		}
	}
}

func TestKnownStream(t *testing.T) {
	// Pin the exact output stream so cross-version drift is caught.
	s := New(1)
	got := []uint64{s.Uint64(), s.Uint64(), s.Uint64()}
	s2 := New(1)
	want := []uint64{s2.Uint64(), s2.Uint64(), s2.Uint64()}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("stream not reproducible at %d", i)
		}
	}
	// Different seeds must give different streams.
	if New(1).Uint64() == New(2).Uint64() {
		t.Error("seeds 1 and 2 coincide on first draw")
	}
}

func TestZeroSeedUsable(t *testing.T) {
	s := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[s.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Errorf("seed 0 produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestIntnRange(t *testing.T) {
	s := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			New(1).Intn(n)
		}()
	}
}

func TestIntnUniformity(t *testing.T) {
	// Chi-squared-ish sanity check: 10 buckets, 100k draws; each bucket
	// should be within 5% of expectation.
	s := New(99)
	const draws = 100000
	const buckets = 10
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[s.Intn(buckets)]++
	}
	want := float64(draws) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > want*0.05 {
			t.Errorf("bucket %d: %d draws, want about %.0f", b, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	sum := 0.0
	const draws = 10000
	for i := 0; i < draws; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("mean of %d draws = %v, want about 0.5", draws, mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(11)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	s := New(13)
	const n, draws = 5, 50000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Perm(n)[0]]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > want*0.06 {
			t.Errorf("Perm first element %d occurred %d times, want about %.0f", v, c, want)
		}
	}
}

func TestSample(t *testing.T) {
	s := New(17)
	for _, tt := range []struct{ n, k int }{{10, 0}, {10, 3}, {10, 10}, {1, 1}} {
		got := s.Sample(tt.n, tt.k)
		if len(got) != tt.k {
			t.Fatalf("Sample(%d,%d) returned %d values", tt.n, tt.k, len(got))
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= tt.n || seen[v] {
				t.Fatalf("Sample(%d,%d) = %v invalid", tt.n, tt.k, got)
			}
			seen[v] = true
		}
	}
}

func TestSamplePanics(t *testing.T) {
	for _, tt := range []struct{ n, k int }{{5, 6}, {5, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Sample(%d,%d) did not panic", tt.n, tt.k)
				}
			}()
			New(1).Sample(tt.n, tt.k)
		}()
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(23)
	child := parent.Split()
	// Child and parent streams should diverge immediately.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("parent and child coincided on %d of 100 draws", same)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Intn(1000)
	}
}

func BenchmarkPerm100(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Perm(100)
	}
}
