// Package rng provides a small, deterministic pseudo-random number
// generator used throughout the repository.
//
// Experiments in this repo must be bit-for-bit reproducible from a seed,
// across Go releases and across machines. math/rand's generator and its
// top-level convenience functions do not make that guarantee (and the
// top-level functions are seeded randomly since Go 1.20), so we implement
// xoshiro256** seeded via splitmix64 — the standard, published construction
// — and expose only the derived operations the simulator needs (integers in
// range, permutations, subset sampling).
//
// The zero value of Source is not usable; construct with New. Sources are
// not safe for concurrent use; give each goroutine its own Source via Split.
package rng

import "math/bits"

// Source is a xoshiro256** generator.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via splitmix64, per the xoshiro
// authors' recommendation.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm, src.s[i] = splitmix64(sm)
	}
	// xoshiro256** requires a nonzero state; splitmix64 of any seed yields
	// one with overwhelming probability, but guard the (seed-crafted)
	// pathological case anyway.
	if src.s == [4]uint64{} {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

// splitmix64 advances the splitmix64 state and returns (newState, output).
func splitmix64(state uint64) (uint64, uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

// Uint64 returns the next 64 random bits.
func (s *Source) Uint64() uint64 {
	result := bits.RotateLeft64(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = bits.RotateLeft64(s.s[3], 45)
	return result
}

// Split returns a new Source whose stream is independent of s's future
// output (derived by hashing the current state through splitmix64).
// Use it to hand child components their own generators.
func (s *Source) Split() *Source {
	return New(s.Uint64())
}

// Intn returns a uniform integer in [0, n). n must be > 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless method.
	bound := uint64(n)
	x := s.Uint64()
	hi, lo := bits.Mul64(x, bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			x = s.Uint64()
			hi, lo = bits.Mul64(x, bound)
		}
	}
	return int(hi)
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Perm returns a uniform random permutation of [0, n) (Fisher–Yates).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(p)
	return p
}

// Shuffle permutes p uniformly in place.
func (s *Source) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Sample returns k distinct values from [0, n), in random order.
// It panics if k < 0 or k > n.
func (s *Source) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Sample k out of range")
	}
	// Partial Fisher–Yates over a dense index table; O(n) space, O(n+k)
	// time. Fine at simulator scales (n is the process count).
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + s.Intn(n-i)
		p[i], p[j] = p[j], p[i]
	}
	return p[:k]
}
