package tree

import (
	"fmt"

	"dyntreecast/internal/rng"
)

// This file implements the in-place tree generators of the batched trial
// pipeline (DESIGN.md §3d). Each ...Into function writes its result into a
// caller-owned Buf instead of allocating a fresh Tree, and the classic
// allocating forms (Random, RandomPath, RandomWithLeaves, RandomWithInner)
// are thin wrappers over them — one implementation, so the two spellings
// consume random streams identically and campaigns stay byte-for-byte
// reproducible whichever path runs them.

// Buf is a reusable tree buffer: the parent array of the generated tree
// plus the scratch the generators need (Prüfer decoding, permutation and
// adjacency workspaces). Buffers grow to the largest n seen and are reused
// across calls, so a warm Buf generates trees with zero allocations.
//
// The *Tree returned by a ...Into call aliases the Buf: it is valid only
// until the Buf's next generation, and callers must neither mutate nor
// retain it beyond that. This deliberately relaxes Tree's usual
// immutability — the simulation engines only read a round's tree during
// Step, which is exactly the lifetime the in-place adversaries need.
// The zero value is ready to use.
type Buf struct {
	t Tree
	// generator scratch
	seq, deg, eu, ev, off, cur, tgt, queue, order, sl []int
	mark                                              []bool
}

// Tree returns the most recently generated tree (nil parent array before
// the first generation). Valid until the next generation into b.
func (b *Buf) Tree() *Tree { return &b.t }

// Grow returns *p resized to length n, reallocating only when the
// capacity is insufficient. Contents are unspecified. It is the scratch
// growth policy of the whole in-place pipeline — the generators here and
// the reusable adversaries share it, so a change to the policy (e.g.
// amortized doubling) lands everywhere at once.
func Grow[T any](p *[]T, n int) []T {
	if cap(*p) < n {
		*p = make([]T, n)
	}
	*p = (*p)[:n]
	return *p
}

// parentBuf returns b's parent array resized to n.
func (b *Buf) parentBuf(n int) []int { return Grow(&b.t.parent, n) }

// single resets b to the one-vertex tree.
func (b *Buf) single() *Tree {
	b.parentBuf(1)[0] = 0
	b.t.root = 0
	return &b.t
}

// RandomInto generates a uniformly random rooted labeled tree on n
// vertices into b — the same distribution and random-stream consumption
// as Random, which wraps it — and returns b's tree.
func RandomInto(b *Buf, n int, src *rng.Source) *Tree {
	if n <= 0 {
		panic("tree: Random needs n >= 1")
	}
	if n == 1 {
		return b.single()
	}
	seq := Grow(&b.seq, n-2)
	for i := range seq {
		seq[i] = src.Intn(n)
	}
	b.decodePrufer(seq, n, src.Intn(n))
	return &b.t
}

// decodePrufer decodes a Prüfer sequence and roots the tree at root,
// writing into b. It mirrors FromPrufer's algorithm step for step — same
// edge order, same BFS orientation — so the two produce identical parent
// arrays; inputs must already be validated (every symbol and root in
// [0,n), len(seq) == n−2, n >= 2).
func (b *Buf) decodePrufer(seq []int, n, root int) {
	deg := Grow(&b.deg, n)
	for i := range deg {
		deg[i] = 1
	}
	for _, s := range seq {
		deg[s]++
	}
	// Classic O(n) decoding into an edge list (eu[i], ev[i]).
	eu, ev := Grow(&b.eu, n-1), Grow(&b.ev, n-1)
	ptr := 0
	for deg[ptr] != 1 {
		ptr++
	}
	leaf := ptr
	ne := 0
	for _, s := range seq {
		eu[ne], ev[ne] = leaf, s
		ne++
		deg[leaf]-- // consumed; degree drops to 0 so later scans skip it
		deg[s]--
		if deg[s] == 1 && s < ptr {
			leaf = s
		} else {
			ptr++
			for deg[ptr] != 1 {
				ptr++
			}
			leaf = ptr
		}
	}
	// Two vertices of degree 1 remain; one is leaf, the other is the last
	// unconsumed one.
	last := -1
	for v := n - 1; v >= 0; v-- {
		if v != leaf && deg[v] == 1 {
			last = v
			break
		}
	}
	eu[ne], ev[ne] = leaf, last
	ne++

	// Undirected adjacency in CSR form, filled in edge order so every
	// vertex sees its neighbors in the same order FromPrufer's appends
	// produce them.
	off := Grow(&b.off, n+1)
	for i := range off {
		off[i] = 0
	}
	for i := 0; i < ne; i++ {
		off[eu[i]+1]++
		off[ev[i]+1]++
	}
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}
	cur := Grow(&b.cur, n)
	copy(cur, off[:n])
	tgt := Grow(&b.tgt, 2*ne)
	for i := 0; i < ne; i++ {
		u, v := eu[i], ev[i]
		tgt[cur[u]] = v
		cur[u]++
		tgt[cur[v]] = u
		cur[v]++
	}

	// Orient away from root by BFS.
	parent := b.parentBuf(n)
	for i := range parent {
		parent[i] = -1
	}
	parent[root] = root
	queue := Grow(&b.queue, n)
	queue[0] = root
	qh, qt := 0, 1
	for qh < qt {
		u := queue[qh]
		qh++
		for j := off[u]; j < off[u+1]; j++ {
			if v := tgt[j]; parent[v] == -1 {
				parent[v] = u
				queue[qt] = v
				qt++
			}
		}
	}
	b.t.root = root
}

// PathInto writes the path tree visiting order[0] → order[1] → … into b
// and returns b's tree. Like MustPath it panics if order is not a
// permutation of [0,n) — the in-place generators are the trusted hot
// path, not a validation boundary.
func PathInto(b *Buf, order []int) *Tree {
	n := len(order)
	if n == 0 {
		b.t.parent = b.t.parent[:0]
		b.t.root = 0
		return &b.t
	}
	mark := Grow(&b.mark, n)
	for i := range mark {
		mark[i] = false
	}
	for _, v := range order {
		if v < 0 || v >= n || mark[v] {
			panic(fmt.Sprintf("tree: PathInto order is not a permutation of [0,%d)", n))
		}
		mark[v] = true
	}
	parent := b.parentBuf(n)
	parent[order[0]] = order[0]
	for i := 1; i < n; i++ {
		parent[order[i]] = order[i-1]
	}
	b.t.root = order[0]
	return &b.t
}

// RandomPathInto generates a directed path through a uniform random
// permutation into b — same distribution and stream consumption as
// RandomPath, which wraps it.
func RandomPathInto(b *Buf, n int, src *rng.Source) *Tree {
	order := Grow(&b.order, n)
	for i := range order {
		order[i] = i
	}
	src.Shuffle(order)
	return PathInto(b, order)
}

// RandomWithLeavesInto generates a random rooted tree on n vertices with
// exactly k leaves into b — same distribution (the skeleton-plus-
// attachment construction of RandomWithLeaves, which wraps it), same
// stream consumption, same error cases.
func RandomWithLeavesInto(b *Buf, n, k int, src *rng.Source) (*Tree, error) {
	switch {
	case n <= 0:
		return nil, fmt.Errorf("%w: need n >= 1", ErrInvalidTree)
	case n == 1:
		if k != 1 {
			return nil, fmt.Errorf("%w: n=1 has exactly 1 leaf, not %d", ErrInvalidTree, k)
		}
		return b.single(), nil
	case k < 1 || k > n-1:
		return nil, fmt.Errorf("%w: n=%d needs 1 <= k <= %d leaves, got %d", ErrInvalidTree, n, n-1, k)
	}
	m := n - k // inner vertex count, >= 1
	perm := Grow(&b.order, n)
	for i := range perm {
		perm[i] = i
	}
	src.Shuffle(perm)
	inner, leaves := perm[:m], perm[m:]

	// Build a random skeleton over the inner vertices with at most k
	// skeleton-leaves, so each skeleton-leaf can absorb a real leaf. A
	// random attachment tree ("random recursive tree") tends to have about
	// m/2 leaves; retry a few times, then fall back to a path skeleton
	// (exactly one skeleton-leaf), which always works since k >= 1.
	parent := b.parentBuf(n)
	hasChild := Grow(&b.mark, n)
	skeletonLeaves := func(build func()) []int {
		build()
		for i := range hasChild {
			hasChild[i] = false
		}
		for _, v := range inner {
			if p := parent[v]; p != v {
				hasChild[p] = true
			}
		}
		sl := b.sl[:0]
		for _, v := range inner {
			if !hasChild[v] {
				sl = append(sl, v)
			}
		}
		b.sl = sl
		return sl
	}

	var sl []int
	for attempt := 0; attempt < 8; attempt++ {
		sl = skeletonLeaves(func() {
			parent[inner[0]] = inner[0]
			for i := 1; i < m; i++ {
				parent[inner[i]] = inner[src.Intn(i)]
			}
		})
		if len(sl) <= k {
			break
		}
	}
	if len(sl) > k {
		sl = skeletonLeaves(func() {
			parent[inner[0]] = inner[0]
			for i := 1; i < m; i++ {
				parent[inner[i]] = inner[i-1]
			}
		})
	}

	// Give each skeleton-leaf one real leaf, then scatter the rest.
	for i, v := range leaves {
		if i < len(sl) {
			parent[v] = sl[i]
		} else {
			parent[v] = inner[src.Intn(m)]
		}
	}
	b.t.root = inner[0]
	return &b.t, nil
}

// RandomWithInnerInto generates a random rooted tree on n vertices with
// exactly m inner (non-leaf) vertices into b. See RandomWithLeavesInto.
func RandomWithInnerInto(b *Buf, n, m int, src *rng.Source) (*Tree, error) {
	if n == 1 {
		if m != 0 {
			return nil, fmt.Errorf("%w: n=1 has 0 inner vertices, not %d", ErrInvalidTree, m)
		}
		return b.single(), nil
	}
	return RandomWithLeavesInto(b, n, n-m, src)
}
