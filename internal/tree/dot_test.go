package tree

import (
	"strings"
	"testing"
)

func TestDOT(t *testing.T) {
	tr := MustNew([]int{1, 1, 1, 0})
	out := tr.DOT("g")
	for _, want := range []string{
		"digraph g {",
		"1 [style=filled",
		"1 -> 0;",
		"1 -> 2;",
		"0 -> 3;",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "1 -> 1") {
		t.Error("self-loop drawn")
	}
	// Edge count: n−1 arrows.
	if got := strings.Count(out, "->"); got != 3 {
		t.Errorf("drew %d edges, want 3", got)
	}
}

func TestDOTDefaultsAndEmpty(t *testing.T) {
	if out := MustNew([]int{0}).DOT(""); !strings.Contains(out, "digraph tree {") {
		t.Errorf("default name missing: %s", out)
	}
	empty, err := New(nil)
	if err != nil {
		t.Fatal(err)
	}
	if out := empty.DOT("e"); !strings.Contains(out, "digraph e {") {
		t.Errorf("empty tree DOT malformed: %s", out)
	}
}
