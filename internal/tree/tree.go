// Package tree implements rooted labeled trees on the vertex set [n] =
// {0, …, n−1}, the round graphs of the dynamic-tree broadcast model.
//
// A tree is stored as a parent array: Parent(i) is the parent of i, and the
// root is its own parent. In the broadcast model every edge is directed
// parent → child (information flows away from the root) and every node
// additionally carries a self-loop; the self-loops are implicit here and are
// materialized by the simulation engines.
//
// The package provides validation, structural queries (leaves, inner nodes,
// height, depth), the standard tree families used by the paper and by the
// Zeiner–Schwarz–Schmid lower-bound constructions (paths, stars, brooms,
// caterpillars, spiders, complete k-ary trees), a Prüfer-sequence bijection
// for uniform random generation and exhaustive enumeration, and generators
// restricted to a fixed number of leaves or inner nodes (the restricted
// adversary classes of [Zeiner et al. 2019]).
package tree

import (
	"errors"
	"fmt"
	"strings"

	"dyntreecast/internal/rng"
)

// ErrInvalidTree is wrapped by all validation failures in this package.
var ErrInvalidTree = errors.New("invalid rooted tree")

// Tree is an immutable rooted labeled tree on {0,…,n−1}.
//
// Construct with New (validating), one of the family constructors, or the
// random/enumeration helpers. The zero value is the empty tree on zero
// vertices.
type Tree struct {
	parent []int
	root   int
}

// New builds a tree from a parent array. parent[i] is the parent of node i;
// the root must satisfy parent[root] == root, and exactly one such node may
// exist. Every node must reach the root by following parents. The slice is
// copied; the caller keeps ownership of its argument.
func New(parent []int) (*Tree, error) {
	n := len(parent)
	if n == 0 {
		return &Tree{}, nil
	}
	root := -1
	for i, p := range parent {
		if p < 0 || p >= n {
			return nil, fmt.Errorf("%w: parent[%d] = %d out of range [0,%d)", ErrInvalidTree, i, p, n)
		}
		if p == i {
			if root >= 0 {
				return nil, fmt.Errorf("%w: two roots %d and %d", ErrInvalidTree, root, i)
			}
			root = i
		}
	}
	if root < 0 {
		return nil, fmt.Errorf("%w: no root (no fixed point in parent array)", ErrInvalidTree)
	}
	// Check that every node reaches the root. state: 0 unvisited, 1 on
	// current path, 2 known-good.
	state := make([]uint8, n)
	state[root] = 2
	for i := 0; i < n; i++ {
		if state[i] != 0 {
			continue
		}
		v := i
		for state[v] == 0 {
			state[v] = 1
			v = parent[v]
		}
		if state[v] == 1 {
			return nil, fmt.Errorf("%w: cycle through node %d", ErrInvalidTree, v)
		}
		v = i
		for state[v] == 1 {
			state[v] = 2
			v = parent[v]
		}
	}
	p := make([]int, n)
	copy(p, parent)
	return &Tree{parent: p, root: root}, nil
}

// MustNew is New but panics on error. For tests and literals.
func MustNew(parent []int) *Tree {
	t, err := New(parent)
	if err != nil {
		panic(err)
	}
	return t
}

// N returns the number of vertices.
func (t *Tree) N() int { return len(t.parent) }

// Root returns the root vertex. It panics on the empty tree.
func (t *Tree) Root() int {
	if len(t.parent) == 0 {
		panic("tree: Root of empty tree")
	}
	return t.root
}

// Parent returns the parent of v (the root is its own parent).
func (t *Tree) Parent(v int) int { return t.parent[v] }

// Parents returns the underlying parent array. The caller must not mutate
// the returned slice; Tree is shared freely across engines.
func (t *Tree) Parents() []int { return t.parent }

// Children returns, for each vertex, the slice of its children, computed in
// O(n). The root is not a child of itself.
func (t *Tree) Children() [][]int {
	n := len(t.parent)
	counts := make([]int, n)
	for v, p := range t.parent {
		if v != p {
			counts[p]++
		}
	}
	children := make([][]int, n)
	for v, c := range counts {
		if c > 0 {
			children[v] = make([]int, 0, c)
		}
	}
	for v, p := range t.parent {
		if v != p {
			children[p] = append(children[p], v)
		}
	}
	return children
}

// Leaves returns the vertices with no children, in increasing order. For
// n == 1 the root is a leaf.
func (t *Tree) Leaves() []int {
	n := len(t.parent)
	hasChild := make([]bool, n)
	for v, p := range t.parent {
		if v != p {
			hasChild[p] = true
		}
	}
	leaves := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if !hasChild[v] {
			leaves = append(leaves, v)
		}
	}
	return leaves
}

// NumLeaves returns the number of leaves.
func (t *Tree) NumLeaves() int { return len(t.Leaves()) }

// NumInner returns the number of inner (non-leaf) vertices.
func (t *Tree) NumInner() int { return t.N() - t.NumLeaves() }

// Depth returns the distance from the root to v (root has depth 0).
func (t *Tree) Depth(v int) int {
	d := 0
	for v != t.parent[v] {
		v = t.parent[v]
		d++
	}
	return d
}

// Height returns the maximum depth over all vertices; 0 for n <= 1.
func (t *Tree) Height() int {
	n := len(t.parent)
	if n == 0 {
		return 0
	}
	depth := make([]int, n)
	for i := range depth {
		depth[i] = -1
	}
	depth[t.root] = 0
	h := 0
	for v := 0; v < n; v++ {
		// Walk up until a node of known depth, then unwind.
		var stack []int
		u := v
		for depth[u] < 0 {
			stack = append(stack, u)
			u = t.parent[u]
		}
		d := depth[u]
		for i := len(stack) - 1; i >= 0; i-- {
			d++
			depth[stack[i]] = d
		}
		if depth[v] > h {
			h = depth[v]
		}
	}
	return h
}

// IsPath reports whether the tree is a directed path (every vertex has at
// most one child).
func (t *Tree) IsPath() bool {
	n := len(t.parent)
	childCount := make([]int, n)
	for v, p := range t.parent {
		if v != p {
			childCount[p]++
			if childCount[p] > 1 {
				return false
			}
		}
	}
	return true
}

// IsStar reports whether every non-root vertex is a child of the root.
func (t *Tree) IsStar() bool {
	for v, p := range t.parent {
		if v != p && p != t.root {
			return false
		}
	}
	return true
}

// Equal reports whether t and o are the same labeled tree.
func (t *Tree) Equal(o *Tree) bool {
	if t.N() != o.N() {
		return false
	}
	for i, p := range t.parent {
		if o.parent[i] != p {
			return false
		}
	}
	return true
}

// PathOrder returns the vertices of a path tree in root-to-leaf order. It
// returns an error if the tree is not a path.
func (t *Tree) PathOrder() ([]int, error) {
	if !t.IsPath() {
		return nil, fmt.Errorf("%w: not a path", ErrInvalidTree)
	}
	n := len(t.parent)
	order := make([]int, 0, n)
	next := make([]int, n) // next[v] = unique child of v, or -1
	for i := range next {
		next[i] = -1
	}
	for v, p := range t.parent {
		if v != p {
			next[p] = v
		}
	}
	for v := t.root; v != -1; v = next[v] {
		order = append(order, v)
	}
	return order, nil
}

// String renders the parent array compactly, e.g. "root=0 [0 0 1]".
func (t *Tree) String() string {
	if len(t.parent) == 0 {
		return "empty"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "root=%d [", t.root)
	for i, p := range t.parent {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", p)
	}
	b.WriteByte(']')
	return b.String()
}

// Key returns a compact comparable key identifying the labeled tree, for
// use as a map key in enumeration and memoization. Two trees have equal
// keys iff they are Equal.
func (t *Tree) Key() string {
	// Parent values fit in a byte up to n = 256, which covers every
	// exhaustive use; beyond that fall back to a spaced rendering.
	n := len(t.parent)
	if n <= 256 {
		b := make([]byte, n)
		for i, p := range t.parent {
			b[i] = byte(p)
		}
		return string(b)
	}
	return t.String()
}

// Path returns the path tree visiting order[0] → order[1] → … . order must
// be a permutation of [0,n).
func Path(order []int) (*Tree, error) {
	n := len(order)
	if err := checkPerm(order); err != nil {
		return nil, err
	}
	parent := make([]int, n)
	if n == 0 {
		return &Tree{}, nil
	}
	parent[order[0]] = order[0]
	for i := 1; i < n; i++ {
		parent[order[i]] = order[i-1]
	}
	return &Tree{parent: parent, root: order[0]}, nil
}

// MustPath is Path but panics on error.
func MustPath(order []int) *Tree {
	t, err := Path(order)
	if err != nil {
		panic(err)
	}
	return t
}

// IdentityPath returns the path 0 → 1 → … → n−1.
func IdentityPath(n int) *Tree {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return MustPath(order)
}

// Star returns the star with the given root and all other vertices as its
// children.
func Star(n, root int) (*Tree, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: star needs n >= 1", ErrInvalidTree)
	}
	if root < 0 || root >= n {
		return nil, fmt.Errorf("%w: star root %d out of range [0,%d)", ErrInvalidTree, root, n)
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = root
	}
	return &Tree{parent: parent, root: root}, nil
}

// Broom returns a broom: a path through handle (root first) whose last
// vertex is the parent of every vertex in bristles. handle and bristles
// together must partition [0,n) and handle must be non-empty.
func Broom(handle, bristles []int) (*Tree, error) {
	if len(handle) == 0 {
		return nil, fmt.Errorf("%w: broom needs a non-empty handle", ErrInvalidTree)
	}
	n := len(handle) + len(bristles)
	all := make([]int, 0, n)
	all = append(all, handle...)
	all = append(all, bristles...)
	if err := checkPerm(all); err != nil {
		return nil, err
	}
	parent := make([]int, n)
	parent[handle[0]] = handle[0]
	for i := 1; i < len(handle); i++ {
		parent[handle[i]] = handle[i-1]
	}
	last := handle[len(handle)-1]
	for _, b := range bristles {
		parent[b] = last
	}
	return &Tree{parent: parent, root: handle[0]}, nil
}

// Caterpillar returns a caterpillar: a path through spine (root first) with
// legs[i] attached as children of spine[i]. spine plus all legs must
// partition [0,n).
func Caterpillar(spine []int, legs [][]int) (*Tree, error) {
	if len(spine) == 0 {
		return nil, fmt.Errorf("%w: caterpillar needs a non-empty spine", ErrInvalidTree)
	}
	if len(legs) != len(spine) {
		return nil, fmt.Errorf("%w: caterpillar needs one leg set per spine vertex (got %d for %d)",
			ErrInvalidTree, len(legs), len(spine))
	}
	all := make([]int, 0, len(spine))
	all = append(all, spine...)
	for _, l := range legs {
		all = append(all, l...)
	}
	if err := checkPerm(all); err != nil {
		return nil, err
	}
	parent := make([]int, len(all))
	parent[spine[0]] = spine[0]
	for i := 1; i < len(spine); i++ {
		parent[spine[i]] = spine[i-1]
	}
	for i, l := range legs {
		for _, v := range l {
			parent[v] = spine[i]
		}
	}
	return &Tree{parent: parent, root: spine[0]}, nil
}

// Spider returns a spider: legs (vertex-disjoint paths) hanging from the
// root. root plus all legs must partition [0,n).
func Spider(root int, legs [][]int) (*Tree, error) {
	all := []int{root}
	for _, l := range legs {
		all = append(all, l...)
	}
	if err := checkPerm(all); err != nil {
		return nil, err
	}
	parent := make([]int, len(all))
	parent[root] = root
	for _, l := range legs {
		prev := root
		for _, v := range l {
			parent[v] = prev
			prev = v
		}
	}
	return &Tree{parent: parent, root: root}, nil
}

// CompleteKAry returns the complete k-ary tree on n vertices in level
// order: vertex 0 is the root and vertex i has parent (i−1)/k.
func CompleteKAry(n, k int) (*Tree, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: k-ary tree needs n >= 1", ErrInvalidTree)
	}
	if k <= 0 {
		return nil, fmt.Errorf("%w: k-ary tree needs k >= 1", ErrInvalidTree)
	}
	parent := make([]int, n)
	for i := 1; i < n; i++ {
		parent[i] = (i - 1) / k
	}
	return &Tree{parent: parent, root: 0}, nil
}

func checkPerm(vs []int) error {
	n := len(vs)
	seen := make([]bool, n)
	for _, v := range vs {
		if v < 0 || v >= n {
			return fmt.Errorf("%w: vertex %d out of range [0,%d)", ErrInvalidTree, v, n)
		}
		if seen[v] {
			return fmt.Errorf("%w: vertex %d repeated", ErrInvalidTree, v)
		}
		seen[v] = true
	}
	return nil
}

// FromPrufer decodes a Prüfer sequence into an unrooted labeled tree and
// roots it at root. seq has length n−2 for a tree on n ≥ 2 vertices; each
// entry must lie in [0,n). This is the standard bijection: rooted labeled
// trees on [n] correspond exactly to (sequence, root) pairs, giving
// Cayley's n^(n−1) count.
func FromPrufer(seq []int, n, root int) (*Tree, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: FromPrufer needs n >= 1", ErrInvalidTree)
	}
	if len(seq) != n-2 && !(n <= 2 && len(seq) == 0) {
		return nil, fmt.Errorf("%w: Prüfer sequence length %d, want %d", ErrInvalidTree, len(seq), n-2)
	}
	if root < 0 || root >= n {
		return nil, fmt.Errorf("%w: root %d out of range [0,%d)", ErrInvalidTree, root, n)
	}
	if n == 1 {
		return &Tree{parent: []int{0}, root: 0}, nil
	}
	for _, s := range seq {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("%w: Prüfer symbol %d out of range [0,%d)", ErrInvalidTree, s, n)
		}
	}
	// The decoding itself lives in Buf.decodePrufer (into.go), shared with
	// the in-place generators so the two paths cannot drift; detached so
	// the returned tree doesn't pin the decoder's scratch.
	var b Buf
	b.decodePrufer(seq, n, root)
	return b.t.detached(), nil
}

// Prufer encodes the tree's underlying unrooted labeled tree as a Prüfer
// sequence of length n−2 (empty for n ≤ 2). Together with the root it
// uniquely determines the rooted tree; see FromPrufer.
func (t *Tree) Prufer() []int {
	n := len(t.parent)
	if n <= 2 {
		return nil
	}
	// Undirected adjacency via degrees and a "neighbor xor" trick is
	// possible, but plain adjacency lists are clearer.
	adj := make([][]int, n)
	for v, p := range t.parent {
		if v != p {
			adj[v] = append(adj[v], p)
			adj[p] = append(adj[p], v)
		}
	}
	degree := make([]int, n)
	for v := range adj {
		degree[v] = len(adj[v])
	}
	removed := make([]bool, n)
	seq := make([]int, 0, n-2)
	ptr := 0
	for degree[ptr] != 1 {
		ptr++
	}
	leaf := ptr
	for len(seq) < n-2 {
		// The unique remaining neighbor of leaf.
		nb := -1
		for _, u := range adj[leaf] {
			if !removed[u] {
				nb = u
				break
			}
		}
		seq = append(seq, nb)
		removed[leaf] = true
		degree[nb]--
		if degree[nb] == 1 && nb < ptr {
			leaf = nb
		} else {
			ptr++
			for ptr < n && degree[ptr] != 1 {
				ptr++
			}
			leaf = ptr
		}
	}
	return seq
}

// detached returns a copy of t backed by exactly-sized private storage.
// The allocating generator wrappers return detached trees so a retained
// Tree never pins its generating Buf's O(n) scratch slices.
func (t *Tree) detached() *Tree {
	p := make([]int, len(t.parent))
	copy(p, t.parent)
	return &Tree{parent: p, root: t.root}
}

// Random returns a uniformly random rooted labeled tree on n vertices:
// uniform Prüfer sequence plus uniform root, covering all n^(n−1) rooted
// trees with equal probability. Thin wrapper over RandomInto (into.go).
func Random(n int, src *rng.Source) *Tree {
	var b Buf
	return RandomInto(&b, n, src).detached()
}

// RandomPath returns a directed path through a uniform random permutation.
// Thin wrapper over RandomPathInto (into.go).
func RandomPath(n int, src *rng.Source) *Tree {
	var b Buf
	return RandomPathInto(&b, n, src).detached()
}

// Enumerate calls fn once for every rooted labeled tree on n vertices, in a
// deterministic order, until fn returns false. The number of trees is
// n^(n−1) (Cayley), so this is only feasible for small n; callers guard n.
func Enumerate(n int, fn func(*Tree) bool) {
	if n <= 0 {
		return
	}
	if n == 1 {
		fn(MustNew([]int{0}))
		return
	}
	seq := make([]int, n-2)
	for {
		for root := 0; root < n; root++ {
			t, err := FromPrufer(seq, n, root)
			if err != nil {
				panic(err) // unreachable: in-range by construction
			}
			if !fn(t) {
				return
			}
		}
		// Advance seq as a base-n counter.
		i := len(seq) - 1
		for i >= 0 {
			seq[i]++
			if seq[i] < n {
				break
			}
			seq[i] = 0
			i--
		}
		if i < 0 {
			return
		}
	}
}

// Count returns n^(n−1), the number of rooted labeled trees on n vertices.
// It panics if the count overflows int64 (n > 15 on 64-bit).
func Count(n int) int64 {
	if n <= 0 {
		return 0
	}
	var c int64 = 1
	for i := 0; i < n-1; i++ {
		prev := c
		c *= int64(n)
		if c/int64(n) != prev {
			panic("tree: Count overflow")
		}
	}
	return c
}

// RandomWithLeaves returns a random rooted tree on n vertices with exactly
// k leaves. Valid ranges: n == 1 requires k == 1; n >= 2 requires
// 1 <= k <= n−1. The distribution is not uniform over all such trees (a
// skeleton-plus-attachment construction), which is sufficient for the
// restricted-adversary experiments. Thin wrapper over
// RandomWithLeavesInto (into.go).
func RandomWithLeaves(n, k int, src *rng.Source) (*Tree, error) {
	var b Buf
	t, err := RandomWithLeavesInto(&b, n, k, src)
	if err != nil {
		return nil, err
	}
	return t.detached(), nil
}

// RandomWithInner returns a random rooted tree on n vertices with exactly m
// inner (non-leaf) vertices. See RandomWithLeaves for the distribution
// caveat. Thin wrapper over RandomWithInnerInto (into.go).
func RandomWithInner(n, m int, src *rng.Source) (*Tree, error) {
	var b Buf
	t, err := RandomWithInnerInto(&b, n, m, src)
	if err != nil {
		return nil, err
	}
	return t.detached(), nil
}
