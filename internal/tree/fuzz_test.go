package tree

import (
	"reflect"
	"testing"
)

// FuzzFromPrufer fuzzes the Prüfer decoder — the untrusted decode path
// behind uniform random tree generation and exhaustive enumeration. The
// pinned properties: arbitrary (sequence, n, root) input never panics;
// every accepted input yields a structurally valid rooted tree on n
// vertices with the requested root; and the decode inverts the encode
// (Prufer ∘ FromPrufer = id), which together with the validity of New
// re-checking the parent array pins the bijection the n^(n−1) counting
// arguments rely on.
func FuzzFromPrufer(f *testing.F) {
	f.Add([]byte{}, uint8(1), uint8(0))              // singleton
	f.Add([]byte{}, uint8(2), uint8(1))              // the n=2 edge (empty sequence)
	f.Add([]byte{0, 1, 2}, uint8(5), uint8(0))       // a valid 5-vertex decode
	f.Add([]byte{3, 3, 3}, uint8(5), uint8(4))       // star-ish: repeated symbol
	f.Add([]byte{9, 0}, uint8(4), uint8(0))          // symbol out of range
	f.Add([]byte{0, 1, 2, 3}, uint8(4), uint8(0))    // wrong sequence length
	f.Add([]byte{0}, uint8(3), uint8(7))             // root out of range
	f.Add([]byte{255, 254, 253}, uint8(5), uint8(2)) // negative after int8 mapping

	f.Fuzz(func(t *testing.T, data []byte, nb, rootb uint8) {
		n := int(nb)
		root := int(int8(rootb)) // include negative roots
		seq := make([]int, len(data))
		for i, b := range data {
			seq[i] = int(int8(b)) // include negative symbols
		}
		tr, err := FromPrufer(seq, n, root)
		if err != nil {
			return // rejected inputs only need to not panic
		}
		if tr.N() != n {
			t.Fatalf("FromPrufer(%v, %d, %d).N() = %d", seq, n, root, tr.N())
		}
		if n >= 1 && tr.Root() != root {
			t.Fatalf("FromPrufer(%v, %d, %d).Root() = %d", seq, n, root, tr.Root())
		}
		// The parent array must satisfy every invariant New enforces.
		if _, err := New(tr.Parents()); err != nil {
			t.Fatalf("FromPrufer(%v, %d, %d) produced an invalid tree: %v", seq, n, root, err)
		}
		// Decode inverts encode (the bijection), except that n ≤ 2 has a
		// single unrooted tree and an always-empty sequence.
		if n >= 3 {
			if got := tr.Prufer(); !reflect.DeepEqual(got, seq) {
				t.Fatalf("Prufer(FromPrufer(%v, %d, %d)) = %v", seq, n, root, got)
			}
		}
	})
}
