package tree

import (
	"errors"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"dyntreecast/internal/rng"
)

func TestNewValid(t *testing.T) {
	tests := []struct {
		name   string
		parent []int
		root   int
	}{
		{"single", []int{0}, 0},
		{"pathOf3", []int{0, 0, 1}, 0},
		{"starRoot2", []int{2, 2, 2}, 2},
		{"branching", []int{1, 1, 1, 0, 0}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tr, err := New(tt.parent)
			if err != nil {
				t.Fatalf("New(%v) error: %v", tt.parent, err)
			}
			if got := tr.Root(); got != tt.root {
				t.Errorf("Root() = %d, want %d", got, tt.root)
			}
			if got := tr.N(); got != len(tt.parent) {
				t.Errorf("N() = %d, want %d", got, len(tt.parent))
			}
		})
	}
}

func TestNewInvalid(t *testing.T) {
	tests := []struct {
		name   string
		parent []int
	}{
		{"noRoot", []int{1, 0}},
		{"twoRoots", []int{0, 1}},
		{"cycle", []int{0, 2, 3, 1}},
		{"outOfRangeHigh", []int{0, 5}},
		{"outOfRangeNegative", []int{0, -1}},
		{"selfCycleNotRoot", []int{0, 1, 1, 3}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.parent)
			if err == nil {
				t.Fatalf("New(%v) accepted invalid tree", tt.parent)
			}
			if !errors.Is(err, ErrInvalidTree) {
				t.Errorf("error %v does not wrap ErrInvalidTree", err)
			}
		})
	}
}

func TestNewEmptyTree(t *testing.T) {
	tr, err := New(nil)
	if err != nil {
		t.Fatalf("New(nil) error: %v", err)
	}
	if tr.N() != 0 {
		t.Errorf("N() = %d, want 0", tr.N())
	}
}

func TestNewCopiesInput(t *testing.T) {
	parent := []int{0, 0}
	tr := MustNew(parent)
	parent[1] = 1
	if tr.Parent(1) != 0 {
		t.Error("Tree aliased caller's slice")
	}
}

func TestChildren(t *testing.T) {
	tr := MustNew([]int{1, 1, 1, 0, 0})
	children := tr.Children()
	want := [][]int{3: {}, 4: {}}
	_ = want
	if got := children[1]; !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("children of root = %v, want [0 2]", got)
	}
	if got := children[0]; !reflect.DeepEqual(got, []int{3, 4}) {
		t.Errorf("children of 0 = %v, want [3 4]", got)
	}
	for _, leaf := range []int{2, 3, 4} {
		if len(children[leaf]) != 0 {
			t.Errorf("leaf %d has children %v", leaf, children[leaf])
		}
	}
}

func TestLeavesAndInner(t *testing.T) {
	tests := []struct {
		name   string
		tree   *Tree
		leaves []int
	}{
		{"single", MustNew([]int{0}), []int{0}},
		{"path", IdentityPath(4), []int{3}},
		{"star", mustStar(5, 0), []int{1, 2, 3, 4}},
		{"branching", MustNew([]int{1, 1, 1, 0, 0}), []int{2, 3, 4}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.tree.Leaves(); !reflect.DeepEqual(got, tt.leaves) {
				t.Errorf("Leaves() = %v, want %v", got, tt.leaves)
			}
			if got := tt.tree.NumLeaves(); got != len(tt.leaves) {
				t.Errorf("NumLeaves() = %d, want %d", got, len(tt.leaves))
			}
			if got := tt.tree.NumInner(); got != tt.tree.N()-len(tt.leaves) {
				t.Errorf("NumInner() = %d, want %d", got, tt.tree.N()-len(tt.leaves))
			}
		})
	}
}

func mustStar(n, root int) *Tree {
	s, err := Star(n, root)
	if err != nil {
		panic(err)
	}
	return s
}

func TestDepthHeight(t *testing.T) {
	tr := MustNew([]int{0, 0, 1, 2, 0}) // 0 -> {1,4}, 1 -> 2, 2 -> 3
	wantDepth := []int{0, 1, 2, 3, 1}
	for v, want := range wantDepth {
		if got := tr.Depth(v); got != want {
			t.Errorf("Depth(%d) = %d, want %d", v, got, want)
		}
	}
	if got := tr.Height(); got != 3 {
		t.Errorf("Height() = %d, want 3", got)
	}
	if got := MustNew([]int{0}).Height(); got != 0 {
		t.Errorf("Height of single node = %d, want 0", got)
	}
}

func TestIsPathIsStar(t *testing.T) {
	tests := []struct {
		name   string
		tree   *Tree
		isPath bool
		isStar bool
	}{
		{"single", MustNew([]int{0}), true, true},
		{"twoNodes", MustNew([]int{0, 0}), true, true},
		{"path4", IdentityPath(4), true, false},
		{"star4", mustStar(4, 0), false, true},
		{"branching", MustNew([]int{1, 1, 1, 0, 0}), false, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.tree.IsPath(); got != tt.isPath {
				t.Errorf("IsPath() = %v, want %v", got, tt.isPath)
			}
			if got := tt.tree.IsStar(); got != tt.isStar {
				t.Errorf("IsStar() = %v, want %v", got, tt.isStar)
			}
		})
	}
}

func TestPathOrder(t *testing.T) {
	order := []int{2, 0, 3, 1}
	tr := MustPath(order)
	got, err := tr.PathOrder()
	if err != nil {
		t.Fatalf("PathOrder error: %v", err)
	}
	if !reflect.DeepEqual(got, order) {
		t.Errorf("PathOrder() = %v, want %v", got, order)
	}
	if _, err := mustStar(4, 0).PathOrder(); err == nil {
		t.Error("PathOrder on a star did not fail")
	}
}

func TestPathConstructor(t *testing.T) {
	tr := MustPath([]int{1, 0, 2})
	if tr.Root() != 1 {
		t.Errorf("Root() = %d, want 1", tr.Root())
	}
	if tr.Parent(0) != 1 || tr.Parent(2) != 0 {
		t.Errorf("unexpected parents: %v", tr.Parents())
	}
	if _, err := Path([]int{0, 0, 1}); err == nil {
		t.Error("Path accepted a non-permutation")
	}
	if _, err := Path([]int{0, 5}); err == nil {
		t.Error("Path accepted out-of-range vertices")
	}
}

func TestStarErrors(t *testing.T) {
	if _, err := Star(0, 0); err == nil {
		t.Error("Star(0,0) did not fail")
	}
	if _, err := Star(3, 5); err == nil {
		t.Error("Star with bad root did not fail")
	}
}

func TestBroom(t *testing.T) {
	tr, err := Broom([]int{0, 1, 2}, []int{3, 4})
	if err != nil {
		t.Fatalf("Broom error: %v", err)
	}
	if tr.Root() != 0 {
		t.Errorf("Root() = %d, want 0", tr.Root())
	}
	if tr.Parent(3) != 2 || tr.Parent(4) != 2 {
		t.Errorf("bristles not attached to handle end: %v", tr.Parents())
	}
	if got := tr.NumLeaves(); got != 2 {
		t.Errorf("NumLeaves() = %d, want 2", got)
	}
	if _, err := Broom(nil, []int{0}); err == nil {
		t.Error("Broom with empty handle did not fail")
	}
	if _, err := Broom([]int{0, 0}, []int{1}); err == nil {
		t.Error("Broom with repeated vertex did not fail")
	}
}

func TestCaterpillar(t *testing.T) {
	tr, err := Caterpillar([]int{0, 1}, [][]int{{2}, {3, 4}})
	if err != nil {
		t.Fatalf("Caterpillar error: %v", err)
	}
	if tr.Parent(2) != 0 || tr.Parent(3) != 1 || tr.Parent(4) != 1 {
		t.Errorf("legs misattached: %v", tr.Parents())
	}
	if _, err := Caterpillar([]int{0}, [][]int{{1}, {2}}); err == nil {
		t.Error("Caterpillar with mismatched legs did not fail")
	}
	if _, err := Caterpillar(nil, nil); err == nil {
		t.Error("Caterpillar with empty spine did not fail")
	}
}

func TestSpider(t *testing.T) {
	tr, err := Spider(0, [][]int{{1, 2}, {3}})
	if err != nil {
		t.Fatalf("Spider error: %v", err)
	}
	if tr.Parent(1) != 0 || tr.Parent(2) != 1 || tr.Parent(3) != 0 {
		t.Errorf("spider legs misattached: %v", tr.Parents())
	}
	if got := tr.NumLeaves(); got != 2 {
		t.Errorf("NumLeaves() = %d, want 2", got)
	}
}

func TestCompleteKAry(t *testing.T) {
	tr, err := CompleteKAry(7, 2)
	if err != nil {
		t.Fatalf("CompleteKAry error: %v", err)
	}
	if got := tr.Height(); got != 2 {
		t.Errorf("Height() = %d, want 2", got)
	}
	if got := tr.NumLeaves(); got != 4 {
		t.Errorf("NumLeaves() = %d, want 4", got)
	}
	if _, err := CompleteKAry(0, 2); err == nil {
		t.Error("CompleteKAry(0,2) did not fail")
	}
	if _, err := CompleteKAry(3, 0); err == nil {
		t.Error("CompleteKAry(3,0) did not fail")
	}
}

func TestEqualAndKey(t *testing.T) {
	a := MustNew([]int{0, 0, 1})
	b := MustNew([]int{0, 0, 1})
	c := MustNew([]int{0, 0, 0})
	if !a.Equal(b) {
		t.Error("equal trees reported unequal")
	}
	if a.Equal(c) {
		t.Error("unequal trees reported equal")
	}
	if a.Key() != b.Key() {
		t.Error("equal trees have different keys")
	}
	if a.Key() == c.Key() {
		t.Error("unequal trees share a key")
	}
}

func TestPruferRoundTrip(t *testing.T) {
	// decode(encode(t), root) must reproduce t for assorted trees.
	trees := []*Tree{
		IdentityPath(2),
		IdentityPath(6),
		mustStar(6, 3),
		MustNew([]int{1, 1, 1, 0, 0}),
		MustNew([]int{0, 0, 1, 2, 0, 4, 4}),
	}
	for _, tr := range trees {
		seq := tr.Prufer()
		back, err := FromPrufer(seq, tr.N(), tr.Root())
		if err != nil {
			t.Fatalf("FromPrufer(%v) error: %v", seq, err)
		}
		if !back.Equal(tr) {
			t.Errorf("round trip of %v gave %v (seq %v)", tr, back, seq)
		}
	}
}

func TestPruferSequenceRoundTrip(t *testing.T) {
	// encode(decode(seq)) must reproduce seq: checks the bijection in the
	// other direction, exhaustively for n = 5.
	n := 5
	seq := make([]int, n-2)
	var rec func(i int)
	rec = func(i int) {
		if i == len(seq) {
			tr, err := FromPrufer(seq, n, 0)
			if err != nil {
				t.Fatalf("FromPrufer(%v): %v", seq, err)
			}
			if got := tr.Prufer(); !reflect.DeepEqual(got, seq) {
				t.Fatalf("Prufer(FromPrufer(%v)) = %v", seq, got)
			}
			return
		}
		for v := 0; v < n; v++ {
			seq[i] = v
			rec(i + 1)
		}
	}
	rec(0)
}

func TestFromPruferErrors(t *testing.T) {
	tests := []struct {
		name string
		seq  []int
		n    int
		root int
	}{
		{"badLength", []int{0}, 4, 0},
		{"badRoot", []int{0, 0}, 4, 4},
		{"badSymbol", []int{9, 0}, 4, 0},
		{"zeroN", nil, 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := FromPrufer(tt.seq, tt.n, tt.root); err == nil {
				t.Error("no error")
			}
		})
	}
}

func TestEnumerateCounts(t *testing.T) {
	// Cayley: n^(n-1) rooted labeled trees, all distinct, all valid.
	for n := 1; n <= 5; n++ {
		seen := map[string]bool{}
		Enumerate(n, func(tr *Tree) bool {
			if tr.N() != n {
				t.Fatalf("n=%d: enumerated tree on %d vertices", n, tr.N())
			}
			if _, err := New(tr.Parents()); err != nil {
				t.Fatalf("n=%d: enumerated invalid tree %v: %v", n, tr, err)
			}
			key := tr.Key()
			if seen[key] {
				t.Fatalf("n=%d: duplicate tree %v", n, tr)
			}
			seen[key] = true
			return true
		})
		if want := int(Count(n)); len(seen) != want {
			t.Errorf("n=%d: enumerated %d trees, want %d", n, len(seen), want)
		}
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	calls := 0
	Enumerate(4, func(*Tree) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Errorf("early stop after %d calls, want 3", calls)
	}
}

func TestCount(t *testing.T) {
	tests := []struct {
		n    int
		want int64
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 9}, {4, 64}, {5, 625}, {10, 1000000000},
	}
	for _, tt := range tests {
		if got := Count(tt.n); got != tt.want {
			t.Errorf("Count(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestRandomValidAndVaried(t *testing.T) {
	src := rng.New(1)
	for _, n := range []int{1, 2, 3, 10, 50} {
		keys := map[string]bool{}
		for i := 0; i < 30; i++ {
			tr := Random(n, src)
			if _, err := New(tr.Parents()); err != nil {
				t.Fatalf("Random(%d) produced invalid tree: %v", n, err)
			}
			keys[tr.Key()] = true
		}
		if n >= 10 && len(keys) < 25 {
			t.Errorf("Random(%d): only %d distinct trees in 30 draws", n, len(keys))
		}
	}
}

func TestRandomUniformN3(t *testing.T) {
	// For n=3 there are 9 rooted trees; check each arrives with frequency
	// near 1/9 over many draws.
	src := rng.New(42)
	const draws = 18000
	counts := map[string]int{}
	for i := 0; i < draws; i++ {
		counts[Random(3, src).Key()]++
	}
	if len(counts) != 9 {
		t.Fatalf("saw %d distinct trees, want 9", len(counts))
	}
	want := draws / 9
	for k, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Errorf("tree %q: %d draws, want about %d", k, c, want)
		}
	}
}

func TestRandomPath(t *testing.T) {
	src := rng.New(5)
	tr := RandomPath(20, src)
	if !tr.IsPath() {
		t.Error("RandomPath did not return a path")
	}
	if tr.N() != 20 {
		t.Errorf("N() = %d, want 20", tr.N())
	}
}

func TestRandomWithLeaves(t *testing.T) {
	src := rng.New(9)
	for _, tt := range []struct{ n, k int }{
		{2, 1}, {5, 1}, {5, 4}, {10, 3}, {10, 9}, {30, 7}, {1, 1},
	} {
		for i := 0; i < 20; i++ {
			tr, err := RandomWithLeaves(tt.n, tt.k, src)
			if err != nil {
				t.Fatalf("RandomWithLeaves(%d,%d): %v", tt.n, tt.k, err)
			}
			if _, err := New(tr.Parents()); err != nil {
				t.Fatalf("RandomWithLeaves(%d,%d) invalid: %v", tt.n, tt.k, err)
			}
			if got := tr.NumLeaves(); got != tt.k {
				t.Fatalf("RandomWithLeaves(%d,%d) has %d leaves", tt.n, tt.k, got)
			}
		}
	}
}

func TestRandomWithLeavesErrors(t *testing.T) {
	src := rng.New(9)
	for _, tt := range []struct{ n, k int }{
		{0, 1}, {1, 2}, {5, 0}, {5, 5}, {5, -1},
	} {
		if _, err := RandomWithLeaves(tt.n, tt.k, src); err == nil {
			t.Errorf("RandomWithLeaves(%d,%d) did not fail", tt.n, tt.k)
		}
	}
}

func TestRandomWithInner(t *testing.T) {
	src := rng.New(10)
	for _, tt := range []struct{ n, m int }{{1, 0}, {5, 1}, {10, 4}} {
		tr, err := RandomWithInner(tt.n, tt.m, src)
		if err != nil {
			t.Fatalf("RandomWithInner(%d,%d): %v", tt.n, tt.m, err)
		}
		if got := tr.NumInner(); got != tt.m {
			t.Errorf("RandomWithInner(%d,%d) has %d inner vertices", tt.n, tt.m, got)
		}
	}
	if _, err := RandomWithInner(1, 1, src); err == nil {
		t.Error("RandomWithInner(1,1) did not fail")
	}
}

func TestPropertyRandomTreeRoundTrips(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 2 + src.Intn(40)
		tr := Random(n, src)
		back, err := FromPrufer(tr.Prufer(), n, tr.Root())
		return err == nil && back.Equal(tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyLeafInnerPartition(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 1 + src.Intn(60)
		tr := Random(n, src)
		leaves := tr.Leaves()
		// leaves sorted, within range, and NumLeaves + NumInner == n.
		if !sort.IntsAreSorted(leaves) {
			return false
		}
		return tr.NumLeaves()+tr.NumInner() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDepthConsistentWithParent(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 2 + src.Intn(40)
		tr := Random(n, src)
		for v := 0; v < n; v++ {
			if v == tr.Root() {
				if tr.Depth(v) != 0 {
					return false
				}
				continue
			}
			if tr.Depth(v) != tr.Depth(tr.Parent(v))+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRandom(b *testing.B) {
	for _, n := range []int{16, 128, 1024} {
		b.Run(benchName(n), func(b *testing.B) {
			src := rng.New(1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = Random(n, src)
			}
		})
	}
}

func BenchmarkPruferEncode(b *testing.B) {
	src := rng.New(2)
	tr := Random(1024, src)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tr.Prufer()
	}
}

func benchName(n int) string {
	switch n {
	case 16:
		return "n16"
	case 128:
		return "n128"
	default:
		return "n1024"
	}
}
