package tree

// DepthOrder is reusable scratch for computing child-before-parent vertex
// orders from a parent array. Both round engines need such an order to
// apply a round in place: writing K_y (or the transposed word-column y)
// before any child reads it would leak post-round state into the round, so
// every vertex must be processed before its parent. A reverse breadth-first
// traversal over child buckets gives exactly that with four sequential
// passes — no per-vertex up-walks — and the zero value is ready to use; the
// scratch grows to the largest n seen and is reused across calls, so steady
// state allocates nothing.
type DepthOrder struct {
	order []int
	cnt   []int
	start []int
	kids  []int
}

// Fill computes a permutation of [0,n) in which every vertex appears
// before its parent (a reversed BFS from the root, so depths are
// non-increasing along the permutation), for n = len(parents).
// parents must be a valid rooted-tree parent array as
// produced by Tree.Parents: exactly one root with parents[root] == root,
// all vertices reaching it. The returned slice aliases the receiver's
// scratch and is valid until the next Fill.
func (o *DepthOrder) Fill(parents []int) []int {
	n := len(parents)
	if n == 0 {
		return o.order[:0]
	}
	o.grow(n)
	cnt, start, kids, order := o.cnt[:n], o.start[:n], o.kids[:n], o.order[:n]

	// Pass 1: child counts and the root.
	for i := range cnt {
		cnt[i] = 0
	}
	root := 0
	for v, p := range parents {
		if p == v {
			root = v
		} else {
			cnt[p]++
		}
	}
	// Pass 2: bucket offsets.
	idx := 0
	for v := 0; v < n; v++ {
		start[v] = idx
		idx += cnt[v]
	}
	// Pass 3: fill child buckets, advancing start as the write cursor so
	// afterwards start[v] is the END of v's bucket (begin = start[v]-cnt[v]).
	for v, p := range parents {
		if p != v {
			kids[start[p]] = v
			start[p]++
		}
	}
	// Pass 4: BFS from the root written back-to-front, so reading order
	// forward yields leaves-before-root.
	order[n-1] = root
	w := n - 2
	for i := n - 1; i > w; i-- {
		v := order[i]
		for k := start[v] - cnt[v]; k < start[v]; k++ {
			order[w] = kids[k]
			w--
		}
	}
	return order
}

func (o *DepthOrder) grow(n int) {
	if cap(o.order) >= n {
		return
	}
	o.order = make([]int, n)
	o.cnt = make([]int, n)
	o.start = make([]int, n)
	o.kids = make([]int, n)
}
