package tree

import (
	"testing"

	"dyntreecast/internal/rng"
)

// TestRandomIntoMatchesRandom: the in-place generator consumes the same
// stream and produces the same trees as the allocating form, across many
// sizes — the property the batched pipeline's byte-identity rests on.
func TestRandomIntoMatchesRandom(t *testing.T) {
	var b Buf
	for _, n := range []int{1, 2, 3, 5, 17, 64} {
		srcA, srcB := rng.New(uint64(n)), rng.New(uint64(n))
		for trial := 0; trial < 20; trial++ {
			want := Random(n, srcA)
			got := RandomInto(&b, n, srcB)
			if !want.Equal(got) {
				t.Fatalf("n=%d trial %d: trees differ:\n  want %v\n  got  %v", n, trial, want, got)
			}
		}
		// Streams must stay in lockstep afterwards too.
		if srcA.Uint64() != srcB.Uint64() {
			t.Fatalf("n=%d: stream positions diverged", n)
		}
	}
}

// TestRandomPathIntoMatchesRandomPath mirrors the Random test for paths.
func TestRandomPathIntoMatchesRandomPath(t *testing.T) {
	var b Buf
	for _, n := range []int{1, 2, 9, 40} {
		srcA, srcB := rng.New(uint64(n)+5), rng.New(uint64(n)+5)
		for trial := 0; trial < 10; trial++ {
			want := RandomPath(n, srcA)
			got := RandomPathInto(&b, n, srcB)
			if !want.Equal(got) {
				t.Fatalf("n=%d trial %d: paths differ", n, trial)
			}
			if !got.IsPath() {
				t.Fatalf("n=%d trial %d: not a path: %v", n, trial, got)
			}
		}
	}
}

// TestRandomWithLeavesIntoMatches: same stream, same trees, same error
// cases as the allocating form, plus structural validity of the reused
// buffer's output.
func TestRandomWithLeavesIntoMatches(t *testing.T) {
	var b Buf
	for _, n := range []int{1, 2, 6, 20} {
		for k := 0; k <= n; k++ {
			srcA, srcB := rng.New(uint64(n*100+k)), rng.New(uint64(n*100+k))
			for trial := 0; trial < 5; trial++ {
				want, errA := RandomWithLeaves(n, k, srcA)
				got, errB := RandomWithLeavesInto(&b, n, k, srcB)
				if (errA == nil) != (errB == nil) {
					t.Fatalf("n=%d k=%d: error mismatch: %v vs %v", n, k, errA, errB)
				}
				if errA != nil {
					if errA.Error() != errB.Error() {
						t.Fatalf("n=%d k=%d: error strings differ: %q vs %q", n, k, errA, errB)
					}
					break // no stream consumed on errors; next k
				}
				if !want.Equal(got) {
					t.Fatalf("n=%d k=%d trial %d: trees differ", n, k, trial)
				}
				// The in-place tree must be a valid tree with exactly k
				// leaves (revalidate through the checking constructor).
				re, err := New(got.Parents())
				if err != nil {
					t.Fatalf("n=%d k=%d: invalid in-place tree: %v", n, k, err)
				}
				if re.NumLeaves() != k {
					t.Fatalf("n=%d k=%d: got %d leaves", n, k, re.NumLeaves())
				}
			}
		}
	}
}

// TestRandomWithInnerIntoMatches spot-checks the inner-node form.
func TestRandomWithInnerIntoMatches(t *testing.T) {
	var b Buf
	src := rng.New(9)
	src2 := rng.New(9)
	for trial := 0; trial < 10; trial++ {
		want, errA := RandomWithInner(12, 4, src)
		got, errB := RandomWithInnerInto(&b, 12, 4, src2)
		if errA != nil || errB != nil || !want.Equal(got) {
			t.Fatalf("trial %d: %v/%v, equal=%v", trial, errA, errB, want.Equal(got))
		}
	}
}

// TestPathInto: in-place path construction matches MustPath and rejects
// non-permutations.
func TestPathInto(t *testing.T) {
	var b Buf
	order := []int{2, 0, 3, 1}
	if got, want := PathInto(&b, order), MustPath(order); !got.Equal(want) {
		t.Fatalf("PathInto = %v, want %v", got, want)
	}
	if got := PathInto(&b, nil); got.N() != 0 {
		t.Fatalf("empty PathInto has %d vertices", got.N())
	}
	defer func() {
		if recover() == nil {
			t.Error("PathInto accepted a repeated vertex")
		}
	}()
	PathInto(&b, []int{0, 0, 1})
}

// TestBufReuseAcrossSizes: one Buf serves shrinking and growing n
// without carrying stale state across generations.
func TestBufReuseAcrossSizes(t *testing.T) {
	var b Buf
	src := rng.New(3)
	for _, n := range []int{32, 4, 1, 19, 2, 32} {
		got := RandomInto(&b, n, src)
		if got.N() != n {
			t.Fatalf("generated %d vertices, want %d", got.N(), n)
		}
		if _, err := New(got.Parents()); err != nil {
			t.Fatalf("n=%d: invalid tree: %v", n, err)
		}
		if got != b.Tree() {
			t.Fatalf("n=%d: returned tree is not the Buf's", n)
		}
	}
}

// TestRandomIntoAllocs: a warm Buf generates with zero allocations.
func TestRandomIntoAllocs(t *testing.T) {
	var b Buf
	src := rng.New(7)
	RandomInto(&b, 64, src)
	if allocs := testing.AllocsPerRun(50, func() { RandomInto(&b, 64, src) }); allocs > 0 {
		t.Errorf("warm RandomInto allocates %.1f objects/run, want 0", allocs)
	}
	RandomPathInto(&b, 64, src)
	if allocs := testing.AllocsPerRun(50, func() { RandomPathInto(&b, 64, src) }); allocs > 0 {
		t.Errorf("warm RandomPathInto allocates %.1f objects/run, want 0", allocs)
	}
	if _, err := RandomWithLeavesInto(&b, 64, 4, src); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		if _, err := RandomWithLeavesInto(&b, 64, 4, src); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0 {
		t.Errorf("warm RandomWithLeavesInto allocates %.1f objects/run, want 0", allocs)
	}
}
