package tree

import (
	"testing"

	"dyntreecast/internal/rng"
)

// checkChildBeforeParent verifies the Fill contract on one tree: the
// result is a permutation of [0,n) and every vertex appears strictly
// before its parent.
func checkChildBeforeParent(t *testing.T, tr *Tree, order []int) {
	t.Helper()
	n := tr.N()
	if len(order) != n {
		t.Fatalf("order length %d, want %d", len(order), n)
	}
	pos := make([]int, n)
	seen := make([]bool, n)
	for i, v := range order {
		if v < 0 || v >= n || seen[v] {
			t.Fatalf("order is not a permutation: %v", order)
		}
		seen[v] = true
		pos[v] = i
	}
	for v := 0; v < n; v++ {
		if p := tr.Parent(v); p != v && pos[v] >= pos[p] {
			t.Fatalf("vertex %d (pos %d) not before parent %d (pos %d) in %v",
				v, pos[v], p, pos[p], tr)
		}
	}
}

func TestDepthOrderFamilies(t *testing.T) {
	var o DepthOrder
	trees := []*Tree{
		MustNew([]int{0}),
		IdentityPath(8),
		MustPath([]int{3, 1, 0, 2}),
	}
	if s, err := Star(9, 4); err == nil {
		trees = append(trees, s)
	}
	if k, err := CompleteKAry(31, 3); err == nil {
		trees = append(trees, k)
	}
	for _, tr := range trees {
		checkChildBeforeParent(t, tr, o.Fill(tr.Parents()))
	}
}

func TestDepthOrderRandom(t *testing.T) {
	var o DepthOrder
	src := rng.New(42)
	// Interleave sizes to exercise scratch reuse across n, including the
	// shrink-then-grow path.
	for trial := 0; trial < 200; trial++ {
		n := 1 + trial%97
		tr := Random(n, src)
		checkChildBeforeParent(t, tr, o.Fill(tr.Parents()))
	}
}

func TestDepthOrderExhaustiveSmall(t *testing.T) {
	var o DepthOrder
	for n := 1; n <= 5; n++ {
		Enumerate(n, func(tr *Tree) bool {
			checkChildBeforeParent(t, tr, o.Fill(tr.Parents()))
			return true
		})
	}
}

func TestDepthOrderEmpty(t *testing.T) {
	var o DepthOrder
	if got := o.Fill(nil); len(got) != 0 {
		t.Fatalf("Fill(nil) = %v, want empty", got)
	}
}

func TestDepthOrderNoAllocSteadyState(t *testing.T) {
	var o DepthOrder
	tr := Random(64, rng.New(7))
	o.Fill(tr.Parents()) // warm the scratch
	allocs := testing.AllocsPerRun(100, func() {
		o.Fill(tr.Parents())
	})
	if allocs != 0 {
		t.Fatalf("Fill allocated %.1f/op in steady state, want 0", allocs)
	}
}
