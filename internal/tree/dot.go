package tree

import (
	"fmt"
	"strings"
)

// DOT renders the tree in Graphviz dot format, with the root highlighted.
// Self-loops (implicit in the broadcast model) are not drawn. name must be
// a valid dot identifier; it defaults to "tree" when empty.
func (t *Tree) DOT(name string) string {
	if name == "" {
		name = "tree"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n", name)
	b.WriteString("  rankdir=TB;\n")
	b.WriteString("  node [shape=circle];\n")
	if t.N() > 0 {
		fmt.Fprintf(&b, "  %d [style=filled, fillcolor=lightgray]; // root\n", t.root)
	}
	for v, p := range t.parent {
		if v != p {
			fmt.Fprintf(&b, "  %d -> %d;\n", p, v)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
