// Package stats provides the small summary-statistics toolkit used by the
// experiment harness: per-series mean/deviation/percentiles over repeated
// simulation runs.
//
// Every randomized table in the reproduction flows through here — the
// best-measured sweeps of Figure 1 (experiment E1), the restricted-regime
// means of E5, the gossip/broadcast ratios of E9 — as do the campaign
// layer's per-cell aggregates (count/mean/stddev/min/max/p50/p99), whose
// byte-stability across worker counts rests on these functions being
// deterministic, order-respecting folds.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of measurements.
type Summary struct {
	Count  int
	Mean   float64
	StdDev float64 // sample standard deviation (n−1 denominator)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	s := Summary{Count: n, Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(n)
	if n > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(n-1))
	}
	s.Median = Percentile(xs, 50)
	return s
}

// SummarizeInts converts and summarizes integer measurements (the common
// case: round counts).
func SummarizeInts(xs []int) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty sample
// and panics on out-of-range p.
func Percentile(xs []float64, p float64) float64 {
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of [0,100]", p))
	}
	n := len(xs)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)
	if n == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f sd=%.2f min=%g med=%g max=%g",
		s.Count, s.Mean, s.StdDev, s.Min, s.Median, s.Max)
}
