package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 {
		t.Errorf("Count = %d", s.Count)
	}
	if s.Mean != 3 {
		t.Errorf("Mean = %v", s.Mean)
	}
	if math.Abs(s.StdDev-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("StdDev = %v, want sqrt(2.5)", s.StdDev)
	}
	if s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("Min/Max/Median = %v/%v/%v", s.Min, s.Max, s.Median)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s != (Summary{}) {
		t.Errorf("empty sample: %+v", s)
	}
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.StdDev != 0 || s.Median != 7 {
		t.Errorf("singleton: %+v", s)
	}
}

func TestSummarizeInts(t *testing.T) {
	s := SummarizeInts([]int{2, 4})
	if s.Mean != 3 || s.Min != 2 || s.Max != 4 {
		t.Errorf("SummarizeInts: %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5}, {75, 32.5},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile of empty = %v", got)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, p := range []float64{-1, 101} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Percentile(%v) did not panic", p)
				}
			}()
			Percentile([]float64{1}, p)
		}()
	}
}

func TestPropertyMeanWithinMinMax(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min-1e-9 <= s.Mean && s.Mean <= s.Max+1e-9 &&
			s.Min <= s.Median && s.Median <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	if got := Summarize([]float64{1, 2}).String(); got == "" {
		t.Error("empty String()")
	}
}
