package server

import (
	"math"
	"net/http"
	"strconv"
	"time"

	"dyntreecast/internal/metrics"
)

// HTTP-layer instruments (DESIGN.md §3f): request counts and latencies
// per mux route, plus the live stream-subscriber gauge. The route label
// is the ServeMux pattern ("GET /campaigns/{id}"), never the raw URL, so
// cardinality stays bounded no matter what clients request.
var (
	mRequests = metrics.Default.CounterVec("server_http_requests_total",
		"HTTP requests served, by mux route pattern and status code.",
		"route", "code")
	mDurations = metrics.Default.HistogramVec("server_http_request_duration_seconds",
		"HTTP request latency by route. Streams count their full lifetime, so long tails here are subscribers, not slowness.",
		metrics.ExpBuckets(0.001, 4, 8), "route")
	mStreams = metrics.Default.Gauge("server_streams_active",
		"Live /stream subscribers (JSONL and SSE).")
	mCampaignsSubmitted = metrics.Default.Counter("server_campaigns_submitted_total",
		"Campaign specs accepted by POST /campaigns.")
)

// statusRecorder captures the response status for the request counter
// while passing Flush through, so streaming handlers behave identically
// under instrumentation.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// Flush implements http.Flusher so /stream keeps flushing through the
// recorder.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.ResponseController.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// instrument wraps the server's mux with the request counter and latency
// histogram. The route label is resolved through the mux's own matcher
// before serving; unmatched requests share one "(unmatched)" series.
func (s *Server) instrument(w http.ResponseWriter, req *http.Request) {
	_, route := s.mux.Handler(req)
	if route == "" {
		route = "(unmatched)"
	}
	rec := &statusRecorder{ResponseWriter: w}
	start := time.Now()
	s.mux.ServeHTTP(rec, req)
	if rec.code == 0 {
		rec.code = http.StatusOK
	}
	mRequests.With(route, statusText(rec.code)).Inc()
	mDurations.With(route).Observe(time.Since(start).Seconds())
}

// roundRate trims a trials/sec figure to one decimal so status JSON stays
// readable; it is presentation only and never feeds an artifact.
func roundRate(r float64) float64 {
	return math.Round(r*10) / 10
}

// statusText renders a status code label without allocating for the
// common codes.
func statusText(code int) string {
	switch code {
	case http.StatusOK:
		return "200"
	case http.StatusAccepted:
		return "202"
	case http.StatusNoContent:
		return "204"
	case http.StatusBadRequest:
		return "400"
	case http.StatusNotFound:
		return "404"
	case http.StatusConflict:
		return "409"
	case http.StatusServiceUnavailable:
		return "503"
	}
	return strconv.Itoa(code)
}
