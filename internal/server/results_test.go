package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"dyntreecast/internal/store"
)

// storeServer starts a test daemon backed by a fresh warehouse, with the
// warehouse doubling as the campaign cell cache — the cmd/campaignd
// -store wiring.
func storeServer(t *testing.T) (*Server, *httptest.Server, *store.Store) {
	t.Helper()
	st, err := store.Open(filepath.Join(t.TempDir(), "warehouse"))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Options{Workers: 2, Store: st, Cache: st.Cache()})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts, st
}

func getJSON(t *testing.T, ts *httptest.Server, path string, v any) int {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
	}
	return resp.StatusCode
}

// TestResultsEndToEnd is the acceptance flow: a campaign run with -store
// becomes queryable over paginated GET /results with scenario/n/goal
// filters, and a cache-warm re-run diffs empty against it.
func TestResultsEndToEnd(t *testing.T) {
	_, ts, _ := storeServer(t)
	id, _ := submit(t, ts, specJSON)
	waitDone(t, ts, id)

	// Paginated walk with a tiny page size.
	var rows []store.Row
	cursor := ""
	pages := 0
	for {
		var page store.Page
		path := "/results?campaign=" + url.QueryEscape(id) + "&limit=3"
		if cursor != "" {
			path += "&cursor=" + url.QueryEscape(cursor)
		}
		if code := getJSON(t, ts, path, &page); code != http.StatusOK {
			t.Fatalf("GET /results: %d", code)
		}
		pages++
		rows = append(rows, page.Rows...)
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if len(rows) != 4 || pages != 2 {
		t.Fatalf("walked %d rows in %d pages, want 4 in 2", len(rows), pages)
	}

	// Filters: scenario, n, goal.
	var page store.Page
	if getJSON(t, ts, "/results?adversary=random-tree&n=8&goal=broadcast", &page); len(page.Rows) != 1 {
		t.Errorf("filtered query returned %d rows, want 1", len(page.Rows))
	}
	if code := getJSON(t, ts, "/results?campaign=missing", nil); code != http.StatusNotFound {
		t.Errorf("unknown campaign: %d, want 404", code)
	}
	if code := getJSON(t, ts, "/results?n=minus-one", nil); code != http.StatusBadRequest {
		t.Errorf("bad n: %d, want 400", code)
	}
	if code := getJSON(t, ts, "/results?cursor=!!!", nil); code != http.StatusBadRequest {
		t.Errorf("bad cursor: %d, want 400", code)
	}

	// A cache-warm re-run of the same spec ingests under a fresh run id
	// with identical content addresses: the diff is empty.
	id2, _ := submit(t, ts, specJSON)
	waitDone(t, ts, id2)
	var d store.DiffResult
	if code := getJSON(t, ts, "/results/diff?a="+url.QueryEscape(id)+"&b="+url.QueryEscape(id2), &d); code != http.StatusOK {
		t.Fatalf("GET /results/diff: %d", code)
	}
	if len(d.Entries) != 0 || d.Identical != 4 {
		t.Errorf("warm re-run diff: %d entries, %d identical; want 0, 4", len(d.Entries), d.Identical)
	}
	if code := getJSON(t, ts, "/results/diff?a="+url.QueryEscape(id), nil); code != http.StatusBadRequest {
		t.Errorf("half a diff: %d, want 400", code)
	}
	if code := getJSON(t, ts, "/results/diff?a=x&b=y", nil); code != http.StatusNotFound {
		t.Errorf("diff of unknown ids: %d, want 404", code)
	}

	// Campaign listing and curves.
	var infos []store.CampaignInfo
	if code := getJSON(t, ts, "/results/campaigns", &infos); code != http.StatusOK || len(infos) != 2 {
		t.Errorf("campaign listing: code %d, %d campaigns", code, len(infos))
	}
	var curves []store.Curve
	if code := getJSON(t, ts, "/results/curves?adversary=random-tree", &curves); code != http.StatusOK {
		t.Fatalf("GET /results/curves: %d", code)
	}
	if len(curves) != 1 || len(curves[0].Points) != 2 {
		t.Fatalf("curves = %+v", curves)
	}
	for _, p := range curves[0].Points {
		if len(p.Measured) != 2 {
			t.Errorf("curve point n=%d measured by %d campaigns, want 2", p.N, len(p.Measured))
		}
	}
}

// TestResultsSurviveRestart: a new daemon over the same warehouse serves
// the previous lifetime's results.
func TestResultsSurviveRestart(t *testing.T) {
	root := filepath.Join(t.TempDir(), "warehouse")
	st, err := store.Open(root)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(Options{Workers: 2, Store: st, Cache: st.Cache()}))
	id, _ := submit(t, ts, specJSON)
	waitDone(t, ts, id)
	ts.Close()

	st2, err := store.Open(root)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(New(Options{Workers: 2, Store: st2, Cache: st2.Cache()}))
	defer ts2.Close()
	var page store.Page
	if code := getJSON(t, ts2, "/results?campaign="+url.QueryEscape(id), &page); code != http.StatusOK {
		t.Fatalf("restarted daemon: %d", code)
	}
	if len(page.Rows) != 4 {
		t.Errorf("restarted daemon serves %d rows, want 4", len(page.Rows))
	}
}

// TestResultsEndpointsAbsentWithoutStore: a store-less daemon does not
// mount /results.
func TestResultsEndpointsAbsentWithoutStore(t *testing.T) {
	ts := httptest.NewServer(New(Options{Workers: 1}))
	defer ts.Close()
	if code := getJSON(t, ts, "/results", nil); code != http.StatusNotFound {
		t.Errorf("store-less /results: %d, want 404", code)
	}
}

// TestShutdownLeavesNoStreamGoroutines is the graceful-shutdown
// satellite's server half: Shutdown with an open stream over a running
// campaign terminates the stream (the campaign is cancelled, the stream
// sees its done event) and leaves no goroutine behind.
func TestShutdownLeavesNoStreamGoroutines(t *testing.T) {
	st, err := store.Open(filepath.Join(t.TempDir(), "warehouse"))
	if err != nil {
		t.Fatal(err)
	}
	stopGC := st.StartGC(time.Millisecond, 1<<30, nil)
	srv := New(Options{Workers: 1, Store: st, Cache: st.Cache()})
	ts := httptest.NewServer(srv)

	before := runtime.NumGoroutine()
	// A slow campaign plus an open stream following it.
	slow := `{"adversaries":["random-tree"],"ns":[64],"trials":400,"seed":3}`
	id, _ := submit(t, ts, slow)
	resp, err := http.Get(ts.URL + "/campaigns/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatalf("stream never started: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	stopGC()
	resp.Body.Close()
	ts.Close()

	// Everything the daemon spawned — campaign pool, stream handler, GC
	// ticker — must be gone; allow the runtime a moment to reap.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Errorf("goroutines after shutdown = %d, want <= %d", now, before)
	}

	// A shut-down daemon refuses new work but still answers queries.
	req, _ := http.NewRequest("POST", "/campaigns", strings.NewReader(specJSON))
	w := newRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown submit: %d, want 503", w.Code)
	}
}

// newRecorder wraps httptest.NewRecorder for the post-shutdown check.
func newRecorder() *httptest.ResponseRecorder { return httptest.NewRecorder() }

// TestDashboardHasResultsSection: the embedded UI ships the warehouse
// panel (it degrades to an explanatory note on store-less daemons, so it
// is present unconditionally).
func TestDashboardHasResultsSection(t *testing.T) {
	_, ts, _ := storeServer(t)
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	html := sb.String()
	for _, want := range []string{"Results warehouse", "loadResults", "next_cursor"} {
		if !strings.Contains(html, want) {
			t.Errorf("dashboard HTML missing %q", want)
		}
	}
}
