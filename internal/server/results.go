package server

import (
	"errors"
	"net/http"
	"net/url"
	"strconv"

	"dyntreecast/internal/campaign"
	"dyntreecast/internal/store"
)

// This file is the query side of the results warehouse (DESIGN.md §3h).
// With Options.Store set the daemon gains read endpoints over every
// campaign the warehouse has ingested — including campaigns from earlier
// daemon lifetimes and offline backfills:
//
//	GET /results            paginated rows; filters campaign, adversary,
//	                        goal, n, nmin, nmax; limit + cursor paging
//	GET /results/campaigns  ingested campaigns with cell counts and pins
//	GET /results/diff       ?a=&b= content-address diff of two campaigns
//	GET /results/curves     measured bound curves joined against exact
//	                        gamesolver values — solved implicitly for
//	                        small n, loaded from warehoused solve tables
//	                        (store solvetables/, written by exact-solver
//	                        -table) for larger n; filters adversary,
//	                        goal, campaign
//
// Every finished campaign the daemon runs is auto-ingested under its run
// id, so /results is eventually consistent with /campaigns without any
// extra client step.

// mountResults registers the warehouse endpoints; called by New only
// when a store is configured.
func (s *Server) mountResults(mux *http.ServeMux) {
	mux.HandleFunc("GET /results", s.handleResults)
	mux.HandleFunc("GET /results/campaigns", s.handleResultCampaigns)
	mux.HandleFunc("GET /results/diff", s.handleResultsDiff)
	mux.HandleFunc("GET /results/curves", s.handleResultsCurves)
}

// intParam parses an optional non-negative integer query parameter,
// returning 0 when absent.
func intParam(q url.Values, name string) (int, error) {
	v := q.Get(name)
	if v == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, errors.New("parameter " + name + " must be a non-negative integer")
	}
	return n, nil
}

func (s *Server) handleResults(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	f := store.Filter{
		Campaign:  q.Get("campaign"),
		Adversary: q.Get("adversary"),
		Goal:      q.Get("goal"),
		Cursor:    q.Get("cursor"),
	}
	var err error
	for _, p := range []struct {
		name string
		dst  *int
	}{{"n", &f.N}, {"nmin", &f.NMin}, {"nmax", &f.NMax}, {"limit", &f.Limit}} {
		if *p.dst, err = intParam(q, p.name); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	page, err := s.opts.Store.Query(f)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, store.ErrNotFound) {
			status = http.StatusNotFound
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, page)
}

func (s *Server) handleResultCampaigns(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, s.opts.Store.Campaigns())
}

func (s *Server) handleResultsDiff(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	a, b := q.Get("a"), q.Get("b")
	if a == "" || b == "" {
		writeError(w, http.StatusBadRequest, "diff needs both a and b campaign ids")
		return
	}
	d, err := s.opts.Store.Diff(a, b)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, store.ErrNotFound) {
			status = http.StatusNotFound
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, d)
}

func (s *Server) handleResultsCurves(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	writeJSON(w, http.StatusOK, s.opts.Store.Curves(store.CurveFilter{
		Adversary: q.Get("adversary"),
		Goal:      q.Get("goal"),
		Campaign:  q.Get("campaign"),
	}))
}

// ingestOutcome indexes a finished campaign into the warehouse under its
// run id. Failures are logged, never fatal: the campaign's own artifact
// is already served by /campaigns/{id}, and a cancelled campaign (no
// complete cells in the cache) simply is not warehouse material yet.
func (s *Server) ingestOutcome(id string, out *campaign.Outcome) {
	if s.opts.Store == nil || out == nil {
		return
	}
	n, err := s.opts.Store.IngestOutcome(id, out)
	if err != nil {
		s.logf("campaign %s: not ingested into results store: %v", id, err)
		return
	}
	s.logf("campaign %s: %d cells ingested into results store", id, n)
}
