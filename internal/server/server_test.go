package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"
	"time"

	"dyntreecast/internal/campaign"
	"dyntreecast/internal/campaign/cache"
	"dyntreecast/internal/cluster"
)

const specJSON = `{"name":"itest","adversaries":["random-tree","random-path"],"ns":[8,16],"trials":4,"seed":21}`

func mustSpec(t *testing.T) campaign.Spec {
	t.Helper()
	spec, err := campaign.LoadSpec(strings.NewReader(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func submit(t *testing.T, ts *httptest.Server, body string) (id string, jobs int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, data)
	}
	var out struct {
		ID   string `json:"id"`
		Jobs int    `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.ID, out.Jobs
}

func getStatus(t *testing.T, ts *httptest.Server, id string) statusView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/campaigns/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status: %d", resp.StatusCode)
	}
	var v statusView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func waitDone(t *testing.T, ts *httptest.Server, id string) statusView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		v := getStatus(t, ts, id)
		if v.Status != "running" {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("campaign %s never finished", id)
	return statusView{}
}

// TestSubmitStreamFetch is the submit → stream → fetch integration pass
// over real HTTP: every job's measurement arrives on the stream, the
// stream terminates with a done record, and the final aggregates equal a
// direct in-process run of the same spec.
func TestSubmitStreamFetch(t *testing.T) {
	ts := httptest.NewServer(New(Options{Workers: 2}))
	defer ts.Close()

	id, jobs := submit(t, ts, specJSON)
	if jobs != 2*2*4 {
		t.Fatalf("jobs = %d, want 16", jobs)
	}

	resp, err := http.Get(ts.URL + "/campaigns/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type = %q", ct)
	}
	results := 0
	sawDone := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		if done, _ := rec["done"].(bool); done {
			sawDone = true
			if rec["status"] != "done" {
				t.Errorf("done record status = %v", rec["status"])
			}
			break
		}
		if rec["cell"] == "" || rec["error"] != nil {
			t.Errorf("unexpected stream record: %v", rec)
		}
		results++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if results != jobs || !sawDone {
		t.Fatalf("stream delivered %d results (done=%v), want %d", results, sawDone, jobs)
	}

	v := waitDone(t, ts, id)
	if v.Status != "done" || v.Completed != jobs || v.Failed != 0 {
		t.Fatalf("final status: %+v", v)
	}
	direct, err := campaign.RunSpec(context.Background(), mustSpec(t), campaign.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v.Cells, direct.Cells) {
		t.Errorf("served aggregates differ from direct run:\n%+v\nvs\n%+v", v.Cells, direct.Cells)
	}
}

func TestStreamSSE(t *testing.T) {
	ts := httptest.NewServer(New(Options{Workers: 2}))
	defer ts.Close()
	id, jobs := submit(t, ts, specJSON)

	req, _ := http.NewRequest("GET", ts.URL+"/campaigns/"+id+"/stream", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(body, []byte("event: result\n")); n != jobs {
		t.Errorf("SSE result events = %d, want %d", n, jobs)
	}
	if !bytes.Contains(body, []byte("event: done\n")) {
		t.Error("SSE stream missing done event")
	}
}

func TestLateStreamReplays(t *testing.T) {
	ts := httptest.NewServer(New(Options{Workers: 2}))
	defer ts.Close()
	id, jobs := submit(t, ts, specJSON)
	waitDone(t, ts, id)

	// Subscribing after completion must still deliver the full history.
	resp, err := http.Get(ts.URL + "/campaigns/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != jobs+1 {
		t.Errorf("late stream delivered %d lines, want %d results + 1 done", len(lines), jobs)
	}
}

func TestSubmitRejectsBadSpecs(t *testing.T) {
	ts := httptest.NewServer(New(Options{}))
	defer ts.Close()
	for _, body := range []string{
		"not json",
		`{"adversaries":["omniscient"],"ns":[8],"trials":1,"seed":1}`,
		`{"adversaries":["random-tree"],"ns":[8],"trials":1,"seed":1,"bogus":true}`,
	} {
		resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit(%q) = %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestStatusNotFound(t *testing.T) {
	ts := httptest.NewServer(New(Options{}))
	defer ts.Close()
	for _, path := range []string{"/campaigns/nope", "/campaigns/nope/stream"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestListCampaigns(t *testing.T) {
	ts := httptest.NewServer(New(Options{Workers: 2}))
	defer ts.Close()
	id1, _ := submit(t, ts, specJSON)
	id2, _ := submit(t, ts, `{"adversaries":["static-path"],"ns":[8],"trials":2,"seed":1}`)
	waitDone(t, ts, id1)
	waitDone(t, ts, id2)

	resp, err := http.Get(ts.URL + "/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var views []statusView
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	if len(views) != 2 || views[0].ID != id1 || views[1].ID != id2 {
		t.Errorf("list = %+v", views)
	}
}

// TestServerSharesCellCache: two submissions of the same spec through a
// cache-equipped server serve the second from the cell cache.
func TestServerSharesCellCache(t *testing.T) {
	ts := httptest.NewServer(New(Options{Workers: 2, Cache: cache.NewMemory()}))
	defer ts.Close()
	id1, _ := submit(t, ts, specJSON)
	v1 := waitDone(t, ts, id1)
	id2, _ := submit(t, ts, specJSON)
	v2 := waitDone(t, ts, id2)
	if !reflect.DeepEqual(v1.Cells, v2.Cells) {
		t.Errorf("cached rerun served different aggregates")
	}
}

// TestGracefulShutdownCheckpointsInFlight: shutting the server down
// mid-campaign leaves a valid checkpoint holding the completed jobs, and
// resuming from it yields an artifact byte-identical to an uninterrupted
// run.
func TestGracefulShutdownCheckpointsInFlight(t *testing.T) {
	ckptDir := t.TempDir()
	srv := New(Options{Workers: 1, CheckpointDir: ckptDir})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	big := `{"name":"slow","adversaries":["random-tree"],"ns":[64],"trials":2000,"seed":3}`
	id, jobs := submit(t, ts, big)

	// Follow the stream until a result lands, so shutdown hits mid-run.
	resp, err := http.Get(ts.URL + "/campaigns/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("no stream output before shutdown")
	}
	resp.Body.Close()

	ctx, cancelWait := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelWait()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}

	// New submissions must be refused.
	post, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit after shutdown = %d, want 503", post.StatusCode)
	}

	spec, err := campaign.LoadSpec(strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(ckptDir, campaign.SpecHash(spec)+".ckpt")
	cp, err := campaign.LoadCheckpointFile(path)
	if err != nil {
		t.Fatalf("no checkpoint after graceful shutdown: %v", err)
	}
	if err := cp.Validate(spec); err != nil {
		t.Fatal(err)
	}
	if len(cp.Results) == 0 {
		t.Fatal("checkpoint recorded no completed jobs")
	}
	t.Logf("shutdown checkpointed %d/%d jobs", len(cp.Results), jobs)

	resumed, err := campaign.ResumeSpec(context.Background(), spec, cp, campaign.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	uninterrupted, err := campaign.RunSpec(context.Background(), spec, campaign.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := resumed.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := uninterrupted.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("resumed artifact differs from uninterrupted run")
	}
}

// TestServerResumesAcrossRestart: a daemon that shut down mid-campaign
// resumes the work when the same spec is submitted to a fresh server
// sharing the checkpoint directory.
func TestServerResumesAcrossRestart(t *testing.T) {
	ckptDir := t.TempDir()
	spec3 := `{"name":"restart","adversaries":["random-tree"],"ns":[64],"trials":1500,"seed":8}`

	srv1 := New(Options{Workers: 1, CheckpointDir: ckptDir})
	ts1 := httptest.NewServer(srv1)
	id, jobs := submit(t, ts1, spec3)
	resp, err := http.Get(ts1.URL + "/campaigns/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("no stream output")
	}
	resp.Body.Close()
	ctx, cancelWait := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelWait()
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	var resumedJobs int
	srv2 := New(Options{Workers: 2, CheckpointDir: ckptDir, Logf: func(format string, args ...any) {
		line := fmt.Sprintf(format, args...)
		if strings.Contains(line, "resuming") {
			fmt.Sscanf(line[strings.Index(line, "resuming"):], "resuming %d jobs", &resumedJobs)
		}
	}})
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	id2, _ := submit(t, ts2, spec3)
	v := waitDone(t, ts2, id2)
	if v.Status != "done" || v.Completed != jobs {
		t.Fatalf("restarted campaign: %+v", v)
	}
	if resumedJobs == 0 {
		t.Error("second server did not resume from the checkpoint")
	}
}

// TestStreamReplayWindowTruncates: with a tiny replay window, a late
// subscriber gets a truncation notice plus the retained tail instead of
// the full history, and the lifetime counters stay exact.
func TestStreamReplayWindowTruncates(t *testing.T) {
	ts := httptest.NewServer(New(Options{Workers: 2, ReplayLimit: 8}))
	defer ts.Close()
	id, jobs := submit(t, ts, `{"adversaries":["random-tree"],"ns":[8],"trials":64,"seed":2}`)
	v := waitDone(t, ts, id)
	if v.Completed != jobs {
		t.Fatalf("completed = %d, want %d (counters must survive window trims)", v.Completed, jobs)
	}

	resp, err := http.Get(ts.URL + "/campaigns/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var truncated, results int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		switch {
		case rec["truncated"] != nil:
			truncated = int(rec["truncated"].(float64))
		case rec["done"] == true:
		default:
			results++
		}
	}
	if truncated == 0 {
		t.Error("late subscriber got no truncation notice")
	}
	if results > 10 || results == 0 {
		t.Errorf("late subscriber got %d results, want the bounded tail", results)
	}
	if truncated+results != jobs {
		t.Errorf("truncated %d + results %d != %d jobs", truncated, results, jobs)
	}
}

// TestLegacyAndScenarioFormsServeIdenticalArtifacts is the schema-v2
// acceptance check at the HTTP layer: a legacy-form submission and its
// scenario-form equivalent run against a shared cell cache and serve
// byte-identical aggregate artifacts — the second submission entirely
// from the first's cells.
func TestLegacyAndScenarioFormsServeIdenticalArtifacts(t *testing.T) {
	srv := New(Options{Workers: 2, Cache: cache.NewMemory()})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	legacy := `{"name":"forms","adversaries":["random-tree","k-leaves"],"ns":[8,12],"ks":[2,3],"trials":3,"seed":11}`
	scenario := `{"version":2,"name":"forms","scenarios":[{"adversary":"random-tree"},` +
		`{"adversary":"k-leaves","params":{"k":[2,3]}}],"ns":[8,12],"trials":3,"seed":11}`

	id1, jobs1 := submit(t, ts, legacy)
	waitDone(t, ts, id1)
	id2, jobs2 := submit(t, ts, scenario)
	waitDone(t, ts, id2)
	if jobs1 != jobs2 {
		t.Fatalf("job counts differ: %d vs %d", jobs1, jobs2)
	}

	body := func(id string) []byte {
		resp, err := http.Get(ts.URL + "/campaigns/" + id)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		// The id embeds the submission counter; strip it so the rest of
		// the document must match byte for byte. elapsed_ms and
		// trials_per_sec are wall-clock telemetry about the serving
		// process, explicitly outside the artifact contract — normalize
		// them too so the aggregate bytes carry the assertion.
		data = bytes.Replace(data, []byte(id), []byte("ID"), 1)
		data = regexp.MustCompile(`"(elapsed_ms|trials_per_sec)": [0-9.]+`).
			ReplaceAll(data, []byte(`"$1": 0`))
		return data
	}
	a, b := body(id1), body(id2)
	if !bytes.Equal(a, b) {
		t.Errorf("artifacts differ between forms:\n%s\nvs\n%s", a, b)
	}
	// Same canonical spec hash → same id suffix → the scenario run was
	// served from the legacy run's cache cells.
	if id1[strings.Index(id1, "-"):] != id2[strings.Index(id2, "-"):] {
		t.Errorf("ids hash different canonical specs: %s vs %s", id1, id2)
	}
}

// TestSubmitRejectsBadScenario: scenario-level validation surfaces as a
// 400 with the offending scenario named, before any job runs.
func TestSubmitRejectsBadScenario(t *testing.T) {
	ts := httptest.NewServer(New(Options{}))
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(
		`{"version":2,"scenarios":[{"adversary":"k-leaves","params":{"k":0}}],"ns":[8],"trials":1,"seed":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (%s)", resp.StatusCode, data)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(data, &body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body.Error, `k-leaves{"k":0}`) {
		t.Errorf("error does not name the scenario: %s", body.Error)
	}
}

// TestServerClusterEndpoints runs a daemon with Options.Cluster: the
// /cluster endpoints come up on the same mux, an in-process worker joins
// over HTTP and leases cells, and the campaign's aggregates are
// identical to a cluster-less daemon's — the byte-identity contract of
// the distributed fabric, observed through the service layer.
func TestServerClusterEndpoints(t *testing.T) {
	plain := httptest.NewServer(New(Options{Workers: 2}))
	defer plain.Close()
	idP, _ := submit(t, plain, specJSON)
	want := waitDone(t, plain, idP)

	coord := cluster.New(cluster.Options{LeaseTTL: time.Minute})
	clustered := httptest.NewServer(New(Options{Workers: 1, Cluster: coord}))
	defer clustered.Close()

	ctx, cancel := context.WithCancel(context.Background())
	workerDone := make(chan error, 1)
	go func() {
		workerDone <- cluster.RunWorker(ctx, clustered.URL, cluster.WorkerOptions{
			ID: "server-itest-worker", Poll: 5 * time.Millisecond,
		})
	}()
	defer func() {
		cancel()
		if err := <-workerDone; err != nil {
			t.Errorf("worker: %v", err)
		}
	}()

	idC, _ := submit(t, clustered, specJSON)
	got := waitDone(t, clustered, idC)
	if got.Status != "done" || got.Failed != 0 {
		t.Fatalf("clustered campaign: %+v", got)
	}
	if !reflect.DeepEqual(got.Cells, want.Cells) {
		t.Fatalf("clustered cells differ:\n got %+v\nwant %+v", got.Cells, want.Cells)
	}

	// A cluster-less daemon must not expose the endpoints at all.
	resp, err := http.Post(plain.URL+"/cluster/lease", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/cluster/lease on a cluster-less daemon: status %d, want 404", resp.StatusCode)
	}
}
