package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"dyntreecast/internal/campaign/cache"
	"dyntreecast/internal/metrics"
)

// scrape fetches /metrics from the test server and returns the raw
// exposition after checking status and content type.
func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// sampleValue extracts the value of the series named exactly by prefix
// ("name" or `name{labels}`), or 0 when the series is absent. Absent is
// fine: vec children only exist after their first touch.
func sampleValue(t *testing.T, exposition, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		rest, ok := strings.CutPrefix(line, prefix+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.Fields(rest)[0], 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		return v
	}
	return 0
}

// TestMetricsExpositionLintsLive is the format-validator test against a
// real serving process: after a campaign runs, the full /metrics scrape
// parses under the package's own exposition linter and carries the
// instrument families every layer of this PR registers.
func TestMetricsExpositionLintsLive(t *testing.T) {
	ts := httptest.NewServer(New(Options{Workers: 2}))
	defer ts.Close()

	before := scrape(t, ts)
	id, jobs := submit(t, ts, specJSON)
	waitDone(t, ts, id)
	after := scrape(t, ts)

	if err := metrics.Lint(strings.NewReader(after)); err != nil {
		t.Fatalf("live exposition failed lint: %v", err)
	}
	for _, fam := range []string{
		"campaign_jobs_completed_total",
		"campaign_runs_total",
		"server_http_requests_total",
		"server_campaigns_submitted_total",
		"go_goroutines",
	} {
		if !strings.Contains(after, "# TYPE "+fam+" ") {
			t.Errorf("exposition missing family %s", fam)
		}
	}
	// The registry is process-global, so assert deltas, not absolutes.
	const jc = "campaign_jobs_completed_total"
	if d := sampleValue(t, after, jc) - sampleValue(t, before, jc); d < float64(jobs) {
		t.Errorf("%s moved by %v, want >= %d", jc, d, jobs)
	}
	const sub = "server_campaigns_submitted_total"
	if d := sampleValue(t, after, sub) - sampleValue(t, before, sub); d != 1 {
		t.Errorf("%s moved by %v, want 1", sub, d)
	}
	route := `server_http_requests_total{route="POST /campaigns",code="202"}`
	if sampleValue(t, after, route) < 1 {
		t.Errorf("no sample for %s", route)
	}
}

// TestMetricsScrapeDuringCampaign hammers /metrics from several
// goroutines while a campaign executes — the scrape path must be safe
// against every concurrent instrument write (this test carries its
// weight under -race, where it proves the lock-free instruments racefree
// against a live workload, not a synthetic one).
func TestMetricsScrapeDuringCampaign(t *testing.T) {
	ts := httptest.NewServer(New(Options{Workers: 4}))
	defer ts.Close()

	id, _ := submit(t, ts, specJSON)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				body := scrape(t, ts)
				if err := metrics.Lint(strings.NewReader(body)); err != nil {
					t.Errorf("mid-campaign scrape failed lint: %v", err)
					return
				}
			}
		}()
	}
	waitDone(t, ts, id)
	close(done)
	wg.Wait()
}

// TestCacheCountersMatchWarmRun is the cache-instrumentation e2e: a cold
// submission misses once per cell and a warm resubmission of the same
// spec hits once per cell — the counter deltas must equal the grid's
// cell count exactly, proving the decorator counts real traffic and
// nothing else.
func TestCacheCountersMatchWarmRun(t *testing.T) {
	// A test-unique backend label isolates these counters from every
	// other test sharing the process-global registry.
	backend := "memtest-warmrun"
	ts := httptest.NewServer(New(Options{Workers: 2, Cache: cache.Instrument(backend, cache.NewMemory())}))
	defer ts.Close()

	const cells = 4 // specJSON: 2 adversaries x 2 ns
	series := func(result string) string {
		return fmt.Sprintf(`campaign_cache_requests_total{backend=%q,result=%q}`, backend, result)
	}

	id, _ := submit(t, ts, specJSON)
	waitDone(t, ts, id)
	cold := scrape(t, ts)
	if got := sampleValue(t, cold, series("miss")); got != cells {
		t.Errorf("cold run misses = %v, want %d", got, cells)
	}
	if got := sampleValue(t, cold, series("hit")); got != 0 {
		t.Errorf("cold run hits = %v, want 0", got)
	}
	puts := fmt.Sprintf(`campaign_cache_puts_total{backend=%q}`, backend)
	if got := sampleValue(t, cold, puts); got != cells {
		t.Errorf("cold run puts = %v, want %d", got, cells)
	}

	id2, _ := submit(t, ts, specJSON)
	waitDone(t, ts, id2)
	warm := scrape(t, ts)
	if got := sampleValue(t, warm, series("hit")); got != cells {
		t.Errorf("warm run hits = %v, want %d", got, cells)
	}
	if got := sampleValue(t, warm, series("miss")); got != cells {
		t.Errorf("warm run misses = %v, want %d (cold only)", got, cells)
	}
}

// TestDashboardServes: the embedded dashboard answers on / and /ui/ with
// the single-file UI, and a stray path under neither stays 404.
func TestDashboardServes(t *testing.T) {
	ts := httptest.NewServer(New(Options{}))
	defer ts.Close()

	for _, path := range []string{"/", "/ui/"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(string(data), "dyntreecast fleet") {
			t.Errorf("GET %s: dashboard HTML missing", path)
		}
	}
	resp, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /nope: status %d, want 404", resp.StatusCode)
	}
}
