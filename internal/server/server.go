// Package server implements the campaign service behind cmd/campaignd: an
// HTTP facade over the campaign runner (internal/campaign) that accepts
// declarative specs, executes them on worker pools, streams per-cell
// results as they land, and checkpoints in-flight campaigns on graceful
// shutdown so they can be resumed by a later submission of the same spec.
//
// Endpoints (README.md "Serving campaigns" has curl examples):
//
//	POST /campaigns            submit a JSON Spec → {"id", "jobs"}.
//	                           Both spec schema forms are accepted — the
//	                           scenario form (version 2) and the legacy
//	                           adversaries/ks form — and are canonicalized
//	                           on arrival, so equivalent submissions share
//	                           checkpoints, cache cells, and artifacts.
//	GET  /campaigns            list campaigns with status
//	GET  /campaigns/{id}       status + per-cell aggregates (live or final)
//	GET  /campaigns/{id}/stream  per-measurement stream: JSONL by default,
//	                           server-sent events with Accept: text/event-stream
//
// With Options.Cluster set, two more endpoints expose the distributed
// campaign fabric (internal/cluster, DESIGN.md §3e) and every campaign
// the daemon runs becomes lease-able by remote workers:
//
//	POST /cluster/lease        worker engine handshake → one leased cell
//	POST /cluster/results      per-trial measurements keyed by the cell's
//	                           content address
//
// Every result served is governed by the campaign determinism contract:
// a campaign's aggregates are a pure function of its spec, so the daemon
// can checkpoint, resume, and cache across requests without ever changing
// an answer. The package serves the ROADMAP's "serve heavy traffic" goal
// (sharding and batching via the worker pool, async submission, caching
// via the cell cache).
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"sync"
	"time"

	"dyntreecast/internal/campaign"
	"dyntreecast/internal/campaign/cache"
	"dyntreecast/internal/cluster"
	"dyntreecast/internal/metrics"
	"dyntreecast/internal/store"
)

// Options configures a Server.
type Options struct {
	// Workers is the pool size per campaign; <= 0 selects GOMAXPROCS.
	Workers int
	// Batch caps how many trials of one grid cell run as a single
	// scheduling unit on one worker (campaign.Config.Batch): 0 batches
	// whole cells against pooled engine arenas, 1 recovers per-trial
	// scheduling. Artifacts are byte-identical for every value.
	Batch int
	// Cache, when non-nil, is shared by every campaign the server runs.
	Cache cache.Cache
	// CheckpointDir, when non-empty, makes every campaign checkpoint to
	// <dir>/<spec-hash>.ckpt as results land. A submission whose spec
	// matches an existing checkpoint resumes it — including after a
	// daemon restart or graceful shutdown.
	CheckpointDir string
	// ReplayLimit bounds each campaign's stream-replay buffer (number of
	// events kept for late subscribers); <= 0 selects 65536. Subscribers
	// that fall behind the window get a truncation notice and continue
	// from the oldest retained event; memory per campaign stays O(limit)
	// instead of O(jobs).
	ReplayLimit int
	// Store, when non-nil, mounts the /results query endpoints over this
	// results warehouse (results.go, DESIGN.md §3h) and auto-ingests
	// every campaign that finishes cleanly under its run id. Pair it
	// with Cache = Store.Cache() so campaigns cache their cell bytes
	// into the warehouse (cmd/campaignd's -store flag wires both).
	Store *store.Store
	// Cluster, when non-nil, mounts the /cluster/lease and
	// /cluster/results endpoints on this coordinator and runs every
	// campaign with it as the remote scheduler: workers joining over HTTP
	// (campaignd -worker -join) lease whole cells while the local pool
	// keeps executing, and artifacts stay byte-identical to local runs.
	Cluster *cluster.Coordinator
	// Logf, when non-nil, receives one line per lifecycle event.
	Logf func(format string, args ...any)
}

// defaultReplayLimit bounds per-campaign stream replay when
// Options.ReplayLimit is unset.
const defaultReplayLimit = 65536

// Server runs campaigns and serves their state over HTTP. It implements
// http.Handler; use Shutdown for a graceful stop that checkpoints
// in-flight campaigns.
type Server struct {
	opts   Options
	mux    *http.ServeMux
	ctx    context.Context // cancelled by Shutdown
	cancel context.CancelFunc

	mu        sync.Mutex
	campaigns map[string]*run
	order     []string        // submission order, for listing
	inUse     map[string]bool // checkpoint paths held by running campaigns
	nextID    int
	closed    bool
	wg        sync.WaitGroup
}

// event is one streamed datum: a measurement of a completed job (Value is
// always present, even when the measured quantity is 0 — n=1 broadcasts
// in 0 rounds), or a job-level error (Err set, no Value).
type event struct {
	Index int      `json:"index"`
	Cell  string   `json:"cell,omitempty"`
	Value *float64 `json:"value,omitempty"`
	Err   string   `json:"error,omitempty"`
}

// run is the live state of one submitted campaign. The event buffer is a
// bounded replay window (Options.ReplayLimit): events holds the most
// recent window, base counts the events dropped before it, and stream
// subscribers that fall behind the window receive a truncation notice.
// Final aggregates never depend on the window — they come from the
// campaign outcome.
type run struct {
	id      string
	spec    campaign.Spec
	jobs    int
	started time.Time

	mu        sync.Mutex
	finished  time.Time // zero while running
	events    []event
	base      int    // absolute index of events[0]
	limit     int    // replay window size
	completed int    // jobs completed so far (counter; survives window trims)
	failed    int    // jobs failed so far
	status    string // "running", "done", "failed", "cancelled"
	outcome   *campaign.Outcome
	errMsg    string
	notify    chan struct{} // closed and replaced on every state change
}

// New returns a Server ready to accept campaigns.
func New(opts Options) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:      opts,
		ctx:       ctx,
		cancel:    cancel,
		campaigns: make(map[string]*run),
		inUse:     make(map[string]bool),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /campaigns", s.handleSubmit)
	mux.HandleFunc("GET /campaigns", s.handleList)
	mux.HandleFunc("GET /campaigns/{id}", s.handleStatus)
	mux.HandleFunc("GET /campaigns/{id}/stream", s.handleStream)
	mux.Handle("GET /metrics", metrics.Default.Handler())
	mux.Handle("GET /{$}", DashboardHandler())
	mux.Handle("GET /ui/", DashboardHandler())
	if opts.Cluster != nil {
		mux.HandleFunc("POST /cluster/lease", opts.Cluster.HandleLease)
		mux.HandleFunc("POST /cluster/results", opts.Cluster.HandleResults)
		mux.HandleFunc("GET /cluster/workers", opts.Cluster.HandleWorkers)
	}
	if opts.Store != nil {
		s.mountResults(mux)
	}
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler: every route is served through the
// request counter and latency histogram (metrics.go).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.instrument(w, r) }

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Shutdown gracefully stops the server: no new campaigns are accepted,
// running campaigns are cancelled (their checkpoints already hold every
// completed job), and Shutdown waits — up to ctx's deadline — for them to
// flush and finish.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: shutdown interrupted: %w", ctx.Err())
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, req *http.Request) {
	spec, err := campaign.LoadSpec(http.MaxBytesReader(w, req.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Canonicalize before anything else: legacy-form submissions
	// (adversaries/ks) and scenario-form submissions of the same grid
	// collapse to one canonical spec, so they share ids-per-hash,
	// checkpoints, cache cells, and artifact bytes. A bad spec — unknown
	// family, bad scenario params, unsupported version — is a 400 here,
	// before any job runs.
	spec, err = spec.Canonical()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	jobs, err := spec.Compile()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	s.nextID++
	id := fmt.Sprintf("c%04d-%.8s", s.nextID, campaign.SpecHash(spec))
	limit := s.opts.ReplayLimit
	if limit <= 0 {
		limit = defaultReplayLimit
	}
	r := &run{id: id, spec: spec, jobs: len(jobs), started: time.Now(), limit: limit, status: "running", notify: make(chan struct{})}
	s.campaigns[id] = r
	s.order = append(s.order, id)
	s.wg.Add(1)
	s.mu.Unlock()
	mCampaignsSubmitted.Inc()

	go s.execute(r)
	s.logf("campaign %s submitted: %d jobs", id, len(jobs))
	writeJSON(w, http.StatusAccepted, map[string]any{"id": id, "jobs": len(jobs), "status": "running"})
}

// checkpointPath returns the checkpoint file for a spec, or "" when
// checkpointing is off or the path is already held by a running campaign
// (two concurrent submissions of one spec must not share a file).
func (s *Server) checkpointPath(spec campaign.Spec) string {
	if s.opts.CheckpointDir == "" {
		return ""
	}
	path := filepath.Join(s.opts.CheckpointDir, campaign.SpecHash(spec)+".ckpt")
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inUse[path] {
		return ""
	}
	s.inUse[path] = true
	return path
}

func (s *Server) execute(r *run) {
	defer s.wg.Done()
	cfg := campaign.Config{
		Workers:  s.opts.Workers,
		Batch:    s.opts.Batch,
		Cache:    s.opts.Cache,
		OnResult: r.onResult,
	}
	if s.opts.Cluster != nil {
		// Guarded assignment: a typed-nil coordinator in the interface
		// field would switch RunSpec onto the remote path with nothing
		// behind it.
		cfg.Remote = s.opts.Cluster
	}
	if path := s.checkpointPath(r.spec); path != "" {
		defer func() {
			s.mu.Lock()
			delete(s.inUse, path)
			s.mu.Unlock()
		}()
		cf, err := campaign.OpenCheckpointFile(path, r.spec)
		if err != nil {
			s.logf("campaign %s: checkpoint disabled: %v", r.id, err)
		} else {
			if n := len(cf.Completed); n > 0 {
				s.logf("campaign %s: resuming %d jobs from %s", r.id, n, path)
			}
			cfg = cf.Wire(cfg)
			defer func() {
				if err := cf.Close(); err != nil {
					s.logf("campaign %s: %v", r.id, err)
				}
			}()
		}
	}
	outcome, err := campaign.RunSpec(s.ctx, r.spec, cfg)
	r.finish(outcome, err)
	if err == nil {
		s.ingestOutcome(r.id, outcome)
	}
	s.logf("campaign %s: %s", r.id, r.statusLine())
}

func (r *run) onResult(res campaign.JobResult) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if res.Err != nil {
		r.failed++
		r.events = append(r.events, event{Index: res.Index, Err: res.Err.Error()})
	} else {
		r.completed++
		for _, m := range res.Measurements {
			v := m.Value
			r.events = append(r.events, event{Index: res.Index, Cell: m.Cell, Value: &v})
		}
	}
	// Trim the replay window in batches so the copy amortizes to O(1)
	// per event.
	if len(r.events) > r.limit+r.limit/4 {
		drop := len(r.events) - r.limit
		r.base += drop
		r.events = append([]event(nil), r.events[drop:]...)
	}
	r.wake()
}

// wake must be called with r.mu held.
func (r *run) wake() {
	close(r.notify)
	r.notify = make(chan struct{})
}

func (r *run) finish(outcome *campaign.Outcome, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.finished = time.Now()
	r.outcome = outcome
	switch {
	case err != nil && outcome != nil:
		r.status = "cancelled" // RunSpec errors post-compile only on cancellation or cache failure
		r.errMsg = err.Error()
	case err != nil:
		r.status = "failed"
		r.errMsg = err.Error()
	default:
		r.status = "done"
	}
	r.wake()
}

// elapsed returns how long the campaign has run (or ran). Must be called
// with r.mu held.
func (r *run) elapsed() time.Duration {
	if !r.finished.IsZero() {
		return r.finished.Sub(r.started)
	}
	return time.Since(r.started)
}

// trialsPerSec returns the campaign's observed completion rate. Must be
// called with r.mu held.
func (r *run) trialsPerSec(completed int) float64 {
	secs := r.elapsed().Seconds()
	if secs <= 0 || completed <= 0 {
		return 0
	}
	return float64(completed) / secs
}

func (r *run) statusLine() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.outcome != nil {
		return fmt.Sprintf("%s (%d/%d jobs, %d failed, %s, %.1f trials/sec)",
			r.status, r.outcome.Completed, r.jobs, r.outcome.Failed,
			r.elapsed().Round(time.Millisecond), r.trialsPerSec(r.outcome.Completed))
	}
	return r.status
}

func (s *Server) lookup(req *http.Request) (*run, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.campaigns[req.PathValue("id")]
	return r, ok
}

// statusView is the JSON shape of GET /campaigns/{id} (and of the list
// rows of GET /campaigns). ElapsedMS and TrialsPerSec make the list
// self-describing — progress and throughput without scraping /metrics;
// they describe the serving process, never the artifact, which stays
// byte-identical to an unobserved run.
type statusView struct {
	ID           string               `json:"id"`
	Status       string               `json:"status"`
	Jobs         int                  `json:"jobs"`
	Completed    int                  `json:"completed"`
	Failed       int                  `json:"failed"`
	ElapsedMS    int64                `json:"elapsed_ms"`
	TrialsPerSec float64              `json:"trials_per_sec"`
	Error        string               `json:"error,omitempty"`
	Cells        []campaign.CellStats `json:"cells,omitempty"`
}

func (r *run) view(withCells bool) statusView {
	r.mu.Lock()
	defer r.mu.Unlock()
	v := statusView{ID: r.id, Status: r.status, Jobs: r.jobs, Error: r.errMsg}
	v.ElapsedMS = r.elapsed().Milliseconds()
	if r.outcome != nil {
		v.Completed, v.Failed = r.outcome.Completed, r.outcome.Failed
		v.TrialsPerSec = roundRate(r.trialsPerSec(v.Completed))
		if withCells {
			v.Cells = r.outcome.Cells
		}
		return v
	}
	// Campaign still running: counts come from the lifetime counters and
	// the cell preview from the retained replay window. The preview is
	// completion-order dependent and window-bounded — only the final
	// outcome carries the byte-stable aggregates.
	v.Completed, v.Failed = r.completed, r.failed
	if withCells {
		results := make([]campaign.JobResult, 0, len(r.events))
		for _, e := range r.events {
			if e.Err != "" || e.Value == nil {
				continue
			}
			results = append(results, campaign.JobResult{
				Index:        e.Index,
				Measurements: []campaign.Measurement{{Cell: e.Cell, Value: *e.Value}},
			})
		}
		v.Cells = campaign.Aggregate(results)
	}
	return v
}

func (s *Server) handleStatus(w http.ResponseWriter, req *http.Request) {
	r, ok := s.lookup(req)
	if !ok {
		writeError(w, http.StatusNotFound, "no campaign %q", req.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, r.view(true))
}

func (s *Server) handleList(w http.ResponseWriter, req *http.Request) {
	s.mu.Lock()
	runs := make([]*run, 0, len(s.order))
	for _, id := range s.order {
		runs = append(runs, s.campaigns[id])
	}
	s.mu.Unlock()
	views := make([]statusView, len(runs))
	for i, r := range runs {
		views[i] = r.view(false)
	}
	writeJSON(w, http.StatusOK, views)
}

// handleStream replays every event so far and then follows the campaign
// live until it finishes or the client goes away. Default framing is
// JSONL (one event per line, then a final status line); with
// Accept: text/event-stream the same payloads are sent as SSE "result"
// events followed by a "done" event.
func (s *Server) handleStream(w http.ResponseWriter, req *http.Request) {
	r, ok := s.lookup(req)
	if !ok {
		writeError(w, http.StatusNotFound, "no campaign %q", req.PathValue("id"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	mStreams.Inc()
	defer mStreams.Dec()
	sse := req.Header.Get("Accept") == "text/event-stream"
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)

	emit := func(kind string, v any) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if sse {
			_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", kind, data)
		} else {
			_, err = fmt.Fprintf(w, "%s\n", data)
		}
		flusher.Flush()
		return err == nil
	}

	cursor := 0 // absolute event index
	for {
		r.mu.Lock()
		var truncated int
		if cursor < r.base {
			// The subscriber fell behind the replay window (or joined
			// late on a huge campaign): report the gap, then continue
			// from the oldest retained event.
			truncated = r.base - cursor
			cursor = r.base
		}
		pending := append([]event(nil), r.events[cursor-r.base:]...)
		finished := r.status != "running"
		notify := r.notify
		r.mu.Unlock()

		if truncated > 0 {
			if !emit("truncated", map[string]int{"truncated": truncated}) {
				return
			}
		}
		for _, e := range pending {
			if !emit("result", e) {
				return
			}
		}
		cursor += len(pending)
		if finished {
			v := r.view(false)
			emit("done", map[string]any{"done": true, "status": v.Status, "completed": v.Completed, "failed": v.Failed})
			return
		}
		select {
		case <-notify:
		case <-req.Context().Done():
			return
		}
	}
}
