package server

import (
	_ "embed"
	"net/http"
)

// The dashboard is a single embedded HTML file — vanilla JS over the same
// endpoints curl uses (/campaigns, /campaigns/{id}/stream as SSE,
// /cluster/workers, /metrics), so the daemon binary carries its own UI
// with no assets on disk and no build step.
//
//go:embed ui/index.html
var dashboardHTML []byte

// DashboardHandler serves the embedded fleet dashboard at / and /ui/.
// It is read-only: every byte it shows comes from GET endpoints the
// dashboard shares with scripts, so the UI can never perturb a campaign.
func DashboardHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		switch req.URL.Path {
		case "/", "/ui", "/ui/":
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			w.Header().Set("Cache-Control", "no-cache")
			w.Write(dashboardHTML)
		default:
			http.NotFound(w, req)
		}
	})
}
