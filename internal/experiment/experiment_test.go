package experiment

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"dyntreecast/internal/campaign"
)

func TestTableWriteText(t *testing.T) {
	tab := &Table{Title: "demo", Header: []string{"a", "bb"}}
	tab.AddRow(1, "x")
	tab.AddRow(22, 3.5)
	var buf bytes.Buffer
	if err := tab.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# demo") || !strings.Contains(out, "bb") {
		t.Errorf("text table missing parts: %q", out)
	}
	if !strings.Contains(out, "3.50") {
		t.Errorf("float not rendered with 2 decimals: %q", out)
	}
}

func TestTableWriteCSV(t *testing.T) {
	tab := &Table{Header: []string{"a", "b"}}
	tab.AddRow(1, true)
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,true\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestPortfolioRunsEverywhere(t *testing.T) {
	if len(Portfolio()) < 5 {
		t.Fatalf("portfolio too small: %d", len(Portfolio()))
	}
	seen := map[string]bool{}
	for _, na := range Portfolio() {
		if na.Name == "" || na.New == nil {
			t.Errorf("malformed portfolio entry %+v", na)
		}
		if seen[na.Name] {
			t.Errorf("duplicate adversary name %q", na.Name)
		}
		seen[na.Name] = true
	}
}

func TestBestMeasuredWithinSandwich(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		best, name, err := BestMeasured(n, 1)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if name == "" {
			t.Errorf("n=%d: empty witness name", n)
		}
		if best < 1 {
			t.Errorf("n=%d: best = %d", n, best)
		}
	}
}

func TestBestMeasuredExactWinsSmallN(t *testing.T) {
	// For n = 4, t*(T4) = 4 > n−1, which only the search strata reach:
	// the witness must be beam-search or the exact solver, and the value
	// must be exactly the game value 4.
	best, name, err := BestMeasured(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if best != 4 {
		t.Errorf("best at n=4 = %d, want 4 (the exact game value)", best)
	}
	if name != "exact-optimal" && name != "beam-search" {
		t.Errorf("witness = %q, want a search stratum", name)
	}
}

func TestFigure1(t *testing.T) {
	tab, err := Figure1([]int{2, 4, 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	// Column order: n, trivial, nlogn, nloglogn, linear, lower, measured.
	for _, row := range tab.Rows {
		n, _ := strconv.Atoi(row[0])
		measured, _ := strconv.Atoi(row[6])
		upper, _ := strconv.Atoi(row[4])
		if measured > upper {
			t.Errorf("n=%d: measured %d above upper %d", n, measured, upper)
		}
	}
}

func TestTheorem31(t *testing.T) {
	tab, err := Theorem31([]int{2, 3, 4, 6}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[5] != "true" {
			t.Errorf("sandwich row not ok: %v", row)
		}
	}
}

func TestStaticPathExperiment(t *testing.T) {
	tab, err := StaticPath([]int{2, 5, 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[2][1] != "29" {
		t.Errorf("n=30 static path measured %s, want 29", tab.Rows[2][1])
	}
}

func TestRestricted(t *testing.T) {
	tab, err := Restricted([]int{8, 12}, []int{2, 3, 20}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// k=20 infeasible for both n; 2 ns × 2 feasible ks = 4 rows.
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
}

func TestNonsplit(t *testing.T) {
	tab, err := Nonsplit([]int{3, 6}, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[2] != "1.00" {
			t.Errorf("nonsplit fraction %s != 1.00 for n=%s", row[2], row[0])
		}
	}
}

func TestExact(t *testing.T) {
	tab, err := Exact(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Rows for n = 2, 3, 4; exact values 1, 2, 4.
	want := []string{"1", "2", "4"}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		if row[1] != want[i] {
			t.Errorf("row %d: t* = %s, want %s", i, row[1], want[i])
		}
	}
}

// TestExperimentsDeterministicAcrossWorkers pins the campaign rewiring's
// contract at the experiment layer: every randomized experiment renders
// the identical table for worker counts 1, 4, and GOMAXPROCS.
func TestExperimentsDeterministicAcrossWorkers(t *testing.T) {
	experiments := map[string]func(opt Option) (*Table, error){
		"figure1": func(opt Option) (*Table, error) {
			return Figure1([]int{2, 4, 8}, 1, opt)
		},
		"restricted": func(opt Option) (*Table, error) {
			return Restricted([]int{8, 12}, []int{2, 3}, 4, 1, opt)
		},
		"nonsplit": func(opt Option) (*Table, error) {
			return Nonsplit([]int{4, 6}, 8, 1, opt)
		},
		"gossip": func(opt Option) (*Table, error) {
			return GossipVsBroadcast([]int{4, 8}, 6, 1, opt)
		},
	}
	for name, run := range experiments {
		t.Run(name, func(t *testing.T) {
			var ref *Table
			for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
				tab, err := run(WithWorkers(workers))
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if ref == nil {
					ref = tab
					continue
				}
				if !reflect.DeepEqual(ref, tab) {
					t.Errorf("workers=%d table differs:\n%+v\nvs\n%+v", workers, ref, tab)
				}
			}
		})
	}
}

func TestExperimentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := BestMeasured(8, 1, WithContext(ctx)); !errors.Is(err, context.Canceled) {
		t.Errorf("BestMeasured err = %v, want context.Canceled", err)
	}
	if _, err := Restricted([]int{8}, []int{2}, 4, 1, WithContext(ctx)); !errors.Is(err, context.Canceled) {
		t.Errorf("Restricted err = %v, want context.Canceled", err)
	}
}

func TestCampaignTable(t *testing.T) {
	o, err := campaign.RunSpec(context.Background(), campaign.Spec{
		Name:        "demo",
		Adversaries: []string{"static-path"},
		Ns:          []int{8},
		Trials:      3,
		Seed:        1,
	}, campaign.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	tab := CampaignTable(o)
	if !strings.Contains(tab.Title, "demo") || len(tab.Rows) != 1 {
		t.Fatalf("campaign table wrong: %+v", tab)
	}
	// Static path on n=8 always takes 7 rounds.
	if tab.Rows[0][0] != "static-path/n=8" || tab.Rows[0][2] != "7.00" {
		t.Errorf("row = %v", tab.Rows[0])
	}
}

func TestGossipVsBroadcast(t *testing.T) {
	tab, err := GossipVsBroadcast([]int{4, 8}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[4] != "stalls" {
			t.Errorf("staller did not stall at n=%s", row[0])
		}
	}
}
