// Package experiment implements the reproduction harness: one named
// experiment per table/figure/claim of the paper (see DESIGN.md §4), each
// returning a renderable table. The cmd/ binaries and the root bench file
// are thin wrappers over this package, so every number in EXPERIMENTS.md
// can be regenerated from a single entry point.
package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dyntreecast/internal/adversary"
	"dyntreecast/internal/bounds"
	"dyntreecast/internal/core"
	"dyntreecast/internal/gamesolver"
	"dyntreecast/internal/gossip"
	"dyntreecast/internal/graph"
	"dyntreecast/internal/rng"
	"dyntreecast/internal/stats"
	"dyntreecast/internal/tree"
)

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case int:
			row[i] = strconv.Itoa(v)
		case float64:
			row[i] = strconv.FormatFloat(v, 'f', 2, 64)
		case bool:
			row[i] = strconv.FormatBool(v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// WriteText renders an aligned text table.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "# %s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("experiment: writing table: %w", err)
	}
	return nil
}

// WriteCSV renders the table as CSV (header first).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return fmt.Errorf("experiment: writing CSV header: %w", err)
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiment: writing CSV row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("experiment: flushing CSV: %w", err)
	}
	return nil
}

// NamedAdversary pairs an adversary constructor with a display name.
// Constructors take the process count and a seed-derived source so every
// run is reproducible.
type NamedAdversary struct {
	Name string
	New  func(n int, src *rng.Source) core.Adversary
}

// Portfolio returns the standard adversary suite used across experiments:
// the oblivious baselines and the adaptive heuristics.
func Portfolio() []NamedAdversary {
	return []NamedAdversary{
		{"static-path", func(n int, _ *rng.Source) core.Adversary {
			return adversary.Static{Tree: tree.IdentityPath(n)}
		}},
		{"random-tree", func(_ int, src *rng.Source) core.Adversary {
			return adversary.Random{Src: src}
		}},
		{"random-path", func(_ int, src *rng.Source) core.Adversary {
			return adversary.RandomPath{Src: src}
		}},
		{"ascending-path", func(int, *rng.Source) core.Adversary {
			return adversary.AscendingPath{}
		}},
		{"block-leader", func(int, *rng.Source) core.Adversary {
			return adversary.BlockLeader{}
		}},
		{"min-gain", func(int, *rng.Source) core.Adversary {
			return adversary.MinGain{}
		}},
	}
}

// measure runs one adversary to broadcast completion.
func measure(n int, na NamedAdversary, src *rng.Source) (int, error) {
	t, err := core.BroadcastTime(n, na.New(n, src.Split()))
	if err != nil {
		return t, fmt.Errorf("experiment: %s at n=%d: %w", na.Name, n, err)
	}
	return t, nil
}

// BestMeasured runs the whole portfolio plus a beam search and returns
// the largest broadcast time achieved and the name of the adversary that
// achieved it. Every value is a certified lower-bound witness for t*(Tn).
func BestMeasured(n int, seed uint64) (int, string, error) {
	src := rng.New(seed)
	best, bestName := -1, ""
	for _, na := range Portfolio() {
		t, err := measure(n, na, src)
		if err != nil {
			return 0, "", err
		}
		if t > best {
			best, bestName = t, na.Name
		}
	}
	// Beam search (with general-tree proposals) usually wins; cost grows
	// with n so keep the width moderate.
	_, beamRounds := adversary.BeamSearch(n, adversary.BeamConfig{
		Width: 16, RandomMoves: 6, RandomTrees: 8, Seed: seed,
	})
	if beamRounds > best {
		best, bestName = beamRounds, "beam-search"
	}
	// Exact game value where feasible.
	if n <= gamesolver.MaxN {
		if s, err := gamesolver.New(n); err == nil {
			if v := s.Value(); v > best {
				best, bestName = v, "exact-optimal"
			}
		}
	}
	// Anytime deep-line search just past the exact range (n = 6 stays in
	// the hundreds of milliseconds; n = 7 is seconds-to-minutes and left
	// to cmd/exact-solver -deep).
	if n == 6 {
		if line, _, err := gamesolver.DeepestLine(n, 6000, 4); err == nil {
			if v, err := core.BroadcastTime(n, adversary.Replay{Trees: line}); err == nil && v > best {
				best, bestName = v, "deep-line"
			}
		}
	}
	return best, bestName, nil
}

// Figure1 reproduces the paper's Figure 1: every bound regime evaluated
// over the given n values, alongside the best measured t* from our
// adversary suite. The measured column must sit at or below the paper's
// linear upper bound everywhere.
func Figure1(ns []int, seed uint64) (*Table, error) {
	t := &Table{
		Title: "Figure 1: upper-bound regimes for broadcast in dynamic rooted trees",
		Header: []string{
			"n", "trivial(n^2)", "nlogn[14]", "2nloglogn[9]",
			"linear(new)", "lower[14]", "measured", "witness",
		},
	}
	for _, n := range ns {
		best, name, err := BestMeasured(n, seed)
		if err != nil {
			return nil, err
		}
		if err := bounds.CheckSandwich(n, best); err != nil {
			return nil, err
		}
		t.AddRow(n, bounds.Trivial(n), bounds.NLogN(n), bounds.NLogLogN(n),
			bounds.UpperLinear(n), bounds.Lower(n), best, name)
	}
	return t, nil
}

// Theorem31 verifies the sandwich of Theorem 3.1 for each n: measured
// best ≤ ⌈(1+√2)n−1⌉ (hard check; a violation falsifies the paper or the
// simulator) and reports how close the measured value gets to the ZSS
// lower bound.
func Theorem31(ns []int, seed uint64) (*Table, error) {
	t := &Table{
		Title:  "Theorem 3.1: lower <= t*(Tn) <= ceil((1+sqrt2)n - 1)",
		Header: []string{"n", "lower", "measured", "upper", "measured/n", "ok"},
	}
	for _, n := range ns {
		best, _, err := BestMeasured(n, seed)
		if err != nil {
			return nil, err
		}
		ok := best <= bounds.UpperLinear(n)
		if !ok {
			return nil, fmt.Errorf("experiment: Theorem 3.1 violated at n=%d: %d > %d",
				n, best, bounds.UpperLinear(n))
		}
		t.AddRow(n, bounds.Lower(n), best, bounds.UpperLinear(n),
			float64(best)/float64(n), ok)
	}
	return t, nil
}

// StaticPath reproduces the §2 observation t*(static path) = n−1 exactly.
func StaticPath(ns []int) (*Table, error) {
	t := &Table{
		Title:  "Static path: t* = n-1 (section 2)",
		Header: []string{"n", "measured", "expected", "ok"},
	}
	for _, n := range ns {
		got, err := core.BroadcastTime(n, adversary.Static{Tree: tree.IdentityPath(n)})
		if err != nil {
			return nil, fmt.Errorf("experiment: static path n=%d: %w", n, err)
		}
		want := bounds.StaticPath(n)
		if got != want {
			return nil, fmt.Errorf("experiment: static path n=%d: got %d, want %d", n, got, want)
		}
		t.AddRow(n, got, want, true)
	}
	return t, nil
}

// Restricted reproduces the Zeiner et al. restricted-adversary regimes:
// mean broadcast time under k-leaf and k-inner random adversaries, with
// the O(kn) bound curve for context.
func Restricted(ns, ks []int, trials int, seed uint64) (*Table, error) {
	t := &Table{
		Title:  "Restricted adversaries: k leaves / k inner nodes => O(kn)",
		Header: []string{"n", "k", "mean-t*(k-leaves)", "mean-t*(k-inner)", "bound(kn)", "upper-linear"},
	}
	src := rng.New(seed)
	for _, n := range ns {
		for _, k := range ks {
			if k < 1 || k > n-1 {
				continue
			}
			var leafTimes, innerTimes []int
			for trial := 0; trial < trials; trial++ {
				lt, err := core.BroadcastTime(n, adversary.KLeaves{K: k, Src: src.Split()})
				if err != nil {
					return nil, fmt.Errorf("experiment: k-leaves n=%d k=%d: %w", n, k, err)
				}
				it, err := core.BroadcastTime(n, adversary.KInner{K: k, Src: src.Split()})
				if err != nil {
					return nil, fmt.Errorf("experiment: k-inner n=%d k=%d: %w", n, k, err)
				}
				leafTimes = append(leafTimes, lt)
				innerTimes = append(innerTimes, it)
			}
			t.AddRow(n, k,
				stats.SummarizeInts(leafTimes).Mean,
				stats.SummarizeInts(innerTimes).Mean,
				bounds.RestrictedLeaves(n, k), bounds.UpperLinear(n))
		}
	}
	return t, nil
}

// Nonsplit checks the simulation lemma behind the previous best bound
// ([1] + [9]): the product of any n−1 rooted trees is nonsplit, and
// nonsplit graphs have tiny rooted radius.
func Nonsplit(ns []int, trials int, seed uint64) (*Table, error) {
	t := &Table{
		Title:  "Nonsplit connection: product of n-1 rooted trees is nonsplit",
		Header: []string{"n", "trials", "nonsplit-fraction", "mean-radius", "max-radius"},
	}
	src := rng.New(seed)
	for _, n := range ns {
		nonsplit := 0
		var radii []int
		for trial := 0; trial < trials; trial++ {
			trees := make([]*tree.Tree, n-1)
			for i := range trees {
				trees[i] = tree.Random(n, src)
			}
			g := graph.ProductOfTrees(trees)
			if g.IsNonsplit() {
				nonsplit++
			}
			radii = append(radii, g.Radius())
		}
		sum := stats.SummarizeInts(radii)
		t.AddRow(n, trials, float64(nonsplit)/float64(trials), sum.Mean, int(sum.Max))
	}
	return t, nil
}

// Exact reports the exact game values t*(Tn) for small n against the
// bounds and against the heuristic adversaries at the same n.
func Exact(maxN int, seed uint64) (*Table, error) {
	t := &Table{
		Title:  "Exact t*(Tn) by game solving vs bounds and heuristics",
		Header: []string{"n", "t*-exact", "lower", "upper", "states", "best-heuristic", "witness"},
	}
	if maxN > gamesolver.MaxN {
		maxN = gamesolver.MaxN
	}
	for n := 2; n <= maxN; n++ {
		s, err := gamesolver.New(n)
		if err != nil {
			return nil, fmt.Errorf("experiment: exact n=%d: %w", n, err)
		}
		v := s.Value()
		best, name, err := BestMeasured(n, seed)
		if err != nil {
			return nil, err
		}
		t.AddRow(n, v, bounds.Lower(n), bounds.UpperLinear(n),
			s.StatesExplored(), best, name)
	}
	return t, nil
}

// GossipVsBroadcast measures gossip and broadcast completion on the same
// random runs (E9), and demonstrates the adversarial gossip stall.
func GossipVsBroadcast(ns []int, trials int, seed uint64) (*Table, error) {
	t := &Table{
		Title:  "Gossip vs broadcast under random trees (adversarial gossip is unbounded)",
		Header: []string{"n", "mean-broadcast", "mean-gossip", "ratio", "staller-gossip"},
	}
	src := rng.New(seed)
	for _, n := range ns {
		var bs, gs []int
		for trial := 0; trial < trials; trial++ {
			b, g, err := gossip.BothTimes(n, adversary.Random{Src: src.Split()})
			if err != nil {
				return nil, fmt.Errorf("experiment: gossip n=%d: %w", n, err)
			}
			bs = append(bs, b)
			gs = append(gs, g)
		}
		mb := stats.SummarizeInts(bs).Mean
		mg := stats.SummarizeInts(gs).Mean
		staller := "stalls"
		if _, err := gossip.Time(n, gossip.Staller{}, core.WithMaxRounds(4*n)); err == nil {
			staller = "completes"
		}
		t.AddRow(n, mb, mg, mg/mb, staller)
	}
	return t, nil
}
