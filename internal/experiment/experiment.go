// Package experiment implements the reproduction harness: one named
// experiment per table/figure/claim of the paper (see DESIGN.md §4), each
// returning a renderable table. The cmd/ binaries and the root bench file
// are thin wrappers over this package, so every number in EXPERIMENTS.md
// can be regenerated from a single entry point.
//
// Since the campaign subsystem landed, every randomized trial loop runs
// through campaign.Run on a worker pool (default GOMAXPROCS; tune with
// WithWorkers). Results are a pure function of the seed and identical for
// every worker count. BestMeasured, Restricted, and GossipVsBroadcast
// additionally split their sources in the exact order the pre-campaign
// serial loops consumed them, so those tables reproduce the old harness
// digit for digit; Nonsplit switched from one shared stream to per-trial
// pre-split streams (a different but equally deterministic sequence).
//
// The engine-driving trial loops run on each worker's pooled
// core.Runner (campaign.Arena, DESIGN.md §3d) rather than allocating a
// fresh engine per trial; Runner.Run is round-for-round identical to the
// allocating path, so every table digit is unchanged.
package experiment

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dyntreecast/internal/adversary"
	"dyntreecast/internal/bounds"
	"dyntreecast/internal/campaign"
	"dyntreecast/internal/core"
	"dyntreecast/internal/gamesolver"
	"dyntreecast/internal/gossip"
	"dyntreecast/internal/graph"
	"dyntreecast/internal/rng"
	"dyntreecast/internal/tree"
)

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case int:
			row[i] = strconv.Itoa(v)
		case float64:
			row[i] = strconv.FormatFloat(v, 'f', 2, 64)
		case bool:
			row[i] = strconv.FormatBool(v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// WriteText renders an aligned text table.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "# %s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("experiment: writing table: %w", err)
	}
	return nil
}

// WriteCSV renders the table as CSV (header first).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return fmt.Errorf("experiment: writing CSV header: %w", err)
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiment: writing CSV row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("experiment: flushing CSV: %w", err)
	}
	return nil
}

// Option tunes how an experiment executes (never what it computes:
// results are identical for every option combination).
type Option func(*config)

type config struct {
	ctx     context.Context
	workers int
	batch   int
}

// WithWorkers sets the campaign worker-pool size for the experiment's
// trial loops. 0 (the default) selects GOMAXPROCS; 1 recovers the old
// serial harness.
func WithWorkers(w int) Option { return func(c *config) { c.workers = w } }

// WithBatch sets the campaign batch size (consecutive same-cell jobs per
// scheduling unit; 0 = whole cells). The experiments' hand-built job
// lists carry no cell affinity, so this only matters for harnesses that
// route compiled specs through the experiment options (cmd/sweep -exp
// grid); results are identical for every value.
func WithBatch(b int) Option { return func(c *config) { c.batch = b } }

// WithContext makes the experiment cancellable: trial loops stop promptly
// once ctx is done and the experiment returns ctx's error.
func WithContext(ctx context.Context) Option { return func(c *config) { c.ctx = ctx } }

func buildConfig(opts []Option) config {
	c := config{ctx: context.Background()}
	for _, o := range opts {
		o(&c)
	}
	return c
}

// runJobs executes jobs on the campaign pool and returns the per-job
// results, failing on cancellation or on the first job error (in job
// order, so the error is deterministic too).
func runJobs(c config, jobs []campaign.Job) ([]campaign.JobResult, error) {
	results, err := campaign.Run(c.ctx, jobs, campaign.Config{Workers: c.workers, Batch: c.batch})
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		if r.Err != nil {
			return nil, r.Err
		}
	}
	return results, nil
}

// NamedAdversary pairs an adversary constructor with a display name.
// Constructors take the process count and a seed-derived source so every
// run is reproducible.
type NamedAdversary struct {
	Name string
	New  func(n int, src *rng.Source) core.Adversary
}

// Portfolio returns the standard adversary suite used across experiments:
// the oblivious baselines and the adaptive heuristics. It is the set of
// families flagged Portfolio in the campaign registry, in registry order
// — a fixed six-member prefix, so user registrations never perturb the
// paper-reproduction tables or their random streams.
func Portfolio() []NamedAdversary {
	var out []NamedAdversary
	for _, f := range campaign.Families() {
		if !f.Portfolio {
			continue
		}
		build := f.New
		name := f.Name
		out = append(out, NamedAdversary{Name: name, New: func(n int, src *rng.Source) core.Adversary {
			adv, err := build(n, nil, src)
			if err != nil {
				// Portfolio families take no params; construction cannot
				// fail for them. A failure here is a registry bug.
				panic(fmt.Sprintf("experiment: portfolio adversary %s: %v", name, err))
			}
			return adv
		}})
	}
	return out
}

// BestMeasured runs the whole portfolio plus the search strata (beam
// search, the exact solver where feasible, deep-line search at n = 6) as
// one parallel campaign, and returns the largest broadcast time achieved
// and the name of the adversary that achieved it. Every value is a
// certified lower-bound witness for t*(Tn).
func BestMeasured(n int, seed uint64, opts ...Option) (int, string, error) {
	c := buildConfig(opts)
	root := rng.New(seed)
	var jobs []campaign.Job
	// Portfolio jobs first, splitting the root source in portfolio order —
	// the exact streams the serial harness consumed. Each job runs on its
	// worker's pooled Runner (fresh-engine semantics via Reset, none of
	// the per-trial engine and Result allocations).
	for _, na := range Portfolio() {
		na := na
		jobs = append(jobs, campaign.Job{
			Index: len(jobs),
			Src:   root.Split(),
			RunArena: func(_ context.Context, src *rng.Source, a *campaign.Arena) ([]campaign.Measurement, error) {
				t, err := a.Runner.BroadcastTime(n, na.New(n, src))
				if err != nil {
					return nil, fmt.Errorf("experiment: %s at n=%d: %w", na.Name, n, err)
				}
				return []campaign.Measurement{{Cell: na.Name, Value: float64(t)}}, nil
			},
		})
	}
	// Beam search (with general-tree proposals) usually wins; cost grows
	// with n so keep the width moderate. Seeded directly, independent of
	// the root source.
	jobs = append(jobs, campaign.Job{
		Index: len(jobs),
		Run: func(context.Context, *rng.Source) ([]campaign.Measurement, error) {
			_, beamRounds := adversary.BeamSearch(n, adversary.BeamConfig{
				Width: 16, RandomMoves: 6, RandomTrees: 8, Seed: seed,
			})
			return []campaign.Measurement{{Cell: "beam-search", Value: float64(beamRounds)}}, nil
		},
	})
	// Exact game value where feasible (solver failures just forfeit).
	if n <= gamesolver.MaxN {
		jobs = append(jobs, campaign.Job{
			Index: len(jobs),
			Run: func(context.Context, *rng.Source) ([]campaign.Measurement, error) {
				v := -1
				if s, err := gamesolver.New(n); err == nil {
					v = s.Value()
				}
				return []campaign.Measurement{{Cell: "exact-optimal", Value: float64(v)}}, nil
			},
		})
	}
	// Anytime deep-line search just past the exact range (n = 6 stays in
	// the hundreds of milliseconds; n = 7 is seconds-to-minutes and left
	// to cmd/exact-solver -deep).
	if n == 6 {
		jobs = append(jobs, campaign.Job{
			Index: len(jobs),
			Run: func(context.Context, *rng.Source) ([]campaign.Measurement, error) {
				v := -1
				if line, _, err := gamesolver.DeepestLine(n, 6000, 4); err == nil {
					if t, err := core.BroadcastTime(n, adversary.Replay{Trees: line}); err == nil {
						v = t
					}
				}
				return []campaign.Measurement{{Cell: "deep-line", Value: float64(v)}}, nil
			},
		})
	}
	results, err := runJobs(c, jobs)
	if err != nil {
		return 0, "", err
	}
	// Winner selection walks results in job order with a strict >, which
	// reproduces the serial harness's tie-breaking exactly.
	best, bestName := -1, ""
	for _, r := range results {
		for _, m := range r.Measurements {
			if int(m.Value) > best {
				best, bestName = int(m.Value), m.Cell
			}
		}
	}
	return best, bestName, nil
}

// Figure1 reproduces the paper's Figure 1: every bound regime evaluated
// over the given n values, alongside the best measured t* from our
// adversary suite. The measured column must sit at or below the paper's
// linear upper bound everywhere.
func Figure1(ns []int, seed uint64, opts ...Option) (*Table, error) {
	t := &Table{
		Title: "Figure 1: upper-bound regimes for broadcast in dynamic rooted trees",
		Header: []string{
			"n", "trivial(n^2)", "nlogn[14]", "2nloglogn[9]",
			"linear(new)", "lower[14]", "measured", "witness",
		},
	}
	for _, n := range ns {
		best, name, err := BestMeasured(n, seed, opts...)
		if err != nil {
			return nil, err
		}
		if err := bounds.CheckSandwich(n, best); err != nil {
			return nil, err
		}
		t.AddRow(n, bounds.Trivial(n), bounds.NLogN(n), bounds.NLogLogN(n),
			bounds.UpperLinear(n), bounds.Lower(n), best, name)
	}
	return t, nil
}

// Theorem31 verifies the sandwich of Theorem 3.1 for each n: measured
// best ≤ ⌈(1+√2)n−1⌉ (hard check; a violation falsifies the paper or the
// simulator) and reports how close the measured value gets to the ZSS
// lower bound.
func Theorem31(ns []int, seed uint64, opts ...Option) (*Table, error) {
	t := &Table{
		Title:  "Theorem 3.1: lower <= t*(Tn) <= ceil((1+sqrt2)n - 1)",
		Header: []string{"n", "lower", "measured", "upper", "measured/n", "ok"},
	}
	for _, n := range ns {
		best, _, err := BestMeasured(n, seed, opts...)
		if err != nil {
			return nil, err
		}
		ok := best <= bounds.UpperLinear(n)
		if !ok {
			return nil, fmt.Errorf("experiment: Theorem 3.1 violated at n=%d: %d > %d",
				n, best, bounds.UpperLinear(n))
		}
		t.AddRow(n, bounds.Lower(n), best, bounds.UpperLinear(n),
			float64(best)/float64(n), ok)
	}
	return t, nil
}

// StaticPath reproduces the §2 observation t*(static path) = n−1 exactly.
func StaticPath(ns []int) (*Table, error) {
	t := &Table{
		Title:  "Static path: t* = n-1 (section 2)",
		Header: []string{"n", "measured", "expected", "ok"},
	}
	for _, n := range ns {
		got, err := core.BroadcastTime(n, adversary.Static{Tree: tree.IdentityPath(n)})
		if err != nil {
			return nil, fmt.Errorf("experiment: static path n=%d: %w", n, err)
		}
		want := bounds.StaticPath(n)
		if got != want {
			return nil, fmt.Errorf("experiment: static path n=%d: got %d, want %d", n, got, want)
		}
		t.AddRow(n, got, want, true)
	}
	return t, nil
}

// Restricted reproduces the Zeiner et al. restricted-adversary regimes:
// mean broadcast time under k-leaf and k-inner random adversaries, with
// the O(kn) bound curve for context. Trials fan out over the campaign
// pool; sources split in the serial harness's (n, k, trial, leaf-then-
// inner) order so the means match it bit for bit.
func Restricted(ns, ks []int, trials int, seed uint64, opts ...Option) (*Table, error) {
	t := &Table{
		Title:  "Restricted adversaries: k leaves / k inner nodes => O(kn)",
		Header: []string{"n", "k", "mean-t*(k-leaves)", "mean-t*(k-inner)", "bound(kn)", "upper-linear"},
	}
	c := buildConfig(opts)
	root := rng.New(seed)
	var jobs []campaign.Job
	addJob := func(n, k int, kind string, build func(src *rng.Source) core.Adversary) {
		cell := campaign.CellKey(kind, n, k)
		jobs = append(jobs, campaign.Job{
			Index: len(jobs),
			Src:   root.Split(),
			RunArena: func(_ context.Context, src *rng.Source, a *campaign.Arena) ([]campaign.Measurement, error) {
				rounds, err := a.Runner.BroadcastTime(n, build(src))
				if err != nil {
					return nil, fmt.Errorf("experiment: %s n=%d k=%d: %w", kind, n, k, err)
				}
				return []campaign.Measurement{{Cell: cell, Value: float64(rounds)}}, nil
			},
		})
	}
	for _, n := range ns {
		for _, k := range ks {
			if k < 1 || k > n-1 {
				continue
			}
			for trial := 0; trial < trials; trial++ {
				k := k
				addJob(n, k, "k-leaves", func(src *rng.Source) core.Adversary {
					return adversary.KLeaves{K: k, Src: src}
				})
				addJob(n, k, "k-inner", func(src *rng.Source) core.Adversary {
					return adversary.KInner{K: k, Src: src}
				})
			}
		}
	}
	results, err := runJobs(c, jobs)
	if err != nil {
		return nil, err
	}
	cells := campaign.Aggregate(results)
	for _, n := range ns {
		for _, k := range ks {
			if k < 1 || k > n-1 {
				continue
			}
			leaves, ok1 := campaign.CellByKey(cells, campaign.CellKey("k-leaves", n, k))
			inner, ok2 := campaign.CellByKey(cells, campaign.CellKey("k-inner", n, k))
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("experiment: restricted n=%d k=%d produced no measurements", n, k)
			}
			t.AddRow(n, k, leaves.Mean, inner.Mean,
				bounds.RestrictedLeaves(n, k), bounds.UpperLinear(n))
		}
	}
	return t, nil
}

// Nonsplit checks the simulation lemma behind the previous best bound
// ([1] + [9]): the product of any n−1 rooted trees is nonsplit, and
// nonsplit graphs have tiny rooted radius. Each trial is one campaign job
// drawing its n−1 trees from a private pre-split source.
func Nonsplit(ns []int, trials int, seed uint64, opts ...Option) (*Table, error) {
	t := &Table{
		Title:  "Nonsplit connection: product of n-1 rooted trees is nonsplit",
		Header: []string{"n", "trials", "nonsplit-fraction", "mean-radius", "max-radius"},
	}
	c := buildConfig(opts)
	root := rng.New(seed)
	var jobs []campaign.Job
	for _, n := range ns {
		n := n
		nonsplitCell := campaign.CellKey("nonsplit", n, -1)
		radiusCell := campaign.CellKey("radius", n, -1)
		for trial := 0; trial < trials; trial++ {
			jobs = append(jobs, campaign.Job{
				Index: len(jobs),
				Src:   root.Split(),
				Run: func(_ context.Context, src *rng.Source) ([]campaign.Measurement, error) {
					trees := make([]*tree.Tree, n-1)
					for i := range trees {
						trees[i] = tree.Random(n, src)
					}
					g := graph.ProductOfTrees(trees)
					isNonsplit := 0.0
					if g.IsNonsplit() {
						isNonsplit = 1.0
					}
					return []campaign.Measurement{
						{Cell: nonsplitCell, Value: isNonsplit},
						{Cell: radiusCell, Value: float64(g.Radius())},
					}, nil
				},
			})
		}
	}
	results, err := runJobs(c, jobs)
	if err != nil {
		return nil, err
	}
	cells := campaign.Aggregate(results)
	for _, n := range ns {
		frac, ok1 := campaign.CellByKey(cells, campaign.CellKey("nonsplit", n, -1))
		radius, ok2 := campaign.CellByKey(cells, campaign.CellKey("radius", n, -1))
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("experiment: nonsplit n=%d produced no measurements", n)
		}
		t.AddRow(n, trials, frac.Mean, radius.Mean, int(radius.Max))
	}
	return t, nil
}

// Exact reports the exact game values t*(Tn) for small n against the
// bounds and against the heuristic adversaries at the same n.
func Exact(maxN int, seed uint64, opts ...Option) (*Table, error) {
	t := &Table{
		Title:  "Exact t*(Tn) by game solving vs bounds and heuristics",
		Header: []string{"n", "t*-exact", "lower", "upper", "states", "best-heuristic", "witness"},
	}
	if maxN > gamesolver.MaxN {
		maxN = gamesolver.MaxN
	}
	for n := 2; n <= maxN; n++ {
		s, err := gamesolver.New(n)
		if err != nil {
			return nil, fmt.Errorf("experiment: exact n=%d: %w", n, err)
		}
		v := s.Value()
		best, name, err := BestMeasured(n, seed, opts...)
		if err != nil {
			return nil, err
		}
		t.AddRow(n, v, bounds.Lower(n), bounds.UpperLinear(n),
			s.StatesExplored(), best, name)
	}
	return t, nil
}

// GossipVsBroadcast measures gossip and broadcast completion on the same
// random runs (E9), and demonstrates the adversarial gossip stall. Each
// trial is one campaign job reporting both completion times.
func GossipVsBroadcast(ns []int, trials int, seed uint64, opts ...Option) (*Table, error) {
	t := &Table{
		Title:  "Gossip vs broadcast under random trees (adversarial gossip is unbounded)",
		Header: []string{"n", "mean-broadcast", "mean-gossip", "ratio", "staller-gossip"},
	}
	c := buildConfig(opts)
	root := rng.New(seed)
	var jobs []campaign.Job
	for _, n := range ns {
		n := n
		bCell := campaign.CellKey("broadcast", n, -1)
		gCell := campaign.CellKey("gossip", n, -1)
		for trial := 0; trial < trials; trial++ {
			jobs = append(jobs, campaign.Job{
				Index: len(jobs),
				Src:   root.Split(),
				RunArena: func(_ context.Context, src *rng.Source, a *campaign.Arena) ([]campaign.Measurement, error) {
					b, g, err := a.Runner.BothTimes(n, adversary.Random{Src: src})
					if err != nil {
						return nil, fmt.Errorf("experiment: gossip n=%d: %w", n, err)
					}
					return []campaign.Measurement{
						{Cell: bCell, Value: float64(b)},
						{Cell: gCell, Value: float64(g)},
					}, nil
				},
			})
		}
	}
	results, err := runJobs(c, jobs)
	if err != nil {
		return nil, err
	}
	cells := campaign.Aggregate(results)
	for _, n := range ns {
		mb, ok1 := campaign.CellByKey(cells, campaign.CellKey("broadcast", n, -1))
		mg, ok2 := campaign.CellByKey(cells, campaign.CellKey("gossip", n, -1))
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("experiment: gossip n=%d produced no measurements", n)
		}
		staller := "stalls"
		if _, err := gossip.Time(n, gossip.Staller{}, core.WithMaxRounds(4*n)); err == nil {
			staller = "completes"
		}
		t.AddRow(n, mb.Mean, mg.Mean, mg.Mean/mb.Mean, staller)
	}
	return t, nil
}

// CampaignTable renders a campaign outcome as a Table: one row per cell,
// in grid order, with the summary statistics the aggregator computed.
func CampaignTable(o *campaign.Outcome) *Table {
	title := "Campaign"
	if o.Spec.Name != "" {
		title = fmt.Sprintf("Campaign: %s", o.Spec.Name)
	}
	t := &Table{
		Title:  fmt.Sprintf("%s (seed=%d, %d/%d jobs ok)", title, o.Spec.Seed, o.Completed, o.Jobs),
		Header: []string{"cell", "count", "mean", "stddev", "min", "max", "p50", "p99"},
	}
	for _, c := range o.Cells {
		t.AddRow(c.Cell, c.Count, c.Mean, c.StdDev, c.Min, c.Max, c.P50, c.P99)
	}
	return t
}
