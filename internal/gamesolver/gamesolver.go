// Package gamesolver computes the exact broadcast time t*(Tn) for small n
// by solving the full adversary game.
//
// The game: states are the reflexive boolean matrices G(t); the adversary
// moves by choosing any rooted tree T on [n], sending state M to M ∘ T;
// the game ends when some row of M is full, and the adversary maximizes
// the number of moves. Because round graphs carry all self-loops, states
// grow monotonically, so the game is finite (§2: at most n² moves) and the
// value function is well-defined:
//
//	f(M) = 0                          if M has a full row
//	f(M) = 1 + max_T f(M ∘ T)         otherwise
//
// t*(Tn) = f(I). This is the ground truth the heuristic adversaries in
// package adversary are measured against (experiment E7), and the solver
// also exposes the optimal move for each state, yielding a perfect-play
// adversary for small n.
//
// Implementation: states are packed into a single uint64 (column-major,
// bit y·n+x = "y has heard x"), so applying a tree is a handful of shift
// and mask operations and the memo table is keyed by integers. States are
// deduplicated up to process relabeling: t* is invariant under permuting
// [n] (the tree set is closed under relabeling), so each state is reduced
// to the minimal mask over all n! bit permutations. A raw-state cache in
// front of the canonical table avoids recanonicalizing hot states.
package gamesolver

import (
	"fmt"
	"math/bits"

	"dyntreecast/internal/boolmat"
	"dyntreecast/internal/core"
	"dyntreecast/internal/tree"
)

// MaxN is the largest n the solver accepts by default. The tree set grows
// as n^(n−1) and the state space super-exponentially; n = 6 (7776 trees)
// is already hours of work, so it needs an explicit override. The packed
// representation caps any override at n = 8 (n² ≤ 64 bits).
const MaxN = 5

// hardMaxN is the representation limit: n² bits must fit a uint64.
const hardMaxN = 8

// treePlan is the shift/mask program of one tree: for every non-root
// vertex y, OR column parent(y) into column y.
type treePlan []struct{ dst, src uint }

// Solver computes exact game values for one n. It caches states, so
// reusing one Solver across queries amortizes the search.
type Solver struct {
	n              int
	colMask        uint64
	trees          []*tree.Tree
	plans          []treePlan
	bitPerms       [][]uint8      // per vertex-permutation: old bit -> new bit
	memo           map[uint64]int // canonical mask -> value
	rawMemo        map[uint64]int // raw mask -> value (canonicalization cache)
	canonize       bool
	nLimitOverride int
}

// Option configures the solver.
type Option func(*Solver)

// WithoutCanonicalization disables permutation canonicalization — only
// useful for the ablation bench that measures its effect.
func WithoutCanonicalization() Option {
	return func(s *Solver) { s.canonize = false }
}

// WithMaxN raises the safety limit (default MaxN). Values above 5 can take
// a very long time; the representation caps at 8.
func WithMaxN(m int) Option {
	return func(s *Solver) { s.nLimitOverride = m }
}

// New returns a solver for n processes. It errors when n exceeds the
// safety limit (see MaxN and WithMaxN).
func New(n int, opts ...Option) (*Solver, error) {
	s := &Solver{
		n:       n,
		memo:    map[uint64]int{},
		rawMemo: map[uint64]int{},

		canonize: true,
	}
	for _, o := range opts {
		o(s)
	}
	limit := MaxN
	if s.nLimitOverride > 0 {
		limit = s.nLimitOverride
		if limit > hardMaxN {
			limit = hardMaxN
		}
	}
	if n < 1 || n > limit {
		return nil, fmt.Errorf("gamesolver: n = %d out of supported range [1,%d]", n, limit)
	}
	s.colMask = (uint64(1) << uint(n)) - 1
	tree.Enumerate(n, func(t *tree.Tree) bool {
		s.trees = append(s.trees, t)
		plan := make(treePlan, 0, n-1)
		for y, p := range t.Parents() {
			if y != p {
				plan = append(plan, struct{ dst, src uint }{uint(y * n), uint(p * n)})
			}
		}
		s.plans = append(s.plans, plan)
		return true
	})
	for _, p := range allPerms(n) {
		// permuted[x', y'] = m[p[x'], p[y']]: the old bit at
		// (p[x'], p[y']) lands at new position (x', y').
		table := make([]uint8, n*n)
		for xp := 0; xp < n; xp++ {
			for yp := 0; yp < n; yp++ {
				oldIdx := p[yp]*n + p[xp]
				newIdx := yp*n + xp
				table[oldIdx] = uint8(newIdx)
			}
		}
		s.bitPerms = append(s.bitPerms, table)
	}
	return s, nil
}

// identityMask returns the packed identity state.
func (s *Solver) identityMask() uint64 {
	var m uint64
	for i := 0; i < s.n; i++ {
		m |= 1 << uint(i*s.n+i)
	}
	return m
}

// apply runs one tree round on a packed state.
func (s *Solver) apply(m uint64, plan treePlan) uint64 {
	next := m
	for _, mv := range plan {
		next |= ((m >> mv.src) & s.colMask) << mv.dst
	}
	return next
}

// done reports whether some row is full: the AND of all columns is
// non-empty.
func (s *Solver) done(m uint64) bool {
	inter := s.colMask
	for y := 0; y < s.n; y++ {
		inter &= m >> uint(y*s.n)
		if inter&s.colMask == 0 {
			return false
		}
	}
	return inter&s.colMask != 0
}

// canonical returns the minimal mask over all vertex relabelings.
func (s *Solver) canonical(m uint64) uint64 {
	if !s.canonize {
		return m
	}
	best := ^uint64(0)
	for _, table := range s.bitPerms {
		var out uint64
		w := m
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out |= 1 << table[b]
			w &= w - 1
		}
		if out < best {
			best = out
		}
	}
	return best
}

// Value returns t*(Tn): the exact broadcast time under perfect adversary
// play starting from the identity state.
func (s *Solver) Value() int { return s.valueOf(s.identityMask()) }

// ValueOf returns the remaining game value of an arbitrary reflexive
// state given as a matrix.
func (s *Solver) ValueOf(m *boolmat.Matrix) int {
	if m.N() != s.n {
		panic(fmt.Sprintf("gamesolver: state dimension %d, solver n %d", m.N(), s.n))
	}
	return s.valueOf(s.pack(m))
}

// StatesExplored returns the number of distinct canonical states memoized.
func (s *Solver) StatesExplored() int { return len(s.memo) }

func (s *Solver) valueOf(m uint64) int {
	if s.done(m) {
		return 0
	}
	if v, ok := s.rawMemo[m]; ok {
		return v
	}
	key := s.canonical(m)
	if v, ok := s.memo[key]; ok {
		s.rawMemo[m] = v
		return v
	}
	best := 0
	for _, plan := range s.plans {
		if v := 1 + s.valueOf(s.apply(m, plan)); v > best {
			best = v
		}
	}
	s.memo[key] = best
	s.rawMemo[m] = best
	return best
}

// BestTree returns an optimal adversary move from state m (a tree
// maximizing the remaining game value), or nil if the game is over.
func (s *Solver) BestTree(m *boolmat.Matrix) *tree.Tree {
	if m.N() != s.n {
		panic(fmt.Sprintf("gamesolver: state dimension %d, solver n %d", m.N(), s.n))
	}
	packed := s.pack(m)
	if s.done(packed) {
		return nil
	}
	// A cached move for the canonical representative would be a move in a
	// *relabeled* game, so recompute per raw state; this is cheap relative
	// to the value search, which is fully memoized by now.
	bestV, bestI := -1, -1
	for i, plan := range s.plans {
		if v := s.valueOf(s.apply(packed, plan)); v > bestV {
			bestV, bestI = v, i
		}
	}
	return s.trees[bestI]
}

// pack converts a matrix state to the packed representation.
func (s *Solver) pack(m *boolmat.Matrix) uint64 {
	var out uint64
	for y := 0; y < s.n; y++ {
		for x := 0; x < s.n; x++ {
			if m.Test(x, y) {
				out |= 1 << uint(y*s.n+x)
			}
		}
	}
	return out
}

// Unpack converts a packed state back to a matrix (exported for tests and
// trace tooling).
func (s *Solver) Unpack(mask uint64) *boolmat.Matrix {
	m := boolmat.Zero(s.n)
	for y := 0; y < s.n; y++ {
		for x := 0; x < s.n; x++ {
			if mask&(1<<uint(y*s.n+x)) != 0 {
				m.Set(x, y)
			}
		}
	}
	return m
}

// allPerms returns all permutations of [0,n) (Heap's algorithm).
func allPerms(n int) [][]int {
	cur := make([]int, n)
	for i := range cur {
		cur[i] = i
	}
	var out [][]int
	var rec func(k int)
	rec = func(k int) {
		if k == 1 {
			p := make([]int, n)
			copy(p, cur)
			out = append(out, p)
			return
		}
		for i := 0; i < k; i++ {
			rec(k - 1)
			if k%2 == 0 {
				cur[i], cur[k-1] = cur[k-1], cur[i]
			} else {
				cur[0], cur[k-1] = cur[k-1], cur[0]
			}
		}
	}
	rec(n)
	return out
}

// Optimal is a perfect-play adversary for small n, backed by a Solver.
// It plugs into core.Run like any other adversary; each move is the
// argmax of the exact game value.
type Optimal struct{ S *Solver }

// Next implements core.Adversary.
func (o Optimal) Next(v core.View) *tree.Tree {
	n := v.N()
	if n != o.S.n {
		return nil
	}
	m := boolmat.Zero(n)
	for y := 0; y < n; y++ {
		v.Heard(y).ForEach(func(x int) bool {
			m.Set(x, y)
			return true
		})
	}
	t := o.S.BestTree(m)
	if t == nil {
		// Game over (broadcast done); any tree is acceptable if asked.
		return tree.IdentityPath(n)
	}
	return t
}

var _ core.Adversary = Optimal{}
