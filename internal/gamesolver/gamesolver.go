// Package gamesolver computes the exact broadcast time t*(Tn) for small n
// by solving the full adversary game.
//
// The game: states are the reflexive boolean matrices G(t); the adversary
// moves by choosing any rooted tree T on [n], sending state M to M ∘ T;
// the game ends when some process's rumor has reached everyone, and the
// adversary maximizes the number of moves. Because round graphs carry all
// self-loops, states grow monotonically, so the game is finite (§2: at
// most n² moves) and the value function is well-defined:
//
//	f(M) = 0                          if broadcast is complete in M
//	f(M) = 1 + max_T f(M ∘ T)         otherwise
//
// t*(Tn) = f(I). This is the ground truth the heuristic adversaries in
// package adversary are measured against (experiment E7), and the solver
// also exposes the optimal move for each state, yielding a perfect-play
// adversary for small n.
//
// Implementation: states are packed into a single uint64 (bit y·n+x =
// "y has heard x"), so applying a tree is a handful of shift-and-mask
// operations and the value table is keyed by integers. The search engine
// layers four accelerations on the plain recursion, each preserving
// exactness:
//
//   - Canonicalization deduplicates states up to process relabeling with
//     an invariant-refinement prefilter instead of the former n!-loop
//     (see canonical.go), fronted by a bounded raw-state cache.
//   - Successor masks are deduplicated (many of the ≤ n^(n−1) trees send
//     a given state to the same place) and dominance-pruned: if two
//     successors satisfy A ⊂ B, then f(B) ≤ f(A) — knowledge only helps
//     the protocol — so the maximizing adversary never needs B. Only the
//     ⊆-minimal antichain of successors is searched.
//   - The search runs on a work-stealing worker pool sharing a striped
//     canonical value table (see parallel.go); values are exact and
//     therefore bit-identical at every worker count.
//   - Solved tables persist to disk and reload in milliseconds (see
//     table.go), so t*(T6) is computed once per machine, not once per
//     process.
//
// Every tree strictly grows a non-final state: if some tree changed
// nothing, each child would already know everything its parent knows, so
// the root's rumor — which the root knows — would have reached everyone,
// contradicting non-finality. The game graph is therefore a DAG graded
// by popcount, which bounds recursion depth and makes speculative
// parallel descent safe.
package gamesolver

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dyntreecast/internal/boolmat"
	"dyntreecast/internal/core"
	"dyntreecast/internal/tree"
)

// MaxN is the largest n the solver accepts by default, and the ceiling
// for implicit solving (experiment tables, /results/curves cold misses).
// The tree set grows as n^(n−1) and the state space super-exponentially;
// n = 6 is minutes of multicore work with Parallel and pruning on (the
// seed solver needed hours), so it still wants an explicit WithMaxN —
// or a persisted solve table, which serves any solved n instantly. The
// packed representation caps every override at n = 8 (n² ≤ 64 bits).
const MaxN = 5

// HardMaxN is the representation limit: n² bits must fit a uint64.
// Solve tables and WithMaxN can take n this far; nothing can take it
// further.
const HardMaxN = 8

// hardMaxN is the internal alias sizing the fixed scratch arrays.
const hardMaxN = HardMaxN

// DefaultRawCacheCap bounds the raw-state front cache (see
// WithRawCacheCap). The seed solver's raw memo grew without limit — a
// latent memory leak under long query sequences at n ≥ 6.
const DefaultRawCacheCap = 1 << 17

// spawnDepth is how deep into the search workers keep publishing
// sibling subtrees as stealable tasks; below it the tree is bushy enough
// that stealing costs more than it balances.
const spawnDepth = 8

// treePlan is the shift/mask program of one tree: for every non-root
// vertex y, OR row parent(y) into row y.
type treePlan []struct{ dst, src uint }

// Stats is a point-in-time snapshot of solver search counters; read it
// via Solver.Stats (or receive it in a WithProgress callback).
type Stats struct {
	// States is the number of distinct canonical states solved.
	States uint64
	// MemoHits counts lookups answered by the canonical value table.
	MemoHits uint64
	// RawHits counts lookups answered by the raw-state front cache
	// without canonicalizing.
	RawHits uint64
	// Applies counts tree applications (successor generations).
	Applies uint64
	// Deduped counts successor masks dropped as duplicates.
	Deduped uint64
	// Dominated counts successor masks dropped by dominance pruning.
	Dominated uint64
	// TableLoaded is the number of states preloaded from solve tables.
	TableLoaded uint64
}

type solverStats struct {
	states, memoHits, rawHits, applies, deduped, dominated, tableLoaded atomic.Uint64
}

// Solver computes exact game values for one n. It caches states, so
// reusing one Solver across queries amortizes the search. All exported
// methods are safe for concurrent use.
type Solver struct {
	n        int
	colMask  uint64
	selfMask uint64
	byteLen  int // bytes needed for n² bits (radix sort passes)
	trees    []*tree.Tree
	plans    []treePlan
	perms    [][]uint8  // lexicographic vertex permutations (index = permRank)
	scatter  [][]uint16 // per permutation: raw row -> permuted row
	memo     *memoTable

	canonize       bool
	prune          bool
	workers        int
	rawCap         int
	nLimitOverride int
	progressEvery  uint64
	progressFn     func(Stats)

	queryMu    sync.Mutex // serializes external queries; workers never take it
	qctx       *workerCtx // resident query context (raw cache persists across queries)
	progressMu sync.Mutex
	flushMu    sync.Mutex
	flushed    Stats
	stats      solverStats
}

// Option configures the solver.
type Option func(*Solver)

// WithoutCanonicalization disables permutation canonicalization — only
// useful for the ablation bench that measures its effect.
func WithoutCanonicalization() Option {
	return func(s *Solver) { s.canonize = false }
}

// WithoutPruning disables successor dominance pruning (deduplication
// stays on) — only useful for the ablation bench.
func WithoutPruning() Option {
	return func(s *Solver) { s.prune = false }
}

// WithMaxN raises the safety limit (default MaxN). Values above 6 can
// take a very long time; the representation caps at HardMaxN.
func WithMaxN(m int) Option {
	return func(s *Solver) { s.nLimitOverride = m }
}

// Parallel runs searches on workers goroutines (0 or negative means
// GOMAXPROCS). Values are exact, so every worker count produces
// bit-identical answers; only wall-clock changes.
func Parallel(workers int) Option {
	return func(s *Solver) {
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		s.workers = workers
	}
}

// WithRawCacheCap bounds the raw-state front cache to at most entries
// per search context (default DefaultRawCacheCap). When full, an
// arbitrary quarter is evicted; the cache is a pure accelerator, so
// eviction never changes an answer.
func WithRawCacheCap(entries int) Option {
	return func(s *Solver) {
		if entries < 16 {
			entries = 16
		}
		s.rawCap = entries
	}
}

// WithProgress arranges for fn to receive a Stats snapshot roughly every
// `every` newly solved canonical states (0 means 8192). fn must be fast
// and is never called concurrently with itself.
func WithProgress(every int, fn func(Stats)) Option {
	return func(s *Solver) {
		if every <= 0 {
			every = 8192
		}
		s.progressEvery = uint64(every)
		s.progressFn = fn
	}
}

// New returns a solver for n processes. It errors when n exceeds the
// safety limit (see MaxN and WithMaxN).
func New(n int, opts ...Option) (*Solver, error) {
	s := &Solver{
		memo:     newMemoTable(),
		canonize: true,
		prune:    true,
		workers:  1,
		rawCap:   DefaultRawCacheCap,
	}
	for _, o := range opts {
		o(s)
	}
	limit := MaxN
	if s.nLimitOverride > 0 {
		limit = s.nLimitOverride
		if limit > HardMaxN {
			limit = HardMaxN
		}
	}
	if n < 1 || n > limit {
		return nil, fmt.Errorf("gamesolver: n = %d out of supported range [1,%d]", n, limit)
	}
	s.init(n)
	if s.canonize {
		s.perms = lexPerms(n)
		s.scatter = make([][]uint16, len(s.perms))
		for i, p := range s.perms {
			s.scatter[i] = buildScatter(p, n)
		}
	}
	s.qctx = s.newWorkerCtx(0, nil)
	return s, nil
}

// init fills the representation-level fields (shared with DeepestLine,
// which builds a bare Solver without memo or permutation machinery).
func (s *Solver) init(n int) {
	s.n = n
	s.colMask = (uint64(1) << uint(n)) - 1
	s.byteLen = (n*n + 7) / 8
	for i := 0; i < n; i++ {
		s.selfMask |= 1 << uint(i*n+i)
	}
	tree.Enumerate(n, func(t *tree.Tree) bool {
		s.trees = append(s.trees, t)
		plan := make(treePlan, 0, n-1)
		for y, p := range t.Parents() {
			if y != p {
				plan = append(plan, struct{ dst, src uint }{uint(y * n), uint(p * n)})
			}
		}
		s.plans = append(s.plans, plan)
		return true
	})
}

// identityMask returns the packed identity state.
func (s *Solver) identityMask() uint64 { return s.selfMask }

// apply runs one tree round on a packed state.
func (s *Solver) apply(m uint64, plan treePlan) uint64 {
	next := m
	for _, mv := range plan {
		next |= ((m >> mv.src) & s.colMask) << mv.dst
	}
	return next
}

// done reports whether broadcast is complete: some process x has been
// heard by everyone, i.e. the AND of all heard-rows is non-empty.
func (s *Solver) done(m uint64) bool {
	inter := s.colMask
	for y := 0; y < s.n; y++ {
		inter &= m >> uint(y*s.n)
		if inter&s.colMask == 0 {
			return false
		}
	}
	return inter&s.colMask != 0
}

// canonical returns the orbit representative of m (test/tooling
// convenience over canonicalize; allocates its own scratch).
func (s *Solver) canonical(m uint64) uint64 {
	var ps permScratch
	return s.canonicalize(m, &ps)
}

// Value returns t*(Tn): the exact broadcast time under perfect adversary
// play starting from the identity state.
func (s *Solver) Value() int {
	start := time.Now()
	s.queryMu.Lock()
	v := s.solveLocked(s.identityMask())
	s.queryMu.Unlock()
	mSolves.Inc()
	mSolveSeconds.Observe(time.Since(start).Seconds())
	s.flushMetrics()
	return v
}

// ValueOf returns the remaining game value of an arbitrary reflexive
// state given as a matrix.
func (s *Solver) ValueOf(m *boolmat.Matrix) int {
	if m.N() != s.n {
		panic(fmt.Sprintf("gamesolver: state dimension %d, solver n %d", m.N(), s.n))
	}
	s.queryMu.Lock()
	v := s.solveLocked(s.pack(m))
	s.queryMu.Unlock()
	s.flushMetrics()
	return v
}

// CachedValue returns t*(Tn) if the root state is already solved (from
// an earlier search or a loaded solve table) without doing any search
// work, and reports whether it was available.
func (s *Solver) CachedValue() (int, bool) {
	m := s.identityMask()
	if s.done(m) {
		return 0, true
	}
	s.queryMu.Lock()
	defer s.queryMu.Unlock()
	key := s.canonicalize(m, &s.qctx.ps)
	if v, ok := s.memo.get(key); ok {
		return int(v), true
	}
	return 0, false
}

// solveLocked resolves one state, dispatching to the parallel engine
// when the solver was built with Parallel and the answer is not already
// at hand. Callers hold queryMu.
func (s *Solver) solveLocked(m uint64) int {
	if s.done(m) {
		return 0
	}
	if v, ok := s.qctx.raw.get(m); ok {
		s.stats.rawHits.Add(1)
		return int(v)
	}
	key := s.canonicalize(m, &s.qctx.ps)
	if v, ok := s.memo.get(key); ok {
		s.stats.memoHits.Add(1)
		s.qctx.raw.put(m, v)
		return int(v)
	}
	if s.workers > 1 {
		return s.solveParallel(m)
	}
	return s.qctx.value(m, 0)
}

// StatesExplored returns the number of distinct canonical states
// memoized (including any preloaded from a solve table).
func (s *Solver) StatesExplored() int { return s.memo.len() }

// Stats returns a snapshot of the search counters.
func (s *Solver) Stats() Stats {
	return Stats{
		States:      s.stats.states.Load(),
		MemoHits:    s.stats.memoHits.Load(),
		RawHits:     s.stats.rawHits.Load(),
		Applies:     s.stats.applies.Load(),
		Deduped:     s.stats.deduped.Load(),
		Dominated:   s.stats.dominated.Load(),
		TableLoaded: s.stats.tableLoaded.Load(),
	}
}

// BestTree returns an optimal adversary move from state m (a tree
// maximizing the remaining game value), or nil if the game is over.
func (s *Solver) BestTree(m *boolmat.Matrix) *tree.Tree {
	if m.N() != s.n {
		panic(fmt.Sprintf("gamesolver: state dimension %d, solver n %d", m.N(), s.n))
	}
	packed := s.pack(m)
	if s.done(packed) {
		return nil
	}
	// A cached move for the canonical representative would be a move in a
	// *relabeled* game, so recompute per raw state; this is cheap relative
	// to the value search, which is fully memoized by now. All successors
	// are searched here — dominance pruning inside the value recursion
	// never changes any f, so the argmax over the full tree set is exact.
	s.queryMu.Lock()
	bestV, bestI := -1, -1
	for i, plan := range s.plans {
		next := s.apply(packed, plan)
		if next == packed {
			// A no-op tree cannot exist on a live state (see the package
			// comment); skip rather than recurse forever if it somehow did.
			continue
		}
		if v := s.solveLocked(next); v > bestV {
			bestV, bestI = v, i
		}
	}
	s.queryMu.Unlock()
	s.flushMetrics()
	return s.trees[bestI]
}

// pack converts a matrix state to the packed representation.
func (s *Solver) pack(m *boolmat.Matrix) uint64 {
	var out uint64
	for y := 0; y < s.n; y++ {
		for x := 0; x < s.n; x++ {
			if m.Test(x, y) {
				out |= 1 << uint(y*s.n+x)
			}
		}
	}
	return out
}

// Unpack converts a packed state back to a matrix (exported for tests and
// trace tooling).
func (s *Solver) Unpack(mask uint64) *boolmat.Matrix {
	m := boolmat.Zero(s.n)
	for y := 0; y < s.n; y++ {
		for x := 0; x < s.n; x++ {
			if mask&(1<<uint(y*s.n+x)) != 0 {
				m.Set(x, y)
			}
		}
	}
	return m
}

// ForEachValue visits every solved (canonical state, value) pair. The
// iteration order is unspecified; concurrent inserts may or may not be
// seen.
func (s *Solver) ForEachValue(fn func(state uint64, value int)) {
	s.memo.forEach(func(k uint64, v uint8) { fn(k, int(v)) })
}

// rawCache is the bounded raw-state front cache: it answers repeat
// lookups of hot raw states without re-canonicalizing. Eviction drops an
// arbitrary quarter — the cache holds only derived values, so any
// eviction policy is correct and this one is free.
type rawCache struct {
	m   map[uint64]uint8
	cap int
}

func (c *rawCache) get(k uint64) (uint8, bool) {
	v, ok := c.m[k]
	return v, ok
}

func (c *rawCache) put(k uint64, v uint8) {
	if len(c.m) >= c.cap {
		drop := c.cap / 4
		if drop < 1 {
			drop = 1
		}
		for old := range c.m {
			delete(c.m, old)
			drop--
			if drop == 0 {
				break
			}
		}
	}
	c.m[k] = v
}

// workerCtx is one search worker's private state: its raw front cache,
// canonicalization scratch, and per-depth successor buffers. Everything
// here is single-goroutine; all sharing goes through Solver.memo and the
// work pool.
type workerCtx struct {
	s    *Solver
	id   int
	pool *workPool
	raw  rawCache
	ps   permScratch
	all  []uint64   // raw successor masks, pre-dedup (reused across calls)
	tmp  []uint64   // radix-sort / popcount-sort scratch
	pops []uint64   // popcount-ordered distinct successors
	succ [][]uint64 // per-depth pruned successor lists (live during recursion)
	cnt  [256]uint32
	bkt  [65]uint32 // popcount buckets (n² ≤ 64)
}

func (s *Solver) newWorkerCtx(id int, pool *workPool) *workerCtx {
	return &workerCtx{
		s:    s,
		id:   id,
		pool: pool,
		raw:  rawCache{m: make(map[uint64]uint8), cap: s.rawCap},
	}
}

// value computes f(m) by pruned depth-first search. depth only indexes
// scratch buffers; the recursion is bounded by the popcount grading of
// the game DAG (≤ n² − n levels).
func (w *workerCtx) value(m uint64, depth int) int {
	s := w.s
	if s.done(m) {
		return 0
	}
	if v, ok := w.raw.get(m); ok {
		s.stats.rawHits.Add(1)
		return int(v)
	}
	key := s.canonicalize(m, &w.ps)
	if v, ok := s.memo.get(key); ok {
		s.stats.memoHits.Add(1)
		w.raw.put(m, v)
		return int(v)
	}
	succs := w.successors(m, depth)
	if len(succs) == 0 {
		// Impossible on a live state (every tree strictly grows it); a hit
		// here means the representation is corrupt, not a value of 0.
		panic(fmt.Sprintf("gamesolver: live state %#x has no progressing successor", m))
	}
	if w.pool != nil && depth < spawnDepth && len(succs) > 1 {
		w.pool.offer(w.id, succs[1:], depth+1)
	}
	best := 0
	for _, nm := range succs {
		if v := 1 + w.value(nm, depth+1); v > best {
			best = v
		}
	}
	if s.memo.put(key, uint8(best)) {
		n := s.stats.states.Add(1)
		if s.progressFn != nil && n%s.progressEvery == 0 {
			s.reportProgress()
		}
	}
	w.raw.put(m, uint8(best))
	return best
}

func (s *Solver) reportProgress() {
	if !s.progressMu.TryLock() {
		return // another worker is mid-callback; this snapshot is redundant
	}
	s.progressFn(s.Stats())
	s.progressMu.Unlock()
}

// successors generates m's successor set: one mask per tree, then
// deduplicated (radix sort + adjacent-unique) and reduced to the
// ⊆-minimal antichain. The returned slice lives in w.succ[depth] and
// stays valid while the caller recurses through deeper levels.
func (w *workerCtx) successors(m uint64, depth int) []uint64 {
	s := w.s
	all := w.all[:0]
	for i := range s.plans {
		all = append(all, s.apply(m, s.plans[i]))
	}
	w.all = all
	s.stats.applies.Add(uint64(len(all)))

	sorted := radixSort(all, &w.tmp, &w.cnt, s.byteLen)

	for len(w.succ) <= depth {
		w.succ = append(w.succ, nil)
	}
	out := w.succ[depth][:0]
	var prev uint64 // masks contain the identity diagonal, so 0 is a safe sentinel
	dropped := 0
	for _, v := range sorted {
		if v == prev || v == m {
			dropped++
			prev = v
			continue
		}
		out = append(out, v)
		prev = v
	}
	s.stats.deduped.Add(uint64(dropped))

	if s.prune && len(out) > 1 {
		out = w.dominate(out)
	}
	w.succ[depth] = out
	return out
}

// dominate reduces the distinct successor set to its ⊆-minimal
// antichain: if k ⊆ c for distinct successors, monotonicity gives
// f(c) ≤ f(k), so the maximizing adversary never needs c. Candidates are
// visited in ascending popcount order (stable counting sort), so every
// potential dominator of c is already in the kept prefix.
func (w *workerCtx) dominate(out []uint64) []uint64 {
	bkt := &w.bkt
	for i := range bkt {
		bkt[i] = 0
	}
	for _, v := range out {
		bkt[bits.OnesCount64(v)]++
	}
	pos := 0
	for i := range bkt {
		c := int(bkt[i])
		bkt[i] = uint32(pos)
		pos += c
	}
	if cap(w.pops) < len(out) {
		w.pops = make([]uint64, len(out))
	}
	pops := w.pops[:len(out)]
	for _, v := range out {
		p := bits.OnesCount64(v)
		pops[bkt[p]] = v
		bkt[p]++
	}

	kept := out[:0]
	for _, c := range pops {
		dominated := false
		for _, k := range kept {
			if k&c == k {
				dominated = true
				break
			}
		}
		if !dominated {
			kept = append(kept, c)
		}
	}
	w.s.stats.dominated.Add(uint64(len(pops) - len(kept)))
	return kept
}

// radixSort sorts a ascending (LSD, byte digits, only the byteLen low
// bytes a packed state can occupy) and returns the sorted slice — which
// aliases either a or *tmp. Single-bucket passes are skipped, so nearly
// constant high bytes (the usual case) cost one counting scan each.
func radixSort(a []uint64, tmp *[]uint64, cnt *[256]uint32, byteLen int) []uint64 {
	if cap(*tmp) < len(a) {
		*tmp = make([]uint64, len(a))
	}
	src, dst := a, (*tmp)[:len(a)]
	for pass := 0; pass < byteLen; pass++ {
		shift := uint(8 * pass)
		for i := range cnt {
			cnt[i] = 0
		}
		for _, v := range src {
			cnt[(v>>shift)&0xff]++
		}
		if cnt[(src[0]>>shift)&0xff] == uint32(len(src)) {
			continue // all keys share this digit
		}
		pos := uint32(0)
		for i := range cnt {
			c := cnt[i]
			cnt[i] = pos
			pos += c
		}
		for _, v := range src {
			d := (v >> shift) & 0xff
			dst[cnt[d]] = v
			cnt[d]++
		}
		src, dst = dst, src
	}
	return src
}

// flushMetrics folds the solver's counter deltas into the package
// metrics registry; called after each exported query so scrapes track
// live solves without the hot path touching a metric.
func (s *Solver) flushMetrics() {
	s.flushMu.Lock()
	cur := s.Stats()
	d := Stats{
		States:      cur.States - s.flushed.States,
		MemoHits:    cur.MemoHits - s.flushed.MemoHits,
		RawHits:     cur.RawHits - s.flushed.RawHits,
		Applies:     cur.Applies - s.flushed.Applies,
		Deduped:     cur.Deduped - s.flushed.Deduped,
		Dominated:   cur.Dominated - s.flushed.Dominated,
		TableLoaded: cur.TableLoaded - s.flushed.TableLoaded,
	}
	s.flushed = cur
	s.flushMu.Unlock()
	mStates.Add(d.States)
	mMemoHits.Add(d.MemoHits)
	mRawHits.Add(d.RawHits)
	mApplies.Add(d.Applies)
	mDeduped.Add(d.Deduped)
	mDominated.Add(d.Dominated)
	mTableStates.Add(d.TableLoaded)
}

// Optimal is a perfect-play adversary for small n, backed by a Solver.
// It plugs into core.Run like any other adversary; each move is the
// argmax of the exact game value.
type Optimal struct{ S *Solver }

// Next implements core.Adversary.
func (o Optimal) Next(v core.View) *tree.Tree {
	n := v.N()
	if n != o.S.n {
		return nil
	}
	m := boolmat.Zero(n)
	for y := 0; y < n; y++ {
		v.Heard(y).ForEach(func(x int) bool {
			m.Set(x, y)
			return true
		})
	}
	t := o.S.BestTree(m)
	if t == nil {
		// Game over (broadcast done); any tree is acceptable if asked.
		return tree.IdentityPath(n)
	}
	return t
}

var _ core.Adversary = Optimal{}
