package gamesolver

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func solvedTablePath(t *testing.T, n int) string {
	t.Helper()
	s, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	s.Value()
	path := filepath.Join(t.TempDir(), "table.solvetable")
	if err := s.SaveTable(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestTableRoundtrip: save a solved table, load it into a fresh solver,
// and verify the fresh solver answers from the table alone — zero new
// states explored for the root query.
func TestTableRoundtrip(t *testing.T) {
	s, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	want := s.Value()
	path := filepath.Join(t.TempDir(), "n4.solvetable")
	if err := s.SaveTable(path); err != nil {
		t.Fatal(err)
	}

	info, err := ReadTableInfo(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.N != 4 || info.Canon != canonVersion || info.States != s.StatesExplored() {
		t.Fatalf("header %+v, want n=4 canon=%s states=%d", info, canonVersion, s.StatesExplored())
	}

	fresh, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := fresh.LoadTable(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != s.StatesExplored() {
		t.Fatalf("loaded %d states, table has %d", loaded, s.StatesExplored())
	}
	if v, ok := fresh.CachedValue(); !ok || v != want {
		t.Fatalf("CachedValue = %d,%v after load, want %d,true", v, ok, want)
	}
	before := fresh.StatesExplored()
	if got := fresh.Value(); got != want {
		t.Fatalf("Value after load = %d, want %d", got, want)
	}
	if after := fresh.StatesExplored(); after != before {
		t.Fatalf("solve after a full table load explored %d new states", after-before)
	}
}

// TestTableDeterministicBytes: two independent solves of the same game
// must serialize to identical bytes, and a load/save cycle must be a
// byte-level identity.
func TestTableDeterministicBytes(t *testing.T) {
	read := func(path string) []byte {
		t.Helper()
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := read(solvedTablePath(t, 4))
	b := read(solvedTablePath(t, 4))
	if !bytes.Equal(a, b) {
		t.Fatal("two solves of the same game serialized differently")
	}

	s, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	first := solvedTablePath(t, 4)
	if _, err := s.LoadTable(first); err != nil {
		t.Fatal(err)
	}
	resaved := filepath.Join(t.TempDir(), "resaved.solvetable")
	if err := s.SaveTable(resaved); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(read(first), read(resaved)) {
		t.Fatal("load+save is not a byte identity")
	}
}

// TestTableMismatchRejected: wrong n and wrong canonicalization version
// are both hard errors, never silent wrong answers.
func TestTableMismatchRejected(t *testing.T) {
	path := solvedTablePath(t, 4)

	s5, err := New(5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s5.LoadTable(path); err == nil || !strings.Contains(err.Error(), "n=4") {
		t.Fatalf("n mismatch not rejected: %v", err)
	}

	raw, err := New(4, WithoutCanonicalization())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.LoadTable(path); err == nil || !strings.Contains(err.Error(), "canonicalization") {
		t.Fatalf("canon mismatch not rejected: %v", err)
	}
	// And the symmetric direction: a raw table into a canonical solver.
	raw.Value()
	rawPath := filepath.Join(t.TempDir(), "raw.solvetable")
	if err := raw.SaveTable(rawPath); err != nil {
		t.Fatal(err)
	}
	canon, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := canon.LoadTable(rawPath); err == nil {
		t.Fatal("raw/1 table loaded into a cells/1 solver")
	}
}

// TestTableCorruptionRejected covers bad magic, truncation mid-record,
// an understated header, and corrupt state masks.
func TestTableCorruptionRejected(t *testing.T) {
	path := solvedTablePath(t, 4)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	write := func(name string, b []byte) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	load := func(p string) error {
		s, err := New(4)
		if err != nil {
			t.Fatal(err)
		}
		_, err = s.LoadTable(p)
		return err
	}

	if err := load(write("magic", append([]byte("not a table\n"), good...))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if err := load(write("trunc", good[:len(good)-5])); err == nil {
		t.Fatal("truncated table accepted")
	}
	// Zero out a record's mask: violates the reflexive-diagonal invariant.
	headerEnd := bytes.IndexByte(good[len(tableMagic)+1:], '\n') + len(tableMagic) + 2
	bad := append([]byte(nil), good...)
	for i := headerEnd; i < headerEnd+8; i++ {
		bad[i] = 0
	}
	if err := load(write("zeromask", bad)); err == nil {
		t.Fatal("zero state mask accepted")
	}
	if _, err := ReadTableInfo(write("empty", nil)); err == nil {
		t.Fatal("empty file accepted as a table")
	}
}

// TestTablePartialResume: a table holding only part of the state space
// (an interrupted solve's autosave) must load cleanly and leave the next
// solve less work to do.
func TestTablePartialResume(t *testing.T) {
	full, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	want := full.Value()
	total := full.StatesExplored()

	// Fabricate the partial table by rewriting the full one with half
	// its records (and a matching header count).
	path := filepath.Join(t.TempDir(), "n4.solvetable")
	if err := full.SaveTable(path); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Keep the SECOND half of the records: masks sort ascending, the
	// near-identity root states sit at the front, so dropping the front
	// forces the resumed solve to do real work before memo hits kick in.
	keep := total / 2
	headerEnd := bytes.IndexByte(good[len(tableMagic)+1:], '\n') + len(tableMagic) + 2
	var buf bytes.Buffer
	buf.WriteString(tableMagic + "\n")
	header := string(good[len(tableMagic)+1 : headerEnd-1])
	idx := strings.LastIndex(header, "states=")
	buf.WriteString(header[:idx])
	buf.WriteString("states=")
	buf.WriteString(itoa(keep))
	buf.WriteByte('\n')
	buf.Write(good[headerEnd+9*(total-keep):])
	partial := filepath.Join(t.TempDir(), "partial.solvetable")
	if err := os.WriteFile(partial, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := s.LoadTable(partial)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != keep {
		t.Fatalf("loaded %d of %d partial states", loaded, keep)
	}
	if got := s.Value(); got != want {
		t.Fatalf("resumed solve got %d, want %d", got, want)
	}
	if st := s.Stats(); st.TableLoaded != uint64(keep) {
		t.Fatalf("Stats.TableLoaded = %d, want %d", st.TableLoaded, keep)
	}
	// The resume did real work (root was not preloaded), but preloaded
	// entries cut off their subtrees, so the final state count lands
	// strictly between the partial table and the cold solve's total.
	if got := s.StatesExplored(); got <= keep || got > total {
		t.Fatalf("resumed solve ended with %d states (partial %d, full %d)", got, keep, total)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// TestDeepestLineCertifiesN6 pins the anytime search's headline claim:
// with a generous budget it reaches depth ⌈(3·6−1)/2⌉−2 = 7 at n = 6,
// matching the exact solver's t*(T6).
func TestDeepestLineCertifiesN6(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	line, depth, err := DeepestLine(6, 6000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if depth < 7 {
		t.Fatalf("DeepestLine(6) certified only %d rounds, want >= 7", depth)
	}
	if len(line) < depth {
		t.Fatalf("witness line has %d trees for depth %d", len(line), depth)
	}
}
