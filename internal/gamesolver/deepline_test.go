package gamesolver

import (
	"testing"

	"dyntreecast/internal/adversary"
	"dyntreecast/internal/bounds"
	"dyntreecast/internal/core"
)

func TestDeepestLineMatchesExactSmallN(t *testing.T) {
	// With a modest budget the anytime search reaches the exact game
	// value for every solvable n.
	want := map[int]int{2: 1, 3: 2, 4: 4, 5: 5}
	for n := 2; n <= 5; n++ {
		line, depth, err := DeepestLine(n, 4000, 4)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if depth != want[n] {
			t.Errorf("n=%d: depth = %d, want %d", n, depth, want[n])
		}
		// The line must replay to at least the claimed depth (repeating
		// the last tree can only extend a surviving prefix).
		replayed, err := core.BroadcastTime(n, adversary.Replay{Trees: line})
		if err != nil {
			t.Fatalf("n=%d replay: %v", n, err)
		}
		if replayed < depth {
			t.Errorf("n=%d: replayed %d < claimed %d", n, replayed, depth)
		}
	}
}

func TestDeepestLineCertifiesLowerBoundN6(t *testing.T) {
	// Beyond the exact solver's reach: the search certifies
	// t*(T6) >= 7 = ceil((3*6-1)/2) - 2, the ZSS formula value.
	if testing.Short() {
		t.Skip("n=6 search takes a few hundred ms")
	}
	line, depth, err := DeepestLine(6, 6000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := bounds.Lower(6); depth < want {
		t.Errorf("depth = %d, want >= %d", depth, want)
	}
	replayed, err := core.BroadcastTime(6, adversary.Replay{Trees: line})
	if err != nil {
		t.Fatal(err)
	}
	if replayed < depth {
		t.Errorf("replayed %d < claimed %d", replayed, depth)
	}
	if err := bounds.CheckSandwich(6, replayed); err != nil {
		t.Error(err)
	}
}

func TestDeepestLineValidation(t *testing.T) {
	if _, _, err := DeepestLine(0, 100, 4); err == nil {
		t.Error("n=0 accepted")
	}
	if _, _, err := DeepestLine(9, 100, 4); err == nil {
		t.Error("n=9 accepted (beyond uint64 packing)")
	}
	// Non-positive budget/width are configuration errors, never silent
	// defaults: a campaign cell labeled budget=0 must not run a
	// default-size search (the registry family declares real defaults).
	if _, _, err := DeepestLine(3, 0, 4); err == nil {
		t.Error("budget=0 accepted")
	}
	if _, _, err := DeepestLine(3, -1, 4); err == nil {
		t.Error("budget=-1 accepted")
	}
	if _, _, err := DeepestLine(3, 100, 0); err == nil {
		t.Error("width=0 accepted")
	}
	if _, _, err := DeepestLine(3, 100, -2); err == nil {
		t.Error("width=-2 accepted")
	}
}
