package gamesolver

import (
	"testing"
	"testing/quick"

	"dyntreecast/internal/boolmat"
	"dyntreecast/internal/rng"
	"dyntreecast/internal/tree"
)

// randomState draws a reachable-looking reflexive state by applying a few
// random rounds to the identity.
func randomState(src *rng.Source, n, rounds int) *boolmat.Matrix {
	m := boolmat.Identity(n)
	for i := 0; i < rounds; i++ {
		m.ApplyTree(tree.Random(n, src))
	}
	return m
}

func TestPropertyBellmanLaw(t *testing.T) {
	// Game law (the Bellman equation): f(M) = 1 + max_T f(M∘T), i.e.
	// every successor has value ≤ f(M)−1 and some tree achieves exactly
	// f(M)−1.
	s, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		src := rng.New(seed)
		m := randomState(src, 4, int(seed%3))
		v := s.ValueOf(m)
		if v == 0 {
			return true
		}
		achieved := false
		sound := true
		tree.Enumerate(4, func(tr *tree.Tree) bool {
			next := m.Clone()
			next.ApplyTree(tr)
			nv := s.ValueOf(next)
			if nv > v-1 {
				// A successor above v−1 would contradict the recursion.
				sound = false
				return false
			}
			if nv == v-1 {
				achieved = true // the optimal move exists
			}
			return true
		})
		return sound && achieved
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPropertyValueMonotoneInKnowledge(t *testing.T) {
	// More knowledge can only help the protocol: M ⊆ M' reachable by
	// extra rounds implies f(M') ≤ f(M)... in general monotonicity under
	// superset requires care; here we check the sound direction along
	// actual game trajectories: values are non-increasing per round.
	s, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		src := rng.New(seed)
		m := boolmat.Identity(4)
		prev := s.ValueOf(m)
		for i := 0; i < 6; i++ {
			m.ApplyTree(tree.Random(4, src))
			v := s.ValueOf(m)
			if v > prev {
				return false
			}
			prev = v
			if v == 0 {
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyValueInvariantUnderRelabeling(t *testing.T) {
	// f(P(M)) = f(M): the justification for canonical memoization,
	// checked against the solver's own answers.
	s, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64) bool {
		src := rng.New(seed)
		m := randomState(src, 4, int(seed%4))
		p := src.Perm(4)
		return s.ValueOf(m) == s.ValueOf(m.Permute(p))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestValueBoundedByTrivialBudget(t *testing.T) {
	// f(I) ≤ n² (§2) and f is never negative, for all solvable n.
	for n := 1; n <= 4; n++ {
		s, err := New(n)
		if err != nil {
			t.Fatal(err)
		}
		if v := s.Value(); v < 0 || v > n*n {
			t.Errorf("n=%d: value %d outside [0,%d]", n, v, n*n)
		}
	}
}
