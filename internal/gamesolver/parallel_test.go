package gamesolver

import (
	"fmt"
	"testing"

	"dyntreecast/internal/boolmat"
	"dyntreecast/internal/rng"
	"dyntreecast/internal/tree"
)

// TestParallelMatchesSerialEverywhere is the parallel engine's identity
// contract: for every n ≤ 5 and several worker counts, the parallel
// solver must assign exactly the same value to exactly the same set of
// canonical states as the serial solver — not just agree on the root.
// Work stealing, speculative duplication, and memo publish races may
// reorder the search arbitrarily, but f is a function and the solved
// set is the pruned successor closure of the root, so both sides must
// land bit-for-bit identical.
func TestParallelMatchesSerialEverywhere(t *testing.T) {
	maxN := 5
	if testing.Short() {
		maxN = 4
	}
	for n := 2; n <= maxN; n++ {
		serial, err := New(n)
		if err != nil {
			t.Fatal(err)
		}
		want := serial.Value()
		wantStates := map[uint64]int{}
		serial.ForEachValue(func(state uint64, value int) { wantStates[state] = value })

		for _, workers := range []int{2, 3, 8} {
			par, err := New(n, Parallel(workers))
			if err != nil {
				t.Fatal(err)
			}
			if got := par.Value(); got != want {
				t.Fatalf("n=%d workers=%d: t*=%d, serial says %d", n, workers, got, want)
			}
			got := map[uint64]int{}
			par.ForEachValue(func(state uint64, value int) { got[state] = value })
			if len(got) != len(wantStates) {
				t.Errorf("n=%d workers=%d: %d canonical states, serial solved %d",
					n, workers, len(got), len(wantStates))
			}
			for state, v := range wantStates {
				if pv, ok := got[state]; !ok || pv != v {
					t.Fatalf("n=%d workers=%d: state %#x = %d (present=%v), serial says %d",
						n, workers, state, pv, ok, v)
				}
			}
		}
	}
}

// TestParallelValueOfMidGameStates drives serial and parallel solvers
// across the same random trajectories; every intermediate raw state must
// agree.
func TestParallelValueOfMidGameStates(t *testing.T) {
	serial, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	par, err := New(4, Parallel(4))
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(7)
	for trial := 0; trial < 25; trial++ {
		m := boolmat.Identity(4)
		for round := 0; round < 5; round++ {
			m.ApplyTree(tree.Random(4, src))
			if sv, pv := serial.ValueOf(m), par.ValueOf(m); sv != pv {
				t.Fatalf("trial %d round %d: serial %d, parallel %d", trial, round, sv, pv)
			}
		}
	}
}

// TestParallelOptionResolution pins the worker-count contract:
// Parallel(0) resolves to at least one worker, Parallel(1) is the
// serial engine.
func TestParallelOptionResolution(t *testing.T) {
	s, err := New(3, Parallel(0))
	if err != nil {
		t.Fatal(err)
	}
	if s.workers < 1 {
		t.Fatalf("Parallel(0) resolved to %d workers", s.workers)
	}
	s1, err := New(3, Parallel(1))
	if err != nil {
		t.Fatal(err)
	}
	if s1.workers != 1 {
		t.Fatalf("Parallel(1) resolved to %d workers", s1.workers)
	}
	if a, b := s.Value(), s1.Value(); a != b {
		t.Fatalf("Parallel(0) value %d != Parallel(1) value %d", a, b)
	}
}

// TestPruningDoesNotChangeValues is the dominance-pruning soundness
// check over full state sets: with pruning off, the solver visits more
// states but every state both engines solved must carry the same value.
func TestPruningDoesNotChangeValues(t *testing.T) {
	for n := 2; n <= 4; n++ {
		pruned, err := New(n)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := New(n, WithoutPruning())
		if err != nil {
			t.Fatal(err)
		}
		if pv, uv := pruned.Value(), plain.Value(); pv != uv {
			t.Fatalf("n=%d: pruned %d != unpruned %d", n, pv, uv)
		}
		if pruned.StatesExplored() > plain.StatesExplored() {
			t.Errorf("n=%d: pruning increased states (%d > %d)",
				n, pruned.StatesExplored(), plain.StatesExplored())
		}
		plainStates := map[uint64]int{}
		plain.ForEachValue(func(state uint64, value int) { plainStates[state] = value })
		pruned.ForEachValue(func(state uint64, value int) {
			if v, ok := plainStates[state]; ok && v != value {
				t.Errorf("n=%d: state %#x pruned value %d, unpruned %d", n, state, value, v)
			}
		})
	}
}

// TestRawCacheStaysBounded is the regression test for the seed solver's
// unbounded rawMemo: across a long query sequence the raw front cache
// must never exceed its cap, and answers must stay correct after
// evictions.
func TestRawCacheStaysBounded(t *testing.T) {
	const cap = 256
	s, err := New(4, WithRawCacheCap(cap))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(3)
	for trial := 0; trial < 400; trial++ {
		m := boolmat.Identity(4)
		for round := 0; round < 1+trial%4; round++ {
			m.ApplyTree(tree.Random(4, src))
		}
		if got, want := s.ValueOf(m), ref.ValueOf(m); got != want {
			t.Fatalf("trial %d: bounded-cache value %d, reference %d", trial, got, want)
		}
		if size := len(s.qctx.raw.m); size > cap {
			t.Fatalf("trial %d: raw cache grew to %d entries (cap %d)", trial, size, cap)
		}
	}
	if size := len(s.qctx.raw.m); size == 0 {
		t.Fatal("raw cache never populated — the bound test tested nothing")
	}
}

// TestProgressCallback sees at least one snapshot during a real solve
// and never a torn one (states only grow).
func TestProgressCallback(t *testing.T) {
	var snaps []Stats
	s, err := New(5, WithProgress(100, func(st Stats) { snaps = append(snaps, st) }))
	if err != nil {
		t.Fatal(err)
	}
	s.Value()
	if len(snaps) == 0 {
		t.Fatal("no progress callbacks during an n=5 solve")
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].States < snaps[i-1].States {
			t.Fatalf("progress went backwards: %d then %d", snaps[i-1].States, snaps[i].States)
		}
	}
}

// TestStatsAccounting sanity-checks the exported counters after a solve.
func TestStatsAccounting(t *testing.T) {
	s, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	s.Value()
	st := s.Stats()
	if st.States == 0 || st.Applies == 0 {
		t.Fatalf("empty stats after a solve: %+v", st)
	}
	if st.Deduped+st.Dominated == 0 {
		t.Fatalf("no successor ever pruned at n=4: %+v", st)
	}
	if int(st.States) != s.StatesExplored() {
		t.Fatalf("Stats.States=%d, StatesExplored=%d", st.States, s.StatesExplored())
	}
}

// BenchmarkSolver is the solver benchmark matrix guarded by
// scripts/benchdiff.sh: the full engine and its ablations at n = 5 (the
// largest n the default config solves), plus n = 4 for the slow
// no-canonicalization ablation.
func BenchmarkSolver(b *testing.B) {
	cases := []struct {
		name string
		n    int
		want int
		opts []Option
	}{
		{"n5/full", 5, 5, nil},
		{"n5/parallel", 5, 5, []Option{Parallel(0)}},
		{"n5/noprune", 5, 5, []Option{WithoutPruning()}},
		{"n4/nocanon", 4, 4, []Option{WithoutCanonicalization()}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := New(c.n, c.opts...)
				if err != nil {
					b.Fatal(err)
				}
				if v := s.Value(); v != c.want {
					b.Fatalf("t*(T%d) = %d, want %d", c.n, v, c.want)
				}
			}
		})
	}
}

// BenchmarkCanonicalize measures the canonicalization hot path alone on
// a bag of reachable states.
func BenchmarkCanonicalize(b *testing.B) {
	for _, n := range []int{5, 6} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			s, err := New(n, WithMaxN(n))
			if err != nil {
				b.Fatal(err)
			}
			src := rng.New(1)
			states := make([]uint64, 64)
			for i := range states {
				m := boolmat.Identity(n)
				for r := 0; r <= i%4; r++ {
					m.ApplyTree(tree.Random(n, src))
				}
				states[i] = s.pack(m)
			}
			var ps permScratch
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.canonicalize(states[i%len(states)], &ps)
			}
		})
	}
}
