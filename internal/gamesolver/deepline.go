package gamesolver

import (
	"fmt"
	"math/bits"
	"sort"

	"dyntreecast/internal/tree"
)

// DeepestLine is the anytime companion of the exact solver: a budgeted
// depth-first search over the adversary game on n processes (n ≤ 8) that
// returns the longest surviving tree schedule found and its length — a
// certified lower-bound witness for t*(Tn), without the exhaustive
// guarantee of Value.
//
// The search expands states in heuristic order (smallest maximum reach
// first, then fewest edges), memoizes visited states so different paths to
// the same knowledge state are not re-explored, and stops after budget
// state expansions. Branching is capped at width moves per state; the
// candidate moves are the full tree set, so no schedule shape is excluded
// a priori. With a generous budget at n = 6 the search certifies the
// ⌈(3n−1)/2⌉−2 value that the exact solver can only reach for n ≤ 5.
func DeepestLine(n, budget, width int) ([]*tree.Tree, int, error) {
	if n < 1 || n > hardMaxN {
		return nil, 0, fmt.Errorf("gamesolver: DeepestLine needs 1 <= n <= %d, got %d", hardMaxN, n)
	}
	// Non-positive knobs are configuration errors, not requests for a
	// default: now that budget/width are reachable from campaign specs, a
	// typo must fail validation instead of silently running a
	// default-size search under the wrong cell label. (The registry's
	// deepest-line family declares the defaults explicitly.)
	if budget <= 0 {
		return nil, 0, fmt.Errorf("gamesolver: DeepestLine budget must be >= 1, got %d", budget)
	}
	if width <= 0 {
		return nil, 0, fmt.Errorf("gamesolver: DeepestLine width must be >= 1, got %d", width)
	}
	s := &Solver{}
	s.init(n)

	d := &deepSearch{s: s, width: width, budget: budget, visited: map[uint64]bool{}}
	d.dfs(s.identityMask(), 0, nil)

	// Materialize the best line.
	line := make([]*tree.Tree, len(d.bestLine))
	for i, idx := range d.bestLine {
		line[i] = s.trees[idx]
	}
	return line, d.bestDepth, nil
}

type deepSearch struct {
	s       *Solver
	width   int
	budget  int
	visited map[uint64]bool
	// best found so far
	bestDepth int
	bestLine  []int
	// current path (tree indices)
	path []int
}

// scoreState orders successors: prefer states whose most-spread value has
// the smallest reach (furthest from completion), then fewer total edges.
func (d *deepSearch) scoreState(m uint64) (maxReach, edges int) {
	n := d.s.n
	// reach of x = number of columns containing x = popcount over column
	// bits at position x.
	for x := 0; x < n; x++ {
		r := 0
		for y := 0; y < n; y++ {
			if m&(1<<uint(y*n+x)) != 0 {
				r++
			}
		}
		if r > maxReach {
			maxReach = r
		}
	}
	edges = bits.OnesCount64(m)
	return maxReach, edges
}

func (d *deepSearch) dfs(m uint64, depth int, _ []int) {
	if d.budget <= 0 {
		return
	}
	d.budget--

	type succ struct {
		state    uint64
		treeIdx  int
		maxReach int
		edges    int
	}
	var succs []succ
	for i, plan := range d.s.plans {
		next := d.s.apply(m, plan)
		if d.s.done(next) {
			// This move ends the game at depth+1 rounds.
			if depth+1 > d.bestDepth {
				d.bestDepth = depth + 1
				d.bestLine = append(append([]int(nil), d.path...), i)
			}
			continue
		}
		if d.visited[next] {
			continue
		}
		mr, e := d.scoreState(next)
		succs = append(succs, succ{next, i, mr, e})
	}
	sort.Slice(succs, func(a, b int) bool {
		if succs[a].maxReach != succs[b].maxReach {
			return succs[a].maxReach < succs[b].maxReach
		}
		if succs[a].edges != succs[b].edges {
			return succs[a].edges < succs[b].edges
		}
		return succs[a].state < succs[b].state
	})
	if len(succs) > d.width {
		succs = succs[:d.width]
	}
	for _, sc := range succs {
		if d.budget <= 0 {
			return
		}
		d.visited[sc.state] = true
		d.path = append(d.path, sc.treeIdx)
		// A surviving state at depth+1 means the schedule already lasts
		// depth+1 rounds (it will end no earlier than depth+2 overall,
		// but record the conservative floor).
		if depth+1 > d.bestDepth {
			d.bestDepth = depth + 1
			d.bestLine = append([]int(nil), d.path...)
		}
		d.dfs(sc.state, depth+1, nil)
		d.path = d.path[:len(d.path)-1]
	}
}
