package gamesolver

import "dyntreecast/internal/metrics"

// Solver observability: counters are accumulated in per-solver atomics
// on the search path and folded into the shared registry when an
// exported query returns (flushMetrics), so a scrape never contends
// with a worker and the recursion never touches a metric. The prune
// rate is derivable as solver_successors_{deduped,dominated}_total over
// solver_tree_applications_total; solve latency lands in
// solver_solve_seconds per full Value computation.
var (
	mSolves = metrics.Default.Counter("solver_solves_total",
		"Full exact game solves (Solver.Value calls).")
	mSolveSeconds = metrics.Default.Histogram("solver_solve_seconds",
		"Wall-clock latency of Solver.Value calls.",
		metrics.ExpBuckets(0.0001, 4, 14))
	mStates = metrics.Default.Counter("solver_states_explored_total",
		"Distinct canonical game states solved.")
	mMemoHits = metrics.Default.Counter("solver_memo_hits_total",
		"State lookups answered by the canonical value table.")
	mRawHits = metrics.Default.Counter("solver_raw_hits_total",
		"State lookups answered by the raw-state front cache.")
	mApplies = metrics.Default.Counter("solver_tree_applications_total",
		"Tree applications performed while generating successors.")
	mDeduped = metrics.Default.Counter("solver_successors_deduped_total",
		"Successor masks dropped as duplicates of another tree's result.")
	mDominated = metrics.Default.Counter("solver_successors_dominated_total",
		"Successor masks dropped by subset-dominance pruning.")
	mTableLoads = metrics.Default.Counter("solver_table_loads_total",
		"Solve tables loaded from disk.")
	mTableSaves = metrics.Default.Counter("solver_table_saves_total",
		"Solve tables written to disk.")
	mTableStates = metrics.Default.Counter("solver_table_states_total",
		"States preloaded into solvers from solve tables.")
)
