package gamesolver

import "math/bits"

// Canonicalization reduces a state to one representative of its orbit
// under vertex relabeling, so the memo table stores each equivalence
// class once. The seed solver took the minimum packed mask over all n!
// bit permutations — correct, but the n!-loop dominated the whole search
// (720 permutations per lookup at n = 6). The rewrite keeps exactness
// while touching almost no permutations:
//
//  1. A vertex-invariant refinement ("greedy column sort"): each vertex
//     gets a key built only from relabeling-invariant structure — how
//     many processes it has heard, how many have heard it, then two
//     rounds of hashing in its neighbors' keys (one Weisfeiler–Leman
//     style sweep). Sorting vertices by key is equivariant: a relabeled
//     state sorts into the same cell sequence.
//  2. Only permutations that respect that sorted order are candidates;
//     ties (cells of equal key) are broken by enumerating all orders
//     within each cell. Most mid-game states have all-distinct keys, so
//     the candidate set collapses from n! to 1–2 permutations. The
//     canonical form is the minimum packed mask over the candidate set —
//     a different (coarser-indexed) representative than the seed's
//     all-permutations minimum, but equally orbit-invariant, which is
//     all the memo needs. Solve tables record canonVersion so a
//     persisted table is never joined against a foreign representative
//     function.
//  3. Each candidate is applied with a precomputed per-permutation word
//     program: rows are ≤ 8-bit words, so a permutation's column
//     shuffle is one table lookup per row (scatter[rank][row]), built
//     once per solver for all n! permutations. Candidates are compared
//     against the running minimum from the most significant row group
//     down, aborting as soon as a partial result exceeds it.
//
// canonVersion names this representative function in solve-table
// headers; bump it whenever the keys, the refinement, or the tie-break
// change, or old tables would silently mismatch new lookups.
const canonVersion = "cells/1"

// rawCanonVersion tags tables from WithoutCanonicalization solvers,
// whose memo is keyed by raw states.
const rawCanonVersion = "raw/1"

// permScratch carries the fixed-size buffers one canonicalization needs;
// each worker owns one, so canonicalization allocates nothing and takes
// no locks.
type permScratch struct {
	rows  [hardMaxN]uint16 // heard-row of each vertex
	keys  [hardMaxN]uint64 // refined invariant key per vertex
	order [hardMaxN]uint8  // vertices sorted by key (cells = equal-key runs)
	cand  [hardMaxN]uint8  // candidate permutation under construction
	best  uint64           // minimum packed mask seen so far
}

// canonicalize returns the orbit representative of m.
func (s *Solver) canonicalize(m uint64, ps *permScratch) uint64 {
	if !s.canonize {
		return m
	}
	n := s.n
	for v := 0; v < n; v++ {
		ps.rows[v] = uint16((m >> uint(v*n)) & s.colMask)
	}
	s.vertexKeys(ps)
	for i := 0; i < n; i++ {
		ps.order[i] = uint8(i)
	}
	// Insertion sort by key; within-cell order is irrelevant (all orders
	// are enumerated), so stability does not matter.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && ps.keys[ps.order[j-1]] > ps.keys[ps.order[j]]; j-- {
			ps.order[j-1], ps.order[j] = ps.order[j], ps.order[j-1]
		}
	}
	ps.best = ^uint64(0)
	copy(ps.cand[:], ps.order[:])
	s.enumCells(ps, 0)
	return ps.best
}

// vertexKeys fills ps.keys with relabeling-invariant vertex keys:
// (heard count, reach count) refined by two rounds of neighbor-key
// mixing. Sums over neighbor keys are multiset-invariant, so the keys of
// a relabeled state are the same keys attached to the relabeled
// vertices. Hash collisions can only merge cells — that costs candidate
// permutations, never correctness.
func (s *Solver) vertexKeys(ps *permScratch) {
	n := s.n
	var reach [hardMaxN]uint8
	for y := 0; y < n; y++ {
		r := ps.rows[y]
		for r != 0 {
			reach[bits.TrailingZeros16(r)]++
			r &= r - 1
		}
	}
	for v := 0; v < n; v++ {
		ps.keys[v] = uint64(bits.OnesCount16(ps.rows[v]))<<8 | uint64(reach[v])
	}
	for round := 0; round < 2; round++ {
		var next [hardMaxN]uint64
		for v := 0; v < n; v++ {
			var heardSum, reachSum uint64
			r := ps.rows[v]
			for r != 0 {
				heardSum += keyMix(ps.keys[bits.TrailingZeros16(r)])
				r &= r - 1
			}
			for y := 0; y < n; y++ {
				if ps.rows[y]>>uint(v)&1 == 1 {
					reachSum += keyMix(ps.keys[y])
				}
			}
			next[v] = keyMix(ps.keys[v] ^ bits.RotateLeft64(heardSum, 17) ^ bits.RotateLeft64(reachSum, 31))
		}
		ps.keys = next
	}
}

func keyMix(x uint64) uint64 {
	x *= 0x9e3779b97f4a7c15
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return x
}

// enumCells walks the cell structure of ps.order from position start,
// enumerating every within-cell ordering; complete candidates land in
// evalPerm. Singleton cells (the common case after refinement) recurse
// straight through.
func (s *Solver) enumCells(ps *permScratch, start int) {
	n := s.n
	if start >= n {
		s.evalPerm(ps)
		return
	}
	end := start + 1
	k := ps.keys[ps.order[start]]
	for end < n && ps.keys[ps.order[end]] == k {
		end++
	}
	if end-start == 1 {
		s.enumCells(ps, end)
		return
	}
	s.permuteCell(ps, start, end-start, end)
}

// permuteCell runs Heap's algorithm on ps.cand[start:start+size],
// recursing into the next cell at every arrangement.
func (s *Solver) permuteCell(ps *permScratch, start, size, next int) {
	if size == 1 {
		s.enumCells(ps, next)
		return
	}
	for i := 0; i < size; i++ {
		s.permuteCell(ps, start, size-1, next)
		if size%2 == 0 {
			ps.cand[start+i], ps.cand[start+size-1] = ps.cand[start+size-1], ps.cand[start+i]
		} else {
			ps.cand[start], ps.cand[start+size-1] = ps.cand[start+size-1], ps.cand[start]
		}
	}
}

// evalPerm applies the candidate permutation in ps.cand via its
// precomputed scatter program and lowers ps.best if the permuted mask is
// smaller. The mask is assembled from the most significant row group
// down so a losing candidate aborts at the first row that exceeds the
// current minimum.
func (s *Solver) evalPerm(ps *permScratch) {
	n := s.n
	tab := s.scatter[permRank(ps.cand[:n])]
	best := ps.best
	var out uint64
	less := false
	for yp := n - 1; yp >= 0; yp-- {
		g := uint64(tab[ps.rows[ps.cand[yp]]])
		if !less {
			bg := (best >> uint(yp*n)) & s.colMask
			if g > bg {
				return
			}
			if g < bg {
				less = true
			}
		}
		out |= g << uint(yp*n)
	}
	ps.best = out
}

// permRank returns the lexicographic rank of a permutation of [0,n) —
// the index of the matching entry in lexPerms(n) and s.scatter.
func permRank(p []uint8) int {
	rank := 0
	n := len(p)
	for i := 0; i < n; i++ {
		c := 0
		for j := i + 1; j < n; j++ {
			if p[j] < p[i] {
				c++
			}
		}
		rank = rank*(n-i) + c
	}
	return rank
}

// lexPerms returns all permutations of [0,n) in lexicographic order, so
// permRank indexes into the result.
func lexPerms(n int) [][]uint8 {
	var out [][]uint8
	cur := make([]uint8, 0, n)
	used := make([]bool, n)
	var rec func()
	rec = func() {
		if len(cur) == n {
			p := make([]uint8, n)
			copy(p, cur)
			out = append(out, p)
			return
		}
		for v := 0; v < n; v++ {
			if used[v] {
				continue
			}
			used[v] = true
			cur = append(cur, uint8(v))
			rec()
			cur = cur[:len(cur)-1]
			used[v] = false
		}
	}
	rec()
	return out
}

// buildScatter precomputes one permutation's word program: tab[row] is
// row with its bits shuffled by p (bit x' of the result is bit p[x'] of
// the input), so applying a permutation to a state is one lookup per
// row group instead of a per-bit loop.
func buildScatter(p []uint8, n int) []uint16 {
	tab := make([]uint16, 1<<uint(n))
	for row := range tab {
		var out uint16
		for xp := 0; xp < n; xp++ {
			out |= uint16(row>>p[xp]&1) << uint(xp)
		}
		tab[row] = out
	}
	return tab
}

// allPerms returns all permutations of [0,n) (lexicographic order); kept
// as the reference enumeration for invariance tests.
func allPerms(n int) [][]int {
	ps := lexPerms(n)
	out := make([][]int, len(ps))
	for i, p := range ps {
		q := make([]int, n)
		for j, v := range p {
			q[j] = int(v)
		}
		out[i] = q
	}
	return out
}
