package gamesolver

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Solve tables persist a solver's canonical value table so exact values
// survive the process: solve t*(T6) once, load it forever after in
// milliseconds. The format is a text header over fixed-width binary
// pairs:
//
//	dyntreecast-solvetable/1
//	n=<n> canon=<canonVersion> states=<count>
//	<count> × (8-byte little-endian canonical mask, 1-byte value)
//
// Pairs are written in ascending mask order, so the same solved table
// always serializes to the same bytes (the warehouse's
// content-addressing friendliness), and writes go temp+rename like
// store manifests — a crash never leaves a half table at the target
// path. Partial tables (from an interrupted solve that autosaved) load
// fine and simply pre-warm the memo: the next solve resumes past every
// state the table already knows.
const tableMagic = "dyntreecast-solvetable/1"

// TableInfo describes a solve table file without loading its states.
type TableInfo struct {
	N      int
	Canon  string // canonical-representative version the masks use
	States int
}

// canonTag names the representative function keying this solver's memo.
func (s *Solver) canonTag() string {
	if s.canonize {
		return canonVersion
	}
	return rawCanonVersion
}

// SaveTable writes every solved state to path (temp+rename). Safe to
// call concurrently with a running solve: it serializes a per-shard
// consistent snapshot, which for an autosave is exactly what resuming
// wants.
func (s *Solver) SaveTable(path string) error {
	type pair struct {
		k uint64
		v uint8
	}
	pairs := make([]pair, 0, s.memo.len())
	s.memo.forEach(func(k uint64, v uint8) { pairs = append(pairs, pair{k, v}) })
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })

	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("gamesolver: solve table dir: %w", err)
	}
	f, err := os.CreateTemp(dir, ".solvetable-*")
	if err != nil {
		return fmt.Errorf("gamesolver: solve table temp: %w", err)
	}
	tmp := f.Name()
	w := bufio.NewWriter(f)
	fmt.Fprintf(w, "%s\nn=%d canon=%s states=%d\n", tableMagic, s.n, s.canonTag(), len(pairs))
	var rec [9]byte
	for _, p := range pairs {
		binary.LittleEndian.PutUint64(rec[:8], p.k)
		rec[8] = p.v
		if _, err := w.Write(rec[:]); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("gamesolver: writing solve table: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("gamesolver: writing solve table: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("gamesolver: writing solve table: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("gamesolver: installing solve table: %w", err)
	}
	mTableSaves.Inc()
	return nil
}

// LoadTable merges a solve table into the solver's memo and returns the
// number of states read. The table must match the solver's n and
// canonical-representative version; a mismatch is an error, never a
// silent wrong answer.
func (s *Solver) LoadTable(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	info, err := readTableHeader(r, path)
	if err != nil {
		return 0, err
	}
	if info.N != s.n {
		return 0, fmt.Errorf("gamesolver: solve table %s is for n=%d, solver n=%d", path, info.N, s.n)
	}
	if info.Canon != s.canonTag() {
		return 0, fmt.Errorf("gamesolver: solve table %s uses canonicalization %q, solver uses %q",
			path, info.Canon, s.canonTag())
	}
	maxV := s.n * s.n
	var rec [9]byte
	loaded := 0
	for i := 0; i < info.States; i++ {
		if _, err := readFull(r, rec[:]); err != nil {
			return loaded, fmt.Errorf("gamesolver: solve table %s truncated at state %d/%d: %w",
				path, i, info.States, err)
		}
		k := binary.LittleEndian.Uint64(rec[:8])
		v := rec[8]
		if k == 0 || k&s.selfMask != s.selfMask || int(v) > maxV {
			return loaded, fmt.Errorf("gamesolver: solve table %s has corrupt state %d/%d", path, i, info.States)
		}
		if s.memo.put(k, v) {
			loaded++
		}
	}
	s.stats.tableLoaded.Add(uint64(loaded))
	mTableLoads.Inc()
	s.flushMetrics()
	return loaded, nil
}

// ReadTableInfo parses only a solve table's header — cheap enough to
// probe for compatible tables before constructing a solver.
func ReadTableInfo(path string) (TableInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return TableInfo{}, err
	}
	defer f.Close()
	return readTableHeader(bufio.NewReader(f), path)
}

func readTableHeader(r *bufio.Reader, path string) (TableInfo, error) {
	magic, err := r.ReadString('\n')
	if err != nil || strings.TrimSuffix(magic, "\n") != tableMagic {
		return TableInfo{}, fmt.Errorf("gamesolver: %s is not a solve table", path)
	}
	header, err := r.ReadString('\n')
	if err != nil {
		return TableInfo{}, fmt.Errorf("gamesolver: %s: truncated header", path)
	}
	var info TableInfo
	if _, err := fmt.Sscanf(strings.TrimSuffix(header, "\n"), "n=%d canon=%s states=%d",
		&info.N, &info.Canon, &info.States); err != nil {
		return TableInfo{}, fmt.Errorf("gamesolver: %s: bad header %q", path, strings.TrimSpace(header))
	}
	if info.N < 1 || info.N > HardMaxN || info.States < 0 {
		return TableInfo{}, fmt.Errorf("gamesolver: %s: implausible header %q", path, strings.TrimSpace(header))
	}
	return info, nil
}

func readFull(r *bufio.Reader, buf []byte) (int, error) {
	total := 0
	for total < len(buf) {
		n, err := r.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
