package gamesolver

import "sync"

// The canonical value table is the shared heart of the parallel search:
// every worker publishes solved states into it and reads other workers'
// results out of it, so it must be cheap under concurrency and compact at
// n = 6+ scale (millions of states). It is a striped-lock open-addressing
// hash table: 2^memoShardBits independent shards, each a power-of-two
// linear-probe array of (mask, value) pairs. Publishing is idempotent —
// the game value of a state is unique, so two workers racing to insert
// the same key always carry the same value and first-write-wins changes
// nothing observable. Keys are packed reflexive states, which always
// contain the identity diagonal and are therefore never zero, freeing 0
// as the empty-slot sentinel.
const (
	memoShardBits  = 8
	memoShardCount = 1 << memoShardBits
	memoInitialCap = 1 << 10
)

type memoTable struct {
	shards [memoShardCount]memoShard
}

type memoShard struct {
	mu   sync.Mutex
	keys []uint64
	vals []uint8
	used int
}

func newMemoTable() *memoTable { return &memoTable{} }

// memoHash is a 64-bit finalizer (splitmix64); the high bits pick the
// shard and the full hash seeds the probe so shard and slot stay
// decorrelated.
func memoHash(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return k
}

func (t *memoTable) get(key uint64) (uint8, bool) {
	h := memoHash(key)
	s := &t.shards[h>>(64-memoShardBits)]
	s.mu.Lock()
	if s.used == 0 {
		s.mu.Unlock()
		return 0, false
	}
	mask := uint64(len(s.keys) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		switch s.keys[i] {
		case key:
			v := s.vals[i]
			s.mu.Unlock()
			return v, true
		case 0:
			s.mu.Unlock()
			return 0, false
		}
	}
}

// put publishes key -> v and reports whether the key was newly inserted.
// An existing entry is kept as-is: values are unique per key, so a lost
// race is not a lost result.
func (t *memoTable) put(key uint64, v uint8) bool {
	if key == 0 {
		panic("gamesolver: zero state key (states are reflexive and never empty)")
	}
	h := memoHash(key)
	s := &t.shards[h>>(64-memoShardBits)]
	s.mu.Lock()
	if s.keys == nil {
		s.keys = make([]uint64, memoInitialCap)
		s.vals = make([]uint8, memoInitialCap)
	}
	inserted := s.insert(key, v)
	if inserted && s.used*10 >= len(s.keys)*7 {
		s.grow()
	}
	s.mu.Unlock()
	return inserted
}

func (s *memoShard) insert(key uint64, v uint8) bool {
	mask := uint64(len(s.keys) - 1)
	for i := memoHash(key) & mask; ; i = (i + 1) & mask {
		switch s.keys[i] {
		case key:
			return false
		case 0:
			s.keys[i] = key
			s.vals[i] = v
			s.used++
			return true
		}
	}
}

func (s *memoShard) grow() {
	oldKeys, oldVals := s.keys, s.vals
	s.keys = make([]uint64, 2*len(oldKeys))
	s.vals = make([]uint8, 2*len(oldVals))
	s.used = 0
	for i, k := range oldKeys {
		if k != 0 {
			s.insert(k, oldVals[i])
		}
	}
}

func (t *memoTable) len() int {
	total := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		total += s.used
		s.mu.Unlock()
	}
	return total
}

// forEach visits every (state, value) pair, one shard at a time. The
// snapshot is per-shard consistent, which is all table serialization
// needs: entries published while iterating may or may not be seen.
func (t *memoTable) forEach(fn func(key uint64, v uint8)) {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for j, k := range s.keys {
			if k != 0 {
				fn(k, s.vals[j])
			}
		}
		s.mu.Unlock()
	}
}
