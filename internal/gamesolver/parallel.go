package gamesolver

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Parallel search: one driver worker runs the exact depth-first
// recursion from the root while helper workers steal published subtree
// tasks and solve them speculatively into the shared canonical value
// table. Publication happens at shallow depths (spawnDepth), where
// subtrees are large enough to amortize a steal. Helpers warm the memo
// ahead of the driver; when the driver reaches a stolen subtree it
// reads the finished value instead of recursing.
//
// Correctness does not lean on the scheduler at all: f is a function,
// every worker computes exact values, and the memo publishes
// first-write-wins over identical values — so the answer is
// bit-identical at every worker count and under every interleaving.
// Duplicated work (two workers racing into the same subtree) costs only
// wall-clock, the same currency the cluster layer pays for dead
// workers. The driver finishing IS termination: helpers are then
// stopped regardless of their progress, and any half-solved stolen
// subtree simply leaves extra memo entries behind... which the next
// query gets for free.

// task is one stealable unit: solve the subtree rooted at mask. depth
// seeds the worker's scratch-buffer indexing and the spawn cutoff.
type task struct {
	mask  uint64
	depth int
}

// queueCap bounds each worker's task queue; beyond it offers are
// dropped — the owning worker will solve those subtrees itself.
const queueCap = 8192

type taskQueue struct {
	mu    sync.Mutex
	tasks []task
	head  int
}

func (q *taskQueue) push(ts []uint64, depth int) {
	q.mu.Lock()
	for _, m := range ts {
		if len(q.tasks)-q.head >= queueCap {
			break
		}
		q.tasks = append(q.tasks, task{m, depth})
	}
	q.mu.Unlock()
}

// popNewest serves the owner (LIFO: deepest, most local work first).
func (q *taskQueue) popNewest() (task, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head >= len(q.tasks) {
		return task{}, false
	}
	t := q.tasks[len(q.tasks)-1]
	q.tasks = q.tasks[:len(q.tasks)-1]
	if q.head >= len(q.tasks) {
		q.tasks = q.tasks[:0]
		q.head = 0
	}
	return t, true
}

// popOldest serves thieves (FIFO: shallowest, biggest subtrees first).
func (q *taskQueue) popOldest() (task, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head >= len(q.tasks) {
		return task{}, false
	}
	t := q.tasks[q.head]
	q.head++
	if q.head >= len(q.tasks) {
		q.tasks = q.tasks[:0]
		q.head = 0
	} else if q.head > queueCap/2 {
		q.tasks = append(q.tasks[:0], q.tasks[q.head:]...)
		q.head = 0
	}
	return t, true
}

type workPool struct {
	queues []taskQueue
	stop   atomic.Bool
}

// offer publishes sibling subtrees from worker id as stealable tasks.
func (p *workPool) offer(id int, masks []uint64, depth int) {
	p.queues[id].push(masks, depth)
}

// steal finds work for worker id: its own newest task first, then the
// oldest task of each victim in ring order.
func (p *workPool) steal(id int) (task, bool) {
	if t, ok := p.queues[id].popNewest(); ok {
		return t, true
	}
	for i := 1; i < len(p.queues); i++ {
		if t, ok := p.queues[(id+i)%len(p.queues)].popOldest(); ok {
			return t, true
		}
	}
	return task{}, false
}

// solveParallel resolves f(m) with s.workers workers. The caller holds
// queryMu; the root recursion runs on the calling goroutine.
func (s *Solver) solveParallel(m uint64) int {
	w := s.workers
	pool := &workPool{queues: make([]taskQueue, w)}
	var wg sync.WaitGroup
	for id := 1; id < w; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			ctx := s.newWorkerCtx(id, pool)
			idle := 0
			for !pool.stop.Load() {
				t, ok := pool.steal(id)
				if !ok {
					// Nothing stealable yet (or ever again): back off
					// gently so an idle helper doesn't burn the core the
					// driver needs.
					idle++
					if idle < 8 {
						runtime.Gosched()
					} else {
						time.Sleep(100 * time.Microsecond)
					}
					continue
				}
				idle = 0
				ctx.value(t.mask, t.depth)
			}
		}(id)
	}
	driver := s.qctx
	driver.pool = pool
	v := driver.value(m, 0)
	driver.pool = nil
	pool.stop.Store(true)
	wg.Wait()
	return v
}
