package gamesolver

import (
	"testing"

	"dyntreecast/internal/boolmat"
	"dyntreecast/internal/bounds"
	"dyntreecast/internal/core"
	"dyntreecast/internal/rng"
	"dyntreecast/internal/tree"
)

func TestExactValuesMatchLowerBound(t *testing.T) {
	// Headline result of experiment E7: for n = 1..5 the exact game value
	// t*(Tn) equals the Zeiner–Schwarz–Schmid lower bound ⌈(3n−1)/2⌉−2
	// exactly — the lower bound is tight for small n.
	want := []int{0, 0, 1, 2, 4, 5} // index = n
	maxN := 5
	if testing.Short() {
		maxN = 4
	}
	for n := 1; n <= maxN; n++ {
		s, err := New(n)
		if err != nil {
			t.Fatalf("New(%d): %v", n, err)
		}
		got := s.Value()
		if got != want[n] {
			t.Errorf("t*(T%d) = %d, want %d", n, got, want[n])
		}
		if got != bounds.Lower(n) {
			t.Errorf("t*(T%d) = %d != lower bound %d", n, got, bounds.Lower(n))
		}
		if got > bounds.UpperLinear(n) {
			t.Errorf("t*(T%d) = %d exceeds upper bound %d: Theorem 3.1 falsified",
				n, got, bounds.UpperLinear(n))
		}
	}
}

func TestNewRejectsLargeN(t *testing.T) {
	if _, err := New(6); err == nil {
		t.Error("New(6) accepted without override")
	}
	if _, err := New(0); err == nil {
		t.Error("New(0) accepted")
	}
	if _, err := New(6, WithMaxN(6)); err != nil {
		t.Errorf("New(6, WithMaxN(6)) rejected: %v", err)
	}
	if _, err := New(9, WithMaxN(20)); err == nil {
		t.Error("New(9) accepted beyond the uint64 representation limit")
	}
}

func TestCanonicalizationDoesNotChangeValue(t *testing.T) {
	for n := 2; n <= 4; n++ {
		a, err := New(n)
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(n, WithoutCanonicalization())
		if err != nil {
			t.Fatal(err)
		}
		if av, bv := a.Value(), b.Value(); av != bv {
			t.Errorf("n=%d: canonical %d != plain %d", n, av, bv)
		}
		if a.StatesExplored() > b.StatesExplored() {
			t.Errorf("n=%d: canonicalization increased states (%d > %d)",
				n, a.StatesExplored(), b.StatesExplored())
		}
	}
}

func TestValueOfMidGameStates(t *testing.T) {
	s, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	// A state with a full row has value 0.
	m := boolmat.Identity(4)
	for y := 0; y < 4; y++ {
		m.Set(0, y)
	}
	if got := s.ValueOf(m); got != 0 {
		t.Errorf("completed state has value %d", got)
	}
	// Value decreases (weakly) as knowledge grows: check against a
	// one-round successor of the identity.
	id := boolmat.Identity(4)
	vid := s.ValueOf(id)
	next := id.Clone()
	next.ApplyTree(tree.IdentityPath(4))
	if vn := s.ValueOf(next); vn >= vid {
		t.Errorf("successor value %d not below initial %d", vn, vid)
	}
}

func TestValueOfDimensionMismatchPanics(t *testing.T) {
	s, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s.ValueOf(boolmat.Identity(4))
}

func TestBestTreeIsOptimal(t *testing.T) {
	s, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	id := boolmat.Identity(4)
	v := s.ValueOf(id)
	bt := s.BestTree(id)
	if bt == nil {
		t.Fatal("BestTree returned nil on a live state")
	}
	next := id.Clone()
	next.ApplyTree(bt)
	if got := s.ValueOf(next); got != v-1 {
		t.Errorf("best move leads to value %d, want %d", got, v-1)
	}
}

func TestBestTreeNilWhenDone(t *testing.T) {
	s, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	m := boolmat.Identity(3)
	for y := 0; y < 3; y++ {
		m.Set(1, y)
	}
	if s.BestTree(m) != nil {
		t.Error("BestTree on a finished game not nil")
	}
}

func TestOptimalAdversaryAchievesExactValue(t *testing.T) {
	// Driving core.Run with the perfect-play adversary must realize
	// exactly t*(Tn).
	for n := 2; n <= 4; n++ {
		s, err := New(n)
		if err != nil {
			t.Fatal(err)
		}
		got, err := core.BroadcastTime(n, Optimal{S: s})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if want := s.Value(); got != want {
			t.Errorf("n=%d: optimal adversary realized %d rounds, game value is %d",
				n, got, want)
		}
	}
}

func TestOptimalAdversaryWrongN(t *testing.T) {
	s, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Run(4, Optimal{S: s}, core.Broadcast); err == nil {
		t.Error("Optimal driven at wrong n did not fail the run")
	}
}

func TestNoAdversaryBeatsTheSolver(t *testing.T) {
	// Game-theoretic sanity: every concrete adversary is at most optimal.
	s, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	val := s.Value()
	src := rng.New(5)
	for trial := 0; trial < 20; trial++ {
		rounds, err := core.BroadcastTime(4, randomAdv{src})
		if err != nil {
			t.Fatal(err)
		}
		if rounds > val {
			t.Fatalf("random adversary achieved %d > game value %d", rounds, val)
		}
	}
}

type randomAdv struct{ src *rng.Source }

func (a randomAdv) Next(v core.View) *tree.Tree { return tree.Random(v.N(), a.src) }

func TestPackUnpackRoundTrip(t *testing.T) {
	s, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(9)
	m := boolmat.Identity(4)
	for i := 0; i < 6; i++ {
		m.Set(src.Intn(4), src.Intn(4))
	}
	if !s.Unpack(s.pack(m)).Equal(m) {
		t.Error("pack/Unpack round trip failed")
	}
}

func TestCanonicalInvariantUnderRelabeling(t *testing.T) {
	// canonical(m) must be identical for every relabeling of m.
	s, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(11)
	m := boolmat.Identity(4)
	for i := 0; i < 5; i++ {
		m.Set(src.Intn(4), src.Intn(4))
	}
	want := s.canonical(s.pack(m))
	for _, p := range allPerms(4) {
		pm := m.Permute(p)
		if got := s.canonical(s.pack(pm)); got != want {
			t.Fatalf("canonical differs under relabeling %v", p)
		}
	}
}

// Solver benchmarks live in parallel_test.go as the BenchmarkSolver
// matrix (full / parallel / noprune / nocanon ablations) guarded by
// scripts/benchdiff.sh.
