// Package gossip studies the all-to-all variant of the dissemination
// problem — the paper's §5 names gossiping as the natural next question
// for the matrix-evolution technique.
//
// Gossip completes when every process has heard every value (all rows of
// G(t) full), versus broadcast's "some row full". The two problems behave
// very differently under dynamic rooted trees:
//
//   - Against an adaptive adversary, gossip time is UNBOUNDED. Witness
//     (n = 2): repeat the tree rooted at process 1 with edge 1 → 0.
//     Process 1 broadcasts in one round, but process 1's heard set never
//     grows, so process 0's value never reaches it. Staller generalizes
//     this to any n. This is why the broadcast problem, not gossip, is the
//     right object for the worst-case analysis of the paper.
//   - Under oblivious random adversaries, gossip completes and its time is
//     a small multiple of broadcast time (experiment E9 measures the
//     ratio).
package gossip

import (
	"dyntreecast/internal/core"
	"dyntreecast/internal/tree"
)

// Time runs adv until every process has heard every value and returns the
// number of rounds. Unlike broadcast, termination is not guaranteed for
// adaptive adversaries: callers should set core.WithMaxRounds and handle
// core.ErrMaxRounds.
//
// Time allocates a fresh engine per call; hot loops (the batched campaign
// pipeline, experiment trial fans) run the same computation on a pooled
// core.Runner via Runner.GossipTime / Runner.BothTimes instead, which is
// round-for-round and error-for-error identical.
func Time(n int, adv core.Adversary, opts ...core.Option) (int, error) {
	res, err := core.Run(n, adv, core.Gossip, opts...)
	return res.Rounds, err
}

// BothTimes runs adv once and reports the round at which broadcast
// completed and the round at which gossip completed (the same run, so the
// ratio is meaningful). Termination caveats as in Time.
func BothTimes(n int, adv core.Adversary, opts ...core.Option) (broadcast, gossip int, err error) {
	broadcast = -1
	opts = append(opts, core.WithObserver(func(round int, _ *tree.Tree, e *core.Engine) {
		if broadcast < 0 && e.BroadcastDone() {
			broadcast = round
		}
	}))
	res, err := core.Run(n, adv, core.Gossip, opts...)
	if err != nil {
		return broadcast, res.Rounds, err
	}
	return broadcast, res.Rounds, nil
}

// Staller is the adversary that stalls gossip forever on any n >= 2: it
// always plays the star rooted at process n−1. The root broadcasts in one
// round, but its own heard set never grows, so gossip never completes.
// Plug into Time with a round budget to observe the stall.
type Staller struct{}

// Next implements core.Adversary.
func (Staller) Next(v core.View) *tree.Tree {
	t, err := tree.Star(v.N(), v.N()-1)
	if err != nil {
		return nil
	}
	return t
}

var _ core.Adversary = Staller{}
