package gossip

import (
	"errors"
	"testing"

	"dyntreecast/internal/adversary"
	"dyntreecast/internal/core"
	"dyntreecast/internal/rng"
	"dyntreecast/internal/tree"
)

func TestStallerBlocksGossipForever(t *testing.T) {
	// The witness for unbounded adversarial gossip (§5 discussion): the
	// star root broadcasts immediately, yet gossip never completes.
	for _, n := range []int{2, 5, 10} {
		_, err := Time(n, Staller{}, core.WithMaxRounds(200))
		if !errors.Is(err, core.ErrMaxRounds) {
			t.Errorf("n=%d: err = %v, want ErrMaxRounds", n, err)
		}
		// Broadcast, by contrast, completes in one round.
		b, err := core.BroadcastTime(n, Staller{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if b != 1 {
			t.Errorf("n=%d: staller broadcast time = %d, want 1", n, b)
		}
	}
}

func TestGossipCompletesUnderRandomAdversary(t *testing.T) {
	src := rng.New(3)
	for _, n := range []int{2, 6, 16} {
		g, err := Time(n, adversary.Random{Src: src})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// A heard set at most doubles per round (one parent), so gossip
		// needs at least ⌈log₂ n⌉ rounds.
		floor := 0
		for 1<<floor < n {
			floor++
		}
		if g < floor {
			t.Errorf("n=%d: gossip in %d rounds, below log floor %d", n, g, floor)
		}
	}
}

func TestBothTimesOrdering(t *testing.T) {
	// Broadcast is a prefix condition of gossip: broadcast round <=
	// gossip round, and both are positive for n >= 2.
	src := rng.New(7)
	for trial := 0; trial < 10; trial++ {
		b, g, err := BothTimes(8, adversary.Random{Src: src})
		if err != nil {
			t.Fatal(err)
		}
		if b < 1 || g < b {
			t.Errorf("broadcast %d, gossip %d: want 1 <= b <= g", b, g)
		}
	}
}

func TestBothTimesAlternatingPaths(t *testing.T) {
	// Deterministic check: alternating path directions on n=4.
	alt := adversary.Func(func(v core.View) *tree.Tree {
		if v.Round()%2 == 0 {
			return tree.IdentityPath(v.N())
		}
		order := make([]int, v.N())
		for i := range order {
			order[i] = v.N() - 1 - i
		}
		return tree.MustPath(order)
	})
	b, g, err := BothTimes(4, alt)
	if err != nil {
		t.Fatal(err)
	}
	if b != 3 {
		t.Errorf("broadcast = %d, want 3 (identity path completes at n-1)", b)
	}
	if g <= b {
		t.Errorf("gossip = %d, want > broadcast %d", g, b)
	}
}

func TestBothTimesStallReturnsError(t *testing.T) {
	b, _, err := BothTimes(3, Staller{}, core.WithMaxRounds(50))
	if !errors.Is(err, core.ErrMaxRounds) {
		t.Fatalf("err = %v, want ErrMaxRounds", err)
	}
	if b != 1 {
		t.Errorf("broadcast completed at %d, want 1 even when gossip stalls", b)
	}
}
