package bitset

import (
	"math/rand"
	"testing"
)

// randWords returns a deterministic pseudo-random capacity-n row with the
// tail-word invariant (bits >= n are zero) upheld.
func randWords(r *rand.Rand, n int) []uint64 {
	ws := make([]uint64, wordsFor(n))
	for i := range ws {
		ws[i] = r.Uint64()
	}
	if n > 0 {
		ws[len(ws)-1] &= lastWordMask(n)
	}
	return ws
}

// setFromWords builds an equivalent Set by per-bit insertion, the naive
// model every word kernel is checked against.
func setFromWords(n int, ws []uint64) *Set {
	s := New(n)
	for i := 0; i < n; i++ {
		if ws[i>>wordShift]&(1<<(uint(i)&wordMask)) != 0 {
			s.Set(i)
		}
	}
	return s
}

// TestWordKernelsMatchSets differentially checks every word kernel against
// the per-bit Set API over sizes that exercise single-word, exact-multiple
// and tail-masked layouts.
func TestWordKernelsMatchSets(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 3, 63, 64, 65, 100, 128, 129, 200, 256} {
		for trial := 0; trial < 20; trial++ {
			a, b := randWords(r, n), randWords(r, n)
			sa, sb := setFromWords(n, a), setFromWords(n, b)

			or := append([]uint64(nil), a...)
			OrWords(or, b)
			su := sa.Clone()
			su.Union(sb)
			if !su.Equal(Wrap(n, or)) {
				t.Fatalf("n=%d: OrWords disagrees with Set.Union", n)
			}

			and := append([]uint64(nil), a...)
			AndWords(and, b)
			si := sa.Clone()
			si.Intersect(sb)
			if !si.Equal(Wrap(n, and)) {
				t.Fatalf("n=%d: AndWords disagrees with Set.Intersect", n)
			}

			if got, want := PopWords(a), sa.Count(); got != want {
				t.Fatalf("n=%d: PopWords = %d, Set.Count = %d", n, got, want)
			}
			if got, want := AnyWords(a), !sa.Empty(); got != want {
				t.Fatalf("n=%d: AnyWords = %v, !Set.Empty = %v", n, got, want)
			}
			if got, want := FullWords(a, n), sa.Full(); got != want {
				t.Fatalf("n=%d: FullWords = %v, Set.Full = %v", n, got, want)
			}
			if got, want := EqualWords(a, b), sa.Equal(sb); got != want {
				t.Fatalf("n=%d: EqualWords = %v, Set.Equal = %v", n, got, want)
			}

			fill := append([]uint64(nil), a...)
			FillWords(fill, n)
			if !FullWords(fill, n) || PopWords(fill) != n {
				t.Fatalf("n=%d: FillWords did not produce a full masked row", n)
			}
			ZeroWords(fill)
			if AnyWords(fill) {
				t.Fatalf("n=%d: ZeroWords left bits set", n)
			}
		}
	}
}

func TestWordsForAndTailMask(t *testing.T) {
	cases := []struct {
		n     int
		words int
		tail  uint64
	}{
		{1, 1, 1},
		{63, 1, (1 << 63) - 1},
		{64, 1, ^uint64(0)},
		{65, 2, 1},
		{128, 2, ^uint64(0)},
		{129, 3, 1},
	}
	for _, c := range cases {
		if got := WordsFor(c.n); got != c.words {
			t.Errorf("WordsFor(%d) = %d, want %d", c.n, got, c.words)
		}
		if got := TailMask(c.n); got != c.tail {
			t.Errorf("TailMask(%d) = %#x, want %#x", c.n, got, c.tail)
		}
	}
}

// TestTranspose64 checks the bit transpose against the naive per-bit
// definition (bit j of word i moves to bit i of word j) and that applying
// it twice is the identity.
func TestTranspose64(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		var w, orig [64]uint64
		for i := range w {
			w[i] = r.Uint64()
		}
		orig = w

		var want [64]uint64
		for i := 0; i < 64; i++ {
			for j := 0; j < 64; j++ {
				if orig[i]&(1<<uint(j)) != 0 {
					want[j] |= 1 << uint(i)
				}
			}
		}

		Transpose64(&w)
		if w != want {
			t.Fatalf("trial %d: Transpose64 disagrees with naive transpose", trial)
		}
		Transpose64(&w)
		if w != orig {
			t.Fatalf("trial %d: Transpose64 is not an involution", trial)
		}
	}
}

func TestWrapAliases(t *testing.T) {
	ws := make([]uint64, WordsFor(100))
	s := Wrap(100, ws)
	s.Set(99)
	if ws[1]&(1<<35) == 0 {
		t.Fatal("Set through Wrap not visible in backing words")
	}
	ws[0] = 1
	if !s.Test(0) {
		t.Fatal("backing-word mutation not visible through Wrap")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("Wrap with wrong word count did not panic")
		}
	}()
	Wrap(100, make([]uint64, 1))
}

func TestBlock(t *testing.T) {
	b := NewBlock(5, 100)
	if b.Rows() != 5 || b.N() != 100 || b.Stride() != 2 {
		t.Fatalf("block shape = %d×%d stride %d", b.Rows(), b.N(), b.Stride())
	}
	// Rows alias the block and are isolated from each other.
	b.RowSet(2).Set(99)
	if b.Words()[2*2+1]&(1<<35) == 0 {
		t.Fatal("RowSet mutation not visible in block words")
	}
	for i := 0; i < 5; i++ {
		if want := map[bool]int{true: 1, false: 0}[i == 2]; PopWords(b.Row(i)) != want {
			t.Fatalf("row %d popcount = %d, want %d", i, PopWords(b.Row(i)), want)
		}
	}

	FillWords(b.Row(3), 100)
	if !b.RowFull(3) || b.RowFull(2) {
		t.Fatal("RowFull wrong after filling row 3")
	}

	c := b.Clone()
	b.Zero()
	if AnyWords(b.Words()) {
		t.Fatal("Zero left bits set")
	}
	if !c.RowFull(3) {
		t.Fatal("Clone not independent of Zero")
	}
	b.CopyFrom(c)
	if !b.RowFull(3) {
		t.Fatal("CopyFrom did not restore contents")
	}

	d := NewBlock(4, 4)
	d.SetDiagonal()
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if got := d.RowSet(i).Test(j); got != (i == j) {
				t.Fatalf("diagonal bit (%d,%d) = %v", i, j, got)
			}
		}
	}
}

func TestBlockPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("NewBlock negative", func() { NewBlock(-1, 4) })
	mustPanic("SetDiagonal non-square", func() { NewBlock(3, 4).SetDiagonal() })
	mustPanic("CopyFrom mismatched", func() { NewBlock(3, 4).CopyFrom(NewBlock(4, 4)) })
}
