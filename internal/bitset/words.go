package bitset

import (
	"fmt"
	"math/bits"
)

// This file is the word-kernel layer of the packed round engine (DESIGN.md
// §3g): free functions over raw []uint64 rows plus the Block contiguous
// row layout. The Set type above is the safe, capacity-checked API; these
// kernels are the branch-free inner loops the simulation hot path runs on,
// where one operation advances 64 lanes. They do no capacity checking
// beyond slice length (the caller aligns rows via Block or WordsFor), and
// every one of them is differentially pinned against the per-bit Set model
// by TestWordKernelsMatchSets and FuzzBitsetWords.

// WordsFor returns the number of 64-bit words a capacity-n row occupies.
func WordsFor(n int) int { return wordsFor(n) }

// TailMask returns the mask of valid bits in the final word of a
// capacity-n row: bits at positions >= n must stay zero. n must be > 0.
func TailMask(n int) uint64 { return lastWordMask(n) }

// OrWords sets dst |= src word-wise. The slices must have equal length;
// extra words of a longer dst are ignored (range is over src). This is the
// packed engine's round kernel: one call merges 64 heard-set lanes.
func OrWords(dst, src []uint64) {
	_ = dst[:len(src)] // bounds hint
	for i, w := range src {
		dst[i] |= w
	}
}

// AndWords sets dst &= src word-wise (range is over src).
func AndWords(dst, src []uint64) {
	_ = dst[:len(src)]
	for i, w := range src {
		dst[i] &= w
	}
}

// CopyWords copies src into dst word-wise (range is over src).
func CopyWords(dst, src []uint64) {
	copy(dst, src)
}

// ZeroWords clears every word.
func ZeroWords(ws []uint64) {
	for i := range ws {
		ws[i] = 0
	}
}

// FillWords sets all n valid bits of a capacity-n row, masking the tail
// word so the bits-beyond-n invariant holds. len(ws) must be WordsFor(n).
func FillWords(ws []uint64, n int) {
	if n == 0 {
		return
	}
	for i := range ws {
		ws[i] = ^uint64(0)
	}
	ws[len(ws)-1] = lastWordMask(n)
}

// AnyWords reports whether any bit is set.
func AnyWords(ws []uint64) bool {
	for _, w := range ws {
		if w != 0 {
			return true
		}
	}
	return false
}

// PopWords returns the total population count.
func PopWords(ws []uint64) int {
	c := 0
	for _, w := range ws {
		c += bits.OnesCount64(w)
	}
	return c
}

// FullWords reports whether a capacity-n row has every valid bit set. It
// is the popcount-free completion check: interior words compare against
// all-ones, the tail word against TailMask(n). len(ws) must be
// WordsFor(n), and n must be > 0.
func FullWords(ws []uint64, n int) bool {
	last := len(ws) - 1
	for i := 0; i < last; i++ {
		if ws[i] != ^uint64(0) {
			return false
		}
	}
	return ws[last] == lastWordMask(n)
}

// EqualWords reports whether the slices hold identical words. Slices of
// different length are never equal.
func EqualWords(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, w := range a {
		if b[i] != w {
			return false
		}
	}
	return true
}

// Transpose64 transposes the 64×64 bit matrix held in w in place: bit j of
// word i moves to bit i of word j. It is an involution. This is the block
// kernel of boolmat's packed tree product (Hacker's Delight §7-3,
// recursive block swap): transposing 64 rows at a time turns the per-entry
// column gather of a round product into whole-word ORs.
func Transpose64(w *[64]uint64) {
	// Swap 32×32 blocks, then 16×16 within them, down to 1×1. Bit k of a
	// word is column k (LSB-first), matching Set's index convention.
	m := uint64(0x00000000FFFFFFFF)
	for j := 32; j != 0; j >>= 1 {
		for k := 0; k < 64; k = (k + j + 1) &^ j {
			t := (w[k]>>uint(j) ^ w[k+j]) & m
			w[k] ^= t << uint(j)
			w[k+j] ^= t
		}
		m ^= m << uint(j>>1)
	}
}

// Wrap returns a Set whose backing words alias ws — mutations through the
// Set are visible in ws and vice versa. len(ws) must be exactly
// WordsFor(n), and the caller must uphold the Set invariant that bits at
// positions >= n stay zero. This is how the packed engines expose rows of
// a Block through the Set API without copying.
func Wrap(n int, ws []uint64) *Set {
	if len(ws) != wordsFor(n) {
		panic(fmt.Sprintf("bitset: Wrap of %d words for capacity %d (want %d)", len(ws), n, wordsFor(n)))
	}
	return &Set{n: n, words: ws}
}

// Block is a dense rows×n bit matrix in one contiguous word slice: row i
// occupies words [i*Stride(), (i+1)*Stride()). The packed engines use it
// to keep all heard/reach rows in one allocation, so the round loop walks
// flat memory instead of chasing per-row pointers.
type Block struct {
	rows   int
	n      int
	stride int
	words  []uint64
}

// NewBlock returns an all-zero rows×n block.
func NewBlock(rows, n int) *Block {
	if rows < 0 || n < 0 {
		panic(fmt.Sprintf("bitset: NewBlock(%d, %d) with negative dimension", rows, n))
	}
	stride := wordsFor(n)
	return &Block{rows: rows, n: n, stride: stride, words: make([]uint64, rows*stride)}
}

// Rows returns the number of rows.
func (b *Block) Rows() int { return b.rows }

// N returns the per-row bit capacity.
func (b *Block) N() int { return b.n }

// Stride returns the number of words per row.
func (b *Block) Stride() int { return b.stride }

// Row returns row i's words, aliased into the block (full-capacity
// three-index slice, so an append can never bleed into row i+1).
func (b *Block) Row(i int) []uint64 {
	lo := i * b.stride
	return b.words[lo : lo+b.stride : lo+b.stride]
}

// RowSet returns row i wrapped as a Set aliasing the block.
func (b *Block) RowSet(i int) *Set { return Wrap(b.n, b.Row(i)) }

// Words returns the whole backing slice (row-major), for whole-block
// kernels like PopWords.
func (b *Block) Words() []uint64 { return b.words }

// Zero clears every row in one flat pass.
func (b *Block) Zero() { ZeroWords(b.words) }

// SetDiagonal sets bit i of row i for every row (requires rows == n): the
// identity state both engines reset to.
func (b *Block) SetDiagonal() {
	if b.rows != b.n {
		panic(fmt.Sprintf("bitset: SetDiagonal on %d×%d block", b.rows, b.n))
	}
	for i := 0; i < b.rows; i++ {
		b.Row(i)[i>>wordShift] |= 1 << (uint(i) & wordMask)
	}
}

// RowFull reports whether row i has all n bits set.
func (b *Block) RowFull(i int) bool {
	if b.n == 0 {
		return true
	}
	return FullWords(b.Row(i), b.n)
}

// CopyFrom overwrites b with o's contents. Dimensions must match.
func (b *Block) CopyFrom(o *Block) {
	if b.rows != o.rows || b.n != o.n {
		panic(fmt.Sprintf("bitset: Block copy %dx%d from %dx%d", b.rows, b.n, o.rows, o.n))
	}
	copy(b.words, o.words)
}

// Clone returns an independent copy of the block.
func (b *Block) Clone() *Block {
	c := &Block{rows: b.rows, n: b.n, stride: b.stride, words: make([]uint64, len(b.words))}
	copy(c.words, b.words)
	return c
}
