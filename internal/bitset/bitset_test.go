package bitset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNew(t *testing.T) {
	tests := []struct {
		name string
		n    int
	}{
		{"zero", 0},
		{"one", 1},
		{"wordBoundary", 64},
		{"wordBoundaryPlusOne", 65},
		{"large", 1000},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := New(tt.n)
			if got := s.Len(); got != tt.n {
				t.Errorf("Len() = %d, want %d", got, tt.n)
			}
			if got := s.Count(); got != 0 {
				t.Errorf("Count() = %d, want 0", got)
			}
			if !s.Empty() {
				t.Error("new set not Empty()")
			}
		})
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetTestClear(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Test(i) {
			t.Errorf("Test(%d) = true before Set", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Errorf("Test(%d) = false after Set", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Errorf("Count() = %d, want 8", got)
	}
	s.Clear(64)
	if s.Test(64) {
		t.Error("Test(64) = true after Clear")
	}
	if got := s.Count(); got != 7 {
		t.Errorf("Count() = %d, want 7", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	tests := []struct {
		name string
		fn   func(s *Set)
	}{
		{"TestNegative", func(s *Set) { s.Test(-1) }},
		{"TestTooLarge", func(s *Set) { s.Test(10) }},
		{"SetTooLarge", func(s *Set) { s.Set(10) }},
		{"ClearTooLarge", func(s *Set) { s.Clear(10) }},
		{"FlipTooLarge", func(s *Set) { s.Flip(10) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			tt.fn(New(10))
		})
	}
}

func TestFlip(t *testing.T) {
	s := New(10)
	if got := s.Flip(3); !got {
		t.Error("first Flip(3) = false, want true")
	}
	if got := s.Flip(3); got {
		t.Error("second Flip(3) = true, want false")
	}
	if s.Test(3) {
		t.Error("element 3 present after double flip")
	}
}

func TestFullAndFill(t *testing.T) {
	for _, n := range []int{0, 1, 5, 63, 64, 65, 128, 200} {
		s := New(n)
		if n == 0 {
			if !s.Full() {
				t.Errorf("n=0: empty set should be Full")
			}
			continue
		}
		if s.Full() {
			t.Errorf("n=%d: empty set reported Full", n)
		}
		s.Fill()
		if !s.Full() {
			t.Errorf("n=%d: filled set not Full", n)
		}
		if got := s.Count(); got != n {
			t.Errorf("n=%d: Count() = %d after Fill", n, got)
		}
		s.Clear(n - 1)
		if s.Full() {
			t.Errorf("n=%d: Full() true after clearing last element", n)
		}
	}
}

func TestNewFull(t *testing.T) {
	s := NewFull(70)
	if !s.Full() {
		t.Error("NewFull(70) not Full")
	}
	if got := s.Count(); got != 70 {
		t.Errorf("Count() = %d, want 70", got)
	}
}

func TestFromSlice(t *testing.T) {
	s := FromSlice(100, []int{3, 99, 64, 3})
	want := []int{3, 64, 99}
	if got := s.Slice(); !reflect.DeepEqual(got, want) {
		t.Errorf("Slice() = %v, want %v", got, want)
	}
}

func TestReset(t *testing.T) {
	s := NewFull(100)
	s.Reset()
	if !s.Empty() {
		t.Error("set not empty after Reset")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := FromSlice(100, []int{1, 2, 3})
	c := s.Clone()
	c.Set(50)
	if s.Test(50) {
		t.Error("mutating clone affected original")
	}
	s.Set(70)
	if c.Test(70) {
		t.Error("mutating original affected clone")
	}
}

func TestCopyFrom(t *testing.T) {
	s := FromSlice(100, []int{1, 2})
	o := FromSlice(100, []int{50, 60})
	s.CopyFrom(o)
	if !s.Equal(o) {
		t.Error("CopyFrom did not make sets equal")
	}
}

func TestCapacityMismatchPanics(t *testing.T) {
	tests := []struct {
		name string
		fn   func(a, b *Set)
	}{
		{"Union", func(a, b *Set) { a.Union(b) }},
		{"Intersect", func(a, b *Set) { a.Intersect(b) }},
		{"Subtract", func(a, b *Set) { a.Subtract(b) }},
		{"SubsetOf", func(a, b *Set) { a.SubsetOf(b) }},
		{"Intersects", func(a, b *Set) { a.Intersects(b) }},
		{"CopyFrom", func(a, b *Set) { a.CopyFrom(b) }},
		{"IntersectionCount", func(a, b *Set) { a.IntersectionCount(b) }},
		{"DifferenceCount", func(a, b *Set) { a.DifferenceCount(b) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			tt.fn(New(10), New(20))
		})
	}
}

func TestUnion(t *testing.T) {
	a := FromSlice(100, []int{1, 2, 3})
	b := FromSlice(100, []int{3, 4, 99})
	changed := a.Union(b)
	if !changed {
		t.Error("Union reported no change")
	}
	want := []int{1, 2, 3, 4, 99}
	if got := a.Slice(); !reflect.DeepEqual(got, want) {
		t.Errorf("after Union: %v, want %v", got, want)
	}
	if a.Union(b) {
		t.Error("second identical Union reported change")
	}
}

func TestIntersectSubtract(t *testing.T) {
	a := FromSlice(100, []int{1, 2, 3, 64})
	b := FromSlice(100, []int{2, 64, 99})

	i := a.Clone()
	i.Intersect(b)
	if got, want := i.Slice(), []int{2, 64}; !reflect.DeepEqual(got, want) {
		t.Errorf("Intersect = %v, want %v", got, want)
	}

	d := a.Clone()
	d.Subtract(b)
	if got, want := d.Slice(), []int{1, 3}; !reflect.DeepEqual(got, want) {
		t.Errorf("Subtract = %v, want %v", got, want)
	}
}

func TestEqual(t *testing.T) {
	a := FromSlice(100, []int{1, 2})
	b := FromSlice(100, []int{1, 2})
	c := FromSlice(100, []int{1, 3})
	d := FromSlice(50, []int{1, 2})
	if !a.Equal(b) {
		t.Error("equal sets reported unequal")
	}
	if a.Equal(c) {
		t.Error("unequal sets reported equal")
	}
	if a.Equal(d) {
		t.Error("different-capacity sets reported equal")
	}
}

func TestSubsetOf(t *testing.T) {
	a := FromSlice(100, []int{1, 2})
	b := FromSlice(100, []int{1, 2, 3})
	if !a.SubsetOf(b) {
		t.Error("a ⊆ b reported false")
	}
	if b.SubsetOf(a) {
		t.Error("b ⊆ a reported true")
	}
	if !a.SubsetOf(a) {
		t.Error("a ⊆ a reported false")
	}
}

func TestIntersects(t *testing.T) {
	a := FromSlice(100, []int{1, 2})
	b := FromSlice(100, []int{2, 3})
	c := FromSlice(100, []int{4, 5})
	if !a.Intersects(b) {
		t.Error("intersecting sets reported disjoint")
	}
	if a.Intersects(c) {
		t.Error("disjoint sets reported intersecting")
	}
	if got := a.IntersectionCount(b); got != 1 {
		t.Errorf("IntersectionCount = %d, want 1", got)
	}
	if got := a.DifferenceCount(b); got != 1 {
		t.Errorf("DifferenceCount = %d, want 1", got)
	}
}

func TestMinMax(t *testing.T) {
	tests := []struct {
		name     string
		elems    []int
		min, max int
	}{
		{"empty", nil, -1, -1},
		{"single", []int{42}, 42, 42},
		{"several", []int{5, 64, 99}, 5, 99},
		{"firstAndLast", []int{0, 127}, 0, 127},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := FromSlice(128, tt.elems)
			if got := s.Min(); got != tt.min {
				t.Errorf("Min() = %d, want %d", got, tt.min)
			}
			if got := s.Max(); got != tt.max {
				t.Errorf("Max() = %d, want %d", got, tt.max)
			}
		})
	}
}

func TestNextSet(t *testing.T) {
	s := FromSlice(200, []int{5, 64, 150})
	tests := []struct {
		from, want int
	}{
		{0, 5},
		{5, 5},
		{6, 64},
		{64, 64},
		{65, 150},
		{150, 150},
		{151, -1},
		{-10, 5},
		{500, -1},
	}
	for _, tt := range tests {
		if got := s.NextSet(tt.from); got != tt.want {
			t.Errorf("NextSet(%d) = %d, want %d", tt.from, got, tt.want)
		}
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := FromSlice(100, []int{1, 2, 3, 4})
	var seen []int
	s.ForEach(func(i int) bool {
		seen = append(seen, i)
		return len(seen) < 2
	})
	if !reflect.DeepEqual(seen, []int{1, 2}) {
		t.Errorf("early-stopped ForEach saw %v", seen)
	}
}

func TestString(t *testing.T) {
	tests := []struct {
		elems []int
		want  string
	}{
		{nil, "{}"},
		{[]int{7}, "{7}"},
		{[]int{1, 2, 64}, "{1 2 64}"},
	}
	for _, tt := range tests {
		if got := FromSlice(70, tt.elems).String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

// randomSet builds a reproducible random subset of [n].
func randomSet(r *rand.Rand, n int) *Set {
	s := New(n)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 0 {
			s.Set(i)
		}
	}
	return s
}

func TestPropertyUnionCommutative(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a, b := randomSet(rr, 131), randomSet(rr, 131)
		x := a.Clone()
		x.Union(b)
		y := b.Clone()
		y.Union(a)
		return x.Equal(y)
	}
	if err := quick.Check(f, quickCfg(r)); err != nil {
		t.Error(err)
	}
}

func TestPropertyDeMorgan(t *testing.T) {
	// |a ∪ b| = |a| + |b| - |a ∩ b|, and (a\b) ∪ (a∩b) = a.
	r := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a, b := randomSet(rr, 200), randomSet(rr, 200)
		u := a.Clone()
		u.Union(b)
		if u.Count() != a.Count()+b.Count()-a.IntersectionCount(b) {
			return false
		}
		diff := a.Clone()
		diff.Subtract(b)
		inter := a.Clone()
		inter.Intersect(b)
		diff.Union(inter)
		return diff.Equal(a)
	}
	if err := quick.Check(f, quickCfg(r)); err != nil {
		t.Error(err)
	}
}

func TestPropertySliceRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a := randomSet(rr, 97)
		return FromSlice(97, a.Slice()).Equal(a)
	}
	if err := quick.Check(f, quickCfg(r)); err != nil {
		t.Error(err)
	}
}

func TestPropertySubsetAfterUnion(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a, b := randomSet(rr, 77), randomSet(rr, 77)
		u := a.Clone()
		u.Union(b)
		return a.SubsetOf(u) && b.SubsetOf(u)
	}
	if err := quick.Check(f, quickCfg(r)); err != nil {
		t.Error(err)
	}
}

func TestPropertyCountMatchesSliceLen(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a := randomSet(rr, 150)
		return a.Count() == len(a.Slice())
	}
	if err := quick.Check(f, quickCfg(r)); err != nil {
		t.Error(err)
	}
}

func quickCfg(r *rand.Rand) *quick.Config {
	return &quick.Config{MaxCount: 50, Rand: r}
}

func BenchmarkUnion(b *testing.B) {
	for _, n := range []int{64, 1024, 16384} {
		b.Run(sizeName(n), func(b *testing.B) {
			r := rand.New(rand.NewSource(7))
			x, y := randomSet(r, n), randomSet(r, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x.Union(y)
			}
		})
	}
}

func BenchmarkCount(b *testing.B) {
	for _, n := range []int{64, 1024, 16384} {
		b.Run(sizeName(n), func(b *testing.B) {
			r := rand.New(rand.NewSource(8))
			x := randomSet(r, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = x.Count()
			}
		})
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1<<20:
		return "n1M"
	case n >= 16384:
		return "n16384"
	case n >= 1024:
		return "n1024"
	default:
		return "n64"
	}
}
