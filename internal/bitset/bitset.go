// Package bitset provides dense, fixed-capacity bit vectors backed by
// uint64 words.
//
// Bitsets are the fundamental representation in this repository: the reach
// set of a process (whom its value has arrived at) and the heard set of a
// process (whose values it has received) are both subsets of [n] and are
// stored as bitsets, so that one synchronous round of the dynamic-tree
// broadcast model reduces to word-parallel unions.
//
// The zero value of Set is an empty set with capacity 0; use New for a set
// with room for n elements. Operations that combine two sets require equal
// capacity and panic otherwise — mixing capacities is a programmer error,
// not a runtime condition.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const (
	wordBits  = 64
	wordShift = 6
	wordMask  = wordBits - 1
)

// Set is a fixed-capacity bit vector. Element i is in the set iff bit
// i%64 of word i/64 is 1. Bits at positions >= n are always zero
// (maintained as an invariant by every mutating operation).
type Set struct {
	n     int
	words []uint64
}

// New returns an empty set with capacity n. n must be >= 0.
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative capacity %d", n))
	}
	return &Set{n: n, words: make([]uint64, wordsFor(n))}
}

// NewFull returns a set with capacity n containing all of 0..n-1.
func NewFull(n int) *Set {
	s := New(n)
	s.Fill()
	return s
}

// FromSlice returns a set with capacity n containing the given elements.
func FromSlice(n int, elems []int) *Set {
	s := New(n)
	for _, e := range elems {
		s.Set(e)
	}
	return s
}

func wordsFor(n int) int { return (n + wordBits - 1) / wordBits }

// Len returns the capacity of the set (the universe size n).
func (s *Set) Len() int { return s.n }

// Test reports whether element i is in the set.
func (s *Set) Test(i int) bool {
	s.check(i)
	return s.words[i>>wordShift]&(1<<(uint(i)&wordMask)) != 0
}

// Set adds element i.
func (s *Set) Set(i int) {
	s.check(i)
	s.words[i>>wordShift] |= 1 << (uint(i) & wordMask)
}

// Clear removes element i.
func (s *Set) Clear(i int) {
	s.check(i)
	s.words[i>>wordShift] &^= 1 << (uint(i) & wordMask)
}

// Flip toggles element i and reports the new membership state.
func (s *Set) Flip(i int) bool {
	s.check(i)
	s.words[i>>wordShift] ^= 1 << (uint(i) & wordMask)
	return s.Test(i)
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Count returns the number of elements in the set.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Full reports whether the set contains all of 0..n-1.
func (s *Set) Full() bool {
	if s.n == 0 {
		return true
	}
	last := len(s.words) - 1
	for i := 0; i < last; i++ {
		if s.words[i] != ^uint64(0) {
			return false
		}
	}
	return s.words[last] == lastWordMask(s.n)
}

// lastWordMask returns the mask of valid bits in the final word of a
// capacity-n set. n must be > 0.
func lastWordMask(n int) uint64 {
	r := uint(n) & wordMask
	if r == 0 {
		return ^uint64(0)
	}
	return (1 << r) - 1
}

// Fill adds every element 0..n-1.
func (s *Set) Fill() {
	if s.n == 0 {
		return
	}
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.words[len(s.words)-1] = lastWordMask(s.n)
}

// Reset removes every element.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s with the contents of o. The sets must have equal
// capacity.
func (s *Set) CopyFrom(o *Set) {
	s.same(o)
	copy(s.words, o.words)
}

func (s *Set) same(o *Set) {
	if s.n != o.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d != %d", s.n, o.n))
	}
}

// Union sets s = s ∪ o and reports whether s changed.
func (s *Set) Union(o *Set) bool {
	s.same(o)
	changed := false
	for i, w := range o.words {
		nw := s.words[i] | w
		if nw != s.words[i] {
			changed = true
			s.words[i] = nw
		}
	}
	return changed
}

// Intersect sets s = s ∩ o.
func (s *Set) Intersect(o *Set) {
	s.same(o)
	for i, w := range o.words {
		s.words[i] &= w
	}
}

// Subtract sets s = s \ o.
func (s *Set) Subtract(o *Set) {
	s.same(o)
	for i, w := range o.words {
		s.words[i] &^= w
	}
}

// Equal reports whether s and o contain exactly the same elements. Sets of
// different capacity are never equal.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range o.words {
		if s.words[i] != w {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every element of s is in o. The sets must have
// equal capacity.
func (s *Set) SubsetOf(o *Set) bool {
	s.same(o)
	for i, w := range s.words {
		if w&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s and o share at least one element.
func (s *Set) Intersects(o *Set) bool {
	s.same(o)
	for i, w := range s.words {
		if w&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// IntersectionCount returns |s ∩ o| without allocating.
func (s *Set) IntersectionCount(o *Set) int {
	s.same(o)
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w & o.words[i])
	}
	return c
}

// DifferenceCount returns |s \ o| without allocating.
func (s *Set) DifferenceCount(o *Set) int {
	s.same(o)
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w &^ o.words[i])
	}
	return c
}

// Min returns the smallest element of the set, or -1 if the set is empty.
func (s *Set) Min() int {
	for i, w := range s.words {
		if w != 0 {
			return i*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Max returns the largest element of the set, or -1 if the set is empty.
func (s *Set) Max() int {
	for i := len(s.words) - 1; i >= 0; i-- {
		if w := s.words[i]; w != 0 {
			return i*wordBits + wordBits - 1 - bits.LeadingZeros64(w)
		}
	}
	return -1
}

// NextSet returns the smallest element >= i, or -1 if none exists.
func (s *Set) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i >> wordShift
	w := s.words[wi] >> (uint(i) & wordMask)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}

// ForEach calls fn for each element in increasing order. It stops early if
// fn returns false.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Slice returns the elements of the set in increasing order.
func (s *Set) Slice() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// String renders the set as "{e1 e2 ...}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}

// Words exposes the backing words for read-only use by sibling packages
// (e.g. hashing a matrix state). The caller must not mutate the slice.
func (s *Set) Words() []uint64 { return s.words }
