package bitset

import (
	"testing"
)

// FuzzBitsetWords fuzzes the word-kernel layer against a naive per-bit
// bool-slice model: for an arbitrary capacity n (including the
// non-multiple-of-64 sizes where the tail word is partially masked) and
// arbitrary row contents, every kernel must agree with the model, rows
// must uphold the bits-beyond-n-are-zero invariant through every kernel,
// and Transpose64 must match the per-bit transpose and invert itself. The
// packed engines trust these kernels blindly on their hot paths; this is
// the harness that earns that trust on inputs no hand-written table
// covers.
func FuzzBitsetWords(f *testing.F) {
	f.Add(uint16(1), []byte{})
	f.Add(uint16(64), []byte{0xff, 0x00, 0xaa})
	f.Add(uint16(65), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add(uint16(100), []byte{0x80, 0x01, 0x55, 0xaa, 0x0f})
	f.Add(uint16(129), []byte{0xde, 0xad, 0xbe, 0xef})
	f.Add(uint16(255), []byte{0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80})

	f.Fuzz(func(t *testing.T, nRaw uint16, data []byte) {
		n := int(nRaw)%256 + 1 // 1..256: one to five words, mostly masked tails
		stride := WordsFor(n)

		// Build two rows from the fuzz bytes (little-endian, zero-padded,
		// tail-masked) plus the matching per-bit models.
		byteAt := func(i int) uint64 {
			if i < len(data) {
				return uint64(data[i])
			}
			return 0
		}
		row := func(off int) []uint64 {
			ws := make([]uint64, stride)
			for w := 0; w < stride; w++ {
				for b := 0; b < 8; b++ {
					ws[w] |= byteAt(off+8*w+b) << (8 * b)
				}
			}
			ws[stride-1] &= TailMask(n)
			return ws
		}
		a, b := row(0), row(8*stride)
		model := func(ws []uint64) []bool {
			m := make([]bool, n)
			for i := range m {
				m[i] = ws[i>>6]&(1<<(uint(i)&63)) != 0
			}
			return m
		}
		ma, mb := model(a), model(b)
		checkRow := func(op string, got []uint64, want []bool) {
			t.Helper()
			if got[stride-1]&^TailMask(n) != 0 {
				t.Fatalf("n=%d: %s violated the tail invariant: %#x", n, op, got[stride-1])
			}
			for i, w := range want {
				if got[i>>6]&(1<<(uint(i)&63)) != 0 != w {
					t.Fatalf("n=%d: %s bit %d = %v, model %v", n, op, i, !w, w)
				}
			}
		}

		or := append([]uint64(nil), a...)
		OrWords(or, b)
		wantOr := make([]bool, n)
		for i := range wantOr {
			wantOr[i] = ma[i] || mb[i]
		}
		checkRow("OrWords", or, wantOr)

		and := append([]uint64(nil), a...)
		AndWords(and, b)
		wantAnd := make([]bool, n)
		for i := range wantAnd {
			wantAnd[i] = ma[i] && mb[i]
		}
		checkRow("AndWords", and, wantAnd)

		pop, any, full := 0, false, true
		for _, v := range ma {
			if v {
				pop++
				any = true
			} else {
				full = false
			}
		}
		if got := PopWords(a); got != pop {
			t.Fatalf("n=%d: PopWords = %d, model %d", n, got, pop)
		}
		if got := AnyWords(a); got != any {
			t.Fatalf("n=%d: AnyWords = %v, model %v", n, got, any)
		}
		if got := FullWords(a, n); got != full {
			t.Fatalf("n=%d: FullWords = %v, model %v", n, got, full)
		}
		eq := true
		for i := range ma {
			if ma[i] != mb[i] {
				eq = false
				break
			}
		}
		if got := EqualWords(a, b); got != eq {
			t.Fatalf("n=%d: EqualWords = %v, model %v", n, got, eq)
		}

		fill := append([]uint64(nil), a...)
		FillWords(fill, n)
		if !FullWords(fill, n) || PopWords(fill) != n || fill[stride-1]&^TailMask(n) != 0 {
			t.Fatalf("n=%d: FillWords broke the full/masked contract: %v", n, fill)
		}
		zero := append([]uint64(nil), a...)
		ZeroWords(zero)
		if AnyWords(zero) {
			t.Fatalf("n=%d: ZeroWords left bits", n)
		}

		// The Wrap view must agree with the model bit for bit.
		s := Wrap(n, append([]uint64(nil), a...))
		if s.Count() != pop || s.Full() != full || s.Empty() == any {
			t.Fatalf("n=%d: Wrap view disagrees with kernels", n)
		}
		for i, v := range ma {
			if s.Test(i) != v {
				t.Fatalf("n=%d: Wrap bit %d = %v, model %v", n, i, s.Test(i), v)
			}
		}

		// Transpose64 on a tile built from the same bytes: per-bit transpose
		// equality, then involution back to the original.
		var tile, orig [64]uint64
		for w := 0; w < 64; w++ {
			for bb := 0; bb < 8; bb++ {
				tile[w] |= byteAt(8*w+bb) << (8 * bb)
			}
		}
		orig = tile
		Transpose64(&tile)
		for i := 0; i < 64; i++ {
			for j := 0; j < 64; j++ {
				if tile[j]&(1<<uint(i)) != 0 != (orig[i]&(1<<uint(j)) != 0) {
					t.Fatalf("Transpose64 bit (%d,%d) wrong", i, j)
				}
			}
		}
		Transpose64(&tile)
		if tile != orig {
			t.Fatal("Transpose64 is not an involution")
		}
	})
}
