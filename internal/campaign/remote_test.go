package campaign

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
)

// fakeRemote is an in-process Remote for exercising runRemote without
// HTTP: it splits cells into shards of shard trials (0 = whole cell),
// "executes" a chosen subset of them on a goroutine via ExecuteCellJob,
// and leaves the rest to the local pool.
type fakeRemote struct {
	// takes decides which offered shards the fake executes remotely
	// (i counts shards in offer order).
	takes func(i int, job CellJob) bool
	// shard is the trials-per-shard split applied to every cell.
	shard int
}

type fakeSession struct {
	mu      sync.Mutex
	order   []string
	shards  map[string][]*fakeShard
	pending int
	closed  bool
	notify  chan struct{}
}

type fakeShard struct {
	job    CellJob // bounds set to the shard's range
	lo, hi int
	remote bool // owned by the fake's executor goroutine
	done   bool
}

// shardSplit cuts a whole-cell job into shard-sized sub-range jobs,
// keeping the (0, 0) whole-cell encoding when no split happens.
func shardSplit(job CellJob, shard int) []*fakeShard {
	if shard <= 0 || shard >= job.Trials {
		return []*fakeShard{{job: job, lo: 0, hi: job.Trials}}
	}
	var out []*fakeShard
	for lo := 0; lo < job.Trials; lo += shard {
		hi := min(lo+shard, job.Trials)
		sj := job
		sj.TrialLo, sj.TrialHi = lo, hi
		out = append(out, &fakeShard{job: sj, lo: lo, hi: hi})
	}
	return out
}

func (f *fakeRemote) Open(jobs []CellJob, deliver func(key string, lo, hi int, trials [][]Measurement)) RemoteSession {
	s := &fakeSession{shards: make(map[string][]*fakeShard, len(jobs)), notify: make(chan struct{})}
	var mine []*fakeShard
	i := 0
	for _, j := range jobs {
		shards := shardSplit(j, f.shard)
		s.order = append(s.order, j.Key)
		s.shards[j.Key] = shards
		s.pending += len(shards)
		for _, sh := range shards {
			sh.remote = f.takes != nil && f.takes(i, sh.job)
			if sh.remote {
				mine = append(mine, sh)
			}
			i++
		}
	}
	go func() {
		for _, sh := range mine {
			trials, err := ExecuteCellJob(context.Background(), sh.job)
			if err != nil {
				panic(err) // test grids never fail
			}
			s.mu.Lock()
			if sh.done {
				s.mu.Unlock()
				continue
			}
			sh.done = true
			s.mu.Unlock()
			deliver(sh.job.Key, sh.lo, sh.hi, trials)
			s.mu.Lock()
			s.pending--
			close(s.notify)
			s.notify = make(chan struct{})
			s.mu.Unlock()
		}
	}()
	return s
}

func (s *fakeSession) ClaimLocal(ctx context.Context) (CellJob, bool) {
	for {
		s.mu.Lock()
		if s.closed || s.pending == 0 {
			s.mu.Unlock()
			return CellJob{}, false
		}
		for _, key := range s.order {
			for _, sh := range s.shards[key] {
				if !sh.done && !sh.remote {
					sh.remote = true // mark claimed so no other local worker takes it
					job := sh.job
					s.mu.Unlock()
					return job, true
				}
			}
		}
		notify := s.notify
		s.mu.Unlock()
		select {
		case <-ctx.Done():
			return CellJob{}, false
		case <-notify:
		}
	}
}

func (s *fakeSession) CompleteLocal(key string, lo, hi int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sh := range s.shards[key] {
		if sh.lo == lo && sh.hi == hi && !sh.done {
			sh.done = true
			s.pending--
			close(s.notify)
			s.notify = make(chan struct{})
			return true
		}
	}
	return false
}

func (s *fakeSession) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
}

func remoteTestSpec() Spec {
	return Spec{
		Name: "remote-unit",
		Scenarios: []Scenario{
			{Adversary: "random-tree"},
			{Adversary: "k-leaves", Params: map[string]any{"k": []any{2, 3}}},
		},
		Ns:     []int{6, 8},
		Trials: 4,
		Seed:   13,
	}
}

func outcomeJSON(t *testing.T, out *Outcome) string {
	t.Helper()
	var buf bytes.Buffer
	if err := out.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestRunSpecRemoteByteIdentity pins the core contract of the remote
// path: for every split of cells between the "remote" executor and the
// local pool — all remote, all local, interleaved — and with NoReuse on
// or off, the artifact is byte-identical to the plain local pipeline.
func TestRunSpecRemoteByteIdentity(t *testing.T) {
	spec := remoteTestSpec()
	want, err := RunSpec(context.Background(), spec, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := outcomeJSON(t, want)

	splits := map[string]func(i int, job CellJob) bool{
		"all-remote":  func(int, CellJob) bool { return true },
		"all-local":   func(int, CellJob) bool { return false },
		"interleaved": func(i int, _ CellJob) bool { return i%2 == 0 },
	}
	for name, takes := range splits {
		for _, noReuse := range []bool{false, true} {
			out, err := RunSpec(context.Background(), spec, Config{
				Workers: 2, Remote: &fakeRemote{takes: takes}, NoReuse: noReuse,
			})
			if err != nil {
				t.Fatalf("%s noReuse=%v: %v", name, noReuse, err)
			}
			if got := outcomeJSON(t, out); got != wantJSON {
				t.Errorf("%s noReuse=%v: artifact differs from local run:\n%s\nvs\n%s", name, noReuse, got, wantJSON)
			}
			if out.Completed != out.Jobs || out.Failed != 0 {
				t.Errorf("%s noReuse=%v: completed %d/%d, failed %d", name, noReuse, out.Completed, out.Jobs, out.Failed)
			}
		}
	}
}

// TestRunSpecRemoteShardedByteIdentity is the sharding half of the
// byte-identity battery: splitting every cell's trial range into shards
// of {1 trial, an uneven split, the whole cell}, across remote/local
// splits and worker counts, changes no artifact byte — each trial owns a
// pre-split stream, so the shard size is pure scheduling.
func TestRunSpecRemoteShardedByteIdentity(t *testing.T) {
	spec := remoteTestSpec() // Trials = 4: shard 3 splits unevenly into [0,3)+[3,4)
	want, err := RunSpec(context.Background(), spec, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := outcomeJSON(t, want)

	splits := map[string]func(i int, job CellJob) bool{
		"all-remote":  func(int, CellJob) bool { return true },
		"all-local":   func(int, CellJob) bool { return false },
		"interleaved": func(i int, _ CellJob) bool { return i%2 == 0 },
	}
	for _, shard := range []int{1, 3, 0} {
		for name, takes := range splits {
			for _, workers := range []int{1, 2} {
				out, err := RunSpec(context.Background(), spec, Config{
					Workers: workers, Remote: &fakeRemote{takes: takes, shard: shard},
				})
				if err != nil {
					t.Fatalf("shard=%d %s workers=%d: %v", shard, name, workers, err)
				}
				if got := outcomeJSON(t, out); got != wantJSON {
					t.Errorf("shard=%d %s workers=%d: artifact differs from whole-cell local run:\n%s\nvs\n%s",
						shard, name, workers, got, wantJSON)
				}
				if out.Completed != out.Jobs || out.Failed != 0 {
					t.Errorf("shard=%d %s workers=%d: completed %d/%d, failed %d",
						shard, name, workers, out.Completed, out.Jobs, out.Failed)
				}
			}
		}
	}
}

// TestRunSpecRemoteShardedPartialCheckpoint: a checkpoint covering a
// scatter of trials composes with single-trial remote shards — the
// sharded deliveries discard checkpointed positions and fill the rest,
// bytes unchanged.
func TestRunSpecRemoteShardedPartialCheckpoint(t *testing.T) {
	spec := remoteTestSpec()
	want, err := RunSpec(context.Background(), spec, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := outcomeJSON(t, want)

	jobs, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(context.Background(), jobs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	completed := map[int]JobResult{}
	for i, r := range full {
		if i%3 == 0 {
			completed[i] = r
		}
	}
	out, err := RunSpec(context.Background(), spec, Config{
		Workers:   2,
		Remote:    &fakeRemote{takes: func(int, CellJob) bool { return true }, shard: 1},
		Completed: completed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := outcomeJSON(t, out); got != wantJSON {
		t.Errorf("sharded partial-checkpoint artifact differs:\n%s\nvs\n%s", got, wantJSON)
	}
	if out.Reused != len(completed) {
		t.Errorf("Reused = %d, want %d", out.Reused, len(completed))
	}
}

// TestExecuteCellJobShard pins the worker-side shard semantics: a
// sub-range execution returns exactly the whole-cell run's slices for
// those trials (the pre-split streams make position, not company,
// determine a trial's bytes), and out-of-range bounds are errors.
func TestExecuteCellJobShard(t *testing.T) {
	spec := remoteTestSpec()
	cellJobs, err := spec.CellJobs()
	if err != nil {
		t.Fatal(err)
	}
	job := cellJobs[0]
	whole, err := ExecuteCellJob(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	shard := job
	shard.TrialLo, shard.TrialHi = 1, 3
	part, err := ExecuteCellJob(context.Background(), shard)
	if err != nil {
		t.Fatalf("ExecuteCellJob shard [1,3): %v", err)
	}
	if len(part) != 2 {
		t.Fatalf("shard [1,3) returned %d trials, want 2", len(part))
	}
	for i, ms := range part {
		if len(ms) != len(whole[1+i]) {
			t.Fatalf("shard trial %d has %d measurements, whole-cell %d", 1+i, len(ms), len(whole[1+i]))
		}
		for j := range ms {
			if ms[j] != whole[1+i][j] {
				t.Errorf("shard trial %d measurement %d = %+v, whole-cell %+v", 1+i, j, ms[j], whole[1+i][j])
			}
		}
	}
	for _, bad := range [][2]int{{-1, 2}, {2, 2}, {3, 2}, {0, job.Trials + 1}} {
		b := job
		b.TrialLo, b.TrialHi = bad[0], bad[1]
		if _, err := ExecuteCellJob(context.Background(), b); err == nil {
			t.Errorf("ExecuteCellJob with range [%d,%d) succeeded", bad[0], bad[1])
		}
	}
}

// TestRunSpecRemotePartialCheckpoint covers the splice seam: a
// checkpoint that holds some trials of a cell composes with a remote
// delivery of the whole cell — checkpointed results win their indexes,
// remote results fill the rest, bytes unchanged.
func TestRunSpecRemotePartialCheckpoint(t *testing.T) {
	spec := remoteTestSpec()
	want, err := RunSpec(context.Background(), spec, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := outcomeJSON(t, want)

	// Run once locally to harvest genuine results, then replay a partial
	// scatter of them as the checkpoint: every third job.
	jobs, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(context.Background(), jobs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	completed := map[int]JobResult{}
	for i, r := range full {
		if i%3 == 0 {
			completed[i] = r
		}
	}
	fresh := 0
	out, err := RunSpec(context.Background(), spec, Config{
		Workers:   2,
		Remote:    &fakeRemote{takes: func(int, CellJob) bool { return true }},
		Completed: completed,
		OnResult:  func(JobResult) { fresh++ }, // serialized by runRemote's mutex
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := outcomeJSON(t, out); got != wantJSON {
		t.Errorf("partial-checkpoint remote artifact differs:\n%s\nvs\n%s", got, wantJSON)
	}
	if out.Reused != len(completed) {
		t.Errorf("Reused = %d, want %d", out.Reused, len(completed))
	}
	if fresh != out.Jobs-len(completed) {
		t.Errorf("OnResult saw %d fresh jobs, want %d", fresh, out.Jobs-len(completed))
	}
}

// TestRunSpecRemoteCancellation: cancelling a remote-backed run returns
// the cancellation error and marks unfinished jobs skipped, like the
// local pool does.
func TestRunSpecRemoteCancellation(t *testing.T) {
	spec := remoteTestSpec()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before any work
	out, err := RunSpec(ctx, spec, Config{
		Workers: 1, Remote: &fakeRemote{takes: func(int, CellJob) bool { return false }},
	})
	if err == nil || !strings.Contains(err.Error(), "cancelled") {
		t.Fatalf("err = %v, want cancellation", err)
	}
	if out == nil || out.Completed != 0 {
		t.Fatalf("outcome = %+v, want zero completed", out)
	}
}

// TestCellJobsSelfContained: every CellJob's embedded spec recompiles —
// anywhere — to exactly its own cell, with the same content address the
// cache uses, and ExecuteCellJob rejects tampered addresses.
func TestCellJobsSelfContained(t *testing.T) {
	spec := remoteTestSpec()
	cellJobs, err := spec.CellJobs()
	if err != nil {
		t.Fatal(err)
	}
	_, cells, _, err := spec.compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(cellJobs) != len(cells) {
		t.Fatalf("CellJobs returned %d jobs for %d cells", len(cellJobs), len(cells))
	}
	for i, j := range cellJobs {
		if j.Key != cells[i].Key || j.Cell != cells[i].Cell || j.Trials != len(cells[i].JobIdx) {
			t.Errorf("cell job %d = %+v does not match plan %+v", i, j, cells[i])
		}
		trials, err := ExecuteCellJob(context.Background(), j)
		if err != nil {
			t.Fatalf("ExecuteCellJob(%s): %v", j.Cell, err)
		}
		if len(trials) != j.Trials {
			t.Errorf("ExecuteCellJob(%s) returned %d trials, want %d", j.Cell, len(trials), j.Trials)
		}
	}
	// Tampered content address: the worker-side handshake must refuse.
	bad := cellJobs[0]
	bad.Key = "0000000000000000"
	if _, err := ExecuteCellJob(context.Background(), bad); err == nil || !strings.Contains(err.Error(), "content address mismatch") {
		t.Errorf("tampered ExecuteCellJob err = %v, want content address mismatch", err)
	}
	// An invalid embedded spec is an error, not a panic.
	bad = cellJobs[0]
	bad.Spec.Trials = 0
	if _, err := ExecuteCellJob(context.Background(), bad); err == nil {
		t.Error("ExecuteCellJob with invalid spec succeeded")
	}
	if _, err := (&Spec{}).CellJobs(); err == nil {
		t.Error("CellJobs on an empty spec succeeded")
	}
}
