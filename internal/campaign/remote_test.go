package campaign

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
)

// fakeRemote is an in-process Remote for exercising runRemote without
// HTTP: it "executes" a chosen subset of cells on a goroutine via
// ExecuteCellJob and leaves the rest to the local pool.
type fakeRemote struct {
	// takes decides which offered cells the fake executes remotely.
	takes func(i int, job CellJob) bool
}

type fakeSession struct {
	mu      sync.Mutex
	order   []string
	cells   map[string]*fakeCell
	pending int
	closed  bool
	notify  chan struct{}
}

type fakeCell struct {
	job    CellJob
	remote bool // owned by the fake's executor goroutine
	done   bool
}

func (f *fakeRemote) Open(jobs []CellJob, deliver func(key string, trials [][]Measurement)) RemoteSession {
	s := &fakeSession{cells: make(map[string]*fakeCell, len(jobs)), pending: len(jobs), notify: make(chan struct{})}
	var mine []CellJob
	for i, j := range jobs {
		c := &fakeCell{job: j, remote: f.takes != nil && f.takes(i, j)}
		s.order = append(s.order, j.Key)
		s.cells[j.Key] = c
		if c.remote {
			mine = append(mine, j)
		}
	}
	go func() {
		for _, j := range mine {
			trials, err := ExecuteCellJob(context.Background(), j)
			if err != nil {
				panic(err) // test grids never fail
			}
			s.mu.Lock()
			c := s.cells[j.Key]
			if c.done {
				s.mu.Unlock()
				continue
			}
			c.done = true
			s.mu.Unlock()
			deliver(j.Key, trials)
			s.mu.Lock()
			s.pending--
			close(s.notify)
			s.notify = make(chan struct{})
			s.mu.Unlock()
		}
	}()
	return s
}

func (s *fakeSession) ClaimLocal(ctx context.Context) (CellJob, bool) {
	for {
		s.mu.Lock()
		if s.closed || s.pending == 0 {
			s.mu.Unlock()
			return CellJob{}, false
		}
		for _, key := range s.order {
			c := s.cells[key]
			if !c.done && !c.remote {
				c.remote = true // mark claimed so no other local worker takes it
				job := c.job
				s.mu.Unlock()
				return job, true
			}
		}
		notify := s.notify
		s.mu.Unlock()
		select {
		case <-ctx.Done():
			return CellJob{}, false
		case <-notify:
		}
	}
}

func (s *fakeSession) CompleteLocal(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.cells[key]
	if c == nil || c.done {
		return false
	}
	c.done = true
	s.pending--
	close(s.notify)
	s.notify = make(chan struct{})
	return true
}

func (s *fakeSession) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
}

func remoteTestSpec() Spec {
	return Spec{
		Name: "remote-unit",
		Scenarios: []Scenario{
			{Adversary: "random-tree"},
			{Adversary: "k-leaves", Params: map[string]any{"k": []any{2, 3}}},
		},
		Ns:     []int{6, 8},
		Trials: 4,
		Seed:   13,
	}
}

func outcomeJSON(t *testing.T, out *Outcome) string {
	t.Helper()
	var buf bytes.Buffer
	if err := out.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestRunSpecRemoteByteIdentity pins the core contract of the remote
// path: for every split of cells between the "remote" executor and the
// local pool — all remote, all local, interleaved — and with NoReuse on
// or off, the artifact is byte-identical to the plain local pipeline.
func TestRunSpecRemoteByteIdentity(t *testing.T) {
	spec := remoteTestSpec()
	want, err := RunSpec(context.Background(), spec, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := outcomeJSON(t, want)

	splits := map[string]func(i int, job CellJob) bool{
		"all-remote":  func(int, CellJob) bool { return true },
		"all-local":   func(int, CellJob) bool { return false },
		"interleaved": func(i int, _ CellJob) bool { return i%2 == 0 },
	}
	for name, takes := range splits {
		for _, noReuse := range []bool{false, true} {
			out, err := RunSpec(context.Background(), spec, Config{
				Workers: 2, Remote: &fakeRemote{takes: takes}, NoReuse: noReuse,
			})
			if err != nil {
				t.Fatalf("%s noReuse=%v: %v", name, noReuse, err)
			}
			if got := outcomeJSON(t, out); got != wantJSON {
				t.Errorf("%s noReuse=%v: artifact differs from local run:\n%s\nvs\n%s", name, noReuse, got, wantJSON)
			}
			if out.Completed != out.Jobs || out.Failed != 0 {
				t.Errorf("%s noReuse=%v: completed %d/%d, failed %d", name, noReuse, out.Completed, out.Jobs, out.Failed)
			}
		}
	}
}

// TestRunSpecRemotePartialCheckpoint covers the splice seam: a
// checkpoint that holds some trials of a cell composes with a remote
// delivery of the whole cell — checkpointed results win their indexes,
// remote results fill the rest, bytes unchanged.
func TestRunSpecRemotePartialCheckpoint(t *testing.T) {
	spec := remoteTestSpec()
	want, err := RunSpec(context.Background(), spec, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := outcomeJSON(t, want)

	// Run once locally to harvest genuine results, then replay a partial
	// scatter of them as the checkpoint: every third job.
	jobs, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(context.Background(), jobs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	completed := map[int]JobResult{}
	for i, r := range full {
		if i%3 == 0 {
			completed[i] = r
		}
	}
	fresh := 0
	out, err := RunSpec(context.Background(), spec, Config{
		Workers:   2,
		Remote:    &fakeRemote{takes: func(int, CellJob) bool { return true }},
		Completed: completed,
		OnResult:  func(JobResult) { fresh++ }, // serialized by runRemote's mutex
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := outcomeJSON(t, out); got != wantJSON {
		t.Errorf("partial-checkpoint remote artifact differs:\n%s\nvs\n%s", got, wantJSON)
	}
	if out.Reused != len(completed) {
		t.Errorf("Reused = %d, want %d", out.Reused, len(completed))
	}
	if fresh != out.Jobs-len(completed) {
		t.Errorf("OnResult saw %d fresh jobs, want %d", fresh, out.Jobs-len(completed))
	}
}

// TestRunSpecRemoteCancellation: cancelling a remote-backed run returns
// the cancellation error and marks unfinished jobs skipped, like the
// local pool does.
func TestRunSpecRemoteCancellation(t *testing.T) {
	spec := remoteTestSpec()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before any work
	out, err := RunSpec(ctx, spec, Config{
		Workers: 1, Remote: &fakeRemote{takes: func(int, CellJob) bool { return false }},
	})
	if err == nil || !strings.Contains(err.Error(), "cancelled") {
		t.Fatalf("err = %v, want cancellation", err)
	}
	if out == nil || out.Completed != 0 {
		t.Fatalf("outcome = %+v, want zero completed", out)
	}
}

// TestCellJobsSelfContained: every CellJob's embedded spec recompiles —
// anywhere — to exactly its own cell, with the same content address the
// cache uses, and ExecuteCellJob rejects tampered addresses.
func TestCellJobsSelfContained(t *testing.T) {
	spec := remoteTestSpec()
	cellJobs, err := spec.CellJobs()
	if err != nil {
		t.Fatal(err)
	}
	_, cells, _, err := spec.compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(cellJobs) != len(cells) {
		t.Fatalf("CellJobs returned %d jobs for %d cells", len(cellJobs), len(cells))
	}
	for i, j := range cellJobs {
		if j.Key != cells[i].Key || j.Cell != cells[i].Cell || j.Trials != len(cells[i].JobIdx) {
			t.Errorf("cell job %d = %+v does not match plan %+v", i, j, cells[i])
		}
		trials, err := ExecuteCellJob(context.Background(), j)
		if err != nil {
			t.Fatalf("ExecuteCellJob(%s): %v", j.Cell, err)
		}
		if len(trials) != j.Trials {
			t.Errorf("ExecuteCellJob(%s) returned %d trials, want %d", j.Cell, len(trials), j.Trials)
		}
	}
	// Tampered content address: the worker-side handshake must refuse.
	bad := cellJobs[0]
	bad.Key = "0000000000000000"
	if _, err := ExecuteCellJob(context.Background(), bad); err == nil || !strings.Contains(err.Error(), "content address mismatch") {
		t.Errorf("tampered ExecuteCellJob err = %v, want content address mismatch", err)
	}
	// An invalid embedded spec is an error, not a panic.
	bad = cellJobs[0]
	bad.Spec.Trials = 0
	if _, err := ExecuteCellJob(context.Background(), bad); err == nil {
		t.Error("ExecuteCellJob with invalid spec succeeded")
	}
	if _, err := (&Spec{}).CellJobs(); err == nil {
		t.Error("CellJobs on an empty spec succeeded")
	}
}
