package cache

import "dyntreecast/internal/metrics"

// Cache instruments (DESIGN.md §3f), labeled by backend so a daemon
// running a dir cache next to a test's memory cache exposes separate
// series. The decorator pattern keeps the backends themselves oblivious:
// Instrument wraps any Cache, and an unwrapped cache costs literally
// nothing.
var (
	mRequests = metrics.Default.CounterVec("campaign_cache_requests_total",
		"Cell-cache lookups by backend and result (hit or miss).", "backend", "result")
	mPuts = metrics.Default.CounterVec("campaign_cache_puts_total",
		"Cell-cache stores by backend.", "backend")
	mErrors = metrics.Default.CounterVec("campaign_cache_errors_total",
		"Cell-cache backend failures (Get or Put) by backend.", "backend")
	mDeletes = metrics.Default.CounterVec("campaign_cache_deletes_total",
		"Cell-cache evictions (corruption heals and GC) by backend.", "backend")
)

// counting is the instrumented decorator around a Cache.
type counting struct {
	inner                             Cache
	hits, misses, puts, errs, deletes *metrics.Counter
}

// Instrument wraps c so every Get is counted as a hit or miss and every
// Put as a store, under the given backend label ("dir", "memory", …).
// Purely observational: bytes in and out are untouched, and errors pass
// through after being counted, so a wrapped cache is indistinguishable
// to the campaign layer — artifacts cannot change.
func Instrument(backend string, c Cache) Cache {
	return &counting{
		inner:   c,
		hits:    mRequests.With(backend, "hit"),
		misses:  mRequests.With(backend, "miss"),
		puts:    mPuts.With(backend),
		errs:    mErrors.With(backend),
		deletes: mDeletes.With(backend),
	}
}

// Get counts the lookup and delegates.
func (c *counting) Get(key string) ([]byte, bool, error) {
	data, ok, err := c.inner.Get(key)
	switch {
	case err != nil:
		c.errs.Inc()
	case ok:
		c.hits.Inc()
	default:
		c.misses.Inc()
	}
	return data, ok, err
}

// Put counts the store and delegates.
func (c *counting) Put(key string, data []byte) error {
	err := c.inner.Put(key, data)
	if err != nil {
		c.errs.Inc()
	} else {
		c.puts.Inc()
	}
	return err
}

// Delete counts the eviction and delegates when the wrapped backend
// supports deletion; wrapping must not add capabilities, so a
// delete-less backend stays delete-less (silently, matching the
// campaign layer's best-effort corruption heal).
func (c *counting) Delete(key string) error {
	d, ok := c.inner.(Deleter)
	if !ok {
		return nil
	}
	err := d.Delete(key)
	if err != nil {
		c.errs.Inc()
	} else {
		c.deletes.Inc()
	}
	return err
}
