package cache

import (
	"bytes"
	"errors"
	"testing"
)

// TestInstrumentCounts: the decorator classifies every Get as hit or
// miss, every Put as a store, and passes bytes through unmodified.
func TestInstrumentCounts(t *testing.T) {
	c := Instrument("unit-mem", NewMemory())

	if err := c.Put("k1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	data, ok, err := c.Get("k1")
	if err != nil || !ok || !bytes.Equal(data, []byte("v1")) {
		t.Fatalf("Get(k1) = %q, %v, %v", data, ok, err)
	}
	if _, ok, _ := c.Get("absent"); ok {
		t.Fatal("Get(absent) reported a hit")
	}

	if got := mRequests.With("unit-mem", "hit").Value(); got != 1 {
		t.Errorf("hits = %d, want 1", got)
	}
	if got := mRequests.With("unit-mem", "miss").Value(); got != 1 {
		t.Errorf("misses = %d, want 1", got)
	}
	if got := mPuts.With("unit-mem").Value(); got != 1 {
		t.Errorf("puts = %d, want 1", got)
	}
	if got := mErrors.With("unit-mem").Value(); got != 0 {
		t.Errorf("errors = %d, want 0", got)
	}
}

// failing is a Cache whose operations always fail.
type failing struct{ err error }

func (f failing) Get(string) ([]byte, bool, error) { return nil, false, f.err }
func (f failing) Put(string, []byte) error         { return f.err }

// TestInstrumentErrors: backend failures count as errors — not hits,
// misses, or puts — and the error passes through to the caller intact.
func TestInstrumentErrors(t *testing.T) {
	wantErr := errors.New("disk gone")
	c := Instrument("unit-bad", failing{wantErr})

	if _, _, err := c.Get("k"); !errors.Is(err, wantErr) {
		t.Fatalf("Get error = %v, want %v", err, wantErr)
	}
	if err := c.Put("k", nil); !errors.Is(err, wantErr) {
		t.Fatalf("Put error = %v, want %v", err, wantErr)
	}
	if got := mErrors.With("unit-bad").Value(); got != 2 {
		t.Errorf("errors = %d, want 2", got)
	}
	for _, series := range []struct {
		name string
		got  uint64
	}{
		{"hit", mRequests.With("unit-bad", "hit").Value()},
		{"miss", mRequests.With("unit-bad", "miss").Value()},
		{"put", mPuts.With("unit-bad").Value()},
	} {
		if series.got != 0 {
			t.Errorf("%s = %d, want 0", series.name, series.got)
		}
	}
}
