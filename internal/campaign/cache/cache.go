// Package cache provides the content-addressed store behind the campaign
// layer's cell cache (DESIGN.md §3b).
//
// The campaign runner keys each grid cell's results by a stable hash of
// everything that determines them — adversary, n, k, goal, round budget,
// trial count, seed, and the engine version — so re-running a spec whose
// grid overlaps an earlier run recomputes only the genuinely new cells.
// This package knows nothing about campaigns: it stores opaque bytes
// under hex-digest keys. Two backends are provided: Memory (for tests and
// single-process reuse) and Dir (a filesystem store that survives across
// processes and is safe for concurrent writers via atomic rename).
//
// Both backends are safe for concurrent use. A cache is strictly an
// optimization: the determinism contract of the campaign layer guarantees
// a hit and a recomputation produce identical bytes, so losing or wiping
// a cache never changes an artifact.
package cache

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Cache stores opaque entries under content-derived keys. Get reports a
// miss with ok == false and reserves errors for backend failures; Put
// overwrites silently (entries are content-addressed, so overwriting can
// only rewrite identical data).
type Cache interface {
	Get(key string) (data []byte, ok bool, err error)
	Put(key string, data []byte) error
}

// Deleter is the optional eviction side of a Cache. The campaign layer
// uses it to heal corruption — a cell entry that fails to decode is
// deleted so the backend stops serving the bad bytes — and the results
// warehouse (internal/store) uses it for retention GC. Deleting a
// missing key is not an error: a delete is a statement that the entry
// must not exist, not that it did.
type Deleter interface {
	Delete(key string) error
}

// Memory is an in-process Cache backed by a map.
type Memory struct {
	mu sync.Mutex
	m  map[string][]byte
}

// NewMemory returns an empty in-memory cache.
func NewMemory() *Memory {
	return &Memory{m: make(map[string][]byte)}
}

// Get returns the entry stored under key, if any.
func (c *Memory) Get(key string) ([]byte, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	data, ok := c.m[key]
	if !ok {
		return nil, false, nil
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, true, nil
}

// Put stores data under key.
func (c *Memory) Put(key string, data []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	stored := make([]byte, len(data))
	copy(stored, data)
	c.m[key] = stored
	return nil
}

// Delete removes the entry stored under key, if any.
func (c *Memory) Delete(key string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.m, key)
	return nil
}

// Len reports the number of stored entries.
func (c *Memory) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Dir is a filesystem Cache: entry key k lives at <root>/<k[:2]>/<k>.
// Writes go through a temp file plus rename, so concurrent writers and
// readers (including other processes sharing the directory) never observe
// a torn entry.
type Dir struct {
	root string
}

// NewDir returns a filesystem cache rooted at root, creating it if
// needed.
func NewDir(root string) (*Dir, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("cache: creating %s: %w", root, err)
	}
	return &Dir{root: root}, nil
}

// Root returns the cache directory.
func (c *Dir) Root() string { return c.root }

func (c *Dir) path(key string) (string, error) {
	if err := checkKey(key); err != nil {
		return "", err
	}
	return filepath.Join(c.root, key[:2], key), nil
}

// checkKey accepts only lowercase-hex digests of reasonable length: the
// keys the campaign layer derives. Anything else (and in particular
// anything that could traverse paths) is rejected.
func checkKey(key string) error {
	if len(key) < 16 || len(key) > 128 {
		return fmt.Errorf("cache: key %q is not a digest", key)
	}
	for _, r := range key {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return fmt.Errorf("cache: key %q is not lowercase hex", key)
		}
	}
	return nil
}

// Get returns the entry stored under key, if any.
func (c *Dir) Get(key string) ([]byte, bool, error) {
	p, err := c.path(key)
	if err != nil {
		return nil, false, err
	}
	data, err := os.ReadFile(p)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("cache: reading %s: %w", key, err)
	}
	return data, true, nil
}

// Delete removes the entry stored under key. A missing entry is not an
// error, so concurrent deleters (a GC sweep racing a corruption heal)
// both succeed.
func (c *Dir) Delete(key string) error {
	p, err := c.path(key)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("cache: deleting %s: %w", key, err)
	}
	return nil
}

// Touch marks the entry as recently used by bumping its mtime — the LRU
// signal the results warehouse's retention GC (internal/store) sorts
// evictions by. A missing entry is ignored: a concurrent eviction
// between Get and Touch is indistinguishable from a miss.
func (c *Dir) Touch(key string) error {
	p, err := c.path(key)
	if err != nil {
		return err
	}
	now := time.Now()
	if err := os.Chtimes(p, now, now); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("cache: touching %s: %w", key, err)
	}
	return nil
}

// Put stores data under key atomically.
func (c *Dir) Put(key string, data []byte) error {
	p, err := c.path(key)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("cache: creating shard dir: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), "."+key+".tmp*")
	if err != nil {
		return fmt.Errorf("cache: temp file: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: writing %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: closing %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: publishing %s: %w", key, err)
	}
	return nil
}
