package cache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

const key1 = "0123456789abcdef0123456789abcdef"

func backends(t *testing.T) map[string]Cache {
	t.Helper()
	dir, err := NewDir(filepath.Join(t.TempDir(), "cells"))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Cache{"memory": NewMemory(), "dir": dir}
}

func TestGetPutRoundTrip(t *testing.T) {
	for name, c := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if _, ok, err := c.Get(key1); ok || err != nil {
				t.Fatalf("fresh cache: ok=%v err=%v", ok, err)
			}
			want := []byte(`{"cell":"x","trials":[[1]]}`)
			if err := c.Put(key1, want); err != nil {
				t.Fatal(err)
			}
			got, ok, err := c.Get(key1)
			if err != nil || !ok || !bytes.Equal(got, want) {
				t.Fatalf("Get = %q, %v, %v; want %q", got, ok, err, want)
			}
			// Overwrite is allowed and last-write-wins.
			want2 := []byte("rewritten")
			if err := c.Put(key1, want2); err != nil {
				t.Fatal(err)
			}
			if got, _, _ := c.Get(key1); !bytes.Equal(got, want2) {
				t.Fatalf("after overwrite Get = %q", got)
			}
		})
	}
}

func TestDirRejectsNonDigestKeys(t *testing.T) {
	c, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "short", "../../../../etc/passwd", strings.Repeat("z", 32), strings.Repeat("A", 32)} {
		if err := c.Put(key, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted", key)
		}
		if _, _, err := c.Get(key); err == nil {
			t.Errorf("Get(%q) accepted", key)
		}
	}
}

func TestDirSurvivesReopen(t *testing.T) {
	root := filepath.Join(t.TempDir(), "cells")
	c1, err := NewDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Put(key1, []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	c2, err := NewDir(root)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := c2.Get(key1)
	if err != nil || !ok || string(got) != "persisted" {
		t.Fatalf("reopened Get = %q, %v, %v", got, ok, err)
	}
}

func TestDirLeavesNoTempFiles(t *testing.T) {
	root := t.TempDir()
	c, err := NewDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(key1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	var stray []string
	filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.Contains(info.Name(), ".tmp") {
			stray = append(stray, path)
		}
		return nil
	})
	if len(stray) != 0 {
		t.Errorf("temp files left behind: %v", stray)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	for name, c := range backends(t) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					key := fmt.Sprintf("%032x", g)
					want := []byte(fmt.Sprintf("entry-%d", g))
					for i := 0; i < 50; i++ {
						if err := c.Put(key, want); err != nil {
							t.Error(err)
							return
						}
						got, ok, err := c.Get(key)
						if err != nil || !ok || !bytes.Equal(got, want) {
							t.Errorf("goroutine %d: Get = %q, %v, %v", g, got, ok, err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

func TestMemoryLenAndDirRoot(t *testing.T) {
	m := NewMemory()
	if m.Len() != 0 {
		t.Errorf("fresh memory cache Len = %d", m.Len())
	}
	key := strings.Repeat("ab", 32)
	if err := m.Put(key, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 {
		t.Errorf("Len after one Put = %d", m.Len())
	}
	root := filepath.Join(t.TempDir(), "cells")
	d, err := NewDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if d.Root() != root {
		t.Errorf("Root() = %q, want %q", d.Root(), root)
	}
}

func TestDeleteRemovesEntries(t *testing.T) {
	for name, c := range backends(t) {
		t.Run(name, func(t *testing.T) {
			d, ok := c.(Deleter)
			if !ok {
				t.Fatalf("%s backend does not implement Deleter", name)
			}
			// Deleting a missing key is a no-op, not an error.
			if err := d.Delete(key1); err != nil {
				t.Fatalf("deleting absent key: %v", err)
			}
			if err := c.Put(key1, []byte("data")); err != nil {
				t.Fatal(err)
			}
			if err := d.Delete(key1); err != nil {
				t.Fatal(err)
			}
			if _, ok, err := c.Get(key1); ok || err != nil {
				t.Fatalf("entry survived delete: ok=%v err=%v", ok, err)
			}
		})
	}
}

func TestDirDeleteAndTouchRejectBadKeys(t *testing.T) {
	dir, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := dir.Delete("../escape"); err == nil {
		t.Error("Delete accepted a non-digest key")
	}
	if err := dir.Touch("../escape"); err == nil {
		t.Error("Touch accepted a non-digest key")
	}
}

func TestDirTouchBumpsMtime(t *testing.T) {
	dir, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Touching a missing entry is a no-op (a concurrent eviction must not
	// turn a read hit into an error).
	if err := dir.Touch(key1); err != nil {
		t.Fatalf("touching absent key: %v", err)
	}
	if err := dir.Put(key1, []byte("data")); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir.Root(), key1[:2], key1)
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(p, old, old); err != nil {
		t.Fatal(err)
	}
	if err := dir.Touch(key1); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(p)
	if err != nil {
		t.Fatal(err)
	}
	if !st.ModTime().After(old.Add(30 * time.Minute)) {
		t.Errorf("mtime not bumped: %v", st.ModTime())
	}
}

func TestInstrumentForwardsDelete(t *testing.T) {
	dir, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	wrapped := Instrument("delete-test", dir)
	d, ok := wrapped.(Deleter)
	if !ok {
		t.Fatal("instrumented cache lost the Deleter capability")
	}
	if err := wrapped.Put(key1, []byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete(key1); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := dir.Get(key1); ok {
		t.Error("delete did not reach the wrapped backend")
	}
	if got := mDeletes.With("delete-test").Value(); got != 1 {
		t.Errorf("campaign_cache_deletes_total = %d, want 1", got)
	}
	// A Deleter-less backend stays delete-less but does not error.
	plain := Instrument("delete-test-mem", deleteless{NewMemory()})
	if err := plain.(Deleter).Delete(key1); err != nil {
		t.Fatal(err)
	}
}

// deleteless hides Memory's Delete to model a backend without one.
type deleteless struct{ inner *Memory }

func (d deleteless) Get(key string) ([]byte, bool, error) { return d.inner.Get(key) }
func (d deleteless) Put(key string, data []byte) error    { return d.inner.Put(key, data) }
