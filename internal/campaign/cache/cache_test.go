package cache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

const key1 = "0123456789abcdef0123456789abcdef"

func backends(t *testing.T) map[string]Cache {
	t.Helper()
	dir, err := NewDir(filepath.Join(t.TempDir(), "cells"))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Cache{"memory": NewMemory(), "dir": dir}
}

func TestGetPutRoundTrip(t *testing.T) {
	for name, c := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if _, ok, err := c.Get(key1); ok || err != nil {
				t.Fatalf("fresh cache: ok=%v err=%v", ok, err)
			}
			want := []byte(`{"cell":"x","trials":[[1]]}`)
			if err := c.Put(key1, want); err != nil {
				t.Fatal(err)
			}
			got, ok, err := c.Get(key1)
			if err != nil || !ok || !bytes.Equal(got, want) {
				t.Fatalf("Get = %q, %v, %v; want %q", got, ok, err, want)
			}
			// Overwrite is allowed and last-write-wins.
			want2 := []byte("rewritten")
			if err := c.Put(key1, want2); err != nil {
				t.Fatal(err)
			}
			if got, _, _ := c.Get(key1); !bytes.Equal(got, want2) {
				t.Fatalf("after overwrite Get = %q", got)
			}
		})
	}
}

func TestDirRejectsNonDigestKeys(t *testing.T) {
	c, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "short", "../../../../etc/passwd", strings.Repeat("z", 32), strings.Repeat("A", 32)} {
		if err := c.Put(key, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted", key)
		}
		if _, _, err := c.Get(key); err == nil {
			t.Errorf("Get(%q) accepted", key)
		}
	}
}

func TestDirSurvivesReopen(t *testing.T) {
	root := filepath.Join(t.TempDir(), "cells")
	c1, err := NewDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Put(key1, []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	c2, err := NewDir(root)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := c2.Get(key1)
	if err != nil || !ok || string(got) != "persisted" {
		t.Fatalf("reopened Get = %q, %v, %v", got, ok, err)
	}
}

func TestDirLeavesNoTempFiles(t *testing.T) {
	root := t.TempDir()
	c, err := NewDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(key1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	var stray []string
	filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.Contains(info.Name(), ".tmp") {
			stray = append(stray, path)
		}
		return nil
	})
	if len(stray) != 0 {
		t.Errorf("temp files left behind: %v", stray)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	for name, c := range backends(t) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					key := fmt.Sprintf("%032x", g)
					want := []byte(fmt.Sprintf("entry-%d", g))
					for i := 0; i < 50; i++ {
						if err := c.Put(key, want); err != nil {
							t.Error(err)
							return
						}
						got, ok, err := c.Get(key)
						if err != nil || !ok || !bytes.Equal(got, want) {
							t.Errorf("goroutine %d: Get = %q, %v, %v", g, got, ok, err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

func TestMemoryLenAndDirRoot(t *testing.T) {
	m := NewMemory()
	if m.Len() != 0 {
		t.Errorf("fresh memory cache Len = %d", m.Len())
	}
	key := strings.Repeat("ab", 32)
	if err := m.Put(key, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 {
		t.Errorf("Len after one Put = %d", m.Len())
	}
	root := filepath.Join(t.TempDir(), "cells")
	d, err := NewDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if d.Root() != root {
		t.Errorf("Root() = %q, want %q", d.Root(), root)
	}
}
