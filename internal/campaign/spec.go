package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"dyntreecast/internal/adversary"
	"dyntreecast/internal/core"
	"dyntreecast/internal/gossip"
	"dyntreecast/internal/rng"
	"dyntreecast/internal/tree"
)

// Spec declaratively describes a campaign: the full cross product of
// Adversaries × Ns (× Ks for the k-parameterized adversaries) × Trials,
// run toward Goal, seeded by Seed. A Spec plus its seed fully determines
// the campaign's Outcome, independent of worker count.
type Spec struct {
	Name        string   `json:"name,omitempty"`
	Adversaries []string `json:"adversaries"`
	Ns          []int    `json:"ns"`
	Ks          []int    `json:"ks,omitempty"` // consumed only by k-parameterized adversaries
	Trials      int      `json:"trials"`
	Seed        uint64   `json:"seed"`
	Goal        string   `json:"goal,omitempty"`       // "broadcast" (default) or "gossip"
	MaxRounds   int      `json:"max_rounds,omitempty"` // 0 = the engine default n²+1
}

// Factory builds a named adversary for one job. NeedsK marks the
// restricted families that consume the spec's Ks axis.
type Factory struct {
	Name   string
	NeedsK bool
	New    func(n, k int, src *rng.Source) core.Adversary
}

// Registry returns the adversaries a Spec may name, in canonical order
// (the order also fixes job compile order). The first six are the
// portfolio of experiment.Portfolio; the last two are the Zeiner et al.
// restricted families.
func Registry() []Factory {
	return []Factory{
		{Name: "static-path", New: func(n, _ int, _ *rng.Source) core.Adversary {
			return adversary.Static{Tree: tree.IdentityPath(n)}
		}},
		{Name: "random-tree", New: func(_, _ int, src *rng.Source) core.Adversary {
			return adversary.Random{Src: src}
		}},
		{Name: "random-path", New: func(_, _ int, src *rng.Source) core.Adversary {
			return adversary.RandomPath{Src: src}
		}},
		{Name: "ascending-path", New: func(int, int, *rng.Source) core.Adversary {
			return adversary.AscendingPath{}
		}},
		{Name: "block-leader", New: func(int, int, *rng.Source) core.Adversary {
			return adversary.BlockLeader{}
		}},
		{Name: "min-gain", New: func(int, int, *rng.Source) core.Adversary {
			return adversary.MinGain{}
		}},
		{Name: "k-leaves", NeedsK: true, New: func(_, k int, src *rng.Source) core.Adversary {
			return adversary.KLeaves{K: k, Src: src}
		}},
		{Name: "k-inner", NeedsK: true, New: func(_, k int, src *rng.Source) core.Adversary {
			return adversary.KInner{K: k, Src: src}
		}},
	}
}

// Adversaries returns the registry names in canonical order.
func Adversaries() []string {
	reg := Registry()
	names := make([]string, len(reg))
	for i, f := range reg {
		names[i] = f.Name
	}
	return names
}

func factoryByName(name string) (Factory, bool) {
	for _, f := range Registry() {
		if f.Name == name {
			return f, true
		}
	}
	return Factory{}, false
}

// CellKey is the aggregation key of one grid point. k < 0 means the
// adversary has no k axis.
func CellKey(adv string, n, k int) string {
	if k < 0 {
		return fmt.Sprintf("%s/n=%d", adv, n)
	}
	return fmt.Sprintf("%s/n=%d/k=%d", adv, n, k)
}

// Validate reports the first structural problem of the spec, or nil.
func (s *Spec) Validate() error {
	if len(s.Adversaries) == 0 {
		return fmt.Errorf("campaign: spec needs at least one adversary")
	}
	needsK := false
	for _, name := range s.Adversaries {
		f, ok := factoryByName(name)
		if !ok {
			return fmt.Errorf("campaign: unknown adversary %q (known: %v)", name, Adversaries())
		}
		needsK = needsK || f.NeedsK
	}
	if needsK && len(s.Ks) == 0 {
		return fmt.Errorf("campaign: spec names a k-parameterized adversary but has no ks")
	}
	if len(s.Ns) == 0 {
		return fmt.Errorf("campaign: spec needs at least one n")
	}
	for _, n := range s.Ns {
		if n < 1 {
			return fmt.Errorf("campaign: n must be >= 1, got %d", n)
		}
	}
	for _, k := range s.Ks {
		if k < 1 {
			return fmt.Errorf("campaign: k must be >= 1, got %d", k)
		}
	}
	if s.Trials < 1 {
		return fmt.Errorf("campaign: trials must be >= 1, got %d", s.Trials)
	}
	switch s.Goal {
	case "", "broadcast", "gossip":
	default:
		return fmt.Errorf("campaign: unknown goal %q (want broadcast or gossip)", s.Goal)
	}
	if s.MaxRounds < 0 {
		return fmt.Errorf("campaign: max_rounds must be >= 0, got %d", s.MaxRounds)
	}
	return nil
}

func (s *Spec) goal() core.Goal {
	if s.Goal == "gossip" {
		return core.Gossip
	}
	return core.Broadcast
}

// Compile validates the spec and expands its grid into jobs. The grid is
// walked in a fixed nested order (adversary, n, k, trial) and each job's
// random source is split from the root source at this point, so the job
// list — including every job's stream — is a pure function of the spec.
// Grid points where k is infeasible (k > n−1) are skipped, mirroring the
// restricted experiments.
func (s *Spec) Compile() ([]Job, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(s.Seed)
	goal := s.goal()
	var opts []core.Option
	if s.MaxRounds > 0 {
		opts = append(opts, core.WithMaxRounds(s.MaxRounds))
	}
	var jobs []Job
	for _, name := range s.Adversaries {
		f, _ := factoryByName(name)
		ks := []int{-1}
		if f.NeedsK {
			ks = s.Ks
		}
		for _, n := range s.Ns {
			for _, k := range ks {
				if f.NeedsK && (k < 1 || k > n-1) {
					continue
				}
				cell := CellKey(name, n, k)
				for trial := 0; trial < s.Trials; trial++ {
					jobs = append(jobs, Job{
						Index: len(jobs),
						Src:   root.Split(),
						Run:   runGridPoint(f, n, k, cell, goal, opts),
					})
				}
			}
		}
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("campaign: spec compiles to an empty grid (every k infeasible?)")
	}
	return jobs, nil
}

func runGridPoint(f Factory, n, k int, cell string, goal core.Goal, opts []core.Option) func(context.Context, *rng.Source) ([]Measurement, error) {
	return func(_ context.Context, src *rng.Source) ([]Measurement, error) {
		adv := f.New(n, k, src)
		var rounds int
		var err error
		if goal == core.Gossip {
			rounds, err = gossip.Time(n, adv, opts...)
		} else {
			rounds, err = core.BroadcastTime(n, adv, opts...)
		}
		if err != nil {
			return nil, fmt.Errorf("campaign: %s: %w", cell, err)
		}
		return []Measurement{{Cell: cell, Value: float64(rounds)}}, nil
	}
}

// Outcome is the aggregated, machine-diffable result of a campaign run.
// It deliberately carries no timestamps or host details: two runs of the
// same spec produce byte-identical JSON regardless of worker count.
type Outcome struct {
	Spec      Spec        `json:"spec"`
	Jobs      int         `json:"jobs"`
	Completed int         `json:"completed"`
	Failed    int         `json:"failed"`
	Cells     []CellStats `json:"cells"`
	Errors    []string    `json:"errors,omitempty"`
}

// RunSpec compiles and executes the spec on cfg's worker pool and
// aggregates per-cell statistics. Job failures do not abort the campaign:
// they are counted and recorded (in job-index order) in Outcome.Errors.
// The returned error is non-nil only for an invalid spec or a cancelled
// context; on cancellation the partial Outcome is still returned.
func RunSpec(ctx context.Context, spec Spec, cfg Config) (*Outcome, error) {
	jobs, err := spec.Compile()
	if err != nil {
		return nil, err
	}
	results, runErr := Run(ctx, jobs, cfg)
	out := &Outcome{Spec: spec, Jobs: len(jobs), Cells: Aggregate(results)}
	for _, r := range results {
		switch {
		case r.Skipped:
		case r.Err != nil:
			out.Failed++
			out.Errors = append(out.Errors, r.Err.Error())
		default:
			out.Completed++
		}
	}
	return out, runErr
}

// LoadSpec reads a JSON Spec from r, rejecting unknown fields so typos in
// hand-written campaign files fail loudly.
func LoadSpec(r io.Reader) (Spec, error) {
	var spec Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return Spec{}, fmt.Errorf("campaign: decoding spec: %w", err)
	}
	return spec, nil
}

// LoadSpecFile reads a JSON Spec from path ("-" means stdin).
func LoadSpecFile(path string) (Spec, error) {
	if path == "-" {
		return LoadSpec(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return Spec{}, fmt.Errorf("campaign: opening spec: %w", err)
	}
	defer f.Close()
	return LoadSpec(f)
}
