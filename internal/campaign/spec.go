package campaign

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"dyntreecast/internal/adversary"
	"dyntreecast/internal/core"
	"dyntreecast/internal/gossip"
	"dyntreecast/internal/rng"
	"dyntreecast/internal/tree"
)

// EngineVersion names the simulation semantics that cell results depend
// on. It participates in every cache key and checkpoint hash, so bumping
// it (whenever engines, adversaries, or stream derivation change results)
// invalidates stale stored cells instead of silently serving them.
const EngineVersion = "dyntreecast-engine/2"

// Spec declaratively describes a campaign: the full cross product of
// Adversaries × Ns (× Ks for the k-parameterized adversaries) × Trials,
// run toward Goal, seeded by Seed. A Spec plus its seed fully determines
// the campaign's Outcome, independent of worker count.
type Spec struct {
	Name        string   `json:"name,omitempty"`
	Adversaries []string `json:"adversaries"`
	Ns          []int    `json:"ns"`
	Ks          []int    `json:"ks,omitempty"` // consumed only by k-parameterized adversaries
	Trials      int      `json:"trials"`
	Seed        uint64   `json:"seed"`
	Goal        string   `json:"goal,omitempty"`       // "broadcast" (default) or "gossip"
	MaxRounds   int      `json:"max_rounds,omitempty"` // 0 = the engine default n²+1
}

// Factory builds a named adversary for one job. NeedsK marks the
// restricted families that consume the spec's Ks axis.
type Factory struct {
	Name   string
	NeedsK bool
	New    func(n, k int, src *rng.Source) core.Adversary
}

// Registry returns the adversaries a Spec may name, in canonical order
// (the order also fixes job compile order). The first six are the
// portfolio of experiment.Portfolio; the last two are the Zeiner et al.
// restricted families.
func Registry() []Factory {
	return []Factory{
		{Name: "static-path", New: func(n, _ int, _ *rng.Source) core.Adversary {
			return adversary.Static{Tree: tree.IdentityPath(n)}
		}},
		{Name: "random-tree", New: func(_, _ int, src *rng.Source) core.Adversary {
			return adversary.Random{Src: src}
		}},
		{Name: "random-path", New: func(_, _ int, src *rng.Source) core.Adversary {
			return adversary.RandomPath{Src: src}
		}},
		{Name: "ascending-path", New: func(int, int, *rng.Source) core.Adversary {
			return adversary.AscendingPath{}
		}},
		{Name: "block-leader", New: func(int, int, *rng.Source) core.Adversary {
			return adversary.BlockLeader{}
		}},
		{Name: "min-gain", New: func(int, int, *rng.Source) core.Adversary {
			return adversary.MinGain{}
		}},
		{Name: "k-leaves", NeedsK: true, New: func(_, k int, src *rng.Source) core.Adversary {
			return adversary.KLeaves{K: k, Src: src}
		}},
		{Name: "k-inner", NeedsK: true, New: func(_, k int, src *rng.Source) core.Adversary {
			return adversary.KInner{K: k, Src: src}
		}},
	}
}

// Adversaries returns the registry names in canonical order.
func Adversaries() []string {
	reg := Registry()
	names := make([]string, len(reg))
	for i, f := range reg {
		names[i] = f.Name
	}
	return names
}

func factoryByName(name string) (Factory, bool) {
	for _, f := range Registry() {
		if f.Name == name {
			return f, true
		}
	}
	return Factory{}, false
}

// CellKey is the aggregation key of one grid point. k < 0 means the
// adversary has no k axis.
func CellKey(adv string, n, k int) string {
	if k < 0 {
		return fmt.Sprintf("%s/n=%d", adv, n)
	}
	return fmt.Sprintf("%s/n=%d/k=%d", adv, n, k)
}

// Validate reports the first structural problem of the spec, or nil.
func (s *Spec) Validate() error {
	if len(s.Adversaries) == 0 {
		return fmt.Errorf("campaign: spec needs at least one adversary")
	}
	needsK := false
	for _, name := range s.Adversaries {
		f, ok := factoryByName(name)
		if !ok {
			return fmt.Errorf("campaign: unknown adversary %q (known: %v)", name, Adversaries())
		}
		needsK = needsK || f.NeedsK
	}
	if needsK && len(s.Ks) == 0 {
		return fmt.Errorf("campaign: spec names a k-parameterized adversary but has no ks")
	}
	if len(s.Ns) == 0 {
		return fmt.Errorf("campaign: spec needs at least one n")
	}
	for _, n := range s.Ns {
		if n < 1 {
			return fmt.Errorf("campaign: n must be >= 1, got %d", n)
		}
	}
	for _, k := range s.Ks {
		if k < 1 {
			return fmt.Errorf("campaign: k must be >= 1, got %d", k)
		}
	}
	if s.Trials < 1 {
		return fmt.Errorf("campaign: trials must be >= 1, got %d", s.Trials)
	}
	switch s.Goal {
	case "", "broadcast", "gossip":
	default:
		return fmt.Errorf("campaign: unknown goal %q (want broadcast or gossip)", s.Goal)
	}
	if s.MaxRounds < 0 {
		return fmt.Errorf("campaign: max_rounds must be >= 0, got %d", s.MaxRounds)
	}
	return nil
}

func (s *Spec) goal() core.Goal {
	if s.Goal == "gossip" {
		return core.Gossip
	}
	return core.Broadcast
}

// goalName returns the normalized goal for identity strings.
func (s *Spec) goalName() string {
	if s.Goal == "" {
		return "broadcast"
	}
	return s.Goal
}

// cellIdentity is the canonical string of everything that determines one
// cell's trial results: the engine version, the campaign seed, the goal
// and round budget, and the cell coordinates. It deliberately excludes
// the trial count — trial streams are split serially from the cell root,
// so the trials of a smaller campaign are a prefix of a larger one's.
func (s *Spec) cellIdentity(adv string, n, k int) string {
	return fmt.Sprintf("%s|seed=%d|goal=%s|maxr=%d|adv=%s|n=%d|k=%d",
		EngineVersion, s.Seed, s.goalName(), s.MaxRounds, adv, n, k)
}

// cellSeed derives the root seed of one cell's random streams by hashing
// the cell identity. Streams therefore depend only on the cell and the
// campaign seed — not on where the cell sits in the grid — which is what
// makes content-addressed caching of cells sound: the same cell in two
// different specs (same seed) produces the same results.
func (s *Spec) cellSeed(adv string, n, k int) uint64 {
	sum := sha256.Sum256([]byte(s.cellIdentity(adv, n, k)))
	return binary.BigEndian.Uint64(sum[:8])
}

// cellCacheKey is the content address of one fully-run cell: the cell
// identity plus the trial count, hashed. See DESIGN.md §3b.
func (s *Spec) cellCacheKey(adv string, n, k int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s|trials=%d", s.cellIdentity(adv, n, k), s.Trials)))
	return hex.EncodeToString(sum[:])
}

// cellPlan records one grid cell of a compiled spec: its coordinates, its
// cache key, and the indexes of its jobs in trial order.
type cellPlan struct {
	Cell   string // CellKey(adv, n, k)
	Key    string // content address (cellCacheKey)
	JobIdx []int  // job indexes, one per trial, in trial order
}

// Compile validates the spec and expands its grid into jobs. The grid is
// walked in a fixed nested order (adversary, n, k, trial). Each cell's
// random streams are derived content-addressed — a root source seeded by
// a hash of (engine version, seed, goal, round budget, adversary, n, k),
// split serially in trial order — so every cell's results are a pure
// function of the spec's seed and the cell's own coordinates, independent
// of what else the grid contains. Grid points where k is infeasible
// (k > n−1) are skipped, mirroring the restricted experiments.
func (s *Spec) Compile() ([]Job, error) {
	jobs, _, err := s.compile()
	return jobs, err
}

// jobCount returns the number of jobs the spec compiles to, without
// building closures or splitting sources — cheap enough to call on every
// checkpoint open even for million-job grids.
func (s *Spec) jobCount() (int, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	total := 0
	for _, name := range s.Adversaries {
		f, _ := factoryByName(name)
		ks := []int{-1}
		if f.NeedsK {
			ks = s.Ks
		}
		for _, n := range s.Ns {
			for _, k := range ks {
				if f.NeedsK && (k < 1 || k > n-1) {
					continue
				}
				total += s.Trials
			}
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("campaign: spec compiles to an empty grid (every k infeasible?)")
	}
	return total, nil
}

func (s *Spec) compile() ([]Job, []cellPlan, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	goal := s.goal()
	var opts []core.Option
	if s.MaxRounds > 0 {
		opts = append(opts, core.WithMaxRounds(s.MaxRounds))
	}
	var jobs []Job
	var cells []cellPlan
	for _, name := range s.Adversaries {
		f, _ := factoryByName(name)
		ks := []int{-1}
		if f.NeedsK {
			ks = s.Ks
		}
		for _, n := range s.Ns {
			for _, k := range ks {
				if f.NeedsK && (k < 1 || k > n-1) {
					continue
				}
				cell := CellKey(name, n, k)
				plan := cellPlan{Cell: cell, Key: s.cellCacheKey(name, n, k)}
				root := rng.New(s.cellSeed(name, n, k))
				for trial := 0; trial < s.Trials; trial++ {
					plan.JobIdx = append(plan.JobIdx, len(jobs))
					jobs = append(jobs, Job{
						Index: len(jobs),
						Cell:  cell,
						Src:   root.Split(),
						Run:   runGridPoint(f, n, k, cell, goal, opts),
					})
				}
				cells = append(cells, plan)
			}
		}
	}
	if len(jobs) == 0 {
		return nil, nil, fmt.Errorf("campaign: spec compiles to an empty grid (every k infeasible?)")
	}
	return jobs, cells, nil
}

func runGridPoint(f Factory, n, k int, cell string, goal core.Goal, opts []core.Option) func(context.Context, *rng.Source) ([]Measurement, error) {
	return func(_ context.Context, src *rng.Source) ([]Measurement, error) {
		adv := f.New(n, k, src)
		var rounds int
		var err error
		if goal == core.Gossip {
			rounds, err = gossip.Time(n, adv, opts...)
		} else {
			rounds, err = core.BroadcastTime(n, adv, opts...)
		}
		if err != nil {
			return nil, fmt.Errorf("campaign: %s: %w", cell, err)
		}
		return []Measurement{{Cell: cell, Value: float64(rounds)}}, nil
	}
}

// Outcome is the aggregated, machine-diffable result of a campaign run.
// It deliberately carries no timestamps or host details: two runs of the
// same spec produce byte-identical JSON regardless of worker count.
type Outcome struct {
	Spec      Spec        `json:"spec"`
	Jobs      int         `json:"jobs"`
	Completed int         `json:"completed"`
	Failed    int         `json:"failed"`
	Cells     []CellStats `json:"cells"`
	Errors    []string    `json:"errors,omitempty"`

	// Job-accounting fields, populated by RunSpec and excluded from the
	// JSON artifact so that warm-cache and resumed runs stay byte-identical
	// to cold ones. Executed + CacheHits + Reused == Completed + Failed
	// for an uncancelled run.
	Executed  int `json:"-"` // jobs actually run by the worker pool
	CacheHits int `json:"-"` // jobs satisfied from Config.Cache
	Reused    int `json:"-"` // jobs satisfied from Config.Completed (checkpoint)
}

// cellEntry is the JSON value stored in the cell cache: all of a cell's
// per-trial measurements, in trial order.
type cellEntry struct {
	Cell   string          `json:"cell"`
	Trials [][]Measurement `json:"trials"`
}

// RunSpec compiles and executes the spec on cfg's worker pool and
// aggregates per-cell statistics. Job failures do not abort the campaign:
// they are counted and recorded (in job-index order) in Outcome.Errors.
// The returned error is non-nil only for an invalid spec, a cache backend
// failure, or a cancelled context; on cancellation the partial Outcome is
// still returned.
//
// When cfg.Cache is set, each cell whose content address is present in
// the cache is served from it (its jobs never reach the pool), and each
// cell computed fresh and fully successful is stored back. When
// cfg.Completed holds checkpointed results, those jobs are reused
// likewise. Either way the aggregated Outcome — and its JSON artifact —
// is byte-identical to an uncached, uninterrupted run, because results
// are observed in job-index order regardless of provenance.
func RunSpec(ctx context.Context, spec Spec, cfg Config) (*Outcome, error) {
	jobs, cells, err := spec.compile()
	if err != nil {
		return nil, err
	}
	// Copy so the cache pass below can add entries without mutating the
	// caller's map. Run is the single splice point: it ignores
	// out-of-range indexes, so only in-range entries count as reused.
	completed := make(map[int]JobResult, len(cfg.Completed))
	reused := 0
	for idx, r := range cfg.Completed {
		completed[idx] = r
		if idx >= 0 && idx < len(jobs) {
			reused++
		}
	}
	cacheHits := 0
	var misses []cellPlan // cells to store after a fresh computation
	if cfg.Cache != nil {
		for _, c := range cells {
			if covered(completed, c.JobIdx) {
				continue // fully checkpointed; no cache involvement needed
			}
			data, ok, err := cfg.Cache.Get(c.Key)
			if err != nil {
				return nil, fmt.Errorf("campaign: cache get %s: %w", c.Cell, err)
			}
			if !ok {
				misses = append(misses, c)
				continue
			}
			var ent cellEntry
			if err := json.Unmarshal(data, &ent); err != nil || len(ent.Trials) != len(c.JobIdx) {
				// A torn or foreign entry is treated as a miss; the fresh
				// computation will overwrite it.
				misses = append(misses, c)
				continue
			}
			for ti, idx := range c.JobIdx {
				if _, have := completed[idx]; have {
					continue
				}
				completed[idx] = JobResult{Index: idx, Measurements: ent.Trials[ti]}
				cacheHits++
			}
		}
	}
	runCfg := cfg
	runCfg.Completed = completed
	results, runErr := Run(ctx, jobs, runCfg)
	if cfg.Cache != nil && runErr == nil {
		for _, c := range misses {
			ent := cellEntry{Cell: c.Cell, Trials: make([][]Measurement, len(c.JobIdx))}
			storable := true
			for ti, idx := range c.JobIdx {
				r := results[idx]
				if r.Skipped || r.Err != nil {
					storable = false
					break
				}
				ent.Trials[ti] = r.Measurements
			}
			if !storable {
				continue
			}
			data, err := json.Marshal(ent)
			if err != nil {
				return nil, fmt.Errorf("campaign: encoding cache entry %s: %w", c.Cell, err)
			}
			if err := cfg.Cache.Put(c.Key, data); err != nil {
				return nil, fmt.Errorf("campaign: cache put %s: %w", c.Cell, err)
			}
		}
	}
	out := &Outcome{
		Spec: spec, Jobs: len(jobs), Cells: Aggregate(results),
		CacheHits: cacheHits, Reused: reused,
	}
	for _, r := range results {
		switch {
		case r.Skipped:
		case r.Err != nil:
			out.Failed++
			out.Errors = append(out.Errors, r.Err.Error())
		default:
			out.Completed++
		}
	}
	out.Executed = out.Completed + out.Failed - cacheHits - reused
	return out, runErr
}

// covered reports whether every index in idxs is present in completed.
func covered(completed map[int]JobResult, idxs []int) bool {
	for _, idx := range idxs {
		if _, ok := completed[idx]; !ok {
			return false
		}
	}
	return true
}

// LoadSpec reads a JSON Spec from r, rejecting unknown fields so typos in
// hand-written campaign files fail loudly.
func LoadSpec(r io.Reader) (Spec, error) {
	var spec Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return Spec{}, fmt.Errorf("campaign: decoding spec: %w", err)
	}
	return spec, nil
}

// LoadSpecFile reads a JSON Spec from path ("-" means stdin).
func LoadSpecFile(path string) (Spec, error) {
	if path == "-" {
		return LoadSpec(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return Spec{}, fmt.Errorf("campaign: opening spec: %w", err)
	}
	defer f.Close()
	return LoadSpec(f)
}
