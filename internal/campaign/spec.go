package campaign

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"dyntreecast/internal/campaign/cache"
	"dyntreecast/internal/core"
	"dyntreecast/internal/gossip"
	"dyntreecast/internal/rng"
)

// EngineVersion names the simulation semantics that cell results depend
// on. It participates in every cache key and checkpoint hash, so bumping
// it (whenever engines, adversaries, or stream derivation change results)
// invalidates stale stored cells instead of silently serving them.
// Version 3 marks spec schema v2: cell identities hash canonicalized
// scenario parameters instead of the old closed adversary/k form.
const EngineVersion = "dyntreecast-engine/3"

// SpecVersion is the current spec schema version: the scenario form.
// Specs with Version 0 or 1 may use the legacy adversaries/ks fields,
// which Canonical converts into scenarios.
const SpecVersion = 2

// Spec declaratively describes a campaign: the cross product of
// Scenarios × Ns × Trials, run toward Goal, seeded by Seed. A Spec plus
// its seed fully determines the campaign's Outcome, independent of
// worker count.
//
// Two schema forms are accepted (the Version field selects; see
// Canonical):
//
//   - scenario form (Version 2, or 0 with Scenarios set): each Scenario
//     names a registered adversary family with a JSON parameter
//     assignment; array-valued params expand as axes;
//   - legacy form (Version 1, or 0 with Adversaries set): a list of
//     family names plus one shared Ks axis consumed by the families
//     declaring a required "k" param. Canonical rewrites it into
//     scenarios, so both spellings of a grid share cache keys,
//     checkpoints, and artifacts byte for byte.
type Spec struct {
	Version     int        `json:"version,omitempty"`
	Name        string     `json:"name,omitempty"`
	Scenarios   []Scenario `json:"scenarios,omitempty"`
	Adversaries []string   `json:"adversaries,omitempty"` // legacy form
	Ks          []int      `json:"ks,omitempty"`          // legacy form's shared k axis
	Ns          []int      `json:"ns"`
	Trials      int        `json:"trials"`
	Seed        uint64     `json:"seed"`
	Goal        string     `json:"goal,omitempty"`       // "broadcast" (default) or "gossip"
	MaxRounds   int        `json:"max_rounds,omitempty"` // 0 = the engine default n²+1
}

// CellKey is the aggregation key of one simple grid point, shared with
// the experiment harness's hand-built grids. k < 0 means no k axis. Cells
// of compiled scenario specs follow the same shape with every declared
// param appended ("k-leaves/n=16/k=2").
func CellKey(adv string, n, k int) string {
	if k < 0 {
		return fmt.Sprintf("%s/n=%d", adv, n)
	}
	return fmt.Sprintf("%s/n=%d/k=%d", adv, n, k)
}

// Canonical validates the spec and returns its canonical form: Version
// set to SpecVersion, the legacy adversaries/ks fields rewritten into
// scenarios, every scenario ground (axes expanded in declaration order,
// defaults filled, values normalized). Canonicalization is idempotent,
// and every equivalent spelling of a grid — legacy or scenario, axis
// list or expanded — converges to the same canonical spec, which is why
// they share cache keys, checkpoint hashes, and artifact bytes.
func (s *Spec) Canonical() (Spec, error) {
	canon, _, err := s.canonical()
	return canon, err
}

func (s *Spec) canonical() (Spec, []groundScenario, error) {
	scenarios, err := s.scenarioForm()
	if err != nil {
		return Spec{}, nil, err
	}
	var grounds []groundScenario
	for _, sc := range scenarios {
		g, err := expandScenario(sc)
		if err != nil {
			return Spec{}, nil, err
		}
		grounds = append(grounds, g...)
	}
	if len(s.Ns) == 0 {
		return Spec{}, nil, fmt.Errorf("campaign: spec needs at least one n")
	}
	for _, n := range s.Ns {
		if n < 1 {
			return Spec{}, nil, fmt.Errorf("campaign: n must be >= 1, got %d", n)
		}
	}
	if s.Trials < 1 {
		return Spec{}, nil, fmt.Errorf("campaign: trials must be >= 1, got %d", s.Trials)
	}
	switch s.Goal {
	case "", "broadcast", "gossip":
	default:
		return Spec{}, nil, fmt.Errorf("campaign: unknown goal %q (want broadcast or gossip)", s.Goal)
	}
	if s.MaxRounds < 0 {
		return Spec{}, nil, fmt.Errorf("campaign: max_rounds must be >= 0, got %d", s.MaxRounds)
	}
	canon := *s
	canon.Version = SpecVersion
	canon.Adversaries, canon.Ks = nil, nil
	canon.Scenarios = make([]Scenario, len(grounds))
	for i, g := range grounds {
		canon.Scenarios[i] = g.scenario()
	}
	return canon, grounds, nil
}

// scenarioForm resolves which schema form the spec uses and returns its
// scenarios (converting the legacy fields if needed).
func (s *Spec) scenarioForm() ([]Scenario, error) {
	switch {
	case s.Version < 0 || s.Version > SpecVersion:
		return nil, fmt.Errorf("campaign: unsupported spec version %d (this engine speaks <= %d)", s.Version, SpecVersion)
	case s.Version == 1 && len(s.Scenarios) > 0:
		return nil, fmt.Errorf("campaign: spec version 1 cannot carry scenarios (use version 2 or drop the version field)")
	case s.Version == SpecVersion && (len(s.Adversaries) > 0 || len(s.Ks) > 0):
		return nil, fmt.Errorf("campaign: spec version 2 uses scenarios, not adversaries/ks")
	case len(s.Scenarios) > 0 && (len(s.Adversaries) > 0 || len(s.Ks) > 0):
		return nil, fmt.Errorf("campaign: spec mixes scenarios with legacy adversaries/ks; use one form")
	case len(s.Scenarios) > 0:
		return s.Scenarios, nil
	case len(s.Adversaries) == 0:
		return nil, fmt.Errorf("campaign: spec needs at least one scenario (or a legacy adversaries list)")
	}
	// Legacy form: one scenario per name; families that require a "k"
	// param receive the shared Ks axis.
	for _, k := range s.Ks {
		if k < 1 {
			return nil, fmt.Errorf("campaign: k must be >= 1, got %d", k)
		}
	}
	scenarios := make([]Scenario, 0, len(s.Adversaries))
	ksAxis := make([]any, len(s.Ks))
	for i, k := range s.Ks {
		ksAxis[i] = k
	}
	for _, name := range s.Adversaries {
		f, ok := familyByName(name)
		if !ok {
			return nil, fmt.Errorf("campaign: unknown adversary %q (known: %v)", name, Adversaries())
		}
		if requiresK(f) {
			if len(ksAxis) == 0 {
				return nil, fmt.Errorf("campaign: spec names the k-parameterized adversary %q but has no ks", name)
			}
			scenarios = append(scenarios, Scenario{Adversary: name, Params: map[string]any{"k": ksAxis}})
			continue
		}
		if missing := requiredParams(f); len(missing) > 0 {
			return nil, fmt.Errorf("campaign: adversary %q requires params %v; use the scenario form", name, missing)
		}
		scenarios = append(scenarios, Scenario{Adversary: name})
	}
	return scenarios, nil
}

// requiresK reports whether the family consumes the legacy shared Ks
// axis: it declares a required param named "k".
func requiresK(f Family) bool {
	for _, p := range f.Params {
		if p.Name == "k" && p.Default == nil {
			return true
		}
	}
	return false
}

// requiredParams lists the family's params with no default, other than
// the legacy-bridged "k".
func requiredParams(f Family) []string {
	var out []string
	for _, p := range f.Params {
		if p.Default == nil && p.Name != "k" {
			out = append(out, p.Name)
		}
	}
	return out
}

// Validate reports the first structural problem of the spec, or nil.
func (s *Spec) Validate() error {
	_, err := s.Canonical()
	return err
}

func (s *Spec) goal() core.Goal {
	if s.Goal == "gossip" {
		return core.Gossip
	}
	return core.Broadcast
}

// goalName returns the normalized goal for identity strings.
func (s *Spec) goalName() string {
	if s.Goal == "" {
		return "broadcast"
	}
	return s.Goal
}

// cellIdentity is the canonical string of everything that determines one
// cell's trial results: the engine version, the campaign seed, the goal
// and round budget, and the cell coordinates — the ground scenario's
// canonical form (family name + sorted-key params JSON) and n. It
// deliberately excludes the trial count — trial streams are split
// serially from the cell root, so the trials of a smaller campaign are a
// prefix of a larger one's.
func (s *Spec) cellIdentity(g groundScenario, n int) string {
	return fmt.Sprintf("%s|seed=%d|goal=%s|maxr=%d|scenario=%s|n=%d",
		EngineVersion, s.Seed, s.goalName(), s.MaxRounds, g.canon, n)
}

// cellSeed derives the root seed of one cell's random streams by hashing
// the cell identity. Streams therefore depend only on the cell and the
// campaign seed — not on where the cell sits in the grid — which is what
// makes content-addressed caching of cells sound: the same cell in two
// different specs (same seed) produces the same results.
func (s *Spec) cellSeed(g groundScenario, n int) uint64 {
	sum := sha256.Sum256([]byte(s.cellIdentity(g, n)))
	return binary.BigEndian.Uint64(sum[:8])
}

// cellCacheKey is the content address of one fully-run cell: the cell
// identity plus the trial count, hashed. See DESIGN.md §3b.
func (s *Spec) cellCacheKey(g groundScenario, n int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s|trials=%d", s.cellIdentity(g, n), s.Trials)))
	return hex.EncodeToString(sum[:])
}

// cellPlan records one grid cell of a compiled spec: its coordinates, its
// cache key, and the indexes of its jobs in trial order. Scenario and N
// are the cell's canonical coordinates, kept so the remote layer can
// rebuild the cell as a self-contained single-cell spec (see cellJob).
type cellPlan struct {
	Cell     string   // display key (groundScenario.cellName)
	Key      string   // content address (cellCacheKey)
	Scenario Scenario // canonical ground scenario of the cell
	N        int      // the cell's n coordinate
	JobIdx   []int    // job indexes, one per trial, in trial order
}

// Compile validates the spec and expands its grid into jobs. The grid is
// walked in a fixed nested order (scenario, n, trial), scenarios in
// canonical order. Each cell's random streams are derived
// content-addressed — a root source seeded by a hash of (engine version,
// seed, goal, round budget, canonical scenario, n), split serially in
// trial order — so every cell's results are a pure function of the
// spec's seed and the cell's own coordinates, independent of what else
// the grid contains. Grid points the family reports infeasible (e.g.
// k > n−1 for the restricted families) are skipped.
func (s *Spec) Compile() ([]Job, error) {
	jobs, _, _, err := s.compile()
	return jobs, err
}

// errEmptyGrid is the shared construction of the "nothing to run" error,
// used by jobCount and compile so the two paths cannot drift.
func errEmptyGrid() error {
	return fmt.Errorf("campaign: spec compiles to an empty grid (every scenario infeasible?)")
}

// jobCount returns the number of jobs the spec compiles to, without
// building closures or splitting sources — cheap enough to call on every
// checkpoint open even for million-job grids.
func (s *Spec) jobCount() (int, error) {
	canon, grounds, err := s.canonical()
	if err != nil {
		return 0, err
	}
	total := 0
	for _, g := range grounds {
		for _, n := range canon.Ns {
			if g.feasible(n) {
				total += canon.Trials
			}
		}
	}
	if total == 0 {
		return 0, errEmptyGrid()
	}
	return total, nil
}

func (s *Spec) compile() ([]Job, []cellPlan, Spec, error) {
	canon, grounds, err := s.canonical()
	if err != nil {
		return nil, nil, Spec{}, err
	}
	goal := canon.goal()
	var jobs []Job
	var cells []cellPlan
	for _, g := range grounds {
		for _, n := range canon.Ns {
			if !g.feasible(n) {
				continue
			}
			cell := g.cellName(n)
			plan := cellPlan{Cell: cell, Key: canon.cellCacheKey(g, n), Scenario: g.scenario(), N: n}
			root := rng.New(canon.cellSeed(g, n))
			for trial := 0; trial < canon.Trials; trial++ {
				plan.JobIdx = append(plan.JobIdx, len(jobs))
				jobs = append(jobs, Job{
					Index:    len(jobs),
					Cell:     cell,
					Src:      root.Split(),
					Run:      runGridPoint(g, n, cell, goal, canon.MaxRounds),
					RunArena: runGridPointPooled(g, n, cell, goal, canon.MaxRounds),
				})
			}
			cells = append(cells, plan)
		}
	}
	if len(jobs) == 0 {
		return nil, nil, Spec{}, errEmptyGrid()
	}
	return jobs, cells, canon, nil
}

// runGridPoint is the reference per-trial closure: a fresh adversary and
// a fresh engine per job, exactly the pre-batching pipeline. The pool
// uses it when Config.NoReuse is set; runGridPointPooled must match it
// result for result — both derive their engine configuration from the
// same (goal, maxRounds) pair so the two paths cannot drift.
func runGridPoint(g groundScenario, n int, cell string, goal core.Goal, maxRounds int) func(context.Context, *rng.Source) ([]Measurement, error) {
	var opts []core.Option
	if maxRounds > 0 {
		opts = append(opts, core.WithMaxRounds(maxRounds))
	}
	return func(_ context.Context, src *rng.Source) ([]Measurement, error) {
		adv, err := g.family.New(n, g.params, src)
		if err != nil {
			return nil, fmt.Errorf("campaign: %s: %w", cell, err)
		}
		var rounds int
		if goal == core.Gossip {
			rounds, err = gossip.Time(n, adv, opts...)
		} else {
			rounds, err = core.BroadcastTime(n, adv, opts...)
		}
		if err != nil {
			return nil, fmt.Errorf("campaign: %s: %w", cell, err)
		}
		return []Measurement{{Cell: cell, Value: float64(rounds)}}, nil
	}
}

// runGridPointPooled is the batched-pipeline closure: the trial runs on
// the worker's pooled Runner, and families declaring NewReusable share
// one adversary (with its per-n scratch) across the cell's trials via
// Arena.AdversaryFor + Reset. Round counts and error strings match
// runGridPoint exactly, so the two paths emit byte-identical artifacts.
func runGridPointPooled(g groundScenario, n int, cell string, goal core.Goal, maxRounds int) func(context.Context, *rng.Source, *Arena) ([]Measurement, error) {
	return func(_ context.Context, src *rng.Source, a *Arena) ([]Measurement, error) {
		var adv core.Adversary
		var err error
		if g.family.NewReusable != nil {
			adv, err = a.AdversaryFor(cell, src, func() (ReusableAdversary, error) {
				return g.family.NewReusable(n, g.params)
			})
		} else {
			adv, err = g.family.New(n, g.params, src)
		}
		if err != nil {
			return nil, fmt.Errorf("campaign: %s: %w", cell, err)
		}
		a.Runner.MaxRounds = maxRounds
		rounds, err := a.Runner.Run(n, adv, goal)
		if err != nil {
			return nil, fmt.Errorf("campaign: %s: %w", cell, err)
		}
		return []Measurement{{Cell: cell, Value: float64(rounds)}}, nil
	}
}

// Outcome is the aggregated, machine-diffable result of a campaign run.
// It deliberately carries no timestamps or host details: two runs of the
// same spec produce byte-identical JSON regardless of worker count. The
// embedded Spec is the canonical form, so every equivalent spelling of a
// grid — legacy or scenario — emits identical artifact bytes.
type Outcome struct {
	Spec      Spec        `json:"spec"`
	Jobs      int         `json:"jobs"`
	Completed int         `json:"completed"`
	Failed    int         `json:"failed"`
	Cells     []CellStats `json:"cells"`
	Errors    []string    `json:"errors,omitempty"`

	// Job-accounting fields, populated by RunSpec and excluded from the
	// JSON artifact so that warm-cache and resumed runs stay byte-identical
	// to cold ones. Executed + CacheHits + Reused == Completed + Failed
	// for an uncancelled run.
	Executed  int `json:"-"` // jobs actually run by the worker pool
	CacheHits int `json:"-"` // jobs satisfied from Config.Cache
	Reused    int `json:"-"` // jobs satisfied from Config.Completed (checkpoint)
}

// cellEntry is the JSON value stored in the cell cache: all of a cell's
// per-trial measurements, in trial order.
type cellEntry struct {
	Cell   string          `json:"cell"`
	Trials [][]Measurement `json:"trials"`
}

// RunSpec compiles and executes the spec on cfg's worker pool and
// aggregates per-cell statistics. Job failures do not abort the campaign:
// they are counted and recorded (in job-index order) in Outcome.Errors.
// The returned error is non-nil only for an invalid spec, a cache backend
// failure, or a cancelled context; on cancellation the partial Outcome is
// still returned.
//
// When cfg.Cache is set, each cell whose content address is present in
// the cache is served from it (its jobs never reach the pool), and each
// cell computed fresh and fully successful is stored back. When
// cfg.Completed holds checkpointed results, those jobs are reused
// likewise. Either way the aggregated Outcome — and its JSON artifact —
// is byte-identical to an uncached, uninterrupted run, because results
// are observed in job-index order regardless of provenance.
func RunSpec(ctx context.Context, spec Spec, cfg Config) (*Outcome, error) {
	jobs, cells, canon, err := spec.compile()
	if err != nil {
		return nil, err
	}
	mRunsStarted.Inc()
	mRunsActive.Inc()
	defer mRunsActive.Dec()
	// Copy so the cache pass below can add entries without mutating the
	// caller's map. Run is the single splice point: it ignores
	// out-of-range indexes, so only in-range entries count as reused.
	completed := make(map[int]JobResult, len(cfg.Completed))
	reused := 0
	for idx, r := range cfg.Completed {
		completed[idx] = r
		if idx >= 0 && idx < len(jobs) {
			reused++
		}
	}
	cacheHits := 0
	var misses []cellPlan // cells to store after a fresh computation
	if cfg.Cache != nil {
		for _, c := range cells {
			if covered(completed, c.JobIdx) {
				continue // fully checkpointed; no cache involvement needed
			}
			data, ok, err := cfg.Cache.Get(c.Key)
			if err != nil {
				return nil, fmt.Errorf("campaign: cache get %s: %w", c.Cell, err)
			}
			if !ok {
				misses = append(misses, c)
				continue
			}
			var ent cellEntry
			if err := json.Unmarshal(data, &ent); err != nil || len(ent.Trials) != len(c.JobIdx) {
				// A truncated, torn, or foreign entry is a miss, never an
				// error: the cell is recomputed (the determinism contract
				// makes the recomputation byte-identical to what the entry
				// should have held). Backends that can delete also heal —
				// the bad bytes are evicted immediately instead of being
				// served to readers that never Put (the warehouse query
				// layer) until some campaign overwrites them.
				if d, ok := cfg.Cache.(cache.Deleter); ok {
					if derr := d.Delete(c.Key); derr != nil {
						return nil, fmt.Errorf("campaign: cache delete %s: %w", c.Cell, derr)
					}
				}
				misses = append(misses, c)
				continue
			}
			for ti, idx := range c.JobIdx {
				if _, have := completed[idx]; have {
					continue
				}
				completed[idx] = JobResult{Index: idx, Measurements: ent.Trials[ti]}
				cacheHits++
			}
		}
	}
	runCfg := cfg
	runCfg.Completed = completed
	var results []JobResult
	var runErr error
	if cfg.Remote != nil {
		results, runErr = runRemote(ctx, jobs, cells, canon, runCfg)
	} else {
		results, runErr = Run(ctx, jobs, runCfg)
	}
	if cfg.Cache != nil && runErr == nil {
		for _, c := range misses {
			ent := cellEntry{Cell: c.Cell, Trials: make([][]Measurement, len(c.JobIdx))}
			storable := true
			for ti, idx := range c.JobIdx {
				r := results[idx]
				if r.Skipped || r.Err != nil {
					storable = false
					break
				}
				ent.Trials[ti] = r.Measurements
			}
			if !storable {
				continue
			}
			data, err := json.Marshal(ent)
			if err != nil {
				return nil, fmt.Errorf("campaign: encoding cache entry %s: %w", c.Cell, err)
			}
			if err := cfg.Cache.Put(c.Key, data); err != nil {
				return nil, fmt.Errorf("campaign: cache put %s: %w", c.Cell, err)
			}
		}
	}
	out := &Outcome{
		Spec: canon, Jobs: len(jobs), Cells: Aggregate(results),
		CacheHits: cacheHits, Reused: reused,
	}
	for _, r := range results {
		switch {
		case r.Skipped:
		case r.Err != nil:
			out.Failed++
			out.Errors = append(out.Errors, r.Err.Error())
		default:
			out.Completed++
		}
	}
	out.Executed = out.Completed + out.Failed - cacheHits - reused
	return out, runErr
}

// covered reports whether every index in idxs is present in completed.
func covered(completed map[int]JobResult, idxs []int) bool {
	for _, idx := range idxs {
		if _, ok := completed[idx]; !ok {
			return false
		}
	}
	return true
}

// LoadSpec reads a JSON Spec from r, rejecting unknown fields so typos in
// hand-written campaign files fail loudly. Both schema forms are
// accepted; call Canonical (or any of the run paths, which do) to
// normalize.
func LoadSpec(r io.Reader) (Spec, error) {
	var spec Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return Spec{}, fmt.Errorf("campaign: decoding spec: %w", err)
	}
	return spec, nil
}

// LoadSpecFile reads a JSON Spec from path ("-" means stdin).
func LoadSpecFile(path string) (Spec, error) {
	if path == "-" {
		return LoadSpec(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return Spec{}, fmt.Errorf("campaign: opening spec: %w", err)
	}
	defer f.Close()
	return LoadSpec(f)
}
