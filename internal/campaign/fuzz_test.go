package campaign

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzSpecJSON fuzzes the spec decode → canonicalize → re-encode cycle,
// the untrusted path behind cmd/campaign -spec, campaignd submissions,
// and cluster cell leases. Pinned properties, for both the legacy
// adversaries/ks form and the v2 scenario form: parsing and
// canonicalization never panic; canonicalization is idempotent; the
// canonical form survives a JSON round-trip unchanged; and every
// spelling of a grid shares one SpecHash — the identity that checkpoint
// validation, the cell cache, and the cluster handshake all key on.
func FuzzSpecJSON(f *testing.F) {
	f.Add([]byte(`{"adversaries":["random-tree"],"ns":[8],"trials":2,"seed":1}`))
	f.Add([]byte(`{"version":1,"adversaries":["k-leaves"],"ks":[2,3],"ns":[8,16],"trials":4,"seed":7,"goal":"gossip"}`))
	f.Add([]byte(`{"version":2,"scenarios":[{"adversary":"k-leaves","params":{"k":[2,3]}}],"ns":[8],"trials":2,"seed":1}`))
	f.Add([]byte(`{"version":2,"scenarios":[{"adversary":"two-phase-path","params":{"switch_at":3}}],"ns":[9],"trials":1,"seed":3,"max_rounds":50}`))
	f.Add([]byte(`{"version":3,"ns":[8],"trials":1,"seed":1}`))
	f.Add([]byte(`{"scenarios":[{"adversary":"nope"}],"ns":[8],"trials":1,"seed":1}`))
	f.Add([]byte(`{"ns":[0],"trials":-1}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := LoadSpec(bytes.NewReader(data))
		if err != nil {
			return
		}
		canon, err := spec.Canonical()
		if err != nil {
			// Invalid specs must still hash deterministically (the hash of
			// the raw form), never panic.
			_ = SpecHash(spec)
			return
		}
		// Idempotence: canonicalizing the canonical form is the identity.
		canon2, err := canon.Canonical()
		if err != nil {
			t.Fatalf("canonical spec failed to re-canonicalize: %v\nspec: %s", err, data)
		}
		if !reflect.DeepEqual(canon, canon2) {
			t.Fatalf("canonicalization not idempotent:\n first %+v\nsecond %+v", canon, canon2)
		}
		// Round-trip: the canonical form encodes to JSON that reparses and
		// re-canonicalizes to itself.
		blob, err := json.Marshal(canon)
		if err != nil {
			t.Fatalf("marshaling canonical spec: %v", err)
		}
		back, err := LoadSpec(bytes.NewReader(blob))
		if err != nil {
			t.Fatalf("reparsing canonical spec: %v\njson: %s", err, blob)
		}
		backCanon, err := back.Canonical()
		if err != nil {
			t.Fatalf("re-canonicalizing reparsed spec: %v\njson: %s", err, blob)
		}
		if !reflect.DeepEqual(canon, backCanon) {
			t.Fatalf("canonical spec does not survive a JSON round-trip:\nbefore %+v\nafter  %+v", canon, backCanon)
		}
		// Every spelling shares one identity.
		if SpecHash(spec) != SpecHash(canon) || SpecHash(canon) != SpecHash(backCanon) {
			t.Fatalf("spec hash differs across equivalent spellings of: %s", data)
		}
	})
}

// FuzzCheckpointLoad fuzzes the checkpoint reader — the untrusted decode
// path behind every resume (cmd/campaign -checkpoint, campaignd restart,
// ResumeCampaign). Pinned property: arbitrary bytes — torn tails,
// corrupt records, foreign headers — never panic; the loader either
// errors or returns a checkpoint whose records are in range and
// convertible to a Completed map, i.e. something a resume can consume
// cleanly.
func FuzzCheckpointLoad(f *testing.F) {
	// A genuine checkpoint, then progressively damaged variants.
	spec := Spec{Adversaries: []string{"random-tree"}, Ns: []int{8}, Trials: 2, Seed: 1}
	var buf bytes.Buffer
	if w, err := NewCheckpointWriter(&buf, spec, 2); err == nil {
		w.Record(JobResult{Index: 0, Measurements: []Measurement{{Cell: "random-tree/n=8", Value: 7}}})
		w.Record(JobResult{Index: 1, Measurements: []Measurement{{Cell: "random-tree/n=8", Value: 9}}})
	}
	full := buf.Bytes()
	f.Add(full)
	f.Add(full[:len(full)-7]) // torn trailing record
	f.Add([]byte(`{"format":"dyntreecast-checkpoint/2","engine":"dyntreecast-engine/3","spec_hash":"x","jobs":2}` + "\n" + `{"index":5,"measurements":[]}` + "\n"))
	f.Add([]byte(`{"format":"dyntreecast-checkpoint/1","spec_hash":"x","jobs":2}` + "\n"))
	f.Add([]byte(`{"format":"dyntreecast-checkpoint/2","engine":"someone-else/9","spec_hash":"x"}` + "\n"))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`{}`))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := LoadCheckpoint(bytes.NewReader(data))
		if err != nil {
			return // rejected inputs only need to not panic
		}
		if cp == nil {
			t.Fatal("LoadCheckpoint returned nil, nil")
		}
		for idx := range cp.Results {
			if idx < 0 || (cp.Jobs > 0 && idx >= cp.Jobs) {
				t.Fatalf("accepted checkpoint holds out-of-range index %d (jobs %d)", idx, cp.Jobs)
			}
		}
		// The resume entry point must consume whatever the loader accepts.
		if got := cp.Completed(); len(got) != len(cp.Results) {
			t.Fatalf("Completed() lost records: %d of %d", len(got), len(cp.Results))
		}
	})
}
