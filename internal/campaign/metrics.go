package campaign

import "dyntreecast/internal/metrics"

// Campaign-layer instruments (DESIGN.md §3f). All counting happens off
// the trial hot path: jobs are counted once per job (one atomic add,
// after the trial already ran), batch sizes once per scheduling unit, and
// nothing here touches a result — artifacts are byte-identical with
// metrics live or a scraper attached, which is the observability corollary
// of the determinism contract.
//
// A "job" is one trial of one grid cell, so trials/sec is the scrape-side
// rate of campaign_jobs_completed_total.
var (
	mJobsCompleted = metrics.Default.Counter("campaign_jobs_completed_total",
		"Campaign jobs (trials) completed successfully; rate() of this is fleet trials/sec.")
	mJobsFailed = metrics.Default.Counter("campaign_jobs_failed_total",
		"Campaign jobs (trials) that returned an error.")
	mRunsStarted = metrics.Default.Counter("campaign_runs_total",
		"Spec campaigns started (RunSpec).")
	mRunsActive = metrics.Default.Gauge("campaign_runs_active",
		"Spec campaigns currently in flight.")
	mBatchTrials = metrics.Default.Histogram("campaign_batch_trials",
		"Trials per scheduled batch (whole cells unless Config.Batch caps them).",
		metrics.ExpBuckets(1, 2, 12))
	mCheckpointRecords = metrics.Default.Counter("campaign_checkpoint_records_total",
		"Completed-job records appended to checkpoint files.")
)

// countJob tallies one fresh job result into the campaign counters.
// Called with the pool's callback mutex NOT required — counters are
// atomics — but always after execution, never on the trial loop itself.
func countJob(err error) {
	if err != nil {
		mJobsFailed.Inc()
	} else {
		mJobsCompleted.Inc()
	}
}
