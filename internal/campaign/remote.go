package campaign

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// This file is the campaign side of the distributed campaign fabric
// (DESIGN.md §3e): RunSpec can shard a compiled spec's grid cells to
// remote workers through a Remote scheduler while its own local pool
// keeps executing, and merge whatever comes back into the same
// job-indexed result slice the purely local path fills.
//
// The unit of distribution is a shard: a contiguous sub-range of one
// cell's trials (the whole cell being the degenerate single shard). PR 2
// made every cell a pure function of (engine version, seed, goal, round
// budget, scenario, n, trials) — its random streams are derived from the
// cell's own content address, never from grid position, and split
// per-trial in trial order — so any trial sub-range can be executed
// anywhere and its per-trial measurements merged byte-identically. A
// CellJob carries a self-contained single-cell Spec plus an optional
// trial sub-range; executing it on any machine running the same engine
// version reproduces the coordinator's bytes for exactly those trials,
// which is why remote execution can never change an artifact, only
// wall-clock time.

// CellJob is one shard of distributable work: a self-contained canonical
// single-cell Spec, the cell's content address, and the trial sub-range
// [TrialLo, TrialHi) to execute. Both bounds zero is the whole-cell
// encoding (TrialLo=0, TrialHi=Trials), which keeps the wire format and
// behavior of pre-sharding schedulers and workers unchanged. Executing
// the job anywhere (ExecuteCellJob) yields the range's per-trial
// measurements, byte-identical to a local run — each trial owns a
// pre-split stream derived from the content address, not from where the
// cell sits in any grid or how its trials are sharded.
type CellJob struct {
	Cell    string `json:"cell"`   // display key ("random-tree/n=64")
	Key     string `json:"key"`    // content address (cell cache key)
	Trials  int    `json:"trials"` // the cell's total trial count
	Spec    Spec   `json:"spec"`   // canonical spec compiling to exactly this cell
	TrialLo int    `json:"trial_lo,omitempty"`
	TrialHi int    `json:"trial_hi,omitempty"` // 0 with TrialLo 0 means the whole cell
}

// ShardBounds returns the job's trial sub-range [lo, hi), normalizing
// the whole-cell encoding (0, 0) to (0, Trials).
func (j CellJob) ShardBounds() (lo, hi int) {
	if j.TrialLo == 0 && j.TrialHi == 0 {
		return 0, j.Trials
	}
	return j.TrialLo, j.TrialHi
}

// Remote distributes trial shards of running campaigns to external
// executors. RunSpec calls Open with the campaign's pending cells; the
// scheduler decides how (whether) to split each cell's trial range into
// shards, the local pool and the remote side race for shards through the
// returned session, and whichever completes a shard first supplies its
// results. internal/cluster's Coordinator is the HTTP implementation.
type Remote interface {
	// Open registers a campaign's pending cells (whole, TrialLo/TrialHi
	// unset — sharding is the scheduler's choice). deliver is invoked at
	// most once per (key, lo, hi) shard — serialized per shard, possibly
	// concurrently across shards — with the shard's per-trial
	// measurements in trial order (exactly hi-lo slices, for trials
	// lo..hi-1 of the cell) when the remote side completes it. Shards
	// the local pool claims and completes (ClaimLocal + CompleteLocal)
	// are never delivered.
	Open(jobs []CellJob, deliver func(key string, lo, hi int, trials [][]Measurement)) RemoteSession
}

// RemoteSession coordinates one campaign's shards between the local pool
// and remote workers.
type RemoteSession interface {
	// ClaimLocal blocks until a shard is available for local execution
	// and claims it — the returned job's ShardBounds give the trial
	// range — returning false when every shard is complete, the session
	// is closed, or ctx is done. Shards under an active remote lease are
	// not handed out until the lease expires, so local and remote work
	// overlap only when a lease times out.
	ClaimLocal(ctx context.Context) (CellJob, bool)
	// CompleteLocal marks a locally executed shard [lo, hi) of the keyed
	// cell complete, reporting whether the caller won (false means the
	// remote side delivered the shard first and the local results must
	// be discarded). The bounds must be the normalized ShardBounds of
	// the claimed job.
	CompleteLocal(key string, lo, hi int) bool
	// Close detaches the campaign from the scheduler; pending shards are
	// withdrawn and late remote results are dropped.
	Close()
}

// CellJobs returns the spec's feasible grid cells as self-contained
// remote work units, in compile order. This is the distribution-side view
// of Compile: each job's single-cell Spec compiles (anywhere) to the
// cell's exact trial streams, and Key is the same content address the
// cell cache uses.
func (s *Spec) CellJobs() ([]CellJob, error) {
	_, cells, canon, err := s.compile()
	if err != nil {
		return nil, err
	}
	out := make([]CellJob, len(cells))
	for i, c := range cells {
		out[i] = cellJob(canon, c)
	}
	return out, nil
}

// cellJob builds the self-contained work unit of one compiled cell: a
// canonical spec with exactly the cell's scenario and n. Its cell
// identity — and therefore its streams and content address — matches the
// originating grid's, because identities never depend on grid position.
func cellJob(canon Spec, c cellPlan) CellJob {
	return CellJob{
		Cell:   c.Cell,
		Key:    c.Key,
		Trials: len(c.JobIdx),
		Spec: Spec{
			Version:   SpecVersion,
			Scenarios: []Scenario{c.Scenario},
			Ns:        []int{c.N},
			Trials:    canon.Trials,
			Seed:      canon.Seed,
			Goal:      canon.Goal,
			MaxRounds: canon.MaxRounds,
		},
	}
}

// ExecuteCellJob runs one leased shard to completion and returns its
// per-trial measurements in trial order (hi-lo slices, for trials
// ShardBounds' lo..hi-1) — the worker side of the cluster protocol. The
// job's spec is compiled locally and checked against the job's content
// address (the handshake that catches engine drift beyond the version
// string); the cell's jobs are compiled whole and the shard's sub-range
// executed, so trial lo sees exactly the pre-split stream it would in a
// whole-cell run. Any trial error fails the whole shard, because partial
// shards are never pushed — the coordinator re-queues failed leases and
// the deterministic error surfaces through the local pool instead.
func ExecuteCellJob(ctx context.Context, job CellJob) ([][]Measurement, error) {
	jobs, cells, _, err := job.Spec.compile()
	if err != nil {
		return nil, fmt.Errorf("campaign: cell %s: %w", job.Cell, err)
	}
	if len(cells) != 1 || len(jobs) != len(cells[0].JobIdx) {
		return nil, fmt.Errorf("campaign: cell %s: spec compiles to %d cells, want exactly 1", job.Cell, len(cells))
	}
	if cells[0].Key != job.Key {
		return nil, fmt.Errorf("campaign: cell %s: content address mismatch (lease %.12s, computed %.12s)",
			job.Cell, job.Key, cells[0].Key)
	}
	lo, hi := job.ShardBounds()
	if lo < 0 || hi > len(jobs) || lo >= hi {
		return nil, fmt.Errorf("campaign: cell %s: trial range [%d,%d) outside the cell's %d trials",
			job.Cell, lo, hi, len(jobs))
	}
	results, err := Run(ctx, jobs[lo:hi], Config{Workers: 1})
	if err != nil {
		return nil, err
	}
	trials := make([][]Measurement, len(results))
	for i, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("campaign: cell %s trial %d: %w", job.Cell, lo+i, r.Err)
		}
		trials[i] = r.Measurements
	}
	return trials, nil
}

// remoteCell is one distributable cell, keyed by content address: every
// compiled plan sharing the address (duplicate grid cells have identical
// streams) plus, per plan, which trial positions are not already covered
// by the checkpoint or cache. Indexing by trial position — not job index
// — is what lets shard deliveries, which cover disjoint [lo, hi) trial
// ranges in arbitrary order, splice independently.
type remoteCell struct {
	plans  []cellPlan
	needed [][]bool // parallel to plans, indexed by trial position
}

// runRemote is RunSpec's execution path when Config.Remote is set: cells
// not already satisfied by the checkpoint or cache are offered to the
// remote scheduler while cfg.Workers local workers claim and execute the
// rest, shard by shard, on pooled arenas. Results land in the
// job-indexed slice whichever side computes them, so the aggregated
// outcome is byte-identical to a purely local run — remote workers (and
// their failures) can only move wall-clock time, and so can the shard
// size, because every trial's stream was pre-split at compile time.
func runRemote(ctx context.Context, jobs []Job, cells []cellPlan, canon Spec, cfg Config) ([]JobResult, error) {
	results, reused := initResults(jobs, cfg.Completed)

	// Cells with at least one job not covered by the checkpoint/cache are
	// the distributable work, grouped by content address: a grid that
	// lists the same cell twice (ns: [8, 8]) compiles to two plans with
	// one address and identical streams, so one execution — local or
	// remote — must splice into every plan sharing the key, and the
	// scheduler must see the key exactly once.
	work := make(map[string]*remoteCell, len(cells))
	var cellJobs []CellJob
	for _, c := range cells {
		needed := make([]bool, len(c.JobIdx))
		any := false
		for ti, idx := range c.JobIdx {
			if results[idx].Skipped {
				needed[ti], any = true, true
			}
		}
		if !any {
			continue
		}
		rc := work[c.Key]
		if rc == nil {
			rc = &remoteCell{}
			work[c.Key] = rc
			cellJobs = append(cellJobs, cellJob(canon, c))
		}
		rc.plans = append(rc.plans, c)
		rc.needed = append(rc.needed, needed)
	}
	if len(cellJobs) == 0 {
		return results, ctx.Err()
	}

	var (
		mu     sync.Mutex // guards results splicing, callbacks, and closed
		done   = reused
		closed bool
	)
	// fire splices one shard's fresh results and runs the callbacks, in
	// job-index (trial) order. After close (cancellation teardown) late
	// remote deliveries are dropped so nothing touches the results slice
	// once runRemote returned it.
	fire := func(rs []JobResult) {
		mu.Lock()
		defer mu.Unlock()
		if closed {
			return
		}
		for _, r := range rs {
			results[r.Index] = r
			countJob(r.Err)
			if cfg.OnResult != nil {
				cfg.OnResult(r)
			}
			done++
			if cfg.Progress != nil {
				cfg.Progress(done, len(jobs))
			}
		}
	}
	deliver := func(key string, lo, hi int, trials [][]Measurement) {
		rc, ok := work[key]
		if !ok {
			return
		}
		var rs []JobResult
		for pi, plan := range rc.plans {
			need := rc.needed[pi]
			if lo < 0 || hi > len(need) || lo > hi || len(trials) != hi-lo {
				// The Remote contract (and the coordinator's result
				// validation) guarantee a shard inside the cell carrying
				// exactly hi-lo slices; a scheduler that violates it has
				// marked the shard complete, so the only non-wedging
				// response is loud per-job errors in the artifact (a hang
				// or a swallowed panic would hide it).
				err := fmt.Errorf("campaign: remote delivered %d trials for %s[%d:%d) of %d",
					len(trials), plan.Cell, lo, hi, len(need))
				for ti := max(lo, 0); ti < min(hi, len(need)); ti++ {
					if need[ti] {
						rs = append(rs, JobResult{Index: plan.JobIdx[ti], Err: err})
					}
				}
				continue
			}
			// Shards cover disjoint trial ranges, so splicing by trial
			// position needs no cross-shard bookkeeping; positions the
			// checkpoint or cache already covered are simply discarded.
			for ti := lo; ti < hi; ti++ {
				if need[ti] {
					rs = append(rs, JobResult{Index: plan.JobIdx[ti], Measurements: trials[ti-lo]})
				}
			}
		}
		fire(rs)
	}

	session := cfg.Remote.Open(cellJobs, deliver)
	defer session.Close()

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cellJobs) {
		workers = len(cellJobs)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			arena := NewArena()
			for {
				job, ok := session.ClaimLocal(ctx)
				if !ok {
					return
				}
				// Shard execution on the worker's arena, exactly the
				// batched pipeline's cell loop: fresh round budget, then
				// trial after trial through the job closures — for every
				// plan sharing the claimed content address.
				lo, hi := job.ShardBounds()
				if lo < 0 {
					lo = 0
				}
				if hi > job.Trials {
					hi = job.Trials
				}
				arena.Runner.MaxRounds = 0
				mBatchTrials.Observe(float64(hi - lo))
				rc := work[job.Key]
				var rs []JobResult
				cancelled := false
				for pi, plan := range rc.plans {
					need := rc.needed[pi]
					for ti := lo; ti < hi && ti < len(need); ti++ {
						if !need[ti] {
							continue
						}
						if ctx.Err() != nil {
							cancelled = true
							break
						}
						idx := plan.JobIdx[ti]
						ms, err := execJob(ctx, jobs[idx], arena, cfg.NoReuse)
						rs = append(rs, JobResult{Index: idx, Measurements: ms, Err: err})
					}
				}
				if cancelled {
					// Partial shards are discarded (their jobs stay
					// Skipped), mirroring the local pool's drain-on-cancel.
					return
				}
				if session.CompleteLocal(job.Key, lo, hi) {
					fire(rs)
				}
			}
		}()
	}
	wg.Wait()

	mu.Lock()
	closed = true
	mu.Unlock()

	if err := ctx.Err(); err != nil {
		for i := range results {
			if results[i].Skipped {
				results[i].Err = err
			}
		}
		return results, fmt.Errorf("campaign: cancelled: %w", err)
	}
	return results, nil
}
