package campaign

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// This file is the campaign side of the distributed campaign fabric
// (DESIGN.md §3e): RunSpec can shard a compiled spec's grid cells to
// remote workers through a Remote scheduler while its own local pool
// keeps executing, and merge whatever comes back into the same
// job-indexed result slice the purely local path fills.
//
// The unit of distribution is the whole cell. PR 2 made every cell a pure
// function of (engine version, seed, goal, round budget, scenario, n,
// trials) — its random streams are derived from the cell's own content
// address, never from grid position — so a cell can be executed anywhere
// and its per-trial measurements merged byte-identically. A CellJob
// carries a self-contained single-cell Spec; executing that spec on any
// machine running the same engine version reproduces the coordinator's
// bytes exactly, which is why remote execution can never change an
// artifact, only wall-clock time.

// CellJob is one whole-cell unit of distributable work: a self-contained
// canonical single-cell Spec plus the cell's content address. Executing
// Spec anywhere (ExecuteCellJob) yields the cell's per-trial measurements,
// byte-identical to a local run — the streams are derived from the content
// address, not from where the cell sits in any grid.
type CellJob struct {
	Cell   string `json:"cell"`   // display key ("random-tree/n=64")
	Key    string `json:"key"`    // content address (cell cache key)
	Trials int    `json:"trials"` // per-trial measurement slices a result must carry
	Spec   Spec   `json:"spec"`   // canonical spec compiling to exactly this cell
}

// Remote distributes whole cells of running campaigns to external
// executors. RunSpec calls Open with the campaign's pending cells; the
// local pool and the remote side then race for cells through the returned
// session, and whichever completes a cell first supplies its results.
// internal/cluster's Coordinator is the HTTP implementation.
type Remote interface {
	// Open registers a campaign's pending cells. deliver is invoked at
	// most once per cell — serialized per cell, possibly concurrently
	// across cells — with the cell's per-trial measurements in trial
	// order (exactly job.Trials slices) when the remote side completes
	// it. Cells the local pool claims and completes (ClaimLocal +
	// CompleteLocal) are never delivered.
	Open(jobs []CellJob, deliver func(key string, trials [][]Measurement)) RemoteSession
}

// RemoteSession coordinates one campaign's cells between the local pool
// and remote workers.
type RemoteSession interface {
	// ClaimLocal blocks until a cell is available for local execution and
	// claims it, returning false when every cell is complete, the session
	// is closed, or ctx is done. Cells under an active remote lease are
	// not handed out until the lease expires, so local and remote work
	// overlap only when a lease times out.
	ClaimLocal(ctx context.Context) (CellJob, bool)
	// CompleteLocal marks a locally executed cell complete, reporting
	// whether the caller won (false means the remote side delivered the
	// cell first and the local results must be discarded).
	CompleteLocal(key string) bool
	// Close detaches the campaign from the scheduler; pending cells are
	// withdrawn and late remote results are dropped.
	Close()
}

// CellJobs returns the spec's feasible grid cells as self-contained
// remote work units, in compile order. This is the distribution-side view
// of Compile: each job's single-cell Spec compiles (anywhere) to the
// cell's exact trial streams, and Key is the same content address the
// cell cache uses.
func (s *Spec) CellJobs() ([]CellJob, error) {
	_, cells, canon, err := s.compile()
	if err != nil {
		return nil, err
	}
	out := make([]CellJob, len(cells))
	for i, c := range cells {
		out[i] = cellJob(canon, c)
	}
	return out, nil
}

// cellJob builds the self-contained work unit of one compiled cell: a
// canonical spec with exactly the cell's scenario and n. Its cell
// identity — and therefore its streams and content address — matches the
// originating grid's, because identities never depend on grid position.
func cellJob(canon Spec, c cellPlan) CellJob {
	return CellJob{
		Cell:   c.Cell,
		Key:    c.Key,
		Trials: len(c.JobIdx),
		Spec: Spec{
			Version:   SpecVersion,
			Scenarios: []Scenario{c.Scenario},
			Ns:        []int{c.N},
			Trials:    canon.Trials,
			Seed:      canon.Seed,
			Goal:      canon.Goal,
			MaxRounds: canon.MaxRounds,
		},
	}
}

// ExecuteCellJob runs one leased cell to completion and returns its
// per-trial measurements in trial order — the worker side of the cluster
// protocol. The job's spec is compiled locally and checked against the
// job's content address (the handshake that catches engine drift beyond
// the version string); any trial error fails the whole cell, because
// partial cells are never pushed — the coordinator re-queues failed
// leases and the deterministic error surfaces through the local pool
// instead.
func ExecuteCellJob(ctx context.Context, job CellJob) ([][]Measurement, error) {
	jobs, cells, _, err := job.Spec.compile()
	if err != nil {
		return nil, fmt.Errorf("campaign: cell %s: %w", job.Cell, err)
	}
	if len(cells) != 1 || len(jobs) != len(cells[0].JobIdx) {
		return nil, fmt.Errorf("campaign: cell %s: spec compiles to %d cells, want exactly 1", job.Cell, len(cells))
	}
	if cells[0].Key != job.Key {
		return nil, fmt.Errorf("campaign: cell %s: content address mismatch (lease %.12s, computed %.12s)",
			job.Cell, job.Key, cells[0].Key)
	}
	results, err := Run(ctx, jobs, Config{Workers: 1})
	if err != nil {
		return nil, err
	}
	trials := make([][]Measurement, len(results))
	for i, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("campaign: cell %s trial %d: %w", job.Cell, i, r.Err)
		}
		trials[i] = r.Measurements
	}
	return trials, nil
}

// remoteCell is one unit of distributable work, keyed by content
// address: every compiled plan sharing the address (duplicate grid
// cells have identical streams) plus, per plan, the job indexes not
// already covered by the checkpoint or cache, in trial order.
type remoteCell struct {
	plans   []cellPlan
	pending [][]int // parallel to plans
}

// runRemote is RunSpec's execution path when Config.Remote is set: cells
// not already satisfied by the checkpoint or cache are offered to the
// remote scheduler while cfg.Workers local workers claim and execute the
// rest, whole cell by whole cell, on pooled arenas. Results land in the
// job-indexed slice whichever side computes them, so the aggregated
// outcome is byte-identical to a purely local run — remote workers (and
// their failures) can only move wall-clock time.
func runRemote(ctx context.Context, jobs []Job, cells []cellPlan, canon Spec, cfg Config) ([]JobResult, error) {
	results, reused := initResults(jobs, cfg.Completed)

	// Cells with at least one job not covered by the checkpoint/cache are
	// the distributable work, grouped by content address: a grid that
	// lists the same cell twice (ns: [8, 8]) compiles to two plans with
	// one address and identical streams, so one execution — local or
	// remote — must splice into every plan sharing the key, and the
	// scheduler must see the key exactly once.
	work := make(map[string]*remoteCell, len(cells))
	var cellJobs []CellJob
	for _, c := range cells {
		var todo []int
		for _, idx := range c.JobIdx {
			if results[idx].Skipped {
				todo = append(todo, idx)
			}
		}
		if len(todo) == 0 {
			continue
		}
		rc := work[c.Key]
		if rc == nil {
			rc = &remoteCell{}
			work[c.Key] = rc
			cellJobs = append(cellJobs, cellJob(canon, c))
		}
		rc.plans = append(rc.plans, c)
		rc.pending = append(rc.pending, todo)
	}
	if len(cellJobs) == 0 {
		return results, ctx.Err()
	}

	var (
		mu     sync.Mutex // guards results splicing, callbacks, and closed
		done   = reused
		closed bool
	)
	// fire splices one cell's fresh results and runs the callbacks, in
	// job-index (trial) order. After close (cancellation teardown) late
	// remote deliveries are dropped so nothing touches the results slice
	// once runRemote returned it.
	fire := func(rs []JobResult) {
		mu.Lock()
		defer mu.Unlock()
		if closed {
			return
		}
		for _, r := range rs {
			results[r.Index] = r
			countJob(r.Err)
			if cfg.OnResult != nil {
				cfg.OnResult(r)
			}
			done++
			if cfg.Progress != nil {
				cfg.Progress(done, len(jobs))
			}
		}
	}
	deliver := func(key string, trials [][]Measurement) {
		rc, ok := work[key]
		if !ok {
			return
		}
		var rs []JobResult
		for pi, plan := range rc.plans {
			todo := rc.pending[pi]
			if len(trials) != len(plan.JobIdx) {
				// The Remote contract (and the coordinator's result
				// validation) guarantee exactly Trials slices; a scheduler
				// that violates it has marked the cell complete, so the
				// only non-wedging response is loud per-job errors in the
				// artifact (a hang or a swallowed panic would hide it).
				err := fmt.Errorf("campaign: remote delivered %d trials for cell %s, want %d",
					len(trials), plan.Cell, len(plan.JobIdx))
				for _, idx := range todo {
					rs = append(rs, JobResult{Index: idx, Err: err})
				}
				continue
			}
			// Two-pointer merge: todo is a subsequence of plan.JobIdx
			// (both ascending), so one pass splices exactly the uncovered
			// trials.
			spliced := 0
			for ti, idx := range plan.JobIdx {
				if spliced < len(todo) && todo[spliced] == idx {
					rs = append(rs, JobResult{Index: idx, Measurements: trials[ti]})
					spliced++
				}
			}
		}
		fire(rs)
	}

	session := cfg.Remote.Open(cellJobs, deliver)
	defer session.Close()

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cellJobs) {
		workers = len(cellJobs)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			arena := NewArena()
			for {
				job, ok := session.ClaimLocal(ctx)
				if !ok {
					return
				}
				// Whole-cell execution on the worker's arena, exactly the
				// batched pipeline's cell loop: fresh round budget, then
				// trial after trial through the job closures — for every
				// plan sharing the claimed content address.
				arena.Runner.MaxRounds = 0
				mBatchTrials.Observe(float64(job.Trials))
				rc := work[job.Key]
				var rs []JobResult
				cancelled := false
				for _, todo := range rc.pending {
					for _, idx := range todo {
						if ctx.Err() != nil {
							cancelled = true
							break
						}
						ms, err := execJob(ctx, jobs[idx], arena, cfg.NoReuse)
						rs = append(rs, JobResult{Index: idx, Measurements: ms, Err: err})
					}
				}
				if cancelled {
					// Partial cells are discarded (their jobs stay
					// Skipped), mirroring the local pool's drain-on-cancel.
					return
				}
				if session.CompleteLocal(job.Key) {
					fire(rs)
				}
			}
		}()
	}
	wg.Wait()

	mu.Lock()
	closed = true
	mu.Unlock()

	if err := ctx.Err(); err != nil {
		for i := range results {
			if results[i].Skipped {
				results[i].Err = err
			}
		}
		return results, fmt.Errorf("campaign: cancelled: %w", err)
	}
	return results, nil
}
