package campaign

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON renders the outcome as one indented JSON document, the
// machine-diffable campaign artifact. Byte-identical for identical specs,
// regardless of worker count.
func (o *Outcome) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(o, "", "  ")
	if err != nil {
		return fmt.Errorf("campaign: encoding outcome: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("campaign: writing outcome: %w", err)
	}
	return nil
}

// jsonlRecord is one line of the JSONL artifact: a cell's stats tagged
// with enough campaign identity to be self-describing when lines from
// several campaigns are concatenated or streamed into a log store.
type jsonlRecord struct {
	Campaign string  `json:"campaign,omitempty"`
	Seed     uint64  `json:"seed"`
	Goal     string  `json:"goal,omitempty"`
	Cell     string  `json:"cell"`
	Count    int     `json:"count"`
	Mean     float64 `json:"mean"`
	StdDev   float64 `json:"stddev"`
	Min      float64 `json:"min"`
	Max      float64 `json:"max"`
	P50      float64 `json:"p50"`
	P99      float64 `json:"p99"`
}

// WriteJSONL renders the outcome as one JSON object per cell per line.
func (o *Outcome) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, c := range o.Cells {
		rec := jsonlRecord{
			Campaign: o.Spec.Name,
			Seed:     o.Spec.Seed,
			Goal:     o.Spec.Goal,
			Cell:     c.Cell,
			Count:    c.Count,
			Mean:     c.Mean,
			StdDev:   c.StdDev,
			Min:      c.Min,
			Max:      c.Max,
			P50:      c.P50,
			P99:      c.P99,
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("campaign: writing JSONL cell %s: %w", c.Cell, err)
		}
	}
	return nil
}
