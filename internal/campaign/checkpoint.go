package campaign

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// The checkpoint format (DESIGN.md §3b) is a JSONL file: a header line
// identifying the spec, then one record per completed job. Records are
// flushed as they land, so a killed process loses at most the job results
// that were in flight; a torn trailing line is tolerated on load. Only
// successful jobs are recorded — failed jobs are deterministic functions
// of the spec and are simply re-run on resume.
//
// Format 2 accompanies spec schema v2: the header names the engine
// version explicitly and spec_hash covers the spec's canonical (scenario)
// form, so a legacy-form spec and its scenario-form equivalent share
// checkpoints. Format-1 files predate the scenario engine and are
// rejected (their results were derived from different streams).
const checkpointFormat = "dyntreecast-checkpoint/2"

type checkpointHeader struct {
	Format   string `json:"format"`
	Engine   string `json:"engine"`
	SpecHash string `json:"spec_hash"`
	Jobs     int    `json:"jobs"`
}

type checkpointRecord struct {
	Index        int           `json:"index"`
	Measurements []Measurement `json:"measurements"`
}

// SpecHash returns the stable identity of a spec for checkpoint
// validation: a hex SHA-256 over the engine version and the spec's
// canonical JSON. Any change to the spec — or to the engine semantics —
// yields a different hash, so a checkpoint can never be resumed against
// work it does not describe. The hash covers what determines results,
// not presentation: the display Name is ignored, the default goal is
// spelled out, and the spec is canonicalized first (legacy
// adversaries/ks rewritten into ground scenarios), so every equivalent
// spelling of a campaign shares checkpoints. An invalid spec hashes its
// raw form — still deterministic, never resumable against valid work.
func SpecHash(spec Spec) string {
	if canon, err := spec.Canonical(); err == nil {
		spec = canon
	}
	spec.Name = ""
	spec.Goal = spec.goalName()
	data, err := json.Marshal(spec)
	if err != nil {
		// Spec is a plain struct of marshalable fields; this cannot fail.
		panic(fmt.Sprintf("campaign: marshaling spec: %v", err))
	}
	h := sha256.New()
	io.WriteString(h, EngineVersion+"|spec|")
	h.Write(data)
	return hex.EncodeToString(h.Sum(nil))
}

// Checkpoint is the loaded state of a checkpoint file: which jobs of
// which spec completed, with their measurements.
type Checkpoint struct {
	SpecHash string
	Jobs     int
	Results  map[int][]Measurement
}

// LoadCheckpoint parses a checkpoint stream. A torn trailing line (the
// mark of a killed writer) is tolerated; a missing or foreign header is
// an error.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("campaign: reading checkpoint: %w", err)
		}
		return nil, errors.New("campaign: empty checkpoint")
	}
	var hdr checkpointHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.Format != checkpointFormat {
		return nil, fmt.Errorf("campaign: not a %s file", checkpointFormat)
	}
	if hdr.Engine != "" && hdr.Engine != EngineVersion {
		return nil, fmt.Errorf("campaign: checkpoint written by %s, this engine is %s", hdr.Engine, EngineVersion)
	}
	cp := &Checkpoint{SpecHash: hdr.SpecHash, Jobs: hdr.Jobs, Results: make(map[int][]Measurement)}
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec checkpointRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// Torn tail from an interrupted writer: keep what we have.
			break
		}
		if rec.Index < 0 || (hdr.Jobs > 0 && rec.Index >= hdr.Jobs) {
			continue
		}
		cp.Results[rec.Index] = rec.Measurements
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("campaign: reading checkpoint: %w", err)
	}
	return cp, nil
}

// LoadCheckpointFile parses the checkpoint at path.
func LoadCheckpointFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: opening checkpoint: %w", err)
	}
	defer f.Close()
	cp, err := LoadCheckpoint(f)
	if err != nil {
		return nil, fmt.Errorf("campaign: %s: %w", path, err)
	}
	return cp, nil
}

// Validate reports whether the checkpoint belongs to spec.
func (c *Checkpoint) Validate(spec Spec) error {
	if want := SpecHash(spec); c.SpecHash != want {
		return fmt.Errorf("campaign: checkpoint belongs to a different spec (hash %.12s, want %.12s)",
			c.SpecHash, want)
	}
	return nil
}

// Completed converts the checkpoint into the Config.Completed form: one
// reusable JobResult per recorded job.
func (c *Checkpoint) Completed() map[int]JobResult {
	out := make(map[int]JobResult, len(c.Results))
	for idx, ms := range c.Results {
		out[idx] = JobResult{Index: idx, Measurements: ms}
	}
	return out
}

// ResumeSpec continues an interrupted campaign: the checkpoint's jobs are
// reused, every other job is executed, and the aggregated Outcome — and
// its JSON artifact — is byte-identical to an uninterrupted run of the
// same spec, for any worker count. The checkpoint must belong to spec
// (Validate); Outcome.Reused reports how many jobs were skipped.
func ResumeSpec(ctx context.Context, spec Spec, cp *Checkpoint, cfg Config) (*Outcome, error) {
	if err := cp.Validate(spec); err != nil {
		return nil, err
	}
	merged := cp.Completed()
	for idx, r := range cfg.Completed {
		merged[idx] = r
	}
	cfg.Completed = merged
	return RunSpec(ctx, spec, cfg)
}

// CheckpointWriter appends completed-job records to a checkpoint stream.
// Its Record method matches Config.OnResult, so wiring a writer into a
// run is one field assignment. Records are flushed per line; failed or
// skipped jobs are not recorded. Writes after the first error are
// dropped — check Err (or Close) once the run finishes.
type CheckpointWriter struct {
	mu  sync.Mutex
	buf *bufio.Writer
	err error
}

// NewCheckpointWriter starts a fresh checkpoint for spec on w, writing
// the header immediately. jobs is the compiled job count (len of
// Spec.Compile's result).
func NewCheckpointWriter(w io.Writer, spec Spec, jobs int) (*CheckpointWriter, error) {
	cw := &CheckpointWriter{buf: bufio.NewWriter(w)}
	hdr := checkpointHeader{Format: checkpointFormat, Engine: EngineVersion, SpecHash: SpecHash(spec), Jobs: jobs}
	if err := cw.writeLine(hdr); err != nil {
		return nil, fmt.Errorf("campaign: writing checkpoint header: %w", err)
	}
	return cw, nil
}

// AppendingCheckpointWriter returns a writer that appends records to an
// existing checkpoint stream without re-writing the header (the resume
// path).
func AppendingCheckpointWriter(w io.Writer) *CheckpointWriter {
	return &CheckpointWriter{buf: bufio.NewWriter(w)}
}

func (cw *CheckpointWriter) writeLine(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := cw.buf.Write(append(data, '\n')); err != nil {
		return err
	}
	return cw.buf.Flush()
}

// Record appends one job result; failed and skipped jobs are ignored.
func (cw *CheckpointWriter) Record(r JobResult) {
	if r.Err != nil || r.Skipped {
		return
	}
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if cw.err != nil {
		return
	}
	cw.err = cw.writeLine(checkpointRecord{Index: r.Index, Measurements: r.Measurements})
	if cw.err == nil {
		mCheckpointRecords.Inc()
	}
}

// Err returns the first write error, if any.
func (cw *CheckpointWriter) Err() error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	return cw.err
}

// CheckpointFile couples a checkpoint on disk with a campaign run: Open
// resumes the file if it already holds a matching checkpoint (completed
// jobs are reused, new records appended) and starts a fresh one
// otherwise. Wire installs it into a Config; Close flushes and closes
// the file and reports any write error.
type CheckpointFile struct {
	// Completed holds the reusable results loaded from an existing file
	// (empty for a fresh checkpoint).
	Completed map[int]JobResult
	w         *CheckpointWriter
	f         *os.File
}

// OpenCheckpointFile opens path for checkpointing spec. An existing
// non-empty file must be a checkpoint of this exact spec — a mismatch is
// an error, not silent truncation of someone else's work.
func OpenCheckpointFile(path string, spec Spec) (*CheckpointFile, error) {
	jobs, err := spec.jobCount()
	if err != nil {
		return nil, err
	}
	if st, err := os.Stat(path); err == nil && st.Size() > 0 {
		cp, err := LoadCheckpointFile(path)
		if err != nil {
			return nil, err
		}
		if err := cp.Validate(spec); err != nil {
			return nil, fmt.Errorf("%w (refusing to overwrite %s)", err, path)
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("campaign: opening checkpoint for append: %w", err)
		}
		return &CheckpointFile{Completed: cp.Completed(), w: AppendingCheckpointWriter(f), f: f}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: creating checkpoint: %w", err)
	}
	w, err := NewCheckpointWriter(f, spec, jobs)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &CheckpointFile{Completed: map[int]JobResult{}, w: w, f: f}, nil
}

// Wire returns cfg with the checkpoint installed: loaded results are
// reused and fresh results are recorded, chained before any OnResult
// already present.
func (cf *CheckpointFile) Wire(cfg Config) Config {
	merged := make(map[int]JobResult, len(cf.Completed)+len(cfg.Completed))
	for idx, r := range cf.Completed {
		merged[idx] = r
	}
	for idx, r := range cfg.Completed {
		merged[idx] = r
	}
	cfg.Completed = merged
	next := cfg.OnResult
	cfg.OnResult = func(r JobResult) {
		cf.w.Record(r)
		if next != nil {
			next(r)
		}
	}
	return cfg
}

// Close flushes and closes the underlying file, reporting the first
// write error of the checkpoint's lifetime.
func (cf *CheckpointFile) Close() error {
	werr := cf.w.Err()
	cerr := cf.f.Close()
	if werr != nil {
		return fmt.Errorf("campaign: checkpoint write failed: %w", werr)
	}
	if cerr != nil {
		return fmt.Errorf("campaign: closing checkpoint: %w", cerr)
	}
	return nil
}
