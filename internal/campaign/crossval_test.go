package campaign

import (
	"context"
	"fmt"
	"testing"

	"dyntreecast/internal/adversary"
	"dyntreecast/internal/bounds"
	"dyntreecast/internal/core"
	"dyntreecast/internal/gamesolver"
	"dyntreecast/internal/rng"
)

// TestExactCrossValidation cross-validates the fast measurement pipeline
// against exhaustively solved small instances: for n ≤ 6 the campaign
// pool measures the broadcast times certified by the beam and deep-line
// search adversaries, and every measurement must sit at or below the
// exact game value t*(Tn) from internal/gamesolver — which itself must
// sit inside the paper's bound curves. A measurement above the exact
// optimum would mean a broken engine (counting rounds wrong) or a broken
// solver; an exact value outside the sandwich would falsify the bound
// formulas. The schedules run as ad-hoc campaign jobs so the comparison
// exercises the same pool, sources, and aggregation the real sweeps use.
//
// The n = 6 leg — previously out of reach — runs the parallel pruned
// solver cold (tens of seconds on one core, less on many); it is skipped
// in -short mode and under the race detector, where the solve's
// instrumentation cost would dominate the package.
func TestExactCrossValidation(t *testing.T) {
	maxCrossN := 6
	if testing.Short() || raceEnabled {
		maxCrossN = 5
	}
	for n := 2; n <= maxCrossN; n++ {
		var opts []gamesolver.Option
		if n > gamesolver.MaxN {
			opts = append(opts, gamesolver.WithMaxN(n), gamesolver.Parallel(0))
		}
		solver, err := gamesolver.New(n, opts...)
		if err != nil {
			t.Fatalf("gamesolver.New(%d): %v", n, err)
		}
		exact := solver.Value()
		if lo, hi := bounds.Lower(n), bounds.UpperLinear(n); exact < lo || exact > hi {
			t.Fatalf("n=%d: exact value %d outside the paper's sandwich [%d, %d]", n, exact, lo, hi)
		}

		// Beam searches from several seeds plus the deep-line search, each
		// measured as one campaign job replaying its schedule on a fresh
		// engine.
		var jobs []Job
		addReplay := func(cell string, rep adversary.Replay, certified int) {
			jobs = append(jobs, Job{
				Index: len(jobs),
				Cell:  cell,
				Src:   rng.New(uint64(len(jobs) + 1)), // unused by Replay; jobs own a source by contract
				Run: func(_ context.Context, _ *rng.Source) ([]Measurement, error) {
					rounds, err := core.BroadcastTime(n, rep)
					if err != nil {
						return nil, err
					}
					if rounds != certified {
						return nil, fmt.Errorf("replay of %s survives %d rounds, search certified %d", cell, rounds, certified)
					}
					return []Measurement{{Cell: cell, Value: float64(rounds)}}, nil
				},
			})
		}
		for seed := uint64(1); seed <= 4; seed++ {
			rep, certified := adversary.BeamSearch(n, adversary.BeamConfig{Width: 8, Seed: seed})
			addReplay(fmt.Sprintf("beam/n=%d/seed=%d", n, seed), rep, certified)
		}
		budget, width := 4000, 8
		if n == 6 {
			// The configuration experiment E7 documents as certifying
			// t*(T6); the wide shallow default plateaus below 7 here.
			budget, width = 6000, 4
		}
		line, certified, err := gamesolver.DeepestLine(n, budget, width)
		if err != nil {
			t.Fatalf("DeepestLine(%d): %v", n, err)
		}
		addReplay(fmt.Sprintf("deepline/n=%d", n), adversary.Replay{Trees: line}, certified)

		results, err := Run(context.Background(), jobs, Config{Workers: 2})
		if err != nil {
			t.Fatalf("n=%d: campaign Run: %v", n, err)
		}
		if err := JoinErrors(results); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for _, c := range Aggregate(results) {
			if int(c.Max) > exact {
				t.Errorf("n=%d: campaign-measured %s = %v rounds exceeds the exact optimum %d", n, c.Cell, c.Max, exact)
			}
			if int(c.Max) < bounds.Lower(2) { // any schedule survives at least one round for n >= 2
				t.Errorf("n=%d: %s measured %v rounds, want >= 1", n, c.Cell, c.Max)
			}
		}
		// The deep-line search is exhaustive-with-budget at these sizes:
		// it must certify the exact optimum for n ≤ 4 (and may for 5),
		// and at n = 6 the E7 configuration reaches t*(T6) too, pinning
		// solver and search against each other at the largest n both
		// cover.
		if (n <= 4 || n == 6) && certified != exact {
			t.Errorf("n=%d: deep-line certifies %d, exact solver says %d", n, certified, exact)
		}
	}
}
