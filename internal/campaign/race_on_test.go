//go:build race

package campaign

// raceEnabled lets tests scale down work that is fine natively but far
// too slow under the race detector (the n = 6 exact solve).
const raceEnabled = true
