// Package campaign is the parallel experiment orchestrator: it compiles a
// declarative sweep specification (adversary × n × k × trials × goal) into
// a flat list of jobs with deterministically pre-split random sources, and
// executes them on a context-cancellable worker pool sized to GOMAXPROCS.
//
// The hard invariant of the package is bit-identical output: for a fixed
// Spec (including its seed), the aggregated Outcome is the same regardless
// of the worker count and of goroutine scheduling. Two mechanisms enforce
// it:
//
//   - Every job owns a private rng.Source, split from the campaign's root
//     source serially at compile time, in job-index order. Workers never
//     share a generator, so execution order cannot perturb any stream.
//   - Results land in a slice indexed by job index (disjoint writes, no
//     locks), and aggregation walks that slice in index order. Scheduling
//     can reorder execution but never observation.
//
// The experiment package routes its trial loops through Run, the
// cmd/campaign binary drives RunSpec from a JSON spec, and the root
// dyntreecast package re-exports Spec/RunSpec as Campaign/RunCampaign.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"dyntreecast/internal/rng"
)

// Measurement is one named scalar produced by a job. Jobs that observe
// several quantities on a single run (e.g. broadcast and gossip completion
// of the same schedule) emit one Measurement per quantity.
type Measurement struct {
	Cell  string  // aggregation key; jobs sharing a cell are pooled
	Value float64 // the observed quantity (usually a round count)
}

// Job is one unit of work: typically a single simulated run of one grid
// point. Jobs are created in a deterministic compile order and each owns a
// pre-split random source, so any worker may execute any job without
// affecting results.
type Job struct {
	Index int         // position in compile order; doubles as the result slot
	Src   *rng.Source // private generator, pre-split at compile time
	Run   func(ctx context.Context, src *rng.Source) ([]Measurement, error)
}

// JobResult reports one executed (or skipped) job.
type JobResult struct {
	Index        int
	Measurements []Measurement
	Err          error
	Skipped      bool // true when cancellation prevented the job from running
}

// Config tunes a Run.
type Config struct {
	// Workers is the pool size; <= 0 selects runtime.GOMAXPROCS(0).
	Workers int
	// Progress, when non-nil, is called after every completed job with the
	// number of jobs finished so far and the total. Calls are serialized
	// and done is nondecreasing.
	Progress func(done, total int)
}

// Run executes jobs on a worker pool and returns one JobResult per job, in
// job-index order. Job-level errors are recorded in the results (join them
// with JoinErrors if the caller wants all-or-nothing semantics); the
// returned error is non-nil only when ctx was cancelled, in which case the
// results for jobs that did complete are still returned and the rest are
// marked Skipped.
func Run(ctx context.Context, jobs []Job, cfg Config) ([]JobResult, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]JobResult, len(jobs))
	for i := range results {
		results[i] = JobResult{Index: i, Skipped: true}
	}
	if len(jobs) == 0 {
		return results, ctx.Err()
	}

	var (
		wg    sync.WaitGroup
		mu    sync.Mutex // serializes the progress callback
		done  int
		jobCh = make(chan int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobCh {
				if err := ctx.Err(); err != nil {
					// Drain without running so the feeder never blocks.
					continue
				}
				job := jobs[idx]
				ms, err := job.Run(ctx, job.Src)
				results[idx] = JobResult{Index: idx, Measurements: ms, Err: err}
				if cfg.Progress != nil {
					mu.Lock()
					done++
					cfg.Progress(done, len(jobs))
					mu.Unlock()
				}
			}
		}()
	}
feed:
	for i := range jobs {
		select {
		case jobCh <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobCh)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		for i := range results {
			if results[i].Skipped {
				results[i].Err = err
			}
		}
		return results, fmt.Errorf("campaign: cancelled: %w", err)
	}
	return results, nil
}

// JoinErrors returns the job-level errors of results joined in job-index
// order, or nil if every job succeeded. Skipped jobs' cancellation errors
// are included, so after a cancelled Run this is non-nil.
func JoinErrors(results []JobResult) error {
	var errs []error
	for _, r := range results {
		if r.Err != nil {
			errs = append(errs, r.Err)
		}
	}
	return errors.Join(errs...)
}
