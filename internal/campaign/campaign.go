// Package campaign is the parallel experiment orchestrator: it compiles a
// declarative sweep specification (scenarios × n × trials × goal) into a
// flat list of jobs with deterministically pre-split random sources, and
// executes them on a context-cancellable worker pool sized to GOMAXPROCS.
//
// Scenarios name adversary families from an open registry (scenario.go,
// DESIGN.md §3c): each family self-describes its parameters — names,
// kinds, defaults, per-n feasibility — and Register lets downstream code
// plug custom families into specs, caching, checkpointing, and the
// campaignd daemon. The legacy adversaries/ks spec form is still accepted
// and canonicalized into scenarios (Spec.Canonical), sharing identities
// with the scenario spelling byte for byte.
//
// The hard invariant of the package is bit-identical output: for a fixed
// Spec (including its seed), the aggregated Outcome is the same regardless
// of the worker count and of goroutine scheduling. Two mechanisms enforce
// it:
//
//   - Every job owns a private rng.Source, pre-split at compile time.
//     Spec.Compile derives each grid cell's streams content-addressed —
//     from a hash of the campaign seed and the cell's own coordinates —
//     and splits per-trial sources serially in trial order, so a cell's
//     results do not even depend on what else the grid contains. Workers
//     never share a generator, so execution order cannot perturb any
//     stream.
//   - Results land in a slice indexed by job index (disjoint writes, no
//     locks), and aggregation walks that slice in index order. Scheduling
//     can reorder execution but never observation.
//
// On top of the runner sits the campaign service layer (DESIGN.md §3b):
// checkpoint/resume (checkpoint.go) snapshots completed jobs to a JSONL
// file and ResumeSpec continues an interrupted campaign to a byte-identical
// artifact, and the content-addressed cell cache (Config.Cache, backed by
// the cache subpackage) lets overlapping grids reuse previously computed
// cells. Both are sound only because of the determinism contract above.
//
// The experiment package routes its trial loops through Run, the
// cmd/campaign binary drives RunSpec from a JSON spec, cmd/campaignd
// serves campaigns over HTTP via internal/server, and the root
// dyntreecast package re-exports Spec/RunSpec as Campaign/RunCampaign.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"dyntreecast/internal/campaign/cache"
	"dyntreecast/internal/rng"
)

// Measurement is one named scalar produced by a job. Jobs that observe
// several quantities on a single run (e.g. broadcast and gossip completion
// of the same schedule) emit one Measurement per quantity. The JSON form
// is the unit of the checkpoint and cache formats.
type Measurement struct {
	Cell  string  `json:"cell"`  // aggregation key; jobs sharing a cell are pooled
	Value float64 `json:"value"` // the observed quantity (usually a round count)
}

// Job is one unit of work: typically a single simulated run of one grid
// point. Jobs are created in a deterministic compile order and each owns a
// pre-split random source, so any worker may execute any job without
// affecting results.
type Job struct {
	Index int         // position in compile order; doubles as the result slot
	Cell  string      // aggregation cell (set by Spec.Compile; "" for ad-hoc jobs)
	Src   *rng.Source // private generator, pre-split at compile time
	Run   func(ctx context.Context, src *rng.Source) ([]Measurement, error)
}

// JobResult reports one executed (or skipped) job.
type JobResult struct {
	Index        int
	Measurements []Measurement
	Err          error
	Skipped      bool // true when cancellation prevented the job from running
}

// Config tunes a Run.
type Config struct {
	// Workers is the pool size; <= 0 selects runtime.GOMAXPROCS(0).
	Workers int
	// Progress, when non-nil, is called after every completed job with the
	// number of jobs finished so far and the total. Calls are serialized
	// and done is nondecreasing. Jobs reused from Completed count toward
	// the initial done value but trigger no call.
	Progress func(done, total int)
	// OnResult, when non-nil, is called with every result produced by the
	// pool, in completion order (not job-index order). Calls are
	// serialized with each other and with Progress. Results reused from
	// Completed or from the cache are not replayed — OnResult observes
	// only fresh work, which is exactly what checkpointing and streaming
	// need.
	OnResult func(JobResult)
	// Completed maps job index → already-known result, typically loaded
	// from a checkpoint. These jobs are not executed; their results are
	// spliced into the result slice as-is (with Index and Skipped
	// normalized), which preserves byte-identical aggregation because
	// results are observed in index order regardless of provenance.
	Completed map[int]JobResult
	// Cache, when non-nil, is the content-addressed cell store consulted
	// by RunSpec: a cell whose key (spec seed, adversary, n, k, goal,
	// round budget, trial count, engine version) is present is not
	// recomputed, and freshly computed cells are stored on completion.
	// Ignored by Run, which has no cell structure.
	Cache cache.Cache
}

// Run executes jobs on a worker pool and returns one JobResult per job, in
// job-index order. Job-level errors are recorded in the results (join them
// with JoinErrors if the caller wants all-or-nothing semantics); the
// returned error is non-nil only when ctx was cancelled, in which case the
// results for jobs that did complete are still returned and the rest are
// marked Skipped.
func Run(ctx context.Context, jobs []Job, cfg Config) ([]JobResult, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]JobResult, len(jobs))
	for i := range results {
		results[i] = JobResult{Index: i, Skipped: true}
	}
	reused := 0
	for idx, r := range cfg.Completed {
		if idx < 0 || idx >= len(jobs) {
			continue
		}
		r.Index, r.Skipped = idx, false
		results[idx] = r
		reused++
	}
	if len(jobs) == 0 {
		return results, ctx.Err()
	}

	var (
		wg    sync.WaitGroup
		mu    sync.Mutex // serializes the progress + result callbacks
		done  = reused
		jobCh = make(chan int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobCh {
				if err := ctx.Err(); err != nil {
					// Drain without running so the feeder never blocks.
					continue
				}
				job := jobs[idx]
				ms, err := job.Run(ctx, job.Src)
				results[idx] = JobResult{Index: idx, Measurements: ms, Err: err}
				if cfg.Progress != nil || cfg.OnResult != nil {
					mu.Lock()
					if cfg.OnResult != nil {
						cfg.OnResult(results[idx])
					}
					done++
					if cfg.Progress != nil {
						cfg.Progress(done, len(jobs))
					}
					mu.Unlock()
				}
			}
		}()
	}
feed:
	for i := range jobs {
		if !results[i].Skipped {
			continue // reused from cfg.Completed; nothing to execute
		}
		select {
		case jobCh <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobCh)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		for i := range results {
			if results[i].Skipped {
				results[i].Err = err
			}
		}
		return results, fmt.Errorf("campaign: cancelled: %w", err)
	}
	return results, nil
}

// JoinErrors returns the job-level errors of results joined in job-index
// order, or nil if every job succeeded. Skipped jobs' cancellation errors
// are included, so after a cancelled Run this is non-nil.
func JoinErrors(results []JobResult) error {
	var errs []error
	for _, r := range results {
		if r.Err != nil {
			errs = append(errs, r.Err)
		}
	}
	return errors.Join(errs...)
}
