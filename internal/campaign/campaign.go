// Package campaign is the parallel experiment orchestrator: it compiles a
// declarative sweep specification (scenarios × n × trials × goal) into a
// flat list of jobs with deterministically pre-split random sources, and
// executes them on a context-cancellable worker pool sized to GOMAXPROCS.
//
// Jobs are scheduled as cell batches (DESIGN.md §3d): consecutive trials
// of one grid cell run sequentially on one worker, against the worker's
// Arena — a pooled core.Runner plus a per-cell reusable adversary — so
// the steady-state trial loop allocates nothing. Config.Batch caps the
// batch size (0 = whole cell) and Config.NoReuse reverts to the
// per-trial pipeline; neither changes a single output byte.
//
// Scenarios name adversary families from an open registry (scenario.go,
// DESIGN.md §3c): each family self-describes its parameters — names,
// kinds, defaults, per-n feasibility — and Register lets downstream code
// plug custom families into specs, caching, checkpointing, and the
// campaignd daemon. The legacy adversaries/ks spec form is still accepted
// and canonicalized into scenarios (Spec.Canonical), sharing identities
// with the scenario spelling byte for byte.
//
// The hard invariant of the package is bit-identical output: for a fixed
// Spec (including its seed), the aggregated Outcome is the same regardless
// of the worker count and of goroutine scheduling. Two mechanisms enforce
// it:
//
//   - Every job owns a private rng.Source, pre-split at compile time.
//     Spec.Compile derives each grid cell's streams content-addressed —
//     from a hash of the campaign seed and the cell's own coordinates —
//     and splits per-trial sources serially in trial order, so a cell's
//     results do not even depend on what else the grid contains. Workers
//     never share a generator, so execution order cannot perturb any
//     stream.
//   - Results land in a slice indexed by job index (disjoint writes, no
//     locks), and aggregation walks that slice in index order. Scheduling
//     can reorder execution but never observation.
//
// On top of the runner sits the campaign service layer (DESIGN.md §3b):
// checkpoint/resume (checkpoint.go) snapshots completed jobs to a JSONL
// file and ResumeSpec continues an interrupted campaign to a byte-identical
// artifact, and the content-addressed cell cache (Config.Cache, backed by
// the cache subpackage) lets overlapping grids reuse previously computed
// cells. Both are sound only because of the determinism contract above.
//
// The experiment package routes its trial loops through Run, the
// cmd/campaign binary drives RunSpec from a JSON spec, cmd/campaignd
// serves campaigns over HTTP via internal/server, and the root
// dyntreecast package re-exports Spec/RunSpec as Campaign/RunCampaign.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"dyntreecast/internal/campaign/cache"
	"dyntreecast/internal/core"
	"dyntreecast/internal/rng"
)

// Measurement is one named scalar produced by a job. Jobs that observe
// several quantities on a single run (e.g. broadcast and gossip completion
// of the same schedule) emit one Measurement per quantity. The JSON form
// is the unit of the checkpoint and cache formats.
type Measurement struct {
	Cell  string  `json:"cell"`  // aggregation key; jobs sharing a cell are pooled
	Value float64 `json:"value"` // the observed quantity (usually a round count)
}

// Job is one unit of work: typically a single simulated run of one grid
// point. Jobs are created in a deterministic compile order and each owns a
// pre-split random source, so any worker may execute any job without
// affecting results.
//
// The pool schedules jobs in cell batches (Config.Batch): consecutive
// jobs sharing a non-empty Cell run sequentially on one worker, whose
// Arena — a pooled core.Runner plus a per-cell reusable adversary — they
// share through RunArena. Because every job still owns its pre-split
// source and results are observed in index order, batching is invisible
// in the output: artifacts are byte-identical for every batch size and
// worker count.
type Job struct {
	Index int         // position in compile order; doubles as the result slot
	Cell  string      // aggregation cell (set by Spec.Compile; "" for ad-hoc jobs)
	Src   *rng.Source // private generator, pre-split at compile time
	// Run executes the job on a fresh engine — the reference per-trial
	// path, used when RunArena is absent or Config.NoReuse is set.
	Run func(ctx context.Context, src *rng.Source) ([]Measurement, error)
	// RunArena, when non-nil, is preferred by the pool: it receives the
	// worker's Arena and must produce results identical to Run's for the
	// same source (the batched pipeline's byte-identity tests pin this
	// for every compiled spec).
	RunArena func(ctx context.Context, src *rng.Source, a *Arena) ([]Measurement, error)
}

// ReusableAdversary is the reuse contract of the batched pipeline: an
// adversary whose per-n scratch (tree buffers, bitset rows) persists
// across the trials of a cell. Reset rebinds it to a fresh trial's
// random source; after Reset it must behave exactly as a freshly
// constructed adversary would — same draws, same trees — so that batched
// and per-trial execution stay byte-identical. The adversary package's
// Reusable* types implement it.
type ReusableAdversary interface {
	core.Adversary
	// Reset prepares the adversary to drive a fresh run from src (which
	// may be nil for source-free adversaries).
	Reset(src *rng.Source)
}

// Arena is the reusable execution state one worker owns for its whole
// lifetime: a pooled core.Runner (engine + per-run scratch, Reset per
// trial instead of reallocated) and the current cell's reusable
// adversary. Job closures receive it through RunArena.
type Arena struct {
	// Runner is the worker's pooled trial driver.
	Runner *core.Runner

	cell string
	adv  ReusableAdversary
}

// NewArena returns a fresh arena with an empty pooled runner.
func NewArena() *Arena { return &Arena{Runner: core.NewRunner()} }

// AdversaryFor returns the arena's reusable adversary for cell, invoking
// build only on first use or when the worker moved to a different cell,
// and Reset-ing it to src either way. One adversary construction per
// (worker, cell) instead of one per trial.
func (a *Arena) AdversaryFor(cell string, src *rng.Source, build func() (ReusableAdversary, error)) (ReusableAdversary, error) {
	if a.adv == nil || a.cell != cell {
		adv, err := build()
		if err != nil {
			return nil, err
		}
		a.adv, a.cell = adv, cell
	}
	a.adv.Reset(src)
	return a.adv, nil
}

// JobResult reports one executed (or skipped) job.
type JobResult struct {
	Index        int
	Measurements []Measurement
	Err          error
	Skipped      bool // true when cancellation prevented the job from running
}

// Config tunes a Run.
type Config struct {
	// Workers is the pool size; <= 0 selects runtime.GOMAXPROCS(0).
	Workers int
	// Batch caps how many consecutive same-cell jobs are scheduled as one
	// unit on one worker. 0 (the default) batches whole cells — a cell's
	// trials run sequentially against the worker's pooled Arena; 1
	// recovers the pre-batching one-trial-per-job granularity. Results
	// are identical for every value (the determinism contract is
	// per-trial); the knob trades scheduling overhead against available
	// parallelism on grids with few cells. Jobs with an empty Cell are
	// never batched together.
	Batch int
	// NoReuse disables the pooled arenas: every job runs its plain Run
	// closure on a fresh engine, recovering the seed per-trial pipeline
	// exactly. Results are identical either way — the knob exists for
	// differential testing and bisection, not tuning.
	NoReuse bool
	// Progress, when non-nil, is called after every completed job with the
	// number of jobs finished so far and the total. Calls are serialized
	// and done is nondecreasing. Jobs reused from Completed count toward
	// the initial done value but trigger no call.
	Progress func(done, total int)
	// OnResult, when non-nil, is called with every result produced by the
	// pool, in completion order (not job-index order). Calls are
	// serialized with each other and with Progress. Results reused from
	// Completed or from the cache are not replayed — OnResult observes
	// only fresh work, which is exactly what checkpointing and streaming
	// need.
	OnResult func(JobResult)
	// Completed maps job index → already-known result, typically loaded
	// from a checkpoint. These jobs are not executed; their results are
	// spliced into the result slice as-is (with Index and Skipped
	// normalized), which preserves byte-identical aggregation because
	// results are observed in index order regardless of provenance.
	Completed map[int]JobResult
	// Cache, when non-nil, is the content-addressed cell store consulted
	// by RunSpec: a cell whose key (spec seed, adversary, n, k, goal,
	// round budget, trial count, engine version) is present is not
	// recomputed, and freshly computed cells are stored on completion.
	// Ignored by Run, which has no cell structure.
	Cache cache.Cache
	// Remote, when non-nil, distributes whole grid cells to external
	// executors (internal/cluster's Coordinator over HTTP) while the
	// local pool keeps working: local workers claim unleased cells,
	// leased cells that time out are re-issued or stolen locally, and
	// results merge into the same job-indexed slice either way — so
	// remote workers (including ones that die, stall, or speak the wrong
	// engine version) can never change artifact bytes, only wall-clock
	// time; see internal/cluster's trust note. Checkpoints and the
	// cell cache compose unchanged: only cells they don't already cover
	// are distributed. Batch is ignored in remote mode (the scheduling
	// unit is the whole cell); ignored by Run, which has no cell
	// structure.
	Remote Remote
}

// Run executes jobs on a worker pool and returns one JobResult per job, in
// job-index order. Job-level errors are recorded in the results (join them
// with JoinErrors if the caller wants all-or-nothing semantics); the
// returned error is non-nil only when ctx was cancelled, in which case the
// results for jobs that did complete are still returned and the rest are
// marked Skipped.
func Run(ctx context.Context, jobs []Job, cfg Config) ([]JobResult, error) {
	results, reused := initResults(jobs, cfg.Completed)
	if len(jobs) == 0 {
		return results, ctx.Err()
	}

	batches := sliceBatches(jobs, cfg.Batch)
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(batches) {
		workers = len(batches)
	}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex // serializes the progress + result callbacks
		done    = reused
		batchCh = make(chan batch)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			arena := NewArena()
			for b := range batchCh {
				// Every batch starts from the default round budget; a
				// closure that wants a specific budget sets it per trial,
				// and one that doesn't can never inherit a previous
				// batch's.
				arena.Runner.MaxRounds = 0
				for idx := b.lo; idx < b.hi; idx++ {
					if !results[idx].Skipped {
						continue // reused from cfg.Completed
					}
					if ctx.Err() != nil {
						// Drain without running so the feeder never blocks.
						continue
					}
					ms, err := execJob(ctx, jobs[idx], arena, cfg.NoReuse)
					results[idx] = JobResult{Index: idx, Measurements: ms, Err: err}
					countJob(err)
					if cfg.Progress != nil || cfg.OnResult != nil {
						mu.Lock()
						if cfg.OnResult != nil {
							cfg.OnResult(results[idx])
						}
						done++
						if cfg.Progress != nil {
							cfg.Progress(done, len(jobs))
						}
						mu.Unlock()
					}
				}
			}
		}()
	}
feed:
	for _, b := range batches {
		pending := false
		for idx := b.lo; idx < b.hi; idx++ {
			if results[idx].Skipped {
				pending = true
				break
			}
		}
		if !pending {
			continue // fully reused from cfg.Completed; nothing to execute
		}
		mBatchTrials.Observe(float64(b.hi - b.lo))
		select {
		case batchCh <- b:
		case <-ctx.Done():
			break feed
		}
	}
	close(batchCh)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		for i := range results {
			if results[i].Skipped {
				results[i].Err = err
			}
		}
		return results, fmt.Errorf("campaign: cancelled: %w", err)
	}
	return results, nil
}

// initResults builds the result slice every execution path starts from:
// one Skipped placeholder per job, with in-range completed results
// spliced in (Index and Skipped normalized) and counted. Shared by Run
// and runRemote so the reuse semantics cannot drift between the local
// and distributed paths.
func initResults(jobs []Job, completed map[int]JobResult) ([]JobResult, int) {
	results := make([]JobResult, len(jobs))
	for i := range results {
		results[i] = JobResult{Index: i, Skipped: true}
	}
	reused := 0
	for idx, r := range completed {
		if idx < 0 || idx >= len(jobs) {
			continue
		}
		r.Index, r.Skipped = idx, false
		results[idx] = r
		reused++
	}
	return results, reused
}

// execJob runs one job on the worker's arena, preferring the pooled
// RunArena closure unless noReuse forces the reference per-trial path.
// Shared by the local pool and the remote path's local fallback so the
// dispatch rule cannot drift.
func execJob(ctx context.Context, job Job, arena *Arena, noReuse bool) ([]Measurement, error) {
	if job.RunArena != nil && (!noReuse || job.Run == nil) {
		return job.RunArena(ctx, job.Src, arena)
	}
	return job.Run(ctx, job.Src)
}

// batch is one scheduling unit: the half-open job-index range [lo, hi).
type batch struct{ lo, hi int }

// sliceBatches partitions the job list into scheduling units: maximal
// runs of consecutive jobs sharing a non-empty Cell, capped at size (<= 0
// means uncapped, i.e. whole cells). Jobs without a cell are singleton
// batches, preserving the per-trial granularity of ad-hoc job lists.
func sliceBatches(jobs []Job, size int) []batch {
	batches := make([]batch, 0, len(jobs))
	for lo := 0; lo < len(jobs); {
		hi := lo + 1
		if jobs[lo].Cell != "" {
			for hi < len(jobs) && jobs[hi].Cell == jobs[lo].Cell && (size <= 0 || hi-lo < size) {
				hi++
			}
		}
		batches = append(batches, batch{lo, hi})
		lo = hi
	}
	return batches
}

// JoinErrors returns the job-level errors of results joined in job-index
// order, or nil if every job succeeded. Skipped jobs' cancellation errors
// are included, so after a cancelled Run this is non-nil.
func JoinErrors(results []JobResult) error {
	var errs []error
	for _, r := range results {
		if r.Err != nil {
			errs = append(errs, r.Err)
		}
	}
	return errors.Join(errs...)
}
