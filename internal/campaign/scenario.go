package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"sync"

	"dyntreecast/internal/adversary"
	"dyntreecast/internal/core"
	"dyntreecast/internal/rng"
	"dyntreecast/internal/tree"
)

// This file implements the scenario layer of spec schema v2 (DESIGN.md
// §3c): an open registry of self-describing adversary families, and the
// Scenario type that selects a family with a JSON-serializable parameter
// assignment. Everything a family declares — its name, its parameters
// with kinds and defaults, its per-n feasibility — is consumed uniformly
// by spec validation, grid compilation, cache-key derivation, checkpoint
// hashing, and campaignd, so a family registered by downstream code (via
// the root package's RegisterAdversary) participates in all of them
// without touching internals.

// Parameter kinds a Family may declare. Values are validated against the
// declared kind when a scenario is canonicalized.
const (
	// IntParam accepts JSON integers (numbers with no fractional part).
	IntParam = "int"
	// FloatParam accepts any JSON number.
	FloatParam = "float"
	// StringParam accepts JSON strings.
	StringParam = "string"
	// BoolParam accepts JSON booleans.
	BoolParam = "bool"
)

// Param declares one parameter of an adversary family: its JSON key, its
// kind, and an optional default used when a scenario omits it. A Param
// with a nil Default is required. Any param may be given a JSON array in
// a scenario; the list is an axis and expands into one ground scenario
// per element (the cross product, when several params carry lists).
type Param struct {
	Name    string // JSON key inside Scenario.Params
	Kind    string // IntParam, FloatParam, StringParam, or BoolParam
	Default any    // value when omitted; nil makes the param required
	Doc     string // one-line description, surfaced by tooling
}

// Params is one concrete parameter assignment of a ground scenario. The
// values are canonicalized JSON scalars: every number is a float64, so
// assignments built in Go and assignments decoded from JSON compare (and
// hash) identically.
type Params map[string]any

// Int returns the named parameter as an int (0 when absent).
func (p Params) Int(name string) int {
	f, _ := p[name].(float64)
	return int(f)
}

// Float returns the named parameter as a float64 (0 when absent).
func (p Params) Float(name string) float64 {
	f, _ := p[name].(float64)
	return f
}

// String returns the named parameter as a string ("" when absent).
func (p Params) String(name string) string {
	s, _ := p[name].(string)
	return s
}

// Bool returns the named parameter as a bool (false when absent).
func (p Params) Bool(name string) bool {
	b, _ := p[name].(bool)
	return b
}

// Family is one self-describing adversary family in the open registry.
// The campaign layer never special-cases a family: validation, axis
// expansion, feasibility filtering, cache keys, and construction all flow
// from this declaration alone, which is what lets downstream code plug
// custom families into campaigns, caching, checkpointing, and campaignd.
type Family struct {
	// Name is the registry key scenarios reference. Lowercase
	// kebab-case by convention.
	Name string
	// Doc is a one-line description surfaced by tooling.
	Doc string
	// Params declares the family's parameters in display order (the
	// order they appear in cell names).
	Params []Param
	// Portfolio marks the members of the standard experiment suite
	// (experiment.Portfolio): the parameterless baseline adversaries the
	// paper-reproduction tables sweep. It is reserved for built-ins —
	// Register rejects user families that set it, because a grown
	// portfolio would reshuffle the E1/E2/E7 tables and their random
	// streams.
	Portfolio bool
	// Check, when non-nil, validates a ground parameter assignment at
	// spec-validation time (before any job runs), so campaignd can
	// reject a bad scenario with a 400 instead of failing jobs.
	Check func(p Params) error
	// Feasible, when non-nil, reports whether the assignment is runnable
	// at n; infeasible grid points are skipped, mirroring the k > n−1
	// rule of the restricted families.
	Feasible func(n int, p Params) bool
	// New constructs the adversary for one job. It must return an error
	// — never panic — on bad inputs: this path is reachable from user
	// input through campaign specs and campaignd requests.
	New func(n int, p Params, src *rng.Source) (core.Adversary, error)
	// NewReusable, when non-nil, constructs the family's reusable form
	// for the batched pipeline (DESIGN.md §3d): one adversary per
	// (worker, cell) whose per-n scratch persists across trials, rebound
	// to each trial's source via Reset. It must be behaviorally identical
	// to New — same draws from the same source, same trees — since the
	// byte-identity of batched artifacts rests on it. Families without it
	// are simply constructed per trial by the batched pipeline too.
	NewReusable func(n int, p Params) (ReusableAdversary, error)
}

// Scenario selects one adversary family with a parameter assignment for
// a campaign grid. Params maps the family's declared parameter names to
// JSON scalars, or to arrays of scalars: an array is an axis and expands
// into one scenario per element (arrays on several params expand to
// their cross product). Omitted params take their declared defaults.
type Scenario struct {
	Adversary string         `json:"adversary"`
	Params    map[string]any `json:"params,omitempty"`
}

// String renders the scenario compactly for error messages:
// name{"k":2} or just the name when there are no params.
func (sc Scenario) String() string {
	if len(sc.Params) == 0 {
		return sc.Adversary
	}
	data, err := json.Marshal(sc.Params)
	if err != nil {
		return sc.Adversary
	}
	return sc.Adversary + string(data)
}

// registry is the process-wide family table. Built-ins are installed by
// init; Register appends. Order is canonical: it fixes Families(),
// Adversaries(), and legacy-spec expansion order.
var (
	regMu     sync.RWMutex
	regOrder  []string
	regByName = make(map[string]Family)
)

func init() {
	for _, f := range append(builtinFamilies(), searchFamilies()...) {
		if err := register(f, true); err != nil {
			panic(err) // built-ins are statically correct
		}
	}
}

// Register adds an adversary family to the open registry, making it
// addressable from campaign specs, cmd/campaign and cmd/sweep flags, and
// campaignd submissions — including their cache, checkpoint, and resume
// paths. Names are unique; re-registering one is an error, as is setting
// Portfolio (reserved for built-ins). Safe for concurrent use. The root
// package re-exports this as RegisterAdversary.
func Register(f Family) error { return register(f, false) }

func register(f Family, builtin bool) error {
	if f.Name == "" {
		return fmt.Errorf("campaign: registering adversary family with empty name")
	}
	if f.Portfolio && !builtin {
		return fmt.Errorf("campaign: family %q: Portfolio is reserved for the built-in experiment suite", f.Name)
	}
	if f.New == nil {
		return fmt.Errorf("campaign: adversary family %q has no constructor", f.Name)
	}
	// Copy the params so normalizing defaults below never mutates the
	// caller's slice.
	f.Params = append([]Param(nil), f.Params...)
	seen := make(map[string]bool, len(f.Params))
	for i, p := range f.Params {
		if p.Name == "" {
			return fmt.Errorf("campaign: family %q declares a param with no name", f.Name)
		}
		if seen[p.Name] {
			return fmt.Errorf("campaign: family %q declares param %q twice", f.Name, p.Name)
		}
		seen[p.Name] = true
		switch p.Kind {
		case IntParam, FloatParam, StringParam, BoolParam:
		default:
			return fmt.Errorf("campaign: family %q param %q has unknown kind %q", f.Name, p.Name, p.Kind)
		}
		if p.Default != nil {
			norm, err := normalizeScalar(p.Default, p.Kind)
			if err != nil {
				return fmt.Errorf("campaign: family %q param %q default: %w", f.Name, p.Name, err)
			}
			// Store the canonical form so Families() exposes defaults
			// under the same invariant as Params values (numbers are
			// float64) and expansion can use them verbatim.
			f.Params[i].Default = norm
		}
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := regByName[f.Name]; dup {
		return fmt.Errorf("campaign: adversary family %q already registered", f.Name)
	}
	regByName[f.Name] = f
	regOrder = append(regOrder, f.Name)
	return nil
}

// Families returns every registered adversary family in canonical order:
// built-ins first, then user registrations in registration order.
func Families() []Family {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Family, len(regOrder))
	for i, name := range regOrder {
		out[i] = regByName[name]
	}
	return out
}

// Adversaries returns the registered family names in canonical order.
func Adversaries() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return append([]string(nil), regOrder...)
}

func familyByName(name string) (Family, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	f, ok := regByName[name]
	return f, ok
}

// ParseScenario parses a command-line scenario argument: either a bare
// family name ("random-tree") or a JSON object
// ({"adversary":"k-leaves","params":{"k":[2,4]}}). Used by cmd/campaign
// -scenario and cmd/sweep -scenario. Exactly one scenario is accepted:
// trailing non-whitespace after the JSON object is an error, so a shell
// quoting slip that crams two scenarios into one argument fails loudly
// instead of silently dropping everything after the first object.
func ParseScenario(s string) (Scenario, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Scenario{}, fmt.Errorf("campaign: empty scenario")
	}
	if !strings.HasPrefix(s, "{") {
		return Scenario{Adversary: s}, nil
	}
	var sc Scenario
	dec := json.NewDecoder(strings.NewReader(s))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return Scenario{}, fmt.Errorf("campaign: parsing scenario %q: %w", s, err)
	}
	// json.Decoder.Decode returns after one value; anything left over
	// (another object, a stray token) would otherwise be lost.
	if _, err := dec.Token(); err != io.EOF {
		return Scenario{}, fmt.Errorf("campaign: scenario %q has trailing data after the JSON object (one scenario per -scenario flag)", s)
	}
	return sc, nil
}

// ScenarioFlag is a flag.Value accumulating repeated -scenario
// command-line arguments, each in ParseScenario's grammar. Shared by
// cmd/campaign and cmd/sweep so the two binaries cannot drift.
type ScenarioFlag []Scenario

// String renders the accumulated scenarios for flag help.
func (f *ScenarioFlag) String() string {
	parts := make([]string, len(*f))
	for i, sc := range *f {
		parts[i] = sc.String()
	}
	return strings.Join(parts, " ")
}

// Set implements flag.Value.
func (f *ScenarioFlag) Set(s string) error {
	sc, err := ParseScenario(s)
	if err != nil {
		return err
	}
	*f = append(*f, sc)
	return nil
}

// groundScenario is a fully-resolved grid scenario: one family with every
// param a canonical scalar (axes expanded, defaults filled). Its canon
// string is the identity that cache keys and stream seeds hash.
type groundScenario struct {
	family Family
	params Params
	canon  string // family name + canonical sorted-key params JSON
}

// scenario converts the ground form back to the public Scenario shape
// (nil Params when the family has none, keeping canonical specs minimal).
func (g groundScenario) scenario() Scenario {
	if len(g.params) == 0 {
		return Scenario{Adversary: g.family.Name}
	}
	return Scenario{Adversary: g.family.Name, Params: g.params}
}

// cellName is the human-readable aggregation key of the scenario at n:
// the family name, n, then each declared param in declaration order —
// "k-leaves/n=16/k=2", matching the pre-v2 CellKey format for the
// built-in k families.
func (g groundScenario) cellName(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/n=%d", g.family.Name, n)
	for _, p := range g.family.Params {
		fmt.Fprintf(&b, "/%s=%s", p.Name, formatParamValue(g.params[p.Name]))
	}
	return b.String()
}

// feasible reports whether the scenario can run at n.
func (g groundScenario) feasible(n int) bool {
	return g.family.Feasible == nil || g.family.Feasible(n, g.params)
}

func formatParamValue(v any) string {
	switch x := v.(type) {
	case float64:
		if x == math.Trunc(x) && math.Abs(x) < 1e15 {
			return strconv.FormatInt(int64(x), 10)
		}
		return strconv.FormatFloat(x, 'g', -1, 64)
	case string:
		return x
	case bool:
		return strconv.FormatBool(x)
	}
	return fmt.Sprint(v)
}

// canonicalParams renders the assignment as sorted-key compact JSON —
// the canonical form hashed into cache keys and spec hashes.
func canonicalParams(p Params) string {
	if len(p) == 0 {
		return "{}"
	}
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		kb, _ := json.Marshal(k)
		vb, _ := json.Marshal(p[k])
		b.Write(kb)
		b.WriteByte(':')
		b.Write(vb)
	}
	b.WriteByte('}')
	return b.String()
}

// expandScenario resolves one Scenario into its ground scenarios: looks
// up the family, validates parameter names and kinds, expands axis lists
// into the cross product (in declared-param order, first param
// outermost), fills defaults, and runs the family's Check on every
// ground assignment. Every error names the offending scenario.
func expandScenario(sc Scenario) ([]groundScenario, error) {
	f, ok := familyByName(sc.Adversary)
	if !ok {
		return nil, fmt.Errorf("campaign: scenario %s: unknown adversary (known: %v)", sc, Adversaries())
	}
	declared := make(map[string]bool, len(f.Params))
	for _, p := range f.Params {
		declared[p.Name] = true
	}
	for name := range sc.Params {
		if !declared[name] {
			return nil, fmt.Errorf("campaign: scenario %s: family %q has no param %q", sc, f.Name, name)
		}
	}
	// Per declared param, the list of canonical values it contributes to
	// the cross product (length 1 unless the scenario gave an axis list).
	axes := make([][]any, len(f.Params))
	for i, p := range f.Params {
		raw, given := sc.Params[p.Name]
		if !given {
			if p.Default == nil {
				return nil, fmt.Errorf("campaign: scenario %s: missing required param %q (%s)", sc, p.Name, p.Kind)
			}
			// Defaults were normalized at registration time.
			axes[i] = []any{p.Default}
			continue
		}
		vals, err := normalizeValues(raw, p.Kind)
		if err != nil {
			return nil, fmt.Errorf("campaign: scenario %s: param %q: %w", sc, p.Name, err)
		}
		axes[i] = vals
	}
	grounds := []groundScenario{{family: f, params: Params{}}}
	for i, p := range f.Params {
		next := make([]groundScenario, 0, len(grounds)*len(axes[i]))
		for _, g := range grounds {
			for _, v := range axes[i] {
				np := make(Params, len(g.params)+1)
				for k, x := range g.params {
					np[k] = x
				}
				np[p.Name] = v
				next = append(next, groundScenario{family: f, params: np})
			}
		}
		grounds = next
	}
	for i := range grounds {
		if len(grounds[i].params) == 0 {
			grounds[i].params = nil
		}
		grounds[i].canon = grounds[i].family.Name + canonicalParams(grounds[i].params)
		if f.Check != nil {
			if err := f.Check(grounds[i].params); err != nil {
				return nil, fmt.Errorf("campaign: scenario %s: %w", grounds[i].scenario(), err)
			}
		}
	}
	return grounds, nil
}

// GroundScenarios expands sc — axis lists crossed, defaults filled,
// values canonicalized, the family's Check run — into its ground
// scenarios, exactly as spec compilation would. It is the exported face
// of expandScenario for meta-campaign layers (internal/evolve) that
// build and validate candidate scenarios against the same rules.
func GroundScenarios(sc Scenario) ([]Scenario, error) {
	grounds, err := expandScenario(sc)
	if err != nil {
		return nil, err
	}
	out := make([]Scenario, len(grounds))
	for i, g := range grounds {
		out[i] = g.scenario()
	}
	return out, nil
}

// CellName returns the display key ("k-leaves/n=16/k=2") under which
// RunSpec aggregates the scenario's grid cell at n. The scenario must be
// ground — expanding to exactly one parameter assignment — since an axis
// list names many cells.
func CellName(sc Scenario, n int) (string, error) {
	grounds, err := expandScenario(sc)
	if err != nil {
		return "", err
	}
	if len(grounds) != 1 {
		return "", fmt.Errorf("campaign: scenario %s expands to %d grid cells; CellName needs a ground scenario", sc, len(grounds))
	}
	return grounds[0].cellName(n), nil
}

// normalizeValues canonicalizes a scenario param value: a scalar becomes
// a one-element slice, a list (axis) becomes its normalized elements.
func normalizeValues(raw any, kind string) ([]any, error) {
	rv := reflect.ValueOf(raw)
	if raw != nil && (rv.Kind() == reflect.Slice || rv.Kind() == reflect.Array) {
		if rv.Len() == 0 {
			return nil, fmt.Errorf("empty axis list")
		}
		out := make([]any, rv.Len())
		for i := range out {
			v, err := normalizeScalar(rv.Index(i).Interface(), kind)
			if err != nil {
				return nil, fmt.Errorf("axis element %d: %w", i, err)
			}
			out[i] = v
		}
		return out, nil
	}
	v, err := normalizeScalar(raw, kind)
	if err != nil {
		return nil, err
	}
	return []any{v}, nil
}

// normalizeScalar converts a JSON- or Go-supplied scalar to canonical
// form (numbers → float64) and checks it against the declared kind.
func normalizeScalar(raw any, kind string) (any, error) {
	switch kind {
	case IntParam, FloatParam:
		f, ok := toFloat(raw)
		if !ok {
			return nil, fmt.Errorf("want %s, got %T", kind, raw)
		}
		if kind == IntParam && f != math.Trunc(f) {
			return nil, fmt.Errorf("want int, got %v", f)
		}
		return f, nil
	case StringParam:
		s, ok := raw.(string)
		if !ok {
			return nil, fmt.Errorf("want string, got %T", raw)
		}
		if err := checkStringParamValue(s); err != nil {
			return nil, err
		}
		return s, nil
	case BoolParam:
		b, ok := raw.(bool)
		if !ok {
			return nil, fmt.Errorf("want bool, got %T", raw)
		}
		return b, nil
	}
	return nil, fmt.Errorf("unknown param kind %q", kind)
}

// checkStringParamValue rejects string parameter values that would
// corrupt the derived plain-text identities they are embedded in: cell
// display keys ("family/n=8/mode=greedy" — '/' and '=' are its
// separators), CSV artifact rows (','), and the line-oriented checkpoint
// JSONL and progress output (control characters, including newlines).
// Enforced in normalizeScalar so both registration-time defaults and
// scenario values pass through it; canonical JSON identities were never
// at risk, but the human-readable artifacts are part of the byte-identity
// contract too.
func checkStringParamValue(s string) error {
	for _, r := range s {
		switch {
		case r == '/' || r == '=' || r == ',':
			return fmt.Errorf("string value %q contains %q (reserved as a cell-key/CSV separator)", s, r)
		case r < 0x20 || r == 0x7f:
			return fmt.Errorf("string value %q contains a control character (%q)", s, r)
		}
	}
	return nil
}

func toFloat(raw any) (float64, bool) {
	switch x := raw.(type) {
	case float64:
		return x, true
	case float32:
		return float64(x), true
	case int:
		return float64(x), true
	case int8:
		return float64(x), true
	case int16:
		return float64(x), true
	case int32:
		return float64(x), true
	case int64:
		return float64(x), true
	case uint:
		return float64(x), true
	case uint8:
		return float64(x), true
	case uint16:
		return float64(x), true
	case uint32:
		return float64(x), true
	case uint64:
		return float64(x), true
	case json.Number:
		f, err := x.Float64()
		return f, err == nil
	}
	return 0, false
}

// kParam is the shared parameter declaration of the restricted families.
func kParam(doc string) []Param {
	return []Param{{Name: "k", Kind: IntParam, Doc: doc}}
}

func checkKAtLeastOne(p Params) error {
	if k := p.Int("k"); k < 1 {
		return fmt.Errorf("k must be >= 1, got %d", k)
	}
	return nil
}

func kFeasible(n int, p Params) bool {
	k := p.Int("k")
	return k >= 1 && k <= n-1
}

// builtinFamilies declares the stock registry: the six portfolio
// adversaries of experiment.Portfolio, the Zeiner et al. restricted
// families (k axis), the two-phase oblivious lower-bound schedule as the
// first multi-parameter family, and the stale-information variant of the
// ascending-path heuristic. The search-backed families (beam-search,
// deepest-line) are declared separately in search.go and registered by
// the same init, after these.
func builtinFamilies() []Family {
	return []Family{
		{
			Name: "static-path", Doc: "the identity path every round (t* = n-1)", Portfolio: true,
			New: func(n int, _ Params, _ *rng.Source) (core.Adversary, error) {
				return adversary.Static{Tree: tree.IdentityPath(n)}, nil
			},
			NewReusable: func(n int, _ Params) (ReusableAdversary, error) {
				// The whole schedule is one tree, built once per cell.
				return adversary.Stateless{Adversary: adversary.Static{Tree: tree.IdentityPath(n)}}, nil
			},
		},
		{
			Name: "random-tree", Doc: "an independent uniformly random rooted tree per round", Portfolio: true,
			New: func(_ int, _ Params, src *rng.Source) (core.Adversary, error) {
				return adversary.Random{Src: src}, nil
			},
			NewReusable: func(int, Params) (ReusableAdversary, error) {
				return adversary.NewReusableRandom(), nil
			},
		},
		{
			Name: "random-path", Doc: "an independent uniformly random directed path per round", Portfolio: true,
			New: func(_ int, _ Params, src *rng.Source) (core.Adversary, error) {
				return adversary.RandomPath{Src: src}, nil
			},
			NewReusable: func(int, Params) (ReusableAdversary, error) {
				return adversary.NewReusableRandomPath(), nil
			},
		},
		{
			Name: "ascending-path", Doc: "adaptive: the path ordered by ascending heard-set size", Portfolio: true,
			New: func(int, Params, *rng.Source) (core.Adversary, error) {
				return adversary.AscendingPath{}, nil
			},
			NewReusable: func(int, Params) (ReusableAdversary, error) {
				return adversary.NewReusableAscendingPath(), nil
			},
		},
		{
			Name: "block-leader", Doc: "adaptive: freeze the most-spread value each round", Portfolio: true,
			New: func(int, Params, *rng.Source) (core.Adversary, error) {
				return adversary.BlockLeader{}, nil
			},
			NewReusable: func(int, Params) (ReusableAdversary, error) {
				return adversary.NewReusableBlockLeader(), nil
			},
		},
		{
			Name: "min-gain", Doc: "adaptive: minimum-knowledge-gain arborescence (Chu-Liu/Edmonds)", Portfolio: true,
			New: func(int, Params, *rng.Source) (core.Adversary, error) {
				return adversary.MinGain{}, nil
			},
			NewReusable: func(int, Params) (ReusableAdversary, error) {
				// Source-free and stateless; reuse saves only the per-trial
				// construction (its arborescence scratch is per round).
				return adversary.Stateless{Adversary: adversary.MinGain{}}, nil
			},
		},
		{
			Name: "k-leaves", Doc: "random trees with exactly k leaves (Zeiner et al., O(kn))",
			Params: kParam("exact number of leaves"), Check: checkKAtLeastOne, Feasible: kFeasible,
			New: func(n int, p Params, src *rng.Source) (core.Adversary, error) {
				k := p.Int("k")
				if k < 1 || k > n-1 {
					return nil, fmt.Errorf("k-leaves: k=%d infeasible at n=%d (want 1 <= k <= n-1)", k, n)
				}
				return adversary.KLeaves{K: k, Src: src}, nil
			},
			NewReusable: func(n int, p Params) (ReusableAdversary, error) {
				k := p.Int("k")
				if k < 1 || k > n-1 {
					return nil, fmt.Errorf("k-leaves: k=%d infeasible at n=%d (want 1 <= k <= n-1)", k, n)
				}
				return adversary.NewReusableKLeaves(k), nil
			},
		},
		{
			Name: "k-inner", Doc: "random trees with exactly k inner nodes (Zeiner et al., O(kn))",
			Params: kParam("exact number of inner nodes"), Check: checkKAtLeastOne, Feasible: kFeasible,
			New: func(n int, p Params, src *rng.Source) (core.Adversary, error) {
				k := p.Int("k")
				if k < 1 || k > n-1 {
					return nil, fmt.Errorf("k-inner: k=%d infeasible at n=%d (want 1 <= k <= n-1)", k, n)
				}
				return adversary.KInner{K: k, Src: src}, nil
			},
			NewReusable: func(n int, p Params) (ReusableAdversary, error) {
				k := p.Int("k")
				if k < 1 || k > n-1 {
					return nil, fmt.Errorf("k-inner: k=%d infeasible at n=%d (want 1 <= k <= n-1)", k, n)
				}
				return adversary.NewReusableKInner(k), nil
			},
		},
		{
			Name: "two-phase-path", Doc: "oblivious ZSS-style schedule: identity path, then a prefix-reversed path",
			Params: []Param{
				{Name: "switch_at", Kind: IntParam, Default: 0, Doc: "rounds of phase 1 (0 = n/2)"},
				{Name: "prefix", Kind: IntParam, Default: 0, Doc: "leading vertices reversed in phase 2 (0 = n/2)"},
			},
			Check: func(p Params) error {
				if s := p.Int("switch_at"); s < 0 {
					return fmt.Errorf("switch_at must be >= 0, got %d", s)
				}
				if pre := p.Int("prefix"); pre < 0 {
					return fmt.Errorf("prefix must be >= 0, got %d", pre)
				}
				return nil
			},
			// A prefix longer than the path is meaningless at that n: skip
			// the grid point (the 0 sentinel resolves to n/2, always fine),
			// mirroring the k > n−1 rule of the restricted families.
			Feasible: func(n int, p Params) bool {
				return p.Int("prefix") <= n
			},
			New: func(n int, p Params, _ *rng.Source) (core.Adversary, error) {
				switchAt, prefix := p.Int("switch_at"), p.Int("prefix")
				if switchAt == 0 {
					switchAt = n / 2
				}
				if prefix == 0 {
					prefix = n / 2
				}
				return adversary.NewTwoPhasePath(n, switchAt, prefix)
			},
			NewReusable: func(n int, p Params) (ReusableAdversary, error) {
				switchAt, prefix := p.Int("switch_at"), p.Int("prefix")
				if switchAt == 0 {
					switchAt = n / 2
				}
				if prefix == 0 {
					prefix = n / 2
				}
				return adversary.NewReusableTwoPhasePath(n, switchAt, prefix)
			},
		},
		{
			Name: "stale-ascending", Doc: "adaptive on lagged information: the ascending-path rule on heard counts lag rounds old",
			Params: []Param{
				{Name: "lag", Kind: IntParam, Default: 1, Doc: "rounds of information delay (0 = exactly ascending-path)"},
			},
			Check: func(p Params) error {
				if l := p.Int("lag"); l < 0 {
					return fmt.Errorf("lag must be >= 0, got %d", l)
				}
				return nil
			},
			New: func(_ int, p Params, _ *rng.Source) (core.Adversary, error) {
				a, err := adversary.NewStaleAscendingPath(p.Int("lag"))
				if err != nil {
					return nil, err
				}
				return a, nil
			},
			NewReusable: func(_ int, p Params) (ReusableAdversary, error) {
				// The stale adversary's ring is self-cleaning across trials,
				// so the allocating form is its own reusable form.
				a, err := adversary.NewStaleAscendingPath(p.Int("lag"))
				if err != nil {
					return nil, err
				}
				return a, nil
			},
		},
	}
}
