package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"dyntreecast/internal/bounds"
	"dyntreecast/internal/campaign/cache"
	"dyntreecast/internal/gamesolver"
)

// exactT6 is t*(T6) = 7: certified as a lower bound by the deep-line
// search (gamesolver's TestDeepestLineCertifiesLowerBoundN6) and pinned
// to the exact parallel solve by TestExactCrossValidation, so the n = 6
// leg here need not repeat the cold solve.
const exactT6 = 7

// TestSearchFamiliesAtOrBelowExact cross-validates the search-backed
// registry families against the exact game values: a campaign grid over
// beam-search and deepest-line at n ≤ 6 must measure round counts at or
// below t*(Tn) — the optimum over ALL schedules — and every cell must
// measure the SAME value on every trial, because the family replays one
// per-cell schedule rather than re-searching or re-randomizing per trial.
func TestSearchFamiliesAtOrBelowExact(t *testing.T) {
	maxN := 6
	if testing.Short() || raceEnabled {
		maxN = 5
	}
	for n := 2; n <= maxN; n++ {
		exact := exactT6
		if n <= gamesolver.MaxN {
			solver, err := gamesolver.New(n)
			if err != nil {
				t.Fatalf("gamesolver.New(%d): %v", n, err)
			}
			exact = solver.Value()
		}
		spec := Spec{
			Scenarios: []Scenario{
				{Adversary: "beam-search", Params: map[string]any{"seed": []any{1, 2}}},
				{Adversary: "deepest-line"},
			},
			Ns: []int{n}, Trials: 3, Seed: 1,
		}
		out, err := RunSpec(context.Background(), spec, Config{Workers: 2})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if out.Failed != 0 {
			t.Fatalf("n=%d: %d jobs failed: %v", n, out.Failed, out.Errors)
		}
		for _, c := range out.Cells {
			if int(c.Max) > exact {
				t.Errorf("n=%d: %s measured %v rounds, exceeds the exact optimum %d", n, c.Cell, c.Max, exact)
			}
			if c.Min != c.Max {
				t.Errorf("n=%d: %s measured [%v, %v] across trials; a replayed schedule must be constant", n, c.Cell, c.Min, c.Max)
			}
		}
	}
}

// TestSearchFamilyWarmRerunServesCachedCells: rerunning a search-family
// campaign against a warm cell cache must (a) emit a byte-identical
// artifact, (b) serve every job from the cache without executing any —
// which means the adversary is never even constructed — and (c) run zero
// new schedule searches.
func TestSearchFamilyWarmRerunServesCachedCells(t *testing.T) {
	spec := Spec{
		Scenarios: []Scenario{
			{Adversary: "beam-search", Params: map[string]any{"width": 2, "random_moves": 0, "random_trees": 0}},
			// Budget and n kept small: at n the game has n^(n-1) candidate
			// trees and every expansion scans them all, so n = 8 costs
			// minutes where n = 6 costs milliseconds.
			{Adversary: "deepest-line", Params: map[string]any{"budget": 500, "width": 2}},
		},
		Ns: []int{5, 6}, Trials: 3, Seed: 7,
	}
	c := cache.NewMemory()
	cold, err := RunSpec(context.Background(), spec, Config{Workers: 2, Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Failed != 0 {
		t.Fatalf("cold run failed jobs: %v", cold.Errors)
	}
	coldJSON, err := json.MarshalIndent(cold, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	searches := scheduleSearchCount()

	warm, err := RunSpec(context.Background(), spec, Config{Workers: 4, Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	warmJSON, err := json.MarshalIndent(warm, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldJSON, warmJSON) {
		t.Errorf("warm artifact differs from cold:\ncold: %s\nwarm: %s", coldJSON, warmJSON)
	}
	if warm.CacheHits != warm.Jobs || warm.Executed != 0 {
		t.Errorf("warm run executed %d jobs with %d/%d cache hits; want all %d served from cache",
			warm.Executed, warm.CacheHits, warm.Jobs, warm.Jobs)
	}
	if got := scheduleSearchCount(); got != searches {
		t.Errorf("warm rerun ran %d new schedule searches; want 0", got-searches)
	}
}

// TestBeamSearchFamilyAtN64: the beam-search family is usable far beyond
// the solvers' reach — a grid cell at n = 64 completes quickly (the
// search runs once per cell, trials replay it), measures a schedule at
// least as long as the static path, and respects the paper's upper bound.
func TestBeamSearchFamilyAtN64(t *testing.T) {
	spec := Spec{
		Scenarios: []Scenario{
			{Adversary: "beam-search", Params: map[string]any{"width": 2, "random_moves": 0, "random_trees": 0}},
		},
		Ns: []int{64}, Trials: 2, Seed: 11,
	}
	out, err := RunSpec(context.Background(), spec, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out.Failed != 0 || out.Completed != 2 {
		t.Fatalf("completed %d, failed %d: %v", out.Completed, out.Failed, out.Errors)
	}
	if len(out.Cells) != 1 {
		t.Fatalf("cells = %d, want 1", len(out.Cells))
	}
	c := out.Cells[0]
	if c.Min != c.Max {
		t.Errorf("replayed schedule varied across trials: [%v, %v]", c.Min, c.Max)
	}
	rounds := int(c.Max)
	if rounds < bounds.StaticPath(64) {
		t.Errorf("beam schedule at n=64 survives %d rounds, below the static path's %d", rounds, bounds.StaticPath(64))
	}
	if err := bounds.CheckSandwich(64, rounds); err != nil {
		t.Error(err)
	}
}

// TestSearchFamilyValidation: the search families' parameter checks fire
// at scenario-expansion time (spec validation), and deepest-line's
// representation limit surfaces as grid infeasibility, not a job error.
func TestSearchFamilyValidation(t *testing.T) {
	bad := []Scenario{
		{Adversary: "beam-search", Params: map[string]any{"width": 0}},
		{Adversary: "beam-search", Params: map[string]any{"random_moves": -1}},
		{Adversary: "beam-search", Params: map[string]any{"random_trees": -3}},
		{Adversary: "beam-search", Params: map[string]any{"max_rounds": -1}},
		{Adversary: "beam-search", Params: map[string]any{"seed": -1}},
		{Adversary: "deepest-line", Params: map[string]any{"budget": 0}},
		{Adversary: "deepest-line", Params: map[string]any{"width": -1}},
		{Adversary: "stale-ascending", Params: map[string]any{"lag": -1}},
	}
	for _, sc := range bad {
		if _, err := expandScenario(sc); err == nil {
			t.Errorf("scenario %s accepted, want validation error", sc)
		}
	}
	// n = 9 exceeds the game solver's uint64 packing; the grid point is
	// skipped, so a spec with only that point compiles to the empty grid.
	spec := Spec{Scenarios: []Scenario{{Adversary: "deepest-line"}}, Ns: []int{9}, Trials: 1, Seed: 1}
	if _, err := spec.Compile(); err == nil {
		t.Error("deepest-line at n=9 compiled, want empty-grid error")
	}
	// Mixed grid: the infeasible n is dropped, the feasible one runs.
	spec.Ns = []int{4, 9}
	jobs, err := spec.Compile()
	if err != nil {
		t.Fatalf("mixed-feasibility grid: %v", err)
	}
	if len(jobs) != 1 {
		t.Errorf("mixed grid compiled to %d jobs, want 1 (the n=4 cell)", len(jobs))
	}
}

// TestSearchScheduleEdgeCases exercises the construction paths the spec
// validator normally fences off — direct callers (the root facade, a
// future meta-layer) bypass Check, so the constructors must error rather
// than search under a wrong label or panic.
func TestSearchScheduleEdgeCases(t *testing.T) {
	beam, ok := familyByName("beam-search")
	if !ok {
		t.Fatal("beam-search not registered")
	}
	deep, ok := familyByName("deepest-line")
	if !ok {
		t.Fatal("deepest-line not registered")
	}
	stale, ok := familyByName("stale-ascending")
	if !ok {
		t.Fatal("stale-ascending not registered")
	}

	badBeam := Params{"width": float64(0), "random_moves": float64(4),
		"random_trees": float64(4), "max_rounds": float64(0), "seed": float64(1)}
	if _, err := beam.New(4, badBeam, nil); err == nil {
		t.Error("beam-search.New accepted width=0")
	}
	if _, err := beam.NewReusable(4, badBeam); err == nil {
		t.Error("beam-search.NewReusable accepted width=0")
	}
	badDeep := Params{"budget": float64(-1), "width": float64(2)}
	if _, err := deep.New(4, badDeep, nil); err == nil {
		t.Error("deepest-line.New accepted budget=-1")
	}
	if _, err := deep.NewReusable(4, badDeep); err == nil {
		t.Error("deepest-line.NewReusable accepted budget=-1")
	}
	if _, err := stale.New(4, Params{"lag": float64(-1)}, nil); err == nil {
		t.Error("stale-ascending.New accepted lag=-1")
	}
	if _, err := stale.NewReusable(4, Params{"lag": float64(-1)}); err == nil {
		t.Error("stale-ascending.NewReusable accepted lag=-1")
	}

	// n = 1: broadcast is already done, both searches find the empty
	// schedule, and the identity-path fallback keeps Replay a valid
	// adversary (Replay with no trees would return nil moves).
	for name, f := range map[string]Family{"beam-search": beam, "deepest-line": deep} {
		grounds, err := GroundScenarios(Scenario{Adversary: name})
		if err != nil {
			t.Fatalf("%s defaults: %v", name, err)
		}
		adv, err := f.New(1, Params(grounds[0].Params), nil)
		if err != nil {
			t.Fatalf("%s at n=1: %v", name, err)
		}
		if adv == nil {
			t.Errorf("%s at n=1 returned a nil adversary", name)
		}
	}
}
