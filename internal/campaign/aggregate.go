package campaign

import "dyntreecast/internal/stats"

// CellStats summarizes every measurement that landed in one cell:
// count/mean/min/max plus the tail percentiles the sweep tables report.
type CellStats struct {
	Cell   string  `json:"cell"`
	Count  int     `json:"count"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	P50    float64 `json:"p50"`
	P99    float64 `json:"p99"`
}

// Aggregate pools the measurements of successful jobs by cell and
// summarizes each cell through internal/stats. Results are walked in
// job-index order and cells are emitted in first-appearance order, so the
// output is independent of execution order. Failed and skipped jobs
// contribute nothing.
func Aggregate(results []JobResult) []CellStats {
	byCell := map[string][]float64{}
	var order []string
	for _, r := range results {
		if r.Err != nil || r.Skipped {
			continue
		}
		for _, m := range r.Measurements {
			if _, seen := byCell[m.Cell]; !seen {
				order = append(order, m.Cell)
			}
			byCell[m.Cell] = append(byCell[m.Cell], m.Value)
		}
	}
	out := make([]CellStats, 0, len(order))
	for _, cell := range order {
		xs := byCell[cell]
		s := stats.Summarize(xs)
		out = append(out, CellStats{
			Cell:   cell,
			Count:  s.Count,
			Mean:   s.Mean,
			StdDev: s.StdDev,
			Min:    s.Min,
			Max:    s.Max,
			P50:    stats.Percentile(xs, 50),
			P99:    stats.Percentile(xs, 99),
		})
	}
	return out
}

// CellByKey returns the stats of the named cell, or false if the campaign
// produced no measurements for it.
func CellByKey(cells []CellStats, key string) (CellStats, bool) {
	for _, c := range cells {
		if c.Cell == key {
			return c, true
		}
	}
	return CellStats{}, false
}
