package campaign

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"dyntreecast/internal/campaign/cache"
)

// TestCacheWarmRunRecomputesNothing: a second run of the same spec against
// the same cache executes zero jobs and still produces a byte-identical
// artifact.
func TestCacheWarmRunRecomputesNothing(t *testing.T) {
	spec := detSpec()
	c := cache.NewMemory()

	cold, err := RunSpec(context.Background(), spec, Config{Workers: 2, Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHits != 0 || cold.Executed != cold.Jobs {
		t.Fatalf("cold run: hits/executed = %d/%d, want 0/%d", cold.CacheHits, cold.Executed, cold.Jobs)
	}

	warm, err := RunSpec(context.Background(), spec, Config{Workers: 2, Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheHits != warm.Jobs || warm.Executed != 0 {
		t.Fatalf("warm run: hits/executed = %d/%d, want %d/0", warm.CacheHits, warm.Executed, warm.Jobs)
	}
	if !bytes.Equal(artifactBytes(t, cold), artifactBytes(t, warm)) {
		t.Error("warm artifact differs from cold artifact")
	}
}

// TestCacheOverlappingGridRecomputesOnlyNewCells is the content-addressing
// guarantee: growing a grid recomputes only the genuinely new cells, and
// the enlarged campaign's artifact is byte-identical to a cache-free run.
func TestCacheOverlappingGridRecomputesOnlyNewCells(t *testing.T) {
	small := Spec{
		Adversaries: []string{"random-tree", "random-path"},
		Ns:          []int{8, 16},
		Trials:      5,
		Seed:        42,
	}
	big := small
	big.Ns = []int{8, 16, 24} // one new n per adversary
	big.Adversaries = append([]string{}, small.Adversaries...)
	big.Adversaries = append(big.Adversaries, "ascending-path") // one new adversary

	c := cache.NewMemory()
	if _, err := RunSpec(context.Background(), small, Config{Cache: c}); err != nil {
		t.Fatal(err)
	}

	warm, err := RunSpec(context.Background(), big, Config{Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	// Shared cells: 2 adversaries × 2 ns × 5 trials = 20 jobs from cache;
	// new cells: 2 adversaries × 1 n + 1 adversary × 3 ns = 5 cells = 25 jobs.
	if warm.CacheHits != 20 {
		t.Errorf("cache hits = %d, want 20 (the overlapping cells)", warm.CacheHits)
	}
	if warm.Executed != 25 {
		t.Errorf("executed = %d, want 25 (only the new cells)", warm.Executed)
	}

	cacheFree, err := RunSpec(context.Background(), big, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(artifactBytes(t, warm), artifactBytes(t, cacheFree)) {
		t.Error("cache-assisted artifact differs from cache-free artifact")
	}
}

// TestCellStreamsArePositionIndependent pins the property the cache rests
// on: a cell's results depend only on the campaign seed and the cell's own
// coordinates, not on where the cell sits in the grid.
func TestCellStreamsArePositionIndependent(t *testing.T) {
	alone := Spec{Adversaries: []string{"random-path"}, Ns: []int{16}, Trials: 6, Seed: 9}
	crowded := Spec{
		Adversaries: []string{"random-tree", "random-path"},
		Ns:          []int{8, 16, 32},
		Trials:      6,
		Seed:        9,
	}
	a, err := RunSpec(context.Background(), alone, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSpec(context.Background(), crowded, Config{})
	if err != nil {
		t.Fatal(err)
	}
	key := CellKey("random-path", 16, -1)
	ca, ok := CellByKey(a.Cells, key)
	if !ok {
		t.Fatal("cell missing from lone run")
	}
	cb, ok := CellByKey(b.Cells, key)
	if !ok {
		t.Fatal("cell missing from crowded run")
	}
	if ca != cb {
		t.Errorf("cell stats depend on grid position:\n%+v\nvs\n%+v", ca, cb)
	}
}

// TestCacheIgnoresCorruptEntries: a torn or foreign cache entry is
// recomputed, not served.
func TestCacheIgnoresCorruptEntries(t *testing.T) {
	spec := Spec{Adversaries: []string{"random-path"}, Ns: []int{8}, Trials: 3, Seed: 4}
	c := cache.NewMemory()
	clean, err := RunSpec(context.Background(), spec, Config{Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	key := cellKeyFor(t, spec, "random-path", 8, -1)
	if err := c.Put(key, []byte("{torn")); err != nil {
		t.Fatal(err)
	}
	again, err := RunSpec(context.Background(), spec, Config{Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	if again.CacheHits != 0 || again.Executed != again.Jobs {
		t.Errorf("corrupt entry served: hits/executed = %d/%d", again.CacheHits, again.Executed)
	}
	if !bytes.Equal(artifactBytes(t, clean), artifactBytes(t, again)) {
		t.Error("recomputed artifact differs")
	}
	// The recomputation must have repaired the entry.
	repaired, err := RunSpec(context.Background(), spec, Config{Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	if repaired.CacheHits != repaired.Jobs {
		t.Errorf("entry not repaired: hits = %d, want %d", repaired.CacheHits, repaired.Jobs)
	}
}

// TestCacheDeletesTruncatedDirEntries is the dir-backend robustness
// regression: a hand-truncated cell file (disk corruption, a partial
// copy) is treated as a miss AND deleted on detection — the campaign
// completes with a byte-identical artifact and the bad file never
// lingers to be served to a non-writing reader.
func TestCacheDeletesTruncatedDirEntries(t *testing.T) {
	spec := Spec{Adversaries: []string{"random-path"}, Ns: []int{8}, Trials: 3, Seed: 4}
	dir, err := cache.NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	clean, err := RunSpec(context.Background(), spec, Config{Cache: dir})
	if err != nil {
		t.Fatal(err)
	}
	key := cellKeyFor(t, spec, "random-path", 8, -1)
	whole, ok, err := dir.Get(key)
	if err != nil || !ok {
		t.Fatalf("cell entry missing after run: ok=%v err=%v", ok, err)
	}
	// Hand-truncate the stored file to half its bytes, as fsck would find
	// it after losing a tail of blocks.
	if err := dir.Put(key, whole[:len(whole)/2]); err != nil {
		t.Fatal(err)
	}

	// Observe the deletion through a decorator that records it, proving
	// the corrupt entry was evicted at detection time (not merely
	// overwritten later by the recomputation's Put).
	rec := &recordingCache{Cache: dir, dir: dir}
	again, err := RunSpec(context.Background(), spec, Config{Cache: rec})
	if err != nil {
		t.Fatalf("campaign failed on a truncated cache file: %v", err)
	}
	if rec.deleted != 1 {
		t.Errorf("deletes = %d, want 1 (the truncated entry)", rec.deleted)
	}
	if again.CacheHits != 0 || again.Executed != again.Jobs {
		t.Errorf("truncated entry served: hits/executed = %d/%d", again.CacheHits, again.Executed)
	}
	if !bytes.Equal(artifactBytes(t, clean), artifactBytes(t, again)) {
		t.Error("artifact after truncation-recovery differs from the clean run")
	}
	// And the recomputation repaired the file bit-identically.
	healed, ok, err := dir.Get(key)
	if err != nil || !ok {
		t.Fatalf("entry not rewritten: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(healed, whole) {
		t.Error("healed entry differs from the original bytes")
	}
}

// recordingCache counts Deletes while delegating everything, standing in
// for the instrumented decorator in the truncation regression test.
type recordingCache struct {
	cache.Cache
	dir     *cache.Dir
	deleted int
}

func (r *recordingCache) Delete(key string) error {
	r.deleted++
	return r.dir.Delete(key)
}

// cellKeyFor derives the cache key of one cell of spec for tests,
// addressing the family by name with an optional k param (k < 0 = none).
func cellKeyFor(t testing.TB, spec Spec, adv string, n, k int) string {
	t.Helper()
	sc := Scenario{Adversary: adv}
	if k >= 0 {
		sc.Params = map[string]any{"k": k}
	}
	grounds, err := expandScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(grounds) != 1 {
		t.Fatalf("scenario %s expanded to %d ground scenarios, want 1", sc, len(grounds))
	}
	return spec.cellCacheKey(grounds[0], n)
}

// TestCacheKeySensitivity: every determinant of a cell's results changes
// its content address.
func TestCacheKeySensitivity(t *testing.T) {
	base := Spec{Adversaries: []string{"random-tree"}, Ns: []int{8}, Trials: 3, Seed: 1}
	key := cellKeyFor(t, base, "random-tree", 8, -1)
	mutations := map[string]func(*Spec){
		"seed":       func(s *Spec) { s.Seed++ },
		"trials":     func(s *Spec) { s.Trials++ },
		"goal":       func(s *Spec) { s.Goal = "gossip" },
		"max_rounds": func(s *Spec) { s.MaxRounds = 500 },
	}
	for name, mutate := range mutations {
		spec := base
		mutate(&spec)
		if cellKeyFor(t, spec, "random-tree", 8, -1) == key {
			t.Errorf("cache key insensitive to %s", name)
		}
	}
	if cellKeyFor(t, base, "k-leaves", 8, 2) == cellKeyFor(t, base, "k-leaves", 8, 3) {
		t.Error("cache key insensitive to the k param")
	}
	if cellKeyFor(t, base, "random-tree", 16, -1) == key {
		t.Error("cache key insensitive to n")
	}
	if cellKeyFor(t, base, "random-path", 8, -1) == key {
		t.Error("cache key insensitive to adversary")
	}
	// Name is presentation, not physics: it must NOT change the address.
	named := base
	named.Name = "presentation-only"
	if cellKeyFor(t, named, "random-tree", 8, -1) != key {
		t.Error("cache key depends on the campaign name")
	}
}

// BenchmarkCampaignCacheColdWarm measures the cell cache's effect: the
// cold path computes every cell, the warm path replays them from the
// store. The reported cold/warm ratio is the speedup.
func BenchmarkCampaignCacheColdWarm(b *testing.B) {
	spec := Spec{
		Name:        "cache-bench",
		Adversaries: []string{"random-tree", "random-path"},
		Ns:          []int{32, 64},
		Trials:      25,
		Seed:        1,
	}
	run := func(c cache.Cache) error {
		o, err := RunSpec(context.Background(), spec, Config{Cache: c})
		if err == nil && o.Failed != 0 {
			err = fmt.Errorf("%d jobs failed", o.Failed)
		}
		return err
	}
	shared := cache.NewMemory()
	if err := run(shared); err != nil { // prime the warm path
		b.Fatal(err)
	}
	var coldTotal, warmTotal time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if err := run(cache.NewMemory()); err != nil { // fresh cache: all misses
			b.Fatal(err)
		}
		coldTotal += time.Since(start)
		start = time.Now()
		if err := run(shared); err != nil { // primed cache: all hits
			b.Fatal(err)
		}
		warmTotal += time.Since(start)
	}
	coldNs := float64(coldTotal.Nanoseconds()) / float64(b.N)
	warmNs := float64(warmTotal.Nanoseconds()) / float64(b.N)
	b.ReportMetric(coldNs/1e6, "cold-ms/op")
	b.ReportMetric(warmNs/1e6, "warm-ms/op")
	if warmNs > 0 {
		b.ReportMetric(coldNs/warmNs, "cold/warm-speedup")
	}
}
