package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"dyntreecast/internal/rng"
)

func detSpec() Spec {
	return Spec{
		Name:        "determinism",
		Adversaries: []string{"random-tree", "random-path", "k-leaves"},
		Ns:          []int{8, 16},
		Ks:          []int{2, 3},
		Trials:      8,
		Seed:        42,
	}
}

// TestRunSpecDeterministicAcrossWorkers is the package's hard invariant:
// the same spec+seed yields byte-identical aggregates for worker counts
// 1, 4, and GOMAXPROCS (and any other), because jobs own pre-split
// sources and aggregation observes results in job-index order.
func TestRunSpecDeterministicAcrossWorkers(t *testing.T) {
	spec := detSpec()
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	var outcomes []*Outcome
	var artifacts [][]byte
	for _, w := range workerCounts {
		o, err := RunSpec(context.Background(), spec, Config{Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if o.Failed != 0 || o.Completed != o.Jobs {
			t.Fatalf("workers=%d: %d/%d jobs ok, %d failed", w, o.Completed, o.Jobs, o.Failed)
		}
		var buf bytes.Buffer
		if err := o.WriteJSON(&buf); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		outcomes = append(outcomes, o)
		artifacts = append(artifacts, buf.Bytes())
	}
	for i := 1; i < len(outcomes); i++ {
		if !reflect.DeepEqual(outcomes[0], outcomes[i]) {
			t.Errorf("outcome differs between workers=%d and workers=%d:\n%+v\nvs\n%+v",
				workerCounts[0], workerCounts[i], outcomes[0], outcomes[i])
		}
		if !bytes.Equal(artifacts[0], artifacts[i]) {
			t.Errorf("JSON artifact differs between workers=%d and workers=%d",
				workerCounts[0], workerCounts[i])
		}
	}
}

// TestCompileSplitsDeterministic pins the seed-derivation contract: two
// compiles of the same spec hand every job an identical private stream.
func TestCompileSplitsDeterministic(t *testing.T) {
	spec := detSpec()
	a, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("job counts differ: %d vs %d", len(a), len(b))
	}
	// Grid: random-tree (2 ns) + random-path (2 ns) + k-leaves (2 ns × 2 ks),
	// each × 8 trials.
	if want := (2 + 2 + 4) * 8; len(a) != want {
		t.Fatalf("jobs = %d, want %d", len(a), want)
	}
	for i := range a {
		if a[i].Index != i {
			t.Fatalf("job %d has index %d", i, a[i].Index)
		}
		for draw := 0; draw < 3; draw++ {
			if x, y := a[i].Src.Uint64(), b[i].Src.Uint64(); x != y {
				t.Fatalf("job %d draw %d: %d != %d", i, draw, x, y)
			}
		}
	}
}

func TestSpecValidate(t *testing.T) {
	base := detSpec()
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"no adversaries", func(s *Spec) { s.Adversaries = nil }, "at least one scenario"},
		{"unknown adversary", func(s *Spec) { s.Adversaries = []string{"omniscient"} }, "unknown adversary"},
		{"k-family without ks", func(s *Spec) { s.Ks = nil }, "no ks"},
		{"mixed forms", func(s *Spec) {
			s.Scenarios = []Scenario{{Adversary: "random-tree"}}
		}, "mixes scenarios"},
		{"unsupported version", func(s *Spec) { s.Version = 3 }, "unsupported spec version"},
		{"v2 with legacy fields", func(s *Spec) { s.Version = 2 }, "not adversaries/ks"},
		{"unknown scenario adversary", func(s *Spec) {
			s.Adversaries, s.Ks = nil, nil
			s.Scenarios = []Scenario{{Adversary: "omniscient"}}
		}, "unknown adversary"},
		{"unknown scenario param", func(s *Spec) {
			s.Adversaries, s.Ks = nil, nil
			s.Scenarios = []Scenario{{Adversary: "random-tree", Params: map[string]any{"k": 2}}}
		}, `no param "k"`},
		{"missing required param", func(s *Spec) {
			s.Adversaries, s.Ks = nil, nil
			s.Scenarios = []Scenario{{Adversary: "k-leaves"}}
		}, "missing required param"},
		{"wrong param kind", func(s *Spec) {
			s.Adversaries, s.Ks = nil, nil
			s.Scenarios = []Scenario{{Adversary: "k-leaves", Params: map[string]any{"k": "two"}}}
		}, "want int"},
		{"fractional int param", func(s *Spec) {
			s.Adversaries, s.Ks = nil, nil
			s.Scenarios = []Scenario{{Adversary: "k-leaves", Params: map[string]any{"k": 2.5}}}
		}, "want int"},
		{"scenario check named", func(s *Spec) {
			s.Adversaries, s.Ks = nil, nil
			s.Scenarios = []Scenario{{Adversary: "k-leaves", Params: map[string]any{"k": 0}}}
		}, `scenario k-leaves{"k":0}`},
		{"no ns", func(s *Spec) { s.Ns = nil }, "at least one n"},
		{"bad n", func(s *Spec) { s.Ns = []int{0} }, "n must be"},
		{"bad k", func(s *Spec) { s.Ks = []int{0} }, "k must be"},
		{"bad trials", func(s *Spec) { s.Trials = 0 }, "trials must be"},
		{"bad goal", func(s *Spec) { s.Goal = "multicast" }, "unknown goal"},
		{"bad max rounds", func(s *Spec) { s.MaxRounds = -1 }, "max_rounds"},
	}
	for _, tc := range cases {
		spec := base
		tc.mutate(&spec)
		err := spec.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want contains %q", tc.name, err, tc.want)
		}
	}
	good := base
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestCompileEmptyGrid(t *testing.T) {
	spec := Spec{Adversaries: []string{"k-leaves"}, Ns: []int{2}, Ks: []int{5}, Trials: 3, Seed: 1}
	if _, err := spec.Compile(); err == nil || !strings.Contains(err.Error(), "empty grid") {
		t.Errorf("err = %v, want empty-grid error", err)
	}
}

func constJob(i int, cell string, v float64) Job {
	return Job{Index: i, Run: func(context.Context, *rng.Source) ([]Measurement, error) {
		return []Measurement{{Cell: cell, Value: v}}, nil
	}}
}

func TestAggregateStats(t *testing.T) {
	results := []JobResult{
		{Index: 0, Measurements: []Measurement{{Cell: "a", Value: 1}}},
		{Index: 1, Measurements: []Measurement{{Cell: "a", Value: 3}}},
		{Index: 2, Measurements: []Measurement{{Cell: "a", Value: 2}, {Cell: "b", Value: 10}}},
		{Index: 3, Err: errors.New("boom"), Measurements: []Measurement{{Cell: "a", Value: 999}}},
		{Index: 4, Skipped: true},
	}
	cells := Aggregate(results)
	if len(cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(cells))
	}
	a := cells[0]
	if a.Cell != "a" || a.Count != 3 || a.Mean != 2 || a.Min != 1 || a.Max != 3 || a.P50 != 2 {
		t.Errorf("cell a stats wrong: %+v", a)
	}
	if a.P99 < 2.9 || a.P99 > 3 {
		t.Errorf("cell a p99 = %v, want near 3", a.P99)
	}
	b := cells[1]
	if b.Cell != "b" || b.Count != 1 || b.Mean != 10 {
		t.Errorf("cell b stats wrong: %+v", b)
	}
}

func TestRunProgressMonotonic(t *testing.T) {
	jobs := make([]Job, 17)
	for i := range jobs {
		jobs[i] = constJob(i, "c", float64(i))
	}
	var calls []int
	var total int
	_, err := Run(context.Background(), jobs, Config{
		Workers: 4,
		Progress: func(done, tot int) {
			calls = append(calls, done) // serialized by contract; no lock needed
			total = tot
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != len(jobs) || len(calls) != len(jobs) {
		t.Fatalf("progress calls = %d (total %d), want %d", len(calls), total, len(jobs))
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress not monotonic: call %d reported done=%d", i, d)
		}
	}
}

// TestCancellation: a cancelled campaign returns promptly with the
// completed jobs' results intact, the rest marked, and no goroutines
// left behind.
func TestCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	const quick, blocking, workers = 5, 2, 2
	jobs := make([]Job, 20)
	started := make(chan struct{}, len(jobs))
	for i := range jobs {
		i := i
		jobs[i] = Job{Index: i, Run: func(ctx context.Context, _ *rng.Source) ([]Measurement, error) {
			started <- struct{}{}
			if i < quick {
				return []Measurement{{Cell: "done", Value: float64(i)}}, nil
			}
			<-ctx.Done() // simulate a long job that honors cancellation
			return nil, ctx.Err()
		}}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type runOut struct {
		results []JobResult
		err     error
	}
	outCh := make(chan runOut, 1)
	go func() {
		results, err := Run(ctx, jobs, Config{Workers: workers})
		outCh <- runOut{results, err}
	}()
	// Wait until the quick jobs finished and both workers sit in blocking
	// jobs, then cancel.
	for i := 0; i < quick+blocking; i++ {
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatal("jobs did not start in time")
		}
	}
	cancel()
	var out runOut
	select {
	case out = <-outCh:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return promptly after cancellation")
	}
	if !errors.Is(out.err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", out.err)
	}
	completed, failed, skipped := 0, 0, 0
	for _, r := range out.results {
		switch {
		case r.Skipped:
			skipped++
			if !errors.Is(r.Err, context.Canceled) {
				t.Errorf("skipped job %d err = %v", r.Index, r.Err)
			}
		case r.Err != nil:
			failed++
		default:
			completed++
		}
	}
	if completed != quick || failed != blocking || skipped != len(jobs)-quick-blocking {
		t.Errorf("completed/failed/skipped = %d/%d/%d, want %d/%d/%d",
			completed, failed, skipped, quick, blocking, len(jobs)-quick-blocking)
	}
	if err := JoinErrors(out.results); !errors.Is(err, context.Canceled) {
		t.Errorf("JoinErrors = %v, want to include context.Canceled", err)
	}
	// All pool goroutines must be gone (allow the runtime some slack).
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("goroutine leak: %d before, %d after", before, g)
	}
}

func TestRunSpecCollectsJobErrors(t *testing.T) {
	// A 2-round budget is far too small for gossip at n=32, so every job
	// fails; the campaign must finish anyway and account for the failures.
	spec := Spec{
		Adversaries: []string{"random-tree"},
		Ns:          []int{32},
		Trials:      6,
		Seed:        7,
		Goal:        "gossip",
		MaxRounds:   2,
	}
	o, err := RunSpec(context.Background(), spec, Config{Workers: 3})
	if err != nil {
		t.Fatalf("RunSpec should tolerate job failures, got %v", err)
	}
	if o.Failed != 6 || o.Completed != 0 || len(o.Errors) != 6 {
		t.Fatalf("failed/completed/errors = %d/%d/%d, want 6/0/6", o.Failed, o.Completed, len(o.Errors))
	}
	if len(o.Cells) != 0 {
		t.Errorf("failed jobs must not contribute cells: %+v", o.Cells)
	}
	if !strings.Contains(o.Errors[0], "random-tree/n=32") {
		t.Errorf("error not cell-tagged: %q", o.Errors[0])
	}
}

func TestArtifactRoundTrip(t *testing.T) {
	spec := Spec{Adversaries: []string{"random-path"}, Ns: []int{8}, Trials: 4, Seed: 3}
	o, err := RunSpec(context.Background(), spec, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := o.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Outcome
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	// The job-accounting fields are deliberately not part of the artifact
	// (cold and warm runs must stay byte-identical), so zero them before
	// comparing.
	artifact := *o
	artifact.Executed, artifact.CacheHits, artifact.Reused = 0, 0, 0
	if !reflect.DeepEqual(artifact, back) {
		t.Errorf("JSON round trip changed the outcome:\n%+v\nvs\n%+v", artifact, back)
	}
	buf.Reset()
	if err := o.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(o.Cells) {
		t.Fatalf("JSONL lines = %d, want %d", len(lines), len(o.Cells))
	}
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if rec["seed"] != float64(spec.Seed) {
			t.Errorf("JSONL line missing seed: %q", line)
		}
	}
}

func TestLoadSpec(t *testing.T) {
	good := `{"name":"x","adversaries":["random-tree"],"ns":[8],"trials":2,"seed":9}`
	spec, err := LoadSpec(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "x" || spec.Seed != 9 || spec.Trials != 2 {
		t.Errorf("loaded spec wrong: %+v", spec)
	}
	if _, err := LoadSpec(strings.NewReader(`{"adversaries":["random-tree"],"workerz":3}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestRunEmptyJobs(t *testing.T) {
	results, err := Run(context.Background(), nil, Config{Workers: 8})
	if err != nil || len(results) != 0 {
		t.Errorf("empty run: results=%v err=%v", results, err)
	}
}

func TestGossipGoal(t *testing.T) {
	spec := Spec{Adversaries: []string{"random-tree"}, Ns: []int{8}, Trials: 4, Seed: 5, Goal: "gossip"}
	o, err := RunSpec(context.Background(), spec, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if o.Failed != 0 {
		t.Fatalf("gossip campaign failed: %v", o.Errors)
	}
	cell, ok := CellByKey(o.Cells, CellKey("random-tree", 8, -1))
	if !ok || cell.Mean <= 0 {
		t.Errorf("gossip cell missing or empty: %+v ok=%v", cell, ok)
	}
}

func TestCellKey(t *testing.T) {
	if got := CellKey("k-leaves", 16, 2); got != "k-leaves/n=16/k=2" {
		t.Errorf("CellKey = %q", got)
	}
	if got := CellKey("random-tree", 16, -1); got != "random-tree/n=16" {
		t.Errorf("CellKey = %q", got)
	}
}

func TestWorkersDefaultAndClamp(t *testing.T) {
	jobs := []Job{constJob(0, "c", 1)}
	// Workers far beyond the job count must not deadlock or leak.
	results, err := Run(context.Background(), jobs, Config{Workers: 64})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Skipped || len(results[0].Measurements) != 1 {
		t.Errorf("job not run: %+v", results[0])
	}
}

func ExampleRunSpec() {
	spec := Spec{
		Name:        "quickstart",
		Adversaries: []string{"static-path"},
		Ns:          []int{8, 16},
		Trials:      2,
		Seed:        1,
	}
	o, err := RunSpec(context.Background(), spec, Config{Workers: 2})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, c := range o.Cells {
		fmt.Printf("%s mean=%.0f\n", c.Cell, c.Mean)
	}
	// Output:
	// static-path/n=8 mean=7
	// static-path/n=16 mean=15
}
