package campaign

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dyntreecast/internal/adversary"
	"dyntreecast/internal/core"
	"dyntreecast/internal/gamesolver"
	"dyntreecast/internal/metrics"
	"dyntreecast/internal/rng"
	"dyntreecast/internal/tree"
)

// This file implements the search-backed adversary families (DESIGN.md
// §3j): registry entries whose adversary is not a dynamics rule but the
// replay of a schedule found by an offline search — the beam search over
// tree schedules (adversary.BeamSearch) and the budgeted game-tree line
// search (gamesolver.DeepestLine). Both searches are deterministic
// functions of (n, params) alone — the beam's randomness comes from its
// own seed parameter, never from the trial stream — so the found schedule
// is part of the cell's identity: every trial of a cell replays the same
// schedule, reruns are byte-identical, and the content-addressed cell
// cache applies unchanged (a warm rerun serves the cell without ever
// constructing the adversary, hence without re-searching).
//
// Within one process the schedule itself is memoized per (family, n,
// params): a cell's worth of trials — or a whole grid column re-visited
// by a later campaign in the same process — runs the search exactly once,
// whether jobs go through the per-trial path (New) or the batched path
// (NewReusable).

// mScheduleSearches counts actual search executions (memo misses); the
// ratio to jobs completed shows how much the schedule memo saves.
var mScheduleSearches = metrics.Default.Counter("campaign_schedule_searches_total",
	"Offline schedule searches executed by the search-backed families (misses of the per-process schedule memo).")

type schedEntry struct {
	once  sync.Once
	trees []*tree.Tree
	err   error
}

var (
	schedMu       sync.Mutex
	schedMemo     = map[string]*schedEntry{}
	schedSearches atomic.Int64
)

// scheduleFor returns the memoized schedule for key, running search at
// most once per process per key (concurrent callers for the same key
// block on the one search). Errors are memoized too: the search is a
// deterministic function of the key, so a failure would only repeat.
func scheduleFor(key string, search func() ([]*tree.Tree, error)) ([]*tree.Tree, error) {
	schedMu.Lock()
	e := schedMemo[key]
	if e == nil {
		e = &schedEntry{}
		schedMemo[key] = e
	}
	schedMu.Unlock()
	e.once.Do(func() {
		schedSearches.Add(1)
		mScheduleSearches.Inc()
		e.trees, e.err = search()
	})
	return e.trees, e.err
}

// scheduleSearchCount reports how many searches have actually executed in
// this process — the test hook behind the "warm reruns never re-search"
// guarantee.
func scheduleSearchCount() int64 { return schedSearches.Load() }

// beamConfigFromParams validates the beam-search family's ground params
// and maps them onto adversary.BeamConfig. The family declares explicit
// defaults, so a 0 in random_moves/random_trees is a real request for
// none of those proposals — which BeamConfig (whose zero value means
// "default 4") spells as a negative count.
func beamConfigFromParams(p Params) (adversary.BeamConfig, error) {
	width, moves, trees := p.Int("width"), p.Int("random_moves"), p.Int("random_trees")
	maxRounds, seed := p.Int("max_rounds"), p.Int("seed")
	switch {
	case width < 1:
		return adversary.BeamConfig{}, fmt.Errorf("beam-search: width must be >= 1, got %d", width)
	case moves < 0:
		return adversary.BeamConfig{}, fmt.Errorf("beam-search: random_moves must be >= 0, got %d", moves)
	case trees < 0:
		return adversary.BeamConfig{}, fmt.Errorf("beam-search: random_trees must be >= 0, got %d", trees)
	case maxRounds < 0:
		return adversary.BeamConfig{}, fmt.Errorf("beam-search: max_rounds must be >= 0, got %d (0 means the n²+1 bound)", maxRounds)
	case seed < 0:
		return adversary.BeamConfig{}, fmt.Errorf("beam-search: seed must be >= 0, got %d", seed)
	}
	cfg := adversary.BeamConfig{Width: width, RandomMoves: moves, RandomTrees: trees,
		MaxRounds: maxRounds, Seed: uint64(seed)}
	if moves == 0 {
		cfg.RandomMoves = -1
	}
	if trees == 0 {
		cfg.RandomTrees = -1
	}
	return cfg, nil
}

func beamSchedule(n int, p Params) ([]*tree.Tree, error) {
	cfg, err := beamConfigFromParams(p)
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("beam-search/n=%d/%s", n, canonicalParams(p))
	return scheduleFor(key, func() ([]*tree.Tree, error) {
		rep, _ := adversary.BeamSearch(n, cfg)
		if len(rep.Trees) == 0 {
			// Degenerate n; Replay needs at least one tree to be a valid
			// adversary.
			return []*tree.Tree{tree.IdentityPath(n)}, nil
		}
		return rep.Trees, nil
	})
}

func deepLineSchedule(n int, p Params) ([]*tree.Tree, error) {
	budget, width := p.Int("budget"), p.Int("width")
	key := fmt.Sprintf("deepest-line/n=%d/%s", n, canonicalParams(p))
	return scheduleFor(key, func() ([]*tree.Tree, error) {
		line, _, err := gamesolver.DeepestLine(n, budget, width)
		if err != nil {
			return nil, err
		}
		if len(line) == 0 {
			return []*tree.Tree{tree.IdentityPath(n)}, nil
		}
		return line, nil
	})
}

// searchFamilies declares the search-backed registry entries, installed
// by the same init as builtinFamilies (after them, so the portfolio
// prefix and legacy expansion order never move).
func searchFamilies() []Family {
	return []Family{
		{
			Name: "beam-search",
			Doc:  "replay the best schedule found by an offline beam search over tree schedules (lower-bound witness hunting)",
			Params: []Param{
				{Name: "width", Kind: IntParam, Default: 8, Doc: "beam width (states kept per depth)"},
				{Name: "random_moves", Kind: IntParam, Default: 4, Doc: "random-path proposals per state per round (0 = none)"},
				{Name: "random_trees", Kind: IntParam, Default: 4, Doc: "random-tree proposals per state per round (0 = none)"},
				{Name: "max_rounds", Kind: IntParam, Default: 0, Doc: "search depth cap (0 = the n²+1 trivial bound)"},
				{Name: "seed", Kind: IntParam, Default: 1, Doc: "seed of the search's random proposals (part of the cell identity, independent of the trial stream)"},
			},
			Check: func(p Params) error {
				_, err := beamConfigFromParams(p)
				return err
			},
			New: func(n int, p Params, _ *rng.Source) (core.Adversary, error) {
				sched, err := beamSchedule(n, p)
				if err != nil {
					return nil, err
				}
				return adversary.Replay{Trees: sched}, nil
			},
			NewReusable: func(n int, p Params) (ReusableAdversary, error) {
				sched, err := beamSchedule(n, p)
				if err != nil {
					return nil, err
				}
				return adversary.Stateless{Adversary: adversary.Replay{Trees: sched}}, nil
			},
		},
		{
			Name: "deepest-line",
			Doc:  "replay the deepest surviving line found by the budgeted game-tree search (n ≤ 8)",
			Params: []Param{
				{Name: "budget", Kind: IntParam, Default: 2000, Doc: "state expansions before the search stops"},
				{Name: "width", Kind: IntParam, Default: 4, Doc: "branching cap per search state"},
			},
			Check: func(p Params) error {
				if b := p.Int("budget"); b < 1 {
					return fmt.Errorf("budget must be >= 1, got %d", b)
				}
				if w := p.Int("width"); w < 1 {
					return fmt.Errorf("width must be >= 1, got %d", w)
				}
				return nil
			},
			Feasible: func(n int, _ Params) bool {
				return n >= 1 && n <= gamesolver.HardMaxN
			},
			New: func(n int, p Params, _ *rng.Source) (core.Adversary, error) {
				sched, err := deepLineSchedule(n, p)
				if err != nil {
					return nil, err
				}
				return adversary.Replay{Trees: sched}, nil
			},
			NewReusable: func(n int, p Params) (ReusableAdversary, error) {
				sched, err := deepLineSchedule(n, p)
				if err != nil {
					return nil, err
				}
				return adversary.Stateless{Adversary: adversary.Replay{Trees: sched}}, nil
			},
		},
	}
}
