package campaign

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"dyntreecast/internal/core"
	"dyntreecast/internal/rng"
)

// batchSpec exercises every reuse-relevant axis in one grid: a random
// family, a restricted k family with an axis, a deterministic adaptive
// family, and a precomputed oblivious schedule.
func batchSpec() Spec {
	return Spec{
		Name: "batching",
		Scenarios: []Scenario{
			{Adversary: "random-tree"},
			{Adversary: "k-leaves", Params: map[string]any{"k": []any{2, 3}}},
			{Adversary: "ascending-path"},
			{Adversary: "two-phase-path"},
		},
		Ns:     []int{6, 13},
		Trials: 5,
		Seed:   99,
	}
}

// TestBatchedPipelineByteIdentity is the tentpole acceptance property:
// the batched, arena-pooled pipeline emits artifacts byte-identical to
// the seed per-trial pipeline (NoReuse, batch 1), for every batch size ×
// worker count combination — including the gossip goal.
func TestBatchedPipelineByteIdentity(t *testing.T) {
	specs := map[string]Spec{"broadcast": batchSpec()}
	// Gossip variant: random families only — the deterministic path
	// schedules stall gossip forever (see package gossip).
	gossip := batchSpec()
	gossip.Scenarios = []Scenario{
		{Adversary: "random-tree"},
		{Adversary: "k-leaves", Params: map[string]any{"k": []any{2, 3}}},
	}
	gossip.Goal = "gossip"
	specs["gossip"] = gossip

	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			// Reference: the pre-batching pipeline — per-trial jobs on
			// fresh engines with fresh adversaries.
			ref, err := RunSpec(context.Background(), spec, Config{Workers: 1, Batch: 1, NoReuse: true})
			if err != nil {
				t.Fatal(err)
			}
			if ref.Failed != 0 {
				t.Fatalf("reference run failed jobs: %v", ref.Errors)
			}
			want := artifactBytes(t, ref)

			for _, batch := range []int{1, 3, 0} {
				for _, workers := range []int{1, 4} {
					o, err := RunSpec(context.Background(), spec, Config{Workers: workers, Batch: batch})
					if err != nil {
						t.Fatalf("batch=%d workers=%d: %v", batch, workers, err)
					}
					if got := artifactBytes(t, o); !bytes.Equal(got, want) {
						t.Errorf("batch=%d workers=%d: artifact differs from seed pipeline", batch, workers)
					}
				}
			}
		})
	}
}

// TestBatchedKillAndResumeByteIdentity extends the checkpoint guarantee
// to the batched pipeline: kill mid-run at any batch size, resume at
// another, and the artifact still matches an uninterrupted run's bytes.
func TestBatchedKillAndResumeByteIdentity(t *testing.T) {
	spec := batchSpec()
	unint, err := RunSpec(context.Background(), spec, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := artifactBytes(t, unint)

	for _, batch := range []int{1, 3, 0} {
		for _, resumeBatch := range []int{0, 1} {
			// Phase 1: checkpoint into memory and cancel after a few
			// results land.
			var ckpt bytes.Buffer
			jobs, err := spec.Compile()
			if err != nil {
				t.Fatal(err)
			}
			cw, err := NewCheckpointWriter(&ckpt, spec, len(jobs))
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			seen := 0
			_, runErr := RunSpec(ctx, spec, Config{
				Workers: 2, Batch: batch,
				OnResult: func(r JobResult) {
					cw.Record(r)
					if seen++; seen == 7 {
						cancel()
					}
				},
			})
			cancel()
			if runErr == nil {
				t.Fatalf("batch=%d: interrupted run reported no error", batch)
			}
			if err := cw.Err(); err != nil {
				t.Fatal(err)
			}

			// Phase 2: resume from the checkpoint at a different batch
			// size and worker count.
			cp, err := LoadCheckpoint(&ckpt)
			if err != nil {
				t.Fatal(err)
			}
			if len(cp.Results) == 0 {
				t.Fatalf("batch=%d: checkpoint recorded nothing", batch)
			}
			resumed, err := ResumeSpec(context.Background(), spec, cp, Config{Workers: 3, Batch: resumeBatch})
			if err != nil {
				t.Fatal(err)
			}
			if got := artifactBytes(t, resumed); !bytes.Equal(got, want) {
				t.Errorf("batch=%d resumeBatch=%d: resumed artifact differs", batch, resumeBatch)
			}
		}
	}
}

// TestSliceBatches pins the scheduling-unit construction: whole cells by
// default, capped runs with a batch size, singletons for cell-less jobs.
func TestSliceBatches(t *testing.T) {
	mk := func(cells ...string) []Job {
		jobs := make([]Job, len(cells))
		for i, c := range cells {
			jobs[i] = Job{Index: i, Cell: c}
		}
		return jobs
	}
	cases := []struct {
		name string
		jobs []Job
		size int
		want []batch
	}{
		{"whole cells", mk("a", "a", "a", "b", "b"), 0, []batch{{0, 3}, {3, 5}}},
		{"capped", mk("a", "a", "a", "b", "b"), 2, []batch{{0, 2}, {2, 3}, {3, 5}}},
		{"per trial", mk("a", "a"), 1, []batch{{0, 1}, {1, 2}}},
		{"ad hoc singletons", mk("", "", ""), 0, []batch{{0, 1}, {1, 2}, {2, 3}}},
		{"interleaved", mk("a", "b", "a"), 0, []batch{{0, 1}, {1, 2}, {2, 3}}},
	}
	for _, tc := range cases {
		got := sliceBatches(tc.jobs, tc.size)
		if len(got) != len(tc.want) {
			t.Errorf("%s: %v, want %v", tc.name, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s: batch %d = %v, want %v", tc.name, i, got[i], tc.want[i])
			}
		}
	}
}

// TestFamilyReusableMatchesNew runs every built-in family that declares
// NewReusable both ways — fresh construction per trial versus one
// reusable adversary Reset per trial — and requires identical rounds.
// This is the registry-level form of the adversary package's
// differential suite.
func TestFamilyReusableMatchesNew(t *testing.T) {
	for _, f := range Families() {
		if f.NewReusable == nil {
			continue
		}
		f := f
		t.Run(f.Name, func(t *testing.T) {
			var params Params
			if len(f.Params) > 0 {
				params = Params{}
				for _, p := range f.Params {
					if p.Default != nil {
						params[p.Name] = p.Default
					} else {
						params[p.Name] = float64(2) // the k families
					}
				}
			}
			const n = 9
			if f.Feasible != nil && !f.Feasible(n, params) {
				t.Skipf("%s infeasible at n=%d with default params", f.Name, n)
			}
			runner := core.NewRunner()
			reusable, err := f.NewReusable(n, params)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 5; trial++ {
				seed := uint64(trial + 1)
				plain, err := f.New(n, params, rng.New(seed))
				if err != nil {
					t.Fatal(err)
				}
				want, errA := core.BroadcastTime(n, plain)
				reusable.Reset(rng.New(seed))
				got, errB := runner.BroadcastTime(n, reusable)
				if errA != nil || errB != nil || want != got {
					t.Fatalf("trial %d: plain %d (%v), reusable %d (%v)", trial, want, errA, got, errB)
				}
			}
		})
	}
}

// TestArenaAdversaryFor: the arena caches one adversary per cell,
// rebuilding only on cell changes and resetting on every trial.
func TestArenaAdversaryFor(t *testing.T) {
	a := NewArena()
	builds := 0
	build := func() (ReusableAdversary, error) {
		builds++
		return countingReusable{resets: new(int)}, nil
	}
	r1, err := a.AdversaryFor("cell-a", nil, build)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.AdversaryFor("cell-a", nil, build); err != nil {
		t.Fatal(err)
	}
	if builds != 1 {
		t.Errorf("same cell rebuilt: %d builds", builds)
	}
	if got := *r1.(countingReusable).resets; got != 2 {
		t.Errorf("resets = %d, want 2", got)
	}
	if _, err := a.AdversaryFor("cell-b", nil, build); err != nil {
		t.Fatal(err)
	}
	if builds != 2 {
		t.Errorf("cell change did not rebuild: %d builds", builds)
	}
	failing := func() (ReusableAdversary, error) { return nil, fmt.Errorf("boom") }
	if _, err := a.AdversaryFor("cell-c", nil, failing); err == nil {
		t.Error("build error swallowed")
	}
}

type countingReusable struct {
	core.Adversary
	resets *int
}

func (c countingReusable) Reset(*rng.Source) { *c.resets++ }
